package core

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/kvstore"
	"repro/internal/sim"
)

// Debug enables protocol tracing to stdout (tests only).
var Debug bool

func dbg(format string, args ...any) {
	if Debug {
		fmt.Printf(format+"\n", args...)
	}
}

// handlePut runs one replica's side of the NICE-2PC put (Fig. 3). The
// object arrived complete via the multicast transport; phase one locks,
// logs and writes it, phase two applies the primary's timestamp.
func (n *Node) handlePut(p *sim.Proc, req *PutRequest) {
	part := n.cfg.Space.PartitionOf(req.Key)
	v := n.views[part]
	if v == nil {
		return // stale multicast subscription; not serving this partition
	}
	me := n.cfg.Addr.Index
	isPrimary := v.Primary().Index == me

	k := req.key()
	if _, inFlight := n.puts[k]; inFlight {
		// Duplicate of an attempt this node is still processing; its reply
		// (same request ID) will satisfy the client's retry.
		return
	}
	if ts, ok := n.committed[k]; ok {
		n.duplicatePut(p, v, req, ts, isPrimary)
		return
	}
	if rec, ok := n.store.LogOf(req.Key); ok {
		if tag, _ := rec.Tag.(reqKey); tag == k {
			// The same put is already prepared here but never committed (a
			// laggard after a partial commit): re-ack phase one; the commit
			// arrives via the primary's re-sent timestamp or resolution.
			if !isPrimary {
				pr := v.Primary()
				n.data.SendTo(pr.IP, pr.DataPort, &Ack1{Req: k, From: me}, ackSize)
			}
			return
		}
	}

	ps := n.registerPut(req)
	defer func() {
		// Post-restart, a retry of the same put may have re-registered
		// under this key; only remove our own state.
		if n.puts[k] == ps {
			delete(n.puts, k)
		}
	}()
	if Debug {
		dbg("%v node%d handlePut %s primary=%v", p.Now(), me, req.Key, isPrimary)
	}
	n.cpu.Use(p, n.cfg.CPUPerOp)
	if n.stale(ps) {
		return
	}

	// Phase one: lock, +L, W.
	if !n.store.Lock(p, req.Key, 2*n.cfg.AckTimeout) {
		n.stats.Aborts++
		if isPrimary && !n.stale(ps) {
			n.replyPut(req, false, "lock timeout", 0)
		}
		return
	}
	if n.stale(ps) {
		return // the granted lock died with the crash; don't touch the store
	}
	obj := &kvstore.Object{Key: req.Key, Value: req.Value, Size: req.Size}
	rec := kvstore.LogRecord{Key: req.Key, Size: req.Size, Obj: obj, Tag: req.key(), Attempt: req.Attempt}
	if n.cfg.PutBatchWindow > 0 {
		// Batched prepare (DESIGN.md §16): co-arriving prepares on this
		// replica share one forced disk write for their log records and
		// object bytes, mirroring the batched commit on the primary.
		n.store.AppendLogCombined(p, rec, n.cfg.PutBatchWindow)
	} else {
		n.store.AppendLog(p, rec)
		n.store.ChargeWrite(p, req.Size)
	}
	if n.stale(ps) {
		// Crashed while forcing the WAL record: withdraw it unless a
		// post-restart retry already replaced it with its own.
		if rec, ok := n.store.LogOf(req.Key); ok {
			if tag, _ := rec.Tag.(reqKey); tag == k {
				n.store.DropLog(req.Key)
			}
		}
		return
	}

	if isPrimary {
		n.primaryCommit(p, v, req, ps, obj)
	} else {
		n.secondaryCommit(p, v, req, ps, obj, part)
	}
}

// duplicatePut answers a retry of a put this node already committed: the
// primary re-multicasts the original timestamp (converging any replica
// that missed the commit — the retry's own multicast redelivered the
// object, so a replica that lost the first transfer now holds it
// prepared) and re-acks the client with the original version; a
// secondary re-acks both phases so a primary still collecting acks can
// finish. No state is re-applied, so a retried put can never
// double-apply or roll a newer value back.
//
// The primary must NOT ack the client before the replica set confirms:
// the first attempt may have committed on the primary alone, and an ack
// racing the secondaries' convergence would let a load-balanced get read
// a secondary that does not hold the acked version yet.
func (n *Node) duplicatePut(p *sim.Proc, v *controller.PartitionView, req *PutRequest, ts kvstore.Timestamp, isPrimary bool) {
	n.stats.DupPuts++
	n.cpu.Use(p, n.cfg.CPUPerOp)
	k := req.key()
	if n.cfg.Harmonia != nil {
		// The retry's own multicast re-marked the key dirty at the switch;
		// this member already holds the commit, so report it applied — once
		// every replica dedups the retry the mark retires again.
		n.cfg.Harmonia.MemberApplied(req.Key, k, n.cfg.Addr.IP)
	}
	dbg("%v node%d duplicatePut %s primary=%v ts=%v", p.Now(), n.cfg.Addr.Index, req.Key, isPrimary, ts)
	if !isPrimary {
		pr := v.Primary()
		n.data.SendTo(pr.IP, pr.DataPort, &Ack1{Req: k, From: n.cfg.Addr.Index}, ackSize)
		n.data.SendTo(pr.IP, pr.DataPort, &Ack2{Req: k, From: n.cfg.Addr.Index}, ackSize)
		return
	}
	ps := n.registerPut(req)
	defer func() {
		if n.puts[k] == ps {
			delete(n.puts, k)
		}
	}()
	n.data.SendTo(v.GroupIP, n.cfg.Addr.DataPort, &TsMsg{Req: k, Key: req.Key, Ts: ts, Dup: true}, tsMsgSize)
	need, want := n.ackQuorum(v)
	if !n.waitAcks(p, ps, ps.ack2, need, want) {
		if n.stale(ps) {
			return
		}
		// The client retries; replicas keep converging via the WAL/dedup
		// paths until the whole set confirms.
		n.replyPut(req, false, "replica unresponsive in commit phase", 0)
		return
	}
	if n.stale(ps) {
		return
	}
	n.replyPut(req, true, "", ts.PrimarySeq)
}

// othersOf lists the put participants excluding this node.
func (n *Node) othersOf(v *controller.PartitionView) []controller.NodeAddr {
	var out []controller.NodeAddr
	for _, r := range v.PutParticipants() {
		if r.Index != n.cfg.Addr.Index {
			out = append(out, r)
		}
	}
	return out
}

// ackQuorum returns the nodes whose acks may count toward the commit
// quorum and how many of them the primary must hear from. Under full
// replication that is every other participant, handoff stand-in
// included. Under any-k the stand-in is excluded: it still receives
// every write (its directory must cover the outage), but its ack cannot
// substitute for a proper member's — the controller may later drop the
// stand-in from the view with no data transfer, so a quorum that leaned
// on it would leave an acked version held only by nodes that can all
// leave the member set at once.
func (n *Node) ackQuorum(v *controller.PartitionView) ([]controller.NodeAddr, int) {
	others := n.othersOf(v)
	if n.cfg.QuorumK <= 0 {
		return others, len(others)
	}
	var proper []controller.NodeAddr
	for _, r := range others {
		if v.Handoff != nil && r.Index == v.Handoff.Index {
			continue
		}
		proper = append(proper, r)
	}
	want := n.cfg.QuorumK - 1
	if want > len(proper) {
		want = len(proper)
	}
	if want < 0 {
		want = 0
	}
	return proper, want
}

// waitAcks waits until at least want of the nodes in need appear in got,
// tolerating one quiet phase; after a second timeout the missing peers
// are reported to the metadata service (§4.4) and false is returned.
func (n *Node) waitAcks(p *sim.Proc, ps *putState, got map[int]bool, need []controller.NodeAddr, want int) bool {
	timeouts := 0
	for {
		present := 0
		for _, r := range need {
			if got[r.Index] {
				present++
			}
		}
		if present >= want {
			return true
		}
		if _, ok := ps.sig.PopTimeout(p, n.cfg.AckTimeout); ok {
			continue
		}
		timeouts++
		if timeouts >= 2 {
			for _, r := range need {
				if !got[r.Index] {
					n.reportFailure(r.Index)
				}
			}
			return false
		}
	}
}

// primaryCommit coordinates the put: collect first-phase acks, commit
// with a fresh timestamp, multicast it, collect second-phase acks, and
// answer the client.
func (n *Node) primaryCommit(p *sim.Proc, v *controller.PartitionView, req *PutRequest, ps *putState, obj *kvstore.Object) {
	part := v.Partition
	// A freshly promoted primary must not issue timestamps until lock
	// resolution has synchronized its logical clock with its peers (the
	// old primary may have committed versions this node never witnessed).
	n.waitResolved(p, part)
	if n.stale(ps) {
		return
	}
	need, want := n.ackQuorum(v)

	if !n.waitAcks(p, ps, ps.ack1, need, want) {
		if n.stale(ps) {
			return
		}
		dbg("%v node%d ABORT %s: ack1=%v want=%d", p.Now(), n.cfg.Addr.Index, req.Key, ps.ack1, want)
		// Abort: release everyone still waiting, clean up, fail the op.
		n.data.SendTo(v.GroupIP, n.cfg.Addr.DataPort, &TsMsg{Req: req.key(), Key: req.Key, Abort: true, Attempt: req.Attempt}, tsMsgSize)
		n.store.DropLog(req.Key)
		n.store.Unlock(req.Key)
		n.harmoniaAborted(req.Key, req.key())
		n.stats.Aborts++
		n.replyPut(req, false, "replica unresponsive", 0)
		return
	}
	if n.stale(ps) {
		return
	}

	var ts kvstore.Timestamp
	if n.cfg.PutBatchWindow > 0 {
		// Accumulated commit point (batch.go): timestamp assignment, the
		// local apply, the fsync and the timestamp multicast happen inside
		// the partition's batch drain; this handler resumes holding its
		// committed timestamp and collects its own second-phase acks.
		var ok bool
		if ts, ok = n.batchCommit(p, v, req, ps, obj); !ok {
			return
		}
	} else {
		n.primarySeq++
		ts = kvstore.Timestamp{
			Primary:    n.cfg.Addr.IP,
			PrimarySeq: n.primarySeq,
			Client:     req.Client,
			ClientSeq:  req.ClientSeq,
		}
		obj.Version = ts
		n.applyLocal(part, obj, false)
		n.store.DropLog(req.Key)
		n.store.Unlock(req.Key)
		n.stats.Puts++
		n.stats.PutsPrimary++

		// Durable engines fsync the commit record before anything
		// downstream learns of the commit (the timestamp multicast and,
		// transitively, the client ack): an acknowledged put must survive
		// this node's crash. Free in legacy mode.
		n.store.Sync(p)
		if n.stale(ps) {
			return
		}

		// Commit phase: multicast the timestamp to the replica set.
		n.data.SendTo(v.GroupIP, n.cfg.Addr.DataPort, &TsMsg{Req: req.key(), Key: req.Key, Ts: ts, Attempt: req.Attempt}, tsMsgSize)
	}

	if !n.waitAcks(p, ps, ps.ack2, need, want) {
		if n.stale(ps) {
			return
		}
		// Committed locally and possibly remotely; the client will retry
		// against the repaired replica set, and the dedup record above
		// guarantees the retry converges on this commit's version instead
		// of re-running the protocol.
		n.replyPut(req, false, "replica unresponsive in commit phase", 0)
		return
	}
	n.replyPut(req, true, "", ts.PrimarySeq)
}

// waitResolved blocks until no lock resolution is in flight for part.
// The poll period is coarse — resolution is already a multi-RTT affair —
// and deterministic.
func (n *Node) waitResolved(p *sim.Proc, part int) {
	for n.resolving[part] {
		p.Sleep(n.cfg.AckTimeout / 4)
	}
}

// stale reports whether the node crashed and restarted since ps was
// registered (see putState.gen).
func (n *Node) stale(ps *putState) bool { return ps.gen != n.restartGen }

// secondaryCommit acknowledges phase one, waits for the timestamp, and
// completes the commit. A primary quiet for two phases is reported and
// the object is left locked and logged for new-primary resolution.
func (n *Node) secondaryCommit(p *sim.Proc, v *controller.PartitionView, req *PutRequest, ps *putState, obj *kvstore.Object, part int) {
	me := n.cfg.Addr.Index
	primary := v.Primary()
	if Debug {
		dbg("%v node%d ack1 -> %d for %s", p.Now(), me, primary.Index, req.Key)
	}
	n.data.SendTo(primary.IP, primary.DataPort, &Ack1{Req: req.key(), From: me}, ackSize)

	tsm, ok := ps.ts.WaitTimeout(p, n.cfg.AckTimeout)
	if !ok {
		tsm, ok = ps.ts.WaitTimeout(p, n.cfg.AckTimeout)
	}
	if n.stale(ps) {
		return
	}
	if !ok {
		n.reportFailure(primary.Index)
		// The object stays locked and logged. Once the membership change
		// settles, ask whoever leads the partition then to resolve it.
		key := req.Key
		n.s.After(4*n.cfg.AckTimeout, func() {
			if !n.store.HasLog(key) {
				return // already resolved
			}
			cur := n.views[part]
			if cur == nil {
				return
			}
			if cur.Primary().Index == n.cfg.Addr.Index {
				n.maybeResolve(part, nil)
				return
			}
			pr := cur.Primary()
			n.data.SendTo(pr.IP, pr.DataPort, &ResolveRequest{Partition: part}, ackSize)
		})
		return
	}
	if tsm.Abort {
		n.store.DropLog(req.Key)
		n.store.Unlock(req.Key)
		n.harmoniaAborted(req.Key, req.key())
		n.stats.Aborts++
		return
	}
	n.observeTs(tsm.Ts)
	obj.Version = tsm.Ts
	n.applyLocal(part, obj, tsm.Dup)
	n.store.DropLog(req.Key)
	n.store.Unlock(req.Key)
	n.stats.Puts++
	// Fsync before Ack2: the primary counts this replica's copy toward
	// the commit quorum, so the copy must survive a crash here. Free in
	// legacy mode.
	n.store.Sync(p)
	if n.stale(ps) {
		return
	}
	n.data.SendTo(primary.IP, primary.DataPort, &Ack2{Req: req.key(), From: me}, ackSize)
}

// observeTs advances the node's primary logical clock past any witnessed
// timestamp, so a promoted primary always generates dominating versions.
func (n *Node) observeTs(ts kvstore.Timestamp) {
	if ts.PrimarySeq > n.primarySeq {
		n.primarySeq = ts.PrimarySeq
	}
}

// applyLocal installs a committed object in the namespace this node
// serves the partition from (main store, or the handoff directory when
// standing in for a failed peer). dup marks a dedup re-commit of a
// version that may predate this node's stand-in tenure: the handoff
// directory's serve authority (get.go) rests on its entries being the
// newest committed writes, so a dup install is kept for durability but
// marked non-servable until a genuine commit supersedes it.
func (n *Node) applyLocal(part int, obj *kvstore.Object, dup bool) {
	if n.handoffFor[part] {
		if n.store.ApplyHandoff(obj) {
			if dup {
				n.markStaleHandoff(part, obj.Key)
			} else {
				n.clearStaleHandoff(part, obj.Key)
			}
		}
	} else {
		n.store.Apply(obj)
	}
	n.recordCommit(obj.Version)
	n.writeThrough(obj)
	n.harmoniaApplied(obj)
}

// replyPut answers the client over its reply stream; ver is the committed
// version's primary sequence (0 when nothing committed).
func (n *Node) replyPut(req *PutRequest, ok bool, errStr string, ver uint64) {
	n.pool.Send(req.Client, req.ClientPort, &PutReply{ReqID: req.ClientSeq, OK: ok, Err: errStr, Ver: ver}, replyOverhead)
}

// lateTs handles a timestamp that arrived after its put handler gave up
// (or after a crash recovery re-registered nothing): commit or abort
// straight from the WAL record, keeping replicas convergent.
func (n *Node) lateTs(m *TsMsg) {
	rec, ok := n.store.LogOf(m.Key)
	if !ok || rec.Tag != any(m.Req) || (m.Abort && rec.Attempt != m.Attempt) {
		if !m.Abort {
			if obj, have := n.store.Peek(m.Key); have &&
				obj.Version.Client == m.Req.Client && obj.Version.ClientSeq == m.Req.Seq {
				// This replica already committed the same logical put. A
				// primary promoted without a dedup record may have re-run the
				// retry under a newer timestamp: adopt it (same value, newer
				// version) so replicas agree; an equal or older timestamp is
				// the primary's dedup re-multicast and needs nothing.
				if obj.Version.Less(m.Ts) {
					n.observeTs(m.Ts)
					clone := *obj
					clone.Version = m.Ts
					n.store.Apply(&clone)
					n.recordCommit(m.Ts)
					n.writeThrough(&clone)
				}
				// Committed here either way (pre-existing or just adopted):
				// let the dirty-set stage count this member as applied.
				n.harmoniaApplied(obj)
				return
			}
		}
		// Buffer for a prepare that may still be in flight. An abort never
		// displaces a buffered commit: the commit is authoritative, and the
		// abort can only belong to some other (dead) attempt.
		o := n.orphan(m.Req)
		if m.Abort && o.ts != nil && !o.ts.Abort {
			return
		}
		o.ts = m
		return
	}
	part := n.cfg.Space.PartitionOf(m.Key)
	if m.Abort {
		n.store.DropLog(m.Key)
		if n.store.Locked(m.Key) {
			n.store.Unlock(m.Key)
		}
		n.harmoniaAborted(m.Key, m.Req)
		n.stats.Aborts++
		return
	}
	obj := rec.Obj
	n.observeTs(m.Ts)
	obj.Version = m.Ts
	n.applyLocal(part, obj, m.Dup)
	n.store.DropLog(m.Key)
	if n.store.Locked(m.Key) {
		n.store.Unlock(m.Key)
	}
	n.stats.Puts++
	v := n.views[part]
	if v == nil {
		return
	}
	pr := v.Primary()
	if n.store.Durable() {
		// Fsync before the quorum-counting Ack2, exactly as in
		// secondaryCommit: the primary treats this ack as "the copy
		// survives a crash here". lateTs runs on the dispatch loop, so the
		// forced write is charged to a spawned process and the ack follows
		// it; the restart-generation fence drops the ack if this
		// incarnation dies while the fsync is in flight.
		gen := n.restartGen
		n.s.Spawn(n.name("latesync"), func(p *sim.Proc) {
			n.store.Sync(p)
			if gen != n.restartGen {
				return
			}
			n.data.SendTo(pr.IP, pr.DataPort, &Ack2{Req: m.Req, From: n.cfg.Addr.Index}, ackSize)
		})
		return
	}
	n.data.SendTo(pr.IP, pr.DataPort, &Ack2{Req: m.Req, From: n.cfg.Addr.Index}, ackSize)
}
