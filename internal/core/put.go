package core

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/kvstore"
	"repro/internal/sim"
)

// Debug enables protocol tracing to stdout (tests only).
var Debug bool

func dbg(format string, args ...any) {
	if Debug {
		fmt.Printf(format+"\n", args...)
	}
}

// handlePut runs one replica's side of the NICE-2PC put (Fig. 3). The
// object arrived complete via the multicast transport; phase one locks,
// logs and writes it, phase two applies the primary's timestamp.
func (n *Node) handlePut(p *sim.Proc, req *PutRequest) {
	part := n.cfg.Space.PartitionOf(req.Key)
	v := n.views[part]
	if v == nil {
		return // stale multicast subscription; not serving this partition
	}
	me := n.cfg.Addr.Index
	isPrimary := v.Primary().Index == me

	ps := n.registerPut(req)
	defer delete(n.puts, req.key())
	dbg("%v node%d handlePut %s primary=%v", p.Now(), me, req.Key, isPrimary)
	n.cpu.Use(p, n.cfg.CPUPerOp)

	// Phase one: lock, +L, W.
	if !n.store.Lock(p, req.Key, 2*n.cfg.AckTimeout) {
		n.stats.Aborts++
		if isPrimary {
			n.replyPut(req, false, "lock timeout")
		}
		return
	}
	obj := &kvstore.Object{Key: req.Key, Value: req.Value, Size: req.Size}
	n.store.AppendLog(p, kvstore.LogRecord{Key: req.Key, Size: req.Size, Obj: obj, Tag: req.key()})
	n.store.ChargeWrite(p, req.Size)

	if isPrimary {
		n.primaryCommit(p, v, req, ps, obj)
	} else {
		n.secondaryCommit(p, v, req, ps, obj, part)
	}
}

// othersOf lists the put participants excluding this node.
func (n *Node) othersOf(v *controller.PartitionView) []controller.NodeAddr {
	var out []controller.NodeAddr
	for _, r := range v.PutParticipants() {
		if r.Index != n.cfg.Addr.Index {
			out = append(out, r)
		}
	}
	return out
}

// waitAcks waits until at least want of the nodes in need appear in got,
// tolerating one quiet phase; after a second timeout the missing peers
// are reported to the metadata service (§4.4) and false is returned.
func (n *Node) waitAcks(p *sim.Proc, ps *putState, got map[int]bool, need []controller.NodeAddr, want int) bool {
	timeouts := 0
	for {
		present := 0
		for _, r := range need {
			if got[r.Index] {
				present++
			}
		}
		if present >= want {
			return true
		}
		if _, ok := ps.sig.PopTimeout(p, n.cfg.AckTimeout); ok {
			continue
		}
		timeouts++
		if timeouts >= 2 {
			for _, r := range need {
				if !got[r.Index] {
					n.reportFailure(r.Index)
				}
			}
			return false
		}
	}
}

// primaryCommit coordinates the put: collect first-phase acks, commit
// with a fresh timestamp, multicast it, collect second-phase acks, and
// answer the client.
func (n *Node) primaryCommit(p *sim.Proc, v *controller.PartitionView, req *PutRequest, ps *putState, obj *kvstore.Object) {
	others := n.othersOf(v)
	part := v.Partition
	want := len(others)
	if n.cfg.QuorumK > 0 && n.cfg.QuorumK-1 < want {
		want = n.cfg.QuorumK - 1
		if want < 0 {
			want = 0
		}
	}

	if !n.waitAcks(p, ps, ps.ack1, others, want) {
		dbg("%v node%d ABORT %s: ack1=%v want=%d", p.Now(), n.cfg.Addr.Index, req.Key, ps.ack1, want)
		// Abort: release everyone still waiting, clean up, fail the op.
		n.data.SendTo(v.GroupIP, n.cfg.Addr.DataPort, &TsMsg{Req: req.key(), Key: req.Key, Abort: true}, tsMsgSize)
		n.store.DropLog(req.Key)
		n.store.Unlock(req.Key)
		n.stats.Aborts++
		n.replyPut(req, false, "replica unresponsive")
		return
	}

	n.primarySeq++
	ts := kvstore.Timestamp{
		Primary:    n.cfg.Addr.IP,
		PrimarySeq: n.primarySeq,
		Client:     req.Client,
		ClientSeq:  req.ClientSeq,
	}
	obj.Version = ts
	n.applyLocal(part, obj)
	n.store.DropLog(req.Key)
	n.store.Unlock(req.Key)
	n.stats.Puts++
	n.stats.PutsPrimary++

	// Commit phase: multicast the timestamp to the replica set.
	n.data.SendTo(v.GroupIP, n.cfg.Addr.DataPort, &TsMsg{Req: req.key(), Key: req.Key, Ts: ts}, tsMsgSize)

	if !n.waitAcks(p, ps, ps.ack2, others, want) {
		// Committed locally and possibly remotely; the client will retry
		// against the repaired replica set.
		n.replyPut(req, false, "replica unresponsive in commit phase")
		return
	}
	n.replyPut(req, true, "")
}

// secondaryCommit acknowledges phase one, waits for the timestamp, and
// completes the commit. A primary quiet for two phases is reported and
// the object is left locked and logged for new-primary resolution.
func (n *Node) secondaryCommit(p *sim.Proc, v *controller.PartitionView, req *PutRequest, ps *putState, obj *kvstore.Object, part int) {
	me := n.cfg.Addr.Index
	primary := v.Primary()
	dbg("%v node%d ack1 -> %d for %s", p.Now(), me, primary.Index, req.Key)
	n.data.SendTo(primary.IP, primary.DataPort, &Ack1{Req: req.key(), From: me}, ackSize)

	tsm, ok := ps.ts.WaitTimeout(p, n.cfg.AckTimeout)
	if !ok {
		tsm, ok = ps.ts.WaitTimeout(p, n.cfg.AckTimeout)
	}
	if !ok {
		n.reportFailure(primary.Index)
		// The object stays locked and logged. Once the membership change
		// settles, ask whoever leads the partition then to resolve it.
		key := req.Key
		n.s.After(4*n.cfg.AckTimeout, func() {
			if !n.store.HasLog(key) {
				return // already resolved
			}
			cur := n.views[part]
			if cur == nil {
				return
			}
			if cur.Primary().Index == n.cfg.Addr.Index {
				n.maybeResolve(part)
				return
			}
			pr := cur.Primary()
			n.data.SendTo(pr.IP, pr.DataPort, &ResolveRequest{Partition: part}, ackSize)
		})
		return
	}
	if tsm.Abort {
		n.store.DropLog(req.Key)
		n.store.Unlock(req.Key)
		n.stats.Aborts++
		return
	}
	n.observeTs(tsm.Ts)
	obj.Version = tsm.Ts
	n.applyLocal(part, obj)
	n.store.DropLog(req.Key)
	n.store.Unlock(req.Key)
	n.stats.Puts++
	n.data.SendTo(primary.IP, primary.DataPort, &Ack2{Req: req.key(), From: me}, ackSize)
}

// observeTs advances the node's primary logical clock past any witnessed
// timestamp, so a promoted primary always generates dominating versions.
func (n *Node) observeTs(ts kvstore.Timestamp) {
	if ts.PrimarySeq > n.primarySeq {
		n.primarySeq = ts.PrimarySeq
	}
}

// applyLocal installs a committed object in the namespace this node
// serves the partition from (main store, or the handoff directory when
// standing in for a failed peer).
func (n *Node) applyLocal(part int, obj *kvstore.Object) {
	if n.handoffFor[part] {
		n.store.ApplyHandoff(obj)
	} else {
		n.store.Apply(obj)
	}
	n.writeThrough(obj)
}

// replyPut answers the client over its reply stream.
func (n *Node) replyPut(req *PutRequest, ok bool, errStr string) {
	n.pool.Send(req.Client, req.ClientPort, &PutReply{ReqID: req.ClientSeq, OK: ok, Err: errStr}, replyOverhead)
}

// lateTs handles a timestamp that arrived after its put handler gave up
// (or after a crash recovery re-registered nothing): commit or abort
// straight from the WAL record, keeping replicas convergent.
func (n *Node) lateTs(m *TsMsg) {
	rec, ok := n.store.LogOf(m.Key)
	if !ok || rec.Tag != any(m.Req) {
		n.orphan(m.Req).ts = m
		return
	}
	part := n.cfg.Space.PartitionOf(m.Key)
	if m.Abort {
		n.store.DropLog(m.Key)
		if n.store.Locked(m.Key) {
			n.store.Unlock(m.Key)
		}
		n.stats.Aborts++
		return
	}
	obj := rec.Obj
	n.observeTs(m.Ts)
	obj.Version = m.Ts
	n.applyLocal(part, obj)
	n.store.DropLog(m.Key)
	if n.store.Locked(m.Key) {
		n.store.Unlock(m.Key)
	}
	n.stats.Puts++
	if v := n.views[part]; v != nil {
		pr := v.Primary()
		n.data.SendTo(pr.IP, pr.DataPort, &Ack2{Req: m.Req, From: n.cfg.Addr.Index}, ackSize)
	}
}
