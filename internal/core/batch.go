package core

import (
	"repro/internal/controller"
	"repro/internal/kvstore"
	"repro/internal/sim"
)

// Per-partition put accumulator (DESIGN.md §16). A primary put that
// reaches its commit point — first-phase quorum collected, nothing left
// to do but assign a timestamp and commit — either opens a batch and
// lingers PutBatchWindow, or joins the batch another put's linger left
// open. When the window closes the leader drains every joined op in
// arrival order: one timestamp-assignment pass, one fsync covering all
// the commit records, one batched timestamp multicast. Everything
// per-op (dedup records, attempt-scoped aborts, ack2 collection, the
// client reply) stays with the op's own handler.

// putBatch is one open (or draining) commit batch for a partition.
type putBatch struct {
	items []*batchItem
	done  *sim.Future[struct{}]
}

// batchItem is one put parked at the commit point.
type batchItem struct {
	req *PutRequest
	obj *kvstore.Object
	ts  kvstore.Timestamp
	ok  bool // drained: timestamp assigned and object applied
}

// defaultPutBatchMax caps a batch when PutBatchMax is unset.
const defaultPutBatchMax = 64

// batchCommit runs the commit point of a primary put through the
// accumulator. It returns the op's committed timestamp, or ok=false when
// the op died with a crash (the caller abandons, like every stale
// handler). On success the commit record is fsynced and the timestamp
// multicast is on the wire; the caller proceeds to second-phase acks.
func (n *Node) batchCommit(p *sim.Proc, v *controller.PartitionView, req *PutRequest, ps *putState, obj *kvstore.Object) (kvstore.Timestamp, bool) {
	part := v.Partition
	it := &batchItem{req: req, obj: obj}
	max := n.cfg.PutBatchMax
	if max <= 0 {
		max = defaultPutBatchMax
	}
	if b := n.batches[part]; b != nil && len(b.items) < max {
		// Join the open batch and park until its leader drains it.
		b.items = append(b.items, it)
		b.done.Wait(p)
		if n.stale(ps) || !it.ok {
			return kvstore.Timestamp{}, false
		}
		return it.ts, true
	}

	b := &putBatch{done: sim.NewFuture[struct{}](n.s)}
	b.items = append(b.items, it)
	n.batches[part] = b
	p.Sleep(n.cfg.PutBatchWindow)
	// Close the batch before any yield point below: ops arriving once the
	// drain started must open a fresh batch, not ride a closed one.
	if n.batches[part] == b {
		delete(n.batches, part)
	}
	if n.stale(ps) {
		// Crashed during the linger. The joined items' locks, logs and put
		// states were wiped by Restart; just release the parked handlers so
		// they can observe the staleness themselves.
		b.done.Set(struct{}{})
		return kvstore.Timestamp{}, false
	}

	// Drain: assign timestamps and commit locally in arrival order.
	items := make([]BatchTsItem, 0, len(b.items))
	for _, bi := range b.items {
		n.primarySeq++
		bi.ts = kvstore.Timestamp{
			Primary:    n.cfg.Addr.IP,
			PrimarySeq: n.primarySeq,
			Client:     bi.req.Client,
			ClientSeq:  bi.req.ClientSeq,
		}
		bi.obj.Version = bi.ts
		n.applyLocal(part, bi.obj, false)
		n.store.DropLog(bi.req.Key)
		n.store.Unlock(bi.req.Key)
		bi.ok = true
		n.stats.Puts++
		n.stats.PutsPrimary++
		items = append(items, BatchTsItem{Req: bi.req.key(), Key: bi.req.Key, Ts: bi.ts, Attempt: bi.req.Attempt})
	}
	n.stats.BatchCommits++
	n.stats.BatchedPuts += int64(len(b.items))

	// One fsync covers every commit record the drain appended — the
	// whole point of accumulating. Same contract as the single-op path:
	// durable before anything downstream learns of the commits.
	n.store.Sync(p)
	if n.stale(ps) {
		b.done.Set(struct{}{})
		return kvstore.Timestamp{}, false
	}

	// Fragment below the transport MTU; each fragment is independently
	// complete (items route per-op on arrival), so splitting changes
	// framing only.
	for len(items) > 0 {
		chunk := items
		if len(chunk) > maxTsItemsPerMsg {
			chunk = chunk[:maxTsItemsPerMsg]
		}
		n.data.SendTo(v.GroupIP, n.cfg.Addr.DataPort, &BatchTsMsg{Items: chunk},
			batchHeader+len(chunk)*tsMsgSize)
		items = items[len(chunk):]
	}
	b.done.Set(struct{}{})
	return it.ts, true
}
