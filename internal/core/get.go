package core

import "repro/internal/sim"

// handleGet serves a client read. The switch already chose this replica
// (primary by default, or per the source-division load-balancing rules),
// so the node answers from local state. A handoff node missing the object
// forwards the request to the primary, which replies to the client
// directly (§4.4).
func (n *Node) handleGet(p *sim.Proc, req *GetRequest, forwarded bool) {
	n.stats.Gets++
	n.cpu.Use(p, n.cfg.CPUPerOp)
	part := n.cfg.Space.PartitionOf(req.Key)

	if n.handoffFor[part] && !forwarded {
		if obj, ok := n.store.GetHandoff(p, req.Key); ok {
			n.pool.Send(req.Client, req.ClientPort,
				&GetReply{ReqID: req.ReqID, Found: true, Value: obj.Value, Size: obj.Size},
				obj.Size+replyOverhead)
			return
		}
		v := n.views[part]
		if v == nil || v.Primary().Index == n.cfg.Addr.Index {
			// No primary to forward to; answer from the main store.
			n.replyFromStore(p, req)
			return
		}
		pr := v.Primary()
		n.stats.GetForwards++
		n.data.SendTo(pr.IP, pr.DataPort, &ForwardedGet{Req: *req}, getReqSize)
		return
	}
	if forwarded && n.handoffFor[part] {
		// Forward arrived at a handoff-led partition (everyone else is
		// gone): answer from the handoff directory as a last resort.
		if obj, ok := n.store.GetHandoff(p, req.Key); ok {
			n.pool.Send(req.Client, req.ClientPort,
				&GetReply{ReqID: req.ReqID, Found: true, Value: obj.Value, Size: obj.Size},
				obj.Size+replyOverhead)
			return
		}
	}
	n.replyFromStore(p, req)
}

// replyFromStore answers a get from the main namespace.
func (n *Node) replyFromStore(p *sim.Proc, req *GetRequest) {
	obj, ok := n.store.Get(p, req.Key)
	rep := &GetReply{ReqID: req.ReqID, Found: ok}
	size := replyOverhead
	if ok {
		rep.Value = obj.Value
		rep.Size = obj.Size
		size += obj.Size
	}
	n.pool.Send(req.Client, req.ClientPort, rep, size)
}
