package core

import (
	"repro/internal/kvstore"
	"repro/internal/sim"
)

// handleGet serves a client read. The switch already chose this replica
// (primary by default, or per the source-division load-balancing rules),
// so the node answers from local state. A handoff node missing the object
// forwards the request to the primary, which replies to the client
// directly (§4.4). replicaRouted marks reads that arrived on the
// dedicated replica port — the dirty-set stage vouched the key was clean
// when it rewrote them here, so they may be served from a non-primary.
func (n *Node) handleGet(p *sim.Proc, req *GetRequest, forwarded, replicaRouted bool) {
	n.stats.Gets++
	n.cpu.Use(p, n.cfg.CPUPerOp)
	if n.recovering {
		// Put-visible only (§4.4): the store may still miss writes
		// acknowledged while this node was down, so neither a hit nor a
		// miss can be trusted. Stay silent; the client retries elsewhere.
		n.stats.GetsHeld++
		return
	}
	part := n.cfg.Space.PartitionOf(req.Key)

	if n.handoffFor[part] {
		// A directory hit is authoritative only for genuine post-failure
		// writes; an entry installed by a dedup re-commit may predate the
		// stand-in tenure (and a newer pre-failure version may exist), so
		// it falls through to the forward path like a miss.
		if obj, ok := n.store.GetHandoff(p, req.Key); ok && !n.staleHandoff[part][req.Key] {
			if Debug {
				dbg("%v node%d handoff-hit %s ver=%d", p.Now(), n.cfg.Addr.Index, req.Key, obj.Version.PrimarySeq)
			}
			n.sendGetReply(req, obj)
			return
		}
		v := n.views[part]
		if !forwarded && v != nil && v.Primary().Index != n.cfg.Addr.Index {
			pr := v.Primary()
			n.stats.GetForwards++
			n.data.SendTo(pr.IP, pr.DataPort, &ForwardedGet{Req: *req}, getReqSize)
			return
		}
		// Handoff-led partition (no live proper primary to forward to):
		// serve a main-store hit if this node also holds the key as a
		// member, but never claim not-found — the handoff directory covers
		// only writes issued since the failure, so silence (the client
		// retries once membership settles) beats a lie.
		if obj, ok := n.store.Get(p, req.Key); ok {
			n.sendGetReply(req, obj)
			return
		}
		n.stats.GetsHeld++
		return
	}
	n.replyFromStore(p, req, replicaRouted)
}

// sendGetReply answers a get hit, carrying the committed version.
func (n *Node) sendGetReply(req *GetRequest, obj *kvstore.Object) {
	n.pool.Send(req.Client, req.ClientPort,
		&GetReply{ReqID: req.ReqID, Found: true, Value: obj.Value, Size: obj.Size, Ver: obj.Version.PrimarySeq},
		obj.Size+replyOverhead)
}

// replyFromStore answers a get from the main namespace.
func (n *Node) replyFromStore(p *sim.Proc, req *GetRequest, replicaRouted bool) {
	part := n.cfg.Space.PartitionOf(req.Key)
	if n.views[part] == nil {
		// Not (or no longer) a member of this partition — stale client
		// routing after a view change. The store stopped receiving the
		// partition's writes, so any answer could be stale or a false
		// miss. Stay silent; the client retries a current member.
		n.stats.GetsHeld++
		return
	}
	if n.resolving[part] && n.store.HasLog(req.Key) {
		// The key's fate is being decided by lock resolution: answering now
		// could serve a version about to be superseded by a commit the old
		// primary already acknowledged. Stay silent; the client's retry
		// lands after resolution.
		n.stats.GetsHeld++
		return
	}
	if n.syncing[part] {
		// Freshly promoted any-k primary: the old primary may have
		// acknowledged commits this node never saw. Answer only after the
		// member-range sync finishes.
		n.stats.GetsHeld++
		return
	}
	isPrimary := n.views[part].Primary().Index == n.cfg.Addr.Index
	if n.cfg.HarmoniaServe && !replicaRouted && !isPrimary {
		// Primary-routed read at a node that does not believe itself
		// primary. The fabric may have remapped the partition's reads to a
		// freshly promoted primary before the promotion announcement
		// reached it (view updates and data packets race on independent
		// paths) — and under any-k the promotee can be a laggard that never
		// saw acked writes, leaving no local lock or log to gate on. Stay
		// silent; the client's retry lands after the view settles.
		n.stats.GetsHeld++
		n.stats.GetsHeldNotPrimary++
		return
	}
	if n.cfg.HarmoniaServe && replicaRouted && (n.store.HasLog(req.Key) || n.store.Locked(req.Key)) {
		// Replica-side conflict gate: the dirty-set stage routed this read
		// here believing the key clean, but a write is in flight locally
		// (prepared or locked) — under any-k this node may be a laggard the
		// commit quorum did not wait for. Serving now could return a value
		// about to be superseded by an already-acknowledged commit. Stay
		// silent; the client's retry re-hashes or lands after the apply.
		n.stats.GetsHeld++
		n.stats.GetsHeldConflict++
		return
	}
	if n.cfg.HarmoniaServe {
		if isPrimary {
			n.stats.GetsServedLocal++
		} else {
			n.stats.GetsServedAsReplica++
		}
	}
	n.serveRead(p, req)
}

// readState is one in-flight coalescable store read (CoalesceGets):
// gets arriving while the leader's charged read is on the disk enqueue
// here and are answered from its result.
type readState struct {
	waiters []*GetRequest
}

// serveRead performs the store read for a get that passed every
// consistency gate, and replies. With CoalesceGets, concurrent reads of
// the same key share one charged store read: the first becomes the
// leader, later arrivals piggyback and are answered by the leader's
// reply fan-out.
func (n *Node) serveRead(p *sim.Proc, req *GetRequest) {
	if !n.cfg.CoalesceGets {
		obj, ok := n.store.Get(p, req.Key)
		n.sendStoreReply(p, req, obj, ok)
		return
	}
	if rs := n.reads[req.Key]; rs != nil {
		n.stats.GetsCoalesced++
		rs.waiters = append(rs.waiters, req)
		return
	}
	rs := &readState{}
	n.reads[req.Key] = rs
	gen := n.restartGen
	obj, ok := n.store.Get(p, req.Key)
	if n.reads[req.Key] == rs {
		delete(n.reads, req.Key)
	}
	if gen != n.restartGen {
		// Crashed while the read was on the disk: this incarnation must not
		// answer for the reborn node. The waiters go unanswered too — their
		// clients retry, same as any handler that blocked across a crash.
		return
	}
	// Commits may have landed while the read slept on the disk. Refresh
	// from memory (free) so the shared answer carries the newest version
	// committed before this instant: every coalesced get's invocation
	// precedes the reply, so one linearization point serves them all.
	if cur, have := n.store.Peek(req.Key); have {
		obj, ok = cur, true
	}
	n.sendStoreReply(p, req, obj, ok)
	for _, w := range rs.waiters {
		n.sendStoreReply(p, w, obj, ok)
	}
}

// sendStoreReply answers one get from a completed store read.
func (n *Node) sendStoreReply(p *sim.Proc, req *GetRequest, obj *kvstore.Object, ok bool) {
	if Debug {
		ver := uint64(0)
		if ok {
			ver = obj.Version.PrimarySeq
		}
		dbg("%v node%d replyFromStore %s found=%v ver=%d", p.Now(), n.cfg.Addr.Index, req.Key, ok, ver)
	}
	rep := &GetReply{ReqID: req.ReqID, Found: ok}
	size := replyOverhead
	if ok {
		rep.Value = obj.Value
		rep.Size = obj.Size
		rep.Ver = obj.Version.PrimarySeq
		size += obj.Size
	}
	n.pool.Send(req.Client, req.ClientPort, rep, size)
}
