package core

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/transport"
)

// ClientConfig parameterizes a NICEKV client. Clients know only the two
// virtual rings and the global replication level — never physical
// placement (§3.2).
type ClientConfig struct {
	Unicast, Multicast ring.VRing
	DataPort           uint16 // storage nodes' request port
	ReplyPort          uint16 // this client's reply listener
	R                  int    // system replication level
	// QuorumK, when non-zero, lets the put multicast return once any K
	// replicas hold the data (any-k transport, §5).
	QuorumK   int
	OpTimeout sim.Time
	// RetryWait is the base back-off before the first retry; subsequent
	// attempts double it up to RetryMaxWait, with ±25% deterministic
	// jitter so a fleet of clients does not retry in lockstep.
	RetryWait    sim.Time
	RetryMaxWait sim.Time // back-off cap (0 = 8x RetryWait)
	MaxRetries   int
	// PerOpPrepares makes MultiPut send one prepare multicast per op
	// instead of packing a partition's ops into a BatchPutRequest. Set on
	// harmonia clusters: the switch's dirty-set parser recognizes only
	// single-op prepares, and a put it cannot see never marks its key
	// dirty — a clean-read rewrite could then hit a replica the prepare
	// has not reached. Gets are unaffected (batched gets bypass the
	// rewrite stage, which costs spread, never safety).
	PerOpPrepares bool
}

// DefaultClientConfig fills the protocol timing the evaluation uses:
// 2-second base retry back-off (§6.6).
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		DataPort:   7000,
		ReplyPort:  8000,
		OpTimeout:  time.Second,
		RetryWait:  2 * time.Second,
		MaxRetries: 5,
	}
}

// OpResult reports one completed operation.
type OpResult struct {
	Latency sim.Time
	Retries int
	Found   bool // gets: object existed
	Value   any  // gets: the object value
	Size    int
	Version uint64 // committed version (primary sequence) acked/observed
}

// ErrOpFailed is returned when an operation exhausted its retries.
var ErrOpFailed = fmt.Errorf("core: operation failed after retries")

// OpError describes an operation that exhausted its retry budget: which
// op against which key, how many attempts were made, and what the final
// attempt observed. It unwraps to ErrOpFailed, so existing
// errors.Is(err, ErrOpFailed) checks keep working.
type OpError struct {
	Op       string // "put" or "get"
	Key      string
	Attempts int
	Last     string // the final attempt's failure ("timeout" or a node error)
}

func (e *OpError) Error() string {
	return fmt.Sprintf("core: %s %q failed after %d attempts: %s", e.Op, e.Key, e.Attempts, e.Last)
}

// Unwrap makes OpError match ErrOpFailed under errors.Is.
func (e *OpError) Unwrap() error { return ErrOpFailed }

// Client is a NICEKV client endpoint.
type Client struct {
	cfg     ClientConfig
	stack   *transport.Stack
	udp     *transport.UDPSocket
	pending map[uint64]*sim.Future[any]
	seq     uint64
}

// NewClient attaches a client to a host's transport stack.
func NewClient(stack *transport.Stack, cfg ClientConfig) *Client {
	return &Client{cfg: cfg, stack: stack, pending: make(map[uint64]*sim.Future[any])}
}

// Start binds the request socket and the reply listeners. Replies come
// back two ways: storage nodes answer on the client's reply stream, while
// an in-switch cache hit is synthesized as a single UDP datagram to the
// same port (the switch cannot speak the stream protocol), so the client
// listens on both.
func (c *Client) Start() {
	c.udp = c.stack.MustBindUDP(0)
	rep := c.stack.MustBindUDP(c.cfg.ReplyPort)
	c.stack.Sim().Spawn("client-udp-replies", func(p *sim.Proc) {
		for {
			d, ok := rep.Recv(p)
			if !ok {
				return
			}
			c.dispatch(d.Data)
		}
	})
	ln := c.stack.MustListen(c.cfg.ReplyPort)
	c.stack.Sim().Spawn("client-accept", func(p *sim.Proc) {
		for {
			conn, ok := ln.Accept(p)
			if !ok {
				return
			}
			c.stack.Sim().Spawn("client-reader", func(p *sim.Proc) {
				for {
					m, ok := conn.Recv(p)
					if !ok {
						return
					}
					c.dispatch(m.Data)
				}
			})
		}
	})
}

// dispatch matches a reply to its waiting operation.
func (c *Client) dispatch(data any) {
	var id uint64
	switch m := data.(type) {
	case *PutReply:
		id = m.ReqID
	case *GetReply:
		id = m.ReqID
	default:
		return
	}
	if f, ok := c.pending[id]; ok {
		delete(c.pending, id)
		f.Set(data)
	}
}

// IP returns the client's address.
func (c *Client) IP() netsim.IP { return c.stack.IP() }

// backoff sleeps before retry attempt (0-based): RetryWait doubled per
// attempt up to RetryMaxWait, jittered ±25% from the simulation RNG —
// deterministic per seed, decorrelated across clients.
func (c *Client) backoff(p *sim.Proc, attempt int) {
	d := c.cfg.RetryWait
	if d <= 0 {
		return
	}
	maxWait := c.cfg.RetryMaxWait
	if maxWait <= 0 {
		maxWait = 8 * d
	}
	for i := 0; i < attempt && d < maxWait; i++ {
		d *= 2
	}
	if d > maxWait {
		d = maxWait
	}
	j := 0.75 + 0.5*c.stack.Sim().Rand().Float64()
	p.Sleep(sim.Time(float64(d) * j))
}

// Put stores key=value (size payload bytes), multicasting the object to
// the replica set in a single network-level operation and waiting for the
// primary's commit acknowledgment. Failed attempts (a replica died
// mid-put) are retried with capped exponential back-off, as in §4.4/§6.6.
// Every attempt reuses the same ClientSeq: the retry is the same logical
// put, which the replicas deduplicate, so a put retried after a partial
// commit cannot apply twice.
func (c *Client) Put(p *sim.Proc, key string, value any, size int) (OpResult, error) {
	c.seq++
	return c.putAttempts(p, p.Now(), key, value, size, c.seq, 0, "timeout")
}

// putAttempts runs delivery attempts [first, MaxRetries] of the logical
// put identified by id. MultiPut re-enters here (first > 0) for ops its
// batched attempt did not acknowledge: the retries keep the batch's
// ClientSeq, so the replicas' dedup records converge them on the batch's
// commit wherever it did land.
func (c *Client) putAttempts(p *sim.Proc, start sim.Time, key string, value any, size int, id uint64, first int, last string) (OpResult, error) {
	for attempt := first; attempt <= c.cfg.MaxRetries; attempt++ {
		// A fresh request per attempt: messages travel by reference in the
		// sim, and each attempt must carry its own number so a replica can
		// tell a stale abort from one aimed at the prepare it holds.
		req := &PutRequest{
			Key:        key,
			Value:      value,
			Size:       size,
			Client:     c.stack.IP(),
			ClientPort: c.cfg.ReplyPort,
			ClientSeq:  id,
			Attempt:    attempt,
		}
		f := sim.NewFuture[any](c.stack.Sim())
		c.pending[id] = f

		_, err := c.stack.SendMulticast(p, transport.McastOpts{
			To:        c.cfg.Multicast.AddrOfKey(key),
			ToPort:    c.cfg.DataPort,
			Data:      req,
			Size:      size + putHeaderSize,
			Receivers: c.cfg.R,
			K:         c.cfg.QuorumK,
			Timeout:   c.cfg.OpTimeout,
		})
		if err != nil {
			last = err.Error()
		} else if raw, ok := f.WaitTimeout(p, c.cfg.OpTimeout); ok {
			rep := raw.(*PutReply)
			if rep.OK {
				return OpResult{Latency: p.Now() - start, Retries: attempt, Size: size, Version: rep.Ver}, nil
			}
			last = rep.Err
		} else {
			last = "timeout"
		}
		delete(c.pending, id)
		if attempt < c.cfg.MaxRetries {
			c.backoff(p, attempt)
		}
	}
	return OpResult{Latency: p.Now() - start, Retries: c.cfg.MaxRetries},
		&OpError{Op: "put", Key: key, Attempts: c.cfg.MaxRetries + 1, Last: last}
}

// Get reads key through the unicast vring: one UDP datagram out, the
// object back on the reply stream. Timeouts retry against the (possibly
// re-mapped) vring with the same back-off as puts; a partition that stays
// dead surfaces a typed *OpError after MaxRetries+1 attempts rather than
// blocking forever. The request ID is stable across attempts, so a late
// reply to an earlier attempt satisfies the operation.
func (c *Client) Get(p *sim.Proc, key string) (OpResult, error) {
	c.seq++
	return c.getAttempts(p, p.Now(), key, c.seq, 0)
}

// getAttempts runs delivery attempts [first, MaxRetries] of the read
// identified by id. MultiGet re-enters here (first > 0) for reads its
// batched datagram left unanswered; the stable id keeps a late reply to
// the batch attempt acceptable.
func (c *Client) getAttempts(p *sim.Proc, start sim.Time, key string, id uint64, first int) (OpResult, error) {
	req := &GetRequest{
		Key:        key,
		ReqID:      id,
		Client:     c.stack.IP(),
		ClientPort: c.cfg.ReplyPort,
	}
	for attempt := first; attempt <= c.cfg.MaxRetries; attempt++ {
		f := sim.NewFuture[any](c.stack.Sim())
		c.pending[id] = f
		r := *req // per-attempt copy: the retry counter steers harmonia's replica hash
		r.Attempt = attempt
		c.udp.SendTo(c.cfg.Unicast.AddrOfKey(key), c.cfg.DataPort, &r, getReqSize)
		if raw, ok := f.WaitTimeout(p, c.cfg.OpTimeout); ok {
			rep := raw.(*GetReply)
			return OpResult{
				Latency: p.Now() - start,
				Retries: attempt,
				Found:   rep.Found,
				Value:   rep.Value,
				Size:    rep.Size,
				Version: rep.Ver,
			}, nil
		}
		delete(c.pending, id)
		if attempt < c.cfg.MaxRetries {
			c.backoff(p, attempt)
		}
	}
	return OpResult{Latency: p.Now() - start, Retries: c.cfg.MaxRetries},
		&OpError{Op: "get", Key: key, Attempts: c.cfg.MaxRetries + 1, Last: "timeout"}
}
