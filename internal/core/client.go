package core

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/transport"
)

// ClientConfig parameterizes a NICEKV client. Clients know only the two
// virtual rings and the global replication level — never physical
// placement (§3.2).
type ClientConfig struct {
	Unicast, Multicast ring.VRing
	DataPort           uint16 // storage nodes' request port
	ReplyPort          uint16 // this client's reply listener
	R                  int    // system replication level
	// QuorumK, when non-zero, lets the put multicast return once any K
	// replicas hold the data (any-k transport, §5).
	QuorumK    int
	OpTimeout  sim.Time
	RetryWait  sim.Time // back-off before retrying a failed put
	MaxRetries int
}

// DefaultClientConfig fills the protocol timing the evaluation uses:
// 2-second retry back-off (§6.6).
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		DataPort:   7000,
		ReplyPort:  8000,
		OpTimeout:  time.Second,
		RetryWait:  2 * time.Second,
		MaxRetries: 5,
	}
}

// OpResult reports one completed operation.
type OpResult struct {
	Latency sim.Time
	Retries int
	Found   bool // gets: object existed
	Value   any  // gets: the object value
	Size    int
}

// ErrOpFailed is returned when an operation exhausted its retries.
var ErrOpFailed = fmt.Errorf("core: operation failed after retries")

// Client is a NICEKV client endpoint.
type Client struct {
	cfg     ClientConfig
	stack   *transport.Stack
	udp     *transport.UDPSocket
	pending map[uint64]*sim.Future[any]
	seq     uint64
}

// NewClient attaches a client to a host's transport stack.
func NewClient(stack *transport.Stack, cfg ClientConfig) *Client {
	return &Client{cfg: cfg, stack: stack, pending: make(map[uint64]*sim.Future[any])}
}

// Start binds the request socket and the reply listeners. Replies come
// back two ways: storage nodes answer on the client's reply stream, while
// an in-switch cache hit is synthesized as a single UDP datagram to the
// same port (the switch cannot speak the stream protocol), so the client
// listens on both.
func (c *Client) Start() {
	c.udp = c.stack.MustBindUDP(0)
	rep := c.stack.MustBindUDP(c.cfg.ReplyPort)
	c.stack.Sim().Spawn("client-udp-replies", func(p *sim.Proc) {
		for {
			d, ok := rep.Recv(p)
			if !ok {
				return
			}
			c.dispatch(d.Data)
		}
	})
	ln := c.stack.MustListen(c.cfg.ReplyPort)
	c.stack.Sim().Spawn("client-accept", func(p *sim.Proc) {
		for {
			conn, ok := ln.Accept(p)
			if !ok {
				return
			}
			c.stack.Sim().Spawn("client-reader", func(p *sim.Proc) {
				for {
					m, ok := conn.Recv(p)
					if !ok {
						return
					}
					c.dispatch(m.Data)
				}
			})
		}
	})
}

// dispatch matches a reply to its waiting operation.
func (c *Client) dispatch(data any) {
	var id uint64
	switch m := data.(type) {
	case *PutReply:
		id = m.ReqID
	case *GetReply:
		id = m.ReqID
	default:
		return
	}
	if f, ok := c.pending[id]; ok {
		delete(c.pending, id)
		f.Set(data)
	}
}

// IP returns the client's address.
func (c *Client) IP() netsim.IP { return c.stack.IP() }

// Put stores key=value (size payload bytes), multicasting the object to
// the replica set in a single network-level operation and waiting for the
// primary's commit acknowledgment. Failed attempts (a replica died
// mid-put) are retried after RetryWait, as in §4.4/§6.6.
func (c *Client) Put(p *sim.Proc, key string, value any, size int) (OpResult, error) {
	start := p.Now()
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		c.seq++
		id := c.seq // c.seq advances under concurrent operations
		req := &PutRequest{
			Key:        key,
			Value:      value,
			Size:       size,
			Client:     c.stack.IP(),
			ClientPort: c.cfg.ReplyPort,
			ClientSeq:  id,
		}
		f := sim.NewFuture[any](c.stack.Sim())
		c.pending[id] = f

		_, err := c.stack.SendMulticast(p, transport.McastOpts{
			To:        c.cfg.Multicast.AddrOfKey(key),
			ToPort:    c.cfg.DataPort,
			Data:      req,
			Size:      size + putHeaderSize,
			Receivers: c.cfg.R,
			K:         c.cfg.QuorumK,
			Timeout:   c.cfg.OpTimeout,
		})
		if err == nil {
			if raw, ok := f.WaitTimeout(p, c.cfg.OpTimeout); ok {
				if rep := raw.(*PutReply); rep.OK {
					return OpResult{Latency: p.Now() - start, Retries: attempt, Size: size}, nil
				}
			}
		}
		delete(c.pending, id)
		if attempt < c.cfg.MaxRetries {
			p.Sleep(c.cfg.RetryWait)
		}
	}
	return OpResult{Latency: p.Now() - start, Retries: c.cfg.MaxRetries}, ErrOpFailed
}

// Get reads key through the unicast vring: one UDP datagram out, the
// object back on the reply stream. Timeouts retry against the (possibly
// re-mapped) vring.
func (c *Client) Get(p *sim.Proc, key string) (OpResult, error) {
	start := p.Now()
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		c.seq++
		id := c.seq
		req := &GetRequest{
			Key:        key,
			ReqID:      id,
			Client:     c.stack.IP(),
			ClientPort: c.cfg.ReplyPort,
		}
		f := sim.NewFuture[any](c.stack.Sim())
		c.pending[id] = f
		c.udp.SendTo(c.cfg.Unicast.AddrOfKey(key), c.cfg.DataPort, req, getReqSize)
		if raw, ok := f.WaitTimeout(p, c.cfg.OpTimeout); ok {
			rep := raw.(*GetReply)
			return OpResult{
				Latency: p.Now() - start,
				Retries: attempt,
				Found:   rep.Found,
				Value:   rep.Value,
				Size:    rep.Size,
			}, nil
		}
		delete(c.pending, id)
		if attempt < c.cfg.MaxRetries {
			p.Sleep(c.cfg.RetryWait)
		}
	}
	return OpResult{Latency: p.Now() - start, Retries: c.cfg.MaxRetries}, ErrOpFailed
}
