// Package core implements NICEKV, the paper's key-value store prototype:
// a storage node running the NICE-2PC consistency protocol over
// switch-multicast replication (Fig. 3), consistency-aware fault
// tolerance (handoff service, two-phase rejoin, new-primary lock
// resolution, §4.4), and a client that addresses the two virtual rings
// over UDP and collects replies on a stream listener (§5).
package core

import (
	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/transport"
)

// Wire-size constants for small protocol messages.
const (
	putHeaderSize = 64  // PutRequest framing inside the multicast payload
	ackSize       = 64  // Ack1/Ack2 datagrams
	tsMsgSize     = 96  // timestamp multicast (the §4.3 quadruplet + key)
	getReqSize    = 64  // get request datagram
	replyOverhead = 64  // reply framing on the stream
	ctrlMsgSize   = 128 // node-to-controller datagrams
	batchHeader   = 32  // shared framing of a batched message (§16)
)

// Batched datagrams must fit the transport MTU (1400 bytes); senders
// fragment above these per-message item bounds.
const (
	maxTsItemsPerMsg = (transport.MTU - batchHeader) / tsMsgSize  // 14
	maxGetReqsPerMsg = (transport.MTU - batchHeader) / getReqSize // 21
)

// MaxBatchedGets is the most get requests one batched datagram can
// carry, exported for traffic generators that pack their own batches.
const MaxBatchedGets = maxGetReqsPerMsg

// GetReqSize is the wire size of one get request datagram, exported for
// traffic generators that craft GetRequests without a full Client.
const GetReqSize = getReqSize

// BatchHeaderSize is the shared framing overhead of a batched message,
// exported for the same traffic generators.
const BatchHeaderSize = batchHeader

// reqKey identifies one client operation attempt; it keys the primary's
// and secondaries' in-flight put state.
type reqKey struct {
	Client netsim.IP
	Seq    uint64
}

// PutRequest is the application message carried by the put multicast:
// every replica receives the full object plus this header.
type PutRequest struct {
	Key        string
	Value      any
	Size       int // object bytes
	Client     netsim.IP
	ClientPort uint16 // client's reply listener
	ClientSeq  uint64
	// Attempt numbers the client's delivery attempts of this operation.
	// Retries reuse the (Client, ClientSeq) identity — dedup depends on
	// that — so an abort must name the attempt it cancels: a stale abort
	// from attempt N must not kill attempt N+1's prepare after its Ack1
	// was counted toward a commit quorum.
	Attempt int
}

func (r *PutRequest) key() reqKey { return reqKey{r.Client, r.ClientSeq} }

// Ack1 is a secondary's first-phase acknowledgment: object locked,
// logged, and written (Fig. 3).
type Ack1 struct {
	Req  reqKey
	From int // node index
}

// TsMsg is the primary's timestamp multicast: it commits the put and
// orders it against other puts to the same key (§4.3).
type TsMsg struct {
	Req   reqKey
	Key   string
	Ts    kvstore.Timestamp
	Abort bool // primary aborted the operation; release without applying
	// Attempt scopes an abort to the delivery attempt it cancels (see
	// PutRequest.Attempt). Commits converge any attempt and ignore it.
	Attempt int
	// Dup marks the dedup path's re-multicast of an already-committed
	// timestamp: the version may predate the current membership, so a
	// handoff stand-in must not treat the install as a post-failure write
	// it can serve authoritatively (get.go).
	Dup bool
}

// Ack2 is a secondary's second-phase acknowledgment: lock released, log
// entry dropped.
type Ack2 struct {
	Req  reqKey
	From int
}

// PutReply is the primary's final answer to the client (on the client's
// reply stream).
type PutReply struct {
	ReqID uint64
	OK    bool
	Err   string
	// Ver is the committed version's primary sequence number; the
	// consistency checker orders acknowledged puts by it.
	Ver uint64
}

// GetRequest is the client's read, sent as one UDP datagram to the
// unicast vring.
type GetRequest struct {
	Key        string
	ReqID      uint64
	Client     netsim.IP
	ClientPort uint16
	// Attempt is the client's retry counter for this request. The
	// harmonia stage mixes it into the replica-choice hash so a read
	// whose hashed replica stays silent (crashed but not yet detected)
	// escapes to a different replica on retry instead of timing out
	// MaxRetries times against the same dead node.
	Attempt int
}

// GetReply answers a GetRequest on the client's reply stream.
type GetReply struct {
	ReqID uint64
	Found bool
	Value any
	Size  int
	// Ver is the returned object's committed version (primary sequence);
	// switch-cache replies carry it too, so stale cache reads are
	// checkable.
	Ver uint64
}

// Batched pipeline (DESIGN.md §16). Batching changes the framing of the
// prepare multicast, the commit multicast and the get datagram — never
// the per-operation protocol state: every op inside a batch keeps its
// own reqKey, attempt counter, dedup record and abort scope, so the
// retry, resolution and recovery machinery is oblivious to batching.

// BatchPutRequest is a client's batched prepare: MultiPut packs the ops
// headed for one partition into a single multicast transfer. Receivers
// explode it into independent per-op put handlers — the batch exists
// only on the wire.
type BatchPutRequest struct {
	Ops []*PutRequest
}

// BatchTsItem is one operation's slice of a batched commit multicast;
// it carries exactly the fields of a TsMsg.
type BatchTsItem struct {
	Req     reqKey
	Key     string
	Ts      kvstore.Timestamp
	Abort   bool
	Attempt int
	Dup     bool
}

// BatchTsMsg is the primary's batched commit: the put accumulator packs
// the timestamps of co-arriving commits for one partition into a single
// multicast. Receivers route each item to its per-op put state (or the
// late-timestamp path), exactly as if it had arrived as its own TsMsg.
type BatchTsMsg struct {
	Items []BatchTsItem
}

// asTsMsg expands one item back into the equivalent single-op message.
func (it *BatchTsItem) asTsMsg() *TsMsg {
	return &TsMsg{Req: it.Req, Key: it.Key, Ts: it.Ts, Abort: it.Abort, Attempt: it.Attempt, Dup: it.Dup}
}

// BatchGetRequest is a client's batched read: MultiGet (and the traffic
// engine's batched arms) packs the gets headed for one node into a
// single datagram. The node serves each embedded request independently
// and replies per op, so retries and duplicate-get coalescing work
// unchanged.
type BatchGetRequest struct {
	Reqs []*GetRequest
}

// ForwardedGet is a handoff node passing a get it cannot serve to the
// primary, which replies to the client directly (§4.4).
type ForwardedGet struct {
	Req GetRequest
}

// Recovery protocol (over streams).

// FetchHandoffReq asks the handoff node for everything stored on behalf
// of the recovering node for one partition.
type FetchHandoffReq struct {
	Partition int
}

// FetchHandoffReply returns the handoff objects. Size on the stream is
// the sum of object sizes, so recovery traffic is charged realistically.
type FetchHandoffReply struct {
	Objects []*kvstore.Object
}

// FetchRangeReq asks a partition's primary for every object in the
// partition (ring expansion, §4.4: "the node contacts the primary node
// to retrieve all keys stored in the hash range").
type FetchRangeReq struct {
	Partition int
}

// FetchRangeReply returns the partition's objects. Pending lists the
// puts still open in the responder's WAL for the partition (harmonia
// clusters only): their commits are not in Objects yet, and a fetcher
// that was outside the put multicast group when they were prepared has
// no other way to learn them — it must re-fetch until they resolve
// before serving reads (see syncPartition).
type FetchRangeReply struct {
	Objects []*kvstore.Object
	Pending []PendingPut
}

// PendingPut names one in-flight put at a fetch responder.
type PendingPut struct {
	Key string
	Req reqKey
}

// LockQuery is the new primary's post-promotion probe (§4.4 "failures
// during put"): which objects does each replica still hold locked, and
// at what committed version.
type LockQuery struct {
	Partition int
}

// LockInfo describes one locked object at a replica.
type LockInfo struct {
	Key    string
	ReqTag reqKey            // which put this lock belongs to
	Ts     kvstore.Timestamp // zero until the timestamp was seen
	Obj    *kvstore.Object   // the prepared object from the WAL
}

// LockQueryReply lists a replica's locked objects. MaxSeq is the
// replica's primary logical clock: the querying (newly promoted) primary
// advances past the maximum, so its future commits dominate every commit
// the old primary issued — even ones this node never witnessed (possible
// under any-k puts with a lossy network).
type LockQueryReply struct {
	From   int
	Locked []LockInfo
	MaxSeq uint64
}

// CommitOrder tells replicas to commit a locked object with the given
// timestamp (new-primary resolution).
type CommitOrder struct {
	Key string
	Ts  kvstore.Timestamp
}

// AbortOrder tells replicas to abandon a locked object.
type AbortOrder struct {
	Key string
}

// OrderAck confirms a CommitOrder/AbortOrder.
type OrderAck struct {
	Key  string
	From int
}

// ResolveRequest asks the current primary of a partition to run lock
// resolution: sent by a replica stuck with an orphaned locked object
// after the coordinating primary died mid-put.
type ResolveRequest struct {
	Partition int
}

// VersionQuery asks a replica for its committed versions of keys (round
// two of new-primary resolution: a version carrying the locked put's
// client quadruplet proves the old primary committed it somewhere).
type VersionQuery struct {
	Keys []string
}

// VersionReply maps each queried key to its committed version (zero when
// the replica has no committed copy).
type VersionReply struct {
	From int
	Vers map[string]kvstore.Timestamp
}
