package core

import (
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Batched client operations (DESIGN.md §16). MultiPut and MultiGet pack
// the ops headed for the same destination into one wire transfer; every
// op keeps its own ClientSeq, its own reply future and its own retry
// budget, so failure handling is identical to the single-op calls — a
// batch is never acknowledged or retried as a unit.

// PutOp is one operation in a MultiPut.
type PutOp struct {
	Key   string
	Value any
	Size  int
}

// MultiPut issues the ops concurrently, packing those that share a
// partition (multicast address) into one batched prepare multicast each.
// Results and errors are positional; errs[i] is non-nil when op i
// exhausted its retries.
func (c *Client) MultiPut(p *sim.Proc, ops []PutOp) ([]OpResult, []error) {
	start := p.Now()
	results := make([]OpResult, len(ops))
	errs := make([]error, len(ops))
	if len(ops) == 0 {
		return results, errs
	}
	ids := make([]uint64, len(ops))
	futs := make([]*sim.Future[any], len(ops))
	type group struct {
		addr  netsim.IP
		batch *BatchPutRequest
		size  int
	}
	var groups []*group
	byAddr := make(map[netsim.IP]*group)
	for i, op := range ops {
		c.seq++
		ids[i] = c.seq
		req := &PutRequest{
			Key:        op.Key,
			Value:      op.Value,
			Size:       op.Size,
			Client:     c.stack.IP(),
			ClientPort: c.cfg.ReplyPort,
			ClientSeq:  ids[i],
		}
		futs[i] = sim.NewFuture[any](c.stack.Sim())
		c.pending[ids[i]] = futs[i]
		a := c.cfg.Multicast.AddrOfKey(op.Key)
		g := byAddr[a]
		if g == nil {
			g = &group{addr: a, batch: &BatchPutRequest{}, size: batchHeader}
			byAddr[a] = g
			groups = append(groups, g)
		}
		g.batch.Ops = append(g.batch.Ops, req)
		g.size += op.Size + putHeaderSize
	}

	// One prepare multicast per partition, transfers in parallel. The
	// receivers explode the batch into per-op handlers; replies come back
	// per op. Under PerOpPrepares (harmonia clusters) each op keeps its
	// own single-op framing so the in-switch dirty-set parser sees every
	// prepare; the transfers still overlap.
	wg := sim.NewGroup(c.stack.Sim())
	send := func(data any, size int, addr netsim.IP) {
		wg.Add(1)
		c.stack.Sim().Spawn("client-multiput", func(p *sim.Proc) {
			defer wg.Done()
			// A failed transfer surfaces as the ops' reply timeouts below.
			_, _ = c.stack.SendMulticast(p, transport.McastOpts{
				To:        addr,
				ToPort:    c.cfg.DataPort,
				Data:      data,
				Size:      size,
				Receivers: c.cfg.R,
				K:         c.cfg.QuorumK,
				Timeout:   c.cfg.OpTimeout,
			})
		})
	}
	for _, g := range groups {
		if c.cfg.PerOpPrepares {
			for _, req := range g.batch.Ops {
				send(req, req.Size+putHeaderSize, g.addr)
			}
			continue
		}
		send(g.batch, g.size, g.addr)
	}
	wg.Wait(p)

	// Collect per-op replies under one shared deadline (the futures
	// resolve independently, so scanning in order still bounds the whole
	// pass by OpTimeout). Unacknowledged ops fall back to the single-op
	// retry path under the same ClientSeq.
	deadline := start + c.cfg.OpTimeout
	for i := range ops {
		var rep *PutReply
		if raw, ok := futs[i].WaitTimeout(p, deadline-p.Now()); ok {
			rep = raw.(*PutReply)
		}
		if rep != nil && rep.OK {
			results[i] = OpResult{Latency: p.Now() - start, Size: ops[i].Size, Version: rep.Ver}
			continue
		}
		last := "timeout"
		if rep != nil {
			last = rep.Err
		}
		delete(c.pending, ids[i])
		if c.cfg.MaxRetries < 1 {
			results[i] = OpResult{Latency: p.Now() - start}
			errs[i] = &OpError{Op: "put", Key: ops[i].Key, Attempts: 1, Last: last}
			continue
		}
		c.backoff(p, 0)
		results[i], errs[i] = c.putAttempts(p, start, ops[i].Key, ops[i].Value, ops[i].Size, ids[i], 1, last)
		results[i].Retries++ // the batched attempt
	}
	return results, errs
}

// MultiGet reads the keys, packing those that hash to the same node
// (unicast address) into one batched request datagram each. Results and
// errors are positional, as in MultiPut.
func (c *Client) MultiGet(p *sim.Proc, keys []string) ([]OpResult, []error) {
	start := p.Now()
	results := make([]OpResult, len(keys))
	errs := make([]error, len(keys))
	if len(keys) == 0 {
		return results, errs
	}
	ids := make([]uint64, len(keys))
	futs := make([]*sim.Future[any], len(keys))
	type group struct {
		addr  netsim.IP
		batch *BatchGetRequest
	}
	var groups []*group
	byAddr := make(map[netsim.IP]*group)
	for i, key := range keys {
		c.seq++
		ids[i] = c.seq
		req := &GetRequest{
			Key:        key,
			ReqID:      ids[i],
			Client:     c.stack.IP(),
			ClientPort: c.cfg.ReplyPort,
		}
		futs[i] = sim.NewFuture[any](c.stack.Sim())
		c.pending[ids[i]] = futs[i]
		a := c.cfg.Unicast.AddrOfKey(key)
		g := byAddr[a]
		if g == nil {
			g = &group{addr: a, batch: &BatchGetRequest{}}
			byAddr[a] = g
			groups = append(groups, g)
		}
		g.batch.Reqs = append(g.batch.Reqs, req)
	}
	for _, g := range groups {
		// Fragment below the transport MTU; receivers serve each request
		// independently, so splitting changes framing only.
		reqs := g.batch.Reqs
		for len(reqs) > 0 {
			chunk := reqs
			if len(chunk) > maxGetReqsPerMsg {
				chunk = chunk[:maxGetReqsPerMsg]
			}
			c.udp.SendTo(g.addr, c.cfg.DataPort, &BatchGetRequest{Reqs: chunk},
				batchHeader+len(chunk)*getReqSize)
			reqs = reqs[len(chunk):]
		}
	}
	deadline := start + c.cfg.OpTimeout
	for i := range keys {
		if raw, ok := futs[i].WaitTimeout(p, deadline-p.Now()); ok {
			rep := raw.(*GetReply)
			results[i] = OpResult{
				Latency: p.Now() - start,
				Found:   rep.Found,
				Value:   rep.Value,
				Size:    rep.Size,
				Version: rep.Ver,
			}
			continue
		}
		delete(c.pending, ids[i])
		if c.cfg.MaxRetries < 1 {
			results[i] = OpResult{Latency: p.Now() - start}
			errs[i] = &OpError{Op: "get", Key: keys[i], Attempts: 1, Last: "timeout"}
			continue
		}
		c.backoff(p, 0)
		results[i], errs[i] = c.getAttempts(p, start, keys[i], ids[i], 1)
		results[i].Retries++ // the batched attempt
	}
	return results, errs
}
