package core

import (
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
)

// pair wires two hosts through a tiny L3 switch and returns their
// stacks.
func pair(t *testing.T) (*sim.Simulator, *transport.Stack, *transport.Stack) {
	t.Helper()
	s := sim.New(1)
	nw := netsim.NewNetwork(s)
	a := nw.NewHost("a", netsim.MustParseIP("10.0.0.1"))
	b := nw.NewHost("b", netsim.MustParseIP("10.0.0.2"))
	sw := nw.NewSwitch("sw", 2, time.Microsecond)
	nw.Connect(a.Port(), sw.Port(0), netsim.Gbps(1, 0))
	nw.Connect(b.Port(), sw.Port(1), netsim.Gbps(1, 0))
	hosts := map[netsim.IP]int{a.IP(): 0, b.IP(): 1}
	macs := map[netsim.IP]netsim.MAC{a.IP(): a.MAC(), b.IP(): b.MAC()}
	sw.SetPipeline(netsim.PipelineFunc(func(sw *netsim.Switch, pkt *netsim.Packet, in int) {
		if port, ok := hosts[pkt.DstIP]; ok {
			c := pkt.Clone()
			c.DstMAC = macs[pkt.DstIP]
			sw.Output(port, c)
			return
		}
		sw.Drop(pkt)
	}))
	return s, transport.NewStack(a), transport.NewStack(b)
}

func TestConnPoolPreservesOrderAcrossQueuedSends(t *testing.T) {
	s, a, b := pair(t)
	ln := b.MustListen(8000)
	var got []int
	s.Spawn("server", func(p *sim.Proc) {
		conn, ok := ln.Accept(p)
		if !ok {
			return
		}
		for {
			m, ok := conn.Recv(p)
			if !ok {
				return
			}
			got = append(got, m.Data.(int))
		}
	})
	pool := newConnPool(a)
	s.At(0, func() {
		// Burst of sends before the dial even completes: the writer proc
		// must deliver them in order.
		for i := 0; i < 10; i++ {
			pool.Send(b.IP(), 8000, i, 1000)
		}
	})
	if err := s.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("received %d messages, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
	s.Shutdown()
}

func TestConnPoolRedialsAfterPeerFailure(t *testing.T) {
	s, a, b := pair(t)
	ln := b.MustListen(8000)
	var got []string
	s.Spawn("server", func(p *sim.Proc) {
		for {
			conn, ok := ln.Accept(p)
			if !ok {
				return
			}
			s.Spawn("reader", func(p *sim.Proc) {
				for {
					m, ok := conn.Recv(p)
					if !ok {
						return
					}
					got = append(got, m.Data.(string))
				}
			})
		}
	})
	pool := newConnPool(a)
	s.At(0, func() { pool.Send(b.IP(), 8000, "one", 100) })
	// Cut the peer: the cached writer dies.
	s.At(50*time.Millisecond, func() { b.Host().SetDown(true) })
	s.At(60*time.Millisecond, func() { pool.Send(b.IP(), 8000, "lost", 100) })
	// Peer returns: the next Send must establish a fresh connection.
	s.At(500*time.Millisecond, func() { b.Host().SetDown(false) })
	s.At(600*time.Millisecond, func() { pool.Send(b.IP(), 8000, "two", 100) })
	if err := s.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"one": true, "two": true}
	for _, v := range got {
		delete(want, v)
	}
	if len(want) != 0 {
		t.Fatalf("messages missing after redial: got %v", got)
	}
	s.Shutdown()
}

func TestObserveTsAdvancesClock(t *testing.T) {
	s, a, _ := pair(t)
	cfg := DefaultNodeConfig()
	cfg.Addr.IP = a.IP()
	n := NewNode(a, cfg)
	n.observeTs(kvstore.Timestamp{PrimarySeq: 7})
	if n.primarySeq != 7 {
		t.Fatalf("primarySeq = %d, want 7", n.primarySeq)
	}
	n.observeTs(kvstore.Timestamp{PrimarySeq: 3}) // older: no regression
	if n.primarySeq != 7 {
		t.Fatalf("primarySeq regressed to %d", n.primarySeq)
	}
	s.Shutdown()
}

func TestItoa(t *testing.T) {
	for _, c := range []struct {
		n    int
		want string
	}{{0, "0"}, {7, "7"}, {15, "15"}, {120, "120"}} {
		if got := itoa(c.n); got != c.want {
			t.Errorf("itoa(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
