package core

import (
	"repro/internal/controller"
	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/switchcache"
)

// CacheCodec adapts the NICEKV wire format to the in-switch hot-key
// cache (package switchcache): it recognizes client get datagrams in the
// switch pipeline and synthesizes the GetReply a storage node would have
// sent. The synthesized reply arrives on the client's UDP reply socket
// instead of its TCP reply stream — the switch cannot speak a stream
// protocol — which is why Client.Start also listens for datagram replies.
type CacheCodec struct {
	// DataPort is the storage nodes' request port; only UDP datagrams to
	// it are candidate gets.
	DataPort uint16
}

// ParseGet implements switchcache.Parser.
func (c CacheCodec) ParseGet(pkt *netsim.Packet) (string, bool) {
	if pkt.Proto != netsim.ProtoUDP || pkt.DstPort != c.DataPort {
		return "", false
	}
	req, ok := pkt.Payload.(*GetRequest)
	if !ok {
		return "", false
	}
	return req.Key, true
}

// MakeReply implements switchcache.Parser.
func (c CacheCodec) MakeReply(pkt *netsim.Packet, value any, size int, ver uint64) switchcache.Reply {
	req := pkt.Payload.(*GetRequest)
	return switchcache.Reply{
		Payload: &GetReply{ReqID: req.ReqID, Found: true, Value: value, Size: size, Ver: ver},
		Size:    size + replyOverhead,
		DstPort: req.ClientPort,
	}
}

// SwitchCache is the slice of the in-switch cache a storage node drives:
// the write-through half of the invalidation protocol. The committing
// put's traffic traverses the caching switch, so in hardware these are
// inline effects; in the simulation the node invokes them synchronously
// at commit time, strictly before the commit acknowledgment can reach
// the client — the cache is never stale past commit.
type SwitchCache interface {
	// Invalidate drops the cached copy of key; ver (the committed put's
	// primary sequence) fences in-flight installs of older values.
	Invalidate(key string, ver uint64)
	// Update refreshes a resident entry in place with the committed
	// value, reporting whether one was resident.
	Update(key string, value any, size int, ver uint64) bool
}

// writeThrough applies the configured cache write policy for a committed
// object; called from applyLocal so every commit path — 2PC primary and
// secondary, late timestamps, new-primary resolution — invalidates
// before any acknowledgment is generated.
func (n *Node) writeThrough(obj *kvstore.Object) {
	if n.cfg.Cache == nil {
		return
	}
	ver := obj.Version.PrimarySeq
	if n.cfg.CacheUpdateOnPut {
		n.cfg.Cache.Update(obj.Key, obj.Value, obj.Size, ver)
		return
	}
	n.cfg.Cache.Invalidate(obj.Key, ver)
}

// handleCacheFetch answers the controller's request for a hot object's
// current committed copy (the install half of the cache protocol): read
// it from the store — charging the disk — and ship it to the metadata
// service, which forwards it to the switch as an Install.
func (n *Node) handleCacheFetch(p *sim.Proc, req *controller.CacheFetchRequest) {
	rep := &controller.CacheFetchReply{Key: req.Key}
	size := ctrlMsgSize
	if obj, ok := n.store.Get(p, req.Key); ok && (req.MaxSize <= 0 || obj.Size <= req.MaxSize) {
		rep.Found = true
		rep.Value = obj.Value
		rep.Size = obj.Size
		rep.Ver = obj.Version.PrimarySeq
		size += obj.Size
	}
	n.ctrl.SendTo(n.cfg.Meta, n.cfg.MetaPort, rep, size)
}
