package core

import (
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
)

// outMsg is one queued message for a pooled connection.
type outMsg struct {
	data any
	size int
}

// connWriter serializes sends on one cached stream connection: streams
// allow a single in-flight Send, so concurrent protocol replies to the
// same peer queue here and a writer proc drains them in order.
type connWriter struct {
	q      *sim.Queue[outMsg]
	failed bool
}

// connPool caches outbound connections per (peer, port), dialing lazily.
// The paper's nodes keep server-to-client connections open across
// operations; this is that cache.
type connPool struct {
	stack   *transport.Stack
	writers map[connPoolKey]*connWriter
}

type connPoolKey struct {
	ip   netsim.IP
	port uint16
}

func newConnPool(stack *transport.Stack) *connPool {
	return &connPool{stack: stack, writers: make(map[connPoolKey]*connWriter)}
}

// Send queues msg for delivery to ip:port, establishing the connection on
// first use. Delivery is best-effort: a dead peer's writer drops its
// queue (the protocol layers above carry their own timeouts).
func (cp *connPool) Send(ip netsim.IP, port uint16, data any, size int) {
	key := connPoolKey{ip, port}
	w, ok := cp.writers[key]
	if ok && w.failed {
		delete(cp.writers, key)
		ok = false
	}
	if !ok {
		w = &connWriter{q: sim.NewQueue[outMsg](cp.stack.Sim())}
		cp.writers[key] = w
		cp.stack.Sim().Spawn("connwriter", func(p *sim.Proc) {
			conn, err := cp.stack.Dial(p, ip, port)
			if err != nil {
				w.failed = true
				w.q.Close()
				return
			}
			defer conn.Close()
			for {
				m, ok := w.q.Pop(p)
				if !ok {
					return
				}
				if err := conn.Send(p, m.data, m.size); err != nil {
					w.failed = true
					w.q.Close()
					return
				}
			}
		})
	}
	w.q.Push(outMsg{data: data, size: size})
}

// CloseAll drops every cached connection (node restart).
func (cp *connPool) CloseAll() {
	for k, w := range cp.writers {
		if !w.failed {
			w.q.Close()
		}
		delete(cp.writers, k)
	}
}
