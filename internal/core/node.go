package core

import (
	"time"

	"repro/internal/controller"
	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/transport"
)

// NodeConfig parameterizes one NICEKV storage node.
type NodeConfig struct {
	Addr           controller.NodeAddr
	Meta           netsim.IP // metadata service address
	MetaPort       uint16
	Space          ring.Space // key -> partition
	HeartbeatEvery sim.Time
	// AckTimeout is one protocol-phase wait; a peer missing two in a row
	// is reported to the metadata service (§4.4 failure detection).
	AckTimeout sim.Time
	Disk       kvstore.DiskConfig
	// QuorumK, when non-zero, makes the primary commit after any K
	// participants (itself included) finish each phase, mirroring the
	// any-k multicast transport (§5, §6.3).
	QuorumK int
	// CPUPerOp is the per-request processing cost charged on the node's
	// (serial) CPU; it is what makes a hot node a bottleneck.
	CPUPerOp sim.Time
	// Cache, when non-nil, is the in-switch hot-key cache this node's
	// traffic traverses; every commit write-throughs to it (invalidate or
	// update) before the client can be acknowledged.
	Cache SwitchCache
	// CacheUpdateOnPut selects write-update (refresh the cached copy in
	// place) over the default write-invalidate.
	CacheUpdateOnPut bool
}

// DefaultNodeConfig fills the timing knobs.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{
		HeartbeatEvery: 500 * time.Millisecond,
		AckTimeout:     250 * time.Millisecond,
		Disk:           kvstore.SSD(),
		CPUPerOp:       25 * time.Microsecond,
	}
}

// NodeStats counts protocol activity on one node.
type NodeStats struct {
	Puts        int64 // puts participated in (committed)
	PutsPrimary int64 // puts coordinated as primary
	Aborts      int64
	Gets        int64
	GetForwards int64 // handoff misses forwarded to the primary
	Reports     int64 // peer-failure reports sent
	Resolutions int64 // locked objects resolved after promotion
}

// putState tracks one in-flight put at a participant.
type putState struct {
	req  *PutRequest
	ack1 map[int]bool
	ack2 map[int]bool
	sig  *sim.Queue[struct{}]
	ts   *sim.Future[*TsMsg]
}

// orphanState buffers protocol messages that raced ahead of the local
// put handler (acks can outrun the primary's own disk write).
type orphanState struct {
	ack1 map[int]bool
	ack2 map[int]bool
	ts   *TsMsg
}

// Node is one NICEKV storage node.
type Node struct {
	cfg   NodeConfig
	stack *transport.Stack
	s     *sim.Simulator
	store *kvstore.Store
	pool  *connPool

	data  *transport.UDPSocket
	mcast *transport.MulticastReceiver
	ctrl  *transport.UDPSocket

	views      map[int]*controller.PartitionView
	handoffFor map[int]bool
	joined     map[netsim.IP]bool

	puts       map[reqKey]*putState
	orphans    map[reqKey]*orphanState
	primarySeq uint64
	stats      NodeStats
	recovering bool
	resolving  map[int]bool  // partitions with a resolution in flight
	cpu        *sim.Resource // per-node serial processing
}

// NewNode builds a node on a host's transport stack.
func NewNode(stack *transport.Stack, cfg NodeConfig) *Node {
	return &Node{
		cfg:        cfg,
		stack:      stack,
		s:          stack.Sim(),
		store:      kvstore.New(stack.Sim(), cfg.Disk),
		pool:       newConnPool(stack),
		views:      make(map[int]*controller.PartitionView),
		handoffFor: make(map[int]bool),
		joined:     make(map[netsim.IP]bool),
		puts:       make(map[reqKey]*putState),
		orphans:    make(map[reqKey]*orphanState),
		resolving:  make(map[int]bool),
		cpu:        sim.NewResource(stack.Sim()),
	}
}

// Store exposes the local engine (tests and experiments inspect it).
func (n *Node) Store() *kvstore.Store { return n.store }

// Stats returns protocol counters.
func (n *Node) Stats() NodeStats { return n.stats }

// Index returns the node's ring index.
func (n *Node) Index() int { return n.cfg.Addr.Index }

// IP returns the node's address.
func (n *Node) IP() netsim.IP { return n.cfg.Addr.IP }

// Start binds the node's endpoints and spawns its service processes.
func (n *Node) Start() {
	n.data = n.stack.MustBindUDP(n.cfg.Addr.DataPort)
	n.mcast = n.stack.MustBindMulticast(n.cfg.Addr.DataPort)
	n.ctrl = n.stack.MustBindUDP(n.cfg.Addr.CtrlPort)
	ln := n.stack.MustListen(n.cfg.Addr.DataPort)

	n.s.Spawn(n.name("hb"), n.heartbeatLoop)
	n.s.Spawn(n.name("ctrl"), n.ctrlLoop)
	n.s.Spawn(n.name("data"), n.dataLoop)
	n.s.Spawn(n.name("mcast"), n.mcastLoop)
	n.s.Spawn(n.name("accept"), func(p *sim.Proc) {
		for {
			conn, ok := ln.Accept(p)
			if !ok {
				return
			}
			n.s.Spawn(n.name("peer"), func(p *sim.Proc) { n.serveConn(p, conn) })
		}
	})
}

func (n *Node) name(role string) string {
	return "node" + itoa(n.cfg.Addr.Index) + "-" + role
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}

// heartbeatLoop reports liveness and load to the metadata service.
func (n *Node) heartbeatLoop(p *sim.Proc) {
	for {
		p.Sleep(n.cfg.HeartbeatEvery)
		st := n.store.Stats()
		hs := n.stack.Host().Stats()
		n.ctrl.SendTo(n.cfg.Meta, n.cfg.MetaPort, &controller.Heartbeat{
			Node: n.cfg.Addr.Index,
			Load: controller.LoadStats{
				Puts: st.Puts, Gets: st.Gets,
				BytesIn: hs.BytesRecv, BytesOut: hs.BytesSent,
			},
		}, ctrlMsgSize)
	}
}

// ctrlLoop applies membership updates from the metadata service.
func (n *Node) ctrlLoop(p *sim.Proc) {
	for {
		d, ok := n.ctrl.Recv(p)
		if !ok {
			return
		}
		switch m := d.Data.(type) {
		case *controller.PartitionUpdate:
			n.applyView(m.View, false)
		case *controller.HandoffAssign:
			n.applyView(m.View, true)
		case *controller.HandoffRelease:
			n.releaseHandoff(m.Partition)
		case *controller.RejoinInfo:
			info := m
			n.s.Spawn(n.name("recover"), func(p *sim.Proc) { n.recover(p, info) })
		case *controller.ExpandAssign:
			view, source := m.View, m.Source
			n.s.Spawn(n.name("expand"), func(p *sim.Proc) { n.expand(p, view, source) })
		case *controller.CacheFetchRequest:
			req := m
			n.s.Spawn(n.name("cachefetch"), func(p *sim.Proc) { n.handleCacheFetch(p, req) })
		}
	}
}

// applyView installs a new partition view, adjusting multicast
// subscriptions and detecting promotion to primary.
func (n *Node) applyView(v *controller.PartitionView, asHandoff bool) {
	old := n.views[v.Partition]
	if old != nil && old.Epoch >= v.Epoch {
		return
	}
	me := n.cfg.Addr.Index
	participating := false
	for _, r := range v.PutParticipants() {
		if r.Index == me {
			participating = true
		}
	}
	if !participating {
		// We were dropped from this partition (failure of self as seen by
		// the controller, or handoff release through a fresh view).
		delete(n.views, v.Partition)
		n.handoffFor[v.Partition] = false
		n.leaveGroup(v.GroupIP)
		return
	}
	n.views[v.Partition] = v
	if asHandoff {
		n.handoffFor[v.Partition] = true
	}
	n.joinGroup(v.GroupIP)

	wasPrimary := old != nil && old.Primary().Index == me
	isPrimary := v.Primary().Index == me
	if isPrimary && !wasPrimary && old != nil {
		// Promoted mid-flight: resolve objects the old primary left
		// locked (§4.4 "failures during put").
		n.maybeResolve(v.Partition)
	}
}

// maybeResolve runs lock resolution for a partition this node leads,
// debounced to one run at a time.
func (n *Node) maybeResolve(part int) {
	v := n.views[part]
	if v == nil || v.Primary().Index != n.cfg.Addr.Index || n.resolving[part] {
		return
	}
	n.resolving[part] = true
	n.s.Spawn(n.name("resolve"), func(p *sim.Proc) {
		defer func() { n.resolving[part] = false }()
		n.resolveLocks(p, v)
	})
}

func (n *Node) joinGroup(g netsim.IP) {
	if !n.joined[g] {
		n.joined[g] = true
		n.stack.Host().JoinMulticast(g)
	}
}

func (n *Node) leaveGroup(g netsim.IP) {
	// Only leave if no remaining view uses this group.
	for _, v := range n.views {
		if v.GroupIP == g {
			return
		}
	}
	if n.joined[g] {
		delete(n.joined, g)
		n.stack.Host().LeaveMulticast(g)
	}
}

// releaseHandoff drops handoff data for a partition whose owner is back.
func (n *Node) releaseHandoff(part int) {
	n.handoffFor[part] = false
	for _, obj := range n.store.HandoffObjects() {
		if n.cfg.Space.PartitionOf(obj.Key) == part {
			n.store.DeleteHandoff(obj.Key)
		}
	}
	// The controller's follow-up PartitionUpdate (without us) arrives
	// separately and clears the view.
	delete(n.views, part)
}

// dataLoop dispatches datagrams: get requests, protocol acks, timestamp
// multicasts, forwarded gets, and resolution orders.
func (n *Node) dataLoop(p *sim.Proc) {
	for {
		d, ok := n.data.Recv(p)
		if !ok {
			return
		}
		switch m := d.Data.(type) {
		case *GetRequest:
			req := m
			n.s.Spawn(n.name("get"), func(p *sim.Proc) { n.handleGet(p, req, false) })
		case *ForwardedGet:
			req := m.Req
			n.s.Spawn(n.name("fwdget"), func(p *sim.Proc) { n.handleGet(p, &req, true) })
		case *Ack1:
			if ps := n.puts[m.Req]; ps != nil {
				ps.ack1[m.From] = true
				ps.sig.Push(struct{}{})
			} else {
				n.orphan(m.Req).ack1[m.From] = true
			}
		case *Ack2:
			if ps := n.puts[m.Req]; ps != nil {
				ps.ack2[m.From] = true
				ps.sig.Push(struct{}{})
			} else {
				n.orphan(m.Req).ack2[m.From] = true
			}
		case *TsMsg:
			if ps := n.puts[m.Req]; ps != nil {
				if !ps.ts.Done() {
					ps.ts.Set(m)
				}
			} else {
				n.lateTs(m)
			}
		case *CommitOrder:
			n.applyCommitOrder(m)
		case *AbortOrder:
			n.applyAbortOrder(m)
		case *ResolveRequest:
			n.maybeResolve(m.Partition)
		}
	}
}

// orphan returns (allocating) the early-message buffer for req.
func (n *Node) orphan(k reqKey) *orphanState {
	o := n.orphans[k]
	if o == nil {
		o = &orphanState{ack1: make(map[int]bool), ack2: make(map[int]bool)}
		n.orphans[k] = o
		if len(n.orphans) > 4096 {
			// Bound stale entries from aborted operations.
			for key := range n.orphans {
				delete(n.orphans, key)
				break
			}
		}
	}
	return o
}

// registerPut installs put state, merging any messages that arrived
// early.
func (n *Node) registerPut(req *PutRequest) *putState {
	ps := &putState{
		req:  req,
		ack1: make(map[int]bool),
		ack2: make(map[int]bool),
		sig:  sim.NewQueue[struct{}](n.s),
		ts:   sim.NewFuture[*TsMsg](n.s),
	}
	k := req.key()
	if o, ok := n.orphans[k]; ok {
		delete(n.orphans, k)
		for f := range o.ack1 {
			ps.ack1[f] = true
		}
		for f := range o.ack2 {
			ps.ack2[f] = true
		}
		if o.ts != nil {
			ps.ts.Set(o.ts)
		}
	}
	n.puts[k] = ps
	return ps
}

// mcastLoop receives put transfers and spawns a handler per put.
func (n *Node) mcastLoop(p *sim.Proc) {
	for {
		tr, ok := n.mcast.Recv(p)
		if !ok {
			return
		}
		req, ok := tr.Data.(*PutRequest)
		if !ok {
			continue
		}
		n.s.Spawn(n.name("put"), func(p *sim.Proc) { n.handlePut(p, req) })
	}
}

// reportFailure accuses a peer to the metadata service.
func (n *Node) reportFailure(suspect int) {
	n.stats.Reports++
	n.ctrl.SendTo(n.cfg.Meta, n.cfg.MetaPort, &controller.FailureReport{
		Reporter: n.cfg.Addr.Index,
		Suspect:  suspect,
	}, ctrlMsgSize)
}

// Crash cuts the node off the network, emulating a transient fail-stop
// failure. Persistent state (objects, WAL) survives; in-memory state
// (locks, in-flight puts) is lost at Restart.
func (n *Node) Crash() {
	n.stack.Host().SetDown(true)
}

// Restart brings a crashed node back: memory state is reset and the node
// rejoins through the two-phase §4.4 procedure, fetching missed objects
// from its handoff before becoming get-visible.
func (n *Node) Restart() {
	n.stack.Host().SetDown(false)
	n.store.ResetLocks()
	n.puts = make(map[reqKey]*putState)
	n.orphans = make(map[reqKey]*orphanState)
	n.pool.CloseAll()
	// Leave all groups until the controller re-adds us.
	for g := range n.joined {
		n.stack.Host().LeaveMulticast(g)
		delete(n.joined, g)
	}
	n.views = make(map[int]*controller.PartitionView)
	n.recovering = true
	n.ctrl.SendTo(n.cfg.Meta, n.cfg.MetaPort, &controller.RejoinRequest{Node: n.cfg.Addr.Index}, ctrlMsgSize)
}
