package core

import (
	"time"

	"repro/internal/controller"
	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/transport"
)

// NodeConfig parameterizes one NICEKV storage node.
type NodeConfig struct {
	Addr           controller.NodeAddr
	Meta           netsim.IP // metadata service address
	MetaPort       uint16
	Space          ring.Space // key -> partition
	HeartbeatEvery sim.Time
	// AckTimeout is one protocol-phase wait; a peer missing two in a row
	// is reported to the metadata service (§4.4 failure detection).
	AckTimeout sim.Time
	Disk       kvstore.DiskConfig
	// QuorumK, when non-zero, makes the primary commit after any K
	// participants (itself included) finish each phase, mirroring the
	// any-k multicast transport (§5, §6.3).
	QuorumK int
	// CPUPerOp is the per-request processing cost charged on the node's
	// (serial) CPU; it is what makes a hot node a bottleneck.
	CPUPerOp sim.Time
	// Cache, when non-nil, is the in-switch hot-key cache this node's
	// traffic traverses; every commit write-throughs to it (invalidate or
	// update) before the client can be acknowledged.
	Cache SwitchCache
	// CacheUpdateOnPut selects write-update (refresh the cached copy in
	// place) over the default write-invalidate.
	CacheUpdateOnPut bool
	// Harmonia, when non-nil, is the in-switch dirty-set stage this
	// node's traffic traverses; every commit and abort is reported to it
	// before the acknowledgment it unblocks can be generated.
	Harmonia HarmoniaHook
	// HarmoniaServe enables replica-side read serving: a get landing on
	// ReplicaPort (rewritten there by the dirty-set stage) is answered
	// from the local store, gated on the key having no in-flight write
	// here. Reads on the normal data port are primary-routed by
	// definition and are held unless this node believes itself primary —
	// the fabric can retarget the partition's reads to a freshly promoted
	// primary before the promotion announcement reaches it, and an any-k
	// laggard serving that window would return stale data. Off, gets are
	// served like before — the mode only exists so harmonia-off runs stay
	// bit-identical.
	HarmoniaServe bool
	// ReplicaPort, when nonzero, is the second data port the node serves
	// replica-routed reads on (the dirty-set stage rewrites clean gets to
	// a replica's physical IP and this port).
	ReplicaPort uint16
	// Storage, when non-nil, backs the node's store with the durable
	// sharded engine (internal/storage): crash drops unfsynced WAL state
	// and recovery really replays the log instead of resurrecting memory.
	Storage *storage.Config
	// CoalesceGets shares one store read among concurrent gets of the
	// same key on this node (thundering-herd suppression, DESIGN.md §16):
	// gets that pass the consistency gates while another get's store read
	// is in flight ride that read and are answered from its result. Off
	// by default — the serving path is bit-identical without it.
	CoalesceGets bool
	// PutBatchWindow, when > 0, arms the per-partition put accumulator:
	// a primary reaching its commit point lingers this long so
	// co-arriving commits for the same partition are drained together —
	// one timestamp-assignment pass, one fsync, one batched timestamp
	// multicast. 0 = off (bit-identical default path).
	PutBatchWindow sim.Time
	// PutBatchMax caps the ops drained per accumulated commit batch
	// (0 = 64).
	PutBatchMax int
}

// DefaultNodeConfig fills the timing knobs.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{
		HeartbeatEvery: 500 * time.Millisecond,
		AckTimeout:     250 * time.Millisecond,
		Disk:           kvstore.SSD(),
		CPUPerOp:       25 * time.Microsecond,
	}
}

// NodeStats counts protocol activity on one node.
type NodeStats struct {
	Puts        int64 // puts participated in (committed)
	PutsPrimary int64 // puts coordinated as primary
	Aborts      int64
	Gets        int64
	GetForwards int64 // handoff misses forwarded to the primary
	Reports     int64 // peer-failure reports sent
	Resolutions int64 // locked objects resolved after promotion
	DupPuts     int64 // retried puts answered from the dedup record
	GetsHeld    int64 // gets not answered: no consistent copy reachable
	// Read-distribution counters (harmonia mode): where this node's
	// answered gets were served from relative to partition leadership.
	GetsServedLocal     int64 // answered while primary of the key's partition
	GetsServedAsReplica int64 // answered as a non-primary replica
	GetsHeldConflict    int64 // replica-side holds: key had an in-flight write here
	GetsHeldNotPrimary  int64 // primary-routed gets held: this node is not (yet) primary
	// RecoveryFetchFails counts sync rounds that left at least one view
	// member unanswered (the fetch is retried until every member replies).
	RecoveryFetchFails int64
	// Batching counters (DESIGN.md §16).
	GetsCoalesced int64 // gets answered by riding another get's store read
	BatchCommits  int64 // accumulator batches drained as primary
	BatchedPuts   int64 // puts committed through those batches
}

// putState tracks one in-flight put at a participant.
type putState struct {
	req  *PutRequest
	ack1 map[int]bool
	ack2 map[int]bool
	sig  *sim.Queue[struct{}]
	ts   *sim.Future[*TsMsg]
	// gen is the node's restart generation at registration. A handler
	// that blocked across a crash/restart observes a newer generation and
	// abandons: its lock and put state were wiped by Restart, so touching
	// the store would corrupt the reborn node (e.g. unlocking a lock a
	// post-restart put now holds).
	gen int
}

// orphanState buffers protocol messages that raced ahead of the local
// put handler (acks can outrun the primary's own disk write).
type orphanState struct {
	ack1 map[int]bool
	ack2 map[int]bool
	ts   *TsMsg
}

// Node is one NICEKV storage node.
type Node struct {
	cfg   NodeConfig
	stack *transport.Stack
	s     *sim.Simulator
	store *kvstore.Store
	pool  *connPool

	data  *transport.UDPSocket
	rdata *transport.UDPSocket // replica-routed reads (harmonia mode only)
	mcast *transport.MulticastReceiver
	ctrl  *transport.UDPSocket

	views      map[int]*controller.PartitionView
	handoffFor map[int]bool
	joined     map[netsim.IP]bool

	puts       map[reqKey]*putState
	orphans    map[reqKey]*orphanState
	primarySeq uint64
	stats      NodeStats
	recovering bool
	rejoined   bool          // RejoinInfo received since the last Restart
	restartGen int           // invalidates older rejoin-retry processes
	resolving  map[int]bool  // partitions with a resolution in flight
	syncing    map[int]bool  // promoted any-k primary still range-syncing
	cpu        *sim.Resource // per-node serial processing

	// staleHandoff marks handoff-directory keys installed by a dedup
	// re-commit (TsMsg.Dup): the version may predate this node's stand-in
	// tenure, so a directory hit on such a key is forwarded to the
	// primary instead of served (get.go). Cleared when a genuine commit
	// supersedes the entry or the handoff stint ends.
	staleHandoff map[int]map[string]bool

	// reads tracks in-flight coalescable store reads by key
	// (CoalesceGets): the first get to reach the store becomes the read
	// leader, later arrivals park here and are answered from its result.
	reads map[string]*readState

	// batches holds the per-partition open commit batch (PutBatchWindow):
	// puts reaching the commit point while a batch leader lingers join it
	// instead of committing alone.
	batches map[int]*putBatch

	// committed remembers the versions of recently committed puts by
	// client quadruplet, so a retry of an already-committed put converges
	// on the original version instead of re-running 2PC (which could roll
	// a newer value back). Bounded FIFO; an evicted entry only costs the
	// retry a fresh — still convergent — protocol round.
	committed    map[reqKey]kvstore.Timestamp
	committedLog []reqKey
}

// committedCap bounds the put-dedup memory.
const committedCap = 4096

// NewNode builds a node on a host's transport stack.
func NewNode(stack *transport.Stack, cfg NodeConfig) *Node {
	store := kvstore.New(stack.Sim(), cfg.Disk)
	if cfg.Storage != nil {
		store = kvstore.NewDurable(stack.Sim(), cfg.Disk, *cfg.Storage)
	}
	return &Node{
		cfg:          cfg,
		stack:        stack,
		s:            stack.Sim(),
		store:        store,
		pool:         newConnPool(stack),
		views:        make(map[int]*controller.PartitionView),
		handoffFor:   make(map[int]bool),
		joined:       make(map[netsim.IP]bool),
		puts:         make(map[reqKey]*putState),
		orphans:      make(map[reqKey]*orphanState),
		resolving:    make(map[int]bool),
		syncing:      make(map[int]bool),
		cpu:          sim.NewResource(stack.Sim()),
		committed:    make(map[reqKey]kvstore.Timestamp),
		staleHandoff: make(map[int]map[string]bool),
		reads:        make(map[string]*readState),
		batches:      make(map[int]*putBatch),
	}
}

// recordCommit remembers a committed put for retry deduplication.
func (n *Node) recordCommit(ts kvstore.Timestamp) {
	k := reqKey{ts.Client, ts.ClientSeq}
	if _, ok := n.committed[k]; !ok {
		n.committedLog = append(n.committedLog, k)
		if len(n.committedLog) > committedCap {
			delete(n.committed, n.committedLog[0])
			n.committedLog = n.committedLog[1:]
		}
	}
	n.committed[k] = ts
}

// Store exposes the local engine (tests and experiments inspect it).
func (n *Node) Store() *kvstore.Store { return n.store }

// Stats returns protocol counters.
func (n *Node) Stats() NodeStats { return n.stats }

// Index returns the node's ring index.
func (n *Node) Index() int { return n.cfg.Addr.Index }

// IP returns the node's address.
func (n *Node) IP() netsim.IP { return n.cfg.Addr.IP }

// Start binds the node's endpoints and spawns its service processes.
func (n *Node) Start() {
	n.data = n.stack.MustBindUDP(n.cfg.Addr.DataPort)
	n.mcast = n.stack.MustBindMulticast(n.cfg.Addr.DataPort)
	n.ctrl = n.stack.MustBindUDP(n.cfg.Addr.CtrlPort)
	ln := n.stack.MustListen(n.cfg.Addr.DataPort)

	n.s.Spawn(n.name("hb"), n.heartbeatLoop)
	n.s.Spawn(n.name("ctrl"), n.ctrlLoop)
	n.s.Spawn(n.name("data"), n.dataLoop)
	n.s.Spawn(n.name("mcast"), n.mcastLoop)
	if n.cfg.ReplicaPort != 0 {
		n.rdata = n.stack.MustBindUDP(n.cfg.ReplicaPort)
		n.s.Spawn(n.name("rdata"), n.replicaDataLoop)
	}
	n.s.Spawn(n.name("accept"), func(p *sim.Proc) {
		for {
			conn, ok := ln.Accept(p)
			if !ok {
				return
			}
			n.s.Spawn(n.name("peer"), func(p *sim.Proc) { n.serveConn(p, conn) })
		}
	})
}

func (n *Node) name(role string) string {
	return "node" + itoa(n.cfg.Addr.Index) + "-" + role
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}

// heartbeatLoop reports liveness and load to the metadata service.
func (n *Node) heartbeatLoop(p *sim.Proc) {
	for {
		p.Sleep(n.cfg.HeartbeatEvery)
		st := n.store.Stats()
		hs := n.stack.Host().Stats()
		ep := make(map[int]uint64, len(n.views))
		for part, v := range n.views {
			ep[part] = v.Epoch
		}
		n.ctrl.SendTo(n.cfg.Meta, n.cfg.MetaPort, &controller.Heartbeat{
			Node: n.cfg.Addr.Index,
			Load: controller.LoadStats{
				Puts: st.Puts, Gets: st.Gets,
				BytesIn: hs.BytesRecv, BytesOut: hs.BytesSent,
			},
			Epochs: ep,
		}, ctrlMsgSize)
	}
}

// ctrlLoop applies membership updates from the metadata service.
func (n *Node) ctrlLoop(p *sim.Proc) {
	for {
		d, ok := n.ctrl.Recv(p)
		if !ok {
			return
		}
		switch m := d.Data.(type) {
		case *controller.PartitionUpdate:
			n.applyView(m.View, false)
		case *controller.HandoffAssign:
			n.applyView(m.View, true)
		case *controller.HandoffRelease:
			n.releaseHandoff(m.Partition)
		case *controller.RejoinInfo:
			info := m
			n.rejoined = true
			n.s.Spawn(n.name("recover"), func(p *sim.Proc) { n.recover(p, info) })
		case *controller.RejoinOrder:
			// The controller saw our heartbeat while it thinks we are down
			// (a missed RejoinRequest, or a failure verdict that raced our
			// restart): start the rejoin procedure over.
			n.Restart()
		case *controller.ExpandAssign:
			view := m.View
			n.s.Spawn(n.name("expand"), func(p *sim.Proc) { n.expand(p, view) })
		case *controller.CacheFetchRequest:
			req := m
			n.s.Spawn(n.name("cachefetch"), func(p *sim.Proc) { n.handleCacheFetch(p, req) })
		}
	}
}

// applyView installs a new partition view, adjusting multicast
// subscriptions and detecting promotion to primary.
func (n *Node) applyView(v *controller.PartitionView, asHandoff bool) {
	old := n.views[v.Partition]
	// Views order by (writer generation, epoch): a promoted standby's
	// views (higher Gen) supersede the old primary's regardless of
	// epoch, and a fenced zombie's announcements (lower Gen) are
	// rejected no matter how far its private epochs ran ahead.
	if old != nil && (v.Gen < old.Gen || (v.Gen == old.Gen && old.Epoch >= v.Epoch)) {
		return
	}
	if len(v.Replicas) == 0 {
		// Primary-less view: nothing can be served or committed under it.
		// The controller never announces one (a collapsed partition is
		// reseated through the first rejoiner), so this is a stale or
		// corrupt message — ignoring it beats dereferencing a primary
		// that does not exist.
		return
	}
	me := n.cfg.Addr.Index
	participating := false
	for _, r := range v.PutParticipants() {
		if r.Index == me {
			participating = true
		}
	}
	if !participating {
		// We were dropped from this partition (failure of self as seen by
		// the controller, or handoff release through a fresh view).
		delete(n.views, v.Partition)
		n.dropHandoff(v.Partition)
		n.leaveGroup(v.GroupIP)
		return
	}
	n.views[v.Partition] = v
	if Debug {
		dbg("node%d applyView part=%d epoch=%d handoff=%v members=%v", me, v.Partition, v.Epoch, asHandoff, v.PutParticipants())
	}
	adopted := false
	if asHandoff {
		n.handoffFor[v.Partition] = true
	} else if n.handoffFor[v.Partition] {
		// Promoted from stand-in to proper member: fold the handoff
		// directory into the main namespace — its objects are committed,
		// versioned writes — or subsequent commits would land in the
		// wrong namespace and reads would miss them.
		n.adoptHandoff(v.Partition)
		adopted = true
	}
	if (old == nil || adopted) && !asHandoff && v.Epoch > 1 &&
		!n.recovering && !n.syncing[v.Partition] {
		// This node was placed into the replica set without the §4.4
		// recovery or expansion protocol — cascading failures make the
		// controller re-purpose a handoff stand-in as a plain member. Its
		// store may miss anything committed before now, so sync the range
		// from the surviving members; gets stay held until it lands
		// (get.go). Bootstrap views (epoch 1) start empty everywhere and
		// need no sync; a recovering node syncs in recover() instead.
		part := v.Partition
		n.syncing[part] = true
		gen := n.restartGen
		n.s.Spawn(n.name("membersync"), func(p *sim.Proc) {
			defer func() { n.syncing[part] = false }()
			n.syncPartition(p, part, func() bool { return gen != n.restartGen })
		})
	}
	n.joinGroup(v.GroupIP)

	wasPrimary := old != nil && old.Primary().Index == me
	isPrimary := v.Primary().Index == me
	if isPrimary && !wasPrimary && old != nil {
		// Promoted mid-flight: resolve objects the old primary left
		// locked (§4.4 "failures during put").
		n.maybeResolve(v.Partition, old)
	}
}

// maybeResolve runs lock resolution for a partition this node leads,
// debounced to one run at a time. old, when non-nil, is the superseded
// view at the moment of promotion: members it names that the current
// view dropped are chased during the post-promotion range sync, since a
// falsely deposed (live) member can hold acked writes no current member
// ever saw.
func (n *Node) maybeResolve(part int, old *controller.PartitionView) {
	v := n.views[part]
	if v == nil || v.Primary().Index != n.cfg.Addr.Index || n.resolving[part] {
		return
	}
	n.resolving[part] = true
	gen := n.restartGen
	syncAfter := n.cfg.QuorumK > 0 && !n.syncing[part]
	if syncAfter {
		// Any-k promotion: this node may never have seen commits the old
		// primary acknowledged, so gets must be held from the instant of
		// promotion — resolution can stall for seconds on unreachable
		// peers, and a get served meanwhile would return a stale version.
		// Puts can flow again once resolution clears; gets stay held until
		// the range sync below lands (get.go).
		n.syncing[part] = true
	}
	var extra []controller.NodeAddr
	if old != nil {
		for _, m := range old.PutParticipants() {
			if m.Index != n.cfg.Addr.Index {
				extra = append(extra, m)
			}
		}
	}
	n.s.Spawn(n.name("resolve"), func(p *sim.Proc) {
		defer func() { n.resolving[part] = false }()
		n.resolveLocks(p, v, gen)
		if !syncAfter {
			return
		}
		if gen != n.restartGen {
			n.syncing[part] = false
			return
		}
		// The sync aborts on demotion or another restart.
		n.s.Spawn(n.name("sync"), func(p *sim.Proc) {
			defer func() { n.syncing[part] = false }()
			n.syncPartition(p, part, func() bool {
				if gen != n.restartGen {
					return true
				}
				nv := n.views[part]
				return nv == nil || nv.Primary().Index != n.cfg.Addr.Index
			}, extra...)
		})
	})
}

func (n *Node) joinGroup(g netsim.IP) {
	if !n.joined[g] {
		n.joined[g] = true
		n.stack.Host().JoinMulticast(g)
	}
}

func (n *Node) leaveGroup(g netsim.IP) {
	// Only leave if no remaining view uses this group.
	for _, v := range n.views {
		if v.GroupIP == g {
			return
		}
	}
	if n.joined[g] {
		delete(n.joined, g)
		n.stack.Host().LeaveMulticast(g)
	}
}

// dropHandoff ends a handoff stint for a partition, deleting its
// directory entries: leftovers would be served as fresh data if this
// node is ever assigned the same partition's handoff again.
func (n *Node) dropHandoff(part int) {
	n.handoffFor[part] = false
	delete(n.staleHandoff, part)
	for _, obj := range n.store.HandoffObjects() {
		if n.cfg.Space.PartitionOf(obj.Key) == part {
			n.store.DeleteHandoff(obj.Key)
		}
	}
}

// markStaleHandoff flags a handoff-directory key as non-servable (its
// install came from a dedup re-commit); clearStaleHandoff lifts the flag
// when a genuine commit supersedes the entry.
func (n *Node) markStaleHandoff(part int, key string) {
	m := n.staleHandoff[part]
	if m == nil {
		m = make(map[string]bool)
		n.staleHandoff[part] = m
	}
	m[key] = true
}

func (n *Node) clearStaleHandoff(part int, key string) {
	if m := n.staleHandoff[part]; m != nil {
		delete(m, key)
	}
}

// adoptHandoff moves a partition's handoff objects into the main
// namespace (versioned — stale copies are rejected) when this node turns
// from stand-in into proper member.
func (n *Node) adoptHandoff(part int) {
	n.handoffFor[part] = false
	delete(n.staleHandoff, part)
	for _, obj := range n.store.HandoffObjects() {
		if n.cfg.Space.PartitionOf(obj.Key) == part {
			n.observeTs(obj.Version)
			n.store.Apply(obj)
			n.store.DeleteHandoff(obj.Key)
		}
	}
}

// releaseHandoff drops handoff data for a partition whose owner is back.
func (n *Node) releaseHandoff(part int) {
	n.dropHandoff(part)
	// The controller's follow-up PartitionUpdate (without us) arrives
	// separately and clears the view.
	delete(n.views, part)
}

// replicaDataLoop serves reads the dirty-set stage rewrote to this node
// as a non-primary replica. The dedicated port is the routing-class
// signal: only packets the switch vouched for (key clean at traversal
// time) arrive here, so they may be answered from a non-primary — still
// gated on the key having no in-flight write locally.
func (n *Node) replicaDataLoop(p *sim.Proc) {
	for {
		d, ok := n.rdata.Recv(p)
		if !ok {
			return
		}
		if m, ok := d.Data.(*GetRequest); ok {
			req := m
			n.s.Spawn(n.name("rget"), func(p *sim.Proc) { n.handleGet(p, req, false, true) })
		}
	}
}

// dataLoop dispatches datagrams: get requests, protocol acks, timestamp
// multicasts, forwarded gets, and resolution orders.
func (n *Node) dataLoop(p *sim.Proc) {
	for {
		d, ok := n.data.Recv(p)
		if !ok {
			return
		}
		switch m := d.Data.(type) {
		case *GetRequest:
			req := m
			n.s.Spawn(n.name("get"), func(p *sim.Proc) { n.handleGet(p, req, false, false) })
		case *ForwardedGet:
			req := m.Req
			n.s.Spawn(n.name("fwdget"), func(p *sim.Proc) { n.handleGet(p, &req, true, false) })
		case *Ack1:
			if ps := n.puts[m.Req]; ps != nil {
				ps.ack1[m.From] = true
				ps.sig.Push(struct{}{})
			} else {
				n.orphan(m.Req).ack1[m.From] = true
			}
		case *Ack2:
			if ps := n.puts[m.Req]; ps != nil {
				ps.ack2[m.From] = true
				ps.sig.Push(struct{}{})
			} else {
				n.orphan(m.Req).ack2[m.From] = true
			}
		case *TsMsg:
			n.deliverTs(m)
		case *BatchTsMsg:
			// A batched commit is its items: each routes to its own put
			// state (or the late-timestamp path) exactly as if it had
			// arrived as a single TsMsg.
			for i := range m.Items {
				n.deliverTs(m.Items[i].asTsMsg())
			}
		case *BatchGetRequest:
			reqs := m.Reqs
			n.s.Spawn(n.name("bget"), func(p *sim.Proc) {
				for _, r := range reqs {
					n.handleGet(p, r, false, false)
				}
			})
		case *CommitOrder:
			n.applyCommitOrder(m)
		case *AbortOrder:
			n.applyAbortOrder(m)
		case *ResolveRequest:
			n.maybeResolve(m.Partition, nil)
		}
	}
}

// deliverTs routes a timestamp message to its in-flight put state, or to
// the late-timestamp path when the handler is gone (or the abort names a
// different delivery attempt than the live one).
func (n *Node) deliverTs(m *TsMsg) {
	ps := n.puts[m.Req]
	if ps != nil && m.Abort && m.Attempt != ps.req.Attempt {
		// An abort from a previous delivery attempt of the same
		// operation must not reach the live attempt — its Ack1 may
		// already count toward a commit. It may still name a
		// leftover prepared record, which lateTs attempt-matches.
		n.lateTs(m)
	} else if ps != nil {
		if !ps.ts.Done() {
			ps.ts.Set(m)
		}
	} else {
		n.lateTs(m)
	}
}

// orphan returns (allocating) the early-message buffer for req.
func (n *Node) orphan(k reqKey) *orphanState {
	o := n.orphans[k]
	if o == nil {
		o = &orphanState{ack1: make(map[int]bool), ack2: make(map[int]bool)}
		n.orphans[k] = o
		if len(n.orphans) > 4096 {
			// Bound stale entries from aborted operations.
			for key := range n.orphans {
				delete(n.orphans, key)
				break
			}
		}
	}
	return o
}

// registerPut installs put state, merging any messages that arrived
// early.
func (n *Node) registerPut(req *PutRequest) *putState {
	ps := &putState{
		req:  req,
		ack1: make(map[int]bool),
		ack2: make(map[int]bool),
		sig:  sim.NewQueue[struct{}](n.s),
		ts:   sim.NewFuture[*TsMsg](n.s),
		gen:  n.restartGen,
	}
	k := req.key()
	if o, ok := n.orphans[k]; ok {
		delete(n.orphans, k)
		for f := range o.ack1 {
			ps.ack1[f] = true
		}
		for f := range o.ack2 {
			ps.ack2[f] = true
		}
		if o.ts != nil && (!o.ts.Abort || o.ts.Attempt == req.Attempt) {
			ps.ts.Set(o.ts)
		}
	}
	n.puts[k] = ps
	return ps
}

// mcastLoop receives put transfers and spawns a handler per put. A
// batched prepare exists only on the wire: it is exploded here into
// independent per-op handlers, so locking, dedup, aborts and resolution
// never see the batch.
func (n *Node) mcastLoop(p *sim.Proc) {
	for {
		tr, ok := n.mcast.Recv(p)
		if !ok {
			return
		}
		switch m := tr.Data.(type) {
		case *PutRequest:
			req := m
			n.s.Spawn(n.name("put"), func(p *sim.Proc) { n.handlePut(p, req) })
		case *BatchPutRequest:
			for _, req := range m.Ops {
				req := req
				n.s.Spawn(n.name("put"), func(p *sim.Proc) { n.handlePut(p, req) })
			}
		}
	}
}

// reportFailure accuses a peer to the metadata service.
func (n *Node) reportFailure(suspect int) {
	n.stats.Reports++
	n.ctrl.SendTo(n.cfg.Meta, n.cfg.MetaPort, &controller.FailureReport{
		Reporter: n.cfg.Addr.Index,
		Suspect:  suspect,
	}, ctrlMsgSize)
}

// Crash cuts the node off the network, emulating a transient fail-stop
// failure. With a legacy store, persistent state (objects, WAL)
// survives and in-memory state (locks, in-flight puts) is lost at
// Restart. With a durable engine, the storage crash happens here, at
// the failure instant: the memory tier and every unfsynced WAL record
// are dropped deterministically, and recovery later rebuilds the store
// from snapshot + log replay.
func (n *Node) Crash() {
	n.stack.Host().SetDown(true)
	n.store.CrashStorage()
}

// Recovering reports whether the node is still get-invisible
// (mid-rejoin); tests assert a takeover never strands a rejoiner here.
func (n *Node) Recovering() bool { return n.recovering }

// View returns the node's installed view of partition part (nil when it
// holds none); tests assert a fenced zombie controller never moves it.
func (n *Node) View(part int) *controller.PartitionView { return n.views[part] }

// Restart brings a crashed node back: memory state is reset and the node
// rejoins through the two-phase §4.4 procedure, fetching missed objects
// from its handoff before becoming get-visible.
func (n *Node) Restart() {
	n.stack.Host().SetDown(false)
	n.store.ResetLocks()
	n.puts = make(map[reqKey]*putState)
	n.orphans = make(map[reqKey]*orphanState)
	n.pool.CloseAll()
	// Leave all groups until the controller re-adds us.
	for g := range n.joined {
		n.stack.Host().LeaveMulticast(g)
		delete(n.joined, g)
	}
	n.views = make(map[int]*controller.PartitionView)
	n.resolving = make(map[int]bool)
	n.syncing = make(map[int]bool)
	// Coalescing/batching state dies with the crash. Procs still parked
	// inside a read leader or batch leader observe the generation bump and
	// abandon; fresh ops must not join their corpses.
	n.reads = make(map[string]*readState)
	n.batches = make(map[int]*putBatch)
	// A handoff stint ends with the crash: the directory missed every
	// write while this node was down, so serving it in a later stint
	// would resurrect stale versions. The recovering owner does not need
	// it either — recovery syncs from the surviving members.
	n.handoffFor = make(map[int]bool)
	n.store.ClearHandoff()
	n.recovering = true
	n.rejoined = false
	n.restartGen++
	gen := n.restartGen
	n.ctrl.SendTo(n.cfg.Meta, n.cfg.MetaPort, &controller.RejoinRequest{Node: n.cfg.Addr.Index}, ctrlMsgSize)
	// The request is a datagram and the network may be lossy; retry until
	// the controller's RejoinInfo arrives (handleRejoin is idempotent).
	n.s.Spawn(n.name("rejoin-retry"), func(p *sim.Proc) {
		for {
			p.Sleep(2 * n.cfg.HeartbeatEvery)
			if gen != n.restartGen || n.rejoined {
				return
			}
			n.ctrl.SendTo(n.cfg.Meta, n.cfg.MetaPort, &controller.RejoinRequest{Node: n.cfg.Addr.Index}, ctrlMsgSize)
		}
	})
}
