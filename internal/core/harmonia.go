package core

import (
	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/transport"
)

// HarmoniaCodec adapts the NICEKV wire format to the in-switch dirty-set
// stage (package harmonia): it recognizes client get datagrams and the
// multicast chunk completing a put prepare's transfer in the switch
// pipeline.
type HarmoniaCodec struct {
	// DataPort is the storage nodes' request port; only UDP datagrams to
	// it are protocol traffic.
	DataPort uint16
}

// ParseGet implements harmonia.Parser. The returned request identifier
// mixes the client's stable request ID with its retry counter so
// retries can hash to a different replica.
func (c HarmoniaCodec) ParseGet(pkt *netsim.Packet) (string, uint64, bool) {
	if pkt.Proto != netsim.ProtoUDP || pkt.DstPort != c.DataPort {
		return "", 0, false
	}
	req, ok := pkt.Payload.(*GetRequest)
	if !ok {
		return "", 0, false
	}
	return req.Key, req.ReqID + uint64(req.Attempt)<<48, true
}

// ParsePut implements harmonia.Parser: a put prepare is the final
// multicast chunk of a PutRequest transfer (only the last chunk carries
// the message, so each traversal marks once; unicast repair
// retransmissions re-deliver the same message and merge into the same
// mark). The operation identity is the put's reqKey — stable across
// client retries, recoverable from a committed object's version — so
// the commit hooks can find the mark.
func (c HarmoniaCodec) ParsePut(pkt *netsim.Packet) (string, any, bool) {
	if pkt.Proto != netsim.ProtoUDP {
		return "", nil, false
	}
	data, ok := transport.ChunkPayload(pkt.Payload)
	if !ok {
		return "", nil, false
	}
	req, ok := data.(*PutRequest)
	if !ok {
		return "", nil, false
	}
	return req.Key, req.key(), true
}

// HarmoniaHook is the slice of the in-switch dirty-set a storage node
// drives: the commit/abort half of the conflict-detection protocol. In
// hardware these are the commit's ack and timestamp packets passing back
// through the switch; in the simulation the node invokes them
// synchronously at apply/abort time, which is strictly earlier — safe,
// because the stage only retires a mark once every read-serving replica
// has applied the write.
type HarmoniaHook interface {
	// MemberApplied records that member holds op's committed object for
	// key.
	MemberApplied(key string, op any, member netsim.IP)
	// OpAborted records that op was abandoned and will never commit.
	OpAborted(key string, op any)
}

// harmoniaApplied reports a local commit of obj to the dirty-set stage;
// called from every path that installs a committed object — applyLocal
// (2PC primary and secondary, late timestamps, resolution commit orders)
// and lateTs's newer-timestamp adoption — before any acknowledgment is
// generated. The op identity is recovered from the committed version.
func (n *Node) harmoniaApplied(obj *kvstore.Object) {
	if n.cfg.Harmonia == nil {
		return
	}
	op := reqKey{Client: obj.Version.Client, Seq: obj.Version.ClientSeq}
	n.cfg.Harmonia.MemberApplied(obj.Key, op, n.cfg.Addr.IP)
}

// harmoniaAborted reports an abandoned put to the dirty-set stage.
func (n *Node) harmoniaAborted(key string, op reqKey) {
	if n.cfg.Harmonia == nil {
		return
	}
	n.cfg.Harmonia.OpAborted(key, op)
}
