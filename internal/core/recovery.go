package core

import (
	"time"

	"repro/internal/controller"
	"repro/internal/kvstore"
	"repro/internal/sim"
	"repro/internal/transport"
)

// recoveryRPCTimeout bounds each recovery-protocol round trip.
const recoveryRPCTimeout = 2 * time.Second

// serveConn answers peer requests on an inbound stream: handoff fetches
// during node recovery and lock/version queries during new-primary
// resolution.
func (n *Node) serveConn(p *sim.Proc, conn *transport.Conn) {
	defer conn.Close()
	for {
		m, ok := conn.Recv(p)
		if !ok {
			return
		}
		switch req := m.Data.(type) {
		case *FetchRangeReq:
			var objs []*kvstore.Object
			size := replyOverhead
			for _, key := range n.store.Keys() {
				if n.cfg.Space.PartitionOf(key) != req.Partition {
					continue
				}
				if obj, ok := n.store.Peek(key); ok {
					objs = append(objs, obj)
					size += obj.Size
				}
			}
			if err := conn.Send(p, &FetchRangeReply{Objects: objs}, size); err != nil {
				return
			}
		case *FetchHandoffReq:
			var objs []*kvstore.Object
			size := replyOverhead
			for _, obj := range n.store.HandoffObjects() {
				if n.cfg.Space.PartitionOf(obj.Key) == req.Partition {
					objs = append(objs, obj)
					size += obj.Size
				}
			}
			if err := conn.Send(p, &FetchHandoffReply{Objects: objs}, size); err != nil {
				return
			}
		case *LockQuery:
			var locked []LockInfo
			for _, rec := range n.store.PendingLog() {
				if n.cfg.Space.PartitionOf(rec.Key) != req.Partition {
					continue
				}
				rk, _ := rec.Tag.(reqKey)
				locked = append(locked, LockInfo{Key: rec.Key, ReqTag: rk, Obj: rec.Obj, Ts: rec.Ver})
			}
			rep := &LockQueryReply{From: n.cfg.Addr.Index, Locked: locked}
			if err := conn.Send(p, rep, replyOverhead+32*len(locked)); err != nil {
				return
			}
		case *VersionQuery:
			vers := make(map[string]kvstore.Timestamp, len(req.Keys))
			for _, k := range req.Keys {
				if obj, ok := n.store.Peek(k); ok {
					vers[k] = obj.Version
				}
			}
			rep := &VersionReply{From: n.cfg.Addr.Index, Vers: vers}
			if err := conn.Send(p, rep, replyOverhead+48*len(vers)); err != nil {
				return
			}
		}
	}
}

// rpc performs one request/reply exchange on a fresh stream.
func (n *Node) rpc(p *sim.Proc, to controller.NodeAddr, req any, reqSize int) (any, bool) {
	conn, err := n.stack.Dial(p, to.IP, to.DataPort)
	if err != nil {
		return nil, false
	}
	defer conn.Close()
	if err := conn.Send(p, req, reqSize); err != nil {
		return nil, false
	}
	m, ok := conn.RecvTimeout(p, recoveryRPCTimeout)
	if !ok {
		return nil, false
	}
	return m.Data, true
}

// recover executes phase two of rejoin (§4.4 node recovery): the node is
// already put-visible; it fetches everything it missed from each
// partition's handoff node, then reports itself consistent.
func (n *Node) recover(p *sim.Proc, info *controller.RejoinInfo) {
	for i, v := range info.Views {
		n.applyView(v, false)
		h := info.Handoffs[i]
		if h.IP == 0 {
			continue // no handoff was available; nothing recorded
		}
		raw, ok := n.rpc(p, h, &FetchHandoffReq{Partition: v.Partition}, getReqSize)
		if !ok {
			continue
		}
		rep, ok := raw.(*FetchHandoffReply)
		if !ok {
			continue
		}
		for _, obj := range rep.Objects {
			n.observeTs(obj.Version)
			n.store.Put(p, obj) // versioned: stale copies are rejected
		}
	}
	n.recovering = false
	n.ctrl.SendTo(n.cfg.Meta, n.cfg.MetaPort, &controller.ConsistentNotice{Node: n.cfg.Addr.Index}, ctrlMsgSize)
}

// expand executes a permanent replica-set join (§4.4 ring
// re-configuration): the node is already put-visible; it fetches the
// whole key range from the primary and reports itself consistent.
func (n *Node) expand(p *sim.Proc, view *controller.PartitionView, source controller.NodeAddr) {
	n.applyView(view, false)
	raw, ok := n.rpc(p, source, &FetchRangeReq{Partition: view.Partition}, getReqSize)
	if ok {
		if rep, isRange := raw.(*FetchRangeReply); isRange {
			for _, obj := range rep.Objects {
				n.observeTs(obj.Version)
				n.store.Put(p, obj)
			}
		}
	}
	n.ctrl.SendTo(n.cfg.Meta, n.cfg.MetaPort, &controller.ConsistentNotice{Node: n.cfg.Addr.Index}, ctrlMsgSize)
}

// resolveLocks is the new primary's §4.4 procedure after promotion: find
// every object still locked anywhere in the partition; commit the ones
// the old primary committed anywhere (their committed version carries the
// put's client quadruplet), abort the rest.
func (n *Node) resolveLocks(p *sim.Proc, v *controller.PartitionView) {
	part := v.Partition
	type lockedEnt struct {
		req reqKey
		obj *kvstore.Object
	}
	locked := make(map[string]lockedEnt)
	for _, rec := range n.store.PendingLog() {
		if n.cfg.Space.PartitionOf(rec.Key) == part {
			if rk, ok := rec.Tag.(reqKey); ok {
				locked[rec.Key] = lockedEnt{req: rk, obj: rec.Obj}
			}
		}
	}
	peers := n.othersOf(v)
	for _, peer := range peers {
		raw, ok := n.rpc(p, peer, &LockQuery{Partition: part}, getReqSize)
		if !ok {
			continue
		}
		if rep, ok := raw.(*LockQueryReply); ok {
			for _, li := range rep.Locked {
				if _, seen := locked[li.Key]; !seen {
					locked[li.Key] = lockedEnt{req: li.ReqTag, obj: li.Obj}
				}
			}
		}
	}
	if len(locked) == 0 {
		return
	}

	keys := make([]string, 0, len(locked))
	for k := range locked {
		keys = append(keys, k)
	}
	// Round two: who committed what?
	committed := make(map[string]kvstore.Timestamp)
	consider := func(k string, ts kvstore.Timestamp) {
		ent := locked[k]
		if ts.Client == ent.req.Client && ts.ClientSeq == ent.req.Seq {
			committed[k] = ts
		}
	}
	for _, k := range keys {
		if obj, ok := n.store.Peek(k); ok {
			consider(k, obj.Version)
		}
	}
	for _, peer := range peers {
		raw, ok := n.rpc(p, peer, &VersionQuery{Keys: keys}, getReqSize+16*len(keys))
		if !ok {
			continue
		}
		if rep, ok := raw.(*VersionReply); ok {
			for k, ts := range rep.Vers {
				consider(k, ts)
			}
		}
	}

	for _, k := range keys {
		n.stats.Resolutions++
		if ts, ok := committed[k]; ok {
			order := &CommitOrder{Key: k, Ts: ts}
			n.applyCommitOrder(order)
			for _, peer := range peers {
				n.data.SendTo(peer.IP, peer.DataPort, order, ackSize)
			}
		} else {
			order := &AbortOrder{Key: k}
			n.applyAbortOrder(order)
			for _, peer := range peers {
				n.data.SendTo(peer.IP, peer.DataPort, order, ackSize)
			}
		}
	}
}

// applyCommitOrder finishes a resolved put locally: prefer waking the
// still-blocked handler (it owns the lock); otherwise commit from the
// WAL.
func (n *Node) applyCommitOrder(m *CommitOrder) {
	rec, ok := n.store.LogOf(m.Key)
	if !ok {
		return // already resolved here
	}
	rk, _ := rec.Tag.(reqKey)
	if ps := n.puts[rk]; ps != nil && !ps.ts.Done() {
		ps.ts.Set(&TsMsg{Req: rk, Key: m.Key, Ts: m.Ts})
		return
	}
	part := n.cfg.Space.PartitionOf(m.Key)
	obj := rec.Obj
	n.observeTs(m.Ts)
	obj.Version = m.Ts
	n.applyLocal(part, obj)
	n.store.DropLog(m.Key)
	if n.store.Locked(m.Key) {
		n.store.Unlock(m.Key)
	}
	n.stats.Puts++
}

// applyAbortOrder abandons a resolved put locally.
func (n *Node) applyAbortOrder(m *AbortOrder) {
	rec, ok := n.store.LogOf(m.Key)
	if !ok {
		return
	}
	rk, _ := rec.Tag.(reqKey)
	if ps := n.puts[rk]; ps != nil && !ps.ts.Done() {
		ps.ts.Set(&TsMsg{Req: rk, Key: m.Key, Abort: true})
		return
	}
	n.store.DropLog(m.Key)
	if n.store.Locked(m.Key) {
		n.store.Unlock(m.Key)
	}
	n.stats.Aborts++
}
