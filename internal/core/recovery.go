package core

import (
	"sort"
	"time"

	"repro/internal/controller"
	"repro/internal/kvstore"
	"repro/internal/sim"
	"repro/internal/transport"
)

// recoveryRPCTimeout bounds each recovery-protocol round trip.
const recoveryRPCTimeout = 2 * time.Second

// syncExtraAttempts bounds how often a range sync chases a peer outside
// the current view (a member of the superseded view) before giving up on
// it. A live peer answers on the first try; a crashed one costs a dial
// timeout per attempt, so the bound keeps post-crash promotions from
// stalling reads for long.
const syncExtraAttempts = 2

// serveConn answers peer requests on an inbound stream: handoff fetches
// during node recovery and lock/version queries during new-primary
// resolution.
func (n *Node) serveConn(p *sim.Proc, conn *transport.Conn) {
	defer conn.Close()
	for {
		m, ok := conn.Recv(p)
		if !ok {
			return
		}
		switch req := m.Data.(type) {
		case *FetchRangeReq:
			var objs []*kvstore.Object
			size := replyOverhead
			for _, key := range n.store.Keys() {
				if n.cfg.Space.PartitionOf(key) != req.Partition {
					continue
				}
				if obj, ok := n.store.Peek(key); ok {
					objs = append(objs, obj)
					size += obj.Size
				}
			}
			// Handoff-directory objects are committed, versioned writes of
			// the same partition; a peer syncing from this node must see
			// them even if this node has not folded them into the main
			// namespace yet (the fetcher's merge rejects stale copies).
			for _, obj := range n.store.HandoffObjects() {
				if n.cfg.Space.PartitionOf(obj.Key) == req.Partition {
					objs = append(objs, obj)
					size += obj.Size
				}
			}
			// Harmonia clusters report in-flight puts: the fetcher must not
			// declare itself read-serving until these resolve into the
			// committed range (their prepares may predate the fetcher's
			// multicast-group membership, so the commit multicast alone will
			// never reach it). Non-harmonia clusters skip the report — a
			// recovering replica never serves reads there, so the window is
			// benign and the wire format stays byte-identical.
			var pend []PendingPut
			if n.cfg.HarmoniaServe {
				for _, rec := range n.store.PendingLog() {
					if n.cfg.Space.PartitionOf(rec.Key) != req.Partition {
						continue
					}
					rk, _ := rec.Tag.(reqKey)
					pend = append(pend, PendingPut{Key: rec.Key, Req: rk})
					size += 32
				}
			}
			if err := conn.Send(p, &FetchRangeReply{Objects: objs, Pending: pend}, size); err != nil {
				return
			}
		case *FetchHandoffReq:
			var objs []*kvstore.Object
			size := replyOverhead
			for _, obj := range n.store.HandoffObjects() {
				if n.cfg.Space.PartitionOf(obj.Key) == req.Partition {
					objs = append(objs, obj)
					size += obj.Size
				}
			}
			if err := conn.Send(p, &FetchHandoffReply{Objects: objs}, size); err != nil {
				return
			}
		case *LockQuery:
			var locked []LockInfo
			for _, rec := range n.store.PendingLog() {
				if n.cfg.Space.PartitionOf(rec.Key) != req.Partition {
					continue
				}
				rk, _ := rec.Tag.(reqKey)
				locked = append(locked, LockInfo{Key: rec.Key, ReqTag: rk, Obj: rec.Obj, Ts: rec.Ver})
			}
			rep := &LockQueryReply{From: n.cfg.Addr.Index, Locked: locked, MaxSeq: n.primarySeq}
			if err := conn.Send(p, rep, replyOverhead+32*len(locked)); err != nil {
				return
			}
		case *VersionQuery:
			vers := make(map[string]kvstore.Timestamp, len(req.Keys))
			for _, k := range req.Keys {
				if obj, ok := n.store.Peek(k); ok {
					vers[k] = obj.Version
				}
			}
			rep := &VersionReply{From: n.cfg.Addr.Index, Vers: vers}
			if err := conn.Send(p, rep, replyOverhead+48*len(vers)); err != nil {
				return
			}
		}
	}
}

// rpc performs one request/reply exchange on a fresh stream.
func (n *Node) rpc(p *sim.Proc, to controller.NodeAddr, req any, reqSize int) (any, bool) {
	conn, err := n.stack.Dial(p, to.IP, to.DataPort)
	if err != nil {
		return nil, false
	}
	defer conn.Close()
	if err := conn.Send(p, req, reqSize); err != nil {
		return nil, false
	}
	m, ok := conn.RecvTimeout(p, recoveryRPCTimeout)
	if !ok {
		return nil, false
	}
	return m.Data, true
}

// fetchObjects performs one fetch exchange against a peer and merges the
// returned objects into the local store (versioned — stale copies are
// rejected). It reports whether the peer answered, and for range fetches
// also which puts the peer still held in flight (see FetchRangeReply).
func (n *Node) fetchObjects(p *sim.Proc, from controller.NodeAddr, req any) ([]PendingPut, bool) {
	raw, ok := n.rpc(p, from, req, getReqSize)
	if !ok {
		return nil, false
	}
	var objs []*kvstore.Object
	var pend []PendingPut
	switch rep := raw.(type) {
	case *FetchRangeReply:
		objs = rep.Objects
		pend = rep.Pending
	case *FetchHandoffReply:
		objs = rep.Objects
	default:
		return nil, false
	}
	for _, obj := range objs {
		n.observeTs(obj.Version)
		n.store.Put(p, obj)
	}
	return pend, true
}

// syncPartition fetches the partition's committed range from every
// current view member, retrying unreachable ones until each has answered
// once. Legacy object stores survive restarts outright; durable stores
// keep every *acked* write (fsynced before the ack) and recover it by
// log replay before this sync runs. Either way the union of the
// members' ranges contains every acknowledged put: full replication
// commits on every live member, and under any-k the chaos generator
// keeps at most one member out at a time (a second concurrent outage
// could hide the only reachable copy, which no amount of syncing
// recovers). stop aborts the wait — demotion, or another crash of this
// node.
//
// extra peers are members of the superseded view that the current one
// dropped. Under any-k a dropped member can be the sole in-view holder
// of an acknowledged write — a false failure verdict (lossy heartbeats,
// not a crash) deposes a live node without any data transfer, and the
// union over the surviving members alone silently misses its writes. A
// dropped-but-live peer still answers range fetches from its retained
// store, so it is chased best-effort (syncExtraAttempts, bounded — it
// may be genuinely dead) before the sync declares completion.
func (n *Node) syncPartition(p *sim.Proc, part int, stop func() bool, extra ...controller.NodeAddr) {
	synced := make(map[int]bool)
	attempts := make(map[int]int)
	// firstPending records, per member, the puts it held in flight when it
	// first answered (harmonia clusters only — empty otherwise). A fetch
	// taken between a put's prepare and its commit snapshots the pre-put
	// value, and if the prepare predates this node's multicast-group
	// membership the commit multicast will never arrive here either: the
	// re-fetched committed range is the only channel. So a member is not
	// synced until every put from its first answer has resolved out of its
	// WAL — committed copies then ride the same reply that clears it.
	// Later prepares need no such wait: this node is already in the group
	// and receives them directly.
	firstPending := make(map[int][]PendingPut)
	answered := make(map[int]bool)
	unresolved := func(idx int, now []PendingPut) bool {
		cur := make(map[PendingPut]bool, len(now))
		for _, pp := range now {
			cur[pp] = true
		}
		for _, pp := range firstPending[idx] {
			if cur[pp] {
				return true
			}
		}
		return false
	}
	for {
		if stop() {
			return
		}
		v := n.views[part]
		if v == nil {
			return
		}
		pending := false
		members := n.othersOf(v)
		for _, peer := range members {
			if synced[peer.Index] {
				continue
			}
			if pend, ok := n.fetchObjects(p, peer, &FetchRangeReq{Partition: part}); ok {
				if !answered[peer.Index] {
					answered[peer.Index] = true
					firstPending[peer.Index] = pend
				}
				if unresolved(peer.Index, pend) {
					pending = true
				} else {
					synced[peer.Index] = true
				}
			} else {
				pending = true
			}
			if stop() {
				return
			}
		}
		for _, peer := range extra {
			if synced[peer.Index] || attempts[peer.Index] >= syncExtraAttempts {
				continue
			}
			inView := false
			for _, m := range members {
				if m.Index == peer.Index {
					inView = true
					break
				}
			}
			if inView {
				continue // rejoined the view: the member loop owns it now
			}
			attempts[peer.Index]++
			if _, ok := n.fetchObjects(p, peer, &FetchRangeReq{Partition: part}); ok {
				// Best-effort by design: an extra's in-flight puts are the
				// new primary's to resolve (resolveLocks), not this sync's.
				synced[peer.Index] = true
			} else if attempts[peer.Index] < syncExtraAttempts {
				pending = true
			}
			if stop() {
				return
			}
		}
		if !pending {
			return
		}
		n.stats.RecoveryFetchFails++
		p.Sleep(2 * n.cfg.HeartbeatEvery)
	}
}

// recover executes phase two of rejoin (§4.4 node recovery): the node is
// already put-visible; it fetches everything it missed, then reports
// itself consistent. The handoff directory is the paper's mechanism, but
// it is silently incomplete when no handoff node was available or when
// the handoff node itself was down for part of the window — so the
// member-range sync is the correctness anchor, and the node stays
// get-invisible (handleGet holds) until it finishes.
func (n *Node) recover(p *sim.Proc, info *controller.RejoinInfo) {
	gen := n.restartGen
	stop := func() bool { return gen != n.restartGen }
	// A durable store first rebuilds itself from its own media — snapshot
	// load plus WAL replay, charged as disk reads — before fetching what
	// it missed from peers. Commits that land while the replay sleeps in
	// disk time are safe: each one is version-checked against the
	// engine's current state and appended to the WAL, so the replay
	// (which runs in LSN order over the final log) converges on it.
	// No-op in legacy mode, where the store resurrects.
	n.store.RecoverStorage(p)
	if stop() {
		return // crashed again mid-replay; the new incarnation starts over
	}
	for i, v := range info.Views {
		n.applyView(v, false)
		part := v.Partition
		if h := info.Handoffs[i]; h.IP != 0 {
			for attempt := 0; attempt < 5 && !stop(); attempt++ {
				if _, ok := n.fetchObjects(p, h, &FetchHandoffReq{Partition: part}); ok {
					break
				}
				p.Sleep(2 * n.cfg.HeartbeatEvery)
			}
		}
		n.syncPartition(p, part, stop)
		if stop() {
			return // crashed again mid-recovery; the new incarnation restarts rejoin
		}
	}
	// Peer-fetched objects entered the engine through the volatile WAL
	// tail; force them down before rejoining the serve set, or a second
	// crash re-loses state the membership now counts on this node
	// holding. Free in legacy mode.
	n.store.Sync(p)
	if stop() {
		return
	}
	n.recovering = false
	n.notifyConsistent(p)
}

// notifyConsistent reports the node consistent, retrying while its own
// views still show it put-visible-only: the notice is a datagram and may
// be lost on a faulty path, and a node stuck Recovering never becomes
// get-visible. The controller treats a duplicate notice as a no-op.
func (n *Node) notifyConsistent(p *sim.Proc) {
	for attempt := 0; attempt < 5; attempt++ {
		n.ctrl.SendTo(n.cfg.Meta, n.cfg.MetaPort, &controller.ConsistentNotice{Node: n.cfg.Addr.Index}, ctrlMsgSize)
		p.Sleep(2 * n.cfg.HeartbeatEvery)
		still := false
		for _, v := range n.views {
			if v.IsRecovering(n.cfg.Addr.Index) {
				still = true
				break
			}
		}
		if !still {
			return
		}
	}
}

// expand executes a permanent replica-set join (§4.4 ring
// re-configuration): the node is already put-visible; it fetches the
// whole key range from the surviving members and reports itself
// consistent. Gets for the partition are held (get.go) until the sync
// lands — the node is in the view the moment it applies it, and an
// empty member answering "not found" is a lie.
func (n *Node) expand(p *sim.Proc, view *controller.PartitionView) {
	part := view.Partition
	n.syncing[part] = true
	n.applyView(view, false)
	gen := n.restartGen
	n.syncPartition(p, part, func() bool { return gen != n.restartGen })
	n.syncing[part] = false
	if gen != n.restartGen {
		return
	}
	// As in recover: the fetched range is volatile until fsynced.
	n.store.Sync(p)
	if gen != n.restartGen {
		return
	}
	n.notifyConsistent(p)
}

// resolveLocks is the new primary's §4.4 procedure after promotion: find
// every object still locked anywhere in the partition; commit the ones
// the old primary committed anywhere (their committed version carries the
// put's client quadruplet), abort the rest.
// gen is the restart generation at promotion: the procedure spans many
// RTTs, and a resolver that blocked across a crash/restart of its own
// node must not touch the reborn store.
func (n *Node) resolveLocks(p *sim.Proc, v *controller.PartitionView, gen int) {
	part := v.Partition
	type lockedEnt struct {
		req reqKey
		obj *kvstore.Object
	}
	locked := make(map[string]lockedEnt)
	for _, rec := range n.store.PendingLog() {
		if n.cfg.Space.PartitionOf(rec.Key) == part {
			if rk, ok := rec.Tag.(reqKey); ok {
				locked[rec.Key] = lockedEnt{req: rk, obj: rec.Obj}
			}
		}
	}
	peers := n.othersOf(v)
	for _, peer := range peers {
		raw, ok := n.rpc(p, peer, &LockQuery{Partition: part}, getReqSize)
		if gen != n.restartGen {
			return
		}
		if !ok {
			continue
		}
		if rep, ok := raw.(*LockQueryReply); ok {
			// Sync the logical clock with every reachable peer: under any-k
			// puts a promoted laggard may never have witnessed the old
			// primary's latest commits, and issuing a colliding PrimarySeq
			// would let replicas order the same version pair differently.
			if rep.MaxSeq > n.primarySeq {
				n.primarySeq = rep.MaxSeq
			}
			for _, li := range rep.Locked {
				if _, seen := locked[li.Key]; !seen {
					locked[li.Key] = lockedEnt{req: li.ReqTag, obj: li.Obj}
				}
			}
		}
	}
	if len(locked) == 0 {
		return
	}

	keys := make([]string, 0, len(locked))
	for k := range locked {
		keys = append(keys, k)
	}
	// Sorted: keys feeds the VersionQuery wire messages and the
	// commit/abort order below, and the simulation demands deterministic
	// enumeration where Go's map iteration gives none.
	sort.Strings(keys)
	// Round two: who committed what?
	committed := make(map[string]kvstore.Timestamp)
	consider := func(k string, ts kvstore.Timestamp) {
		ent := locked[k]
		if ts.Client == ent.req.Client && ts.ClientSeq == ent.req.Seq {
			committed[k] = ts
		}
	}
	for _, k := range keys {
		if obj, ok := n.store.Peek(k); ok {
			consider(k, obj.Version)
		}
	}
	for _, peer := range peers {
		raw, ok := n.rpc(p, peer, &VersionQuery{Keys: keys}, getReqSize+16*len(keys))
		if gen != n.restartGen {
			return
		}
		if !ok {
			continue
		}
		if rep, ok := raw.(*VersionReply); ok {
			for k, ts := range rep.Vers {
				consider(k, ts)
			}
		}
	}

	for _, k := range keys {
		n.stats.Resolutions++
		if ts, ok := committed[k]; ok {
			order := &CommitOrder{Key: k, Ts: ts}
			n.applyCommitOrder(order)
			for _, peer := range peers {
				n.data.SendTo(peer.IP, peer.DataPort, order, ackSize)
			}
		} else {
			order := &AbortOrder{Key: k}
			n.applyAbortOrder(order)
			for _, peer := range peers {
				n.data.SendTo(peer.IP, peer.DataPort, order, ackSize)
			}
		}
	}
}

// applyCommitOrder finishes a resolved put locally: prefer waking the
// still-blocked handler (it owns the lock); otherwise commit from the
// WAL.
func (n *Node) applyCommitOrder(m *CommitOrder) {
	rec, ok := n.store.LogOf(m.Key)
	if !ok {
		return // already resolved here
	}
	rk, _ := rec.Tag.(reqKey)
	if ps := n.puts[rk]; ps != nil {
		// The handler is still alive and owns the lock: hand it the
		// timestamp and let it finish. Even if its future is already set
		// (the real TsMsg raced this order), committing here too would
		// unlock a lock the handler is about to unlock itself.
		if !ps.ts.Done() {
			ps.ts.Set(&TsMsg{Req: rk, Key: m.Key, Ts: m.Ts})
		}
		return
	}
	part := n.cfg.Space.PartitionOf(m.Key)
	obj := rec.Obj
	n.observeTs(m.Ts)
	obj.Version = m.Ts
	n.applyLocal(part, obj, false)
	n.store.DropLog(m.Key)
	if n.store.Locked(m.Key) {
		n.store.Unlock(m.Key)
	}
	n.stats.Puts++
}

// applyAbortOrder abandons a resolved put locally.
func (n *Node) applyAbortOrder(m *AbortOrder) {
	rec, ok := n.store.LogOf(m.Key)
	if !ok {
		return
	}
	rk, _ := rec.Tag.(reqKey)
	if ps := n.puts[rk]; ps != nil {
		// See applyCommitOrder: the live handler owns the lock.
		if !ps.ts.Done() {
			ps.ts.Set(&TsMsg{Req: rk, Key: m.Key, Abort: true})
		}
		return
	}
	n.store.DropLog(m.Key)
	if n.store.Locked(m.Key) {
		n.store.Unlock(m.Key)
	}
	n.harmoniaAborted(m.Key, rk)
	n.stats.Aborts++
}
