package openflow

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// benchSizes are the deployment scales the switch-scale experiment sweeps.
var benchSizes = []int{8, 32, 64, 128, 256}

func runLookupBench(b *testing.B, nodes int, cache bool, linear bool) {
	s := sim.New(1)
	rules := SyntheticRules(nodes, cache)
	pkts := SyntheticPackets(nodes, 1024, cache, 7)
	var lookup func(pkt *netsim.Packet, inPort int) *FlowEntry
	if linear {
		t := NewReferenceTable(s)
		for _, r := range rules {
			if _, err := t.Add(r); err != nil {
				b.Fatal(err)
			}
		}
		lookup = t.Lookup
	} else {
		t := NewFlowTable(s)
		for _, r := range rules {
			if _, err := t.Add(r); err != nil {
				b.Fatal(err)
			}
		}
		lookup = t.Lookup
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if lookup(&pkts[i%len(pkts)], 2) == nil {
			b.Fatal("table miss: every synthetic packet has a covering rule")
		}
	}
}

// BenchmarkLookupIndexed measures the two-tier indexed FlowTable on the
// controller's rule mix; cost should stay flat as the deployment grows.
func BenchmarkLookupIndexed(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			runLookupBench(b, n, false, false)
		})
	}
}

// BenchmarkLookupIndexedCache is the same sweep with the hot-key cache
// tier installed and hot traffic in the mix.
func BenchmarkLookupIndexedCache(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			runLookupBench(b, n, true, false)
		})
	}
}

// BenchmarkLookupLinear is the O(n) ReferenceTable baseline.
func BenchmarkLookupLinear(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			runLookupBench(b, n, false, true)
		})
	}
}
