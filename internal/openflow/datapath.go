package openflow

import (
	"repro/internal/netsim"
	"repro/internal/sim"
)

// ControllerHandler is implemented by the SDN controller (package
// controller). PacketIn delivers a punted packet after the control-channel
// latency.
type ControllerHandler interface {
	PacketIn(dp *Datapath, pkt *netsim.Packet, inPort int)
}

// MissBehavior selects what a datapath does on a flow-table miss.
type MissBehavior int

const (
	// MissToController punts misses to the controller (the default, and
	// what NICE's learning controller relies on).
	MissToController MissBehavior = iota
	// MissDrop silently discards misses.
	MissDrop
)

// ControlStats count control-channel messages; the membership-scalability
// experiment reads these.
type ControlStats struct {
	PacketIns  int64
	PacketOuts int64
	FlowMods   int64
	GroupMods  int64
	CtrlDrops  int64 // PacketIns/PacketOuts lost to an injected control fault
	FencedMods int64 // mutations rejected for a stale controller writer generation
}

// Datapath attaches OpenFlow forwarding to a netsim switch: a flow table,
// a group table, and a control channel to at most one controller. Control
// messages in either direction are delayed by CtrlDelay, modeling the
// controller living on the management network.
type Datapath struct {
	name      string
	sw        *netsim.Switch
	table     *FlowTable
	groups    *GroupTable
	handler   ControllerHandler
	ctrlDelay sim.Time
	miss      MissBehavior
	stats     ControlStats

	// Injected control-channel fault (SetControlFault): extra latency on
	// every control message, and a drop probability for the packet-carrying
	// ones. lastDeliver keeps the channel FIFO when the extra delay changes
	// mid-run — the control session is ordered like the TCP channel it
	// models, so a mod issued during a fault window must not be overtaken
	// by one issued after it.
	ctrlExtra   sim.Time
	ctrlDrop    float64
	lastDeliver sim.Time

	// writerFence is the lowest controller writer generation this
	// datapath still accepts mutations from. A promoted standby raises
	// it past the old primary's generation at takeover, so a zombie
	// controller returning after a split brain cannot clobber the
	// fabric. Zero means unfenced (the legacy single-writer world).
	writerFence uint64
}

// Attach builds a datapath on sw and installs it as the switch pipeline.
func Attach(sw *netsim.Switch, ctrlDelay sim.Time) *Datapath {
	dp := &Datapath{
		name:      sw.DeviceName(),
		sw:        sw,
		table:     NewFlowTable(sw.Sim()),
		groups:    NewGroupTable(),
		ctrlDelay: ctrlDelay,
	}
	sw.SetPipeline(dp)
	return dp
}

// Name returns the underlying switch name.
func (dp *Datapath) Name() string { return dp.name }

// Switch returns the underlying netsim switch.
func (dp *Datapath) Switch() *netsim.Switch { return dp.sw }

// Table exposes the flow table (controllers and tests inspect it).
func (dp *Datapath) Table() *FlowTable { return dp.table }

// Groups exposes the group table.
func (dp *Datapath) Groups() *GroupTable { return dp.groups }

// Stats returns control-channel message counters.
func (dp *Datapath) Stats() ControlStats { return dp.stats }

// SetController registers the controller receiving PacketIns.
func (dp *Datapath) SetController(h ControllerHandler) { dp.handler = h }

// SetControlFault injects management-network trouble: extraDelay is added
// to every control-channel exchange, and dropRate loses punted packets
// and packet-outs with that probability. Flow and group mods are delayed
// but never dropped — they ride the reliable control session — and the
// channel stays FIFO across delay changes. Zero both to restore health.
func (dp *Datapath) SetControlFault(extraDelay sim.Time, dropRate float64) {
	dp.ctrlExtra = extraDelay
	dp.ctrlDrop = dropRate
}

// RaiseWriterFence raises the control-plane writer fence: after a
// controller acquires generation gen and calls this, flow/group/cache
// mutations stamped with any older generation are rejected. The fence
// is monotonic — a zombie cannot lower it.
func (dp *Datapath) RaiseWriterFence(gen uint64) {
	if gen > dp.writerFence {
		dp.writerFence = gen
	}
}

// WriterFence returns the current fence generation (0 = unfenced).
func (dp *Datapath) WriterFence() uint64 { return dp.writerFence }

// WriterAllowed reports whether writer generation gen may still mutate
// this datapath, counting rejections. Generation 0 is the legacy
// unfenced writer and is always allowed.
func (dp *Datapath) WriterAllowed(gen uint64) bool {
	if gen != 0 && gen < dp.writerFence {
		dp.stats.FencedMods++
		return false
	}
	return true
}

// ctrlSched schedules fn one control-channel traversal from now,
// honouring the injected extra delay and the channel's FIFO ordering.
func (dp *Datapath) ctrlSched(fn func()) {
	s := dp.sw.Sim()
	t := s.Now() + dp.ctrlDelay + dp.ctrlExtra
	if t < dp.lastDeliver {
		t = dp.lastDeliver
	}
	dp.lastDeliver = t
	s.At(t, fn)
}

// ctrlLossy reports whether a packet-carrying control message is lost to
// the injected fault. The RNG is only consulted while a fault is active,
// so healthy runs consume no randomness here.
func (dp *Datapath) ctrlLossy() bool {
	if dp.ctrlDrop > 0 && dp.sw.Sim().Rand().Float64() < dp.ctrlDrop {
		dp.stats.CtrlDrops++
		return true
	}
	return false
}

// SetMissBehavior selects the table-miss policy.
func (dp *Datapath) SetMissBehavior(m MissBehavior) { dp.miss = m }

// Process implements netsim.Pipeline.
func (dp *Datapath) Process(sw *netsim.Switch, pkt *netsim.Packet, inPort int) {
	entry := dp.table.Lookup(pkt, inPort)
	if entry == nil {
		switch dp.miss {
		case MissToController:
			dp.punt(pkt, inPort)
		default:
			sw.Drop(pkt)
		}
		return
	}
	dp.apply(entry.Actions, pkt, inPort)
}

// apply executes an action list on pkt, which it owns: every path hands
// the packet (or a clone) onward or returns it to the pool. The delivered
// packet is exclusively ours (links and clones hand out unique pointers),
// so set-field actions mutate it in place, and an Output in final
// position transmits it directly — the common rewrite rule moves a packet
// through the pipeline with zero copies. Only a punt surrenders
// ownership (the controller buffers punted packets), after which a later
// set-field or the disposal below must not touch pkt.
func (dp *Datapath) apply(actions []Action, pkt *netsim.Packet, inPort int) {
	net := dp.sw.Network()
	cur := pkt
	owned := true
	emitted := false
	for i, a := range actions {
		switch a := a.(type) {
		case SetDstIP:
			if !owned {
				cur = net.ClonePacket(cur)
				owned = true
			}
			cur.DstIP = a.IP
		case SetSrcIP:
			if !owned {
				cur = net.ClonePacket(cur)
				owned = true
			}
			cur.SrcIP = a.IP
		case SetDstMAC:
			if !owned {
				cur = net.ClonePacket(cur)
				owned = true
			}
			cur.DstMAC = a.MAC
		case SetSrcMAC:
			if !owned {
				cur = net.ClonePacket(cur)
				owned = true
			}
			cur.SrcMAC = a.MAC
		case Output:
			if owned && i == len(actions)-1 {
				dp.sw.Output(a.Port, cur)
				owned = false
			} else {
				dp.sw.Output(a.Port, net.ClonePacket(cur))
			}
			emitted = true
		case OutputGroup:
			dp.applyGroup(a.Group, cur, inPort) // borrows cur
			emitted = true
		case Flood:
			dp.sw.Flood(cur, inPort) // clones per port, borrows cur
			emitted = true
		case ToController:
			dp.punt(cur, inPort)
			owned = false // the controller now holds cur
			emitted = true
		case Drop:
			if !owned {
				cur = nil
			}
			dp.sw.Drop(cur)
			return
		}
	}
	switch {
	case !emitted:
		if !owned {
			cur = nil
		}
		dp.sw.Drop(cur)
	case owned:
		net.RecyclePacket(cur)
	}
}

// applyGroup fans the packet out through an ALL-type group: every bucket
// gets its own copy. pkt is borrowed — the caller disposes of it.
func (dp *Datapath) applyGroup(id GroupID, pkt *netsim.Packet, inPort int) {
	g, ok := dp.groups.Get(id)
	if !ok {
		dp.sw.Drop(nil) // count it; the caller still owns pkt
		return
	}
	for _, b := range g.Buckets {
		dp.apply(b.Actions, dp.sw.Network().ClonePacket(pkt), inPort)
	}
}

// punt sends a PacketIn to the controller after the control latency.
func (dp *Datapath) punt(pkt *netsim.Packet, inPort int) {
	if dp.handler == nil {
		dp.sw.Drop(pkt)
		return
	}
	if dp.ctrlLossy() {
		dp.sw.Drop(pkt)
		return
	}
	dp.stats.PacketIns++
	dp.sw.Sim().After(dp.ctrlDelay+dp.ctrlExtra, func() {
		dp.handler.PacketIn(dp, pkt, inPort)
	})
}

// Control-plane operations. Each models one controller-to-switch message:
// it is counted immediately and takes effect after the control latency.

// AddFlow installs a rule. The error future resolves when the switch has
// applied (or rejected) the mod.
func (dp *Datapath) AddFlow(e FlowEntry) *sim.Future[error] {
	dp.stats.FlowMods++
	f := sim.NewFuture[error](dp.sw.Sim())
	dp.ctrlSched(func() {
		_, err := dp.table.Add(e)
		f.Set(err)
	})
	return f
}

// Barrier schedules fn on the control channel behind every mod
// submitted so far — the OpenFlow barrier-request/reply pattern. When
// fn runs, all earlier AddFlow/RemoveFlows/SetGroup/DeleteGroup calls
// have been applied by the switch.
func (dp *Datapath) Barrier(fn func()) {
	dp.ctrlSched(fn)
}

// RemoveFlows deletes rules matching pred.
func (dp *Datapath) RemoveFlows(pred func(*FlowEntry) bool) {
	dp.stats.FlowMods++
	dp.ctrlSched(func() {
		dp.table.Remove(pred)
	})
}

// RemoveCookie deletes rules whose cookie starts with prefix.
func (dp *Datapath) RemoveCookie(prefix string) {
	dp.stats.FlowMods++
	dp.ctrlSched(func() {
		dp.table.RemoveCookie(prefix)
	})
}

// SetGroup installs or replaces a group.
func (dp *Datapath) SetGroup(g Group) {
	dp.stats.GroupMods++
	dp.ctrlSched(func() {
		dp.groups.Set(g)
	})
}

// DeleteGroup removes a group.
func (dp *Datapath) DeleteGroup(id GroupID) {
	dp.stats.GroupMods++
	dp.ctrlSched(func() {
		dp.groups.Delete(id)
	})
}

// PacketOut injects a packet out of a specific port (or floods it with
// port = FloodPort).
func (dp *Datapath) PacketOut(pkt *netsim.Packet, outPort int) {
	if dp.ctrlLossy() {
		dp.sw.Drop(pkt)
		return
	}
	dp.stats.PacketOuts++
	dp.ctrlSched(func() {
		if outPort == FloodPort {
			dp.sw.Flood(pkt, -1) // per-port clones; the original goes back
			dp.sw.Network().RecyclePacket(pkt)
			return
		}
		dp.sw.Output(outPort, pkt)
	})
}

// FloodPort is the PacketOut pseudo-port that floods all ports.
const FloodPort = -2
