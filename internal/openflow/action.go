package openflow

import (
	"fmt"

	"repro/internal/netsim"
)

// Action is one step of a flow entry's action list, applied in order.
type Action interface {
	actionString() string
}

// SetDstIP rewrites the destination IP address (the mapping action that
// virtualizes the storage system).
type SetDstIP struct{ IP netsim.IP }

// SetSrcIP rewrites the source IP address.
type SetSrcIP struct{ IP netsim.IP }

// SetDstMAC rewrites the destination MAC address.
type SetDstMAC struct{ MAC netsim.MAC }

// SetSrcMAC rewrites the source MAC address.
type SetSrcMAC struct{ MAC netsim.MAC }

// Output forwards the packet out a switch port.
type Output struct{ Port int }

// OutputGroup hands the packet to a group table entry (multicast).
type OutputGroup struct{ Group GroupID }

// ToController punts the packet to the controller as a PacketIn.
type ToController struct{}

// Flood outputs the packet on every port except the ingress port.
type Flood struct{}

// Drop discards the packet explicitly.
type Drop struct{}

func (a SetDstIP) actionString() string     { return "set_dst_ip:" + a.IP.String() }
func (a SetSrcIP) actionString() string     { return "set_src_ip:" + a.IP.String() }
func (a SetDstMAC) actionString() string    { return "set_dst_mac:" + a.MAC.String() }
func (a SetSrcMAC) actionString() string    { return "set_src_mac:" + a.MAC.String() }
func (a Output) actionString() string       { return fmt.Sprintf("output:%d", a.Port) }
func (a OutputGroup) actionString() string  { return fmt.Sprintf("group:%d", a.Group) }
func (a ToController) actionString() string { return "controller" }
func (a Flood) actionString() string        { return "flood" }
func (a Drop) actionString() string         { return "drop" }

// GroupID names a group table entry.
type GroupID uint32

// Bucket is one leg of a group: its actions are applied to a copy of the
// packet. For ALL-type groups (the only type NICE needs) every bucket
// fires.
type Bucket struct {
	Actions []Action
}

// Group is an ALL-type group table entry: the multicast primitive.
type Group struct {
	ID      GroupID
	Buckets []Bucket
}
