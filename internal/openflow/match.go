// Package openflow implements an OpenFlow-style forwarding pipeline for
// netsim switches: priority flow tables matching on packet headers, an
// action list per entry (header rewriting, output, group fan-out, punt to
// controller), ALL-type group tables for multicast, and a control channel
// with configurable latency between a controller and its datapaths.
//
// The feature set mirrors what the paper programs through Ryu and
// OpenFlow 1.3 (§2.2, §5): wildcard matches on IP addresses, protocol and
// ports; set-field actions rewriting source/destination IP and MAC;
// forwarding to one port, a group of ports, or the controller; and rule
// add/remove with counters.
package openflow

import (
	"fmt"
	"strings"

	"repro/internal/netsim"
)

// AnyPort is the Match.InPort wildcard.
const AnyPort = -1

// Match is an OpenFlow matching rule. Zero-valued fields are wildcards,
// except InPort, whose wildcard is AnyPort (use NewMatch to get a match
// with every field wild).
type Match struct {
	InPort  int
	SrcIP   netsim.Prefix
	DstIP   netsim.Prefix
	Proto   netsim.Proto
	SrcPort uint16
	DstPort uint16
}

// NewMatch returns a match whose every field is a wildcard.
func NewMatch() Match { return Match{InPort: AnyPort} }

// MatchDst returns a match on a destination prefix only.
func MatchDst(p netsim.Prefix) Match {
	m := NewMatch()
	m.DstIP = p
	return m
}

// Covers reports whether the match admits pkt arriving on inPort.
func (m Match) Covers(pkt *netsim.Packet, inPort int) bool {
	if m.InPort != AnyPort && m.InPort != inPort {
		return false
	}
	if !m.SrcIP.IsWildcard() && !m.SrcIP.Contains(pkt.SrcIP) {
		return false
	}
	if !m.DstIP.IsWildcard() && !m.DstIP.Contains(pkt.DstIP) {
		return false
	}
	if m.Proto != netsim.ProtoNone && m.Proto != pkt.Proto {
		return false
	}
	if m.SrcPort != 0 && m.SrcPort != pkt.SrcPort {
		return false
	}
	if m.DstPort != 0 && m.DstPort != pkt.DstPort {
		return false
	}
	return true
}

// String renders the non-wildcard fields.
func (m Match) String() string {
	var parts []string
	if m.InPort != AnyPort {
		parts = append(parts, fmt.Sprintf("in=%d", m.InPort))
	}
	if !m.SrcIP.IsWildcard() {
		parts = append(parts, "src="+m.SrcIP.String())
	}
	if !m.DstIP.IsWildcard() {
		parts = append(parts, "dst="+m.DstIP.String())
	}
	if m.Proto != netsim.ProtoNone {
		parts = append(parts, m.Proto.String())
	}
	if m.SrcPort != 0 {
		parts = append(parts, fmt.Sprintf("sport=%d", m.SrcPort))
	}
	if m.DstPort != 0 {
		parts = append(parts, fmt.Sprintf("dport=%d", m.DstPort))
	}
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, ",")
}
