package openflow

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// randPrefix draws a prefix biased toward the shapes the controller
// installs (/16 vring spaces, /24 subgroups, /32 hosts), plus wildcards
// and the occasional unmasked-address prefix that can never match.
func randPrefix(rng *rand.Rand) netsim.Prefix {
	bits := []int{0, 8, 16, 24, 26, 32}[rng.Intn(6)]
	addr := netsim.IPv4(10, byte(rng.Intn(3)), byte(rng.Intn(4)), byte(rng.Intn(6)))
	if rng.Intn(16) == 0 {
		// Raw construction with stray host bits: Contains never holds.
		return netsim.Prefix{Addr: addr | 1, Bits: bits}
	}
	return netsim.PrefixOf(addr, bits)
}

// randMatch draws a match over a deliberately tiny field space so rules
// overlap, shadow each other, and tie on priority.
func randMatch(rng *rand.Rand) Match {
	m := NewMatch()
	if rng.Intn(2) == 0 {
		m.DstIP = randPrefix(rng)
	}
	if rng.Intn(3) == 0 {
		m.SrcIP = randPrefix(rng)
	}
	if rng.Intn(4) == 0 {
		m.Proto = []netsim.Proto{netsim.ProtoUDP, netsim.ProtoTCP, netsim.ProtoARP}[rng.Intn(3)]
	}
	if rng.Intn(5) == 0 {
		m.SrcPort = uint16(7000 + rng.Intn(3))
	}
	if rng.Intn(5) == 0 {
		m.DstPort = uint16(9000 + rng.Intn(3))
	}
	if rng.Intn(6) == 0 {
		m.InPort = rng.Intn(3)
	}
	return m
}

func randPacket(rng *rand.Rand) *netsim.Packet {
	ports := []uint16{0, 7000, 7001, 7002, 9000, 9001, 9002}
	return &netsim.Packet{
		SrcIP:   netsim.IPv4(10, byte(rng.Intn(3)), byte(rng.Intn(4)), byte(rng.Intn(6))),
		DstIP:   netsim.IPv4(10, byte(rng.Intn(3)), byte(rng.Intn(4)), byte(rng.Intn(6))),
		Proto:   []netsim.Proto{netsim.ProtoNone, netsim.ProtoUDP, netsim.ProtoTCP, netsim.ProtoARP}[rng.Intn(4)],
		SrcPort: ports[rng.Intn(len(ports))],
		DstPort: ports[rng.Intn(len(ports))],
		Size:    1 + rng.Intn(1400),
	}
}

// TestDifferentialLookup drives the indexed FlowTable and the linear
// ReferenceTable through identical randomized histories of adds, removes,
// clock advances, and lookups, and demands that every lookup resolves to
// the identical entry — same cookie, same priority/insertion-order
// tie-break — or misses in both. Well over 10k (ruleset, packet) cases.
func TestDifferentialLookup(t *testing.T) {
	const (
		iterations = 400
		opsPerIter = 160
	)
	lookups := 0
	for iter := 0; iter < iterations; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		s := sim.New(1)
		ft := NewFlowTable(s)
		rt := NewReferenceTable(s)
		nrules := 0
		for op := 0; op < opsPerIter; op++ {
			switch r := rng.Intn(100); {
			case r < 25: // install a rule in both tables
				e := FlowEntry{
					Priority: rng.Intn(5),
					Match:    randMatch(rng),
					Cookie:   fmt.Sprintf("c%d.r%d", rng.Intn(4), nrules),
				}
				if rng.Intn(3) == 0 {
					e.IdleTimeout = time.Duration(1+rng.Intn(50)) * time.Microsecond
				}
				nrules++
				if _, err := ft.Add(e); err != nil {
					t.Fatal(err)
				}
				if _, err := rt.Add(e); err != nil {
					t.Fatal(err)
				}
			case r < 32: // remove a random cookie class from both
				pfx := fmt.Sprintf("c%d.", rng.Intn(4))
				ft.RemoveCookie(pfx)
				rt.RemoveCookie(pfx)
			case r < 45: // advance the clock so idle timeouts bite
				if err := s.RunUntil(s.Now() + time.Duration(1+rng.Intn(40))*time.Microsecond); err != nil {
					t.Fatal(err)
				}
			default: // differential probe
				pkt := randPacket(rng)
				inPort := rng.Intn(4) - 1
				got := ft.Lookup(pkt, inPort)
				want := rt.Lookup(pkt, inPort)
				lookups++
				switch {
				case (got == nil) != (want == nil):
					t.Fatalf("iter %d op %d pkt %v in=%d: indexed=%v reference=%v",
						iter, op, pkt, inPort, got, want)
				case got != nil && (got.Cookie != want.Cookie || got.Priority != want.Priority || got.seq != want.seq):
					t.Fatalf("iter %d op %d pkt %v in=%d: indexed hit %v, reference hit %v",
						iter, op, pkt, inPort, got, want)
				case got != nil && got.Matches() != want.Matches():
					t.Fatalf("iter %d op %d: hit counters diverged: indexed=%d reference=%d",
						iter, op, got.Matches(), want.Matches())
				}
			}
		}
		// The indexed table reaps shadowed expired entries the reference
		// never visits, so it can only ever hold fewer.
		if ft.Len() > rt.Len() {
			t.Fatalf("iter %d: indexed table retains %d entries, reference %d", iter, ft.Len(), rt.Len())
		}
	}
	if lookups < 10000 {
		t.Fatalf("only %d differential lookups exercised, want >= 10000", lookups)
	}
}

// TestShadowedIdleRuleExpires is the regression test for the idle-expiry
// gap: under the old scan-coupled eviction, an idle rule sorted below a
// hot rule was never visited by Lookup and survived forever. The deadline
// heap must reap it regardless of shadowing.
func TestShadowedIdleRuleExpires(t *testing.T) {
	s := sim.New(1)
	tbl := NewFlowTable(s)
	tbl.Add(FlowEntry{Priority: 10, Match: MatchDst(pfx("10.0.0.0/8")), Cookie: "hot"})
	tbl.Add(FlowEntry{
		Priority:    5,
		Match:       MatchDst(pfx("10.0.0.0/8")),
		Cookie:      "shadowed",
		IdleTimeout: us(100),
	})
	// Steady traffic hits the hot rule; the shadowed rule is never used.
	for i := 1; i <= 6; i++ {
		s.At(us(50*i), func() {
			if e := tbl.Lookup(udp("1.1.1.1", "10.0.0.5"), 0); e == nil || e.Cookie != "hot" {
				t.Errorf("lookup resolved to %v, want hot rule", e)
			}
		})
	}
	s.At(us(400), func() {
		if tbl.Len() != 1 {
			t.Errorf("Len = %d after shadowed idle expiry, want 1", tbl.Len())
		}
		for _, e := range tbl.Entries() {
			if e.Cookie == "shadowed" {
				t.Error("shadowed idle rule still resident")
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	// Document the reference behavior the heap fixes: the linear table
	// still holds the shadowed rule after the same history.
	s2 := sim.New(1)
	ref := NewReferenceTable(s2)
	ref.Add(FlowEntry{Priority: 10, Match: MatchDst(pfx("10.0.0.0/8")), Cookie: "hot"})
	ref.Add(FlowEntry{Priority: 5, Match: MatchDst(pfx("10.0.0.0/8")), Cookie: "shadowed", IdleTimeout: us(100)})
	for i := 1; i <= 6; i++ {
		s2.At(us(50*i), func() { ref.Lookup(udp("1.1.1.1", "10.0.0.5"), 0) })
	}
	s2.At(us(400), func() {
		if ref.Len() != 2 {
			t.Errorf("reference Len = %d, want 2 (shadowed rule leaks by design)", ref.Len())
		}
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestEntriesSnapshotIsolated verifies Entries hands out a copy: callers
// shuffling or truncating the slice must not corrupt index invariants.
func TestEntriesSnapshotIsolated(t *testing.T) {
	s := sim.New(1)
	tbl := NewFlowTable(s)
	tbl.Add(FlowEntry{Priority: 2, Match: MatchDst(pfx("10.0.0.0/8")), Cookie: "a"})
	tbl.Add(FlowEntry{Priority: 1, Match: NewMatch(), Cookie: "b"})
	es := tbl.Entries()
	es[0], es[1] = es[1], es[0]
	es[0] = nil
	if got := tbl.Entries(); got[0] == nil || got[0].Cookie != "a" || got[1].Cookie != "b" {
		t.Fatalf("table order corrupted through Entries snapshot: %v", got)
	}
	if e := tbl.Lookup(udp("1.1.1.1", "10.0.0.5"), 0); e == nil || e.Cookie != "a" {
		t.Fatalf("lookup after snapshot mutation = %v, want a", e)
	}
}
