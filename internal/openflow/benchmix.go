package openflow

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/netsim"
)

// This file synthesizes the rule populations and traffic the switch-scale
// benchmark replays. The shapes (cookies, priorities, match structure,
// idle timeouts) mirror what internal/controller installs on a mapping
// datapath so the lookup numbers reflect the table a real deployment
// carries, without paying for a full cluster boot per benchmark point.

// Priorities as installed by the controller (internal/controller) plus
// the hot-key cache tier above the LB rules.
const (
	benchPrioARP     = 90
	benchPrioCache   = 70
	benchPrioLB      = 60
	benchPrioMapping = 50
	benchPrioPhys    = 10
)

// benchIdle parks mapping rules on the expiry heap without ever firing
// during a benchmark (the virtual clock is frozen), so Lookup pays the
// real heap-peek cost.
const benchIdle = 10 * time.Second

// benchDivisions is the client-space split the LB tier uses (§4.5,
// R=3 plus the primary: four /10 source divisions).
func benchDivisions() []netsim.Prefix {
	divs := make([]netsim.Prefix, 4)
	for d := range divs {
		divs[d] = netsim.PrefixOf(netsim.IPv4(10, byte(d*64), 0, 0), 10)
	}
	return divs
}

func benchUniPrefix(p int) netsim.Prefix {
	return netsim.PrefixOf(netsim.IPv4(20, byte(p>>8), byte(p), 0), 24)
}

func benchMcPrefix(p int) netsim.Prefix {
	return netsim.PrefixOf(netsim.IPv4(30, byte(p>>8), byte(p), 0), 24)
}

func benchHostIP(i int) netsim.IP { return netsim.IPv4(10, 0, byte(i>>8), byte(i)) }

// benchHotKeys is the number of hot-key cache rules the "+cache" mix adds.
const benchHotKeys = 64

// SyntheticRules builds the flow-table population of a mapping datapath
// in an n-node deployment (one partition per node): ARP punt, per-division
// LB rules, unicast/multicast vring mappings, group-direct entries, and
// per-host physical forwarding. With cache set, hot-key exact-match rules
// (the switchcache tier) sit above the LB rules.
func SyntheticRules(n int, cache bool) []FlowEntry {
	var rules []FlowEntry
	add := func(prio int, m Match, idle time.Duration, cookie string) {
		rules = append(rules, FlowEntry{Priority: prio, Match: m, IdleTimeout: idle, Cookie: cookie})
	}

	arp := NewMatch()
	arp.Proto = netsim.ProtoARP
	add(benchPrioARP, arp, 0, "arp-punt")

	divs := benchDivisions()
	for p := 0; p < n; p++ {
		uni := benchUniPrefix(p)
		add(benchPrioMapping, MatchDst(uni), benchIdle, fmt.Sprintf("uni-p%d.", p))
		for d, div := range divs {
			m := MatchDst(uni)
			m.SrcIP = div
			add(benchPrioLB, m, benchIdle, fmt.Sprintf("uni-p%d.d%d", p, d))
		}
		add(benchPrioMapping, MatchDst(benchMcPrefix(p)), benchIdle, fmt.Sprintf("mc-p%d.", p))
		gd := MatchDst(netsim.HostPrefix(benchMcPrefix(p).Nth(1)))
		prio := benchPrioMapping
		if p%4 == 0 { // a quarter of the group-direct entries are ingress-specific
			gd.InPort = p % 8
			prio += 2
		}
		add(prio, gd, 0, fmt.Sprintf("gd-p%d.k0", p))
	}
	for i := 0; i < n; i++ {
		add(benchPrioPhys, MatchDst(netsim.HostPrefix(benchHostIP(i))), 0, "phys-"+benchHostIP(i).String())
	}
	if cache {
		for k := 0; k < benchHotKeys; k++ {
			m := MatchDst(netsim.HostPrefix(benchUniPrefix(k % n).Nth(1)))
			m.DstPort = 9000
			add(benchPrioCache, m, benchIdle, fmt.Sprintf("cache-k%d", k))
		}
	}
	return rules
}

// SyntheticPackets draws count packets of the traffic mix the rule set
// serves: mostly KV requests into the unicast vring space (resolved by
// the LB tier, or the cache tier when present), plus host-to-host
// physical traffic — whose rules sit at the very end of a linear scan —
// and some multicast. Every packet hits some rule.
func SyntheticPackets(n, count int, cache bool, seed int64) []netsim.Packet {
	rng := rand.New(rand.NewSource(seed))
	pkts := make([]netsim.Packet, count)
	for i := range pkts {
		pkt := &pkts[i]
		pkt.SrcIP = netsim.IPv4(10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1+rng.Intn(250)))
		pkt.Proto = netsim.ProtoTCP
		pkt.SrcPort = uint16(30000 + rng.Intn(1000))
		pkt.DstPort = 9000
		pkt.Size = 256
		p := rng.Intn(n)
		switch r := rng.Intn(100); {
		case cache && r < 15: // hot key, served by the cache tier
			pkt.DstIP = benchUniPrefix(rng.Intn(benchHotKeys) % n).Nth(1)
		case r < 65: // KV request into the vring space
			pkt.DstIP = benchUniPrefix(p).Nth(uint32(2 + rng.Intn(200)))
		case r < 85: // host-to-host physical traffic
			pkt.DstIP = benchHostIP(rng.Intn(n))
			pkt.DstPort = uint16(7000 + rng.Intn(3))
		default: // multicast put
			pkt.DstIP = benchMcPrefix(p).Nth(uint32(2 + rng.Intn(200)))
		}
	}
	return pkts
}
