package openflow

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// TestIdleHeapChurnBounded pins the §10.2 compaction promise: under
// sustained controller churn — batches of idle-timeout rules installed
// and cookie-removed every round, with lookups (the expiry pop path)
// in between — the deadline heap stays proportional to the resident
// idle-rule count instead of accumulating one tombstone per removal.
func TestIdleHeapChurnBounded(t *testing.T) {
	const (
		rounds = 100
		batch  = 100
	)
	s := sim.New(1)
	tbl := NewFlowTable(s)
	maxNodes := 0
	for r := 0; r < rounds; r++ {
		r := r
		s.At(us(r*1000), func() {
			for i := 0; i < batch; i++ {
				_, err := tbl.Add(FlowEntry{
					Priority:    1,
					Match:       MatchDst(pfx(fmt.Sprintf("10.%d.%d.0/24", r%200, i))),
					Cookie:      fmt.Sprintf("r%d.", r),
					IdleTimeout: us(10_000),
				})
				if err != nil {
					t.Errorf("round %d: %v", r, err)
				}
			}
			if r > 0 {
				if n := tbl.RemoveCookie(fmt.Sprintf("r%d.", r-1)); n != batch {
					t.Errorf("round %d: removed %d, want %d", r, n, batch)
				}
			}
			tbl.Lookup(udp("1.1.1.1", "2.2.2.2"), 0)
			if n := len(tbl.idle.nodes); n > maxNodes {
				maxNodes = n
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 10k rules churned through; without compaction the heap would hold
	// ~10k tombstones. The bound: live entries plus at most live+64 dead.
	if limit := 2*batch + 64; maxNodes > limit {
		t.Fatalf("idle heap reached %d nodes churning %d rules (bound %d)",
			maxNodes, rounds*batch, limit)
	}
	if maxNodes < batch {
		t.Fatalf("heap max %d never held a full batch — test is not exercising churn", maxNodes)
	}
}

// TestIdleHeapCompactsOnPopPath: after a mass removal, the next lookup
// alone (no further Remove calls) must shed the tombstones.
func TestIdleHeapCompactsOnPopPath(t *testing.T) {
	s := sim.New(1)
	tbl := NewFlowTable(s)
	s.At(0, func() {
		for i := 0; i < 256; i++ {
			tbl.Add(FlowEntry{
				Priority:    1,
				Match:       MatchDst(pfx(fmt.Sprintf("10.0.%d.0/24", i))),
				Cookie:      "bulk.",
				IdleTimeout: us(1000),
			})
		}
		// Mark entries dead behind compact's back, as a caller holding the
		// table invariants (evict's shadow path) would: the pop path must
		// still bound the garbage.
		for _, e := range tbl.entries {
			tbl.unindex(e)
		}
		tbl.entries = tbl.entries[:0]
	})
	s.At(us(10), func() {
		tbl.Lookup(udp("1.1.1.1", "2.2.2.2"), 0)
		if n := len(tbl.idle.nodes); n > 64 {
			t.Fatalf("lookup left %d tombstoned heap nodes, want compacted (<=64)", n)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
