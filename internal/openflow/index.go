package openflow

import (
	"sort"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// This file holds the two-tier match index behind FlowTable.Lookup.
//
// Tier one is a set of exact-match hash groups, one per distinct mask
// signature (which fields a rule constrains, and at what prefix length):
// all rules sharing a signature live in one map keyed by their concrete
// field tuple, so a packet resolves against the whole group with a single
// map probe on its correspondingly masked headers. This is the tuple-space
// search of the OVS megaflow classifier, and the software analogue of the
// exact-match SRAM tables real switch ASICs use next to their tiny TCAMs:
// NICE's controller installs thousands of structurally identical rules
// (per-partition vring prefixes, per-division LB rules, per-host /32
// forwarding), which collapse into a handful of signatures.
//
// Tier two is a short priority-ordered list for rules that constrain
// nothing at all (the default-miss catch-alls); it is consulted after the
// groups and loses ties by the same (priority, insertion order) rule.
//
// Idle expiry is an explicit min-heap on lastUsed+IdleTimeout deadlines
// (lazily refreshed, like a hashed timer wheel), replacing the old
// evict-while-scanning approach that never visited entries shadowed by an
// earlier match.

// maskSig is the mask signature of a Match: which fields it pins and the
// prefix lengths it pins them at. The zero maskSig is the all-wildcard
// signature.
type maskSig struct {
	srcBits, dstBits uint8
	proto            bool
	srcPort, dstPort bool
	inPort           bool
}

// sig extracts m's mask signature.
func (m Match) sig() maskSig {
	return maskSig{
		srcBits: uint8(m.SrcIP.Bits),
		dstBits: uint8(m.DstIP.Bits),
		proto:   m.Proto != netsim.ProtoNone,
		srcPort: m.SrcPort != 0,
		dstPort: m.DstPort != 0,
		inPort:  m.InPort != AnyPort,
	}
}

// flowKey is the concrete tuple a signature group hashes on. Fields a
// signature leaves wild are zero on both the rule and the packet side, so
// they never split the key space.
type flowKey struct {
	src, dst         netsim.IP
	proto            netsim.Proto
	srcPort, dstPort uint16
	inPort           int32
}

// ruleKey reduces m to its group key. Constrained prefix addresses are
// taken verbatim (not re-masked): Prefix.Contains compares against the
// unmasked address, so a prefix carrying bits below its mask can never
// contain any address, and keeping those bits in the key preserves
// exactly that never-matches behavior. A /0 prefix is a full wildcard
// whatever its address (Prefix.IsWildcard), so it contributes zero.
func (m Match) ruleKey() flowKey {
	k := flowKey{proto: m.Proto, srcPort: m.SrcPort, dstPort: m.DstPort}
	if m.SrcIP.Bits != 0 {
		k.src = m.SrcIP.Addr
	}
	if m.DstIP.Bits != 0 {
		k.dst = m.DstIP.Addr
	}
	if m.InPort != AnyPort {
		k.inPort = int32(m.InPort)
	}
	return k
}

// matchGroup is one tier-one hash group: every installed rule with the
// same mask signature, keyed by its concrete tuple. A bucket holds the
// (rare) rules with byte-identical matches, ordered best-first.
type matchGroup struct {
	sig     maskSig
	buckets map[flowKey][]*FlowEntry
	maxPrio int // upper bound over resident entries; not lowered on remove
	size    int
}

// pktKey reduces a packet to g's key: each constrained field is copied,
// prefix fields masked to the group's lengths.
func (g *matchGroup) pktKey(pkt *netsim.Packet, inPort int) flowKey {
	k := flowKey{
		src: pkt.SrcIP.Masked(int(g.sig.srcBits)),
		dst: pkt.DstIP.Masked(int(g.sig.dstBits)),
	}
	if g.sig.proto {
		k.proto = pkt.Proto
	}
	if g.sig.srcPort {
		k.srcPort = pkt.SrcPort
	}
	if g.sig.dstPort {
		k.dstPort = pkt.DstPort
	}
	if g.sig.inPort {
		k.inPort = int32(inPort)
	}
	return k
}

// beats reports whether e wins over cur (which may be nil): higher
// priority, then earlier installation.
func beats(e, cur *FlowEntry) bool {
	if cur == nil {
		return true
	}
	if e.Priority != cur.Priority {
		return e.Priority > cur.Priority
	}
	return e.seq < cur.seq
}

// insertOrdered places e into a best-first (priority desc, seq asc) slice.
func insertOrdered(list []*FlowEntry, e *FlowEntry) []*FlowEntry {
	i := sort.Search(len(list), func(i int) bool { return beats(e, list[i]) })
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = e
	return list
}

// removeFrom cuts e out of an ordered slice (identity match).
func removeFrom(list []*FlowEntry, e *FlowEntry) []*FlowEntry {
	for i, x := range list {
		if x == e {
			copy(list[i:], list[i+1:])
			list[len(list)-1] = nil
			return list[:len(list)-1]
		}
	}
	return list
}

// expNode is one pending idle deadline. at may be stale (the entry was
// used after scheduling); the pop path re-checks against the entry's true
// deadline and re-arms.
type expNode struct {
	at sim.Time
	e  *FlowEntry
}

// expiryHeap is a binary min-heap of idle deadlines. Removed entries
// leave their node behind (marked via FlowEntry.removed) and are skipped
// on pop; dead counts them so compact can bound the garbage.
type expiryHeap struct {
	nodes []expNode
	dead  int
}

func (h *expiryHeap) push(at sim.Time, e *FlowEntry) {
	h.nodes = append(h.nodes, expNode{at: at, e: e})
	i := len(h.nodes) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.nodes[parent].at <= h.nodes[i].at {
			break
		}
		h.nodes[parent], h.nodes[i] = h.nodes[i], h.nodes[parent]
		i = parent
	}
}

func (h *expiryHeap) pop() expNode {
	n := h.nodes[0]
	last := len(h.nodes) - 1
	h.nodes[0] = h.nodes[last]
	h.nodes[last] = expNode{}
	h.nodes = h.nodes[:last]
	h.siftDown(0)
	return n
}

func (h *expiryHeap) siftDown(i int) {
	n := len(h.nodes)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.nodes[l].at < h.nodes[small].at {
			small = l
		}
		if r < n && h.nodes[r].at < h.nodes[small].at {
			small = r
		}
		if small == i {
			return
		}
		h.nodes[i], h.nodes[small] = h.nodes[small], h.nodes[i]
		i = small
	}
}

// compact drops dead nodes once they outnumber live ones, keeping the
// heap proportional to the resident idle-rule count across the
// controller's install/remove churn.
func (h *expiryHeap) compact() {
	if h.dead <= len(h.nodes)/2 || len(h.nodes) < 64 {
		return
	}
	live := h.nodes[:0]
	for _, n := range h.nodes {
		if !n.e.removed {
			live = append(live, n)
		}
	}
	for i := len(live); i < len(h.nodes); i++ {
		h.nodes[i] = expNode{}
	}
	h.nodes = live
	h.dead = 0
	for i := len(h.nodes)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}
