package openflow

import (
	"sort"
	"strings"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// ReferenceTable is the pre-index flow table: a priority-sorted slice
// scanned linearly on every lookup, evicting idle-expired entries as the
// scan passes them. It is kept verbatim as the executable specification
// of matching semantics — the differential property test runs it side by
// side with FlowTable on randomized rule sets, and the switch-scale
// benchmark uses it as the O(n) baseline.
//
// Its one known deviation is deliberate: entries shadowed by an
// earlier match are never visited by the scan, so their idle timeout
// never fires (the bug the deadline heap fixes). Shadowed expired
// entries are unreturnable in both implementations, so Lookup results
// still agree exactly.
type ReferenceTable struct {
	s        *sim.Simulator
	entries  []*FlowEntry
	seq      uint64
	Capacity int // 0 = unlimited
}

// NewReferenceTable returns an empty linear-scan table clocked by s.
func NewReferenceTable(s *sim.Simulator) *ReferenceTable {
	return &ReferenceTable{s: s}
}

// Add inserts a rule and keeps the table sorted by descending priority.
func (t *ReferenceTable) Add(e FlowEntry) (*FlowEntry, error) {
	if t.Capacity > 0 && len(t.entries) >= t.Capacity {
		return nil, ErrTableFull
	}
	t.seq++
	e.seq = t.seq
	e.lastUsed = t.s.Now()
	ep := &e
	i := sort.Search(len(t.entries), func(i int) bool {
		return t.entries[i].Priority < ep.Priority
	})
	t.entries = append(t.entries, nil)
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = ep
	return ep, nil
}

// Remove deletes all entries for which pred returns true and reports how
// many were deleted.
func (t *ReferenceTable) Remove(pred func(*FlowEntry) bool) int {
	kept := t.entries[:0]
	removed := 0
	for _, e := range t.entries {
		if pred(e) {
			removed++
		} else {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(t.entries); i++ {
		t.entries[i] = nil
	}
	t.entries = kept
	return removed
}

// RemoveCookie deletes all entries whose cookie has the given prefix.
func (t *ReferenceTable) RemoveCookie(prefix string) int {
	return t.Remove(func(e *FlowEntry) bool { return strings.HasPrefix(e.Cookie, prefix) })
}

// Lookup returns the matching entry for pkt on inPort, or nil on a table
// miss, updating hit counters and evicting idle entries it passes.
func (t *ReferenceTable) Lookup(pkt *netsim.Packet, inPort int) *FlowEntry {
	now := t.s.Now()
	for i := 0; i < len(t.entries); i++ {
		e := t.entries[i]
		if e.IdleTimeout > 0 && now-e.lastUsed > e.IdleTimeout {
			copy(t.entries[i:], t.entries[i+1:])
			t.entries[len(t.entries)-1] = nil
			t.entries = t.entries[:len(t.entries)-1]
			i--
			continue
		}
		if e.Match.Covers(pkt, inPort) {
			e.matches++
			e.bytes += int64(pkt.Size)
			e.lastUsed = now
			return e
		}
	}
	return nil
}

// Len returns the number of installed entries.
func (t *ReferenceTable) Len() int { return len(t.entries) }

// Entries returns a snapshot of the entries in priority order.
func (t *ReferenceTable) Entries() []*FlowEntry {
	out := make([]*FlowEntry, len(t.entries))
	copy(out, t.entries)
	return out
}
