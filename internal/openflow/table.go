package openflow

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// FlowEntry is one rule: a priority, a match, and an action list. Cookie
// is a free-form label the controller uses to find and delete its own
// rules; it plays the role of the OpenFlow cookie field.
type FlowEntry struct {
	Priority    int
	Match       Match
	Actions     []Action
	Cookie      string
	IdleTimeout sim.Time // 0 = never expires

	matches  int64
	bytes    int64
	lastUsed sim.Time
	seq      uint64 // insertion order, tie-break within a priority
	removed  bool   // deleted or idle-expired; stale heap nodes check this
}

// Matches returns how many packets hit this entry.
func (e *FlowEntry) Matches() int64 { return e.matches }

// MatchedBytes returns how many bytes hit this entry.
func (e *FlowEntry) MatchedBytes() int64 { return e.bytes }

// String renders the rule like ovs-ofctl dump-flows.
func (e *FlowEntry) String() string {
	acts := make([]string, len(e.Actions))
	for i, a := range e.Actions {
		acts[i] = a.actionString()
	}
	return fmt.Sprintf("prio=%d %s actions=%s cookie=%q n=%d",
		e.Priority, e.Match, strings.Join(acts, ","), e.Cookie, e.matches)
}

// FlowTable is a priority-ordered rule table. Lookup returns the
// highest-priority covering entry (insertion order breaks ties) in O(1)
// map probes per mask signature: rules are indexed into exact-match hash
// groups plus a short catch-all list (see index.go), and idle expiry runs
// off an explicit deadline heap instead of being folded into the scan.
// Semantics are bit-identical to ReferenceTable, the linear-scan oracle.
// Table size is bounded by Capacity when non-zero, modeling hardware TCAM
// limits (§4.6).
type FlowTable struct {
	s        *sim.Simulator
	entries  []*FlowEntry // priority-ordered master list
	seq      uint64
	Capacity int // 0 = unlimited

	groups []*matchGroup // tier one, in first-installation order
	bySig  map[maskSig]*matchGroup
	wild   []*FlowEntry // tier two: all-wildcard rules, best-first
	idle   expiryHeap
}

// NewFlowTable returns an empty table clocked by s.
func NewFlowTable(s *sim.Simulator) *FlowTable {
	return &FlowTable{s: s, bySig: make(map[maskSig]*matchGroup)}
}

// ErrTableFull is returned by Add when Capacity would be exceeded.
var ErrTableFull = fmt.Errorf("openflow: flow table full")

// Add inserts a rule and keeps the table sorted by descending priority.
func (t *FlowTable) Add(e FlowEntry) (*FlowEntry, error) {
	if t.Capacity > 0 && len(t.entries) >= t.Capacity {
		return nil, ErrTableFull
	}
	t.seq++
	e.seq = t.seq
	e.lastUsed = t.s.Now()
	ep := &e
	t.entries = insertOrdered(t.entries, ep)
	t.index(ep)
	if ep.IdleTimeout > 0 {
		t.idle.push(ep.lastUsed+ep.IdleTimeout, ep)
	}
	return ep, nil
}

// index files ep under its mask-signature group (or the wildcard list).
func (t *FlowTable) index(ep *FlowEntry) {
	sig := ep.Match.sig()
	if sig == (maskSig{}) {
		t.wild = insertOrdered(t.wild, ep)
		return
	}
	g := t.bySig[sig]
	if g == nil {
		g = &matchGroup{sig: sig, buckets: make(map[flowKey][]*FlowEntry), maxPrio: ep.Priority}
		t.bySig[sig] = g
		t.groups = append(t.groups, g)
	}
	if ep.Priority > g.maxPrio {
		g.maxPrio = ep.Priority
	}
	k := ep.Match.ruleKey()
	g.buckets[k] = insertOrdered(g.buckets[k], ep)
	g.size++
}

// unindex removes ep from its group or the wildcard list, and from the
// master list. ep's pending idle node (if any) is left for the heap to
// skip.
func (t *FlowTable) unindex(ep *FlowEntry) {
	ep.removed = true
	if ep.IdleTimeout > 0 {
		t.idle.dead++
	}
	sig := ep.Match.sig()
	if sig == (maskSig{}) {
		t.wild = removeFrom(t.wild, ep)
		return
	}
	g := t.bySig[sig]
	k := ep.Match.ruleKey()
	b := removeFrom(g.buckets[k], ep)
	if len(b) == 0 {
		delete(g.buckets, k)
	} else {
		g.buckets[k] = b
	}
	g.size--
}

// Remove deletes all entries for which pred returns true and reports how
// many were deleted.
func (t *FlowTable) Remove(pred func(*FlowEntry) bool) int {
	kept := t.entries[:0]
	removed := 0
	for _, e := range t.entries {
		if pred(e) {
			removed++
			t.unindex(e)
		} else {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(t.entries); i++ {
		t.entries[i] = nil
	}
	t.entries = kept
	t.idle.compact()
	return removed
}

// RemoveCookie deletes all entries whose cookie has the given prefix.
func (t *FlowTable) RemoveCookie(prefix string) int {
	return t.Remove(func(e *FlowEntry) bool { return strings.HasPrefix(e.Cookie, prefix) })
}

// expireIdle evicts every entry whose idle deadline has passed. Deadlines
// in the heap are lazily stale: an entry used since scheduling is re-armed
// at its true deadline instead of evicted. Unlike the old scan-coupled
// eviction this reaps entries shadowed by higher-priority rules too.
func (t *FlowTable) expireIdle(now sim.Time) {
	for len(t.idle.nodes) > 0 && t.idle.nodes[0].at < now {
		n := t.idle.pop()
		if n.e.removed {
			t.idle.dead--
			continue
		}
		deadline := n.e.lastUsed + n.e.IdleTimeout
		if deadline < now {
			t.evict(n.e)
		} else {
			t.idle.push(deadline, n.e)
		}
	}
	// Periodic tombstone compaction (§10.2): Remove compacts at its own
	// call sites, but this is the path every lookup takes, so checking the
	// (two-comparison) threshold here bounds the heap no matter who
	// removed the entries or when.
	t.idle.compact()
}

// evict drops an idle-expired entry from the master list and the index.
func (t *FlowTable) evict(e *FlowEntry) {
	i := sort.Search(len(t.entries), func(i int) bool { return !beats(t.entries[i], e) })
	for i < len(t.entries) && t.entries[i] != e {
		i++ // identical (priority, seq) cannot repeat; defensive only
	}
	if i == len(t.entries) {
		return
	}
	copy(t.entries[i:], t.entries[i+1:])
	t.entries[len(t.entries)-1] = nil
	t.entries = t.entries[:len(t.entries)-1]
	t.unindex(e)
	t.idle.dead-- // the node that triggered eviction is already popped
}

// Lookup returns the matching entry for pkt on inPort, or nil on a table
// miss, updating hit counters. Expired idle entries are reaped up front,
// then the packet is resolved with one hash probe per mask signature and
// a peek at the wildcard list.
func (t *FlowTable) Lookup(pkt *netsim.Packet, inPort int) *FlowEntry {
	now := t.s.Now()
	t.expireIdle(now)
	var best *FlowEntry
	for _, g := range t.groups {
		if g.size == 0 || (best != nil && g.maxPrio < best.Priority) {
			continue
		}
		if b := g.buckets[g.pktKey(pkt, inPort)]; len(b) > 0 && beats(b[0], best) {
			best = b[0]
		}
	}
	if len(t.wild) > 0 && beats(t.wild[0], best) {
		best = t.wild[0]
	}
	if best == nil {
		return nil
	}
	best.matches++
	best.bytes += int64(pkt.Size)
	best.lastUsed = now
	return best
}

// Len returns the number of installed entries; the switch-scalability
// experiment measures this.
func (t *FlowTable) Len() int { return len(t.entries) }

// Entries returns a snapshot of the entries in priority order. Mutating
// the returned slice is safe; mutating the entries themselves is not —
// the index files them by their match fields.
func (t *FlowTable) Entries() []*FlowEntry {
	out := make([]*FlowEntry, len(t.entries))
	copy(out, t.entries)
	return out
}

// GroupTable maps group IDs to ALL-type groups.
type GroupTable struct {
	groups map[GroupID]*Group
}

// NewGroupTable returns an empty group table.
func NewGroupTable() *GroupTable {
	return &GroupTable{groups: make(map[GroupID]*Group)}
}

// Set installs or replaces a group.
func (gt *GroupTable) Set(g Group) { gt.groups[g.ID] = &g }

// Delete removes a group.
func (gt *GroupTable) Delete(id GroupID) { delete(gt.groups, id) }

// Get looks up a group.
func (gt *GroupTable) Get(id GroupID) (*Group, bool) {
	g, ok := gt.groups[id]
	return g, ok
}

// Len returns the number of installed groups.
func (gt *GroupTable) Len() int { return len(gt.groups) }
