package openflow

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// FlowEntry is one rule: a priority, a match, and an action list. Cookie
// is a free-form label the controller uses to find and delete its own
// rules; it plays the role of the OpenFlow cookie field.
type FlowEntry struct {
	Priority    int
	Match       Match
	Actions     []Action
	Cookie      string
	IdleTimeout sim.Time // 0 = never expires

	matches  int64
	bytes    int64
	lastUsed sim.Time
	seq      uint64 // insertion order, tie-break within a priority
}

// Matches returns how many packets hit this entry.
func (e *FlowEntry) Matches() int64 { return e.matches }

// MatchedBytes returns how many bytes hit this entry.
func (e *FlowEntry) MatchedBytes() int64 { return e.bytes }

// String renders the rule like ovs-ofctl dump-flows.
func (e *FlowEntry) String() string {
	acts := make([]string, len(e.Actions))
	for i, a := range e.Actions {
		acts[i] = a.actionString()
	}
	return fmt.Sprintf("prio=%d %s actions=%s cookie=%q n=%d",
		e.Priority, e.Match, strings.Join(acts, ","), e.Cookie, e.matches)
}

// FlowTable is a priority-ordered rule table. Lookup returns the
// highest-priority covering entry (insertion order breaks ties), lazily
// evicting idle-expired entries. Table size is bounded by Capacity when
// non-zero, modeling hardware TCAM limits (§4.6).
type FlowTable struct {
	s        *sim.Simulator
	entries  []*FlowEntry
	seq      uint64
	Capacity int // 0 = unlimited
}

// NewFlowTable returns an empty table clocked by s.
func NewFlowTable(s *sim.Simulator) *FlowTable {
	return &FlowTable{s: s}
}

// ErrTableFull is returned by Add when Capacity would be exceeded.
var ErrTableFull = fmt.Errorf("openflow: flow table full")

// Add inserts a rule and keeps the table sorted by descending priority.
func (t *FlowTable) Add(e FlowEntry) (*FlowEntry, error) {
	if t.Capacity > 0 && len(t.entries) >= t.Capacity {
		return nil, ErrTableFull
	}
	t.seq++
	e.seq = t.seq
	e.lastUsed = t.s.Now()
	ep := &e
	i := sort.Search(len(t.entries), func(i int) bool {
		return t.entries[i].Priority < ep.Priority
	})
	t.entries = append(t.entries, nil)
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = ep
	return ep, nil
}

// Remove deletes all entries for which pred returns true and reports how
// many were deleted.
func (t *FlowTable) Remove(pred func(*FlowEntry) bool) int {
	kept := t.entries[:0]
	removed := 0
	for _, e := range t.entries {
		if pred(e) {
			removed++
		} else {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(t.entries); i++ {
		t.entries[i] = nil
	}
	t.entries = kept
	return removed
}

// RemoveCookie deletes all entries whose cookie has the given prefix.
func (t *FlowTable) RemoveCookie(prefix string) int {
	return t.Remove(func(e *FlowEntry) bool { return strings.HasPrefix(e.Cookie, prefix) })
}

// Lookup returns the matching entry for pkt on inPort, or nil on a table
// miss, updating hit counters and evicting idle entries it passes.
func (t *FlowTable) Lookup(pkt *netsim.Packet, inPort int) *FlowEntry {
	now := t.s.Now()
	for i := 0; i < len(t.entries); i++ {
		e := t.entries[i]
		if e.IdleTimeout > 0 && now-e.lastUsed > e.IdleTimeout {
			copy(t.entries[i:], t.entries[i+1:])
			t.entries[len(t.entries)-1] = nil
			t.entries = t.entries[:len(t.entries)-1]
			i--
			continue
		}
		if e.Match.Covers(pkt, inPort) {
			e.matches++
			e.bytes += int64(pkt.Size)
			e.lastUsed = now
			return e
		}
	}
	return nil
}

// Len returns the number of installed entries; the switch-scalability
// experiment measures this.
func (t *FlowTable) Len() int { return len(t.entries) }

// Entries returns the live entries in priority order (shared slice; do
// not mutate).
func (t *FlowTable) Entries() []*FlowEntry { return t.entries }

// GroupTable maps group IDs to ALL-type groups.
type GroupTable struct {
	groups map[GroupID]*Group
}

// NewGroupTable returns an empty group table.
func NewGroupTable() *GroupTable {
	return &GroupTable{groups: make(map[GroupID]*Group)}
}

// Set installs or replaces a group.
func (gt *GroupTable) Set(g Group) { gt.groups[g.ID] = &g }

// Delete removes a group.
func (gt *GroupTable) Delete(id GroupID) { delete(gt.groups, id) }

// Get looks up a group.
func (gt *GroupTable) Get(id GroupID) (*Group, bool) {
	g, ok := gt.groups[id]
	return g, ok
}

// Len returns the number of installed groups.
func (gt *GroupTable) Len() int { return len(gt.groups) }
