package openflow

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func us(n int) sim.Time { return sim.Time(n) * time.Microsecond }

func ip(s string) netsim.IP      { return netsim.MustParseIP(s) }
func pfx(s string) netsim.Prefix { return netsim.MustParsePrefix(s) }
func udp(src, dst string) *netsim.Packet {
	return &netsim.Packet{SrcIP: ip(src), DstIP: ip(dst), Proto: netsim.ProtoUDP, Size: 100}
}

func TestMatchCovers(t *testing.T) {
	pkt := udp("192.168.1.5", "10.10.3.9")
	pkt.SrcPort, pkt.DstPort = 5000, 7000

	cases := []struct {
		name string
		m    Match
		want bool
	}{
		{"wildcard", NewMatch(), true},
		{"dst prefix hit", MatchDst(pfx("10.10.0.0/16")), true},
		{"dst prefix miss", MatchDst(pfx("10.11.0.0/16")), false},
		{"src prefix", func() Match { m := NewMatch(); m.SrcIP = pfx("192.168.0.0/16"); return m }(), true},
		{"proto hit", func() Match { m := NewMatch(); m.Proto = netsim.ProtoUDP; return m }(), true},
		{"proto miss", func() Match { m := NewMatch(); m.Proto = netsim.ProtoTCP; return m }(), false},
		{"dport hit", func() Match { m := NewMatch(); m.DstPort = 7000; return m }(), true},
		{"dport miss", func() Match { m := NewMatch(); m.DstPort = 7001; return m }(), false},
		{"sport hit", func() Match { m := NewMatch(); m.SrcPort = 5000; return m }(), true},
		{"inport hit", func() Match { m := NewMatch(); m.InPort = 3; return m }(), true},
		{"inport miss", func() Match { m := NewMatch(); m.InPort = 4; return m }(), false},
	}
	for _, c := range cases {
		if got := c.m.Covers(pkt, 3); got != c.want {
			t.Errorf("%s: Covers = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFlowTablePriority(t *testing.T) {
	s := sim.New(1)
	tbl := NewFlowTable(s)
	lo, _ := tbl.Add(FlowEntry{Priority: 1, Match: NewMatch(), Cookie: "default"})
	hi, _ := tbl.Add(FlowEntry{Priority: 10, Match: MatchDst(pfx("10.10.0.0/16")), Cookie: "vring"})

	if e := tbl.Lookup(udp("1.1.1.1", "10.10.0.5"), 0); e != hi {
		t.Fatalf("lookup hit %v, want high-priority entry", e)
	}
	if e := tbl.Lookup(udp("1.1.1.1", "10.99.0.5"), 0); e != lo {
		t.Fatalf("lookup hit %v, want default entry", e)
	}
	if hi.Matches() != 1 || lo.Matches() != 1 {
		t.Fatalf("counters: hi=%d lo=%d", hi.Matches(), lo.Matches())
	}
}

func TestFlowTableInsertionOrderTieBreak(t *testing.T) {
	s := sim.New(1)
	tbl := NewFlowTable(s)
	first, _ := tbl.Add(FlowEntry{Priority: 5, Match: NewMatch(), Cookie: "first"})
	tbl.Add(FlowEntry{Priority: 5, Match: NewMatch(), Cookie: "second"})
	if e := tbl.Lookup(udp("1.1.1.1", "2.2.2.2"), 0); e != first {
		t.Fatalf("tie broke to %q, want first", e.Cookie)
	}
}

func TestFlowTableIdleTimeout(t *testing.T) {
	s := sim.New(1)
	tbl := NewFlowTable(s)
	tbl.Add(FlowEntry{Priority: 5, Match: NewMatch(), Cookie: "x", IdleTimeout: us(100)})
	s.At(us(50), func() {
		if tbl.Lookup(udp("1.1.1.1", "2.2.2.2"), 0) == nil {
			t.Error("entry expired too early")
		}
	})
	s.At(us(200), func() { // 150us after last use: expired
		if tbl.Lookup(udp("1.1.1.1", "2.2.2.2"), 0) != nil {
			t.Error("entry should have expired")
		}
		if tbl.Len() != 0 {
			t.Errorf("Len = %d after expiry", tbl.Len())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFlowTableCapacity(t *testing.T) {
	s := sim.New(1)
	tbl := NewFlowTable(s)
	tbl.Capacity = 2
	if _, err := tbl.Add(FlowEntry{Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Add(FlowEntry{Priority: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Add(FlowEntry{Priority: 3}); err != ErrTableFull {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
}

func TestRemoveCookie(t *testing.T) {
	s := sim.New(1)
	tbl := NewFlowTable(s)
	tbl.Add(FlowEntry{Priority: 1, Cookie: "vring-unicast-p0"})
	tbl.Add(FlowEntry{Priority: 1, Cookie: "vring-unicast-p1"})
	tbl.Add(FlowEntry{Priority: 1, Cookie: "vring-mcast-p0"})
	if n := tbl.RemoveCookie("vring-unicast-"); n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
}

// topo builds hosts around one OpenFlow switch: client on port 0, servers
// on ports 1..n.
func topo(t *testing.T, nServers int, ctrlDelay sim.Time) (*sim.Simulator, *netsim.Network, *Datapath, *netsim.Host, []*netsim.Host) {
	t.Helper()
	s := sim.New(1)
	n := netsim.NewNetwork(s)
	sw := n.NewSwitch("sw", nServers+1, us(2))
	dp := Attach(sw, ctrlDelay)
	client := n.NewHost("client", ip("192.168.0.1"))
	n.Connect(client.Port(), sw.Port(0), netsim.Gbps(1, 0))
	var servers []*netsim.Host
	for i := 0; i < nServers; i++ {
		h := n.NewHost("srv", ip("10.0.0.1").Add(uint32(i)))
		n.Connect(h.Port(), sw.Port(i+1), netsim.Gbps(1, 0))
		servers = append(servers, h)
	}
	return s, n, dp, client, servers
}

func TestRewriteAndForward(t *testing.T) {
	// The core NICE mechanism: a packet to a virtual address is rewritten
	// to the physical node's IP/MAC and forwarded in one hop.
	s, _, dp, client, servers := topo(t, 1, 0)
	srv := servers[0]
	vaddr := ip("10.10.1.7")
	dp.Table().Add(FlowEntry{
		Priority: 10,
		Match:    MatchDst(pfx("10.10.1.0/24")),
		Actions:  []Action{SetDstIP{srv.IP()}, SetDstMAC{srv.MAC()}, Output{Port: 1}},
		Cookie:   "vring",
	})
	dp.SetMissBehavior(MissDrop)
	var got *netsim.Packet
	srv.SetHandler(func(pkt *netsim.Packet) { got = pkt })
	s.At(0, func() { client.Send(&netsim.Packet{DstIP: vaddr, Proto: netsim.ProtoUDP, Size: 200}) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("server did not receive rewritten packet")
	}
	if got.DstIP != srv.IP() || got.DstMAC != srv.MAC() {
		t.Fatalf("rewrite failed: dst=%s mac=%s", got.DstIP, got.DstMAC)
	}
	if got.SrcIP != client.IP() {
		t.Fatalf("src clobbered: %s", got.SrcIP)
	}
}

func TestGroupMulticast(t *testing.T) {
	// Multicast vring: rewrite to the group address, then fan out to all
	// replica ports; every replica receives exactly one copy.
	s, _, dp, client, servers := topo(t, 3, 0)
	group := ip("239.0.1.0")
	var buckets []Bucket
	for i := range servers {
		servers[i].JoinMulticast(group)
		buckets = append(buckets, Bucket{Actions: []Action{Output{Port: i + 1}}})
	}
	dp.Groups().Set(Group{ID: 7, Buckets: buckets})
	dp.Table().Add(FlowEntry{
		Priority: 10,
		Match:    MatchDst(pfx("10.11.1.0/24")),
		Actions:  []Action{SetDstIP{group}, SetDstMAC{netsim.BroadcastMAC}, OutputGroup{Group: 7}},
	})
	dp.SetMissBehavior(MissDrop)
	got := make([]int, len(servers))
	for i := range servers {
		i := i
		servers[i].SetHandler(func(pkt *netsim.Packet) {
			if pkt.DstIP == group {
				got[i]++
			}
		})
	}
	s.At(0, func() { client.Send(&netsim.Packet{DstIP: ip("10.11.1.42"), Proto: netsim.ProtoUDP, Size: 500}) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, n := range got {
		if n != 1 {
			t.Fatalf("server %d received %d copies, want 1", i, n)
		}
	}
}

type recordingController struct {
	ins []*netsim.Packet
}

func (c *recordingController) PacketIn(dp *Datapath, pkt *netsim.Packet, inPort int) {
	c.ins = append(c.ins, pkt)
	// Reflect it back out the port it came from.
	dp.PacketOut(pkt, inPort)
}

func TestPacketInOut(t *testing.T) {
	s, _, dp, client, _ := topo(t, 1, us(100))
	ctrl := &recordingController{}
	dp.SetController(ctrl)
	var echoed bool
	client.SetHandler(func(pkt *netsim.Packet) { echoed = true })
	s.At(0, func() {
		client.Send(&netsim.Packet{DstIP: client.IP(), DstMAC: netsim.BroadcastMAC, Proto: netsim.ProtoUDP, Size: 99})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ctrl.ins) != 1 {
		t.Fatalf("controller saw %d PacketIns, want 1", len(ctrl.ins))
	}
	if !echoed {
		t.Fatal("PacketOut did not reach the client")
	}
	st := dp.Stats()
	if st.PacketIns != 1 || st.PacketOuts != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFlowModLatency(t *testing.T) {
	s, _, dp, client, servers := topo(t, 1, us(500))
	dp.SetMissBehavior(MissDrop)
	srv := servers[0]
	got := 0
	srv.SetHandler(func(pkt *netsim.Packet) { got++ })
	s.At(0, func() {
		dp.AddFlow(FlowEntry{
			Priority: 5,
			Match:    MatchDst(netsim.HostPrefix(srv.IP())),
			Actions:  []Action{SetDstMAC{srv.MAC()}, Output{Port: 1}},
		})
		// Sent before the mod lands: dropped.
		client.Send(&netsim.Packet{DstIP: srv.IP(), Proto: netsim.ProtoUDP, Size: 10})
	})
	s.At(us(1000), func() { // after the mod landed
		client.Send(&netsim.Packet{DstIP: srv.IP(), Proto: netsim.ProtoUDP, Size: 10})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("server received %d, want 1 (flow mod latency)", got)
	}
	if dp.Stats().FlowMods != 1 {
		t.Fatalf("FlowMods = %d", dp.Stats().FlowMods)
	}
}

func TestActionListStopsOnDrop(t *testing.T) {
	s, _, dp, client, servers := topo(t, 1, 0)
	dp.SetMissBehavior(MissDrop)
	dp.Table().Add(FlowEntry{
		Priority: 5,
		Match:    NewMatch(),
		Actions:  []Action{Drop{}, Output{Port: 1}},
	})
	got := 0
	servers[0].SetHandler(func(pkt *netsim.Packet) { got++ })
	s.At(0, func() { client.Send(&netsim.Packet{DstIP: servers[0].IP(), Proto: netsim.ProtoUDP, Size: 10}) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("output after drop must not fire")
	}
}

func TestSetFieldDoesNotAliasAcrossOutputs(t *testing.T) {
	// Output, then rewrite, then output again: the first copy must keep
	// the original header.
	s, _, dp, client, servers := topo(t, 2, 0)
	dp.SetMissBehavior(MissDrop)
	dp.Table().Add(FlowEntry{
		Priority: 5,
		Match:    NewMatch(),
		Actions: []Action{
			SetDstMAC{servers[0].MAC()}, Output{Port: 1},
			SetDstIP{servers[1].IP()}, SetDstMAC{servers[1].MAC()}, Output{Port: 2},
		},
	})
	var dst0, dst1 netsim.IP
	servers[0].SetHandler(func(pkt *netsim.Packet) { dst0 = pkt.DstIP })
	servers[1].SetHandler(func(pkt *netsim.Packet) { dst1 = pkt.DstIP })
	s.At(0, func() { client.Send(&netsim.Packet{DstIP: servers[0].IP(), Proto: netsim.ProtoUDP, Size: 10}) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if dst0 != servers[0].IP() {
		t.Fatalf("first copy rewritten: %s", dst0)
	}
	if dst1 != servers[1].IP() {
		t.Fatalf("second copy not rewritten: %s", dst1)
	}
}

func BenchmarkFlowTableLookup(b *testing.B) {
	s := sim.New(1)
	tbl := NewFlowTable(s)
	// 64 partitions x (unicast + multicast + group-direct) + phys rules,
	// the shape of a real deployment's table.
	for p := 0; p < 64; p++ {
		base := netsim.IPv4(10, 10, byte(p), 0)
		tbl.Add(FlowEntry{Priority: 50, Match: MatchDst(netsim.PrefixOf(base, 24))})
	}
	for h := 0; h < 64; h++ {
		tbl.Add(FlowEntry{Priority: 10, Match: MatchDst(netsim.HostPrefix(netsim.IPv4(10, 0, 0, byte(h))))})
	}
	pkt := udp("192.168.0.1", "10.10.40.7")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl.Lookup(pkt, 0) == nil {
			b.Fatal("miss")
		}
	}
}
