package switchcache

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/openflow"
	"repro/internal/sim"
)

// stubParser treats any UDP datagram to port 7000 whose payload is a
// string as a get for that key.
type stubParser struct{}

func (stubParser) ParseGet(pkt *netsim.Packet) (string, bool) {
	if pkt.Proto != netsim.ProtoUDP || pkt.DstPort != 7000 {
		return "", false
	}
	k, ok := pkt.Payload.(string)
	return k, ok
}

func (stubParser) MakeReply(pkt *netsim.Packet, value any, size int, ver uint64) Reply {
	return Reply{Payload: value, Size: size, DstPort: 8000}
}

const testCtrlDelay = 100 * time.Microsecond

// rig is a one-switch, one-client harness for pipeline tests.
type rig struct {
	s      *sim.Simulator
	net    *netsim.Network
	sw     *netsim.Switch
	client *netsim.Host
	cache  *Cache
	got    []*netsim.Packet
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	s := sim.New(1)
	nw := netsim.NewNetwork(s)
	sw := nw.NewSwitch("sw", 2, time.Microsecond)
	client := nw.NewHost("client", netsim.MustParseIP("192.168.0.1"))
	nw.Connect(client.Port(), sw.Port(0), netsim.Gbps(1, time.Microsecond))
	dp := openflow.Attach(sw, testCtrlDelay)
	r := &rig{s: s, net: nw, sw: sw, client: client}
	r.cache = Attach(dp, stubParser{}, cfg)
	client.SetHandler(func(pkt *netsim.Packet) { r.got = append(r.got, pkt) })
	return r
}

// sendGet injects a client get for key into the switch.
func (r *rig) sendGet(key string) {
	pkt := r.net.NewPacket()
	pkt.SrcIP = r.client.IP()
	pkt.SrcMAC = r.client.MAC()
	pkt.DstIP = netsim.MustParseIP("10.10.0.1") // vnode-ish address
	pkt.Proto = netsim.ProtoUDP
	pkt.SrcPort = 5000
	pkt.DstPort = 7000
	pkt.Size = 64
	pkt.Payload = key
	r.client.Send(pkt)
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
}

// install synchronously places an entry (running the control delay out).
func (r *rig) install(t *testing.T, key string, value any, size int, ver uint64) {
	t.Helper()
	r.cache.Install(key, value, size, ver)
	r.run(t)
}

func TestCacheHitSynthesizesReply(t *testing.T) {
	r := newRig(t, DefaultConfig(testCtrlDelay))
	r.install(t, "hot", "cached-value", 200, 1)
	if !r.cache.Contains("hot") {
		t.Fatal("install did not land")
	}

	r.sendGet("hot")
	r.run(t)

	if len(r.got) != 1 {
		t.Fatalf("client received %d packets, want 1", len(r.got))
	}
	rep := r.got[0]
	if rep.Payload != "cached-value" || rep.DstPort != 8000 || rep.Proto != netsim.ProtoUDP {
		t.Fatalf("bad reply: payload=%v dstport=%d proto=%v", rep.Payload, rep.DstPort, rep.Proto)
	}
	if rep.DstIP != r.client.IP() {
		t.Fatalf("reply addressed to %v, want client %v", rep.DstIP, r.client.IP())
	}
	st := r.cache.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 hit", st)
	}
	if r.cache.HitsOf("hot") != 1 {
		t.Fatalf("per-entry hits = %d", r.cache.HitsOf("hot"))
	}
}

func TestCacheMissSamplesKey(t *testing.T) {
	cfg := DefaultConfig(testCtrlDelay)
	cfg.SampleEvery = 2
	r := newRig(t, cfg)
	var sampled []string
	r.cache.SetSampler(func(k string) { sampled = append(sampled, k) })

	for i := 0; i < 4; i++ {
		r.sendGet("cold")
	}
	r.run(t)

	// Every 2nd miss mirrors to the detector.
	if len(sampled) != 2 {
		t.Fatalf("sampled %d keys, want 2", len(sampled))
	}
	st := r.cache.Stats()
	if st.Misses != 4 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 4 misses", st)
	}
	// No reply was synthesized for misses.
	if len(r.got) != 0 {
		t.Fatalf("client received %d packets on misses", len(r.got))
	}
}

func TestCacheInstallDelayedByControlChannel(t *testing.T) {
	r := newRig(t, DefaultConfig(testCtrlDelay))
	r.cache.Install("k", "v", 10, 1)
	if r.cache.Contains("k") {
		t.Fatal("install visible before the control delay")
	}
	r.run(t)
	if !r.cache.Contains("k") {
		t.Fatal("install never landed")
	}
	r.cache.Evict("k")
	if !r.cache.Contains("k") {
		t.Fatal("evict visible before the control delay")
	}
	r.run(t)
	if r.cache.Contains("k") {
		t.Fatal("evict never landed")
	}
	st := r.cache.Stats()
	if st.Installs != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheInvalidateIsSynchronousAndFencesInstalls(t *testing.T) {
	r := newRig(t, DefaultConfig(testCtrlDelay))
	r.install(t, "k", "v1", 10, 5)

	// A put committing version 6 invalidates with no delay.
	r.cache.Invalidate("k", 6)
	if r.cache.Contains("k") {
		t.Fatal("invalidate must apply synchronously")
	}

	// An install of the pre-commit copy (fetched before the put) must
	// lose the race even though it applies later.
	r.cache.Install("k", "v1", 10, 5)
	r.run(t)
	if r.cache.Contains("k") {
		t.Fatal("stale install (ver 5 < invalidated 6) was accepted")
	}
	// The committed version itself is installable.
	r.install(t, "k", "v2", 10, 6)
	if !r.cache.Contains("k") {
		t.Fatal("install at the invalidation version must be accepted")
	}
	st := r.cache.Stats()
	if st.Invalidations != 1 || st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheUpdateRefreshesInPlace(t *testing.T) {
	r := newRig(t, DefaultConfig(testCtrlDelay))
	r.install(t, "k", "v1", 10, 1)

	if !r.cache.Update("k", "v2", 12, 2) {
		t.Fatal("update on a resident entry must report true")
	}
	r.sendGet("k")
	r.run(t)
	if len(r.got) != 1 || r.got[0].Payload != "v2" {
		t.Fatalf("hit after update returned %v, want v2", r.got)
	}

	// Older versions must not roll the entry back.
	r.cache.Update("k", "v0", 10, 1)
	r.sendGet("k")
	r.run(t)
	if r.got[1].Payload != "v2" {
		t.Fatalf("stale update rolled entry back to %v", r.got[1].Payload)
	}

	// Updates on non-resident keys only record the version.
	if r.cache.Update("other", "x", 10, 9) {
		t.Fatal("update on non-resident key must report false")
	}
	r.cache.Install("other", "x", 10, 8)
	r.run(t)
	if r.cache.Contains("other") {
		t.Fatal("install older than an updated version was accepted")
	}
}

func TestCacheCapacityAndOversize(t *testing.T) {
	cfg := DefaultConfig(testCtrlDelay)
	cfg.Capacity = 2
	cfg.MaxValueSize = 100
	r := newRig(t, cfg)

	r.install(t, "a", "v", 10, 1)
	r.install(t, "b", "v", 10, 1)
	r.install(t, "c", "v", 10, 1) // over capacity
	if r.cache.Len() != 2 || r.cache.Contains("c") {
		t.Fatalf("capacity bound violated: len=%d", r.cache.Len())
	}
	r.install(t, "big", "v", 101, 1) // over MaxValueSize
	if r.cache.Contains("big") {
		t.Fatal("oversize object cached")
	}
	if st := r.cache.Stats(); st.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", st.Rejected)
	}
	if st := r.cache.Stats(); st.Occupancy != 2 || st.Capacity != 2 {
		t.Fatalf("occupancy snapshot = %+v", st)
	}

	// Oversize write-update degrades to an invalidation.
	if r.cache.Update("a", "v", 500, 2) {
		t.Fatal("oversize update must not refresh")
	}
	if r.cache.Contains("a") {
		t.Fatal("oversize update left a stale entry resident")
	}
}

func TestCacheNonGetTrafficFallsThrough(t *testing.T) {
	r := newRig(t, DefaultConfig(testCtrlDelay))
	pkt := r.net.NewPacket()
	pkt.SrcIP = r.client.IP()
	pkt.SrcMAC = r.client.MAC()
	pkt.DstIP = netsim.MustParseIP("10.0.0.1")
	pkt.Proto = netsim.ProtoTCP
	pkt.DstPort = 7000
	pkt.Size = 64
	r.client.Send(pkt)
	r.run(t)
	if st := r.cache.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("non-get traffic touched the cache: %+v", st)
	}
}

func TestSketchEstimateAndHalve(t *testing.T) {
	s := NewSketch(4, 64)
	if s.Estimate("x") != 0 {
		t.Fatal("fresh sketch must estimate 0")
	}
	for i := 0; i < 10; i++ {
		s.Add("x")
	}
	s.Add("y")
	if got := s.Estimate("x"); got != 10 {
		t.Fatalf("estimate(x) = %d, want 10", got)
	}
	if got := s.Estimate("y"); got < 1 {
		t.Fatalf("estimate(y) = %d, want >= 1", got)
	}
	s.Halve()
	if got := s.Estimate("x"); got != 5 {
		t.Fatalf("after halve estimate(x) = %d, want 5", got)
	}
	s.Reset()
	if s.Estimate("x") != 0 {
		t.Fatal("reset sketch must estimate 0")
	}
}

func TestSketchConservativeUpdate(t *testing.T) {
	// Conservative update keeps a never-seen key's estimate low even when
	// the sketch is under heavy load from other keys.
	s := NewSketch(4, 32)
	for i := 0; i < 1000; i++ {
		s.Add("hot")
	}
	if got := s.Estimate("hot"); got != 1000 {
		t.Fatalf("estimate(hot) = %d, want 1000", got)
	}
	// The single hot key collides with at most one counter per row; a
	// fresh key cannot inherit the full count in all rows.
	fresh := s.Estimate("never-seen-key-1")
	if fresh != 0 && fresh != 1000 {
		t.Logf("fresh estimate = %d (collision artifact, acceptable)", fresh)
	}
}

func TestSketchDeterminism(t *testing.T) {
	a, b := NewSketch(4, 128), NewSketch(4, 128)
	keys := []string{"k1", "k2", "k3", "k1", "k1", "k9"}
	for _, k := range keys {
		a.Add(k)
		b.Add(k)
	}
	for _, k := range append(keys, "unseen") {
		if a.Estimate(k) != b.Estimate(k) {
			t.Fatalf("sketches diverged on %q", k)
		}
	}
}
