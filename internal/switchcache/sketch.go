package switchcache

// Sketch is a count-min sketch with conservative update: the frequency
// estimator the hot-key detector runs over sampled cache-miss keys
// (NetCache keeps the same structure in switch registers for uncached
// keys). Conservative update only raises the counters that equal the
// current minimum, which tightens the overestimate under skew — exactly
// the regime a hot-key detector lives in.
type Sketch struct {
	rows, cols int
	counts     [][]uint32
}

// sketchSeeds salt the row hash functions; fixed so two simulations with
// equal inputs produce equal sketches (the determinism tests rely on it).
var sketchSeeds = [...]uint64{
	0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb, 0x2545f4914f6cdd1d,
	0xd6e8feb86659fd93, 0xa0761d6478bd642f, 0xe7037ed1a0b428db, 0x8ebc6af09c88c6e3,
}

// NewSketch builds a rows x cols sketch; rows is capped by the number of
// built-in hash seeds.
func NewSketch(rows, cols int) *Sketch {
	if rows < 1 {
		rows = 1
	}
	if rows > len(sketchSeeds) {
		rows = len(sketchSeeds)
	}
	if cols < 1 {
		cols = 1
	}
	s := &Sketch{rows: rows, cols: cols}
	s.counts = make([][]uint32, rows)
	for r := range s.counts {
		s.counts[r] = make([]uint32, cols)
	}
	return s
}

// hash is FNV-1a over the key, salted per row.
func sketchHash(key string, seed uint64) uint64 {
	h := uint64(14695981039346656037) ^ seed
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// Add counts one occurrence (conservative update) and returns the new
// estimate.
func (s *Sketch) Add(key string) uint32 {
	min := s.Estimate(key)
	next := min + 1
	for r := 0; r < s.rows; r++ {
		c := &s.counts[r][sketchHash(key, sketchSeeds[r])%uint64(s.cols)]
		if *c < next {
			*c = next
		}
	}
	return next
}

// Estimate returns the key's frequency upper bound.
func (s *Sketch) Estimate(key string) uint32 {
	min := ^uint32(0)
	for r := 0; r < s.rows; r++ {
		c := s.counts[r][sketchHash(key, sketchSeeds[r])%uint64(s.cols)]
		if c < min {
			min = c
		}
	}
	return min
}

// Halve decays every counter by half: the detector's sliding window, run
// periodically so cold keys age out of the hot set.
func (s *Sketch) Halve() {
	for r := range s.counts {
		row := s.counts[r]
		for i := range row {
			row[i] >>= 1
		}
	}
}

// Reset zeroes the sketch.
func (s *Sketch) Reset() {
	for r := range s.counts {
		row := s.counts[r]
		for i := range row {
			row[i] = 0
		}
	}
}
