// Package switchcache implements a NetCache-style in-switch hot-key
// cache on top of the openflow datapath: a bounded key→value table
// resident in the switch pipeline that answers matching get requests
// directly on the ingress port — zero server hops — while punting a
// sample of missed keys toward a controller-side hot-key detector that
// decides what to install and evict.
//
// The paper's in-network load balancing (§4.5) only spreads a skewed get
// stream across the R replicas of a partition, so a single hot key is
// still bounded by R servers; caching the item in the fabric decouples
// hot-key throughput from storage-node count (NetCache, TurboKV). The
// division of labour mirrors those systems: the data plane does lookup,
// hit counting and write-through invalidation at line rate, the
// controller owns the insertion/eviction policy.
//
// The package is protocol-agnostic: a Parser supplied by the storage
// layer recognizes get requests inside packets and synthesizes replies,
// so switchcache depends only on netsim/openflow and can front any
// key-value wire format.
package switchcache

import (
	"sort"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/openflow"
	"repro/internal/sim"
)

// Reply is the Parser's recipe for answering a get from the cache: the
// payload object, its wire size in bytes (excluding the UDP header), and
// the requester's reply port.
type Reply struct {
	Payload any
	Size    int
	DstPort uint16
}

// Parser adapts the storage system's wire format to the cache. Both
// methods run on the switch's forwarding path.
type Parser interface {
	// ParseGet reports whether pkt is a cacheable read request and for
	// which key.
	ParseGet(pkt *netsim.Packet) (key string, ok bool)
	// MakeReply builds the reply answering pkt (a packet ParseGet
	// accepted) with the cached value and its committed version.
	MakeReply(pkt *netsim.Packet, value any, size int, ver uint64) Reply
}

// Config parameterizes one switch cache.
type Config struct {
	// Capacity bounds the table; switch memory is the scarce resource
	// (NetCache budgets tens of thousands of entries; we default far
	// smaller so eviction pressure is visible at simulation scale).
	Capacity int
	// MaxValueSize rejects objects too large for a single synthesized
	// reply frame; bigger objects bypass the cache entirely.
	MaxValueSize int
	// SampleEvery mirrors every Nth missed get key to the detector
	// (1 = every miss). 0 disables sampling.
	SampleEvery int
	// CtrlDelay is the switch→controller latency charged on sampled
	// keys, matching the datapath's control-channel latency.
	CtrlDelay sim.Time
}

// DefaultConfig sizes the cache for the simulated deployments.
func DefaultConfig(ctrlDelay sim.Time) Config {
	return Config{
		Capacity:     64,
		MaxValueSize: 1200,
		SampleEvery:  1,
		CtrlDelay:    ctrlDelay,
	}
}

// entry is one cached object.
type entry struct {
	value any
	size  int
	ver   uint64 // version of the committed put that produced the value
	hits  int64
}

// invalCap bounds the invalidation-version memory: versions are only
// needed to defeat the install/invalidate race (a fetch in flight while a
// put commits), whose window is one control RTT, so arbitrary eviction
// beyond the cap is safe in practice.
const invalCap = 16384

// Cache is the switch-resident table. It wraps the datapath's pipeline:
// cacheable gets that hit are answered on the ingress port, everything
// else falls through to the OpenFlow flow tables untouched.
//
// Mutating operations come in two flavours mirroring who performs them in
// hardware: Install/Evict are controller→switch messages and take effect
// after the control-channel delay; Invalidate/Update are data-plane
// write-through effects of put traffic and apply immediately.
type Cache struct {
	dp      *openflow.Datapath
	next    netsim.Pipeline
	parser  Parser
	cfg     Config
	entries map[string]*entry
	inval   map[string]uint64 // key -> newest invalidated/committed version
	sampler func(key string)
	stats   metrics.CacheCounters
	misses  int64 // sampling phase counter

	// extraCtrl is injected control-path latency (gray management network);
	// it stretches installs, evictions and miss sampling but never the
	// data-plane write-through, which rides the put traffic itself.
	extraCtrl sim.Time
}

// Attach interposes a cache in front of dp's forwarding pipeline and
// returns it. Call before traffic starts.
func Attach(dp *openflow.Datapath, parser Parser, cfg Config) *Cache {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	c := &Cache{
		dp:      dp,
		next:    dp,
		parser:  parser,
		cfg:     cfg,
		entries: make(map[string]*entry),
		inval:   make(map[string]uint64),
	}
	dp.Switch().SetPipeline(c)
	return c
}

// SetSampler registers the detector callback receiving sampled miss keys
// (already delayed by the control latency).
func (c *Cache) SetSampler(fn func(key string)) { c.sampler = fn }

// SetNext rechains the cache's fall-through target, letting further
// pipeline stages (e.g. the harmonia dirty-set) interpose between the
// cache and the flow tables: switch → cache → stage → datapath.
func (c *Cache) SetNext(next netsim.Pipeline) { c.next = next }

// Datapath returns the wrapped datapath.
func (c *Cache) Datapath() *openflow.Datapath { return c.dp }

// Config returns the cache's effective configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats snapshots the counters.
func (c *Cache) Stats() metrics.CacheCounters {
	st := c.stats
	st.Occupancy = len(c.entries)
	st.Capacity = c.cfg.Capacity
	return st
}

// Len returns the resident entry count.
func (c *Cache) Len() int { return len(c.entries) }

// Contains reports whether key is resident.
func (c *Cache) Contains(key string) bool {
	_, ok := c.entries[key]
	return ok
}

// Keys lists the resident keys in sorted order. Callers feed this into
// eviction policy and the ctrlchain takeover reconcile, both of which
// must behave identically across replayed runs, so the map's iteration
// order must never leak out.
func (c *Cache) Keys() []string {
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// HitsOf returns the per-entry hit counter (0 when not resident).
func (c *Cache) HitsOf(key string) int64 {
	if e, ok := c.entries[key]; ok {
		return e.hits
	}
	return 0
}

// Process implements netsim.Pipeline: answer cache hits at the switch,
// sample misses toward the detector, delegate everything else.
func (c *Cache) Process(sw *netsim.Switch, pkt *netsim.Packet, inPort int) {
	key, ok := c.parser.ParseGet(pkt)
	if !ok {
		c.next.Process(sw, pkt, inPort)
		return
	}
	e, hit := c.entries[key]
	if !hit {
		c.stats.Misses++
		c.misses++
		if c.sampler != nil && c.cfg.SampleEvery > 0 && c.misses%int64(c.cfg.SampleEvery) == 0 {
			k := key
			sw.Sim().After(c.ctrlDelay(), func() { c.sampler(k) })
		}
		c.next.Process(sw, pkt, inPort)
		return
	}
	c.stats.Hits++
	e.hits++
	rep := c.parser.MakeReply(pkt, e.value, e.size, e.ver)
	net := sw.Network()
	out := net.NewPacket()
	out.SrcIP = pkt.DstIP // the vnode address the client asked
	out.SrcMAC = pkt.DstMAC
	out.DstIP = pkt.SrcIP
	out.DstMAC = pkt.SrcMAC
	out.Proto = netsim.ProtoUDP
	out.SrcPort = pkt.DstPort
	out.DstPort = rep.DstPort
	out.Size = rep.Size + netsim.UDPHeaderSize
	out.Payload = rep.Payload
	out.TTL = netsim.DefaultTTL
	net.RecyclePacket(pkt) // request consumed at the switch
	sw.Output(inPort, out)
}

// Install is the controller's entry insertion: applied after the control
// delay, rejected there if the table is full, the object oversize, or the
// fetched version already superseded by a write-through (the fetch raced
// a commit).
func (c *Cache) Install(key string, value any, size int, ver uint64) {
	c.InstallAs(0, key, value, size, ver)
}

// InstallAs is Install carrying the issuing controller's writer
// generation: the fence is checked when the command *applies* (after
// the control delay), so an install that was already in flight when a
// standby took over and raised the switch writer fence is rejected at
// the datapath — the "controller killed mid-cache-install" case.
// Generation 0 is the legacy unfenced writer.
func (c *Cache) InstallAs(gen uint64, key string, value any, size int, ver uint64) {
	c.dp.Switch().Sim().After(c.ctrlDelay(), func() {
		if !c.dp.WriterAllowed(gen) {
			c.stats.Rejected++
			return
		}
		if size > c.cfg.MaxValueSize && c.cfg.MaxValueSize > 0 {
			c.stats.Rejected++
			return
		}
		if ver < c.inval[key] {
			c.stats.Rejected++ // stale: a put committed past this value
			return
		}
		if e, ok := c.entries[key]; ok {
			if ver >= e.ver {
				e.value, e.size, e.ver = value, size, ver
			}
			return
		}
		if len(c.entries) >= c.cfg.Capacity {
			c.stats.Rejected++
			return
		}
		c.entries[key] = &entry{value: value, size: size, ver: ver}
		c.stats.Installs++
	})
}

// SetExtraCtrlDelay injects (or, with 0, clears) additional control-path
// latency for fault experiments.
func (c *Cache) SetExtraCtrlDelay(d sim.Time) { c.extraCtrl = d }

// ctrlDelay is the effective control-channel latency.
func (c *Cache) ctrlDelay() sim.Time { return c.cfg.CtrlDelay + c.extraCtrl }

// Evict is the controller's entry removal, applied after the control
// delay.
func (c *Cache) Evict(key string) {
	c.EvictAs(0, key)
}

// EvictAs is Evict with the writer-generation fence of InstallAs.
func (c *Cache) EvictAs(gen uint64, key string) {
	c.dp.Switch().Sim().After(c.ctrlDelay(), func() {
		if !c.dp.WriterAllowed(gen) {
			return
		}
		if _, ok := c.entries[key]; ok {
			delete(c.entries, key)
			c.stats.Evictions++
		}
	})
}

// Invalidate is the put path's write-through: the committing put's
// traffic traverses this switch, so the entry is dropped synchronously —
// strictly before the commit acknowledgment can reach the client. ver is
// the committed version; it also fences any in-flight install of an
// older value.
func (c *Cache) Invalidate(key string, ver uint64) {
	c.recordVer(key, ver)
	if _, ok := c.entries[key]; ok {
		delete(c.entries, key)
		c.stats.Invalidations++
	}
}

// Update is the write-update variant of the write-through: a resident
// entry is refreshed in place with the committed value instead of being
// dropped, keeping the key servable at the switch across writes. Returns
// whether an entry was refreshed.
func (c *Cache) Update(key string, value any, size int, ver uint64) bool {
	if size > c.cfg.MaxValueSize && c.cfg.MaxValueSize > 0 {
		c.Invalidate(key, ver) // no longer cacheable at this size
		return false
	}
	c.recordVer(key, ver)
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	if ver >= e.ver {
		e.value, e.size, e.ver = value, size, ver
		c.stats.Updates++
	}
	return true
}

// recordVer remembers the newest committed version per key so stale
// installs lose the race; the map is bounded like the node's orphan
// buffer.
func (c *Cache) recordVer(key string, ver uint64) {
	if ver > c.inval[key] {
		if len(c.inval) >= invalCap {
			for k := range c.inval {
				if _, resident := c.entries[k]; !resident {
					delete(c.inval, k)
					break
				}
			}
		}
		c.inval[key] = ver
	}
}
