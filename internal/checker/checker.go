// Package checker records per-client operation histories from a chaos
// run and checks them against the store's consistency contract. Clients
// log one Event per completed operation (invoke time, return time,
// outcome, returned version); Check replays the history and reports
// every invariant violation it can prove from the client-observable
// record alone.
//
// Invariants (DESIGN.md §9):
//
//	lost-update       a get that began after a put was acked must find
//	                  the key
//	stale-read        a get must return a version at least as new as any
//	                  put acked before the get began (switch-cache hits
//	                  included — a cache must never serve a
//	                  pre-invalidation value)
//	version-rollback  an acked put must be versioned strictly newer than
//	                  every put acked before it began
//	version-collision a version number is assigned to at most one acked
//	                  put per key
//	durability        every acked put survives to the end of the run:
//	                  the cluster's final committed version of the key is
//	                  at least the newest acked version (CheckDurability,
//	                  fed the post-run store contents — the invariant
//	                  crash recovery must uphold)
//
// The floor for an operation deliberately counts only puts whose ack
// returned before the operation was invoked: overlapping operations are
// concurrent and either order is legal, so the checker never
// false-positives on races it cannot order. Failed operations
// constrain nothing.
package checker

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/sim"
)

// OpKind is the operation type of a history event.
type OpKind int

const (
	OpPut OpKind = iota
	OpGet
)

// String names the op for violation details.
func (k OpKind) String() string {
	if k == OpPut {
		return "put"
	}
	return "get"
}

// Event is one completed client operation.
type Event struct {
	Client int
	Kind   OpKind
	Key    string
	// Invoke and Return bracket the operation in simulated time.
	Invoke, Return sim.Time
	// OK is true if the operation succeeded (put acked / get answered).
	OK bool
	// Found is true if a get returned a value.
	Found bool
	// Ver is the returned version (put: committed version; get: version
	// of the value read, 0 if not found).
	Ver uint64
}

// Violation is one proven invariant breach.
type Violation struct {
	Invariant string
	Key       string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s key=%q: %s", v.Invariant, v.Key, v.Detail)
}

// History accumulates events from one run. It is not synchronized: the
// simulator is single-threaded, so Record is only ever called from sim
// processes of one cell.
type History struct {
	Events []Event
}

// Record appends one completed operation.
func (h *History) Record(e Event) { h.Events = append(h.Events, e) }

// Len is the number of recorded events.
func (h *History) Len() int { return len(h.Events) }

// Hash digests the history (FNV-1a, field and record order preserved).
// Two runs of the same seed must produce equal hashes; that is the
// determinism check for the whole stack under fault injection.
func (h *History) Hash() uint64 {
	d := fnv.New64a()
	var buf [8]byte
	wi := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		d.Write(buf[:])
	}
	for i := range h.Events {
		e := &h.Events[i]
		wi(uint64(e.Client))
		wi(uint64(e.Kind))
		d.Write([]byte(e.Key))
		wi(uint64(e.Invoke))
		wi(uint64(e.Return))
		flags := uint64(0)
		if e.OK {
			flags |= 1
		}
		if e.Found {
			flags |= 2
		}
		wi(flags)
		wi(e.Ver)
	}
	return d.Sum64()
}

// Check verifies the invariants and returns every violation found.
func (h *History) Check() []Violation {
	var out []Violation

	// Group events by key; order within a key by invoke time so the
	// floor scan is a single pass per event.
	byKey := map[string][]*Event{}
	for i := range h.Events {
		e := &h.Events[i]
		byKey[e.Key] = append(byKey[e.Key], e)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic violation order

	for _, key := range keys {
		evs := byKey[key]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Invoke < evs[j].Invoke })

		seenVer := map[uint64]*Event{}
		for _, e := range evs {
			// floor: newest version acked before e was invoked.
			var floor uint64
			for _, p := range evs {
				if p.Kind == OpPut && p.OK && p.Return <= e.Invoke && p.Ver > floor {
					floor = p.Ver
				}
			}
			switch e.Kind {
			case OpGet:
				if !e.OK {
					continue
				}
				if floor > 0 && !e.Found {
					out = append(out, Violation{
						Invariant: "lost-update",
						Key:       key,
						Detail: fmt.Sprintf("client %d get at %v found nothing; version %d was acked before it began",
							e.Client, e.Invoke, floor),
					})
					continue
				}
				if e.Found && e.Ver < floor {
					out = append(out, Violation{
						Invariant: "stale-read",
						Key:       key,
						Detail: fmt.Sprintf("client %d get at %v returned version %d; version %d was acked before it began",
							e.Client, e.Invoke, e.Ver, floor),
					})
				}
			case OpPut:
				if !e.OK {
					continue
				}
				if e.Ver <= floor {
					out = append(out, Violation{
						Invariant: "version-rollback",
						Key:       key,
						Detail: fmt.Sprintf("client %d put at %v acked version %d, not newer than previously acked %d",
							e.Client, e.Invoke, e.Ver, floor),
					})
				}
				if prev, dup := seenVer[e.Ver]; dup {
					out = append(out, Violation{
						Invariant: "version-collision",
						Key:       key,
						Detail: fmt.Sprintf("clients %d and %d both acked version %d",
							prev.Client, e.Client, e.Ver),
					})
				} else {
					seenVer[e.Ver] = e
				}
			}
		}
	}
	return out
}

// CheckDurability verifies the durability invariant against the
// cluster's post-run state: final maps each key to the newest committed
// version found anywhere in the cluster (main namespaces and handoff
// directories) after the run drained. Every put whose ack the history
// recorded must be covered — final[key] at or above the acked version —
// or a crash recovery lost an acknowledged write. Keys are checked in
// sorted order so violations list deterministically.
func (h *History) CheckDurability(final map[string]uint64) []Violation {
	maxAcked := map[string]uint64{}
	for i := range h.Events {
		e := &h.Events[i]
		if e.Kind == OpPut && e.OK && e.Ver > maxAcked[e.Key] {
			maxAcked[e.Key] = e.Ver
		}
	}
	keys := make([]string, 0, len(maxAcked))
	for k := range maxAcked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Violation
	for _, key := range keys {
		if got := final[key]; got < maxAcked[key] {
			out = append(out, Violation{
				Invariant: "durability",
				Key:       key,
				Detail: fmt.Sprintf("version %d was acked but the cluster's final version is %d",
					maxAcked[key], got),
			})
		}
	}
	return out
}
