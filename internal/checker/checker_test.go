package checker

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func ms(n int) sim.Time { return sim.Time(n) * sim.Time(time.Millisecond) }

func put(client int, key string, invoke, ret, ver int, ok bool) Event {
	return Event{Client: client, Kind: OpPut, Key: key, Invoke: ms(invoke), Return: ms(ret), OK: ok, Ver: uint64(ver)}
}

func get(client int, key string, invoke, ret, ver int, found bool) Event {
	return Event{Client: client, Kind: OpGet, Key: key, Invoke: ms(invoke), Return: ms(ret), OK: true, Found: found, Ver: uint64(ver)}
}

func check(evs ...Event) []Violation {
	h := &History{}
	for _, e := range evs {
		h.Record(e)
	}
	return h.Check()
}

func wantViolation(t *testing.T, vs []Violation, invariant string) {
	t.Helper()
	if len(vs) != 1 {
		t.Fatalf("got %d violations %v, want 1 %s", len(vs), vs, invariant)
	}
	if vs[0].Invariant != invariant {
		t.Fatalf("got %q, want %q (%s)", vs[0].Invariant, invariant, vs[0])
	}
}

func TestCleanHistoryPasses(t *testing.T) {
	vs := check(
		put(0, "a", 0, 10, 1, true),
		get(1, "a", 20, 25, 1, true),
		put(1, "a", 30, 40, 2, true),
		get(0, "a", 50, 55, 2, true),
		get(0, "b", 50, 55, 0, false), // never written: empty get is fine
		put(2, "a", 60, 70, 3, false), // failed put constrains nothing
		get(2, "a", 80, 85, 2, true),
	)
	if len(vs) != 0 {
		t.Fatalf("clean history flagged: %v", vs)
	}
}

func TestConcurrentOpsAreNotOrdered(t *testing.T) {
	// The get overlaps the put (invoked before the put's ack returned),
	// so reading the old version is legal.
	vs := check(
		put(0, "a", 0, 10, 1, true),
		put(1, "a", 20, 40, 2, true),
		get(2, "a", 30, 35, 1, true),
	)
	if len(vs) != 0 {
		t.Fatalf("concurrent read flagged: %v", vs)
	}
}

func TestLostUpdate(t *testing.T) {
	vs := check(
		put(0, "a", 0, 10, 1, true),
		get(1, "a", 20, 25, 0, false),
	)
	wantViolation(t, vs, "lost-update")
}

func TestStaleRead(t *testing.T) {
	vs := check(
		put(0, "a", 0, 10, 1, true),
		put(0, "a", 20, 30, 2, true),
		get(1, "a", 40, 45, 1, true),
	)
	wantViolation(t, vs, "stale-read")
}

func TestVersionRollback(t *testing.T) {
	vs := check(
		put(0, "a", 0, 10, 5, true),
		put(1, "a", 20, 30, 5, false), // failed: ignored
		put(1, "a", 40, 50, 3, true),
	)
	wantViolation(t, vs, "version-rollback")
}

func TestVersionCollision(t *testing.T) {
	// Concurrent puts acking the same version: collision (and neither is
	// a rollback, since they overlap).
	vs := check(
		put(0, "a", 0, 20, 1, true),
		put(1, "a", 5, 25, 1, true),
	)
	wantViolation(t, vs, "version-collision")
}

func TestViolationsScopedPerKey(t *testing.T) {
	vs := check(
		put(0, "a", 0, 10, 1, true),
		get(1, "b", 20, 25, 0, false), // different key: no floor
	)
	if len(vs) != 0 {
		t.Fatalf("cross-key floor leaked: %v", vs)
	}
}

func TestHashDeterministicAndOrderSensitive(t *testing.T) {
	a := &History{}
	b := &History{}
	evs := []Event{
		put(0, "a", 0, 10, 1, true),
		get(1, "a", 20, 25, 1, true),
	}
	for _, e := range evs {
		a.Record(e)
		b.Record(e)
	}
	if a.Hash() != b.Hash() {
		t.Fatal("equal histories hash differently")
	}
	c := &History{}
	c.Record(evs[1])
	c.Record(evs[0])
	if c.Hash() == a.Hash() {
		t.Fatal("reordered history hashes equal")
	}
	d := &History{Events: []Event{evs[0]}}
	if d.Hash() == a.Hash() {
		t.Fatal("prefix history hashes equal")
	}
}
