package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// The schedule text format is the repro line the chaos checker prints on
// a violation: one "seed=N" header and one clause per event, separated by
// " | ". Example:
//
//	seed=42 | crash n2 @120ms +80ms | loss n0 r=0.25 @300ms +50ms
//
// String and ParseSchedule round-trip exactly (floats use shortest
// representation, durations use time.Duration syntax), so a printed line
// replays the precise execution that produced the violation.

// String serializes the schedule in the repro format.
func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", s.Seed)
	for _, e := range s.Events {
		b.WriteString(" | ")
		b.WriteString(e.String())
	}
	return b.String()
}

// String serializes one event clause.
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	switch e.Kind {
	case Partition:
		parts := make([]string, len(e.Nodes))
		for i, n := range e.Nodes {
			parts[i] = strconv.Itoa(n)
		}
		fmt.Fprintf(&b, " n%s", strings.Join(parts, ","))
	case CtrlFault:
		fmt.Fprintf(&b, " d=%s r=%s", time.Duration(e.Delay), fmtFloat(e.Rate))
	case CtrlCrash:
		// No operand: there is exactly one active controller to kill.
	default:
		fmt.Fprintf(&b, " n%d", e.Node)
	}
	switch e.Kind {
	case LinkLoss:
		fmt.Fprintf(&b, " r=%s", fmtFloat(e.Rate))
	case DelaySpike, SlowNIC, SlowDisk:
		fmt.Fprintf(&b, " x=%s", fmtFloat(e.Factor))
	}
	fmt.Fprintf(&b, " @%s +%s", time.Duration(e.At), time.Duration(e.For))
	return b.String()
}

func fmtFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// ParseSchedule parses the String format back into a schedule.
func ParseSchedule(text string) (Schedule, error) {
	var s Schedule
	clauses := strings.Split(text, "|")
	for i, c := range clauses {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		if i == 0 {
			if !strings.HasPrefix(c, "seed=") {
				return s, fmt.Errorf("faultinject: schedule must start with seed=, got %q", c)
			}
			seed, err := strconv.ParseInt(c[len("seed="):], 10, 64)
			if err != nil {
				return s, fmt.Errorf("faultinject: bad seed in %q: %v", c, err)
			}
			s.Seed = seed
			continue
		}
		e, err := parseEvent(c)
		if err != nil {
			return s, err
		}
		s.Events = append(s.Events, e)
	}
	return s, nil
}

func parseEvent(clause string) (Event, error) {
	var e Event
	fields := strings.Fields(clause)
	if len(fields) == 0 {
		return e, fmt.Errorf("faultinject: empty event clause")
	}
	kind := Kind(-1)
	for k := Kind(0); k < numKinds; k++ {
		if kindNames[k] == fields[0] {
			kind = k
			break
		}
	}
	if kind < 0 {
		return e, fmt.Errorf("faultinject: unknown fault kind %q", fields[0])
	}
	e.Kind = kind
	for _, f := range fields[1:] {
		var err error
		switch {
		case strings.HasPrefix(f, "n"):
			for _, part := range strings.Split(f[1:], ",") {
				n, perr := strconv.Atoi(part)
				if perr != nil {
					return e, fmt.Errorf("faultinject: bad node list %q: %v", f, perr)
				}
				e.Nodes = append(e.Nodes, n)
			}
			if kind != Partition {
				if len(e.Nodes) != 1 {
					return e, fmt.Errorf("faultinject: %s takes one node, got %q", kind, f)
				}
				e.Node, e.Nodes = e.Nodes[0], nil
			}
		case strings.HasPrefix(f, "r="):
			e.Rate, err = strconv.ParseFloat(f[2:], 64)
		case strings.HasPrefix(f, "x="):
			e.Factor, err = strconv.ParseFloat(f[2:], 64)
		case strings.HasPrefix(f, "d="):
			var d time.Duration
			d, err = time.ParseDuration(f[2:])
			e.Delay = sim.Time(d)
		case strings.HasPrefix(f, "@"):
			var d time.Duration
			d, err = time.ParseDuration(f[1:])
			e.At = sim.Time(d)
		case strings.HasPrefix(f, "+"):
			var d time.Duration
			d, err = time.ParseDuration(f[1:])
			e.For = sim.Time(d)
		default:
			return e, fmt.Errorf("faultinject: unknown field %q in %q", f, clause)
		}
		if err != nil {
			return e, fmt.Errorf("faultinject: bad field %q in %q: %v", f, clause, err)
		}
	}
	return e, nil
}
