// Package faultinject is a deterministic fault-schedule engine for the
// simulated cluster: it generates, serializes and replays schedules of
// network, node, disk and control-plane faults against any deployment
// exposing the Fabric surface. Everything is a pure function of the
// schedule seed — the same seed produces the same schedule, and because
// the simulator itself is deterministic, the same (seed, schedule) pair
// produces the same execution, which is what makes a one-line repro
// string possible when the consistency checker flags a violation.
//
// Fault taxonomy (DESIGN.md §9):
//
//   - crash      node fail-stop + restart through the §4.4 rejoin
//   - linkdown   access link severed and later restored
//   - partition  several access links severed together
//   - loss       packet-loss burst on an access link
//   - delayspike propagation-latency multiplier on an access link
//   - slownic    gray NIC: bandwidth divided by a factor
//   - slowdisk   gray disk: latency multiplied / throughput divided
//   - ctrl       control-channel fault: extra delay on every exchange
//     plus a drop rate on packet-carrying messages
//   - ctrlcrash  active metadata controller fail-stop; the revert
//     brings the host back as a zombie if a standby promoted meanwhile
//   - chainkill  one replica of the control-plane state chain
//     (internal/ctrlchain) fail-stops; the revert revives it and the
//     chain re-splices it in at the tail
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// Kind enumerates the fault classes.
type Kind int

const (
	NodeCrash Kind = iota
	LinkDown
	Partition
	LinkLoss
	DelaySpike
	SlowNIC
	SlowDisk
	CtrlFault
	CtrlCrash
	ChainKill
	numKinds
)

var kindNames = [numKinds]string{
	NodeCrash:  "crash",
	LinkDown:   "linkdown",
	Partition:  "partition",
	LinkLoss:   "loss",
	DelaySpike: "delayspike",
	SlowNIC:    "slownic",
	SlowDisk:   "slowdisk",
	CtrlFault:  "ctrl",
	CtrlCrash:  "ctrlcrash",
	ChainKill:  "chainkill",
}

// String returns the kind's schedule-format name.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Event is one scheduled fault: it starts At (relative to installation),
// holds for For, then reverts.
type Event struct {
	Kind Kind
	At   sim.Time
	For  sim.Time
	// Node is the target: a storage node for most kinds, a chain
	// replica index for ChainKill, unused for Partition, CtrlFault and
	// CtrlCrash.
	Node int
	// Nodes are the Partition targets.
	Nodes []int
	// Rate is the LinkLoss probability, or the CtrlFault drop rate.
	Rate float64
	// Factor is the DelaySpike / SlowNIC / SlowDisk degradation multiple.
	Factor float64
	// Delay is the CtrlFault extra latency.
	Delay sim.Time
}

// Schedule is a seed plus its fault events, ordered by start time.
type Schedule struct {
	Seed   int64
	Events []Event
}

// Fabric is the deployment surface the engine drives. Implementations
// (cluster.NICE's adapter, test fakes) apply each mutation immediately;
// the engine owns all timing. Factor/rate arguments of 1 and 0 restore
// health.
type Fabric interface {
	// Crash fail-stops a node; Restart brings it back through recovery.
	Crash(node int)
	Restart(node int)
	// SetLinkDown severs or restores the node's access link.
	SetLinkDown(node int, down bool)
	// SetLinkLoss sets the access link's drop probability (0 = healthy).
	SetLinkLoss(node int, rate float64)
	// SetLinkDelayFactor multiplies the access link's propagation delay
	// (1 = healthy).
	SetLinkDelayFactor(node int, factor float64)
	// SetNICFactor divides the access link's bandwidth (1 = healthy).
	SetNICFactor(node int, factor float64)
	// SetDiskFactor degrades the node's disk by a factor (1 = healthy).
	SetDiskFactor(node int, factor float64)
	// SetCtrlFault injects control-channel trouble fabric-wide; zero both
	// to restore health.
	SetCtrlFault(extra sim.Time, drop float64)
	// CrashCtrl fail-stops the active metadata controller; RestartCtrl
	// brings the host back — a fenced zombie if a standby promoted in
	// the meantime.
	CrashCtrl()
	RestartCtrl()
	// SetChainDown fail-stops (or revives) one replica of the
	// control-plane state chain; a no-op on deployments without one.
	SetChainDown(idx int, down bool)
}

// Install schedules every event of sched on s, relative to s.Now().
// Faults apply at At and revert at At+For; NodeCrash's revert is the
// restart that triggers §4.4 recovery.
func Install(s *sim.Simulator, f Fabric, sched Schedule) {
	base := s.Now()
	for i := range sched.Events {
		e := sched.Events[i]
		s.At(base+e.At, func() { apply(f, e, true) })
		s.At(base+e.At+e.For, func() { apply(f, e, false) })
	}
}

func apply(f Fabric, e Event, start bool) {
	switch e.Kind {
	case NodeCrash:
		if start {
			f.Crash(e.Node)
		} else {
			f.Restart(e.Node)
		}
	case LinkDown:
		f.SetLinkDown(e.Node, start)
	case Partition:
		for _, n := range e.Nodes {
			f.SetLinkDown(n, start)
		}
	case LinkLoss:
		if start {
			f.SetLinkLoss(e.Node, e.Rate)
		} else {
			f.SetLinkLoss(e.Node, 0)
		}
	case DelaySpike:
		if start {
			f.SetLinkDelayFactor(e.Node, e.Factor)
		} else {
			f.SetLinkDelayFactor(e.Node, 1)
		}
	case SlowNIC:
		if start {
			f.SetNICFactor(e.Node, e.Factor)
		} else {
			f.SetNICFactor(e.Node, 1)
		}
	case SlowDisk:
		if start {
			f.SetDiskFactor(e.Node, e.Factor)
		} else {
			f.SetDiskFactor(e.Node, 1)
		}
	case CtrlFault:
		if start {
			f.SetCtrlFault(e.Delay, e.Rate)
		} else {
			f.SetCtrlFault(0, 0)
		}
	case CtrlCrash:
		if start {
			f.CrashCtrl()
		} else {
			f.RestartCtrl()
		}
	case ChainKill:
		f.SetChainDown(e.Node, start)
	}
}

// GenConfig bounds the random-schedule generator.
type GenConfig struct {
	// Nodes is the cluster size (targets are drawn from [0, Nodes)).
	Nodes int
	// Horizon is the workload duration; faults start within
	// [Horizon/10, Horizon*7/10] so the tail of the run always observes a
	// healed cluster.
	Horizon sim.Time
	// Events is how many faults to attempt; constraint rejections may
	// yield fewer.
	Events int
	// MaxOutages bounds concurrently unreachable nodes (crash, linkdown,
	// partition members) so a replica set never loses a quorum by
	// scheduling alone.
	MaxOutages int
	// MinOutage / MaxOutage bound an unreachability window. MinOutage
	// must exceed the failure detector's declaration time, or the cluster
	// heals the fault before ever noticing it.
	MinOutage, MaxOutage sim.Time
	// ChainNodes is the control-chain replica count; ChainKill events
	// draw their target from [0, ChainNodes) and are never generated
	// when it is zero.
	ChainNodes int
	// Weights overrides the per-kind generation bias (index by Kind; must
	// cover every kind). Nil keeps the default bias. A zero weight
	// disables a kind; sweeps that stress one subsystem (e.g. crash
	// recovery on a durable store) reshape the mix this way while the
	// schedule's serialization and outage constraints stay identical.
	Weights []int
}

// DefaultGenConfig sizes a schedule for a small chaos cell.
func DefaultGenConfig(nodes int, horizon sim.Time) GenConfig {
	return GenConfig{
		Nodes:      nodes,
		Horizon:    horizon,
		Events:     8,
		MaxOutages: 2,
		MinOutage:  horizon / 10,
		MaxOutage:  horizon / 5,
	}
}

// kindWeights biases generation toward the protocol-sensitive faults.
var kindWeights = [numKinds]int{
	NodeCrash:  20,
	LinkDown:   10,
	Partition:  5,
	LinkLoss:   20,
	DelaySpike: 15,
	SlowNIC:    10,
	SlowDisk:   10,
	CtrlFault:  10,
	// The controller-fault kinds default to zero so every schedule
	// generated before they existed stays byte-identical (a weight-0
	// kind is never selected and consumes no randomness); the ctrlchain
	// chaos cell and the -chaos-ctrl knob opt in explicitly.
	CtrlCrash: 0,
	ChainKill: 0,
}

// DefaultWeights returns a copy of the default generation bias, indexed
// by Kind — the starting point for a GenConfig.Weights override.
func DefaultWeights() []int {
	out := make([]int, numKinds)
	copy(out, kindWeights[:])
	return out
}

// Generate builds a randomized schedule from seed under cfg's
// constraints. It is deterministic: equal (seed, cfg) yields equal
// schedules. Per-node faults are serialized (one fault at a time per
// node) so every revert restores the node's healthy baseline, and
// control-channel fault windows never overlap each other.
func Generate(seed int64, cfg GenConfig) Schedule {
	rng := rand.New(rand.NewSource(seed))
	sched := Schedule{Seed: seed}
	if cfg.Nodes <= 0 || cfg.Events <= 0 || cfg.Horizon <= 0 {
		return sched
	}
	if cfg.MaxOutages <= 0 {
		cfg.MaxOutages = 1
	}
	if cfg.MinOutage <= 0 {
		cfg.MinOutage = cfg.Horizon / 10
	}
	if cfg.MaxOutage < cfg.MinOutage {
		cfg.MaxOutage = cfg.MinOutage
	}

	lo := cfg.Horizon / 10
	hi := cfg.Horizon * 7 / 10
	busy := make([]sim.Time, cfg.Nodes) // per-node fault serialization
	var ctrlBusy sim.Time
	var ctrlCrashBusy sim.Time
	var chainBusy sim.Time
	type span struct{ from, to sim.Time }
	var outages []span

	randTime := func(a, b sim.Time) sim.Time {
		if b <= a {
			return a
		}
		return a + sim.Time(rng.Int63n(int64(b-a)))
	}
	outagesAt := func(from, to sim.Time) int {
		n := 0
		for _, o := range outages {
			if o.from < to && from < o.to {
				n++
			}
		}
		return n
	}
	pickNode := func(at, until sim.Time) int {
		free := make([]int, 0, cfg.Nodes)
		for n := 0; n < cfg.Nodes; n++ {
			if busy[n] <= at {
				free = append(free, n)
			}
		}
		if len(free) == 0 {
			return -1
		}
		n := free[rng.Intn(len(free))]
		busy[n] = until + cfg.Horizon/20 // gap before the node's next fault
		return n
	}

	weights := kindWeights[:]
	if len(cfg.Weights) >= int(numKinds) {
		weights = cfg.Weights[:numKinds]
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return sched
	}
	for i := 0; i < cfg.Events; i++ {
		r := rng.Intn(total)
		var kind Kind
		for k, w := range weights {
			if r < w {
				kind = Kind(k)
				break
			}
			r -= w
		}
		at := randTime(lo, hi)
		var dur sim.Time
		// Controller and chain kills use outage-length windows too: the
		// window must outlast the standby watchdog (or the chain's probe
		// detector) or the fault heals before anyone notices.
		isOutage := kind == NodeCrash || kind == LinkDown || kind == Partition ||
			kind == CtrlCrash || kind == ChainKill
		if isOutage {
			dur = randTime(cfg.MinOutage, cfg.MaxOutage)
		} else {
			dur = randTime(cfg.Horizon/20, cfg.Horizon/4)
		}
		end := at + dur

		e := Event{Kind: kind, At: at, For: dur}
		switch kind {
		case CtrlCrash:
			// Serialized with itself; does not count toward data-node
			// outage budgets (the data plane keeps serving without a
			// controller).
			if ctrlCrashBusy > at {
				continue
			}
			ctrlCrashBusy = end + cfg.Horizon/20
		case ChainKill:
			if cfg.ChainNodes <= 0 || chainBusy > at {
				continue
			}
			e.Node = rng.Intn(cfg.ChainNodes)
			chainBusy = end + cfg.Horizon/20
		case CtrlFault:
			if ctrlBusy > at {
				continue
			}
			ctrlBusy = end + cfg.Horizon/20
			e.Delay = sim.Time(rng.Int63n(int64(cfg.Horizon/50)) + 1)
			e.Rate = 0.2 + 0.5*rng.Float64()
		case Partition:
			if outagesAt(at, end)+2 > cfg.MaxOutages {
				continue
			}
			a := pickNode(at, end)
			b := pickNode(at, end)
			if a < 0 || b < 0 {
				continue
			}
			e.Nodes = []int{a, b}
			outages = append(outages, span{at, end})
			outages = append(outages, span{at, end})
		case NodeCrash, LinkDown:
			if outagesAt(at, end)+1 > cfg.MaxOutages {
				continue
			}
			n := pickNode(at, end)
			if n < 0 {
				continue
			}
			e.Node = n
			outages = append(outages, span{at, end})
		default:
			n := pickNode(at, end)
			if n < 0 {
				continue
			}
			e.Node = n
			switch kind {
			case LinkLoss:
				e.Rate = 0.05 + 0.4*rng.Float64()
			case DelaySpike:
				e.Factor = 2 + 8*rng.Float64()
			case SlowNIC:
				e.Factor = 2 + 18*rng.Float64()
			case SlowDisk:
				e.Factor = 5 + 45*rng.Float64()
			}
		}
		sched.Events = append(sched.Events, e)
	}
	sort.SliceStable(sched.Events, func(i, j int) bool {
		return sched.Events[i].At < sched.Events[j].At
	})
	return sched
}
