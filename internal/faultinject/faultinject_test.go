package faultinject

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

func genCfg() GenConfig {
	return DefaultGenConfig(5, sim.Time(time.Second))
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := Generate(seed, genCfg())
		b := Generate(seed, genCfg())
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: generation is not deterministic:\n%s\nvs\n%s", seed, a, b)
		}
		if len(a.Events) == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
	}
	if reflect.DeepEqual(Generate(1, genCfg()), Generate(2, genCfg())) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateRespectsConstraints(t *testing.T) {
	cfg := genCfg()
	for seed := int64(1); seed <= 50; seed++ {
		sched := Generate(seed, cfg)
		type span struct {
			from, to sim.Time
			node     int
		}
		var outages []span
		var perNode []span
		var ctrl []span
		for _, e := range sched.Events {
			if e.At < cfg.Horizon/10 || e.At > cfg.Horizon*7/10 {
				t.Fatalf("seed %d: event %s starts outside the fault window", seed, e)
			}
			if e.For <= 0 {
				t.Fatalf("seed %d: event %s has no duration", seed, e)
			}
			end := e.At + e.For
			switch e.Kind {
			case NodeCrash, LinkDown:
				if e.For < cfg.MinOutage || e.For > cfg.MaxOutage {
					t.Fatalf("seed %d: outage %s outside [%v,%v]", seed, e, cfg.MinOutage, cfg.MaxOutage)
				}
				outages = append(outages, span{e.At, end, e.Node})
				perNode = append(perNode, span{e.At, end, e.Node})
			case Partition:
				for _, n := range e.Nodes {
					outages = append(outages, span{e.At, end, n})
					perNode = append(perNode, span{e.At, end, n})
				}
			case CtrlFault:
				ctrl = append(ctrl, span{e.At, end, 0})
			default:
				perNode = append(perNode, span{e.At, end, e.Node})
			}
		}
		// No more than MaxOutages nodes unreachable at any instant.
		// Concurrency can only change at a span start, so sampling each
		// start instant covers every maximum.
		for _, o := range outages {
			n := 0
			for _, p := range outages {
				if p.from <= o.from && o.from < p.to {
					n++
				}
			}
			if n > cfg.MaxOutages {
				t.Fatalf("seed %d: %d concurrent outages at %v > %d", seed, n, o.from, cfg.MaxOutages)
			}
		}
		// Per-node faults are serialized.
		for i, a := range perNode {
			for _, b := range perNode[i+1:] {
				if a.node == b.node && a.from < b.to && b.from < a.to {
					t.Fatalf("seed %d: overlapping faults on node %d", seed, a.node)
				}
			}
		}
		// Control-channel fault windows never overlap.
		for i, a := range ctrl {
			for _, b := range ctrl[i+1:] {
				if a.from < b.to && b.from < a.to {
					t.Fatalf("seed %d: overlapping ctrl faults", seed)
				}
			}
		}
	}
}

func TestScheduleStringRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		sched := Generate(seed, genCfg())
		text := sched.String()
		back, err := ParseSchedule(text)
		if err != nil {
			t.Fatalf("seed %d: parse %q: %v", seed, text, err)
		}
		if !reflect.DeepEqual(sched, back) {
			t.Fatalf("seed %d: round trip diverged:\n in: %#v\nout: %#v\ntext: %s", seed, sched, back, text)
		}
	}
}

// Satellite: controller-fault schedules round-trip the repro format.
// ctrlcrash has no operand (there is one active controller); chainkill
// targets a chain replica index through the generic node field.
func TestCtrlFaultScheduleRoundTrip(t *testing.T) {
	cases := []struct {
		text  string
		event Event
	}{
		{
			text: "seed=3 | ctrlcrash @120ms +80ms",
			event: Event{Kind: CtrlCrash,
				At: sim.Time(120 * time.Millisecond), For: sim.Time(80 * time.Millisecond)},
		},
		{
			text: "seed=3 | chainkill n1 @300ms +90ms",
			event: Event{Kind: ChainKill, Node: 1,
				At: sim.Time(300 * time.Millisecond), For: sim.Time(90 * time.Millisecond)},
		},
		{
			text: "seed=3 | chainkill n2 @80ms +100ms",
			event: Event{Kind: ChainKill, Node: 2,
				At: sim.Time(80 * time.Millisecond), For: sim.Time(100 * time.Millisecond)},
		},
	}
	for _, tc := range cases {
		parsed, err := ParseSchedule(tc.text)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", tc.text, err)
		}
		want := Schedule{Seed: 3, Events: []Event{tc.event}}
		if !reflect.DeepEqual(parsed, want) {
			t.Fatalf("parse %q = %#v, want %#v", tc.text, parsed, want)
		}
		if got := parsed.String(); got != tc.text {
			t.Fatalf("String() = %q, want %q", got, tc.text)
		}
	}
	// Mixed with legacy kinds in one line.
	mixed := "seed=9 | ctrlcrash @100ms +80ms | crash n2 @200ms +80ms | chainkill n0 @400ms +100ms"
	parsed, err := ParseSchedule(mixed)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", mixed, err)
	}
	if got := parsed.String(); got != mixed {
		t.Fatalf("mixed round trip = %q, want %q", got, mixed)
	}
}

// Generated controller-fault schedules obey the same serialization and
// round-trip guarantees as the legacy kinds.
func TestGenerateCtrlFaults(t *testing.T) {
	cfg := genCfg()
	cfg.ChainNodes = 3
	cfg.Weights = DefaultWeights()
	cfg.Weights[CtrlCrash] = 40
	cfg.Weights[ChainKill] = 40
	sawCrash, sawChain := false, false
	for seed := int64(1); seed <= 30; seed++ {
		sched := Generate(seed, cfg)
		var crashes, chains []Event
		for _, e := range sched.Events {
			switch e.Kind {
			case CtrlCrash:
				sawCrash = true
				crashes = append(crashes, e)
			case ChainKill:
				sawChain = true
				chains = append(chains, e)
				if e.Node < 0 || e.Node >= cfg.ChainNodes {
					t.Fatalf("seed %d: chainkill target %d outside [0,%d)", seed, e.Node, cfg.ChainNodes)
				}
			}
			if (e.Kind == CtrlCrash || e.Kind == ChainKill) &&
				(e.For < cfg.MinOutage || e.For > cfg.MaxOutage) {
				t.Fatalf("seed %d: %s window outside outage bounds", seed, e)
			}
		}
		for _, set := range [][]Event{crashes, chains} {
			for i, a := range set {
				for _, b := range set[i+1:] {
					if a.At < b.At+b.For && b.At < a.At+a.For {
						t.Fatalf("seed %d: overlapping controller faults", seed)
					}
				}
			}
		}
		back, err := ParseSchedule(sched.String())
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		if !reflect.DeepEqual(sched, back) {
			t.Fatalf("seed %d: round trip diverged:\n%s", seed, sched)
		}
	}
	if !sawCrash || !sawChain {
		t.Fatalf("30 seeds generated no controller faults (crash=%v chain=%v)", sawCrash, sawChain)
	}
}

// The new kinds default to weight zero: schedules generated with the
// default bias never contain them, so longstanding cell seeds keep
// their exact schedules.
func TestDefaultWeightsExcludeCtrlFaults(t *testing.T) {
	if w := DefaultWeights(); w[CtrlCrash] != 0 || w[ChainKill] != 0 {
		t.Fatalf("controller-fault kinds must default to weight 0, got %v", w)
	}
	for seed := int64(1); seed <= 50; seed++ {
		for _, e := range Generate(seed, genCfg()).Events {
			if e.Kind == CtrlCrash || e.Kind == ChainKill {
				t.Fatalf("seed %d: default weights generated %s", seed, e)
			}
		}
	}
}

func TestParseScheduleRejectsGarbage(t *testing.T) {
	for _, text := range []string{
		"crash n0 @1ms +1ms",             // missing seed header
		"seed=x | crash n0 @1ms +1ms",    // bad seed
		"seed=1 | melt n0 @1ms +1ms",     // unknown kind
		"seed=1 | crash n0,n1 @1ms +1ms", // bad node list
		"seed=1 | crash n0 @wat +1ms",    // bad duration
		"seed=1 | crash n0 q=3 @1ms",     // unknown field
	} {
		if _, err := ParseSchedule(text); err == nil {
			t.Fatalf("ParseSchedule(%q) accepted garbage", text)
		}
	}
}

// recFabric records fabric calls for Install ordering tests.
type recFabric struct {
	log []string
}

func (f *recFabric) rec(format string, args ...any) {
	f.log = append(f.log, fmt.Sprintf(format, args...))
}

func (f *recFabric) Crash(n int)                         { f.rec("crash %d", n) }
func (f *recFabric) Restart(n int)                       { f.rec("restart %d", n) }
func (f *recFabric) SetLinkDown(n int, down bool)        { f.rec("down %d %v", n, down) }
func (f *recFabric) SetLinkLoss(n int, r float64)        { f.rec("loss %d %v", n, r) }
func (f *recFabric) SetLinkDelayFactor(n int, x float64) { f.rec("delay %d %v", n, x) }
func (f *recFabric) SetNICFactor(n int, x float64)       { f.rec("nic %d %v", n, x) }
func (f *recFabric) SetDiskFactor(n int, x float64)      { f.rec("disk %d %v", n, x) }
func (f *recFabric) SetCtrlFault(d sim.Time, r float64)  { f.rec("ctrl %v %v", d, r) }
func (f *recFabric) CrashCtrl()                          { f.rec("ctrlcrash") }
func (f *recFabric) RestartCtrl()                        { f.rec("ctrlrestart") }
func (f *recFabric) SetChainDown(i int, down bool)       { f.rec("chain %d %v", i, down) }

func TestInstallAppliesAndReverts(t *testing.T) {
	s := sim.New(1)
	f := &recFabric{}
	sched := Schedule{Seed: 7, Events: []Event{
		{Kind: NodeCrash, At: sim.Time(10 * time.Millisecond), For: sim.Time(20 * time.Millisecond), Node: 2},
		{Kind: LinkLoss, At: sim.Time(15 * time.Millisecond), For: sim.Time(5 * time.Millisecond), Node: 0, Rate: 0.5},
		{Kind: Partition, At: sim.Time(40 * time.Millisecond), For: sim.Time(10 * time.Millisecond), Nodes: []int{1, 3}},
		{Kind: CtrlFault, At: sim.Time(60 * time.Millisecond), For: sim.Time(10 * time.Millisecond), Delay: sim.Time(time.Millisecond), Rate: 0.25},
	}}
	Install(s, f, sched)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"crash 2",
		"loss 0 0.5",
		"loss 0 0",
		"restart 2",
		"down 1 true", "down 3 true",
		"down 1 false", "down 3 false",
		"ctrl 1ms 0.25",
		"ctrl 0s 0",
	}
	if !reflect.DeepEqual(f.log, want) {
		t.Fatalf("fabric log:\n%v\nwant:\n%v", f.log, want)
	}
}
