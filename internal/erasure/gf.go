// Package erasure implements Reed-Solomon erasure coding over GF(2^8) —
// the "other popular technique" for data reliability the paper contrasts
// with replication (§4.2) — plus a key-value integration that stripes
// objects into k data + m parity shards across the cluster and
// reconstructs from any k survivors.
package erasure

// GF(2^8) arithmetic with the AES/QR-code reducing polynomial x^8 + x^4
// + x^3 + x^2 + 1 (0x11d), via exp/log tables.

const gfPoly = 0x11d

var (
	gfExp [512]byte // doubled so mul can skip a modulo
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[byte(x)] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies in GF(2^8).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides in GF(2^8); dividing by zero panics.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse.
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfExpPow returns a^n for a != 0.
func gfPow(a byte, n int) byte {
	if a == 0 {
		if n == 0 {
			return 1
		}
		return 0
	}
	idx := (int(gfLog[a]) * n) % 255
	if idx < 0 {
		idx += 255
	}
	return gfExp[idx]
}

// matrix is a dense GF(256) matrix, row major.
type matrix struct {
	rows, cols int
	data       []byte
}

func newMatrix(rows, cols int) *matrix {
	return &matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

func (m *matrix) at(r, c int) byte     { return m.data[r*m.cols+c] }
func (m *matrix) set(r, c int, v byte) { m.data[r*m.cols+c] = v }
func (m *matrix) row(r int) []byte     { return m.data[r*m.cols : (r+1)*m.cols] }
func (m *matrix) swapRows(a, b int) {
	if a == b {
		return
	}
	ra, rb := m.row(a), m.row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// mul returns m x o.
func (m *matrix) mul(o *matrix) *matrix {
	if m.cols != o.rows {
		panic("erasure: matrix dimension mismatch")
	}
	out := newMatrix(m.rows, o.cols)
	for r := 0; r < m.rows; r++ {
		for c := 0; c < o.cols; c++ {
			var acc byte
			for k := 0; k < m.cols; k++ {
				acc ^= gfMul(m.at(r, k), o.at(k, c))
			}
			out.set(r, c, acc)
		}
	}
	return out
}

// invert returns m^-1 via Gauss-Jordan; m must be square and
// non-singular (ok=false otherwise).
func (m *matrix) invert() (*matrix, bool) {
	if m.rows != m.cols {
		return nil, false
	}
	n := m.rows
	work := newMatrix(n, 2*n)
	for r := 0; r < n; r++ {
		copy(work.row(r)[:n], m.row(r))
		work.set(r, n+r, 1)
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work.at(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		work.swapRows(col, pivot)
		inv := gfInv(work.at(col, col))
		row := work.row(col)
		for i := range row {
			row[i] = gfMul(row[i], inv)
		}
		for r := 0; r < n; r++ {
			if r == col || work.at(r, col) == 0 {
				continue
			}
			factor := work.at(r, col)
			target := work.row(r)
			for i := range row {
				target[i] ^= gfMul(factor, row[i])
			}
		}
	}
	out := newMatrix(n, n)
	for r := 0; r < n; r++ {
		copy(out.row(r), work.row(r)[n:])
	}
	return out, true
}

// vandermonde builds the systematic encoding matrix for (k, m): the top
// k rows are the identity (data shards pass through), the bottom m rows
// generate parity. It is derived from a (k+m) x k Vandermonde matrix
// made systematic by multiplying with the inverse of its top square,
// which preserves the property that every k x k submatrix is invertible.
func vandermonde(k, m int) *matrix {
	v := newMatrix(k+m, k)
	for r := 0; r < k+m; r++ {
		for c := 0; c < k; c++ {
			v.set(r, c, gfPow(gfExp[r], c))
		}
	}
	top := newMatrix(k, k)
	for r := 0; r < k; r++ {
		copy(top.row(r), v.row(r))
	}
	topInv, ok := top.invert()
	if !ok {
		panic("erasure: Vandermonde top square not invertible")
	}
	return v.mul(topInv)
}
