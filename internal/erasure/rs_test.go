package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldAxioms(t *testing.T) {
	// a * inv(a) == 1 for all non-zero a.
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("inv broken for %d", a)
		}
	}
	// Distributivity on random triples.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity broken at %d,%d,%d", a, b, c)
		}
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("commutativity broken at %d,%d", a, b)
		}
	}
	if gfMul(0, 77) != 0 || gfMul(77, 0) != 0 {
		t.Fatal("zero annihilation broken")
	}
}

func TestGFPow(t *testing.T) {
	for a := 1; a < 256; a++ {
		acc := byte(1)
		for n := 0; n < 10; n++ {
			if gfPow(byte(a), n) != acc {
				t.Fatalf("pow(%d,%d) mismatch", a, n)
			}
			acc = gfMul(acc, byte(a))
		}
	}
}

func TestMatrixInvert(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		m := newMatrix(n, n)
		for i := range m.data {
			m.data[i] = byte(rng.Intn(256))
		}
		inv, ok := m.invert()
		if !ok {
			continue // singular random matrix; fine
		}
		prod := m.mul(inv)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				want := byte(0)
				if r == c {
					want = 1
				}
				if prod.at(r, c) != want {
					t.Fatalf("m * m^-1 != I at (%d,%d)", r, c)
				}
			}
		}
	}
}

func TestCodeValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 2}, {4, 0}, {200, 100}} {
		if _, err := NewCode(bad[0], bad[1]); err == nil {
			t.Errorf("NewCode(%d,%d) accepted", bad[0], bad[1])
		}
	}
}

func TestEncodeVerifyRoundTrip(t *testing.T) {
	c := MustCode(4, 2)
	data := []byte("the quick brown fox jumps over the lazy dog 0123456789")
	shards := c.Encode(data)
	if len(shards) != 6 {
		t.Fatalf("shards = %d", len(shards))
	}
	if !c.Verify(shards) {
		t.Fatal("fresh encoding does not verify")
	}
	out, err := c.Join(shards, len(data))
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("join = %q, %v", out, err)
	}
	// Corruption is detected.
	shards[1][0] ^= 0xff
	if c.Verify(shards) {
		t.Fatal("corruption not detected")
	}
}

func TestReconstructAnyErasures(t *testing.T) {
	// Every possible m-subset of erasures must be recoverable.
	c := MustCode(4, 2)
	data := make([]byte, 1000)
	rng := rand.New(rand.NewSource(3))
	rng.Read(data)
	orig := c.Encode(data)
	n := c.Shards()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			shards := make([][]byte, n)
			for i := range shards {
				if i == a || i == b {
					continue
				}
				shards[i] = append([]byte(nil), orig[i]...)
			}
			if err := c.Reconstruct(shards); err != nil {
				t.Fatalf("erasures {%d,%d}: %v", a, b, err)
			}
			for i := range shards {
				if !bytes.Equal(shards[i], orig[i]) {
					t.Fatalf("erasures {%d,%d}: shard %d wrong after reconstruct", a, b, i)
				}
			}
			out, err := c.Join(shards, len(data))
			if err != nil || !bytes.Equal(out, data) {
				t.Fatalf("erasures {%d,%d}: join failed", a, b)
			}
		}
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	c := MustCode(3, 2)
	orig := c.Encode([]byte("hello world, hello world"))
	shards := make([][]byte, c.Shards())
	shards[0] = orig[0]
	shards[3] = orig[3] // only 2 of 3 required
	if err := c.Reconstruct(shards); err == nil {
		t.Fatal("reconstruct succeeded with k-1 shards")
	}
}

// Property: random data, random (k, m), random erasure pattern of size
// <= m always round trips.
func TestReconstructProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(8)
		m := 1 + r.Intn(4)
		c := MustCode(k, m)
		data := make([]byte, 1+r.Intn(5000))
		r.Read(data)
		orig := c.Encode(data)
		shards := make([][]byte, c.Shards())
		for i := range shards {
			shards[i] = append([]byte(nil), orig[i]...)
		}
		// Erase up to m shards.
		for _, idx := range r.Perm(c.Shards())[:r.Intn(m+1)] {
			shards[idx] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		out, err := c.Join(shards, len(data))
		return err == nil && bytes.Equal(out, data)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStorageOverheadVsReplication(t *testing.T) {
	// The §4.2 trade-off: EC(4,2) survives 2 failures at 1.5x storage;
	// R=3 replication survives 2 failures at 3x.
	c := MustCode(4, 2)
	data := make([]byte, 4096)
	shards := c.Encode(data)
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	if got := float64(total) / float64(len(data)); got != 1.5 {
		t.Fatalf("EC(4,2) overhead = %.2fx, want 1.5x", got)
	}
}

func BenchmarkEncode4_2_64KB(b *testing.B) {
	c := MustCode(4, 2)
	data := make([]byte, 64<<10)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		c.Encode(data)
	}
}

func BenchmarkReconstruct4_2_64KB(b *testing.B) {
	c := MustCode(4, 2)
	data := make([]byte, 64<<10)
	orig := c.Encode(data)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, c.Shards())
		for j := range shards {
			if j == 0 || j == 3 {
				continue
			}
			shards[j] = orig[j]
		}
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}
