package erasure

import "fmt"

// Code is a systematic Reed-Solomon code with k data shards and m parity
// shards: any k of the k+m shards reconstruct the original data, so the
// code survives any m erasures at a storage overhead of (k+m)/k — versus
// R x for R-way replication at the same fault tolerance m = R-1.
type Code struct {
	K, M int
	enc  *matrix // (k+m) x k systematic encoding matrix
}

// NewCode builds a code; k and m must be positive with k+m <= 256.
func NewCode(k, m int) (*Code, error) {
	if k <= 0 || m <= 0 || k+m > 256 {
		return nil, fmt.Errorf("erasure: invalid code parameters k=%d m=%d", k, m)
	}
	return &Code{K: k, M: m, enc: vandermonde(k, m)}, nil
}

// MustCode is NewCode that panics on error.
func MustCode(k, m int) *Code {
	c, err := NewCode(k, m)
	if err != nil {
		panic(err)
	}
	return c
}

// Shards returns the total shard count k+m.
func (c *Code) Shards() int { return c.K + c.M }

// ShardSize returns the per-shard size for an object of dataLen bytes.
func (c *Code) ShardSize(dataLen int) int { return (dataLen + c.K - 1) / c.K }

// Encode splits data into k equal shards (zero padded) and computes the
// m parity shards; it returns all k+m shards.
func (c *Code) Encode(data []byte) [][]byte {
	size := c.ShardSize(len(data))
	if size == 0 {
		size = 1
	}
	shards := make([][]byte, c.Shards())
	for i := 0; i < c.K; i++ {
		shards[i] = make([]byte, size)
		start := i * size
		if start < len(data) {
			copy(shards[i], data[start:])
		}
	}
	for i := c.K; i < c.Shards(); i++ {
		shards[i] = make([]byte, size)
		row := c.enc.row(i)
		for j := 0; j < c.K; j++ {
			coef := row[j]
			if coef == 0 {
				continue
			}
			src := shards[j]
			dst := shards[i]
			for b := range src {
				dst[b] ^= gfMul(coef, src[b])
			}
		}
	}
	return shards
}

// Reconstruct fills in the missing (nil) shards in place. It needs at
// least k present shards of equal size.
func (c *Code) Reconstruct(shards [][]byte) error {
	if len(shards) != c.Shards() {
		return fmt.Errorf("erasure: want %d shards, got %d", c.Shards(), len(shards))
	}
	present := make([]int, 0, c.K)
	size := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size < 0 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("erasure: shard size mismatch")
		}
		present = append(present, i)
	}
	if len(present) < c.K {
		return fmt.Errorf("erasure: only %d of %d required shards present", len(present), c.K)
	}
	present = present[:c.K]

	// Decode matrix: the k encoding rows of the surviving shards.
	dec := newMatrix(c.K, c.K)
	for r, idx := range present {
		copy(dec.row(r), c.enc.row(idx))
	}
	inv, ok := dec.invert()
	if !ok {
		return fmt.Errorf("erasure: singular decode matrix")
	}

	// Recover missing data shards: data[j] = inv[j] . survivors.
	survivors := make([][]byte, c.K)
	for r, idx := range present {
		survivors[r] = shards[idx]
	}
	recover := func(row []byte) []byte {
		out := make([]byte, size)
		for j := 0; j < c.K; j++ {
			coef := row[j]
			if coef == 0 {
				continue
			}
			src := survivors[j]
			for b := range src {
				out[b] ^= gfMul(coef, src[b])
			}
		}
		return out
	}
	for i := 0; i < c.K; i++ {
		if shards[i] == nil {
			shards[i] = recover(inv.row(i))
		}
	}
	// Re-derive any missing parity from the (now complete) data shards.
	for i := c.K; i < c.Shards(); i++ {
		if shards[i] != nil {
			continue
		}
		out := make([]byte, size)
		row := c.enc.row(i)
		for j := 0; j < c.K; j++ {
			coef := row[j]
			if coef == 0 {
				continue
			}
			src := shards[j]
			for b := range src {
				out[b] ^= gfMul(coef, src[b])
			}
		}
		shards[i] = out
	}
	return nil
}

// Join reassembles the original data of length dataLen from the data
// shards (which must all be present — call Reconstruct first).
func (c *Code) Join(shards [][]byte, dataLen int) ([]byte, error) {
	if len(shards) < c.K {
		return nil, fmt.Errorf("erasure: want >= %d shards", c.K)
	}
	out := make([]byte, 0, dataLen)
	for i := 0; i < c.K && len(out) < dataLen; i++ {
		if shards[i] == nil {
			return nil, fmt.Errorf("erasure: data shard %d missing", i)
		}
		need := dataLen - len(out)
		if need > len(shards[i]) {
			need = len(shards[i])
		}
		out = append(out, shards[i][:need]...)
	}
	return out, nil
}

// Verify recomputes the parity and reports whether it matches.
func (c *Code) Verify(shards [][]byte) bool {
	if len(shards) != c.Shards() {
		return false
	}
	for _, s := range shards {
		if s == nil {
			return false
		}
	}
	size := len(shards[0])
	for i := c.K; i < c.Shards(); i++ {
		row := c.enc.row(i)
		for b := 0; b < size; b++ {
			var acc byte
			for j := 0; j < c.K; j++ {
				acc ^= gfMul(row[j], shards[j][b])
			}
			if acc != shards[i][b] {
				return false
			}
		}
	}
	return true
}
