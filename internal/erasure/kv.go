package erasure

import (
	"fmt"

	"repro/internal/sim"
)

// ObjectStore is the slice of a key-value client the EC layer needs;
// core.Client is adapted to it in package cluster.
type ObjectStore interface {
	Put(p *sim.Proc, key string, value any, size int) error
	// Get returns (value, found, error).
	Get(p *sim.Proc, key string) (any, bool, error)
}

// KV stripes each object into K data + M parity shards and stores them
// as independent keys — which consistent hashing then spreads over
// distinct partitions/nodes. Reads fetch the data shards and fall back
// to parity + reconstruction when some are unavailable, tolerating M
// lost shards at (K+M)/K storage overhead instead of replication's Rx
// (§4.2's "other popular technique").
type KV struct {
	code  *Code
	store ObjectStore
}

// NewKV builds the EC layer over a store.
func NewKV(code *Code, store ObjectStore) *KV {
	return &KV{code: code, store: store}
}

// shardKey names shard i of key.
func shardKey(key string, i int) string { return fmt.Sprintf("%s/ec%d", key, i) }

// ecShard is the stored per-shard value.
type ecShard struct {
	Index   int
	DataLen int // original object length
	Bytes   []byte
}

// Put encodes data and writes all K+M shards concurrently.
func (kv *KV) Put(p *sim.Proc, key string, data []byte) error {
	shards := kv.code.Encode(data)
	s := p.Sim()
	g := sim.NewGroup(s)
	var firstErr error
	for i, sh := range shards {
		i, sh := i, sh
		g.Add(1)
		s.Spawn("ec-put", func(p *sim.Proc) {
			defer g.Done()
			val := &ecShard{Index: i, DataLen: len(data), Bytes: sh}
			if err := kv.store.Put(p, shardKey(key, i), val, len(sh)); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	g.Wait(p)
	return firstErr
}

// Get fetches the K data shards (and, if any are missing, every parity
// shard), reconstructs as needed, and returns the original bytes.
func (kv *KV) Get(p *sim.Proc, key string) ([]byte, error) {
	shards := make([][]byte, kv.code.Shards())
	dataLen := -1

	fetch := func(p *sim.Proc, idxs []int) {
		s := p.Sim()
		g := sim.NewGroup(s)
		for _, i := range idxs {
			i := i
			g.Add(1)
			s.Spawn("ec-get", func(p *sim.Proc) {
				defer g.Done()
				raw, found, err := kv.store.Get(p, shardKey(key, i))
				if err != nil || !found {
					return
				}
				if sh, ok := raw.(*ecShard); ok {
					shards[i] = sh.Bytes
					dataLen = sh.DataLen
				}
			})
		}
		g.Wait(p)
	}

	// Fast path: the data shards.
	idxs := make([]int, kv.code.K)
	for i := range idxs {
		idxs[i] = i
	}
	fetch(p, idxs)

	missing := 0
	for i := 0; i < kv.code.K; i++ {
		if shards[i] == nil {
			missing++
		}
	}
	if missing > 0 {
		// Degraded read: pull the parity shards and reconstruct.
		var parity []int
		for i := kv.code.K; i < kv.code.Shards(); i++ {
			parity = append(parity, i)
		}
		fetch(p, parity)
		if err := kv.code.Reconstruct(shards); err != nil {
			return nil, fmt.Errorf("erasure: degraded read failed: %w", err)
		}
	}
	if dataLen < 0 {
		return nil, fmt.Errorf("erasure: object %q not found", key)
	}
	return kv.code.Join(shards, dataLen)
}
