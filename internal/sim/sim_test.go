package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) Time { return Time(n) * time.Millisecond }

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(ms(20), func() { order = append(order, 2) })
	s.At(ms(10), func() { order = append(order, 1) })
	s.At(ms(30), func() { order = append(order, 3) })
	s.At(ms(10), func() { order = append(order, 11) }) // same instant: FIFO
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != ms(30) {
		t.Fatalf("Now = %v, want %v", s.Now(), ms(30))
	}
}

func TestEventCancel(t *testing.T) {
	s := New(1)
	fired := false
	ev := s.At(ms(5), func() { fired = true })
	ev.Cancel()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(ms(10), func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(ms(5), func() {})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleep(t *testing.T) {
	s := New(1)
	var wake Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(ms(42))
		wake = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != ms(42) {
		t.Fatalf("woke at %v, want %v", wake, ms(42))
	}
	if s.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", s.LiveProcs())
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func(seed int64) []string {
		s := New(seed)
		var trace []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			s.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					trace = append(trace, name)
					p.Sleep(ms(1 + s.Rand().Intn(5)))
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a := run(7)
	b := run(7)
	if len(a) != len(b) || len(a) != 9 {
		t.Fatalf("trace lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestQueuePushPop(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s)
	var got []int
	s.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			v, ok := q.Pop(p)
			if !ok {
				t.Error("unexpected closed queue")
				return
			}
			got = append(got, v)
		}
	})
	s.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(ms(10))
			q.Push(i)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestQueuePopTimeout(t *testing.T) {
	s := New(1)
	q := NewQueue[string](s)
	var timedOut, gotValue bool
	var at Time
	s.Spawn("c", func(p *Proc) {
		if _, ok := q.PopTimeout(p, ms(5)); !ok {
			timedOut = true
			at = p.Now()
		}
		v, ok := q.PopTimeout(p, ms(100))
		gotValue = ok && v == "x"
	})
	s.At(ms(20), func() { q.Push("x") })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut || at != ms(5) {
		t.Fatalf("timeout at %v (fired=%v), want 5ms", at, timedOut)
	}
	if !gotValue {
		t.Fatal("second pop did not see pushed value")
	}
}

func TestQueueClose(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s)
	q.Push(9)
	closedSeen := false
	s.Spawn("c", func(p *Proc) {
		if v, ok := q.Pop(p); !ok || v != 9 {
			t.Errorf("Pop = %d,%v want 9,true", v, ok)
		}
		if _, ok := q.Pop(p); !ok {
			closedSeen = true
		}
	})
	s.At(ms(3), func() { q.Close() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !closedSeen {
		t.Fatal("Pop on closed queue returned ok")
	}
}

func TestQueueFIFOAmongWaiters(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s)
	var order []string
	mk := func(name string, delay Time) {
		s.Spawn(name, func(p *Proc) {
			p.Sleep(delay)
			if _, ok := q.Pop(p); ok {
				order = append(order, name)
			}
		})
	}
	mk("first", ms(1))
	mk("second", ms(2))
	s.At(ms(10), func() { q.Push(1) })
	s.At(ms(11), func() { q.Push(2) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v", order)
	}
}

func TestFuture(t *testing.T) {
	s := New(1)
	f := NewFuture[int](s)
	results := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn("w", func(p *Proc) { results[i] = f.Wait(p) })
	}
	s.At(ms(7), func() { f.Set(99) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if results[0] != 99 || results[1] != 99 {
		t.Fatalf("results = %v", results)
	}
	if !f.Done() || f.Value() != 99 {
		t.Fatal("future not resolved")
	}
}

func TestFutureWaitTimeout(t *testing.T) {
	s := New(1)
	f := NewFuture[int](s)
	var ok1, ok2 bool
	s.Spawn("w", func(p *Proc) {
		_, ok1 = f.WaitTimeout(p, ms(5))
		_, ok2 = f.WaitTimeout(p, ms(100))
	})
	s.At(ms(50), func() { f.Set(1) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ok1 || !ok2 {
		t.Fatalf("ok1=%v ok2=%v, want false,true", ok1, ok2)
	}
}

func TestFutureDoubleSetPanics(t *testing.T) {
	s := New(1)
	f := NewFuture[int](s)
	f.Set(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double Set")
		}
	}()
	f.Set(2)
}

func TestGroup(t *testing.T) {
	s := New(1)
	g := NewGroup(s)
	g.Add(3)
	var doneAt Time
	s.Spawn("waiter", func(p *Proc) {
		g.Wait(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		d := ms(10 * i)
		s.At(d, func() { g.Done() })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != ms(30) {
		t.Fatalf("group released at %v, want 30ms", doneAt)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	s := New(1)
	s.Spawn("bad", func(p *Proc) {
		p.Sleep(ms(1))
		panic("boom")
	})
	if err := s.Run(); err == nil {
		t.Fatal("expected failure from panicking process")
	}
}

func TestShutdownReapsParkedProcs(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s)
	for i := 0; i < 5; i++ {
		s.Spawn("stuck", func(p *Proc) { q.Pop(p) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.LiveProcs() != 5 {
		t.Fatalf("LiveProcs = %d, want 5", s.LiveProcs())
	}
	s.Shutdown()
	if s.LiveProcs() != 0 {
		t.Fatalf("after Shutdown LiveProcs = %d, want 0", s.LiveProcs())
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(ms(10*i), func() { count++ })
	}
	if err := s.RunUntil(ms(35)); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if s.Now() != ms(35) {
		t.Fatalf("Now = %v, want 35ms", s.Now())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

// Property: for any batch of (delay, value) pairs pushed by a producer, a
// consumer pops exactly the same values in push order.
func TestQueueOrderProperty(t *testing.T) {
	f := func(delays []uint8) bool {
		if len(delays) == 0 {
			return true
		}
		if len(delays) > 64 {
			delays = delays[:64]
		}
		s := New(42)
		q := NewQueue[int](s)
		var got []int
		s.Spawn("consumer", func(p *Proc) {
			for range delays {
				v, ok := q.Pop(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		s.Spawn("producer", func(p *Proc) {
			for i, d := range delays {
				p.Sleep(Time(d) * time.Microsecond)
				q.Push(i)
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		if len(got) != len(delays) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
