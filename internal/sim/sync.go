package sim

// Queue is an unbounded FIFO mailbox carrying values of type T between
// processes (or from event callbacks into processes). It is the basic
// communication primitive of the kernel: sockets, timers and protocol
// mailboxes are all built on it.
//
// The item buffer is a slice drained by a moving head index (reset when it
// empties, so capacity is reused) and blocked processes wait on pooled
// intrusive list nodes, which together make the steady-state
// push/pop handoff allocation-free.
//
// Queue is not safe for use outside the simulation's single-threaded
// discipline; that is by design.
type Queue[T any] struct {
	sim     *Simulator
	items   []T
	head    int // items[:head] are consumed
	waiters wlist
	closed  bool
}

// NewQueue returns an empty queue bound to s.
func NewQueue[T any](s *Simulator) *Queue[T] {
	return &Queue[T]{sim: s}
}

// Len reports the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// Push appends v and wakes the oldest waiting process, if any. It never
// blocks and may be called from event callbacks or processes. Pushes to
// a closed queue are dropped (teardown races are expected in protocol
// code).
func (q *Queue[T]) Push(v T) {
	if q.closed {
		return
	}
	q.items = append(q.items, v)
	q.wakeOne()
}

// Close marks the queue closed: blocked and future Pops return ok=false
// once the buffer drains, and later pushes are dropped. All waiters are
// released by one batch-wake event.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	q.sim.wakeAll(&q.waiters)
}

func (q *Queue[T]) wakeOne() {
	for {
		w := q.waiters.pop()
		if w == nil {
			return
		}
		woke := w.wake()
		q.sim.freeWaiter(w)
		if woke {
			return
		}
	}
}

// take removes and returns the oldest buffered item; the buffer must be
// non-empty. Draining the last item resets the slice so its capacity is
// reused by later pushes.
func (q *Queue[T]) take() T {
	v := q.items[q.head]
	var zero T
	q.items[q.head] = zero // release the reference for the GC
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v
}

// Pop blocks p until an item is available and returns it. ok is false when
// the queue was closed and drained.
func (q *Queue[T]) Pop(p *Proc) (v T, ok bool) {
	for q.Len() == 0 {
		if q.closed {
			return v, false
		}
		q.waiters.push(q.sim.newWaiter(p))
		p.park()
	}
	return q.take(), true
}

// PopTimeout is Pop with a deadline d from now. ok is false on timeout or
// close.
func (q *Queue[T]) PopTimeout(p *Proc, d Time) (v T, ok bool) {
	if q.Len() > 0 {
		return q.take(), true
	}
	if q.closed || d <= 0 {
		return v, false
	}
	deadline := p.sim.Now() + d
	for {
		w := &waiter{p: p, timed: true}
		q.waiters.push(w)
		timer := p.sim.At(deadline, func() { w.wake() })
		p.park()
		timer.Cancel()
		if q.Len() > 0 {
			return q.take(), true
		}
		if q.closed || p.sim.Now() >= deadline {
			return v, false
		}
		// Spurious wakeup (an earlier waker lost the race); wait again.
	}
}

// TryPop removes and returns an item without blocking.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	if q.Len() == 0 {
		return v, false
	}
	return q.take(), true
}

// Future is a write-once value that processes can await. It is the
// rendezvous for request/reply protocols.
type Future[T any] struct {
	sim     *Simulator
	value   T
	set     bool
	waiters wlist
}

// NewFuture returns an unresolved future bound to s.
func NewFuture[T any](s *Simulator) *Future[T] {
	return &Future[T]{sim: s}
}

// Set resolves the future and wakes all waiters with one batch-wake
// event (the fan-in pattern: many processes awaiting one reply). Resolving
// twice panics: it would indicate a protocol bug.
func (f *Future[T]) Set(v T) {
	if f.set {
		panic("sim: Future resolved twice")
	}
	f.value = v
	f.set = true
	f.sim.wakeAll(&f.waiters)
}

// Done reports whether the future is resolved.
func (f *Future[T]) Done() bool { return f.set }

// Value returns the resolved value; it panics if the future is pending.
func (f *Future[T]) Value() T {
	if !f.set {
		panic("sim: Future.Value on pending future")
	}
	return f.value
}

// Wait blocks p until the future resolves and returns the value.
func (f *Future[T]) Wait(p *Proc) T {
	for !f.set {
		f.waiters.push(f.sim.newWaiter(p))
		p.park()
	}
	return f.value
}

// WaitTimeout is Wait with a deadline d from now; ok is false on timeout.
func (f *Future[T]) WaitTimeout(p *Proc, d Time) (v T, ok bool) {
	if f.set {
		return f.value, true
	}
	if d <= 0 {
		return v, false
	}
	deadline := p.sim.Now() + d
	for {
		w := &waiter{p: p, timed: true}
		f.waiters.push(w)
		timer := p.sim.At(deadline, func() { w.wake() })
		p.park()
		timer.Cancel()
		if f.set {
			return f.value, true
		}
		if p.sim.Now() >= deadline {
			return v, false
		}
	}
}

// Group counts outstanding work, like a sync.WaitGroup for processes.
type Group struct {
	sim     *Simulator
	n       int
	waiters wlist
}

// NewGroup returns a group with zero outstanding work.
func NewGroup(s *Simulator) *Group { return &Group{sim: s} }

// Add adds delta (which may be negative) to the counter. The counter going
// negative panics.
func (g *Group) Add(delta int) {
	g.n += delta
	if g.n < 0 {
		panic("sim: negative Group counter")
	}
	if g.n == 0 {
		g.sim.wakeAll(&g.waiters)
	}
}

// Done decrements the counter by one.
func (g *Group) Done() { g.Add(-1) }

// Wait blocks p until the counter is zero.
func (g *Group) Wait(p *Proc) {
	for g.n != 0 {
		g.waiters.push(g.sim.newWaiter(p))
		p.park()
	}
}

// Cond is a condition variable for processes: Wait parks until a later
// Signal or Broadcast. There is no associated lock — the simulation's
// single-threaded discipline replaces it — so the idiom is simply to
// re-check the guarded predicate after every Wait.
type Cond struct {
	sim     *Simulator
	waiters wlist
}

// NewCond returns a condition variable bound to s.
func NewCond(s *Simulator) *Cond { return &Cond{sim: s} }

// Wait parks p until the next Signal or Broadcast.
func (c *Cond) Wait(p *Proc) {
	c.waiters.push(c.sim.newWaiter(p))
	p.park()
}

// Signal wakes the oldest waiting process, if any.
func (c *Cond) Signal() {
	for {
		w := c.waiters.pop()
		if w == nil {
			return
		}
		woke := w.wake()
		c.sim.freeWaiter(w)
		if woke {
			return
		}
	}
}

// Broadcast wakes every waiting process with one batch-wake event; the
// waiters run back-to-back in FIFO order off the ready queue.
func (c *Cond) Broadcast() { c.sim.wakeAll(&c.waiters) }
