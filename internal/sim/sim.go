// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock over a priority queue of events.
// Protocol code runs inside coroutine-style processes (Proc): at most one
// process executes at any instant, and processes only yield at explicit
// blocking points (Sleep, Queue.Pop, Future.Wait, ...). Event ordering is a
// total order on (time, sequence number), so a simulation with a fixed seed
// is fully reproducible.
//
// The kernel is the substrate for the packet-level network simulator in
// package netsim and, transitively, for every experiment in this
// repository. Experiments schedule millions of events per figure cell, so
// the kernel recycles fired event structs on a free list instead of
// allocating one per callback; Event handles carry a generation number so
// a stale Cancel on a recycled event is a no-op.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp, measured as a duration since the start of
// the simulation.
type Time = time.Duration

// event is a scheduled callback. Fired and cancelled events return to the
// simulator's free list; gen distinguishes incarnations so that a stale
// Event handle cannot cancel an unrelated reuse.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events at the same instant
	fn  func()
	// fn2/arg1/arg2 are the closure-free form used by At2: the callback is
	// a static function and its context rides in the event struct.
	fn2        func(a1, a2 any)
	arg1, arg2 any
	gen        uint32 // incremented each time the struct is recycled
	dead       bool   // cancelled
	idx        int    // eventHeap index, -1 when popped (oracle only)
}

// eventHeap is a min-heap ordered by (at, seq). It was the production
// event queue before the timer wheel (wheel.go) and is kept as the
// executable oracle for the randomized wheel-vs-heap differential test:
// its (at, seq) total order defines the dispatch order the wheel must
// reproduce bit-for-bit.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// maxFreeEvents bounds the event free list so a burst (a figure cell's
// warm-up) does not pin memory for the rest of the run.
const maxFreeEvents = 4096

// maxFreeProcs bounds the spawn pool: exited processes beyond this many
// let their goroutines exit instead of idling for re-arm.
const maxFreeProcs = 1024

// Simulator owns the virtual clock, the event queue, and the set of live
// processes. The zero value is not usable; create one with New.
type Simulator struct {
	now         Time
	wheel       timerWheel
	seq         uint64
	rng         *rand.Rand
	yield       chan struct{} // the run token returns to the Run/Shutdown caller
	parked      *Proc         // intrusive doubly-linked list of parked procs
	readyHead   *Proc         // FIFO of woken procs awaiting their turn
	readyTail   *Proc
	freeProcs   *Proc // exited procs whose goroutines await re-arm (Spawn pool)
	npooled     int
	free        []*event // recycled event structs
	freeWaiters *waiter  // recycled wait-list nodes (see newWaiter)
	nprocs      int
	fail        error // first process failure, stops the run
	limit       Time  // 0 = no limit
	bound       Time  // precomputed per-run stop time: until, limit, or maxTime
	untilActive bool
	stopped     bool
}

// maxTime is the largest virtual timestamp; it stands in for "no bound" so
// the dispatch loop needs just one comparison per event.
const maxTime = Time(1<<63 - 1)

// New returns a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	s := &Simulator{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
	s.wheel.init()
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. It must only
// be used from event callbacks and processes (never concurrently).
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// newEvent takes an event struct off the free list (or allocates one) and
// initializes it for scheduling.
func (s *Simulator) newEvent(t Time, fn func()) *event {
	s.seq++
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.at = t
		e.seq = s.seq
		e.fn = fn
		e.dead = false
		return e
	}
	return &event{at: t, seq: s.seq, fn: fn}
}

// freeEvent recycles a fired or dead event. Bumping gen invalidates any
// outstanding Event handles; dropping fn/args releases captured references.
func (s *Simulator) freeEvent(e *event) {
	e.fn = nil
	e.fn2 = nil
	e.arg1, e.arg2 = nil, nil
	e.gen++
	if len(s.free) < maxFreeEvents {
		s.free = append(s.free, e)
	}
}

// fire advances the clock to e, recycles it, and runs its callback. The
// callback and arguments are copied out first: recycling before the call
// is safe (gen already advanced) and lets the callback schedule freely.
func (s *Simulator) fire(e *event) {
	s.now = e.at
	fn, fn2, a1, a2 := e.fn, e.fn2, e.arg1, e.arg2
	s.freeEvent(e)
	if fn2 != nil {
		fn2(a1, a2)
		return
	}
	fn()
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would violate causality. The returned Event can be cancelled.
// It is returned by value so the hot path stays allocation-free.
func (s *Simulator) At(t Time, fn func()) Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := s.newEvent(t, fn)
	s.wheel.push(e)
	return Event{e: e, gen: e.gen}
}

// After schedules fn to run d from now.
func (s *Simulator) After(d Time, fn func()) Event {
	return s.At(s.now+d, fn)
}

// At2 schedules fn(a1, a2) at absolute time t. Unlike At, the callback is
// a static function whose context rides in the event struct, so per-packet
// scheduling (link delivery, switch pipelines) allocates nothing. Pointer
// arguments convert to `any` without allocating.
func (s *Simulator) At2(t Time, fn func(a1, a2 any), a1, a2 any) Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := s.newEvent(t, nil)
	e.fn2 = fn
	e.arg1, e.arg2 = a1, a2
	s.wheel.push(e)
	return Event{e: e, gen: e.gen}
}

// Event is a handle on a scheduled callback. The generation captured at
// scheduling time makes Cancel safe to call after the event has fired and
// its struct has been recycled. The zero Event cancels as a no-op, so a
// struct field holding one needs no separate "armed" flag.
type Event struct {
	e   *event
	gen uint32
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event (or the zero Event) is a no-op.
func (ev *Event) Cancel() {
	if ev.e != nil && ev.gen == ev.e.gen {
		ev.e.dead = true
	}
}

// procFailure carries a panic out of a process goroutine.
type procFailure struct {
	proc *Proc
	val  any
}

func (f procFailure) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", f.proc.name, f.val)
}

// readyPush appends p to the ready queue: p stops being parked and will
// run, in FIFO order, before the scheduler fires any further event.
func (s *Simulator) readyPush(p *Proc) {
	s.removeParked(p)
	p.nextSched = nil
	if s.readyTail == nil {
		s.readyHead = p
	} else {
		s.readyTail.nextSched = p
	}
	s.readyTail = p
}

// readyPop unlinks and returns the oldest ready proc, or nil.
func (s *Simulator) readyPop() *Proc {
	p := s.readyHead
	if p == nil {
		return nil
	}
	s.readyHead = p.nextSched
	if s.readyHead == nil {
		s.readyTail = nil
	}
	p.nextSched = nil
	return p
}

// dispatch is the scheduler loop. The calling goroutine must hold the run
// token; it fires due events until a process becomes ready — returned to
// the caller, which transfers control to it — or the current run is done
// (nil). Ready processes run before any further event fires: an event
// that wakes several processes (wakeAll) queues them all and they execute
// back-to-back in FIFO order.
func (s *Simulator) dispatch() *Proc {
	for {
		if p := s.readyPop(); p != nil {
			return p
		}
		if s.fail != nil || s.stopped || s.wheel.n == 0 {
			return nil
		}
		e := s.wheel.popBound(s.bound)
		if e == nil {
			// The earliest event lies beyond the bound; it stays queued.
			if !s.untilActive {
				s.now = s.limit // Run hit SetLimit: clock lands on the limit
			}
			return nil
		}
		if e.dead {
			s.freeEvent(e)
			continue
		}
		s.fire(e)
	}
}

// drive drains the simulation from the caller's goroutine. If control is
// handed to a process, the caller blocks until the run token comes back —
// which only happens once the run is done, since intermediate transfers go
// process-to-process.
func (s *Simulator) drive() {
	if q := s.dispatch(); q != nil {
		q.resume <- struct{}{}
		<-s.yield
	}
}

// Run executes events until the queue is empty, the time limit (if any set
// with SetLimit) is reached, or a process panics. It returns the first
// process failure, or nil.
//
// Hitting the limit leaves the offending event in the queue, so a later
// Run or RunUntil (after raising the limit) still sees it.
//
// Processes that are still blocked when Run returns remain parked; call
// Shutdown to reap their goroutines.
func (s *Simulator) Run() error {
	s.stopped = false
	s.untilActive = false
	if s.limit > 0 {
		s.bound = s.limit
	} else {
		s.bound = maxTime
	}
	s.drive()
	return s.fail
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
// It returns the first process failure, or nil. Like Run, it honors Stop:
// a Stop call from inside an event ends the pass after that event.
func (s *Simulator) RunUntil(t Time) error {
	s.stopped = false
	s.bound = t
	s.untilActive = true
	s.drive()
	s.untilActive = false
	if s.fail == nil && t > s.now {
		s.now = t
	}
	return s.fail
}

// SetLimit makes Run stop once the clock would pass t. Zero removes the
// limit.
func (s *Simulator) SetLimit(t Time) { s.limit = t }

// Stop makes Run return after the current event. Deployments with
// periodic processes (heartbeats) never drain their event queue; a driver
// calls Stop when its workload is done.
func (s *Simulator) Stop() { s.stopped = true }

// Pending reports the number of scheduled (possibly cancelled) events.
// The wheel maintains the count, so this stays O(1).
func (s *Simulator) Pending() int { return s.wheel.n }

// LiveProcs reports the number of processes that have been spawned and have
// not yet finished.
func (s *Simulator) LiveProcs() int { return s.nprocs }

// addParked links p into the parked list.
func (s *Simulator) addParked(p *Proc) {
	p.parkNext = s.parked
	p.parkPrev = nil
	if s.parked != nil {
		s.parked.parkPrev = p
	}
	s.parked = p
	p.isParked = true
}

// removeParked unlinks p from the parked list if present.
func (s *Simulator) removeParked(p *Proc) {
	if !p.isParked {
		return
	}
	if p.parkPrev != nil {
		p.parkPrev.parkNext = p.parkNext
	} else {
		s.parked = p.parkNext
	}
	if p.parkNext != nil {
		p.parkNext.parkPrev = p.parkPrev
	}
	p.parkNext, p.parkPrev = nil, nil
	p.isParked = false
}

// Shutdown terminates every parked process and every pooled idle goroutine
// so nothing is left running. It is safe to call after Run returns —
// including a run whose last scheduler-role holder was a process; by the
// time Run returns, the run token is back with its caller. The simulator
// must not be used afterward.
func (s *Simulator) Shutdown() {
	for s.parked != nil {
		p := s.parked
		s.removeParked(p)
		p.kill = true
		p.resume <- struct{}{}
		<-s.yield
	}
	for s.freeProcs != nil {
		p := s.freeProcs
		s.freeProcs = p.nextSched
		p.nextSched = nil
		s.npooled--
		p.kill = true
		p.resume <- struct{}{}
		<-s.yield
	}
	s.fail = nil
}
