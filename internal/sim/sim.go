// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock over a priority queue of events.
// Protocol code runs inside coroutine-style processes (Proc): at most one
// process executes at any instant, and processes only yield at explicit
// blocking points (Sleep, Queue.Pop, Future.Wait, ...). Event ordering is a
// total order on (time, sequence number), so a simulation with a fixed seed
// is fully reproducible.
//
// The kernel is the substrate for the packet-level network simulator in
// package netsim and, transitively, for every experiment in this
// repository.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp, measured as a duration since the start of
// the simulation.
type Time = time.Duration

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among events at the same instant
	fn   func()
	dead bool // cancelled
	idx  int  // heap index, -1 when popped
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock, the event queue, and the set of live
// processes. The zero value is not usable; create one with New.
type Simulator struct {
	now     Time
	heap    eventHeap
	seq     uint64
	rng     *rand.Rand
	yield   chan struct{} // a parked/finished proc hands control back here
	parked  map[*Proc]struct{}
	nprocs  int
	fail    error // first process failure, stops the run
	limit   Time  // 0 = no limit
	stopped bool
}

// New returns a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{
		rng:    rand.New(rand.NewSource(seed)),
		yield:  make(chan struct{}),
		parked: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. It must only
// be used from event callbacks and processes (never concurrently).
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would violate causality. The returned Event can be cancelled.
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	e := &event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.heap, e)
	return &Event{e: e}
}

// After schedules fn to run d from now.
func (s *Simulator) After(d Time, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Event is a handle on a scheduled callback.
type Event struct{ e *event }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (ev *Event) Cancel() {
	if ev != nil && ev.e != nil {
		ev.e.dead = true
	}
}

// procFailure carries a panic out of a process goroutine.
type procFailure struct {
	proc *Proc
	val  any
}

func (f procFailure) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", f.proc.name, f.val)
}

// Run executes events until the queue is empty, the time limit (if any set
// with SetLimit) is reached, or a process panics. It returns the first
// process failure, or nil.
//
// Processes that are still blocked when Run returns remain parked; call
// Shutdown to reap their goroutines.
func (s *Simulator) Run() error {
	s.stopped = false
	for len(s.heap) > 0 && s.fail == nil && !s.stopped {
		e := heap.Pop(&s.heap).(*event)
		if e.dead {
			continue
		}
		if s.limit > 0 && e.at > s.limit {
			s.now = s.limit
			return s.fail
		}
		s.now = e.at
		e.fn()
	}
	return s.fail
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
// It returns the first process failure, or nil.
func (s *Simulator) RunUntil(t Time) error {
	for len(s.heap) > 0 && s.fail == nil {
		if s.heap[0].at > t {
			break
		}
		e := heap.Pop(&s.heap).(*event)
		if e.dead {
			continue
		}
		s.now = e.at
		e.fn()
	}
	if s.fail == nil && t > s.now {
		s.now = t
	}
	return s.fail
}

// SetLimit makes Run stop once the clock would pass t. Zero removes the
// limit.
func (s *Simulator) SetLimit(t Time) { s.limit = t }

// Stop makes Run return after the current event. Deployments with
// periodic processes (heartbeats) never drain their event queue; a driver
// calls Stop when its workload is done.
func (s *Simulator) Stop() { s.stopped = true }

// Pending reports the number of scheduled (possibly cancelled) events.
func (s *Simulator) Pending() int { return len(s.heap) }

// LiveProcs reports the number of processes that have been spawned and have
// not yet finished.
func (s *Simulator) LiveProcs() int { return s.nprocs }

// Shutdown terminates every parked process so their goroutines exit. It is
// safe to call after Run returns; the simulator must not be used afterward.
func (s *Simulator) Shutdown() {
	for len(s.parked) > 0 {
		var p *Proc
		for q := range s.parked {
			p = q
			break
		}
		delete(s.parked, p)
		p.kill = true
		p.resume <- struct{}{}
		<-s.yield
	}
	s.fail = nil
}
