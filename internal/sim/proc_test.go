package sim

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestShutdownAfterProcHeldSchedulerRole drives a run whose final
// scheduler-role holder is a process goroutine (the last event fires from
// an exiting proc's dispatch loop, which hands the run token back to the
// Run caller), then shuts down. Both the still-parked process and the
// pooled exited goroutine must be reaped without deadlock.
func TestShutdownAfterProcHeldSchedulerRole(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s)
	s.Spawn("consumer", func(p *Proc) { q.Pop(p) }) // parks forever
	s.Spawn("producer", func(p *Proc) {
		p.Sleep(ms(5)) // ensure the consumer parked first
		// Exit without pushing: this goroutine drains the (empty) heap
		// while the consumer stays parked, then yields to Run's caller.
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.LiveProcs() != 1 {
		t.Fatalf("LiveProcs = %d, want 1 (parked consumer)", s.LiveProcs())
	}
	s.Shutdown()
	if s.LiveProcs() != 0 {
		t.Fatalf("after Shutdown LiveProcs = %d, want 0", s.LiveProcs())
	}
}

// TestShutdownAfterStopFromProc stops the run from process context — the
// stopping process's own dispatch loop observes the flag and hands the
// token back — and then reaps everything.
func TestShutdownAfterStopFromProc(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s)
	for i := 0; i < 3; i++ {
		s.Spawn("stuck", func(p *Proc) { q.Pop(p) })
	}
	s.Spawn("stopper", func(p *Proc) {
		p.Sleep(ms(1))
		s.Stop()
		p.Sleep(ms(1)) // parks; its dispatch sees stopped and yields
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.LiveProcs() != 4 {
		t.Fatalf("LiveProcs = %d, want 4", s.LiveProcs())
	}
	s.Shutdown()
	if s.LiveProcs() != 0 {
		t.Fatalf("after Shutdown LiveProcs = %d, want 0", s.LiveProcs())
	}
}

// TestProcPanicMidHandoff panics a process right after it has woken
// another one (the wake event is still pending when the failure unwinds).
// The failure must be captured as a procFailure naming the panicking
// process, and Shutdown must still reap the parked peer.
func TestProcPanicMidHandoff(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s)
	s.Spawn("peer", func(p *Proc) { q.Pop(p); q.Pop(p) })
	s.Spawn("bomber", func(p *Proc) {
		p.Sleep(ms(1))
		q.Push(7) // wakes the peer's waiter: its wake event is now pending
		panic("boom")
	})
	err := s.Run()
	if err == nil {
		t.Fatal("expected failure from panicking process")
	}
	if !strings.Contains(err.Error(), "bomber") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("failure = %v, want procFailure naming bomber/boom", err)
	}
	s.Shutdown()
	if s.LiveProcs() != 0 {
		t.Fatalf("after Shutdown LiveProcs = %d, want 0", s.LiveProcs())
	}
}

// TestSpawnPoolReusesGoroutine proves the spawn pool works: a process that
// ran to completion donates its struct (and goroutine) to the next Spawn,
// and the new tenant starts with a clean slate.
func TestSpawnPoolReusesGoroutine(t *testing.T) {
	s := New(1)
	first := s.Spawn("first", func(p *Proc) {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	ran := false
	second := s.Spawn("second", func(p *Proc) {
		ran = true
		if p.Name() != "second" {
			t.Errorf("reused proc name = %q, want %q", p.Name(), "second")
		}
	})
	if second != first {
		t.Fatalf("Spawn did not reuse the pooled proc (got %p, want %p)", second, first)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("pooled proc never ran its new fn")
	}
	s.Shutdown()
}

// TestSpawnPoolNoKillLeak exercises the kill flag across pool generations:
// a simulator whose processes were killed by Shutdown must not bleed kill
// state into an unrelated simulator's pool, and within one simulator a
// pooled struct re-armed by Spawn must run (kill reset), even when the
// previous tenant's sibling was killed.
func TestSpawnPoolNoKillLeak(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s)
	s.Spawn("victim", func(p *Proc) { q.Pop(p) }) // will be killed
	s.Spawn("clean", func(p *Proc) {})            // exits, pooled
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Reuse the pooled "clean" struct before any Shutdown: must run.
	ran := 0
	s.Spawn("tenant2", func(p *Proc) { ran++ })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("pooled reuse ran %d times, want 1", ran)
	}
	// Kill the parked victim plus the pooled goroutine; everything exits.
	s.Shutdown()
	if s.LiveProcs() != 0 {
		t.Fatalf("after Shutdown LiveProcs = %d, want 0", s.LiveProcs())
	}
}

// TestShutdownReapsPooledGoroutines checks that Shutdown terminates idle
// pool goroutines, not just parked processes, so a torn-down simulator
// leaks nothing.
func TestShutdownReapsPooledGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(1)
	for i := 0; i < 8; i++ {
		s.Spawn("worker", func(p *Proc) { p.Sleep(ms(1)) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	// Goroutine exit is asynchronous after the shutdown handshake; poll.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: %d now, %d before", runtime.NumGoroutine(), before)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestCondSignalBroadcast covers the Cond primitive: Signal wakes exactly
// the oldest waiter, Broadcast wakes the rest in FIFO order, and an event
// scheduled after the Broadcast runs only once every waiter has resumed —
// the batch wake occupies the broadcaster's position in the event order.
func TestCondSignalBroadcast(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			c.Wait(p)
			order = append(order, name)
		})
	}
	s.At(ms(10), func() { c.Signal() })
	s.At(ms(20), func() {
		c.Broadcast()
		s.At(s.Now(), func() { order = append(order, "after") })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "after"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestFutureBroadcastOrder pins the batch-wake ordering contract: waiters
// resume in wait order, before any event scheduled after the Set.
func TestFutureBroadcastOrder(t *testing.T) {
	s := New(1)
	f := NewFuture[int](s)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		s.Spawn("w", func(p *Proc) {
			f.Wait(p)
			order = append(order, i)
		})
	}
	s.At(ms(5), func() {
		f.Set(1)
		s.At(s.Now(), func() { order = append(order, 99) })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 99}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
