package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// TestWheelHeapDifferential drives the timer wheel and the retained
// eventHeap oracle through a randomized schedule/cancel/drain workload
// (following the dispatch loop's discipline: the clock only advances to
// popped events or drain bounds, inserts are never in the past) and
// asserts that the wheel pops the exact same event structs in the exact
// same order the heap's (at, seq) total order defines. Delay magnitudes
// span every wheel level, so cascades, the bound cutoff, and the lazy
// per-bucket seq sort are all exercised.
func TestWheelHeapDifferential(t *testing.T) {
	const iters = 60000
	rng := rand.New(rand.NewSource(7))
	w := &timerWheel{}
	w.init()
	var h eventHeap
	var seq uint64
	var now Time
	var live []*event
	scheduled, popped, cancelled := 0, 0, 0

	// Delay scales: same-instant wakes through multi-hour timers, one per
	// wheel level and then some.
	scales := []Time{0, 1, 63, 1 << 6, 1 << 12, 1 << 18, 1 << 24, 1 << 30,
		1 << 36, 1 << 42, 1 << 50, Time(3 * time.Hour)}

	delta := func() Time {
		s := scales[rng.Intn(len(scales))]
		if s == 0 {
			return 0
		}
		return s + Time(rng.Int63n(int64(s)+1))
	}
	push := func() {
		seq++
		e := &event{at: now + delta(), seq: seq}
		w.push(e)
		heap.Push(&h, e)
		live = append(live, e)
		scheduled++
	}
	// popOne pops both structures and cross-checks; reports ok=false when
	// the wheel says nothing is due by bound.
	popOne := func(bound Time) bool {
		we := w.popBound(bound)
		if we == nil {
			if h.Len() > 0 && h[0].at <= bound {
				t.Fatalf("wheel dry at bound %d, heap still holds (at=%d seq=%d)",
					bound, h[0].at, h[0].seq)
			}
			return false
		}
		he := heap.Pop(&h).(*event)
		if we != he {
			t.Fatalf("pop mismatch: wheel (at=%d seq=%d dead=%v) vs heap (at=%d seq=%d dead=%v)",
				we.at, we.seq, we.dead, he.at, he.seq, he.dead)
		}
		if we.at > bound {
			t.Fatalf("wheel popped at=%d beyond bound %d", we.at, bound)
		}
		now = we.at
		popped++
		return true
	}

	for i := 0; i < iters; i++ {
		switch r := rng.Float64(); {
		case r < 0.55: // schedule a burst
			for k := rng.Intn(4) + 1; k > 0; k-- {
				push()
			}
		case r < 0.65: // cancel something (dead events still pop in order)
			if len(live) > 0 {
				live[rng.Intn(len(live))].dead = true
				cancelled++
			}
		case r < 0.85: // unbounded drain of a few events
			for k := rng.Intn(6) + 1; k > 0 && popOne(maxTime); k-- {
			}
		default: // bounded drain, mimicking RunUntil: clock lands on the bound
			bound := now + delta()
			for popOne(bound) {
			}
			now = bound
		}
		if w.n != h.Len() {
			t.Fatalf("iter %d: wheel count %d != heap len %d", i, w.n, h.Len())
		}
	}
	for popOne(maxTime) {
	}
	if w.n != 0 || h.Len() != 0 {
		t.Fatalf("final drain left wheel=%d heap=%d", w.n, h.Len())
	}
	if popped != scheduled {
		t.Fatalf("popped %d of %d scheduled", popped, scheduled)
	}
	t.Logf("differential: %d scheduled, %d popped, %d cancelled over %d iterations",
		scheduled, popped, cancelled, iters)
	if total := scheduled + popped + cancelled; total < 100000 {
		t.Fatalf("workload too small for the differential claim: %d ops", total)
	}
}

// TestWheelSameInstantSeqOrder forces the cascade-after-direct-insert
// inversion: an old small-seq event parked in a coarse bucket must still
// pop before a newer event at the same timestamp that was filed directly
// into the level-0 bucket.
func TestWheelSameInstantSeqOrder(t *testing.T) {
	w := &timerWheel{}
	w.init()
	const T = Time(1<<18 + 37)
	early := &event{at: T, seq: 1} // filed coarse: cur is 0
	w.push(early)
	mid := &event{at: T - 100, seq: 2}
	w.push(mid)
	// Drain up to T-1: cascades both events toward level 0 and pops mid,
	// leaving `early` resident in the level-0 bucket for T.
	if e := w.popBound(T - 1); e != mid {
		t.Fatalf("expected mid event first, got %+v", e)
	}
	if e := w.popBound(T - 1); e != nil {
		t.Fatalf("expected nothing else before T, got %+v", e)
	}
	late := &event{at: T, seq: 3}
	w.push(late)
	if e := w.popBound(T); e != early {
		t.Fatalf("expected seq 1 before seq 3 at the shared instant, got seq %d", e.seq)
	}
	if e := w.popBound(T); e != late {
		t.Fatalf("expected seq 3 second, got %+v", e)
	}
	if w.n != 0 {
		t.Fatalf("wheel not empty: %d", w.n)
	}
}

// TestWheelFarFutureBound checks that a bound-limited scan against a far
// event neither pops it nor advances the cursor past the bound, so later
// inserts between now and the event stay schedulable.
func TestWheelFarFutureBound(t *testing.T) {
	w := &timerWheel{}
	w.init()
	far := &event{at: Time(time.Hour), seq: 1}
	w.push(far)
	if e := w.popBound(Time(time.Millisecond)); e != nil {
		t.Fatalf("bound-limited pop returned %+v", e)
	}
	if w.cur > Time(time.Millisecond) {
		t.Fatalf("cursor %d advanced past the bound", w.cur)
	}
	near := &event{at: Time(2 * time.Millisecond), seq: 2}
	w.push(near) // must not panic: cursor stayed at or below the bound
	if e := w.popBound(maxTime); e != near {
		t.Fatalf("expected near event first, got seq %d", e.seq)
	}
	if e := w.popBound(maxTime); e != far {
		t.Fatalf("expected far event second, got %+v", e)
	}
}

// TestWheelMinAtBound checks the minAt lower bound wakeAll relies on: it
// must never exceed the true minimum, and must go back to maxTime when
// the wheel drains.
func TestWheelMinAtBound(t *testing.T) {
	w := &timerWheel{}
	w.init()
	if w.minAt != maxTime {
		t.Fatalf("empty wheel minAt = %d", w.minAt)
	}
	evs := []*event{
		{at: 5, seq: 1}, {at: 5, seq: 2}, {at: 700, seq: 3}, {at: Time(time.Second), seq: 4},
	}
	for _, e := range evs {
		w.push(e)
	}
	for _, want := range evs {
		if w.minAt > want.at {
			t.Fatalf("minAt %d exceeds pending minimum %d", w.minAt, want.at)
		}
		if e := w.popBound(maxTime); e != want {
			t.Fatalf("expected seq %d, got seq %d", want.seq, e.seq)
		}
	}
	if w.minAt != maxTime {
		t.Fatalf("drained wheel minAt = %d", w.minAt)
	}
}
