package sim

import (
	"testing"
	"time"
)

func TestResourceSerializesFIFO(t *testing.T) {
	s := New(1)
	r := NewResource(s)
	var done []struct {
		name string
		at   Time
	}
	use := func(name string, arrive, demand Time) {
		s.Spawn(name, func(p *Proc) {
			p.Sleep(arrive)
			r.Use(p, demand)
			done = append(done, struct {
				name string
				at   Time
			}{name, p.Now()})
		})
	}
	use("a", 0, ms(10))
	use("b", ms(1), ms(10)) // queues behind a
	use("c", ms(25), ms(5)) // arrives after idle gap
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 {
		t.Fatalf("completions = %d", len(done))
	}
	if done[0].name != "a" || done[0].at != ms(10) {
		t.Fatalf("a done at %v", done[0].at)
	}
	if done[1].name != "b" || done[1].at != ms(20) {
		t.Fatalf("b done at %v (should queue behind a)", done[1].at)
	}
	if done[2].name != "c" || done[2].at != ms(30) {
		t.Fatalf("c done at %v (idle resource serves immediately)", done[2].at)
	}
	if r.BusyTime() != ms(25) {
		t.Fatalf("BusyTime = %v, want 25ms", r.BusyTime())
	}
}

func TestResourceZeroDemandIsFree(t *testing.T) {
	s := New(1)
	r := NewResource(s)
	var at Time
	s.Spawn("z", func(p *Proc) {
		r.Use(p, 0)
		r.Use(p, -time.Second)
		at = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 0 || r.BusyTime() != 0 {
		t.Fatalf("zero demand consumed time: at=%v busy=%v", at, r.BusyTime())
	}
}

func BenchmarkEventScheduling(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.After(Time(i), func() {})
		if i%4096 == 4095 {
			if err := s.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkProcSleepSwitch(b *testing.B) {
	s := New(1)
	n := b.N
	s.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	s := New(1)
	q := NewQueue[int](s)
	n := b.N
	s.Spawn("consumer", func(p *Proc) {
		for i := 0; i < n; i++ {
			q.Pop(p)
		}
	})
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < n; i++ {
			q.Push(i)
			if i%64 == 63 {
				p.Sleep(0)
			}
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
