package sim

// Proc is a simulation process: a goroutine that runs protocol code under
// the virtual clock. The kernel guarantees that at most one process (or
// event callback) executes at a time, so process code needs no locking and
// the simulation stays deterministic.
//
// Control transfer is direct handoff: the scheduler is a *role*, not a
// goroutine. Whichever goroutine just ran out of work — a parking process,
// an exiting process, or the Run caller — drains the event heap itself
// (Simulator.dispatch) and hands the run token straight to the next
// runnable process with a single channel send, instead of bouncing every
// park/unpark through a dedicated scheduler goroutine. A process whose own
// wake event fires while it is draining the heap resumes with zero channel
// operations. See DESIGN.md §11 for the state machine.
//
// A Proc may only block through the primitives in this package (Sleep,
// Queue.Pop, Future.Wait, Cond.Wait, ...). Blocking on ordinary Go channels
// from inside a process would stall the whole simulation.
type Proc struct {
	sim    *Simulator
	name   string
	resume chan struct{} // a send transfers the run token to this proc
	fn     func(p *Proc) // current body; rebound on reuse from the free pool
	wakeFn func()        // pre-bound p.enqueue, shared by every Sleep/wake
	kill   bool          // set by Shutdown: next resume must unwind and die

	// Intrusive membership in the simulator's parked list.
	parkNext *Proc
	parkPrev *Proc
	isParked bool

	// nextSched links this proc into exactly one of: the ready queue, a
	// pending batch-wake chain (wakeAll), or the spawn free pool. The
	// three states are mutually exclusive — ready and wake-chain procs are
	// alive, pooled procs have exited.
	nextSched *Proc
}

// killed is the panic value used to unwind a process during Shutdown.
type killed struct{}

// Spawn starts fn as a new process. fn begins executing at the current
// virtual time, after the currently running event or process yields. The
// name is used in failure reports only.
//
// Finished processes park their goroutine in a simulator-owned free pool;
// a Spawn that can reuse one re-arms it with the new fn instead of
// creating a goroutine and channel, so per-request/per-connection process
// churn is allocation-free in steady state.
func (s *Simulator) Spawn(name string, fn func(p *Proc)) *Proc {
	s.nprocs++
	p := s.freeProcs
	if p != nil {
		s.freeProcs = p.nextSched
		s.npooled--
		p.nextSched = nil
		p.name = name
		p.fn = fn
		p.kill = false // a fresh tenant never inherits a pending kill
	} else {
		p = &Proc{sim: s, name: name, resume: make(chan struct{}), fn: fn}
		p.wakeFn = p.enqueue
		go p.run()
	}
	s.After(0, p.wakeFn)
	return p
}

// run is the body of a process goroutine. It outlives individual Spawns:
// after fn returns, the goroutine returns its Proc to the simulator's free
// pool, keeps driving the scheduler loop until it can hand the run token
// away, and then blocks until a future Spawn re-arms it (or Shutdown kills
// it). If its own next incarnation becomes ready while it is still
// draining the heap, it runs the new fn directly without any channel ops.
func (p *Proc) run() {
	s := p.sim
	armed := false // true when we already hold the run token (self-handoff)
	for {
		if !armed {
			<-p.resume
		}
		armed = false
		if p.kill {
			// Killed while idle in the pool: acknowledge Shutdown and die.
			s.yield <- struct{}{}
			return
		}
		p.body()
		s.nprocs--
		p.fn = nil
		if p.kill {
			// killed{} unwound the body: hand the token back to Shutdown.
			s.yield <- struct{}{}
			return
		}
		pooled := false
		if p.isParked {
			// The body was unwound by a panic while parked (an event fired
			// from this goroutine's scheduler loop panicked). A stale wake
			// event in the heap may still reference p, so it cannot be
			// reused: unlink it and let the goroutine exit below.
			s.removeParked(p)
		} else if s.npooled < maxFreeProcs {
			p.nextSched = s.freeProcs
			s.freeProcs = p
			s.npooled++
			pooled = true
		}
		// The goroutine still holds the scheduler role: keep the run going.
		q := s.dispatch()
		if q == p {
			// Our own struct was re-armed by a Spawn fired from this very
			// dispatch loop; stay hot and run the next tenant directly.
			armed = true
			continue
		}
		if q != nil {
			q.resume <- struct{}{}
		} else {
			s.yield <- struct{}{}
		}
		if !pooled {
			return
		}
	}
}

// body runs the process function, converting a panic into the simulation's
// first failure. The killed{} unwind used by Shutdown is not a failure.
func (p *Proc) body() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killed); !ok && p.sim.fail == nil {
				p.sim.fail = procFailure{proc: p, val: r}
			}
		}
	}()
	p.fn(p)
}

// Sim returns the simulator the process runs under.
func (p *Proc) Sim() *Simulator { return p.sim }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.Now() }

// park suspends the process. The calling goroutine takes over the
// scheduler role and drains the event heap; if an event marks this very
// process ready again, park returns with zero channel operations.
// Otherwise the goroutine hands the run token to the next runnable process
// (or back to the Run caller when the run is done) and blocks until some
// later scheduler-role holder pops it from the ready queue.
func (p *Proc) park() {
	s := p.sim
	s.addParked(p)
	if q := s.dispatch(); q != p {
		if q != nil {
			q.resume <- struct{}{}
		} else {
			s.yield <- struct{}{}
		}
		<-p.resume
	}
	if p.kill {
		panic(killed{})
	}
}

// enqueue moves the process from parked to the tail of the ready queue. It
// is the pre-bound callback behind every Sleep timer and waiter wake, so
// waking stays allocation-free.
func (p *Proc) enqueue() { p.sim.readyPush(p) }

// Sleep suspends the process for d of virtual time. A non-positive d still
// yields, resuming at the current instant after already-scheduled events.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.sim.After(d, p.wakeFn)
	p.park()
}

// waiter tracks a single blocking wait that can be woken by exactly one of
// several sources (a value arriving, a timeout firing, ...). Waiters link
// into intrusive wait lists through next and recycle through the
// simulator's free list, so steady-state blocking allocates nothing.
type waiter struct {
	p     *Proc
	fired bool
	timed bool    // a deadline timer closure may still hold this waiter
	next  *waiter // wait-list / free-list link
}

// newWaiter takes a waiter off the free list, or allocates one.
func (s *Simulator) newWaiter(p *Proc) *waiter {
	if w := s.freeWaiters; w != nil {
		s.freeWaiters = w.next
		w.p, w.fired, w.next = p, false, nil
		return w
	}
	return &waiter{p: p}
}

// freeWaiter recycles a waiter that has been popped from its wait list and
// is referenced by nothing else. Timed waiters are left to the garbage
// collector: the deadline timer armed for them captures the waiter, and a
// stale timer firing must find fired=true, not a recycled waiter.
func (s *Simulator) freeWaiter(w *waiter) {
	if w.timed {
		return
	}
	w.p = nil
	w.next = s.freeWaiters
	s.freeWaiters = w
}

// wlist is a FIFO of waiters, linked intrusively through waiter.next.
type wlist struct {
	head, tail *waiter
}

func (l *wlist) push(w *waiter) {
	if l.tail == nil {
		l.head = w
	} else {
		l.tail.next = w
	}
	l.tail = w
}

// pop unlinks and returns the oldest waiter, or nil.
func (l *wlist) pop() *waiter {
	w := l.head
	if w != nil {
		l.head = w.next
		if l.head == nil {
			l.tail = nil
		}
		w.next = nil
	}
	return w
}

// wake resumes the waiting process if nothing woke it yet. It must be
// called from event context. It reports whether this call did the waking.
func (w *waiter) wake() bool {
	if w.fired {
		return false
	}
	w.fired = true
	w.p.sim.After(0, w.p.wakeFn)
	return true
}

// wakeAll fires every un-fired waiter on l in one pass: the waiting
// processes are chained through nextSched and a single event moves the
// whole chain to the ready queue in FIFO order. A broadcast that used to
// schedule one wake event per waiter (multicast ack fan-in, Queue.Close,
// Cond.Broadcast) now schedules exactly one, and the woken processes run
// back-to-back — same order as the per-waiter events produced, since
// those occupied consecutive sequence numbers that nothing could
// interleave with.
//
// When no pending event can fire at the current instant (wheel.minAt is
// past now), even that one event is skipped: the chain event would carry
// the largest sequence number at now, so it would be dispatched next in
// any case, and the chain goes straight onto the ready queue. The order
// is identical either way — procs only ever become ready through events,
// so anything that could interleave is itself an event with a larger
// sequence number, firing after the elided chain event would have. If an
// event at or before now is pending (minAt ≤ now), it may be an earlier
// batch wake that must ready its procs first, so the event path is kept.
func (s *Simulator) wakeAll(l *wlist) {
	var head, tail *Proc
	for w := l.pop(); w != nil; w = l.pop() {
		if !w.fired {
			w.fired = true
			if tail == nil {
				head = w.p
			} else {
				tail.nextSched = w.p
			}
			tail = w.p
		}
		s.freeWaiter(w)
	}
	if head == nil {
		return
	}
	tail.nextSched = nil
	if s.wheel.minAt > s.now {
		wakeChain(head, nil)
		return
	}
	s.At2(s.now, wakeChain, head, nil)
}

// wakeChain is the static batch-wake callback: it readies every proc in
// the chain built by wakeAll, preserving FIFO order.
func wakeChain(a1, _ any) {
	p := a1.(*Proc)
	s := p.sim
	for p != nil {
		next := p.nextSched
		p.nextSched = nil
		s.readyPush(p)
		p = next
	}
}
