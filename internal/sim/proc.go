package sim

// Proc is a simulation process: a goroutine that runs protocol code under
// the virtual clock. The kernel guarantees that at most one process (or
// event callback) executes at a time, so process code needs no locking and
// the simulation stays deterministic.
//
// A Proc may only block through the primitives in this package (Sleep,
// Queue.Pop, Future.Wait, Cond.Wait, ...). Blocking on ordinary Go channels
// from inside a process would stall the whole simulation.
type Proc struct {
	sim      *Simulator
	name     string
	resume   chan struct{}
	unparkFn func() // pre-bound p.unpark, shared by every Sleep/wake
	kill     bool   // set by Shutdown: unpark with a request to die

	// Intrusive membership in the simulator's parked list.
	parkNext *Proc
	parkPrev *Proc
	isParked bool
}

// killed is the panic value used to unwind a process during Shutdown.
type killed struct{}

// Spawn starts fn as a new process. fn begins executing at the current
// virtual time, after the currently running event or process yields. The
// name is used in failure reports only.
func (s *Simulator) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	p.unparkFn = p.unpark
	s.nprocs++
	go func() {
		<-p.resume // wait for the scheduler to hand us control
		defer func() {
			s.nprocs--
			if r := recover(); r != nil {
				if _, ok := r.(killed); !ok && s.fail == nil {
					s.fail = procFailure{proc: p, val: r}
				}
			}
			s.yield <- struct{}{}
		}()
		if p.kill {
			panic(killed{})
		}
		fn(p)
	}()
	s.After(0, p.unparkFn)
	return p
}

// Sim returns the simulator the process runs under.
func (p *Proc) Sim() *Simulator { return p.sim }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.Now() }

// park suspends the process and returns control to the scheduler. It
// returns when some event calls unpark.
func (p *Proc) park() {
	p.sim.addParked(p)
	p.sim.yield <- struct{}{}
	<-p.resume
	if p.kill {
		panic(killed{})
	}
}

// unpark resumes a parked process and blocks the scheduler until the
// process parks again or finishes. Must be called from event context.
func (p *Proc) unpark() {
	p.sim.removeParked(p)
	p.resume <- struct{}{}
	<-p.sim.yield
}

// Sleep suspends the process for d of virtual time. A non-positive d still
// yields, resuming at the current instant after already-scheduled events.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.sim.After(d, p.unparkFn)
	p.park()
}

// waiter tracks a single blocking wait that can be woken by exactly one of
// several sources (a value arriving, a timeout firing, ...). Waiters link
// into intrusive wait lists through next and recycle through the
// simulator's free list, so steady-state blocking allocates nothing.
type waiter struct {
	p     *Proc
	fired bool
	timed bool    // a deadline timer closure may still hold this waiter
	next  *waiter // wait-list / free-list link
}

// newWaiter takes a waiter off the free list, or allocates one.
func (s *Simulator) newWaiter(p *Proc) *waiter {
	if w := s.freeWaiters; w != nil {
		s.freeWaiters = w.next
		w.p, w.fired, w.next = p, false, nil
		return w
	}
	return &waiter{p: p}
}

// freeWaiter recycles a waiter that has been popped from its wait list and
// is referenced by nothing else. Timed waiters are left to the garbage
// collector: the deadline timer armed for them captures the waiter, and a
// stale timer firing must find fired=true, not a recycled waiter.
func (s *Simulator) freeWaiter(w *waiter) {
	if w.timed {
		return
	}
	w.p = nil
	w.next = s.freeWaiters
	s.freeWaiters = w
}

// wlist is a FIFO of waiters, linked intrusively through waiter.next.
type wlist struct {
	head, tail *waiter
}

func (l *wlist) push(w *waiter) {
	if l.tail == nil {
		l.head = w
	} else {
		l.tail.next = w
	}
	l.tail = w
}

// pop unlinks and returns the oldest waiter, or nil.
func (l *wlist) pop() *waiter {
	w := l.head
	if w != nil {
		l.head = w.next
		if l.head == nil {
			l.tail = nil
		}
		w.next = nil
	}
	return w
}

// wake resumes the waiting process if nothing woke it yet. It must be
// called from event context. It reports whether this call did the waking.
func (w *waiter) wake() bool {
	if w.fired {
		return false
	}
	w.fired = true
	w.p.sim.After(0, w.p.unparkFn)
	return true
}
