package sim

// Resource models a serially-shared service center (a node's CPU, a
// disk): requests are served FIFO in arrival order, one at a time. It
// uses the virtual-queue formulation: a user arriving at time t with
// demand d is served during [max(t, busyUntil), max(t, busyUntil)+d].
type Resource struct {
	s         *Simulator
	busyUntil Time
	busyTotal Time
}

// NewResource returns an idle resource clocked by s.
func NewResource(s *Simulator) *Resource { return &Resource{s: s} }

// Use blocks p while it queues for and consumes d of service time.
// A zero or negative demand returns immediately without queueing.
func (r *Resource) Use(p *Proc, d Time) {
	if d <= 0 {
		return
	}
	now := r.s.Now()
	start := r.busyUntil
	if start < now {
		start = now
	}
	r.busyUntil = start + d
	r.busyTotal += d
	p.Sleep(r.busyUntil - now)
}

// BusyTime returns the total service time consumed (utilization
// accounting).
func (r *Resource) BusyTime() Time { return r.busyTotal }
