package sim

import (
	"testing"
	"time"
)

// BenchmarkEventChurn measures the cost of scheduling and firing one event:
// the At → heap → pop → callback → free-list round trip. With the event
// pool this settles to zero steady-state allocations.
func BenchmarkEventChurn(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, func() {})
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventChurnDeep keeps a deep heap (1k pending events) while
// churning, so pop cost includes realistic sift-down work.
func BenchmarkEventChurnDeep(b *testing.B) {
	s := New(1)
	for i := 0; i < 1024; i++ {
		s.After(time.Hour, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, func() {})
		if err := s.RunUntil(s.Now() + time.Microsecond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSleepWake measures one Sleep round trip of a process: timer
// event, two channel handoffs, park-list insert/remove. The pre-bound
// unpark callback removes the closure allocation this path used to pay.
func BenchmarkSleepWake(b *testing.B) {
	s := New(1)
	done := false
	s.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
		done = true
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	if !done {
		b.Fatal("sleeper did not finish")
	}
}

// BenchmarkQueueHandoff measures a producer/consumer pair exchanging one
// item per iteration through a Queue — the shape of every socket recv in
// the network stack.
func BenchmarkQueueHandoff(b *testing.B) {
	s := New(1)
	q := NewQueue[int](s)
	s.Spawn("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			if _, ok := q.Pop(p); !ok {
				b.Error("queue closed early")
				return
			}
		}
	})
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Push(i)
			p.Sleep(0)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCancelledTimers measures schedule+cancel churn — the pattern of
// every PopTimeout/WaitTimeout deadline that does not fire.
func BenchmarkCancelledTimers(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := s.After(time.Microsecond, func() { b.Error("cancelled timer fired") })
		ev.Cancel()
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
