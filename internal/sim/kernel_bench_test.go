package sim

import (
	"testing"
	"time"
)

// BenchmarkEventChurn measures the cost of scheduling and firing one event:
// the At → heap → pop → callback → free-list round trip. With the event
// pool this settles to zero steady-state allocations.
func BenchmarkEventChurn(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, func() {})
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventChurnDeep keeps a deep heap (1k pending events) while
// churning, so pop cost includes realistic sift-down work.
func BenchmarkEventChurnDeep(b *testing.B) {
	s := New(1)
	for i := 0; i < 1024; i++ {
		s.After(time.Hour, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, func() {})
		if err := s.RunUntil(s.Now() + time.Microsecond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSleepWake measures one Sleep round trip of a process: timer
// event plus park-list insert/remove. With direct handoff a lone sleeper
// drains its own wake event and resumes without any channel operation, so
// this should sit close to EventChurn rather than paying two goroutine
// switches per sleep.
func BenchmarkSleepWake(b *testing.B) {
	s := New(1)
	done := false
	s.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
		done = true
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	if !done {
		b.Fatal("sleeper did not finish")
	}
}

// BenchmarkQueueHandoff measures a producer/consumer pair exchanging one
// item per iteration through a Queue — the shape of every socket recv in
// the network stack.
func BenchmarkQueueHandoff(b *testing.B) {
	s := New(1)
	q := NewQueue[int](s)
	s.Spawn("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			if _, ok := q.Pop(p); !ok {
				b.Error("queue closed early")
				return
			}
		}
	})
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Push(i)
			p.Sleep(0)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcChurn measures a full spawn→run→exit cycle — the shape of
// per-request handler processes (rpc-handle, 2pc, qread). With the spawn
// pool the steady state re-arms a parked goroutine instead of creating a
// goroutine and channel per cycle, and allocates nothing.
func BenchmarkProcChurn(b *testing.B) {
	s := New(1)
	done := 0
	child := func(q *Proc) { done++ }
	s.Spawn("driver", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			s.Spawn("child", child)
			p.Sleep(time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	if done != b.N {
		b.Fatalf("ran %d of %d children", done, b.N)
	}
}

// BenchmarkBroadcastWake measures one event waking a fan of processes at
// once (multicast ack fan-in, Cond.Broadcast): a single batch-wake event
// queues all waiters on the ready queue and they run back-to-back.
// Reported ns/op covers one broadcast plus all 16 waiter round trips.
func BenchmarkBroadcastWake(b *testing.B) {
	const fan = 16
	s := New(1)
	c := NewCond(s)
	woke := 0
	for i := 0; i < fan; i++ {
		s.Spawn("waiter", func(p *Proc) {
			for j := 0; j < b.N; j++ {
				c.Wait(p)
				woke++
			}
		})
	}
	s.Spawn("caster", func(p *Proc) {
		for j := 0; j < b.N; j++ {
			p.Sleep(time.Microsecond) // let every waiter re-park
			c.Broadcast()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	if woke != fan*b.N {
		b.Fatalf("woke %d of %d waits", woke, fan*b.N)
	}
}

// BenchmarkCancelledTimers measures schedule+cancel churn — the pattern of
// every PopTimeout/WaitTimeout deadline that does not fire.
func BenchmarkCancelledTimers(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := s.After(time.Microsecond, func() { b.Error("cancelled timer fired") })
		ev.Cancel()
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
