package sim

import (
	"fmt"
	"math/bits"
	"slices"
)

// This file implements the kernel's event queue as a hierarchical timer
// wheel. The binary heap it replaced (eventHeap, kept in sim.go as the
// differential-test oracle) made every schedule and dispatch O(log n) in
// the pending-event count; DESIGN.md §11.6 measured its sift work at
// ~54% of flat CPU in a figure sweep. The wheel makes both operations
// O(1) amortized: an insert is two shifts, a bitmap OR and an append; a
// pop is two TrailingZeros scans and a slice index.
//
// Shape: wheelLevels levels of wheelSlots buckets each. Level L buckets
// span 2^(6L) ns of virtual time, so level 0 buckets hold exactly one
// timestamp and the top level spans the full 63-bit Time range. An event
// at absolute time t files under the level of the highest 6-bit field in
// which t differs from the wheel cursor `cur`, at index (t >> 6L) & 63 —
// absolute indexing, no modular wrap. Far-future events sit in coarse
// buckets until dispatch reaches them, then cascade toward level 0, each
// re-filing strictly downward (after the cursor advances to the bucket's
// start, the remaining difference is confined to lower fields), so every
// event cascades at most wheelLevels-1 times over its lifetime.
//
// Determinism: dispatch order must stay bit-identical to the heap's
// total order on (at, seq). Two facts make the scan order-correct:
//
//   - cur is a lower bound on every scheduled event's time. It only
//     advances to the start of the bucket holding the current minimum
//     (and only when that start is within the run's bound, so user code
//     never observes cur > now and causality keeps inserts at or after
//     it). Under that invariant an event's level strictly identifies the
//     highest field where it exceeds cur, hence the lowest non-empty
//     level's lowest-index bucket always holds the global minimum.
//   - Within a level-0 bucket all events share one timestamp and only
//     seq orders them. Direct inserts arrive in seq order, but a cascade
//     can drop an older (smaller-seq) event into a bucket after a newer
//     direct insert, so buckets sort by seq lazily on first pop after
//     going out of order.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64 buckets per level
	wheelMask   = wheelSlots - 1
	wheelLevels = 11 // 6*11 = 66 bits ≥ the 63-bit Time range
)

// wheelBucket is one slot's event list. head and unsorted are only
// meaningful at level 0, where buckets are drained in place: events[:head]
// have been popped, events[head:] are pending, and unsorted marks a
// cascade having broken seq order. Capacity is reused across activations.
type wheelBucket struct {
	events   []*event
	head     int
	unsorted bool
}

// timerWheel is the simulator's event queue.
type timerWheel struct {
	// next caches the earliest event outside any bucket. The kernel's
	// dominant pattern — schedule one timer, pop it moments later
	// (Sleep, packet delivery) — then costs a pointer swap instead of a
	// bucket round trip and cascade. Invariant: when non-nil, next
	// orders before every bucket event, and the cursor has not moved
	// since next was filed (popping buckets is what advances it), so a
	// displaced next can always re-file legally.
	next *event
	// cur is the scan cursor: a lower bound on every scheduled event's
	// timestamp. All bitmap indices are interpreted relative to its
	// high-order fields.
	cur Time
	// n counts scheduled events (including next and cancelled ones still
	// awaiting their pop) — the same semantics len(heap) had, so
	// Pending() is O(1).
	n int
	// minAt is a conservative lower bound on the earliest pending event
	// (maxTime when empty). wakeAll uses minAt > now as a cheap proof
	// that no event can fire at the current instant, and push uses
	// e.at < minAt as a cheap proof that e is the new minimum.
	minAt Time
	// summary bit L is set iff occupied[L] != 0; occupied[L] bit i is set
	// iff buckets[L][i] holds events.
	summary  uint32
	occupied [wheelLevels]uint64
	buckets  [wheelLevels][wheelSlots]wheelBucket
}

func (w *timerWheel) init() { w.minAt = maxTime }

// level returns the wheel level for an event at absolute time t: the
// 6-bit field of the highest bit in which t differs from the cursor
// (level 0 when t equals the cursor's 64 ns window).
func (w *timerWheel) level(t Time) int {
	return (63 - bits.LeadingZeros64(uint64(t^w.cur))) / wheelBits
}

// push files e, parking it in the front cache when it is provably the new
// minimum: the buckets are empty, e beats the conservative minAt bound, or
// e beats the cached minimum directly (which then re-files into the
// buckets — legal because the cursor never moves while the cache is
// occupied). Everything else goes through pushBucket.
func (w *timerWheel) push(e *event) {
	if nx := w.next; nx == nil {
		if e.at < w.minAt || w.summary == 0 {
			w.next = e
			w.n++
			if e.at < w.minAt {
				w.minAt = e.at
			}
			return
		}
	} else if e.at < nx.at {
		w.next = e
		if e.at < w.minAt {
			w.minAt = e.at
		}
		e = nx // pushBucket's count covers the net one-event growth
	}
	w.pushBucket(e)
}

// pushBucket files e into its bucket. Scheduling before the cursor would
// break the scan-order invariant; causality (At panics on t < now) plus the
// bounded cursor advance make it unreachable, so it is a hard failure.
func (w *timerWheel) pushBucket(e *event) {
	if e.at < w.cur {
		panic(fmt.Sprintf("sim: wheel insert at %v before cursor %v", e.at, w.cur))
	}
	lvl := w.level(e.at)
	idx := int(e.at>>(uint(lvl)*wheelBits)) & wheelMask
	b := &w.buckets[lvl][idx]
	if lvl == 0 {
		if n := len(b.events); n > b.head && e.seq < b.events[n-1].seq {
			b.unsorted = true // an older event cascaded in after newer inserts
		}
	}
	b.events = append(b.events, e)
	w.occupied[lvl] |= 1 << idx
	w.summary |= 1 << lvl
	w.n++
	if e.at < w.minAt {
		w.minAt = e.at
	}
}

// bucketStart returns the absolute time at which bucket idx of level lvl
// begins: the cursor's fields above lvl, idx in field lvl, zeros below.
// At the top level the shifted mask overflows to "keep nothing", which is
// exactly right.
func (w *timerWheel) bucketStart(lvl, idx int) Time {
	shift := uint(lvl) * wheelBits
	return Time(uint64(w.cur)&^(uint64(1)<<(shift+wheelBits)-1) | uint64(idx)<<shift)
}

// popBound removes and returns the earliest event if its time is at most
// bound, cascading coarse buckets toward level 0 as needed. It returns
// nil — leaving the queue untouched beyond already-safe cursor advances —
// when the wheel is empty or the earliest event lies beyond bound. The
// front cache, when occupied, IS the minimum, so the common case is a
// pointer swap with no bucket traffic at all.
func (w *timerWheel) popBound(bound Time) *event {
	if e := w.next; e != nil {
		if e.at > bound {
			return nil
		}
		w.next = nil
		w.n--
		w.refreshMin()
		return e
	}
	return w.popBucket(bound)
}

// popBucket is the bucket-scan slow path of popBound: it finds the lowest
// pending bucket via the occupancy bitmaps, cascading coarse levels toward
// level 0 until the minimum sits in a single-timestamp bucket.
func (w *timerWheel) popBucket(bound Time) *event {
	for {
		if w.summary == 0 {
			return nil
		}
		lvl := bits.TrailingZeros32(w.summary)
		idx := bits.TrailingZeros64(w.occupied[lvl])
		if lvl > 0 {
			start := w.bucketStart(lvl, idx)
			if start > bound {
				return nil
			}
			w.cascade(lvl, idx, start)
			continue
		}
		// Level 0: the bucket holds exactly the events at time t.
		t := w.cur&^Time(wheelMask) | Time(idx)
		if t > bound {
			return nil
		}
		b := &w.buckets[0][idx]
		if b.unsorted {
			slices.SortFunc(b.events[b.head:], func(a, c *event) int {
				if a.seq < c.seq {
					return -1
				}
				return 1
			})
			b.unsorted = false
		}
		e := b.events[b.head]
		b.events[b.head] = nil
		b.head++
		if b.head == len(b.events) {
			b.events = b.events[:0]
			b.head = 0
			w.occupied[0] &^= 1 << idx
			if w.occupied[0] == 0 {
				w.summary &^= 1
			}
		}
		w.n--
		w.refreshMin()
		return e
	}
}

// cascade redistributes bucket (lvl, idx) after advancing the cursor to
// its start. Every event re-files at a strictly lower level: with the
// cursor now sharing fields lvl and above with each event, their highest
// differing field is below lvl.
func (w *timerWheel) cascade(lvl, idx int, start Time) {
	w.cur = start
	w.occupied[lvl] &^= 1 << idx
	if w.occupied[lvl] == 0 {
		w.summary &^= 1 << lvl
	}
	b := &w.buckets[lvl][idx]
	evs := b.events
	b.events = b.events[:0]
	w.n -= len(evs) // pushBucket re-counts
	for i, e := range evs {
		// pushBucket, not push: diverting the minimum into the front cache
		// mid-scan would hide it from popBucket's bitmap walk.
		w.pushBucket(e)
		evs[i] = nil // drop the stale reference in the reused backing array
	}
}

// refreshMin recomputes the minAt lower bound after a pop (both callers
// have the front cache empty, so buckets are everything): the exact next
// timestamp when level 0 still holds events, else the start of the lowest
// pending bucket (below every event in it), else maxTime.
func (w *timerWheel) refreshMin() {
	if w.summary == 0 {
		w.minAt = maxTime
		return
	}
	lvl := bits.TrailingZeros32(w.summary)
	idx := bits.TrailingZeros64(w.occupied[lvl])
	if lvl == 0 {
		w.minAt = w.cur&^Time(wheelMask) | Time(idx)
		return
	}
	w.minAt = w.bucketStart(lvl, idx)
}
