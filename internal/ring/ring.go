// Package ring implements the consistent-hashing layout NICE and NOOB
// share (§3.1): the object hash space is a circular ring split into equal
// partitions; each partition has a primary replica and R-1 secondary
// replicas on successor nodes. For NICE it additionally implements the
// virtual rings (§3.2): ranges of virtual IP addresses divided into
// power-of-two subgroups, one subgroup per partition, so a switch can map
// a whole subgroup to a physical node with a single prefix rule.
package ring

import (
	"fmt"

	"repro/internal/netsim"
)

// Hash maps a key to its position on the ring: FNV-1a (64-bit) followed
// by an avalanche finalizer. The finalizer matters: range partitioning
// uses the hash's high bits, and raw FNV barely propagates a trailing
// byte change upward — keys like "obj/1" vs "obj/2" would land in the
// same partition.
func Hash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	// fmix64 (MurmurHash3 finalizer).
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Space divides the 64-bit hash ring into P equal partitions.
type Space struct {
	P int
}

// NewSpace returns a hash space with p partitions; p must be positive.
func NewSpace(p int) Space {
	if p <= 0 {
		panic(fmt.Sprintf("ring: non-positive partition count %d", p))
	}
	return Space{P: p}
}

// width returns the size of one partition's hash range. The last
// partition absorbs the remainder.
func (s Space) width() uint64 { return ^uint64(0)/uint64(s.P) + 1 }

// PartitionOfHash returns the partition owning hash position h.
func (s Space) PartitionOfHash(h uint64) int {
	p := int(h / s.width())
	if p >= s.P { // remainder tail of the ring
		p = s.P - 1
	}
	return p
}

// PartitionOf returns the partition owning key.
func (s Space) PartitionOf(key string) int { return s.PartitionOfHash(Hash(key)) }

// Placement assigns partitions to storage nodes with successor-list
// replication: partition i's primary is node i, and its R-1 secondaries
// are the next nodes around the physical ring. Every node is thus a
// primary for one partition and a secondary for R-1 others (§4.2).
type Placement struct {
	N int // storage nodes (= partitions)
	R int // replication level
}

// NewPlacement validates and builds a placement; R must be in [1, N].
func NewPlacement(n, r int) Placement {
	if n <= 0 || r <= 0 || r > n {
		panic(fmt.Sprintf("ring: bad placement N=%d R=%d", n, r))
	}
	return Placement{N: n, R: r}
}

// Replicas returns the nodes holding partition part, primary first.
func (p Placement) Replicas(part int) []int {
	out := make([]int, p.R)
	for i := 0; i < p.R; i++ {
		out[i] = (part + i) % p.N
	}
	return out
}

// Primary returns the primary replica of a partition.
func (p Placement) Primary(part int) int { return part % p.N }

// Secondaries returns the non-primary replicas of a partition.
func (p Placement) Secondaries(part int) []int { return p.Replicas(part)[1:] }

// PartitionsOf returns the partitions node serves as primary and as
// secondary. |primary| = 1 and |secondary| = R-1 in this layout, matching
// the paper's O(R) per-node membership state.
func (p Placement) PartitionsOf(node int) (primary, secondary []int) {
	primary = []int{node}
	for i := 1; i < p.R; i++ {
		secondary = append(secondary, ((node-i)%p.N+p.N)%p.N)
	}
	return primary, secondary
}

// IsReplica reports whether node holds partition part.
func (p Placement) IsReplica(part, node int) bool {
	for _, r := range p.Replicas(part) {
		if r == node {
			return true
		}
	}
	return false
}

// VRing is a virtual consistent-hashing ring deployed on a range of
// virtual IP addresses (§3.2). The base prefix is divided into P
// subgroups of 2^SubgroupBits addresses each; subgroup i serves
// partition i. Clients hash a key to an address inside its partition's
// subgroup, and the switch maps the whole subgroup with one prefix rule.
type VRing struct {
	Base         netsim.Prefix
	Partitions   int
	SubgroupBits int
}

// NewVRing builds a vring and checks the address budget.
func NewVRing(base netsim.Prefix, partitions, subgroupBits int) (VRing, error) {
	v := VRing{Base: base, Partitions: partitions, SubgroupBits: subgroupBits}
	if partitions <= 0 {
		return v, fmt.Errorf("ring: non-positive partition count %d", partitions)
	}
	if subgroupBits < 0 || subgroupBits > 31 {
		return v, fmt.Errorf("ring: bad subgroup bits %d", subgroupBits)
	}
	need := uint64(partitions) << subgroupBits
	if need > base.Size() {
		return v, fmt.Errorf("ring: %d partitions x 2^%d vnodes exceed %s (%d addresses)",
			partitions, subgroupBits, base, base.Size())
	}
	return v, nil
}

// MustVRing is NewVRing that panics on error; for fixed topologies.
func MustVRing(base netsim.Prefix, partitions, subgroupBits int) VRing {
	v, err := NewVRing(base, partitions, subgroupBits)
	if err != nil {
		panic(err)
	}
	return v
}

// subgroupSize returns the number of vnode addresses per subgroup.
func (v VRing) subgroupSize() uint32 { return 1 << v.SubgroupBits }

// SubgroupPrefix returns the address prefix covering partition part's
// vnodes: what the controller installs as a single switch rule.
func (v VRing) SubgroupPrefix(part int) netsim.Prefix {
	base := v.Base.Nth(uint32(part) << v.SubgroupBits)
	return netsim.PrefixOf(base, 32-v.SubgroupBits)
}

// AddrOfKey returns the vnode address a client sends key's requests to.
func (v VRing) AddrOfKey(key string) netsim.IP {
	h := Hash(key)
	part := NewSpace(v.Partitions).PartitionOfHash(h)
	off := uint32(h) & (v.subgroupSize() - 1)
	return v.SubgroupPrefix(part).Nth(off)
}

// PartitionOfAddr maps a vnode address back to its partition; ok is false
// when ip is outside the vring.
func (v VRing) PartitionOfAddr(ip netsim.IP) (part int, ok bool) {
	if !v.Base.Contains(ip) {
		return 0, false
	}
	idx := uint32(ip-v.Base.Addr) >> v.SubgroupBits
	if idx >= uint32(v.Partitions) {
		return 0, false
	}
	return int(idx), true
}

// Contains reports whether ip is a vnode address of this vring.
func (v VRing) Contains(ip netsim.IP) bool {
	_, ok := v.PartitionOfAddr(ip)
	return ok
}
