package ring

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
)

func TestHashStableAndSpread(t *testing.T) {
	if Hash("alpha") != Hash("alpha") {
		t.Fatal("hash not deterministic")
	}
	if Hash("alpha") == Hash("beta") {
		t.Fatal("suspicious collision on distinct short keys")
	}
	// Spread: 10k keys over 16 partitions should put something in every
	// partition and nothing too skewed.
	s := NewSpace(16)
	counts := make([]int, 16)
	for i := 0; i < 10000; i++ {
		counts[s.PartitionOf(fmt.Sprintf("key-%d", i))]++
	}
	for p, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d empty", p)
		}
		if c > 3*10000/16 {
			t.Fatalf("partition %d has %d keys (heavy skew)", p, c)
		}
	}
}

func TestPartitionOfHashCoversRing(t *testing.T) {
	s := NewSpace(15)
	if s.PartitionOfHash(0) != 0 {
		t.Fatal("hash 0 not in partition 0")
	}
	if got := s.PartitionOfHash(^uint64(0)); got != 14 {
		t.Fatalf("max hash in partition %d, want 14", got)
	}
	// Property: every hash maps to a valid partition, and partition
	// boundaries are monotone.
	f := func(h uint64) bool {
		p := s.PartitionOfHash(h)
		return p >= 0 && p < 15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementReplicas(t *testing.T) {
	p := NewPlacement(5, 3)
	got := p.Replicas(3)
	want := []int{3, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Replicas(3) = %v, want %v", got, want)
		}
	}
	if p.Primary(3) != 3 {
		t.Fatal("primary mismatch")
	}
	sec := p.Secondaries(3)
	if len(sec) != 2 || sec[0] != 4 || sec[1] != 0 {
		t.Fatalf("Secondaries = %v", sec)
	}
}

func TestPlacementPartitionsOfIsInverse(t *testing.T) {
	// Property: node n appears in Replicas(part) exactly when part is in
	// PartitionsOf(n), for all layouts.
	for _, cfg := range []struct{ n, r int }{{5, 3}, {15, 3}, {9, 9}, {7, 1}, {16, 5}} {
		p := NewPlacement(cfg.n, cfg.r)
		for node := 0; node < cfg.n; node++ {
			prim, sec := p.PartitionsOf(node)
			if len(prim) != 1 || len(sec) != cfg.r-1 {
				t.Fatalf("N=%d R=%d node %d: %d primary, %d secondary partitions",
					cfg.n, cfg.r, node, len(prim), len(sec))
			}
			member := map[int]bool{}
			for _, pt := range prim {
				member[pt] = true
				if p.Primary(pt) != node {
					t.Fatalf("primary inverse broken at node %d", node)
				}
			}
			for _, pt := range sec {
				member[pt] = true
			}
			for part := 0; part < cfg.n; part++ {
				if p.IsReplica(part, node) != member[part] {
					t.Fatalf("N=%d R=%d: IsReplica(%d,%d)=%v but membership=%v",
						cfg.n, cfg.r, part, node, p.IsReplica(part, node), member[part])
				}
			}
		}
	}
}

func TestPlacementLoadIsUniform(t *testing.T) {
	// Every node serves exactly R partitions: the basis for the paper's
	// O(R) per-node membership state.
	p := NewPlacement(12, 5)
	load := make([]int, 12)
	for part := 0; part < 12; part++ {
		for _, n := range p.Replicas(part) {
			load[n]++
		}
	}
	for n, l := range load {
		if l != 5 {
			t.Fatalf("node %d serves %d partitions, want 5", n, l)
		}
	}
}

func TestPlacementValidation(t *testing.T) {
	for _, cfg := range []struct{ n, r int }{{0, 1}, {3, 0}, {3, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPlacement(%d,%d) did not panic", cfg.n, cfg.r)
				}
			}()
			NewPlacement(cfg.n, cfg.r)
		}()
	}
}

func vr(t *testing.T) VRing {
	t.Helper()
	return MustVRing(netsim.MustParsePrefix("10.10.0.0/16"), 15, 8)
}

func TestVRingSubgroups(t *testing.T) {
	v := vr(t)
	if got := v.SubgroupPrefix(0).String(); got != "10.10.0.0/24" {
		t.Fatalf("subgroup 0 = %s", got)
	}
	if got := v.SubgroupPrefix(14).String(); got != "10.10.14.0/24" {
		t.Fatalf("subgroup 14 = %s", got)
	}
}

func TestVRingAddrRoundTrip(t *testing.T) {
	v := vr(t)
	sp := NewSpace(v.Partitions)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("object/%d", i)
		addr := v.AddrOfKey(key)
		part, ok := v.PartitionOfAddr(addr)
		if !ok {
			t.Fatalf("address %s of key %q outside vring", addr, key)
		}
		if want := sp.PartitionOf(key); part != want {
			t.Fatalf("key %q: vring partition %d, hash partition %d", key, part, want)
		}
		if !v.SubgroupPrefix(part).Contains(addr) {
			t.Fatalf("address %s outside its subgroup", addr)
		}
	}
}

func TestVRingRejectsOutsiders(t *testing.T) {
	v := vr(t)
	if _, ok := v.PartitionOfAddr(netsim.MustParseIP("10.11.0.1")); ok {
		t.Fatal("address outside base accepted")
	}
	// Inside base but beyond the last subgroup (partition 15+ of /24s).
	if _, ok := v.PartitionOfAddr(netsim.MustParseIP("10.10.200.1")); ok {
		t.Fatal("address beyond last subgroup accepted")
	}
	if v.Contains(netsim.MustParseIP("10.10.3.77")) != true {
		t.Fatal("valid vnode address rejected")
	}
}

func TestVRingBudgetValidation(t *testing.T) {
	if _, err := NewVRing(netsim.MustParsePrefix("10.10.0.0/24"), 2, 8); err == nil {
		t.Fatal("2x256 vnodes cannot fit a /24")
	}
	if _, err := NewVRing(netsim.MustParsePrefix("10.10.0.0/16"), 0, 8); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if _, err := NewVRing(netsim.MustParsePrefix("10.10.0.0/16"), 4, 40); err == nil {
		t.Fatal("oversized subgroup accepted")
	}
}

// Property: distinct partitions get disjoint subgroup prefixes.
func TestVRingSubgroupsDisjoint(t *testing.T) {
	v := vr(t)
	for a := 0; a < v.Partitions; a++ {
		pa := v.SubgroupPrefix(a)
		for b := a + 1; b < v.Partitions; b++ {
			pb := v.SubgroupPrefix(b)
			if pa.Contains(pb.Addr) || pb.Contains(pa.Addr) {
				t.Fatalf("subgroups %d and %d overlap (%s, %s)", a, b, pa, pb)
			}
		}
	}
}

func BenchmarkHash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Hash("user4821734")
	}
}

func BenchmarkAddrOfKey(b *testing.B) {
	v := MustVRing(netsim.MustParsePrefix("10.10.0.0/16"), 64, 8)
	for i := 0; i < b.N; i++ {
		v.AddrOfKey("user4821734")
	}
}

func BenchmarkPlacementReplicas(b *testing.B) {
	p := NewPlacement(64, 3)
	for i := 0; i < b.N; i++ {
		p.Replicas(i % 64)
	}
}

func TestHashAvalancheOnTrailingByte(t *testing.T) {
	// Keys differing only in the final character must spread across
	// partitions (this is what the fmix64 finalizer guarantees; raw FNV
	// does not avalanche into the high bits range partitioning uses).
	s := NewSpace(10)
	parts := map[int]bool{}
	for i := 0; i < 16; i++ {
		parts[s.PartitionOf(fmt.Sprintf("object/ec%d", i))] = true
	}
	if len(parts) < 4 {
		t.Fatalf("16 sibling keys landed in only %d partitions", len(parts))
	}
}
