package storage

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

// fakeDisk charges a fixed latency plus a per-byte cost for every
// transfer, so tests can schedule crashes to land mid-I/O.
type fakeDisk struct {
	lat        sim.Time
	perByte    sim.Time
	reads      int
	writes     int
	readBytes  int
	writeBytes int
}

func (d *fakeDisk) ReadDisk(p *sim.Proc, bytes int) {
	d.reads++
	d.readBytes += bytes
	p.Sleep(d.lat + d.perByte*sim.Time(bytes))
}

func (d *fakeDisk) WriteDisk(p *sim.Proc, bytes int) {
	d.writes++
	d.writeBytes += bytes
	p.Sleep(d.lat + d.perByte*sim.Time(bytes))
}

// run drives fn as the single test proc against a fresh engine.
func run(t *testing.T, cfg Config, disk *fakeDisk, fn func(p *sim.Proc, e *Engine)) {
	t.Helper()
	s := sim.New(1)
	e := NewEngine(s, cfg, disk)
	s.Spawn("test", func(p *sim.Proc) { fn(p, e); s.Stop() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
}

func noSnap() Config {
	cfg := DefaultConfig()
	cfg.SnapshotEvery = 0
	return cfg
}

// TestTornFinalWALRecord: a crash landing while the final fsync is in
// flight tears it — the record never reached disk, recovery comes back
// without it, and only the previously fsynced prefix replays.
func TestTornFinalWALRecord(t *testing.T) {
	disk := &fakeDisk{lat: time.Millisecond}
	run(t, noSnap(), disk, func(p *sim.Proc, e *Engine) {
		e.Commit("a", "v1", 100)
		e.Sync(p)
		if !e.Durable() {
			t.Fatal("fsynced record not durable")
		}
		e.Commit("b", "v2", 100)
		p.Sim().After(500*time.Microsecond, e.Crash)
		e.Sync(p) // sleeps 1ms; the crash tears it at 0.5ms
		st := e.Stats()
		if st.TornRecords != 1 {
			t.Errorf("TornRecords = %d, want 1", st.TornRecords)
		}
		if st.LostRecords != 1 {
			t.Errorf("LostRecords = %d, want 1", st.LostRecords)
		}

		info := e.Recover(p)
		if info.Interrupted {
			t.Fatal("recovery reported interrupted without a second crash")
		}
		if info.ReplayedRecords != 1 {
			t.Errorf("ReplayedRecords = %d, want 1 (the fsynced prefix)", info.ReplayedRecords)
		}
		if v, ok := e.Peek("a"); !ok || v != "v1" {
			t.Errorf(`Peek("a") = %v, %v after recovery`, v, ok)
		}
		if _, ok := e.Peek("b"); ok {
			t.Error("torn record resurrected by recovery")
		}
		if !e.Durable() {
			t.Error("recovered state not durable")
		}
	})
}

// TestCrashDuringSnapshot: a crash mid-checkpoint abandons the write;
// the previous snapshot plus the untruncated WAL still recover every
// fsynced record, and nothing unfsynced comes back.
func TestCrashDuringSnapshot(t *testing.T) {
	disk := &fakeDisk{lat: time.Millisecond}
	run(t, noSnap(), disk, func(p *sim.Proc, e *Engine) {
		e.Commit("a", "v1", 100)
		e.Commit("b", "v2", 100)
		e.writeSnapshot(p) // snapshot 1 lands, WAL truncated
		if st := e.Stats(); st.Snapshots != 1 || st.WALRecords != 0 || st.TruncatedRecords != 2 {
			t.Fatalf("after snapshot 1: %+v", st)
		}
		e.Commit("c", "v3", 100)
		e.Sync(p) // c durable via fsync
		e.Commit("d", "v4", 100)

		p.Sim().After(500*time.Microsecond, e.Crash)
		e.writeSnapshot(p) // torn: would have covered c and d
		st := e.Stats()
		if st.SnapshotsAborted != 1 {
			t.Errorf("SnapshotsAborted = %d, want 1", st.SnapshotsAborted)
		}
		if st.Snapshots != 1 {
			t.Errorf("Snapshots = %d, want 1 (the aborted one must not count)", st.Snapshots)
		}

		info := e.Recover(p)
		if info.SnapshotBytes == 0 {
			t.Error("recovery skipped the surviving snapshot")
		}
		if info.ReplayedRecords != 1 {
			t.Errorf("ReplayedRecords = %d, want 1", info.ReplayedRecords)
		}
		for k, want := range map[string]string{"a": "v1", "b": "v2", "c": "v3"} {
			if v, ok := e.Peek(k); !ok || v != want {
				t.Errorf("Peek(%q) = %v, %v, want %q", k, v, ok, want)
			}
		}
		if _, ok := e.Peek("d"); ok {
			t.Error("unfsynced commit resurrected by recovery")
		}
	})
}

// TestSyncDoesNotCoverConcurrentAppends: records committed while an
// fsync's disk write is in flight stay volatile until the next Sync.
func TestSyncDoesNotCoverConcurrentAppends(t *testing.T) {
	disk := &fakeDisk{lat: time.Millisecond}
	run(t, noSnap(), disk, func(p *sim.Proc, e *Engine) {
		e.Commit("a", "v1", 100)
		p.Sim().After(500*time.Microsecond, func() { e.Commit("b", "v2", 100) })
		e.Sync(p)
		if e.Durable() {
			t.Error("record appended mid-fsync reported durable")
		}
		e.Sync(p)
		if !e.Durable() {
			t.Error("follow-up fsync did not cover the tail")
		}
	})
}

// TestEvictionAndPromotion: a memory budget evicts the LRU victim for
// free, the next get of it pays disk time and promotes it back.
func TestEvictionAndPromotion(t *testing.T) {
	disk := &fakeDisk{lat: time.Millisecond}
	cfg := noSnap()
	cfg.Shards = 1
	cfg.MemoryBudget = 250 // two 100-byte values fit, three do not
	run(t, cfg, disk, func(p *sim.Proc, e *Engine) {
		e.Commit("a", "v1", 100)
		e.Commit("b", "v2", 100)
		e.Commit("c", "v3", 100) // evicts a (LRU)
		if st := e.Stats(); st.Evictions != 1 || st.Resident != 2 || st.Entries != 3 {
			t.Fatalf("after overflow: %+v", st)
		}

		start := p.Now()
		if v, ok := e.Get(p, "b"); !ok || v != "v2" {
			t.Fatalf(`Get("b") = %v, %v`, v, ok)
		}
		if p.Now() != start {
			t.Error("memory-tier hit charged disk time")
		}
		if v, ok := e.Get(p, "a"); !ok || v != "v1" {
			t.Fatalf(`Get("a") = %v, %v`, v, ok)
		}
		if p.Now() == start {
			t.Error("evicted-key get paid no disk time")
		}
		st := e.Stats()
		if st.MemHits != 1 || st.DiskReads != 1 {
			t.Errorf("hits=%d diskreads=%d, want 1/1", st.MemHits, st.DiskReads)
		}
		if st.Evictions != 2 { // promoting a pushed out the new victim
			t.Errorf("Evictions = %d, want 2", st.Evictions)
		}
		if _, ok := e.Get(p, "nope"); ok {
			t.Error("absent key found")
		}
	})
}

// oracle is the flat-map model the differential test compares against:
// committed is the live state, durable the state a crash rolls back to.
type oracle struct {
	committed map[string]string
	durable   map[string]string
}

func copyMap(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// differential drives one randomized run and returns the final stats.
func differential(t *testing.T, seed int64) Stats {
	t.Helper()
	disk := &fakeDisk{lat: 10 * time.Microsecond}
	cfg := noSnap()
	cfg.Shards = 4
	cfg.MemoryBudget = 2000 // ~20 values resident over a 64-key space
	var final Stats
	run(t, cfg, disk, func(p *sim.Proc, e *Engine) {
		rng := rand.New(rand.NewSource(seed))
		o := oracle{committed: map[string]string{}, durable: map[string]string{}}
		key := func() string { return fmt.Sprintf("k%02d", rng.Intn(64)) }
		for i := 0; i < 2000; i++ {
			switch op := rng.Float64(); {
			case op < 0.45: // commit
				k, v := key(), fmt.Sprintf("v%d", i)
				e.Commit(k, v, 100)
				o.committed[k] = v
			case op < 0.85: // get
				k := k2(key())
				v, ok := e.Get(p, k)
				want, wantOK := o.committed[k]
				if ok != wantOK || (ok && v != want) {
					t.Fatalf("op %d: Get(%q) = %v, %v, oracle %v, %v", i, k, v, ok, want, wantOK)
				}
			case op < 0.93: // fsync: everything committed becomes durable
				e.Sync(p)
				o.durable = copyMap(o.committed)
			case op < 0.97: // snapshot: same durability effect, plus truncate
				e.writeSnapshot(p)
				o.durable = copyMap(o.committed)
			default: // crash + recover: roll back to durable
				e.Crash()
				e.Recover(p)
				o.committed = copyMap(o.durable)
				if got, want := len(e.Keys()), len(o.committed); got != want {
					t.Fatalf("op %d: %d keys after recovery, oracle %d", i, got, want)
				}
				for k, want := range o.committed {
					if v, ok := e.Peek(k); !ok || v != want {
						t.Fatalf("op %d: Peek(%q) = %v, %v, oracle %q", i, k, v, ok, want)
					}
				}
			}
		}
		final = e.Stats()
	})
	return final
}

// k2 exists so the get path sometimes probes keys never committed.
func k2(k string) string { return k }

// TestDifferentialVsFlatMapOracle randomizes commits, gets, fsyncs,
// snapshots and crash/recover cycles against a flat-map model of the
// durability contract, then replays the same seed and demands identical
// counters — the engine must be both correct and deterministic.
func TestDifferentialVsFlatMapOracle(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		a := differential(t, seed)
		if a.Evictions == 0 || a.DiskReads == 0 || a.Recoveries == 0 || a.Snapshots == 0 {
			t.Errorf("seed %d exercised too little: %+v", seed, a)
		}
		b := differential(t, seed)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed %d nondeterministic:\n  first  %+v\n  second %+v", seed, a, b)
		}
	}
}

// TestSnapshotLoopPausesDuringOutage: the periodic checkpointer must
// skip cycles while the engine is down or recovering — a checkpoint of
// half-replayed state would truncate WAL records it does not cover.
func TestSnapshotLoopPausesDuringOutage(t *testing.T) {
	disk := &fakeDisk{lat: time.Millisecond}
	cfg := DefaultConfig()
	cfg.SnapshotEvery = 5 * time.Millisecond
	s := sim.New(1)
	e := NewEngine(s, cfg, disk)
	e.Start()
	s.Spawn("test", func(p *sim.Proc) {
		e.Commit("a", "v1", 100)
		e.Sync(p)
		p.Sleep(12 * time.Millisecond) // two snapshot periods pass
		taken := e.Stats().Snapshots
		if taken == 0 {
			t.Error("periodic snapshot never fired")
		}
		e.Crash()
		p.Sleep(20 * time.Millisecond) // down: the loop must idle
		if got := e.Stats().Snapshots; got != taken {
			t.Errorf("snapshots while down: %d -> %d", taken, got)
		}
		e.Recover(p)
		p.Sleep(12 * time.Millisecond)
		if got := e.Stats().Snapshots; got <= taken {
			t.Errorf("snapshot loop did not resume after recovery: still %d", got)
		}
		s.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
}
