package storage

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// groupCfg is noSnap() with group commit armed.
func groupCfg(delay sim.Time) Config {
	cfg := noSnap()
	cfg.GroupCommit = true
	cfg.MaxSyncDelay = delay
	return cfg
}

// runProcs drives fn procs against one engine and waits for all of them.
func runProcs(t *testing.T, cfg Config, disk *fakeDisk, fns ...func(p *sim.Proc, e *Engine)) *Engine {
	t.Helper()
	s := sim.New(1)
	e := NewEngine(s, cfg, disk)
	g := sim.NewGroup(s)
	for _, fn := range fns {
		fn := fn
		g.Add(1)
		s.Spawn("gc", func(p *sim.Proc) { defer g.Done(); fn(p, e) })
	}
	s.Spawn("join", func(p *sim.Proc) { g.Wait(p); s.Stop() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	return e
}

// TestGroupCommitCoalesces: a follower whose record lands inside the
// leader's gather window piggybacks — one disk write makes both records
// durable, and only the leader's Sync charges an fsync.
func TestGroupCommitCoalesces(t *testing.T) {
	disk := &fakeDisk{lat: time.Millisecond}
	e := runProcs(t, groupCfg(500*time.Microsecond), disk,
		func(p *sim.Proc, e *Engine) { // leader
			e.Commit("a", "v1", 100)
			e.Sync(p)
			if !e.Durable() {
				t.Error("leader returned before its record was durable")
			}
		},
		func(p *sim.Proc, e *Engine) { // follower joins during the gather
			p.Sleep(200 * time.Microsecond)
			e.Commit("b", "v2", 100)
			e.Sync(p)
			if !e.Durable() {
				t.Error("follower returned before its record was durable")
			}
		},
	)
	st := e.Stats()
	if st.Fsyncs != 1 {
		t.Errorf("Fsyncs = %d, want 1 (one batch)", st.Fsyncs)
	}
	if st.FsyncedRecords != 2 {
		t.Errorf("FsyncedRecords = %d, want 2", st.FsyncedRecords)
	}
	if st.CoalescedSyncs != 1 {
		t.Errorf("CoalescedSyncs = %d, want 1 (the follower)", st.CoalescedSyncs)
	}
	if disk.writes != 1 {
		t.Errorf("disk writes = %d, want 1", disk.writes)
	}
	if want := 2 * e.Config().WALRecordBytes; disk.writeBytes != want {
		t.Errorf("batch bytes = %d, want %d", disk.writeBytes, want)
	}
	if st.SyncedBatchBytes != int64(2*e.Config().WALRecordBytes) {
		t.Errorf("SyncedBatchBytes = %d, want %d", st.SyncedBatchBytes, 2*e.Config().WALRecordBytes)
	}
}

// TestGroupCommitFollowerWaitsForCoverage: a caller whose record is
// appended after the in-flight batch was sized must NOT be satisfied by
// that batch — it stays parked through the first fsync and returns only
// once a later batch covers its record.
func TestGroupCommitFollowerWaitsForCoverage(t *testing.T) {
	disk := &fakeDisk{lat: time.Millisecond}
	var lateDone sim.Time
	e := runProcs(t, groupCfg(0), disk,
		func(p *sim.Proc, e *Engine) { // leader: write sized to just "a"
			e.Commit("a", "v1", 100)
			e.Sync(p) // in flight 0..1ms
		},
		func(p *sim.Proc, e *Engine) { // late: record not in the first batch
			p.Sleep(200 * time.Microsecond)
			e.Commit("b", "v2", 100)
			e.Sync(p)
			lateDone = p.Now()
			if !e.Durable() {
				t.Error("late caller returned before its record was durable")
			}
		},
	)
	// The late caller must ride out the first fsync (ends at 1ms) and then
	// a second one covering "b" (ends at 2ms).
	if lateDone < 2*time.Millisecond {
		t.Errorf("late caller returned at %v, before a covering fsync could land", lateDone)
	}
	st := e.Stats()
	if st.Fsyncs != 2 {
		t.Errorf("Fsyncs = %d, want 2 (uncovered record needs its own batch)", st.Fsyncs)
	}
	if st.CoalescedSyncs != 0 {
		t.Errorf("CoalescedSyncs = %d, want 0 (the late caller led its own batch)", st.CoalescedSyncs)
	}
}

// TestGroupCommitCrashTearsWholeBatch: a crash landing while a
// coalesced fsync is in flight tears every record in the batch — leader
// and follower both come back non-durable and recovery resurrects
// nothing.
func TestGroupCommitCrashTearsWholeBatch(t *testing.T) {
	disk := &fakeDisk{lat: time.Millisecond}
	e := runProcs(t, groupCfg(500*time.Microsecond), disk,
		func(p *sim.Proc, e *Engine) { // leader: gathers until 0.5ms, write ends 1.5ms
			e.Commit("a", "v1", 100)
			p.Sim().After(time.Millisecond, e.Crash)
			e.Sync(p)
			if got := e.Stats().FsyncedRecords; got != 0 {
				t.Errorf("FsyncedRecords = %d after torn batch, want 0", got)
			}
		},
		func(p *sim.Proc, e *Engine) { // follower riding the torn batch
			p.Sleep(200 * time.Microsecond)
			e.Commit("b", "v2", 100)
			e.Sync(p)
			// The crash broadcast frees the follower at the crash instant —
			// it must not sleep out the torn disk write.
			if now := p.Now(); now != time.Millisecond {
				t.Errorf("follower returned at %v, want at the crash instant (1ms)", now)
			}
		},
		func(p *sim.Proc, e *Engine) { // recover after the dust settles
			p.Sleep(2 * time.Millisecond)
			e.Recover(p)
			if _, ok := e.Peek("a"); ok {
				t.Error("torn leader record resurrected by recovery")
			}
			if _, ok := e.Peek("b"); ok {
				t.Error("torn follower record resurrected by recovery")
			}
		},
	)
	st := e.Stats()
	if st.Fsyncs != 0 {
		t.Errorf("Fsyncs = %d, want 0 (the only batch was torn)", st.Fsyncs)
	}
	if st.TornRecords != 1 {
		t.Errorf("TornRecords = %d, want 1", st.TornRecords)
	}
	if st.LostRecords != 2 {
		t.Errorf("LostRecords = %d, want 2 (the whole batch)", st.LostRecords)
	}
}

// TestGroupCommitLoneWriterDelay: with nobody to coalesce with, the
// leader lingers exactly MaxSyncDelay and then fsyncs alone — the knob
// bounds the penalty, it never waits for peers that don't exist.
func TestGroupCommitLoneWriterDelay(t *testing.T) {
	const delay = 500 * time.Microsecond
	disk := &fakeDisk{lat: time.Millisecond}
	var done sim.Time
	e := runProcs(t, groupCfg(delay), disk,
		func(p *sim.Proc, e *Engine) {
			e.Commit("a", "v1", 100)
			e.Sync(p)
			done = p.Now()
			if !e.Durable() {
				t.Error("lone writer not durable after Sync")
			}
		},
	)
	if want := delay + time.Millisecond; done != want {
		t.Errorf("lone writer returned at %v, want exactly gather(%v) + write(1ms) = %v", done, delay, want)
	}
	st := e.Stats()
	if st.Fsyncs != 1 || st.FsyncedRecords != 1 {
		t.Errorf("Fsyncs/FsyncedRecords = %d/%d, want 1/1", st.Fsyncs, st.FsyncedRecords)
	}
	if st.CoalescedSyncs != 0 {
		t.Errorf("CoalescedSyncs = %d, want 0", st.CoalescedSyncs)
	}
}

// TestGroupCommitCrashDuringGather: a crash inside the gather window
// (before any disk write starts) loses the batch as plain unfsynced
// records — nothing is torn because nothing was in flight.
func TestGroupCommitCrashDuringGather(t *testing.T) {
	disk := &fakeDisk{lat: time.Millisecond}
	e := runProcs(t, groupCfg(time.Millisecond), disk,
		func(p *sim.Proc, e *Engine) {
			e.Commit("a", "v1", 100)
			p.Sim().After(500*time.Microsecond, e.Crash)
			e.Sync(p) // crash lands mid-gather, before WriteDisk
			if got := e.Stats().Fsyncs; got != 0 {
				t.Errorf("Fsyncs = %d after crashed gather, want 0", got)
			}
		},
	)
	st := e.Stats()
	if disk.writes != 0 {
		t.Errorf("disk writes = %d, want 0 (crash preempted the batch)", disk.writes)
	}
	if st.TornRecords != 0 {
		t.Errorf("TornRecords = %d, want 0 (no write was in flight)", st.TornRecords)
	}
	if st.LostRecords != 1 {
		t.Errorf("LostRecords = %d, want 1", st.LostRecords)
	}
}
