// Package storage is a node-local durable storage engine for the
// simulated cluster: a sharded, memory-budgeted object store with a
// write-ahead log on the simulated disk tier, periodic compacting
// snapshots, and LRU eviction from the memory tier to disk.
//
// The engine models the storage stack of one NICE node (DESIGN.md §13):
//
//   - The value bytes of every committed object already live on disk —
//     the put protocol's W step forces them there before commit — so the
//     memory tier is a cache over disk-resident data and eviction is a
//     free metadata operation; only *reads* of evicted objects pay disk
//     time.
//   - What crashes lose is the *commit metadata*: which version of which
//     object is the committed one. Commits append a record to the WAL
//     tail in memory; the tail becomes durable when an fsync (Sync) or a
//     snapshot covers it. Crash drops everything above the durable LSN,
//     deterministically; a Sync in flight at the crash instant has not
//     advanced the durable LSN yet, so its records are torn and lost.
//   - Recovery is a real snapshot-load + log-replay: the volatile tiers
//     are wiped at crash and rebuilt from the last complete snapshot
//     plus the durable log suffix, charging disk-read time for both.
//
// Everything the engine enumerates (snapshot writers, Keys, replay) is
// deterministic: shards are walked in index order and keys in sorted
// order, never in Go map order.
package storage

import (
	"sort"
	"time"

	"repro/internal/sim"
)

// DiskTier charges simulated time for transfers against the node's
// serially-shared storage device. The implementation (kvstore's disk
// resource) reads the live disk model on every call, so a slowdisk
// fault degrades WAL fsyncs, snapshot writes and eviction reads exactly
// as it degrades foreground object I/O.
type DiskTier interface {
	ReadDisk(p *sim.Proc, bytes int)
	WriteDisk(p *sim.Proc, bytes int)
}

// Config parameterizes one engine.
type Config struct {
	// Shards is the hash-partition count; each shard has its own map,
	// LRU list and slice of the memory budget.
	Shards int
	// MemoryBudget bounds the bytes resident in the memory tier across
	// all shards (each shard owns budget/Shards). 0 = unbounded: nothing
	// is ever evicted.
	MemoryBudget int64
	// FsyncOnAck makes Sync force the WAL tail; when false Sync is a
	// no-op and commits become durable only through snapshots.
	FsyncOnAck bool
	// GroupCommit coalesces concurrent Sync callers into one fsync: the
	// first caller leads the disk write and later arrivals whose records
	// it covers piggyback on the result instead of forcing their own.
	GroupCommit bool
	// MaxSyncDelay is how long a group-commit leader lingers before
	// sizing its write, letting co-arriving commits join the batch. It
	// bounds the added latency: a lone writer pays at most this delay
	// and then fsyncs alone. 0 = fire immediately (coalescing still
	// happens for callers that arrive while a write is in flight).
	MaxSyncDelay sim.Time
	// SnapshotEvery is the snapshot + log-truncate period (0 = never).
	SnapshotEvery sim.Time
	// WALRecordBytes is the on-disk size charged per WAL record.
	WALRecordBytes int
	// SnapshotEntryBytes is the per-entry metadata overhead charged on
	// top of the value bytes when writing or loading a snapshot.
	SnapshotEntryBytes int
}

// DefaultConfig sizes the engine for a simulated node.
func DefaultConfig() Config {
	return Config{
		Shards:             8,
		FsyncOnAck:         true,
		SnapshotEvery:      200 * time.Millisecond,
		WALRecordBytes:     64,
		SnapshotEntryBytes: 32,
	}
}

// Stats counts engine activity. Gauges (Entries, Resident, MemBytes,
// WALRecords) are snapshots at read time; everything else accumulates
// across crashes and recoveries — the counters model the device, which
// survives.
type Stats struct {
	Commits int64 // committed object versions installed

	MemHits   int64 // gets served from the memory tier (no disk time)
	DiskReads int64 // gets of evicted objects (charged a disk read)
	Misses    int64 // gets of absent keys
	Evictions int64 // memory-tier residents demoted to disk-only

	WALAppends     int64 // commit records appended to the WAL tail
	Fsyncs         int64 // Sync calls that forced records to disk
	FsyncedRecords int64 // records made durable by those fsyncs
	LostRecords    int64 // unfsynced tail records dropped by crashes
	TornRecords    int64 // crashes that tore an in-flight fsync

	CoalescedSyncs   int64 // Sync calls satisfied by another caller's fsync
	SyncedBatchBytes int64 // bytes written by group-commit fsync batches

	Snapshots        int64 // complete snapshots installed
	SnapshotsAborted int64 // snapshot writes abandoned by a crash
	SnapshotBytes    int64 // bytes of the last complete snapshot
	TruncatedRecords int64 // WAL records retired by snapshots

	Recoveries      int64 // completed crash recoveries
	ReplayedRecords int64 // WAL records replayed across all recoveries

	Entries    int   // keys known to the engine (both tiers)
	Resident   int   // keys resident in the memory tier
	MemBytes   int64 // bytes resident in the memory tier
	WALRecords int   // live WAL records (since the last truncate)
}

// MeanSyncBatch returns the mean records made durable per fsync — the
// group-commit batching factor (1.0 when every Sync forces its own).
func (s Stats) MeanSyncBatch() float64 {
	if s.Fsyncs == 0 {
		return 0
	}
	return float64(s.FsyncedRecords) / float64(s.Fsyncs)
}

// MemHitRatio returns memory-tier hits over all gets that found the key.
func (s Stats) MemHitRatio() float64 {
	total := s.MemHits + s.DiskReads
	if total == 0 {
		return 0
	}
	return float64(s.MemHits) / float64(total)
}

// entry is one key's state: metadata always memory-resident, the value
// reference served from the memory tier only while resident.
type entry struct {
	key      string
	val      any
	size     int
	resident bool
	// LRU intrusive list links (resident entries only).
	prev, next *entry
}

// shard is one hash partition: its own map, LRU list and budget slice.
type shard struct {
	entries  map[string]*entry
	lruHead  *entry // most recently used
	lruTail  *entry // eviction victim
	memBytes int64
}

// walRec is one commit record: enough to reinstall the committed
// version at replay.
type walRec struct {
	key  string
	val  any
	size int
}

// snapEntry is one snapshot row; snapshots are written in sorted key
// order so the write and the recovery load are deterministic.
type snapEntry struct {
	key  string
	val  any
	size int
}

// snapshot is the last complete checkpoint: state as of WAL position
// lsn, so recovery is snapshot + wal[lsn:].
type snapshot struct {
	entries []snapEntry
	bytes   int64
	lsn     uint64
}

// RecoveryInfo summarizes one Recover call.
type RecoveryInfo struct {
	SnapshotBytes   int64 // snapshot read charged
	ReplayedRecords int   // durable WAL records replayed
	Interrupted     bool  // a second crash landed mid-recovery
}

// Engine is one node's storage engine.
type Engine struct {
	s           *sim.Simulator
	cfg         Config
	disk        DiskTier
	shards      []shard
	shardBudget int64
	stats       Stats

	// WAL: wal[i] has LSN walBase+i; records below durableLSN are on
	// disk, the rest are the volatile tail a crash discards.
	wal        []walRec
	walBase    uint64
	durableLSN uint64
	syncing    int // Sync calls currently sleeping in the disk write

	// Group commit: while a leader gathers or writes, syncActive is set
	// and followers park on syncDone until the batch lands (or a crash
	// tears it — Crash broadcasts too, and the gen fence sorts them out).
	syncActive bool
	syncDone   *sim.Cond

	snap snapshot

	// gen counts crashes; procs sleeping in disk time capture it and
	// abandon their structural updates when it moved (their world died).
	gen        int
	down       bool
	recovering bool
}

// NewEngine builds an empty engine clocked by s, charging disk time
// through disk. Call Start to arm the snapshot loop.
func NewEngine(s *sim.Simulator, cfg Config, disk DiskTier) *Engine {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultConfig().Shards
	}
	if cfg.WALRecordBytes <= 0 {
		cfg.WALRecordBytes = DefaultConfig().WALRecordBytes
	}
	if cfg.SnapshotEntryBytes <= 0 {
		cfg.SnapshotEntryBytes = DefaultConfig().SnapshotEntryBytes
	}
	e := &Engine{s: s, cfg: cfg, disk: disk, syncDone: sim.NewCond(s)}
	if cfg.MemoryBudget > 0 {
		e.shardBudget = (cfg.MemoryBudget + int64(cfg.Shards) - 1) / int64(cfg.Shards)
	}
	e.resetShards()
	return e
}

// Start spawns the periodic snapshot process (no-op without a period).
// The process belongs to the device, not the node software: it skips
// cycles while the node is crashed and survives restarts.
func (e *Engine) Start() {
	if e.cfg.SnapshotEvery <= 0 {
		return
	}
	e.s.Spawn("storage-snap", func(p *sim.Proc) {
		for {
			p.Sleep(e.cfg.SnapshotEvery)
			// No snapshots while crashed, and none while a recovery is
			// rebuilding the tiers: a checkpoint of the half-replayed state
			// would truncate WAL records it does not actually cover.
			if e.down || e.recovering {
				continue
			}
			e.writeSnapshot(p)
		}
	})
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns counters plus current gauges.
func (e *Engine) Stats() Stats {
	st := e.stats
	for i := range e.shards {
		sh := &e.shards[i]
		st.Entries += len(sh.entries)
		st.MemBytes += sh.memBytes
	}
	for i := range e.shards {
		for cur := e.shards[i].lruHead; cur != nil; cur = cur.next {
			st.Resident++
		}
	}
	st.WALRecords = len(e.wal)
	return st
}

// fnv1a hashes a key to its shard.
func (e *Engine) shardOf(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &e.shards[h%uint32(len(e.shards))]
}

func (e *Engine) resetShards() {
	e.shards = make([]shard, e.cfg.Shards)
	for i := range e.shards {
		e.shards[i].entries = make(map[string]*entry)
	}
}

func (e *Engine) tailLSN() uint64 { return e.walBase + uint64(len(e.wal)) }

// lruUnlink removes en from its shard's LRU list.
func (sh *shard) lruUnlink(en *entry) {
	if en.prev != nil {
		en.prev.next = en.next
	} else {
		sh.lruHead = en.next
	}
	if en.next != nil {
		en.next.prev = en.prev
	} else {
		sh.lruTail = en.prev
	}
	en.prev, en.next = nil, nil
}

// lruFront pushes en as most-recently-used.
func (sh *shard) lruFront(en *entry) {
	en.prev, en.next = nil, sh.lruHead
	if sh.lruHead != nil {
		sh.lruHead.prev = en
	}
	sh.lruHead = en
	if sh.lruTail == nil {
		sh.lruTail = en
	}
}

// touch moves a resident entry to the LRU front.
func (sh *shard) touch(en *entry) {
	if sh.lruHead == en {
		return
	}
	sh.lruUnlink(en)
	sh.lruFront(en)
}

// evict demotes LRU victims until the shard fits its budget. Demotion is
// free: the value bytes are already on disk (the W step forced them);
// only the memory-tier reference is dropped.
func (e *Engine) evict(sh *shard) {
	if e.shardBudget <= 0 {
		return
	}
	for sh.memBytes > e.shardBudget && sh.lruTail != nil {
		victim := sh.lruTail
		sh.lruUnlink(victim)
		victim.resident = false
		sh.memBytes -= int64(victim.size)
		e.stats.Evictions++
	}
}

// install places a committed version in the memory tier (write-allocate)
// and rebalances the shard against its budget.
func (e *Engine) install(key string, val any, size int) {
	sh := e.shardOf(key)
	en := sh.entries[key]
	if en == nil {
		en = &entry{key: key}
		sh.entries[key] = en
	} else if en.resident {
		sh.memBytes -= int64(en.size)
		sh.lruUnlink(en)
	}
	en.val, en.size, en.resident = val, size, true
	sh.memBytes += int64(size)
	sh.lruFront(en)
	e.evict(sh)
}

// Commit installs a committed object version and appends its WAL record
// to the volatile tail. It charges no time: the data write was paid in
// the put protocol's W step, and the record reaches disk at the next
// Sync or snapshot. Version ordering is the caller's contract — the
// caller checks Peek before committing, so WAL order is version order
// per key on this node.
func (e *Engine) Commit(key string, val any, size int) {
	if e.down {
		// No caller should reach a crashed engine (the node's handlers
		// are generation-fenced); tolerate it as a dropped write rather
		// than corrupting recovery state.
		e.stats.LostRecords++
		return
	}
	e.install(key, val, size)
	e.wal = append(e.wal, walRec{key: key, val: val, size: size})
	e.stats.Commits++
	e.stats.WALAppends++
}

// Get reads key. A memory-tier hit is free; an evicted key charges a
// disk read of its size and is promoted back into the memory tier.
func (e *Engine) Get(p *sim.Proc, key string) (any, bool) {
	sh := e.shardOf(key)
	en := sh.entries[key]
	if en == nil {
		e.stats.Misses++
		return nil, false
	}
	if en.resident {
		e.stats.MemHits++
		sh.touch(en)
		return en.val, true
	}
	e.stats.DiskReads++
	val, size := en.val, en.size
	gen := e.gen
	e.disk.ReadDisk(p, size)
	if gen == e.gen && !en.resident {
		// Promote, unless a crash rebuilt the world (or a concurrent
		// reader already promoted) while we slept in the disk read.
		en.resident = true
		sh.memBytes += int64(size)
		sh.lruFront(en)
		e.evict(sh)
	}
	return val, true
}

// Peek returns key's committed value without charging time or touching
// the LRU state: metadata (the version inside the value) is always
// memory-resident.
func (e *Engine) Peek(key string) (any, bool) {
	en := e.shardOf(key).entries[key]
	if en == nil {
		return nil, false
	}
	return en.val, true
}

// Len returns the number of keys known to the engine.
func (e *Engine) Len() int {
	n := 0
	for i := range e.shards {
		n += len(e.shards[i].entries)
	}
	return n
}

// Keys returns every key, sorted (deterministic enumeration for the
// recovery wire protocol and the snapshot writer).
func (e *Engine) Keys() []string {
	out := make([]string, 0, e.Len())
	for i := range e.shards {
		for k := range e.shards[i].entries {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Sync forces the volatile WAL tail to disk, charging one forced write
// sized by the pending record count. Records appended while the write
// is in flight are not covered; a crash during the write tears it and
// the records stay volatile (the durable LSN only advances here, after
// the write survives).
//
// With GroupCommit enabled, concurrent Sync callers coalesce: the first
// caller leads — optionally lingering MaxSyncDelay so co-arriving
// commits join the batch — and issues one disk write covering every
// record appended up to that point; followers park until a covering
// fsync lands and never touch the disk themselves. The durability
// contract is identical either way: Sync returns only once every record
// appended before the call is on disk (or the engine crashed, tearing
// the whole in-flight batch — torn followers return non-durable exactly
// like a torn solo fsync, and callers' generation fences catch it).
func (e *Engine) Sync(p *sim.Proc) {
	target := e.tailLSN()
	if e.durableLSN >= target {
		return
	}
	if !e.cfg.GroupCommit {
		pending := int(target - e.durableLSN)
		gen := e.gen
		e.syncing++
		e.disk.WriteDisk(p, pending*e.cfg.WALRecordBytes)
		e.syncing--
		if gen != e.gen {
			return // crashed mid-fsync: the records were torn, not written
		}
		if target > e.durableLSN {
			e.stats.Fsyncs++
			e.stats.FsyncedRecords += int64(target - e.durableLSN)
			e.durableLSN = target
		}
		return
	}
	gen := e.gen
	led := false
	for e.durableLSN < target {
		if e.syncActive {
			// A leader is gathering or writing. If its batch covers our
			// records we piggyback on the result; if not (we appended after
			// it sized the write) we still wait it out and contend to lead
			// the next batch.
			e.syncDone.Wait(p)
			if gen != e.gen {
				return // crashed: the batch we were riding was torn
			}
			continue
		}
		led = true
		e.leadSync(p)
		if gen != e.gen {
			return
		}
	}
	if !led {
		e.stats.CoalescedSyncs++
	}
}

// leadSync runs one group-commit batch: linger MaxSyncDelay so commits
// racing in can join, size the write to every record then pending, and
// charge one disk write for the whole batch. Only called when no batch
// is active; exactly one leader exists at a time.
func (e *Engine) leadSync(p *sim.Proc) {
	e.syncActive = true
	gen := e.gen
	if d := e.cfg.MaxSyncDelay; d > 0 {
		p.Sleep(d)
		if gen != e.gen {
			return // crashed during the gather window; Crash reset the batch
		}
	}
	target := e.tailLSN()
	if target <= e.durableLSN {
		// A snapshot covered everything while we gathered.
		e.syncActive = false
		e.syncDone.Broadcast()
		return
	}
	bytes := int(target-e.durableLSN) * e.cfg.WALRecordBytes
	e.syncing++
	e.disk.WriteDisk(p, bytes)
	e.syncing--
	if gen != e.gen {
		return // crashed mid-fsync: the whole batch was torn, not written
	}
	e.syncActive = false
	if target > e.durableLSN {
		e.stats.Fsyncs++
		e.stats.FsyncedRecords += int64(target - e.durableLSN)
		e.stats.SyncedBatchBytes += int64(bytes)
		e.durableLSN = target
	}
	e.syncDone.Broadcast()
}

// Durable reports whether every committed record is covered by an fsync
// or snapshot (test instrumentation).
func (e *Engine) Durable() bool { return e.durableLSN >= e.tailLSN() }

// Crash models a node fail-stop at this instant: the volatile tiers
// (memory tier, unfsynced WAL tail) vanish deterministically and the
// engine refuses traffic until Recover rebuilds it from the durable
// media. An fsync in flight is torn — its records never reached disk.
func (e *Engine) Crash() {
	e.gen++
	e.down = true
	lost := e.tailLSN() - e.durableLSN
	if lost > 0 {
		e.stats.LostRecords += int64(lost)
		if e.syncing > 0 {
			e.stats.TornRecords++
		}
	}
	e.wal = e.wal[:e.durableLSN-e.walBase]
	// Tear down any group-commit batch: the leader (gathering or mid
	// write) and its followers all wake, see the generation moved, and
	// return non-durable.
	e.syncActive = false
	e.syncDone.Broadcast()
	// The in-memory view dies with the process; Recover rebuilds it.
	e.resetShards()
}

// Recover rebuilds the engine from the durable media: load the last
// complete snapshot (charged as one disk read of its size), then replay
// the durable WAL suffix in LSN order (charged as one sequential read).
// Loaded state starts disk-resident — the memory tier comes back cold
// and warms on reads. Safe to re-run: a crash mid-recovery leaves the
// next incarnation to start over.
func (e *Engine) Recover(p *sim.Proc) RecoveryInfo {
	e.down = false
	e.recovering = true
	gen := e.gen
	// Clear the flag only if this incarnation is still the current one: a
	// crash mid-recovery starts a newer Recover, and this one's cleanup
	// must not unmask snapshots under it.
	defer func() {
		if gen == e.gen {
			e.recovering = false
		}
	}()
	e.resetShards()
	var info RecoveryInfo
	if e.snap.entries != nil {
		info.SnapshotBytes = e.snap.bytes
		e.disk.ReadDisk(p, int(e.snap.bytes))
		if gen != e.gen {
			info.Interrupted = true
			return info
		}
		for _, se := range e.snap.entries {
			sh := e.shardOf(se.key)
			sh.entries[se.key] = &entry{key: se.key, val: se.val, size: se.size}
		}
	}
	if len(e.wal) > 0 {
		e.disk.ReadDisk(p, len(e.wal)*e.cfg.WALRecordBytes)
		if gen != e.gen {
			info.Interrupted = true
			return info
		}
		for _, rec := range e.wal {
			e.install(rec.key, rec.val, rec.size)
		}
		info.ReplayedRecords = len(e.wal)
		e.stats.ReplayedRecords += int64(len(e.wal))
	}
	e.stats.Recoveries++
	return info
}

// writeSnapshot checkpoints the committed state: enumerate every entry
// in sorted key order, charge the full write to disk, and — if no crash
// landed during the write — install the snapshot and retire the WAL
// prefix it covers. Commits that land while the write is in flight are
// not in the captured state but keep their WAL records, so nothing is
// lost; a crash mid-write abandons the attempt and the previous
// snapshot plus the full log still recover everything durable.
func (e *Engine) writeSnapshot(p *sim.Proc) {
	gen := e.gen
	lsn := e.tailLSN()
	entries := make([]snapEntry, 0, e.Len())
	bytes := int64(0)
	for _, k := range e.Keys() {
		en := e.shardOf(k).entries[k]
		entries = append(entries, snapEntry{key: en.key, val: en.val, size: en.size})
		bytes += int64(en.size) + int64(e.cfg.SnapshotEntryBytes)
	}
	e.disk.WriteDisk(p, int(bytes))
	if gen != e.gen {
		e.stats.SnapshotsAborted++
		return
	}
	e.snap = snapshot{entries: entries, bytes: bytes, lsn: lsn}
	e.stats.Snapshots++
	e.stats.SnapshotBytes = bytes
	if lsn > e.walBase {
		drop := lsn - e.walBase
		e.stats.TruncatedRecords += int64(drop)
		e.wal = append([]walRec(nil), e.wal[drop:]...)
		e.walBase = lsn
	}
	if lsn > e.durableLSN {
		// The snapshot durably covers every record it retired.
		e.durableLSN = lsn
	}
}
