package transport

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Stream tuning. The window is what makes concurrent flows share a
// bottleneck link: each flow keeps at most WindowSegments in flight and
// advances on acks, so interleaving (and thus contention, Fig. 8) emerges
// naturally.
const (
	// WindowSegments is the sliding-window size (~64 KB at MSS 1400).
	WindowSegments = 44
	// RTO is the retransmission timeout.
	RTO = 25 * time.Millisecond
	// MaxRetries is how many RTOs a sender endures before declaring the
	// peer dead.
	MaxRetries = 4
	// handshakeRTO bounds SYN retransmission.
	handshakeRTO = 25 * time.Millisecond
	// segHeader approximates TCP header bytes charged per segment.
	ctrlSegSize = 64
)

type segKind uint8

const (
	segSYN segKind = iota + 1
	segSYNACK
	segData
	segAck
	segFIN
)

// segMsg is the payload of a ProtoTCP packet.
type segMsg struct {
	kind    segKind
	seq     uint64 // data: stream-wide segment number; ack: cumulative next expected
	msgID   uint64
	idx     int // segment index within the message
	total   int // segments in the message
	msgSize int // message payload bytes
	data    any // message body, carried on the last segment
}

// Message is a complete application message received on a stream.
type Message struct {
	Data any
	Size int
}

// Conn is one endpoint of an established reliable stream.
type Conn struct {
	stack     *Stack
	peer      netsim.IP
	peerPort  uint16
	localPort uint16

	// Sender state.
	sendSeq  uint64 // next segment number to send
	ackedSeq uint64 // cumulative acked
	nextMsg  uint64
	ackSig   *sim.Queue[struct{}]
	sending  bool // one Send at a time per conn

	// Receiver state.
	wantSeq uint64
	curMsg  uint64
	got     int
	recvQ   *sim.Queue[Message]

	established *sim.Future[bool]
	closed      bool
}

// Listener accepts inbound streams on a port.
type Listener struct {
	stack *Stack
	port  uint16
	q     *sim.Queue[*Conn]
}

// Listen binds a stream listener.
func (st *Stack) Listen(port uint16) (*Listener, error) {
	if _, dup := st.listeners[port]; dup {
		return nil, ErrClosed
	}
	l := &Listener{stack: st, port: port, q: sim.NewQueue[*Conn](st.s)}
	st.listeners[port] = l
	return l, nil
}

// MustListen is Listen that panics on error.
func (st *Stack) MustListen(port uint16) *Listener {
	l, err := st.Listen(port)
	if err != nil {
		panic(err)
	}
	return l
}

// Accept blocks until an inbound connection is established.
func (l *Listener) Accept(p *sim.Proc) (*Conn, bool) { return l.q.Pop(p) }

// AcceptTimeout is Accept with a deadline.
func (l *Listener) AcceptTimeout(p *sim.Proc, d sim.Time) (*Conn, bool) {
	return l.q.PopTimeout(p, d)
}

// Close stops accepting.
func (l *Listener) Close() {
	delete(l.stack.listeners, l.port)
	l.q.Close()
}

// Dial opens a stream to to:port, blocking through the handshake. It
// fails with ErrTimeout when the peer does not answer (down host, no
// route, no listener).
func (st *Stack) Dial(p *sim.Proc, to netsim.IP, port uint16) (*Conn, error) {
	c := &Conn{
		stack:       st,
		peer:        to,
		peerPort:    port,
		localPort:   st.ephemeralPort(),
		ackSig:      sim.NewQueue[struct{}](st.s),
		recvQ:       sim.NewQueue[Message](st.s),
		established: sim.NewFuture[bool](st.s),
	}
	st.conns[connKey{to, port, c.localPort}] = c
	for try := 0; try <= MaxRetries; try++ {
		c.sendSeg(&segMsg{kind: segSYN}, ctrlSegSize)
		if _, ok := c.established.WaitTimeout(p, handshakeRTO); ok {
			return c, nil
		}
	}
	delete(st.conns, connKey{to, port, c.localPort})
	return nil, ErrTimeout
}

// Peer returns the remote address.
func (c *Conn) Peer() netsim.IP { return c.peer }

// PeerPort returns the remote port.
func (c *Conn) PeerPort() uint16 { return c.peerPort }

// sendSeg transmits one segment of the stream.
func (c *Conn) sendSeg(m *segMsg, size int) {
	pkt := c.stack.host.Network().NewPacket()
	pkt.DstIP = c.peer
	pkt.Proto = netsim.ProtoTCP
	pkt.SrcPort = c.localPort
	pkt.DstPort = c.peerPort
	pkt.Size = size
	pkt.Payload = m
	c.stack.host.Send(pkt)
}

// Send transmits one application message of `size` payload bytes and
// blocks until the peer acknowledged every segment. A message smaller
// than one MSS still costs one segment. Concurrent Sends on one conn are
// a protocol bug and panic.
func (c *Conn) Send(p *sim.Proc, data any, size int) error {
	if c.closed {
		return ErrClosed
	}
	if c.sending {
		panic("transport: concurrent Send on one stream")
	}
	c.sending = true
	defer func() { c.sending = false }()

	total := (size + MSS - 1) / MSS
	if total == 0 {
		total = 1
	}
	msgID := c.nextMsg
	c.nextMsg++
	base := c.sendSeq
	final := base + uint64(total)

	sendOne := func(i uint64) {
		idx := int(i - base)
		segSize := MSS
		if idx == total-1 {
			segSize = size - (total-1)*MSS
			if segSize <= 0 {
				segSize = 1
			}
		}
		m := &segMsg{kind: segData, seq: i, msgID: msgID, idx: idx, total: total, msgSize: size}
		if idx == total-1 {
			m.data = data
		}
		c.sendSeg(m, segSize+netsim.TCPHeaderSize)
	}

	retries := 0
	for c.ackedSeq < final {
		// Fill the window.
		for c.sendSeq < final && c.sendSeq-c.ackedSeq < WindowSegments {
			sendOne(c.sendSeq)
			c.sendSeq++
		}
		// Go-back-N with RTO-driven recovery: duplicate acks are drained
		// here without retransmitting (a fast-retransmit storm is worse
		// than one RTO stall on our fabric, which only loses packets
		// under injected loss or crashed hosts).
		if _, ok := c.ackSig.PopTimeout(p, RTO); !ok {
			retries++
			if retries > MaxRetries {
				return ErrTimeout
			}
			// Rewind and resend the window.
			c.sendSeq = c.ackedSeq
			continue
		}
		retries = 0
	}
	return nil
}

// Recv blocks until a complete message arrives; ok is false when the
// peer closed.
func (c *Conn) Recv(p *sim.Proc) (Message, bool) { return c.recvQ.Pop(p) }

// RecvTimeout is Recv with a deadline.
func (c *Conn) RecvTimeout(p *sim.Proc, d sim.Time) (Message, bool) {
	return c.recvQ.PopTimeout(p, d)
}

// Close tears the stream down, sending a best-effort FIN.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.sendSeg(&segMsg{kind: segFIN}, ctrlSegSize)
	delete(c.stack.conns, connKey{c.peer, c.peerPort, c.localPort})
	c.recvQ.Close()
}

// recvTCP dispatches a stream segment to its connection, establishing
// server-side connections on SYN.
func (st *Stack) recvTCP(pkt *netsim.Packet) {
	m, ok := pkt.Payload.(*segMsg)
	if !ok {
		return
	}
	key := connKey{pkt.SrcIP, pkt.SrcPort, pkt.DstPort}
	c, exists := st.conns[key]

	switch m.kind {
	case segSYN:
		if !exists {
			l, listening := st.listeners[pkt.DstPort]
			if !listening {
				return // no RST modeling; the dialer will time out
			}
			c = &Conn{
				stack:     st,
				peer:      pkt.SrcIP,
				peerPort:  pkt.SrcPort,
				localPort: pkt.DstPort,
				ackSig:    sim.NewQueue[struct{}](st.s),
				recvQ:     sim.NewQueue[Message](st.s),
			}
			st.conns[key] = c
			l.q.Push(c)
		}
		c.sendSeg(&segMsg{kind: segSYNACK}, ctrlSegSize)
	case segSYNACK:
		if exists && c.established != nil && !c.established.Done() {
			c.established.Set(true)
		}
	case segData:
		if !exists {
			return
		}
		c.recvData(m)
	case segAck:
		if !exists {
			return
		}
		if m.seq > c.ackedSeq {
			c.ackedSeq = m.seq
		}
		c.ackSig.Push(struct{}{})
	case segFIN:
		if !exists {
			return
		}
		delete(st.conns, key)
		c.closed = true
		c.recvQ.Close()
	}
}

// recvData implements the receiver side: in-order acceptance (go-back-N
// discipline), per-segment cumulative acks, message assembly.
func (c *Conn) recvData(m *segMsg) {
	if m.seq == c.wantSeq {
		c.wantSeq++
		if m.idx == 0 {
			c.curMsg = m.msgID
			c.got = 0
		}
		c.got++
		if m.idx == m.total-1 && c.got == m.total {
			c.recvQ.Push(Message{Data: m.data, Size: m.msgSize})
		}
	}
	// Cumulative ack (also for out-of-order arrivals, telling the sender
	// where to resume).
	c.sendSeg(&segMsg{kind: segAck, seq: c.wantSeq}, ctrlSegSize)
}
