// Package transport implements the endpoint transports NICEKV uses on top
// of the simulated network (§5 "Implementation details"):
//
//   - UDP datagram sockets — clients send put/get requests over UDP to
//     vnode addresses so the switch can rewrite them freely;
//   - reliable streams ("TCP") — all other communication: replies,
//     inter-node replication in NOOB, recovery transfers. Streams model a
//     connection handshake, MSS segmentation, a sliding window with ack
//     clocking (which is what makes concurrent flows share links), and
//     timeout-based failure detection;
//   - reliable UDP multicast — the NICE data path: data chunked below the
//     MTU, NACK-based repair over unicast, ACK-based flow control; plus
//     the any-k quorum variant whose window advances when any k receivers
//     acknowledge (§5).
package transport

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// MTU is the maximum datagram payload; the paper chunks multicast data
// below a single network MTU (1400 bytes).
const MTU = 1400

// MSS is the stream segment payload size.
const MSS = 1400

// Errors reported by transports.
var (
	ErrTimeout = fmt.Errorf("transport: operation timed out")
	ErrClosed  = fmt.Errorf("transport: endpoint closed")
)

// connKey demultiplexes stream segments.
type connKey struct {
	peer      netsim.IP
	peerPort  uint16
	localPort uint16
}

// Stack is the per-host transport mux: it owns the host's packet handler
// and dispatches to bound sockets.
type Stack struct {
	host      *netsim.Host
	s         *sim.Simulator
	udp       map[uint16]*UDPSocket
	listeners map[uint16]*Listener
	conns     map[connKey]*Conn
	mrecv     map[uint16]*MulticastReceiver
	nextEphem uint16
	xferSeq   uint64
}

// NewStack attaches a transport stack to h (replacing its handler).
func NewStack(h *netsim.Host) *Stack {
	st := &Stack{
		host:      h,
		s:         h.Sim(),
		udp:       make(map[uint16]*UDPSocket),
		listeners: make(map[uint16]*Listener),
		conns:     make(map[connKey]*Conn),
		mrecv:     make(map[uint16]*MulticastReceiver),
		nextEphem: 49152,
	}
	h.SetHandler(st.recv)
	return st
}

// Host returns the underlying host.
func (st *Stack) Host() *netsim.Host { return st.host }

// Sim returns the driving simulator.
func (st *Stack) Sim() *sim.Simulator { return st.s }

// IP returns the host address.
func (st *Stack) IP() netsim.IP { return st.host.IP() }

// ephemeralPort hands out client-side port numbers.
func (st *Stack) ephemeralPort() uint16 {
	for {
		p := st.nextEphem
		st.nextEphem++
		if st.nextEphem == 0 {
			st.nextEphem = 49152
		}
		if _, udpUsed := st.udp[p]; udpUsed {
			continue
		}
		if _, lnUsed := st.listeners[p]; lnUsed {
			continue
		}
		return p
	}
}

// recv dispatches an incoming packet to the owning socket. Every dispatch
// target copies what it needs out of the packet synchronously (payload
// references move into Datagram/Message/rxState), so the packet itself is
// recycled here — the hot-path counterpart of the pooled send paths.
func (st *Stack) recv(pkt *netsim.Packet) {
	switch pkt.Proto {
	case netsim.ProtoUDP:
		switch pl := pkt.Payload.(type) {
		case *chunkMsg:
			if r, ok := st.mrecv[pkt.DstPort]; ok {
				r.recvChunk(pkt, pl)
			}
		default:
			if u, ok := st.udp[pkt.DstPort]; ok {
				u.deliver(pkt)
			}
		}
	case netsim.ProtoTCP:
		st.recvTCP(pkt)
	}
	st.host.Network().RecyclePacket(pkt)
}

// Datagram is a received UDP message.
type Datagram struct {
	From     netsim.IP
	FromPort uint16
	// To is the destination address on the wire when the datagram
	// arrived. For NICE this differs from the address the client sent
	// to: the fabric rewrote the vnode address to the physical one.
	To     netsim.IP
	ToPort uint16
	Data   any
	Size   int // payload bytes
}

// UDPSocket sends and receives datagrams on a bound port.
type UDPSocket struct {
	stack *Stack
	port  uint16
	rq    *sim.Queue[*Datagram]
}

// BindUDP binds a datagram socket; port 0 picks an ephemeral port.
func (st *Stack) BindUDP(port uint16) (*UDPSocket, error) {
	if port == 0 {
		port = st.ephemeralPort()
	}
	if _, dup := st.udp[port]; dup {
		return nil, fmt.Errorf("transport: UDP port %d in use on %s", port, st.host.DeviceName())
	}
	u := &UDPSocket{stack: st, port: port, rq: sim.NewQueue[*Datagram](st.s)}
	st.udp[port] = u
	return u, nil
}

// MustBindUDP is BindUDP that panics on error; for topology setup.
func (st *Stack) MustBindUDP(port uint16) *UDPSocket {
	u, err := st.BindUDP(port)
	if err != nil {
		panic(err)
	}
	return u
}

// Port returns the bound port.
func (u *UDPSocket) Port() uint16 { return u.port }

// SendTo transmits one datagram of size payload bytes. Datagrams above
// the MTU panic: callers must chunk (the multicast sender does).
func (u *UDPSocket) SendTo(to netsim.IP, toPort uint16, data any, size int) {
	if size > MTU {
		panic(fmt.Sprintf("transport: %d-byte datagram exceeds MTU", size))
	}
	pkt := u.stack.host.Network().NewPacket()
	pkt.DstIP = to
	pkt.Proto = netsim.ProtoUDP
	pkt.SrcPort = u.port
	pkt.DstPort = toPort
	pkt.Size = size + netsim.UDPHeaderSize
	pkt.Payload = data
	u.stack.host.Send(pkt)
}

// SendToFrom is SendTo with a caller-chosen source address: the datagram
// leaves the NIC carrying src as its source IP (netsim.Host.SendFrom).
// The open-loop traffic gateway sends each virtual client's requests this
// way; replies must be addressed to the gateway's real IP (carried inside
// the request), since nothing routes back to a synthesized source.
func (u *UDPSocket) SendToFrom(src, to netsim.IP, toPort uint16, data any, size int) {
	if size > MTU {
		panic(fmt.Sprintf("transport: %d-byte datagram exceeds MTU", size))
	}
	pkt := u.stack.host.Network().NewPacket()
	pkt.SrcIP = src
	pkt.DstIP = to
	pkt.Proto = netsim.ProtoUDP
	pkt.SrcPort = u.port
	pkt.DstPort = toPort
	pkt.Size = size + netsim.UDPHeaderSize
	pkt.Payload = data
	u.stack.host.SendFrom(pkt)
}

// Recv blocks until a datagram arrives.
func (u *UDPSocket) Recv(p *sim.Proc) (*Datagram, bool) { return u.rq.Pop(p) }

// RecvTimeout is Recv with a deadline.
func (u *UDPSocket) RecvTimeout(p *sim.Proc, d sim.Time) (*Datagram, bool) {
	return u.rq.PopTimeout(p, d)
}

// Close unbinds the socket and wakes blocked receivers.
func (u *UDPSocket) Close() {
	if st := u.stack; st.udp[u.port] == u {
		delete(st.udp, u.port)
	}
	u.rq.Close()
}

func (u *UDPSocket) deliver(pkt *netsim.Packet) {
	u.rq.Push(&Datagram{
		From:     pkt.SrcIP,
		FromPort: pkt.SrcPort,
		To:       pkt.DstIP,
		ToPort:   pkt.DstPort,
		Data:     pkt.Payload,
		Size:     pkt.Size - netsim.UDPHeaderSize,
	})
}
