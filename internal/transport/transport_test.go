package transport

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func ms(n int) sim.Time { return sim.Time(n) * time.Millisecond }
func us(n int) sim.Time { return sim.Time(n) * time.Microsecond }

// hub is a test fabric: a single switch statically routing by IP, with
// optional multicast groups fanning out to subscribed hosts.
type hub struct {
	s      *sim.Simulator
	net    *netsim.Network
	sw     *netsim.Switch
	ports  map[netsim.IP]int
	groups map[netsim.IP][]int
	stacks []*Stack
}

func newHub(t *testing.T, n int, cfg netsim.LinkConfig) *hub {
	t.Helper()
	s := sim.New(1)
	nw := netsim.NewNetwork(s)
	h := &hub{
		s:      s,
		net:    nw,
		sw:     nw.NewSwitch("hub", n, us(2)),
		ports:  make(map[netsim.IP]int),
		groups: make(map[netsim.IP][]int),
	}
	for i := 0; i < n; i++ {
		host := nw.NewHost("h", netsim.IPv4(10, 0, 0, byte(i+1)))
		nw.Connect(host.Port(), h.sw.Port(i), cfg)
		h.ports[host.IP()] = i
		h.stacks = append(h.stacks, NewStack(host))
	}
	h.sw.SetPipeline(netsim.PipelineFunc(func(sw *netsim.Switch, pkt *netsim.Packet, inPort int) {
		if outs, ok := h.groups[pkt.DstIP]; ok {
			for _, o := range outs {
				c := pkt.Clone()
				c.DstMAC = netsim.BroadcastMAC
				sw.Output(o, c)
			}
			return
		}
		if o, ok := h.ports[pkt.DstIP]; ok {
			c := pkt.Clone()
			c.DstMAC = h.host(o).MAC()
			sw.Output(o, c)
			return
		}
		sw.Drop(pkt)
	}))
	return h
}

func (h *hub) host(i int) *netsim.Host { return h.net.Hosts()[i] }

func (h *hub) run(t *testing.T) {
	t.Helper()
	if err := h.s.Run(); err != nil {
		t.Fatal(err)
	}
	h.s.Shutdown()
}

func TestUDPRoundTrip(t *testing.T) {
	h := newHub(t, 2, netsim.Gbps(1, us(10)))
	a, b := h.stacks[0], h.stacks[1]
	srv := b.MustBindUDP(7000)
	done := false
	h.s.Spawn("server", func(p *sim.Proc) {
		d, ok := srv.Recv(p)
		if !ok {
			t.Error("recv failed")
			return
		}
		if d.Data.(string) != "ping" || d.From != a.IP() {
			t.Errorf("got %v from %v", d.Data, d.From)
		}
		// Reply to the sender's ephemeral port.
		reply := b.MustBindUDP(0)
		reply.SendTo(d.From, d.FromPort, "pong", 4)
	})
	h.s.Spawn("client", func(p *sim.Proc) {
		sock := a.MustBindUDP(0)
		sock.SendTo(b.IP(), 7000, "ping", 4)
		d, ok := sock.RecvTimeout(p, ms(100))
		if !ok || d.Data.(string) != "pong" {
			t.Errorf("no pong: %v %v", d, ok)
			return
		}
		done = true
	})
	h.run(t)
	if !done {
		t.Fatal("round trip incomplete")
	}
}

func TestUDPOversizePanics(t *testing.T) {
	h := newHub(t, 2, netsim.Gbps(1, 0))
	sock := h.stacks[0].MustBindUDP(0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for datagram above MTU")
		}
	}()
	sock.SendTo(h.stacks[1].IP(), 1, nil, MTU+1)
}

func TestUDPPortConflict(t *testing.T) {
	h := newHub(t, 1, netsim.Gbps(1, 0))
	h.stacks[0].MustBindUDP(9)
	if _, err := h.stacks[0].BindUDP(9); err == nil {
		t.Fatal("duplicate bind succeeded")
	}
}

func TestStreamSmallMessage(t *testing.T) {
	h := newHub(t, 2, netsim.Gbps(1, us(10)))
	a, b := h.stacks[0], h.stacks[1]
	ln := b.MustListen(5000)
	var got Message
	h.s.Spawn("server", func(p *sim.Proc) {
		c, ok := ln.Accept(p)
		if !ok {
			return
		}
		got, _ = c.Recv(p)
		if err := c.Send(p, "ok", 2); err != nil {
			t.Error(err)
		}
	})
	var reply Message
	h.s.Spawn("client", func(p *sim.Proc) {
		c, err := a.Dial(p, b.IP(), 5000)
		if err != nil {
			t.Error(err)
			return
		}
		if err := c.Send(p, "hello", 5); err != nil {
			t.Error(err)
			return
		}
		reply, _ = c.Recv(p)
		c.Close()
	})
	h.run(t)
	if got.Data != "hello" || got.Size != 5 {
		t.Fatalf("server got %+v", got)
	}
	if reply.Data != "ok" {
		t.Fatalf("client got %+v", reply)
	}
}

func TestStreamLargeMessageTiming(t *testing.T) {
	// 1 MB over two 1 Gbps hops: at least the 8 ms serialization, and not
	// wildly more (the window comfortably covers the tiny BDP).
	h := newHub(t, 2, netsim.Gbps(1, us(20)))
	a, b := h.stacks[0], h.stacks[1]
	ln := b.MustListen(5000)
	const size = 1 << 20
	var took sim.Time
	h.s.Spawn("server", func(p *sim.Proc) {
		c, ok := ln.Accept(p)
		if !ok {
			return
		}
		m, _ := c.Recv(p)
		if m.Size != size {
			t.Errorf("size = %d", m.Size)
		}
	})
	h.s.Spawn("client", func(p *sim.Proc) {
		c, err := a.Dial(p, b.IP(), 5000)
		if err != nil {
			t.Error(err)
			return
		}
		start := p.Now()
		if err := c.Send(p, "blob", size); err != nil {
			t.Error(err)
		}
		took = p.Now() - start
	})
	h.run(t)
	if took < ms(8) || took > ms(40) {
		t.Fatalf("1MB transfer took %v, want ~8-40ms", took)
	}
}

func TestStreamBidirectionalSequentialMessages(t *testing.T) {
	h := newHub(t, 2, netsim.Gbps(1, us(5)))
	a, b := h.stacks[0], h.stacks[1]
	ln := b.MustListen(5000)
	const rounds = 5
	serverSum, clientSum := 0, 0
	h.s.Spawn("server", func(p *sim.Proc) {
		c, _ := ln.Accept(p)
		for i := 0; i < rounds; i++ {
			m, ok := c.Recv(p)
			if !ok {
				return
			}
			serverSum += m.Data.(int)
			c.Send(p, m.Data.(int)*10, 100)
		}
	})
	h.s.Spawn("client", func(p *sim.Proc) {
		c, err := a.Dial(p, b.IP(), 5000)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 1; i <= rounds; i++ {
			c.Send(p, i, 5000) // multi-segment each way
			m, ok := c.Recv(p)
			if !ok {
				return
			}
			clientSum += m.Data.(int)
		}
	})
	h.run(t)
	if serverSum != 15 || clientSum != 150 {
		t.Fatalf("sums = %d, %d", serverSum, clientSum)
	}
}

func TestDialDownHostTimesOut(t *testing.T) {
	h := newHub(t, 2, netsim.Gbps(1, 0))
	h.host(1).SetDown(true)
	var err error
	var took sim.Time
	h.s.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		_, err = h.stacks[0].Dial(p, h.stacks[1].IP(), 5000)
		took = p.Now() - start
	})
	h.run(t)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if took < ms(100) {
		t.Fatalf("gave up too fast: %v", took)
	}
}

func TestSendToCrashedPeerTimesOut(t *testing.T) {
	h := newHub(t, 2, netsim.Gbps(1, 0))
	a, b := h.stacks[0], h.stacks[1]
	ln := b.MustListen(5000)
	h.s.Spawn("server", func(p *sim.Proc) {
		c, _ := ln.Accept(p)
		c.Recv(p)
	})
	var err error
	h.s.Spawn("client", func(p *sim.Proc) {
		c, derr := a.Dial(p, b.IP(), 5000)
		if derr != nil {
			t.Error(derr)
			return
		}
		c.Send(p, "warm", 100)
		h.host(1).SetDown(true)
		err = c.Send(p, "black hole", 1<<20)
	})
	h.run(t)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestStreamSurvivesPacketLoss(t *testing.T) {
	h := newHub(t, 2, netsim.LinkConfig{BandwidthBps: 1e9, LossRate: 0.02})
	a, b := h.stacks[0], h.stacks[1]
	ln := b.MustListen(5000)
	var got Message
	h.s.Spawn("server", func(p *sim.Proc) {
		c, _ := ln.Accept(p)
		got, _ = c.Recv(p)
	})
	h.s.Spawn("client", func(p *sim.Proc) {
		c, err := a.Dial(p, b.IP(), 5000)
		if err != nil {
			t.Error(err)
			return
		}
		if err := c.Send(p, "lossy", 300*1024); err != nil {
			t.Error(err)
		}
	})
	h.run(t)
	if got.Data != "lossy" || got.Size != 300*1024 {
		t.Fatalf("got %+v", got)
	}
}

// mcastHub subscribes hosts[1..] to a group fanned out by the switch.
func mcastGroup(h *hub, members ...int) netsim.IP {
	g := netsim.MustParseIP("239.1.2.3")
	var outs []int
	for _, m := range members {
		h.host(m).JoinMulticast(g)
		outs = append(outs, m)
	}
	h.groups[g] = outs
	return g
}

func TestMulticastAllReceivers(t *testing.T) {
	h := newHub(t, 4, netsim.Gbps(1, us(10)))
	g := mcastGroup(h, 1, 2, 3)
	var transfers []*Transfer
	for i := 1; i <= 3; i++ {
		r := h.stacks[i].MustBindMulticast(6000)
		h.s.Spawn("recv", func(p *sim.Proc) {
			tr, ok := r.Recv(p)
			if ok {
				transfers = append(transfers, tr)
			}
		})
	}
	var res *McastResult
	var err error
	h.s.Spawn("send", func(p *sim.Proc) {
		res, err = h.stacks[0].SendMulticast(p, McastOpts{
			To: g, ToPort: 6000, Data: "payload", Size: 100 * 1024, Receivers: 3,
		})
	})
	h.run(t)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Finished) != 3 || len(transfers) != 3 {
		t.Fatalf("finished=%d transfers=%d", len(res.Finished), len(transfers))
	}
	for _, tr := range transfers {
		if tr.Data != "payload" || tr.Size != 100*1024 || tr.To != g {
			t.Fatalf("bad transfer %+v", tr)
		}
	}
	// Network optimality: the sender's link carried the data once
	// (plus protocol overhead), not three times.
	sent := h.host(0).Stats().BytesSent
	if sent > 110*1024 {
		t.Fatalf("sender pushed %d bytes for a 100KiB object: not multicast", sent)
	}
}

func TestMulticastRepairsLoss(t *testing.T) {
	h := newHub(t, 3, netsim.LinkConfig{BandwidthBps: 1e9, LossRate: 0.05})
	g := mcastGroup(h, 1, 2)
	got := 0
	for i := 1; i <= 2; i++ {
		r := h.stacks[i].MustBindMulticast(6000)
		h.s.Spawn("recv", func(p *sim.Proc) {
			if _, ok := r.Recv(p); ok {
				got++
			}
		})
	}
	var res *McastResult
	var err error
	h.s.Spawn("send", func(p *sim.Proc) {
		res, err = h.stacks[0].SendMulticast(p, McastOpts{
			To: g, ToPort: 6000, Data: "x", Size: 200 * 1024, Receivers: 2,
			Timeout: 10 * time.Second,
		})
	})
	h.run(t)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("deliveries = %d, want 2", got)
	}
	if res.Repairs == 0 {
		t.Fatal("expected unicast repairs under 5% loss")
	}
}

func TestMulticastAnyK(t *testing.T) {
	// 1 fast + 2 slow receivers; any-2 must return at roughly the fast
	// pace... any-1 definitely must. Compare k=1 vs k=3 completion times.
	mk := func(k int) sim.Time {
		h := newHub(t, 4, netsim.Gbps(1, us(10)))
		g := mcastGroup(h, 1, 2, 3)
		// Throttle receivers 2 and 3.
		h.host(2).Port().Link().SetConfig(netsim.Mbps(50, us(10)))
		h.host(3).Port().Link().SetConfig(netsim.Mbps(50, us(10)))
		for i := 1; i <= 3; i++ {
			r := h.stacks[i].MustBindMulticast(6000)
			h.s.Spawn("recv", func(p *sim.Proc) {
				for {
					if _, ok := r.Recv(p); !ok {
						return
					}
				}
			})
		}
		var took sim.Time
		h.s.Spawn("send", func(p *sim.Proc) {
			start := p.Now()
			_, err := h.stacks[0].SendMulticast(p, McastOpts{
				To: g, ToPort: 6000, Data: "x", Size: 1 << 20, Receivers: 3, K: k,
				Timeout: 30 * time.Second,
			})
			if err != nil {
				t.Error(err)
			}
			took = p.Now() - start
		})
		h.run(t)
		return took
	}
	fast := mk(1)
	slow := mk(3)
	if fast*4 > slow {
		t.Fatalf("any-1 (%v) should be far faster than all-3 (%v) with slow replicas", fast, slow)
	}
}

func TestMulticastStragglersEventuallyFinish(t *testing.T) {
	h := newHub(t, 3, netsim.Gbps(1, us(10)))
	g := mcastGroup(h, 1, 2)
	h.host(2).Port().Link().SetConfig(netsim.Mbps(100, us(10)))
	finished := make([]bool, 3)
	for i := 1; i <= 2; i++ {
		i := i
		r := h.stacks[i].MustBindMulticast(6000)
		h.s.Spawn("recv", func(p *sim.Proc) {
			if _, ok := r.Recv(p); ok {
				finished[i] = true
			}
		})
	}
	h.s.Spawn("send", func(p *sim.Proc) {
		_, err := h.stacks[0].SendMulticast(p, McastOpts{
			To: g, ToPort: 6000, Data: "x", Size: 512 * 1024, Receivers: 2, K: 1,
			Timeout: 10 * time.Second,
		})
		if err != nil {
			t.Error(err)
		}
	})
	h.run(t)
	if !finished[1] || !finished[2] {
		t.Fatalf("finished = %v; straggler support should complete both", finished)
	}
}

func TestMulticastTimesOutWhenReceiversDown(t *testing.T) {
	h := newHub(t, 3, netsim.Gbps(1, 0))
	g := mcastGroup(h, 1, 2)
	h.stacks[1].MustBindMulticast(6000)
	h.stacks[2].MustBindMulticast(6000)
	h.host(2).SetDown(true)
	var err error
	h.s.Spawn("send", func(p *sim.Proc) {
		_, err = h.stacks[0].SendMulticast(p, McastOpts{
			To: g, ToPort: 6000, Data: "x", Size: 4, Receivers: 2,
			Timeout: 500 * time.Millisecond,
		})
	})
	h.run(t)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestMulticastSmallObjectLatency(t *testing.T) {
	// A 4-byte put payload is one chunk; latency should be on the order
	// of two hops + ack, i.e. well under a millisecond at 1 Gbps.
	h := newHub(t, 2, netsim.Gbps(1, us(10)))
	g := mcastGroup(h, 1)
	r := h.stacks[1].MustBindMulticast(6000)
	h.s.Spawn("recv", func(p *sim.Proc) { r.Recv(p) })
	var took sim.Time
	h.s.Spawn("send", func(p *sim.Proc) {
		start := p.Now()
		if _, err := h.stacks[0].SendMulticast(p, McastOpts{
			To: g, ToPort: 6000, Data: "x", Size: 4, Receivers: 1,
		}); err != nil {
			t.Error(err)
		}
		took = p.Now() - start
	})
	h.run(t)
	if took == 0 || took > ms(1) {
		t.Fatalf("4B multicast took %v", took)
	}
}

// Property: any payload size (1 byte to several MB) survives a stream
// round trip with its size intact, and the wire carried at least the
// payload.
func TestStreamSizeProperty(t *testing.T) {
	f := func(raw uint32) bool {
		size := int(raw%3_000_000) + 1
		h := newHub(t, 2, netsim.Gbps(1, us(5)))
		a, b := h.stacks[0], h.stacks[1]
		ln := b.MustListen(5000)
		var got Message
		h.s.Spawn("server", func(p *sim.Proc) {
			c, ok := ln.Accept(p)
			if !ok {
				return
			}
			got, _ = c.Recv(p)
		})
		okSend := true
		h.s.Spawn("client", func(p *sim.Proc) {
			c, err := a.Dial(p, b.IP(), 5000)
			if err != nil {
				okSend = false
				return
			}
			if err := c.Send(p, "payload", size); err != nil {
				okSend = false
			}
		})
		if err := h.s.Run(); err != nil {
			return false
		}
		wire := h.net.TotalLinkBytes()
		h.s.Shutdown()
		return okSend && got.Size == size && got.Data == "payload" && wire >= int64(size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the multicast transport delivers any size exactly once to
// every receiver, and the chunk count matches ceil(size/MTU).
func TestMulticastSizeProperty(t *testing.T) {
	f := func(raw uint32, nr uint8) bool {
		size := int(raw%2_000_000) + 1
		receivers := int(nr%3) + 1
		h := newHub(t, receivers+1, netsim.Gbps(1, us(5)))
		members := make([]int, receivers)
		for i := range members {
			members[i] = i + 1
		}
		g := mcastGroup(h, members...)
		delivered := 0
		for i := 1; i <= receivers; i++ {
			r := h.stacks[i].MustBindMulticast(6000)
			h.s.Spawn("recv", func(p *sim.Proc) {
				for {
					tr, ok := r.Recv(p)
					if !ok {
						return
					}
					if tr.Size == size {
						delivered++
					}
				}
			})
		}
		var res *McastResult
		var err error
		h.s.Spawn("send", func(p *sim.Proc) {
			res, err = h.stacks[0].SendMulticast(p, McastOpts{
				To: g, ToPort: 6000, Data: "x", Size: size, Receivers: receivers,
				Timeout: 30 * time.Second,
			})
		})
		if e := h.s.Run(); e != nil {
			return false
		}
		h.s.Shutdown()
		wantChunks := (size + MTU - 1) / MTU
		return err == nil && delivered == receivers && res.Chunks == wantChunks &&
			len(res.Finished) == receivers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPRecvTimeout(t *testing.T) {
	h := newHub(t, 1, netsim.Gbps(1, 0))
	sock := h.stacks[0].MustBindUDP(1234)
	var elapsed sim.Time
	h.s.Spawn("waiter", func(p *sim.Proc) {
		start := p.Now()
		if _, ok := sock.RecvTimeout(p, ms(7)); ok {
			t.Error("unexpected datagram")
		}
		elapsed = p.Now() - start
	})
	if err := h.s.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != ms(7) {
		t.Fatalf("timeout after %v, want 7ms", elapsed)
	}
	h.s.Shutdown()
}

func TestListenerClosedAcceptReturns(t *testing.T) {
	h := newHub(t, 1, netsim.Gbps(1, 0))
	ln := h.stacks[0].MustListen(5000)
	accepted := true
	h.s.Spawn("acceptor", func(p *sim.Proc) {
		_, accepted = ln.Accept(p)
	})
	h.s.At(ms(5), func() { ln.Close() })
	if err := h.s.Run(); err != nil {
		t.Fatal(err)
	}
	if accepted {
		t.Fatal("Accept returned ok after Close")
	}
	h.s.Shutdown()
}
