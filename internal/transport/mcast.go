package transport

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Debug enables multicast transport tracing (tests only).
var Debug bool

func dbg(s *sim.Simulator, format string, args ...any) {
	if Debug {
		fmt.Printf("%v mcast ", s.Now())
		fmt.Printf(format, args...)
		fmt.Println()
	}
}

// Multicast transport tuning (§5 "Replication"): data is chunked below a
// single MTU, NACKs repair losses over unicast, and ACKs drive flow
// control. The quorum ("any-k") variant advances its window when any k
// receivers acknowledge and returns when any k finish.
const (
	// McastWindow is the flow-control window in chunks (~45 KB).
	McastWindow = 32
	// mcastRTO is how long the sender waits for window acks before
	// retransmitting.
	mcastRTO = 25 * time.Millisecond
	// mcastMaxRetries bounds sender persistence per window.
	mcastMaxRetries = 4
	// gapTimeout is how long a receiver waits on an incomplete transfer
	// before NACKing the missing chunks.
	gapTimeout = 5 * time.Millisecond
	// gapMaxNacks bounds receiver-side repair attempts (dead sender).
	gapMaxNacks = 8
	// StragglerTimeout is how long an any-k sender keeps serving repair
	// traffic for receivers outside the quorum after returning.
	StragglerTimeout = 250 * time.Millisecond
	// mctrlSize is the wire size of ACK/NACK/DONE messages.
	mctrlSize = 64
)

// chunkMsg is one multicast data chunk.
type chunkMsg struct {
	xfer    uint64
	idx     int
	total   int
	size    int // total transfer payload bytes
	data    any // application message, on the last chunk
	ackIP   netsim.IP
	ackPort uint16 // sender's control socket
	needAck bool   // window boundary: receivers ack on receipt
}

// ChunkPayload unwraps a multicast chunk's application message. It lets
// switch-resident stages (e.g. the harmonia dirty-set) recognize the
// protocol message a multicast transfer carries without exporting the
// chunk framing itself: only the final chunk of a transfer carries the
// message, so a stage acting on it sees each transfer exactly once per
// switch traversal (retransmitted repairs re-deliver the same message,
// so stages must be idempotent).
func ChunkPayload(payload any) (any, bool) {
	m, ok := payload.(*chunkMsg)
	if !ok || m.data == nil {
		return nil, false
	}
	return m.data, true
}

type mctrlKind uint8

const (
	mctrlAck mctrlKind = iota + 1
	mctrlNack
	mctrlDone
)

// mctrlMsg is a receiver-to-sender control message (unicast UDP).
type mctrlMsg struct {
	kind    mctrlKind
	xfer    uint64
	upTo    int   // ack: contiguous chunks received
	missing []int // nack: chunk indexes to repair
	port    uint16
}

// Transfer is a complete multicast message delivered to a receiver.
type Transfer struct {
	From     netsim.IP // sender's physical address
	FromPort uint16    // sender's control port (for protocol replies)
	To       netsim.IP // group address the data arrived on
	Data     any
	Size     int
	Xfer     uint64
}

// xferKey identifies a transfer at a receiver.
type xferKey struct {
	from netsim.IP
	xfer uint64
}

// rxState tracks one in-flight inbound transfer.
type rxState struct {
	have     []bool
	count    int
	total    int
	contig   int
	maxIdx   int // highest chunk index seen: NACKs never reach past it
	fires    int // total gap-timer firings; bounds abandoned transfers
	done     bool
	gapTimer sim.Event
	nacks    int
	data     any // stashed from the data-bearing last chunk
	size     int
	hasData  bool
}

// MulticastReceiver receives reliable-multicast transfers on a port. Bind
// one per storage node; the node must separately join the group address
// at its host NIC.
type MulticastReceiver struct {
	stack *Stack
	port  uint16
	ctrl  *UDPSocket // replies to senders
	rq    *sim.Queue[*Transfer]
	rx    map[xferKey]*rxState
}

// BindMulticast binds a multicast receiver on port.
func (st *Stack) BindMulticast(port uint16) (*MulticastReceiver, error) {
	if _, dup := st.mrecv[port]; dup {
		return nil, ErrClosed
	}
	ctrl, err := st.BindUDP(0)
	if err != nil {
		return nil, err
	}
	r := &MulticastReceiver{
		stack: st,
		port:  port,
		ctrl:  ctrl,
		rq:    sim.NewQueue[*Transfer](st.s),
		rx:    make(map[xferKey]*rxState),
	}
	st.mrecv[port] = r
	return r, nil
}

// MustBindMulticast is BindMulticast that panics on error.
func (st *Stack) MustBindMulticast(port uint16) *MulticastReceiver {
	r, err := st.BindMulticast(port)
	if err != nil {
		panic(err)
	}
	return r
}

// Recv blocks until a complete transfer arrives.
func (r *MulticastReceiver) Recv(p *sim.Proc) (*Transfer, bool) { return r.rq.Pop(p) }

// RecvTimeout is Recv with a deadline.
func (r *MulticastReceiver) RecvTimeout(p *sim.Proc, d sim.Time) (*Transfer, bool) {
	return r.rq.PopTimeout(p, d)
}

// Close unbinds the receiver.
func (r *MulticastReceiver) Close() {
	if r.stack.mrecv[r.port] == r {
		delete(r.stack.mrecv, r.port)
	}
	r.ctrl.Close()
	r.rq.Close()
}

func (r *MulticastReceiver) send(to netsim.IP, toPort uint16, m *mctrlMsg) {
	m.port = r.port
	r.ctrl.SendTo(to, toPort, m, mctrlSize-netsim.UDPHeaderSize)
}

// recvChunk is called by the stack for every arriving chunk (multicast or
// unicast repair).
func (r *MulticastReceiver) recvChunk(pkt *netsim.Packet, m *chunkMsg) {
	key := xferKey{m.ackIP, m.xfer}
	st, ok := r.rx[key]
	if !ok {
		st = &rxState{have: make([]bool, m.total), total: m.total}
		r.rx[key] = st
	}
	if st.done {
		// Duplicate tail of a finished transfer: re-confirm.
		r.send(m.ackIP, m.ackPort, &mctrlMsg{kind: mctrlDone, xfer: m.xfer, upTo: st.total})
		return
	}
	if m.idx >= 0 && m.idx < st.total && !st.have[m.idx] {
		st.have[m.idx] = true
		st.count++
		if m.idx > st.maxIdx {
			st.maxIdx = m.idx
		}
		for st.contig < st.total && st.have[st.contig] {
			st.contig++
		}
	}
	if m.idx == m.total-1 && !st.hasData {
		st.hasData = true
		st.data = m.data
		st.size = m.size
	}
	if st.count == st.total {
		st.done = true
		st.gapTimer.Cancel()
		r.send(m.ackIP, m.ackPort, &mctrlMsg{kind: mctrlDone, xfer: m.xfer, upTo: st.total})
		r.rq.Push(&Transfer{
			From:     m.ackIP,
			FromPort: m.ackPort,
			To:       pkt.DstIP,
			Data:     st.data,
			Size:     st.size,
			Xfer:     m.xfer,
		})
		return
	}
	if m.needAck {
		r.send(m.ackIP, m.ackPort, &mctrlMsg{kind: mctrlAck, xfer: m.xfer, upTo: st.contig})
		if st.contig <= m.idx {
			r.nackMissing(key, st, m, m.idx+1)
		}
	}
	// (Re)arm the gap timer: if the transfer stalls, NACK what is missing.
	st.gapTimer.Cancel()
	st.gapTimer = r.stack.s.After(gapTimeout, func() { r.gapFired(key, m) })
}

// nackMissing asks the sender to repair the missing chunks below bound.
func (r *MulticastReceiver) nackMissing(key xferKey, st *rxState, m *chunkMsg, bound int) {
	var missing []int
	for i := st.contig; i < bound && i < st.total; i++ {
		if !st.have[i] {
			missing = append(missing, i)
		}
	}
	if len(missing) > 0 {
		r.send(m.ackIP, m.ackPort, &mctrlMsg{kind: mctrlNack, xfer: m.xfer, missing: missing})
	}
}

func (r *MulticastReceiver) gapFired(key xferKey, m *chunkMsg) {
	st, ok := r.rx[key]
	if !ok || st.done {
		return
	}
	st.fires++
	if st.fires > 64 {
		delete(r.rx, key) // abandoned transfer: sender gave up long ago
		return
	}
	// Only chunks behind the highest index seen can be genuinely lost;
	// everything past maxIdx may simply not have been transmitted yet
	// (the sender is pacing on flow control).
	if st.contig <= st.maxIdx {
		st.nacks++
		if st.nacks > gapMaxNacks {
			delete(r.rx, key) // give up: sender is gone
			return
		}
		r.nackMissing(key, st, m, st.maxIdx+1)
	}
	st.gapTimer = r.stack.s.After(gapTimeout, func() { r.gapFired(key, m) })
}

// McastOpts parameterizes one reliable multicast send.
type McastOpts struct {
	To        netsim.IP // group (or multicast-vring) address
	ToPort    uint16
	Data      any
	Size      int
	Receivers int // expected group size
	K         int // quorum: return after any K receivers finish (0 = all)
	Timeout   sim.Time
}

// McastResult reports a completed multicast send.
type McastResult struct {
	Finished []netsim.IP // receivers that completed, in completion order
	Chunks   int
	Repairs  int // chunks retransmitted via unicast repair
}

// txPeer tracks the sender's view of one receiver.
type txPeer struct {
	upTo int
	done bool
}

// SendMulticast performs one reliable multicast transfer from this stack
// and blocks until all receivers (or any K, when opts.K > 0) have the
// whole message. Repair traffic for stragglers continues in the
// background after an any-k send returns, as in the paper's quorum
// transport.
func (st *Stack) SendMulticast(p *sim.Proc, opts McastOpts) (*McastResult, error) {
	if opts.Receivers <= 0 {
		panic("transport: SendMulticast needs Receivers > 0")
	}
	k := opts.K
	if k <= 0 || k > opts.Receivers {
		k = opts.Receivers
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	deadline := st.s.Now() + timeout

	ctrl, err := st.BindUDP(0)
	if err != nil {
		return nil, err
	}
	st.xferSeq++
	xfer := st.xferSeq

	total := (opts.Size + MTU - 1) / MTU
	if total == 0 {
		total = 1
	}
	res := &McastResult{Chunks: total}
	peers := make(map[netsim.IP]*txPeer)

	sendChunk := func(idx int, unicastTo netsim.IP, needAck bool) {
		m := &chunkMsg{
			xfer: xfer, idx: idx, total: total, size: opts.Size,
			ackIP: st.IP(), ackPort: ctrl.Port(), needAck: needAck,
		}
		if idx == total-1 {
			m.data = opts.Data
		}
		chunkSize := MTU
		if idx == total-1 {
			chunkSize = opts.Size - (total-1)*MTU
			if chunkSize <= 0 {
				chunkSize = 1
			}
		}
		dst := opts.To
		if unicastTo != 0 {
			dst = unicastTo
			res.Repairs++
		}
		ctrl.SendTo(dst, opts.ToPort, m, chunkSize)
	}

	// handle applies one control message to the sender's state.
	handle := func(d *Datagram) {
		m, ok := d.Data.(*mctrlMsg)
		if !ok || m.xfer != xfer {
			return
		}
		pe := peers[d.From]
		if pe == nil {
			pe = &txPeer{}
			peers[d.From] = pe
		}
		switch m.kind {
		case mctrlAck:
			if m.upTo > pe.upTo {
				pe.upTo = m.upTo
			}
		case mctrlDone:
			pe.upTo = total
			if !pe.done {
				pe.done = true
				res.Finished = append(res.Finished, d.From)
			}
		case mctrlNack:
			dbg(st.s, "NACK from %v: %d missing (first %d)", d.From, len(m.missing), m.missing[0])
			for _, idx := range m.missing {
				sendChunk(idx, d.From, false)
			}
			// Repairing the tail re-requests an ack so flow control can
			// make progress past the repaired window.
			if n := len(m.missing); n > 0 {
				sendChunk(m.missing[n-1], d.From, true)
			}
		}
	}
	countAt := func(mark int) int {
		n := 0
		for _, pe := range peers {
			if pe.upTo >= mark || pe.done {
				n++
			}
		}
		return n
	}

	for base := 0; base < total; base += McastWindow {
		end := base + McastWindow
		if end > total {
			end = total
		}
		dbg(st.s, "window %d-%d (k=%d)", base, end, k)
		for i := base; i < end; i++ {
			sendChunk(i, 0, i == end-1)
		}
		retries := 0
		for countAt(end) < k {
			remain := deadline - st.s.Now()
			if remain <= 0 {
				ctrl.Close()
				return res, ErrTimeout
			}
			wait := sim.Time(mcastRTO)
			if wait > remain {
				wait = remain
			}
			d, ok := ctrl.RecvTimeout(p, wait)
			if !ok {
				retries++
				if retries > mcastMaxRetries {
					ctrl.Close()
					return res, ErrTimeout
				}
				// Re-solicit acks by retransmitting the window tail.
				sendChunk(end-1, 0, true)
				continue
			}
			retries = 0
			handle(d)
		}
	}

	// Wait for K completions.
	for len(res.Finished) < k {
		remain := deadline - st.s.Now()
		if remain <= 0 {
			ctrl.Close()
			return res, ErrTimeout
		}
		d, ok := ctrl.RecvTimeout(p, minTime(sim.Time(mcastRTO), remain))
		if !ok {
			sendChunk(total-1, 0, true)
			continue
		}
		handle(d)
	}

	if len(res.Finished) >= opts.Receivers {
		ctrl.Close()
		return res, nil
	}

	// Quorum reached but stragglers remain: keep repairing in the
	// background, then release the control socket.
	st.s.Spawn("mcast-straggler", func(bp *sim.Proc) {
		stop := st.s.Now() + StragglerTimeout
		for len(res.Finished) < opts.Receivers {
			remain := stop - st.s.Now()
			if remain <= 0 {
				break
			}
			d, ok := ctrl.RecvTimeout(bp, remain)
			if !ok {
				break
			}
			handle(d)
		}
		ctrl.Close()
	})
	return res, nil
}

func minTime(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}
