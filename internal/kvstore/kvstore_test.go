package kvstore

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func ts(pseq, cseq uint64) Timestamp {
	return Timestamp{
		Primary: netsim.MustParseIP("10.0.0.1"), PrimarySeq: pseq,
		Client: netsim.MustParseIP("192.168.0.1"), ClientSeq: cseq,
	}
}

func TestTimestampOrdering(t *testing.T) {
	if !ts(1, 5).Less(ts(2, 1)) {
		t.Fatal("primary seq must dominate")
	}
	if !ts(1, 1).Less(ts(1, 2)) {
		t.Fatal("client seq must break ties")
	}
	if ts(2, 2).Less(ts(2, 2)) {
		t.Fatal("timestamp not irreflexive")
	}
	a := ts(3, 1)
	b := a
	b.Primary = netsim.MustParseIP("10.0.0.2")
	if a.Less(b) == b.Less(a) {
		t.Fatal("primary IP tie-break not antisymmetric")
	}
	if !(Timestamp{}).IsZero() || ts(1, 0).IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestTimestampTotalOrderProperty(t *testing.T) {
	f := func(p1, c1, p2, c2 uint64) bool {
		a, b := ts(p1, c1), ts(p2, c2)
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a) // exactly one direction
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func run(t *testing.T, disk DiskConfig, fn func(p *sim.Proc, st *Store)) {
	t.Helper()
	s := sim.New(1)
	st := New(s, disk)
	s.Spawn("test", func(p *sim.Proc) { fn(p, st) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
}

func TestPutGetRoundTrip(t *testing.T) {
	run(t, NullDisk(), func(p *sim.Proc, st *Store) {
		obj := &Object{Key: "k", Value: "v", Size: 3, Version: ts(1, 1)}
		if !st.Put(p, obj) {
			t.Error("fresh put rejected")
		}
		got, ok := st.Get(p, "k")
		if !ok || got.Value != "v" {
			t.Errorf("Get = %+v, %v", got, ok)
		}
		if _, ok := st.Get(p, "missing"); ok {
			t.Error("missing key returned")
		}
		if st.Stats().GetMisses != 1 || st.Stats().Puts != 1 {
			t.Errorf("stats %+v", st.Stats())
		}
	})
}

func TestPutVersioning(t *testing.T) {
	run(t, NullDisk(), func(p *sim.Proc, st *Store) {
		st.Put(p, &Object{Key: "k", Value: "new", Size: 3, Version: ts(5, 1)})
		if st.Put(p, &Object{Key: "k", Value: "stale", Size: 5, Version: ts(3, 9)}) {
			t.Error("stale version overwrote newer")
		}
		if got, _ := st.Peek("k"); got.Value != "new" {
			t.Errorf("value = %v", got.Value)
		}
		if !st.Put(p, &Object{Key: "k", Value: "newest", Size: 6, Version: ts(7, 1)}) {
			t.Error("newer version rejected")
		}
		if st.Stats().BytesOnDisk != 6 {
			t.Errorf("BytesOnDisk = %d, want 6", st.Stats().BytesOnDisk)
		}
	})
}

func TestDiskTimingCharged(t *testing.T) {
	disk := DiskConfig{WriteLatency: 100 * time.Microsecond, WriteBps: 100e6}
	run(t, disk, func(p *sim.Proc, st *Store) {
		start := p.Now()
		st.Put(p, &Object{Key: "k", Value: "v", Size: 1000000, Version: ts(1, 1)})
		took := p.Now() - start
		want := 100*time.Microsecond + 10*time.Millisecond // latency + 1MB/100MBps
		if took != want {
			t.Errorf("put took %v, want %v", took, want)
		}
	})
}

func TestLockMutualExclusionFIFO(t *testing.T) {
	s := sim.New(1)
	st := New(s, NullDisk())
	var order []string
	hold := func(name string, delay sim.Time) {
		s.Spawn(name, func(p *sim.Proc) {
			p.Sleep(delay)
			if !st.Lock(p, "k", 0) {
				t.Error("untimed lock failed")
				return
			}
			order = append(order, name)
			p.Sleep(10 * time.Millisecond)
			st.Unlock("k")
		})
	}
	hold("a", 0)
	hold("b", time.Millisecond)
	hold("c", 2*time.Millisecond)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestLockTimeout(t *testing.T) {
	s := sim.New(1)
	st := New(s, NullDisk())
	var timedOut bool
	var gotLater bool
	s.Spawn("holder", func(p *sim.Proc) {
		st.Lock(p, "k", 0)
		p.Sleep(50 * time.Millisecond)
		st.Unlock("k")
	})
	s.Spawn("waiter", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		if !st.Lock(p, "k", 10*time.Millisecond) {
			timedOut = true
		}
		// After the holder releases, the lock must be acquirable again —
		// i.e. the timed-out waiter really withdrew.
		p.Sleep(60 * time.Millisecond)
		if st.Lock(p, "k", time.Millisecond) {
			gotLater = true
			st.Unlock("k")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut || !gotLater {
		t.Fatalf("timedOut=%v gotLater=%v", timedOut, gotLater)
	}
}

func TestUnlockUnheldPanics(t *testing.T) {
	s := sim.New(1)
	st := New(s, NullDisk())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	st.Unlock("nope")
}

func TestWAL(t *testing.T) {
	run(t, NullDisk(), func(p *sim.Proc, st *Store) {
		rec := LogRecord{Key: "k", Size: 10, Ver: ts(1, 1)}
		st.AppendLog(p, rec)
		if !st.HasLog("k") {
			t.Error("log record missing")
		}
		pend := st.PendingLog()
		if len(pend) != 1 || pend[0].Key != "k" {
			t.Errorf("PendingLog = %v", pend)
		}
		st.DropLog("k")
		if st.HasLog("k") || len(st.PendingLog()) != 0 {
			t.Error("log record not dropped")
		}
	})
}

func TestHandoffNamespaceIsSeparate(t *testing.T) {
	run(t, NullDisk(), func(p *sim.Proc, st *Store) {
		st.PutHandoff(p, &Object{Key: "h", Value: 1, Size: 1, Version: ts(1, 1)})
		if _, ok := st.Get(p, "h"); ok {
			t.Error("handoff object visible in main namespace")
		}
		if got, ok := st.GetHandoff(p, "h"); !ok || got.Value != 1 {
			t.Error("handoff object missing")
		}
		st.Put(p, &Object{Key: "m", Value: 2, Size: 1, Version: ts(1, 2)})
		if _, ok := st.GetHandoff(p, "m"); ok {
			t.Error("main object visible in handoff namespace")
		}
		if st.HandoffLen() != 1 || len(st.HandoffObjects()) != 1 {
			t.Error("handoff enumeration wrong")
		}
		st.ClearHandoff()
		if st.HandoffLen() != 0 {
			t.Error("handoff not cleared")
		}
	})
}

func TestKeysEnumeration(t *testing.T) {
	run(t, NullDisk(), func(p *sim.Proc, st *Store) {
		for i := 0; i < 10; i++ {
			st.Put(p, &Object{Key: fmt.Sprintf("k%d", i), Size: 1, Version: ts(uint64(i+1), 0)})
		}
		if len(st.Keys()) != 10 || st.Len() != 10 {
			t.Errorf("Keys = %d, Len = %d", len(st.Keys()), st.Len())
		}
	})
}

// Property: applying any interleaving of versions leaves the store at the
// maximum version.
func TestVersionConvergenceProperty(t *testing.T) {
	f := func(seqs []uint64) bool {
		if len(seqs) == 0 {
			return true
		}
		if len(seqs) > 32 {
			seqs = seqs[:32]
		}
		s := sim.New(1)
		st := New(s, NullDisk())
		var max uint64
		ok := true
		s.Spawn("t", func(p *sim.Proc) {
			for _, q := range seqs {
				st.Put(p, &Object{Key: "k", Value: q, Size: 1, Version: ts(q, 0)})
				if q > max {
					max = q
				}
			}
			got, _ := st.Peek("k")
			ok = got != nil && got.Version.PrimarySeq == max
		})
		if err := s.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStorePutGet(b *testing.B) {
	s := sim.New(1)
	st := New(s, NullDisk())
	n := b.N
	s.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			st.Put(p, &Object{Key: "k", Value: i, Size: 64, Version: ts(uint64(i+1), 0)})
			st.Get(p, "k")
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
