package kvstore

// Durable mode swaps the main namespace's flat map for the
// internal/storage engine: sharded, memory-budgeted, WAL-backed. The
// node-facing API is unchanged — Apply/Put/Get/Peek/Keys delegate to the
// engine when one is attached — plus a handful of durability hooks the
// protocol layer calls (Sync before acks, CrashStorage/RecoverStorage
// around a fail-stop). The prepare log (+L of Fig. 3), the handoff
// directory and the in-memory locks keep their legacy semantics: each +L
// append is individually forced to disk, so the prepare log has no
// unfsynced tail to lose, while locks and handoff never survive a crash
// in either mode.

import (
	"repro/internal/sim"
	"repro/internal/storage"
)

// NewDurable creates a store whose main namespace lives in a durable
// storage engine with the given configuration. The engine charges its
// WAL fsyncs, snapshot writes and eviction reads against the same disk
// device (and live disk model) as the store's foreground I/O, so a
// slowdisk fault degrades all of them together.
func NewDurable(s *sim.Simulator, disk DiskConfig, cfg storage.Config) *Store {
	st := New(s, disk)
	st.eng = storage.NewEngine(s, cfg, (*storeDisk)(st))
	st.eng.Start()
	return st
}

// storeDisk adapts the store's disk device to the engine's DiskTier. It
// reads st.disk on every call rather than caching a DiskConfig, so
// SetDisk (the slowdisk fault hook) retunes engine I/O in place.
type storeDisk Store

func (d *storeDisk) ReadDisk(p *sim.Proc, bytes int) {
	st := (*Store)(d)
	st.diskRes.Use(p, xferTime(st.disk.ReadLatency, st.disk.ReadBps, bytes))
}

func (d *storeDisk) WriteDisk(p *sim.Proc, bytes int) {
	st := (*Store)(d)
	st.diskRes.Use(p, xferTime(st.disk.WriteLatency, st.disk.WriteBps, bytes))
}

// Durable reports whether the main namespace is engine-backed.
func (st *Store) Durable() bool { return st.eng != nil }

// Engine exposes the durable engine (nil in legacy mode); tests and
// experiments inspect it.
func (st *Store) Engine() *storage.Engine { return st.eng }

// Sync forces the engine's outstanding commit records to disk, charging
// fsync time. The put protocol calls it before acknowledging a commit
// (primary: before the timestamp multicast; secondary: before Ack2), so
// an acked write is always recoverable from the local WAL. A free no-op
// in legacy mode and under FsyncOnAck=false.
func (st *Store) Sync(p *sim.Proc) {
	if st.eng != nil && st.eng.Config().FsyncOnAck {
		st.eng.Sync(p)
	}
}

// CrashStorage models the storage side of a node fail-stop: the memory
// tier and every unfsynced WAL record vanish deterministically, and the
// engine stays down until RecoverStorage. A no-op in legacy mode, where
// crash survival is simulated by state resurrection.
func (st *Store) CrashStorage() {
	if st.eng != nil {
		st.eng.Crash()
	}
}

// RecoverStorage rebuilds the engine from its durable media — snapshot
// load plus WAL replay, both charged as disk reads — and reports what it
// did. ok is false in legacy mode (nothing to recover).
func (st *Store) RecoverStorage(p *sim.Proc) (info storage.RecoveryInfo, ok bool) {
	if st.eng == nil {
		return storage.RecoveryInfo{}, false
	}
	return st.eng.Recover(p), true
}

// StorageStats returns engine counters; ok is false in legacy mode.
func (st *Store) StorageStats() (storage.Stats, bool) {
	if st.eng == nil {
		return storage.Stats{}, false
	}
	return st.eng.Stats(), true
}
