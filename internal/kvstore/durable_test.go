package kvstore

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
)

// runDurable drives fn against an engine-backed store.
func runDurable(t *testing.T, disk DiskConfig, cfg storage.Config, fn func(p *sim.Proc, st *Store)) {
	t.Helper()
	s := sim.New(1)
	st := NewDurable(s, disk, cfg)
	s.Spawn("test", func(p *sim.Proc) { fn(p, st); s.Stop() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
}

// TestDurableApplyVersioning: the engine-backed Apply keeps the legacy
// version contract — stale versions are rejected, BytesOnDisk tracks the
// live version — on top of WAL-ordered commits.
func TestDurableApplyVersioning(t *testing.T) {
	cfg := storage.DefaultConfig()
	cfg.SnapshotEvery = 0
	runDurable(t, NullDisk(), cfg, func(p *sim.Proc, st *Store) {
		if !st.Durable() || st.Engine() == nil {
			t.Fatal("NewDurable store not durable")
		}
		if !st.Apply(&Object{Key: "k", Value: "new", Size: 3, Version: ts(5, 1)}) {
			t.Error("fresh apply rejected")
		}
		if st.Apply(&Object{Key: "k", Value: "stale", Size: 5, Version: ts(3, 9)}) {
			t.Error("stale version overwrote newer")
		}
		if got, _ := st.Peek("k"); got.Value != "new" {
			t.Errorf("value = %v", got.Value)
		}
		if !st.Apply(&Object{Key: "k", Value: "newest", Size: 6, Version: ts(7, 1)}) {
			t.Error("newer version rejected")
		}
		if st.Stats().BytesOnDisk != 6 {
			t.Errorf("BytesOnDisk = %d, want 6", st.Stats().BytesOnDisk)
		}
		if st.Len() != 1 || len(st.Keys()) != 1 {
			t.Errorf("Len = %d, Keys = %v", st.Len(), st.Keys())
		}
		est := st.Engine().Stats()
		if est.Commits != 2 || est.WALAppends != 2 {
			t.Errorf("engine saw %d commits, %d WAL appends, want 2/2", est.Commits, est.WALAppends)
		}
	})
}

// TestDurableCrashLosesUnsyncedTail: an applied-but-unsynced write
// vanishes at a crash, a synced one survives recovery, and Sync charges
// its forced write against the store's disk device.
func TestDurableCrashLosesUnsyncedTail(t *testing.T) {
	disk := DiskConfig{WriteLatency: 100 * time.Microsecond, WriteBps: 100e6,
		ReadLatency: 100 * time.Microsecond, ReadBps: 100e6}
	cfg := storage.DefaultConfig()
	cfg.SnapshotEvery = 0
	runDurable(t, disk, cfg, func(p *sim.Proc, st *Store) {
		st.Apply(&Object{Key: "kept", Value: "v", Size: 100, Version: ts(1, 1)})
		before := p.Now()
		st.Sync(p)
		if p.Now() == before {
			t.Error("Sync charged no disk time")
		}
		st.Apply(&Object{Key: "lost", Value: "v", Size: 100, Version: ts(1, 2)})

		st.CrashStorage()
		info, ok := st.RecoverStorage(p)
		if !ok || info.ReplayedRecords != 1 {
			t.Fatalf("RecoverStorage = %+v, %v", info, ok)
		}
		if _, ok := st.Peek("kept"); !ok {
			t.Error("synced write lost")
		}
		if _, ok := st.Peek("lost"); ok {
			t.Error("unsynced write resurrected")
		}
		est, ok := st.StorageStats()
		if !ok || est.Recoveries != 1 || est.LostRecords != 1 {
			t.Errorf("stats = %+v, %v", est, ok)
		}
	})
}

// TestDurableSlowDiskRetunesEngineIO: the engine reads the store's live
// disk model through SetDisk, so a slowdisk fault slows fsyncs too.
func TestDurableSlowDiskRetunesEngineIO(t *testing.T) {
	disk := DiskConfig{WriteLatency: 100 * time.Microsecond, WriteBps: 100e6}
	cfg := storage.DefaultConfig()
	cfg.SnapshotEvery = 0
	runDurable(t, disk, cfg, func(p *sim.Proc, st *Store) {
		st.Apply(&Object{Key: "a", Value: "v", Size: 100, Version: ts(1, 1)})
		t0 := p.Now()
		st.Sync(p)
		fast := p.Now() - t0

		slow := st.Disk()
		slow.WriteLatency *= 10
		st.SetDisk(slow)
		st.Apply(&Object{Key: "b", Value: "v", Size: 100, Version: ts(1, 2)})
		t1 := p.Now()
		st.Sync(p)
		if got := p.Now() - t1; got <= fast {
			t.Errorf("slowdisk fsync took %v, no slower than %v", got, fast)
		}
	})
}

// TestLegacyStoreHasNoEngineHooks: in legacy mode every durability hook
// is a free no-op, so default-path timing is untouched.
func TestLegacyStoreHasNoEngineHooks(t *testing.T) {
	run(t, SSD(), func(p *sim.Proc, st *Store) {
		if st.Durable() || st.Engine() != nil {
			t.Fatal("legacy store claims an engine")
		}
		before := p.Now()
		st.Sync(p)
		st.CrashStorage()
		if _, ok := st.RecoverStorage(p); ok {
			t.Error("legacy store recovered something")
		}
		if _, ok := st.StorageStats(); ok {
			t.Error("legacy store has storage stats")
		}
		if p.Now() != before {
			t.Error("legacy hooks charged time")
		}
	})
}
