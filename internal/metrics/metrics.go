// Package metrics provides the measurement plumbing the experiments use:
// latency histograms, throughput time series, and simple formatting
// helpers for the figure outputs.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/sim"
)

// Histogram accumulates latency samples (or any durations).
type Histogram struct {
	samples []float64 // seconds
	sorted  bool
}

// Add records one duration.
func (h *Histogram) Add(d sim.Time) {
	h.samples = append(h.samples, d.Seconds())
	h.sorted = false
}

// N returns the sample count.
func (h *Histogram) N() int { return len(h.samples) }

// Mean returns the average in seconds (0 if empty).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Stddev returns the population standard deviation in seconds.
func (h *Histogram) Stddev() float64 {
	if len(h.samples) < 2 {
		return 0
	}
	m := h.Mean()
	var ss float64
	for _, v := range h.samples {
		ss += (v - m) * (v - m)
	}
	return math.Sqrt(ss / float64(len(h.samples)))
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Percentile returns the p-th percentile in seconds, p in [0,100].
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	idx := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Min returns the smallest sample in seconds.
func (h *Histogram) Min() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[0]
}

// Max returns the largest sample in seconds.
func (h *Histogram) Max() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[len(h.samples)-1]
}

// MeanDuration returns the mean as a sim.Time.
func (h *Histogram) MeanDuration() sim.Time {
	return sim.Time(h.Mean() * float64(time.Second))
}

// Summary is the per-op latency digest the end-of-run reports print:
// mean and the standard percentiles, all in seconds.
type Summary struct {
	N                  int
	Mean               float64
	P50, P95, P99, Max float64
}

// Summary digests the histogram into the standard percentiles.
func (h *Histogram) Summary() Summary {
	return Summary{
		N:    h.N(),
		Mean: h.Mean(),
		P50:  h.Percentile(50),
		P95:  h.Percentile(95),
		P99:  h.Percentile(99),
		Max:  h.Max(),
	}
}

// String renders the summary with durations rounded to the microsecond.
func (s Summary) String() string {
	rd := func(sec float64) sim.Time {
		return sim.Time(sec * float64(time.Second)).Round(time.Microsecond)
	}
	return fmt.Sprintf("n=%-6d mean=%-10v p50=%-10v p95=%-10v p99=%-10v max=%v",
		s.N, rd(s.Mean), rd(s.P50), rd(s.P95), rd(s.P99), rd(s.Max))
}

// CacheCounters are the in-switch cache telemetry the switchcache data
// plane maintains and the cachesweep experiment reports. Occupancy and
// Capacity are snapshots; everything else counts since attach.
type CacheCounters struct {
	Hits          int64 // gets answered at the switch
	Misses        int64 // cacheable gets that fell through to a server
	Installs      int64 // controller-installed entries
	Evictions     int64 // controller-evicted entries
	Invalidations int64 // entries dropped by the put write-through
	Updates       int64 // entries refreshed in place by the put write-through
	Rejected      int64 // installs refused (stale version, full table, oversize)
	Occupancy     int   // entries resident now
	Capacity      int   // table bound
}

// HitRate returns hits/(hits+misses), 0 when idle.
func (c CacheCounters) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// String renders the counters for run summaries.
func (c CacheCounters) String() string {
	return fmt.Sprintf("hits=%d misses=%d (%.1f%% hit) installs=%d evictions=%d invalidations=%d updates=%d occupancy=%d/%d",
		c.Hits, c.Misses, 100*c.HitRate(), c.Installs, c.Evictions,
		c.Invalidations, c.Updates, c.Occupancy, c.Capacity)
}

// HarmoniaCounters are the dirty-set stage's telemetry (internal/harmonia):
// how the switch classified gets (clean → rewritten to a hashed replica,
// dirty/tainted → fall through to the primary) and how the dirty table
// itself behaved.
type HarmoniaCounters struct {
	Marks            int64 // keys marked dirty by a put prepare
	Clears           int64 // dirty entries retired (all read replicas applied)
	Routed           int64 // clean gets rewritten to a hashed replica choice
	RoutedReplica    int64 // ... of which landed on a non-primary
	DirtyFallbacks   int64 // gets falling through: key dirty
	TaintFallbacks   int64 // gets falling through: partition tainted by overflow
	Overflows        int64 // put prepares the full table could not track
	Installs         int64 // controller view installs applied
	RejectedInstalls int64 // installs refused by the writer-generation fence
	Flushes          int64 // entries made sticky by a view-change install
	Occupancy        int   // dirty entries resident now
	Capacity         int   // dirty-table bound
}

// ReplicaShare returns RoutedReplica/Routed, 0 when idle: the fraction of
// clean reads the fabric spread off the primary.
func (h HarmoniaCounters) ReplicaShare() float64 {
	if h.Routed == 0 {
		return 0
	}
	return float64(h.RoutedReplica) / float64(h.Routed)
}

// String renders the counters for run summaries.
func (h HarmoniaCounters) String() string {
	return fmt.Sprintf("routed=%d (%.1f%% off-primary) dirty-fallbacks=%d taint-fallbacks=%d marks=%d clears=%d overflows=%d installs=%d rejected=%d flushes=%d occupancy=%d/%d",
		h.Routed, 100*h.ReplicaShare(), h.DirtyFallbacks, h.TaintFallbacks,
		h.Marks, h.Clears, h.Overflows, h.Installs, h.RejectedInstalls, h.Flushes,
		h.Occupancy, h.Capacity)
}

// StorageCounters are the durable-engine telemetry (internal/storage)
// the storagesweep experiment reports, summed across a deployment's
// nodes. MemBytes and WALRecords are snapshots; everything else counts
// since boot, crashes included.
type StorageCounters struct {
	MemHits         int64 // gets served from the memory tier
	DiskReads       int64 // gets of evicted objects (paid a disk read)
	Evictions       int64 // memory-tier residents demoted to disk-only
	WALAppends      int64 // commit records appended
	Fsyncs          int64 // forced WAL writes
	FsyncedRecords  int64 // records made durable by those writes
	CoalescedSyncs  int64 // sync calls satisfied by another caller's fsync
	Snapshots       int64 // complete snapshots installed
	Recoveries      int64 // crash recoveries completed
	ReplayedRecords int64 // WAL records replayed across recoveries
	LostRecords     int64 // unfsynced tail records dropped by crashes
	MemBytes        int64 // bytes resident in memory tiers now
	WALRecords      int64 // live WAL records now
}

// HitRate returns memory-tier hits over all gets that found the key.
func (c StorageCounters) HitRate() float64 {
	total := c.MemHits + c.DiskReads
	if total == 0 {
		return 0
	}
	return float64(c.MemHits) / float64(total)
}

// String renders the counters for run summaries.
func (c StorageCounters) String() string {
	return fmt.Sprintf("memhits=%d diskreads=%d (%.1f%% mem) evictions=%d wal=%d fsyncs=%d snapshots=%d recoveries=%d replayed=%d",
		c.MemHits, c.DiskReads, 100*c.HitRate(), c.Evictions,
		c.WALAppends, c.Fsyncs, c.Snapshots, c.Recoveries, c.ReplayedRecords)
}

// TimeSeries buckets event counts by time: the ops/sec timelines of
// Fig. 11.
type TimeSeries struct {
	Bucket sim.Time
	counts map[int]float64
	max    int
}

// NewTimeSeries creates a series with the given bucket width.
func NewTimeSeries(bucket sim.Time) *TimeSeries {
	return &TimeSeries{Bucket: bucket, counts: make(map[int]float64)}
}

// Add records weight w at time t.
func (ts *TimeSeries) Add(t sim.Time, w float64) {
	b := int(t / ts.Bucket)
	ts.counts[b] += w
	if b > ts.max {
		ts.max = b
	}
}

// Values returns one value per bucket from time zero through the last
// recorded bucket, normalized to events per second.
func (ts *TimeSeries) Values() []float64 {
	out := make([]float64, ts.max+1)
	perSec := ts.Bucket.Seconds()
	for b, c := range ts.counts {
		out[b] = c / perSec
	}
	return out
}

// FormatBytes renders a byte count with binary units, for figure tables.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// FormatSize renders an object size the way the paper labels its x-axes.
func FormatSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n/(1<<20))
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
