package metrics

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must read zero")
	}
	for _, ms := range []int{10, 20, 30, 40} {
		h.Add(sim.Time(ms) * time.Millisecond)
	}
	if h.N() != 4 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.Mean(); got < 0.0249 || got > 0.0251 {
		t.Fatalf("Mean = %v", got)
	}
	if got := h.Min(); got != 0.010 {
		t.Fatalf("Min = %v", got)
	}
	if got := h.Max(); got != 0.040 {
		t.Fatalf("Max = %v", got)
	}
	if got := h.Percentile(50); got != 0.020 {
		t.Fatalf("P50 = %v", got)
	}
	if got := h.Percentile(100); got != 0.040 {
		t.Fatalf("P100 = %v", got)
	}
	if h.Stddev() <= 0 {
		t.Fatal("Stddev should be positive")
	}
	if h.MeanDuration() != 25*time.Millisecond {
		t.Fatalf("MeanDuration = %v", h.MeanDuration())
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(sim.Time(i) * time.Millisecond)
	}
	prev := 0.0
	for p := 1.0; p <= 100; p++ {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentile not monotone at %v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	ts.Add(100*time.Millisecond, 1)
	ts.Add(900*time.Millisecond, 1)
	ts.Add(1500*time.Millisecond, 1)
	ts.Add(3200*time.Millisecond, 4)
	v := ts.Values()
	if len(v) != 4 {
		t.Fatalf("len = %d", len(v))
	}
	want := []float64{2, 1, 0, 4}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Values = %v, want %v", v, want)
		}
	}
}

func TestFormatters(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.00KiB",
		3 << 20: "3.00MiB",
		5 << 30: "5.00GiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
	sizes := map[int]string{
		4:       "4B",
		1024:    "1KB",
		65536:   "64KB",
		1 << 20: "1MB",
		1500:    "1500B",
	}
	for n, want := range sizes {
		if got := FormatSize(n); got != want {
			t.Errorf("FormatSize(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestSummary(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(sim.Time(i) * sim.Time(time.Millisecond))
	}
	s := h.Summary()
	if s.N != 100 {
		t.Fatalf("N = %d", s.N)
	}
	if got, want := s.P50, 0.050; got != want {
		t.Fatalf("p50 = %v, want %v", got, want)
	}
	if got, want := s.P95, 0.095; got != want {
		t.Fatalf("p95 = %v, want %v", got, want)
	}
	if got, want := s.P99, 0.099; got != want {
		t.Fatalf("p99 = %v, want %v", got, want)
	}
	if got, want := s.Max, 0.100; got != want {
		t.Fatalf("max = %v, want %v", got, want)
	}
	str := s.String()
	for _, frag := range []string{"n=100", "p50=50ms", "p99=99ms", "max=100ms"} {
		if !containsStr(str, frag) {
			t.Fatalf("summary %q missing %q", str, frag)
		}
	}
}

func TestCacheCounters(t *testing.T) {
	var c CacheCounters
	if c.HitRate() != 0 {
		t.Fatal("idle hit rate must be 0")
	}
	c = CacheCounters{Hits: 75, Misses: 25, Occupancy: 3, Capacity: 64}
	if got := c.HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v", got)
	}
	s := c.String()
	for _, frag := range []string{"hits=75", "75.0% hit", "occupancy=3/64"} {
		if !containsStr(s, frag) {
			t.Fatalf("counters %q missing %q", s, frag)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
