package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// Deeper fault-tolerance scenarios beyond the basic handoff/recovery
// path exercised in nice_test.go.

func TestHandoffServesGetsAndForwardsMisses(t *testing.T) {
	// With load balancing on, some gets route to the handoff node. For
	// objects written before the failure it has no copy and must forward
	// to the primary (§4.4); clients still get answers.
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.Clients = 3
	opts.LoadBalance = true
	opts.Heartbeat = ms(100)
	opts.OpTimeout = ms(400)
	opts.RetryWait = ms(200)
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	const part = 0
	keys := d.keysInPartition(part, 20)
	victim := d.Service.View(part).Replicas[1].Index

	ok := true
	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		c := d.Clients[0]
		for _, k := range keys {
			if _, err := c.Put(p, k, "v", 2048); err != nil {
				t.Errorf("seed %s: %v", k, err)
				ok = false
				return
			}
		}
		d.Nodes[victim].Crash()
		p.Sleep(time.Second) // detection + handoff installation

		// All three clients (three source divisions) read every key:
		// whichever replica the switch picks, including the handoff,
		// the value must come back.
		for i, cl := range d.Clients {
			for _, k := range keys {
				res, err := cl.Get(p, k)
				if err != nil || !res.Found {
					t.Errorf("client %d get %s during outage: %+v %v", i, k, res, err)
					ok = false
					return
				}
			}
		}
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		d.Close()
		return
	}
	// The handoff node must have forwarded at least some misses.
	v := d.Service.View(part)
	if v.Handoff == nil {
		t.Fatal("no handoff installed")
	}
	if d.Nodes[v.Handoff.Index].Stats().GetForwards == 0 {
		t.Error("handoff node never forwarded a miss to the primary")
	}
	d.Close()
}

func TestTwoSecondaryFailures(t *testing.T) {
	// The system tolerates multiple failures while one original replica
	// per region survives (§4.4).
	opts := DefaultOptions()
	opts.Nodes = 6
	opts.Heartbeat = ms(100)
	opts.OpTimeout = ms(400)
	opts.RetryWait = ms(200)
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	const part = 0
	view := d.Service.View(part)
	v1, v2 := view.Replicas[1].Index, view.Replicas[2].Index

	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		c := d.Clients[0]
		keys := d.keysInPartition(part, 6)
		if _, err := c.Put(p, keys[0], 0, 1024); err != nil {
			t.Errorf("seed: %v", err)
			return
		}
		d.Nodes[v1].Crash()
		d.Nodes[v2].Crash()
		p.Sleep(time.Second)
		// Both replaced; puts and gets work against the doubly-repaired
		// set.
		for _, k := range keys {
			if _, err := c.Put(p, k, 1, 1024); err != nil {
				t.Errorf("put %s after double failure: %v", k, err)
				return
			}
		}
		res, err := c.Get(p, keys[0])
		if err != nil || !res.Found {
			t.Errorf("get after double failure: %+v %v", res, err)
		}
		v := d.Service.View(part)
		if v.HasReplica(v1) || v.HasReplica(v2) {
			t.Error("failed nodes still in the replica set")
		}
		if len(v.Replicas) != 3 {
			t.Errorf("replica set size = %d, want 3", len(v.Replicas))
		}
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	d.Close()
}

func TestSequentialFailureRecoveryCycles(t *testing.T) {
	// A node that crashes and recovers repeatedly must keep converging.
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.Heartbeat = ms(100)
	opts.OpTimeout = ms(400)
	opts.RetryWait = ms(200)
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	const part = 0
	victim := d.Service.View(part).Replicas[1].Index
	keys := d.keysInPartition(part, 30)

	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		c := d.Clients[0]
		ki := 0
		put := func(n int) {
			for i := 0; i < n && ki < len(keys); i++ {
				if _, err := c.Put(p, keys[ki], ki, 1024); err != nil {
					t.Errorf("put %s: %v", keys[ki], err)
				}
				ki++
			}
		}
		put(5)
		for cycle := 0; cycle < 2; cycle++ {
			d.Nodes[victim].Crash()
			p.Sleep(time.Second)
			put(5)
			d.Nodes[victim].Restart()
			p.Sleep(time.Second)
			put(5)
		}
		p.Sleep(500 * time.Millisecond)
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	// After the final recovery the victim must hold every committed key.
	missing := 0
	for i := 0; i < 25; i++ {
		if _, ok := d.Nodes[victim].Store().Peek(keys[i]); !ok {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("victim missing %d/25 objects after two crash/recover cycles", missing)
	}
	v := d.Service.View(part)
	if !v.HasReplica(victim) || v.Handoff != nil || v.Recovering != nil {
		t.Fatalf("view not healthy: %+v", v)
	}
	d.Close()
}

func TestPermanentRemove(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.Heartbeat = ms(100)
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	const part = 0
	victim := d.Service.View(part).Replicas[1].Index

	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		c := d.Clients[0]
		if _, err := c.Put(p, "before", "v", 512); err != nil {
			t.Errorf("seed: %v", err)
			return
		}
		d.Nodes[victim].Crash()
		d.Service.PermanentRemove(victim)
		p.Sleep(500 * time.Millisecond)
		// The handoff became a durable member; puts work and views are
		// healthy without a handoff marker.
		for i := 0; i < 5; i++ {
			if _, err := c.Put(p, fmt.Sprintf("after-%d", i), i, 512); err != nil {
				t.Errorf("put after removal: %v", err)
				return
			}
		}
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	for pi := 0; pi < opts.Nodes; pi++ {
		v := d.Service.View(pi)
		if v.HasReplica(victim) {
			t.Errorf("partition %d still lists removed node", pi)
		}
		if v.Handoff != nil {
			t.Errorf("partition %d still marked with a temporary handoff", pi)
		}
	}
	d.Close()
}

func TestRecoveringNodeIsPutVisibleButGetHidden(t *testing.T) {
	// During phase one of rejoin the node participates in puts but the
	// switch must not route gets to it (§4.4 node recovery).
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.LoadBalance = true
	opts.Heartbeat = ms(100)
	opts.OpTimeout = ms(400)
	opts.RetryWait = ms(200)
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	const part = 0
	victim := d.Service.View(part).Replicas[1].Index
	keys := d.keysInPartition(part, 10)

	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		c := d.Clients[0]
		for _, k := range keys {
			if _, err := c.Put(p, k, "v", 1024); err != nil {
				t.Errorf("seed: %v", err)
				return
			}
		}
		d.Nodes[victim].Crash()
		p.Sleep(time.Second)
		baselineGets := d.Nodes[victim].Stats().Gets

		d.Nodes[victim].Restart()
		// Immediately after restart the node is recovering: check the
		// controller state and that get routing excludes it.
		p.Sleep(50 * time.Millisecond)
		v := d.Service.View(part)
		if v.IsRecovering(victim) {
			// Good: caught the window. Gets now must not hit the victim.
			for i := 0; i < 10; i++ {
				if _, err := c.Get(p, keys[i%len(keys)]); err != nil {
					t.Errorf("get during recovery window: %v", err)
				}
			}
			if d.Nodes[victim].Stats().Gets != baselineGets {
				t.Error("get-hidden recovering node served client gets")
			}
		}
		p.Sleep(time.Second) // let recovery finish
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	d.Close()
}

func TestRingExpansionAddReplica(t *testing.T) {
	// §4.4 ring re-configuration / §4.5: grow a hot partition's replica
	// set; the new replica becomes put-visible immediately, fetches the
	// key range from the primary, turns get-visible, and the LB
	// divisions are recomputed to use it.
	opts := DefaultOptions()
	opts.Nodes = 6
	opts.Clients = 4
	opts.LoadBalance = true
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	const part = 0
	keys := d.keysInPartition(part, 15)
	// Pick a node outside the replica set.
	var newcomer int = -1
	for i := 0; i < opts.Nodes; i++ {
		if !d.Service.View(part).HasReplica(i) {
			newcomer = i
			break
		}
	}
	if newcomer < 0 {
		t.Fatal("no spare node")
	}

	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		c := d.Clients[0]
		for _, k := range keys {
			if _, err := c.Put(p, k, "v", 2048); err != nil {
				t.Errorf("seed: %v", err)
				return
			}
		}
		if err := d.Service.AddReplica(part, newcomer); err != nil {
			t.Errorf("AddReplica: %v", err)
			return
		}
		// Double add must be rejected.
		if err := d.Service.AddReplica(part, newcomer); err == nil {
			t.Error("duplicate AddReplica accepted")
		}
		p.Sleep(time.Second)
		v := d.Service.View(part)
		if !v.HasReplica(newcomer) || v.Recovering != nil {
			t.Errorf("expansion incomplete: %+v", v)
			return
		}
		if len(v.Replicas) != 4 {
			t.Errorf("replica set size = %d, want 4", len(v.Replicas))
		}
		// The newcomer holds the whole range.
		for _, k := range keys {
			if _, ok := d.Nodes[newcomer].Store().Peek(k); !ok {
				t.Errorf("newcomer missing %s after range fetch", k)
			}
		}
		// New puts reach it too.
		if _, err := c.Put(p, keys[0], "v2", 2048); err != nil {
			t.Errorf("put after expansion: %v", err)
			return
		}
		p.Sleep(50 * time.Millisecond)
		if obj, ok := d.Nodes[newcomer].Store().Peek(keys[0]); !ok || obj.Value != "v2" {
			t.Errorf("newcomer did not participate in post-expansion put: %v", obj)
		}
		// And gets can now be served by it (client in division 3 of 4).
		before := d.Nodes[newcomer].Stats().Gets
		for i := 0; i < 4; i++ {
			if _, err := d.Clients[3].Get(p, keys[1]); err != nil {
				t.Errorf("get after expansion: %v", err)
			}
		}
		if d.Nodes[newcomer].Stats().Gets == before {
			t.Log("note: division layout did not route client 3 to the newcomer (placement-dependent)")
		}
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	d.Close()
}
