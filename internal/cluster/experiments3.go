package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/noob"
	"repro/internal/sim"
	"repro/internal/workload"
)

// FTParams shapes the Fig. 11 scenario: a secondary fails at FailAt and
// rejoins at RejoinAt; three clients run a 20/80 put/get mix on one
// partition with 1 KB objects.
type FTParams struct {
	Duration  sim.Time
	FailAt    sim.Time
	RejoinAt  sim.Time
	Clients   int
	ThinkTime sim.Time // pause between client operations
	Seed      int64
}

// DefaultFTParams mirrors the paper's 120-second run.
func DefaultFTParams() FTParams {
	return FTParams{
		Duration:  120 * time.Second,
		FailAt:    30 * time.Second,
		RejoinAt:  90 * time.Second,
		Clients:   3,
		ThinkTime: 5 * time.Millisecond,
		Seed:      42,
	}
}

// FTResult is the Fig. 11 timeline.
type FTResult struct {
	PutRate  []float64 // ops/sec per one-second bucket
	GetRate  []float64
	FailRate []float64 // failed put attempts/sec
	Events   []string  // controller membership trace
}

// Figure renders the timeline as a figure (one row per second).
func (r *FTResult) Figure() *Figure {
	fig := &Figure{
		ID:     "fig11",
		Title:  "Fault tolerance: ops/sec timeline (secondary fails at 30s, rejoins at 90s)",
		XLabel: "second",
		YLabel: "operations per second",
		Notes:  r.Events,
	}
	puts := Series{System: "puts/s"}
	gets := Series{System: "gets/s"}
	fails := Series{System: "failed-puts/s"}
	n := len(r.PutRate)
	if len(r.GetRate) > n {
		n = len(r.GetRate)
	}
	at := func(v []float64, i int) float64 {
		if i < len(v) {
			return v[i]
		}
		return 0
	}
	for i := 0; i < n; i++ {
		x := fmt.Sprintf("%d", i)
		puts.Points = append(puts.Points, Point{X: x, Value: at(r.PutRate, i)})
		gets.Points = append(gets.Points, Point{X: x, Value: at(r.GetRate, i)})
		fails.Points = append(fails.Points, Point{X: x, Value: at(r.FailRate, i)})
	}
	fig.Series = []Series{puts, gets, fails}
	return fig
}

// Fig11FaultTolerance reproduces Fig. 11 on a NICE deployment.
func Fig11FaultTolerance(fp FTParams) (*FTResult, error) {
	opts := DefaultOptions()
	opts.Seed = fp.Seed
	opts.Clients = fp.Clients
	opts.LoadBalance = true // gets spread over replicas, including the handoff
	d := NewNICE(opts)

	res := &FTResult{}
	d.Service.SetTrace(func(f string, a ...any) {
		res.Events = append(res.Events, fmt.Sprintf(f, a...))
	})
	if err := d.Settle(); err != nil {
		d.Close()
		return nil, err
	}

	const part = 0
	view := d.Service.View(part)
	victim := view.Replicas[1].Index // a secondary
	keys := d.keysInPartition(part, 200)

	puts := metrics.NewTimeSeries(time.Second)
	gets := metrics.NewTimeSeries(time.Second)
	fails := metrics.NewTimeSeries(time.Second)

	for i := 0; i < fp.Clients; i++ {
		c := d.Clients[i]
		rng := rand.New(rand.NewSource(fp.Seed + int64(i)))
		d.Sim.Spawn(fmt.Sprintf("ft-client%d", i), func(p *sim.Proc) {
			if _, err := c.Put(p, keys[0], 0, 1<<10); err != nil {
				return
			}
			for p.Now() < fp.Duration {
				k := keys[rng.Intn(len(keys))]
				if rng.Float64() < 0.2 {
					if _, err := c.Put(p, k, 1, 1<<10); err != nil {
						fails.Add(p.Now(), 1)
					} else {
						puts.Add(p.Now(), 1)
					}
				} else {
					if _, err := c.Get(p, k); err == nil {
						gets.Add(p.Now(), 1)
					}
				}
				p.Sleep(fp.ThinkTime)
			}
		})
	}
	d.Sim.At(fp.FailAt, func() { d.Nodes[victim].Crash() })
	d.Sim.At(fp.RejoinAt, func() { d.Nodes[victim].Restart() })
	d.Sim.SetLimit(fp.Duration + time.Second)
	if err := d.Sim.Run(); err != nil {
		d.Close()
		return nil, err
	}
	d.Close()
	res.PutRate = puts.Values()
	res.GetRate = gets.Values()
	res.FailRate = fails.Values()
	return res, nil
}

// YCSBWorkloads are the paper's §6.7 choices.
var YCSBWorkloads = []string{"C", "F"}

// YCSBRecords is the preloaded record count (YCSB default).
const YCSBRecords = 1000

// Fig12YCSB reproduces Fig. 12: aggregate throughput under YCSB C and F
// for NICE, NOOB primary-only, and NOOB 2PC. pr.Ops is per client;
// the paper uses 10 clients x 20K operations on 1 KB objects.
func Fig12YCSB(pr Params, clients int) (*Figure, error) {
	fig := &Figure{
		ID:     "fig12",
		Title:  fmt.Sprintf("YCSB (zipfian, 1KB objects, %d clients x %d ops)", clients, pr.Ops),
		XLabel: "workload",
		YLabel: "operations per second, aggregate",
	}
	// Grid: 3 systems x workloads.
	names := []string{"NICE", "NOOB primary-only", "NOOB 2PC"}
	nwl := len(YCSBWorkloads)
	tputs := make([]float64, len(names)*nwl)
	err := RunCells(pr, len(tputs), func(i int, seed int64) error {
		sysIdx, wlIdx := i/nwl, i%nwl
		cpr := pr
		cpr.Seed = seed
		wl := YCSBWorkloads[wlIdx]
		var tput float64
		var err error
		switch sysIdx {
		case 0:
			tput, err = niceYCSB(cpr, clients, wl)
		case 1:
			tput, err = noobYCSB(cpr, clients, wl, noob.PrimaryOnly)
		default:
			tput, err = noobYCSB(cpr, clients, wl, noob.TwoPC)
		}
		tputs[i] = tput
		return err
	})
	if err != nil {
		return nil, err
	}
	for sysIdx, name := range names {
		s := Series{System: name}
		for wlIdx, wl := range YCSBWorkloads {
			s.Points = append(s.Points, Point{X: wl, Value: tputs[sysIdx*nwl+wlIdx]})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// ycsbDriver runs the workload on generic put/get closures and returns
// aggregate throughput (ops/sec of simulated time).
func ycsbDriver(s *sim.Simulator, clients int, pr Params, wlName string,
	put func(c int, p *sim.Proc, key string, size int) error,
	get func(c int, p *sim.Proc, key string) error,
	load func(p *sim.Proc, key string, size int) error) (float64, error) {

	// Load phase.
	w := workload.MustDefine(wlName, YCSBRecords)
	loadErr := error(nil)
	s.Spawn("ycsb-load", func(p *sim.Proc) {
		for i := 0; i < YCSBRecords; i++ {
			if err := load(p, w.Key(i), w.ValueSize); err != nil {
				loadErr = err
				return
			}
		}
		s.Stop()
	})
	if err := s.Run(); err != nil {
		return 0, err
	}
	if loadErr != nil {
		return 0, loadErr
	}

	// Run phase.
	start := s.Now()
	var opErr error
	completed := 0
	g := sim.NewGroup(s)
	for i := 0; i < clients; i++ {
		i := i
		rng := rand.New(rand.NewSource(pr.Seed + int64(i)))
		cw := workload.MustDefine(wlName, YCSBRecords)
		g.Add(1)
		s.Spawn(fmt.Sprintf("ycsb-client%d", i), func(p *sim.Proc) {
			defer g.Done()
			for n := 0; n < pr.Ops; n++ {
				op := cw.Next(rng)
				var err error
				switch op.Type {
				case workload.Read:
					err = get(i, p, op.Key)
				case workload.Update, workload.Insert:
					err = put(i, p, op.Key, cw.ValueSize)
				case workload.ReadModifyWrite:
					if err = get(i, p, op.Key); err == nil {
						err = put(i, p, op.Key, cw.ValueSize)
					}
				}
				if err != nil {
					if opErr == nil {
						opErr = err
					}
					return
				}
				completed++
			}
		})
	}
	s.Spawn("ycsb-join", func(p *sim.Proc) { g.Wait(p); s.Stop() })
	if err := s.Run(); err != nil {
		return 0, err
	}
	if opErr != nil {
		return 0, opErr
	}
	want := clients * pr.Ops
	if completed != want {
		return 0, fmt.Errorf("ycsb %s: completed %d/%d ops", wlName, completed, want)
	}
	elapsed := (s.Now() - start).Seconds()
	return float64(completed) / elapsed, nil
}

func niceYCSB(pr Params, clients int, wlName string) (float64, error) {
	opts := DefaultOptions()
	opts.Seed = pr.Seed
	opts.Clients = clients
	opts.LoadBalance = true
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		d.Close()
		return 0, err
	}
	tput, err := ycsbDriver(d.Sim, clients, pr, wlName,
		func(c int, p *sim.Proc, key string, size int) error {
			_, err := d.Clients[c].Put(p, key, "v", size)
			return err
		},
		func(c int, p *sim.Proc, key string) error {
			_, err := d.Clients[c].Get(p, key)
			return err
		},
		func(p *sim.Proc, key string, size int) error {
			_, err := d.Clients[0].Put(p, key, "v", size)
			return err
		})
	d.Close()
	return tput, err
}

func noobYCSB(pr Params, clients int, wlName string, cons noob.Consistency) (float64, error) {
	opts := DefaultNOOBOptions()
	opts.Seed = pr.Seed
	opts.Clients = clients
	opts.Consistency = cons
	if cons == noob.TwoPC {
		// The 2PC deployment load balances reads through a replica-aware
		// gateway (§6.5, §6.7: "added load-balancing latency").
		opts.Access = noob.ViaGateway
		opts.Gateway = noob.RAG
		opts.Gets = noob.GetRoundRobin
	}
	d := NewNOOB(opts)
	tput, err := ycsbDriver(d.Sim, clients, pr, wlName,
		func(c int, p *sim.Proc, key string, size int) error {
			_, err := d.Clients[c].Put(p, key, "v", size)
			return err
		},
		func(c int, p *sim.Proc, key string) error {
			_, err := d.Clients[c].Get(p, key)
			return err
		},
		func(p *sim.Proc, key string, size int) error {
			_, err := d.Clients[0].Put(p, key, "v", size)
			return err
		})
	d.Close()
	return tput, err
}

// SwitchScalabilityTable reproduces the §4.6 arithmetic with measured
// flow-table occupancy: entries per partition with and without load
// balancing, and the node count a 128K-entry switch supports.
func SwitchScalabilityTable() (*Figure, error) {
	fig := &Figure{
		ID:     "tab-switch",
		Title:  "Switch scalability (§4.6): forwarding entries per partition",
		XLabel: "config",
		YLabel: "entries (measured) / max nodes at 128K entries",
	}
	const tableCapacity = 128 * 1024
	entries := Series{System: "entries/partition"}
	maxNodes := Series{System: "max nodes @128K"}
	for _, lb := range []bool{false, true} {
		opts := DefaultOptions()
		opts.LoadBalance = lb
		d := NewNICE(opts)
		if err := d.Settle(); err != nil {
			d.Close()
			return nil, err
		}
		per := d.Service.Stats().RulesPerPart
		label := "no LB"
		if lb {
			label = fmt.Sprintf("LB, R=%d", opts.R)
		}
		entries.Points = append(entries.Points, Point{X: label, Value: float64(per)})
		maxNodes.Points = append(maxNodes.Points, Point{X: label, Value: float64(tableCapacity / per)})
		d.Close()
	}
	fig.Series = []Series{entries, maxNodes}
	fig.Notes = append(fig.Notes,
		"paper: 2N entries without LB (64K nodes), (R+1)N with LB (32K nodes at R=3);",
		"this implementation keeps the default primary rule alongside the R division rules, hence R+2")
	return fig, nil
}

// MembershipScalabilityTable measures the §4.1 claim: the cost of one
// membership change in messages, as the cluster grows. NICE needs O(S)
// switch updates + O(R) node messages; NOOB full membership needs O(N).
func MembershipScalabilityTable() (*Figure, error) {
	fig := &Figure{
		ID:     "tab-membership",
		Title:  "Membership maintenance cost per node failure",
		XLabel: "N",
		YLabel: "messages",
	}
	niceNode := Series{System: "NICE node msgs"}
	niceFlow := Series{System: "NICE switch msgs"}
	noobMsgs := Series{System: "NOOB msgs (full membership)"}
	gossipMsgs := Series{System: "NOOB msgs (epidemic)"}
	gossipRounds := Series{System: "NOOB gossip rounds"}
	for _, n := range []int{5, 15, 30} {
		opts := DefaultOptions()
		opts.Nodes = n
		opts.Heartbeat = 100 * time.Millisecond
		d := NewNICE(opts)
		if err := d.Settle(); err != nil {
			d.Close()
			return nil, err
		}
		beforeMsgs := d.Service.Stats().NodeMsgs
		beforeFlow := d.Core.Stats().FlowMods + d.Core.Stats().GroupMods
		d.Nodes[1].Crash()
		if err := d.Sim.RunUntil(d.Sim.Now() + time.Second); err != nil {
			d.Close()
			return nil, err
		}
		st := d.Service.Stats()
		if st.Failures != 1 {
			d.Close()
			return nil, fmt.Errorf("membership table: failure not detected at N=%d", n)
		}
		x := fmt.Sprintf("%d", n)
		niceNode.Points = append(niceNode.Points, Point{X: x, Value: float64(st.NodeMsgs - beforeMsgs)})
		niceFlow.Points = append(niceFlow.Points, Point{X: x,
			Value: float64(d.Core.Stats().FlowMods + d.Core.Stats().GroupMods - beforeFlow)})
		d.Close()

		nopts := DefaultNOOBOptions()
		nopts.Nodes = n
		nd := NewNOOB(nopts)
		nd.Member.BroadcastChange([]int{1})
		noobMsgs.Points = append(noobMsgs.Points, Point{X: x, Value: float64(nd.Member.MsgsSent())})
		nd.Close()

		msgs, rounds, err := gossipDissemination(n)
		if err != nil {
			return nil, err
		}
		gossipMsgs.Points = append(gossipMsgs.Points, Point{X: x, Value: float64(msgs)})
		gossipRounds.Points = append(gossipRounds.Points, Point{X: x, Value: float64(rounds)})
	}
	fig.Series = []Series{niceNode, niceFlow, noobMsgs, gossipMsgs, gossipRounds}
	fig.Notes = append(fig.Notes,
		"NICE columns must stay flat as N grows; the full-membership column grows linearly;",
		"the epidemic alternative ([41]) converges in O(log N) rounds but sends over O(N) messages")
	return fig, nil
}

// gossipDissemination measures one epidemic membership change at scale
// n: total messages and the simulated rounds until every member knows.
func gossipDissemination(n int) (msgs int64, rounds int, err error) {
	nopts := DefaultNOOBOptions()
	nopts.Nodes = n
	d := NewNOOB(nopts)
	defer d.Close()
	var ips []netsim.IP
	for _, st := range d.Stacks {
		ips = append(ips, st.IP())
	}
	cfg := noob.DefaultGossipConfig()
	var members []*noob.GossipMember
	for i, st := range d.Stacks {
		g := noob.NewGossipMember(st, cfg, i, ips, 7100)
		g.Start()
		members = append(members, g)
	}
	members[0].Announce([]int{1})
	deadline := d.Sim.Now()
	allKnow := -1
	for step := 1; step <= 4*len(members); step++ {
		deadline += cfg.Period
		if err := d.Sim.RunUntil(deadline); err != nil {
			return 0, 0, err
		}
		know := 0
		for _, g := range members {
			if g.Epoch() >= 1 {
				know++
			}
		}
		if know == n {
			allKnow = step
			break
		}
	}
	if allKnow < 0 {
		return 0, 0, fmt.Errorf("gossip did not converge at N=%d", n)
	}
	// Drain the tail of the epidemic so the message count is final.
	if err := d.Sim.RunUntil(d.Sim.Now() + 5*time.Second); err != nil {
		return 0, 0, err
	}
	for _, g := range members {
		msgs += g.MsgsSent()
	}
	return msgs, allKnow, nil
}
