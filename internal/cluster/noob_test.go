package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/noob"
	"repro/internal/sim"
)

// runNOOB drives fn and runs the simulation until it stops.
func runNOOB(t *testing.T, opts NOOBOptions, fn func(p *sim.Proc, d *NOOB)) *NOOB {
	t.Helper()
	d := NewNOOB(opts)
	done := false
	d.Sim.Spawn("driver", func(p *sim.Proc) {
		fn(p, d)
		done = true
		d.Sim.Stop()
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("driver did not finish")
	}
	return d
}

func noobMatrix() []NOOBOptions {
	var out []NOOBOptions
	for _, access := range []struct {
		name string
		mode noob.AccessMode
		gw   noob.GatewayMode
	}{
		{"ROG", noob.ViaGateway, noob.ROG},
		{"RAG", noob.ViaGateway, noob.RAG},
		{"RAC", noob.RAC, noob.RAG},
	} {
		for _, cons := range []noob.Consistency{noob.PrimaryOnly, noob.TwoPC} {
			o := DefaultNOOBOptions()
			o.Nodes = 5
			o.Access = access.mode
			o.Gateway = access.gw
			o.Consistency = cons
			out = append(out, o)
		}
	}
	return out
}

func TestNOOBPutGetAcrossConfigurations(t *testing.T) {
	for i, opts := range noobMatrix() {
		opts := opts
		t.Run(fmt.Sprintf("config%d", i), func(t *testing.T) {
			d := runNOOB(t, opts, func(p *sim.Proc, d *NOOB) {
				c := d.Clients[0]
				for k := 0; k < 10; k++ {
					key := fmt.Sprintf("key-%d", k)
					if _, err := c.Put(p, key, k, 1024); err != nil {
						t.Errorf("put %s: %v", key, err)
						return
					}
				}
				for k := 0; k < 10; k++ {
					key := fmt.Sprintf("key-%d", k)
					res, err := c.Get(p, key)
					if err != nil || !res.Found || res.Value != k {
						t.Errorf("get %s = %+v, %v", key, res, err)
					}
				}
				if res, err := c.Get(p, "missing"); err != nil || res.Found {
					t.Errorf("missing key: %+v %v", res, err)
				}
			})
			d.Close()
		})
	}
}

func TestNOOBReplicationReachesAllReplicas(t *testing.T) {
	for _, cons := range []noob.Consistency{noob.PrimaryOnly, noob.TwoPC} {
		opts := DefaultNOOBOptions()
		opts.Nodes = 5
		opts.Consistency = cons
		d := runNOOB(t, opts, func(p *sim.Proc, d *NOOB) {
			if _, err := d.Clients[0].Put(p, "obj", "v", 4096); err != nil {
				t.Errorf("put: %v", err)
				return
			}
			p.Sleep(ms(20))
		})
		part := d.Space.PartitionOf("obj")
		for _, idx := range d.placement().Replicas(part) {
			if _, ok := d.Nodes[idx].Store().Peek("obj"); !ok {
				t.Errorf("consistency=%v: replica %d missing object", cons, idx)
			}
		}
		for i := range d.Nodes {
			isReplica := false
			for _, idx := range d.placement().Replicas(part) {
				if idx == i {
					isReplica = true
				}
			}
			if _, ok := d.Nodes[i].Store().Peek("obj"); ok && !isReplica {
				t.Errorf("non-replica %d has object", i)
			}
		}
		d.Close()
	}
}

func TestNOOBRoutingHopLatencyOrdering(t *testing.T) {
	// ROG adds two hops, RAG one, RAC zero: get latency must order
	// ROG > RAG > RAC for small objects (Fig. 4's claim).
	lat := func(access noob.AccessMode, gw noob.GatewayMode) sim.Time {
		opts := DefaultNOOBOptions()
		opts.Nodes = 5
		opts.Access = access
		opts.Gateway = gw
		var total sim.Time
		d := runNOOB(t, opts, func(p *sim.Proc, d *NOOB) {
			c := d.Clients[0]
			if _, err := c.Put(p, "k", "v", 64); err != nil {
				t.Errorf("put: %v", err)
				return
			}
			for i := 0; i < 50; i++ {
				res, err := c.Get(p, "k")
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				total += res.Latency
			}
		})
		d.Close()
		return total
	}
	rog := lat(noob.ViaGateway, noob.ROG)
	rag := lat(noob.ViaGateway, noob.RAG)
	rac := lat(noob.RAC, noob.RAG)
	if !(rog > rag && rag > rac) {
		t.Fatalf("latency ordering violated: ROG=%v RAG=%v RAC=%v", rog, rag, rac)
	}
}

func TestNOOBChainReplication(t *testing.T) {
	opts := DefaultNOOBOptions()
	opts.Nodes = 5
	opts.Replication = noob.Chain
	d := runNOOB(t, opts, func(p *sim.Proc, d *NOOB) {
		if _, err := d.Clients[0].Put(p, "chained", "v", 8192); err != nil {
			t.Errorf("put: %v", err)
		}
	})
	part := d.Space.PartitionOf("chained")
	for _, idx := range d.placement().Replicas(part) {
		if _, ok := d.Nodes[idx].Store().Peek("chained"); !ok {
			t.Errorf("chain replica %d missing object", idx)
		}
	}
	d.Close()
}

func TestNOOBQuorumReturnsEarly(t *testing.T) {
	// With 3 slow replicas (50 Mbps) out of R=7, a k=1 quorum put of a
	// large object must be much faster than full replication.
	run := func(k int) sim.Time {
		opts := DefaultNOOBOptions()
		opts.Nodes = 8
		opts.R = 7
		opts.QuorumK = k
		var lat sim.Time
		d := NewNOOB(opts)
		// Throttle three replicas of the key's partition.
		part := d.Space.PartitionOf("big")
		reps := d.placement().Replicas(part)
		for _, idx := range reps[4:7] {
			d.Stacks[idx].Host().Port().Link().SetConfig(netsim.Mbps(50, 5*time.Microsecond))
		}
		d.Sim.Spawn("driver", func(p *sim.Proc) {
			res, err := d.Clients[0].Put(p, "big", "v", 1<<20)
			if err != nil {
				t.Errorf("put k=%d: %v", k, err)
			}
			lat = res.Latency
			d.Sim.Stop()
		})
		if err := d.Sim.Run(); err != nil {
			t.Fatal(err)
		}
		d.Close()
		return lat
	}
	fast := run(1)
	slow := run(7)
	if fast*3 > slow {
		t.Fatalf("quorum k=1 (%v) should be much faster than k=7 (%v)", fast, slow)
	}
}

func TestNOOBGetRoundRobinSpreadsLoad(t *testing.T) {
	opts := DefaultNOOBOptions()
	opts.Nodes = 5
	opts.Gets = noob.GetRoundRobin
	d := runNOOB(t, opts, func(p *sim.Proc, d *NOOB) {
		c := d.Clients[0]
		if _, err := c.Put(p, "hot", "v", 256); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		p.Sleep(ms(10))
		for i := 0; i < 9; i++ {
			if res, err := c.Get(p, "hot"); err != nil || !res.Found {
				t.Errorf("get: %+v %v", res, err)
				return
			}
		}
	})
	part := d.Space.PartitionOf("hot")
	for _, idx := range d.placement().Replicas(part) {
		if d.Nodes[idx].Stats().Gets == 0 {
			t.Errorf("replica %d served no gets under round robin", idx)
		}
	}
	d.Close()
}

func TestNOOBMembershipBroadcastIsLinear(t *testing.T) {
	count := func(n int) int64 {
		opts := DefaultNOOBOptions()
		opts.Nodes = n
		d := NewNOOB(opts)
		d.Member.BroadcastChange([]int{1})
		got := d.Member.MsgsSent()
		d.Close()
		return got
	}
	if c5, c20 := count(5), count(20); c5 != 5 || c20 != 20 {
		t.Fatalf("broadcast counts = %d, %d; want 5, 20 (O(N))", c5, c20)
	}
}

func TestNOOBQuorumRWConsistency(t *testing.T) {
	// §3.3: the majority design stays correct even when a replica holds
	// stale data — reads consult a majority and return the newest
	// version.
	opts := DefaultNOOBOptions()
	opts.Nodes = 5
	opts.Consistency = noob.QuorumRW
	d := runNOOB(t, opts, func(p *sim.Proc, d *NOOB) {
		c := d.Clients[0]
		for v := 1; v <= 3; v++ {
			if _, err := c.Put(p, "q", v, 1024); err != nil {
				t.Errorf("put v%d: %v", v, err)
				return
			}
		}
		p.Sleep(ms(20))
		res, err := c.Get(p, "q")
		if err != nil || !res.Found || res.Value != 3 {
			t.Errorf("quorum get = %+v, %v (want newest version 3)", res, err)
		}
		// Majority write: at least 3 of 5 replicas hold the object.
		part := d.Space.PartitionOf("q")
		have := 0
		for _, idx := range d.Placement.Replicas(part) {
			if _, ok := d.Nodes[idx].Store().Peek("q"); ok {
				have++
			}
		}
		if have < noob.Majority(3) {
			t.Errorf("only %d replicas hold the object after quorum writes", have)
		}
	})
	d.Close()
}

func TestNOOBQuorumReadTouchesMajority(t *testing.T) {
	// Every quorum get must consult ceil((R+1)/2) replicas; with R=5 the
	// peers see substantial read traffic even though one copy would do —
	// the §3.3 get overhead NICE eliminates.
	opts := DefaultNOOBOptions()
	opts.Nodes = 7
	opts.R = 5
	opts.Consistency = noob.QuorumRW
	d := runNOOB(t, opts, func(p *sim.Proc, d *NOOB) {
		c := d.Clients[0]
		if _, err := c.Put(p, "q", "v", 1024); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		p.Sleep(ms(20))
		d.Net.ResetHostStats()
		for i := 0; i < 20; i++ {
			if res, err := c.Get(p, "q"); err != nil || !res.Found {
				t.Errorf("get: %+v %v", res, err)
				return
			}
		}
	})
	part := d.Space.PartitionOf("q")
	reps := d.Placement.Replicas(part)
	// The coordinator plus at least two peers served reads.
	served := 0
	for _, idx := range reps {
		st := d.Stacks[idx].Host().Stats()
		if st.BytesSent > 0 {
			served++
		}
	}
	if served < noob.Majority(5) {
		t.Fatalf("only %d replicas involved in quorum reads, want >= %d", served, noob.Majority(5))
	}
	d.Close()
}
