package cluster

import (
	"strings"
	"testing"

	"repro/internal/netsim"
)

// leafOf returns the name of the leaf switch a host's access link lands
// on, failing the test if the host is not cabled to a leaf.
func leafOf(t *testing.T, h *netsim.Host) string {
	t.Helper()
	peer := h.Port().Peer()
	if peer == nil {
		t.Fatalf("host %s is not cabled", h.DeviceName())
	}
	name := peer.Dev.DeviceName()
	if !strings.HasPrefix(name, "leaf") {
		t.Fatalf("host %s attaches to %q, want a leaf", h.DeviceName(), name)
	}
	return name
}

// TestLeafSpineTopologyInvariants pins the fabric's wiring: exact link
// count, one uplink per leaf (making the leaf oversubscription ratio
// hostPorts:1), balanced round-robin host placement, and every host on
// a leaf — never cabled to the spine directly.
func TestLeafSpineTopologyInvariants(t *testing.T) {
	const leaves = 4
	opts := DefaultOptions()
	opts.Nodes = 6
	opts.Clients = 4
	opts.TrafficGateways = true
	d := NewNICELeafSpine(opts, leaves)
	defer d.Close()

	hosts := opts.Nodes + 1 + opts.Clients + leaves // nodes + meta + clients + gateways
	if got, want := len(d.Net.Links()), leaves+hosts; got != want {
		t.Errorf("%d links, want %d (= %d uplinks + %d access links)", got, want, leaves, hosts)
	}

	var spine *netsim.Switch
	perLeaf := map[string]int{}
	for _, sw := range d.Net.Switches() {
		name := sw.DeviceName()
		if name == "spine" {
			spine = sw
			continue
		}
		uplinks, access := 0, 0
		for i := 0; i < sw.NumPorts(); i++ {
			p := sw.Port(i)
			if !p.Connected() {
				continue
			}
			switch peer := p.Peer().Dev.DeviceName(); {
			case peer == "spine":
				uplinks++
			case strings.HasPrefix(peer, "leaf"):
				t.Errorf("%s port %d cabled leaf-to-leaf (%s)", name, i, peer)
			default:
				access++
			}
		}
		if uplinks != 1 {
			t.Errorf("%s has %d spine uplinks, want 1", name, uplinks)
		}
		if access == 0 {
			t.Errorf("%s serves no hosts", name)
		}
		perLeaf[name] = access
	}
	if len(perLeaf) != leaves {
		t.Fatalf("%d leaves, want %d", len(perLeaf), leaves)
	}
	if spine == nil {
		t.Fatal("no spine switch")
	}
	for i := 0; i < spine.NumPorts(); i++ {
		if p := spine.Port(i); p.Connected() {
			if peer := p.Peer().Dev.DeviceName(); !strings.HasPrefix(peer, "leaf") {
				t.Errorf("spine port %d cabled to %q, want a leaf", i, peer)
			}
		}
	}

	// Oversubscription: every leaf funnels its access ports through one
	// equal-capacity uplink, so the worst-case ratio is bounded by the
	// balanced placement — no leaf may carry more than ceil(hosts/leaves)
	// access links (round-robin) plus its pinned gateway.
	minA, maxA := hosts, 0
	for _, a := range perLeaf {
		if a < minA {
			minA = a
		}
		if a > maxA {
			maxA = a
		}
	}
	ceil := (opts.Nodes + 1 + opts.Clients + leaves - 1) / leaves
	if maxA > ceil+1 {
		t.Errorf("worst leaf carries %d access links, want <= %d (round-robin + gateway)", maxA, ceil+1)
	}
	if maxA-minA > 1 {
		t.Errorf("placement imbalance: leaves carry %d..%d access links", minA, maxA)
	}

	// Rack locality: node i lands on leaf i mod leaves (place() files
	// nodes first, in order), so replica sets of adjacent ring indices
	// spread across racks instead of stacking in one.
	for i, st := range d.Stacks {
		want := "leaf" + itoa(i%leaves)
		if got := leafOf(t, st.Host()); got != want {
			t.Errorf("node %d on %s, want %s", i, got, want)
		}
	}
	// Gateways are pinned one per leaf, in leaf order: gateway i must sit
	// on leaf i, where its leaf's client-space return route terminates.
	if len(d.Gateways) != leaves {
		t.Fatalf("%d gateways, want %d", len(d.Gateways), leaves)
	}
	for i, g := range d.Gateways {
		want := "leaf" + itoa(i)
		if got := leafOf(t, g.Stack.Host()); got != want {
			t.Errorf("gateway %d on %s, want %s", i, got, want)
		}
		if g.Leaf.Switch().DeviceName() != want {
			t.Errorf("gateway %d registered against %s, want %s", i, g.Leaf.Switch().DeviceName(), want)
		}
	}
	// NodeLinks (the chaos fabric's fault handles) must be the nodes' own
	// access links, index-aligned with d.Nodes.
	if len(d.NodeLinks) != opts.Nodes {
		t.Fatalf("%d NodeLinks, want %d", len(d.NodeLinks), opts.Nodes)
	}
	for i, l := range d.NodeLinks {
		h := d.Stacks[i].Host()
		if l.A != h.Port() && l.B != h.Port() {
			t.Errorf("NodeLinks[%d] does not terminate at node %d", i, i)
		}
	}
}
