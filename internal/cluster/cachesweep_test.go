package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// cacheTestOpts is a small deployment with an aggressive detector so
// installs happen within a short test run.
func cacheTestOpts(seed int64) Options {
	opts := DefaultOptions()
	opts.Seed = seed
	opts.Nodes = 4
	opts.Clients = 2
	opts.R = 3
	opts.Cache = true
	opts.CacheCapacity = 32
	opts.CacheSampleEvery = 1
	opts.CacheHotThreshold = 3
	return opts
}

// TestCacheServesHotKeyAtSwitch drives repeated gets at one key and
// checks the detector installs it and subsequent gets are answered by
// the switch with the correct value.
func TestCacheServesHotKeyAtSwitch(t *testing.T) {
	d := NewNICE(cacheTestOpts(1))
	defer d.Close()
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	var failure error
	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		if _, err := d.Clients[0].Put(p, "hot", "the-value", 100); err != nil {
			failure = err
			return
		}
		for i := 0; i < 40; i++ {
			res, err := d.Clients[0].Get(p, "hot")
			if err != nil {
				failure = err
				return
			}
			if !res.Found || res.Value != "the-value" {
				failure = fmt.Errorf("get %d: found=%v value=%v", i, res.Found, res.Value)
				return
			}
		}
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if failure != nil {
		t.Fatal(failure)
	}
	st := d.Cache.Stats()
	if st.Installs == 0 {
		t.Fatalf("detector never installed the hot key: %+v (mgr %+v)", st, d.CacheMgr.Stats())
	}
	if st.Hits == 0 {
		t.Fatalf("no get was answered at the switch: %+v", st)
	}
	if !d.Cache.Contains("hot") {
		t.Fatal("hot key not resident after the run")
	}
}

// TestCacheInvalidationOrdering is the staleness check: a get issued
// after a put's commit ack must never return the overwritten value, even
// while the detector keeps reinstalling the key between writes. The
// writer bumps an integer value; the reader snapshots the last-acked
// version before each get and requires the result to be at least it.
func TestCacheInvalidationOrdering(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		for _, updateOnPut := range []bool{false, true} {
			name := fmt.Sprintf("seed%d-invalidate", seed)
			if updateOnPut {
				name = fmt.Sprintf("seed%d-update", seed)
			}
			t.Run(name, func(t *testing.T) {
				opts := cacheTestOpts(seed)
				opts.CacheUpdateOnPut = updateOnPut
				d := NewNICE(opts)
				defer d.Close()
				if err := d.Settle(); err != nil {
					t.Fatal(err)
				}

				const rounds = 30
				acked := 0 // last put version whose ack the writer saw
				var failure error
				g := sim.NewGroup(d.Sim)

				g.Add(1)
				d.Sim.Spawn("writer", func(p *sim.Proc) {
					defer g.Done()
					for i := 1; i <= rounds; i++ {
						if _, err := d.Clients[0].Put(p, "hot", i, 100); err != nil {
							failure = err
							return
						}
						acked = i
						// Give the detector time to reinstall, so gets hit
						// the cache between invalidating writes.
						p.Sleep(5 * time.Millisecond)
					}
				})

				g.Add(1)
				d.Sim.Spawn("reader", func(p *sim.Proc) {
					defer g.Done()
					for acked < rounds && failure == nil {
						before := acked
						res, err := d.Clients[1].Get(p, "hot")
						if err != nil {
							failure = err
							return
						}
						if !res.Found {
							continue // first put not committed yet
						}
						if got := res.Value.(int); got < before {
							failure = fmt.Errorf("stale read: got version %d after version %d was acked", got, before)
							return
						}
					}
				})

				d.Sim.Spawn("join", func(p *sim.Proc) { g.Wait(p); d.Sim.Stop() })
				if err := d.Sim.Run(); err != nil {
					t.Fatal(err)
				}
				if failure != nil {
					t.Fatal(failure)
				}
				st := d.Cache.Stats()
				if st.Hits == 0 {
					t.Fatalf("race never exercised the cache: %+v", st)
				}
				if !updateOnPut && st.Invalidations == 0 {
					t.Fatalf("write-invalidate mode never invalidated: %+v", st)
				}
				if updateOnPut && st.Updates == 0 {
					t.Fatalf("write-update mode never updated: %+v", st)
				}
			})
		}
	}
}

// TestCacheSweepShape checks the experiment's headline claim: at high
// skew the in-switch cache beats load balancing on hot-key get
// throughput, because LB is bounded by R servers while the cache answers
// in the fabric.
func TestCacheSweepShape(t *testing.T) {
	figs, err := CacheSweep(Params{Ops: 60, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	theta := figs[0]
	for _, x := range []string{"0.99", "1.20"} {
		cache, ok1 := theta.SeriesValue("NICEKV+cache", x)
		lb, ok2 := theta.SeriesValue("NICEKV+LB", x)
		if !ok1 || !ok2 {
			t.Fatalf("missing series at theta %s", x)
		}
		if cache <= lb {
			t.Errorf("theta %s: cache %.0f gets/s not above LB %.0f", x, cache, lb)
		}
	}
	// Sanity: every cell produced traffic.
	for _, f := range figs {
		for _, s := range f.Series {
			for _, pt := range s.Points {
				if pt.Value <= 0 && f.YLabel[:4] == "gets" {
					t.Errorf("%s: %s at %s is %v", f.ID, s.System, pt.X, pt.Value)
				}
			}
		}
	}
}

// TestCacheSweepDeterminism requires the parallel grid to reproduce the
// sequential sweep bit for bit (the RunCells contract).
func TestCacheSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full sweeps")
	}
	pr := Params{Ops: 20, Seed: 9}
	par, err := CacheSweep(pr)
	if err != nil {
		t.Fatal(err)
	}
	pr.Seq = true
	seq, err := CacheSweep(pr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range par {
		a, b := par[i], seq[i]
		for si := range a.Series {
			for pi := range a.Series[si].Points {
				pa, pb := a.Series[si].Points[pi], b.Series[si].Points[pi]
				if pa != pb {
					t.Fatalf("%s: %s at %s: parallel %v != sequential %v",
						a.ID, a.Series[si].System, pa.X, pa.Value, pb.Value)
				}
			}
		}
	}
}
