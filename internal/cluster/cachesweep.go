package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The cachesweep experiment measures what the in-switch hot-key cache
// buys over the paper's load balancing: LB spreads a skewed get stream
// across the R replicas of a partition, so a single hot key is still
// bounded by R servers, while the cache answers it in the fabric. The
// sweep compares NICEKV, NICEKV+LB and NICEKV+cache along three axes —
// workload skew (Zipf theta), cluster size, and key distribution — and
// reports both aggregate get throughput and p99 get latency.

// cacheSweepSystems is the experiment's system axis.
var cacheSweepSystems = []string{"NICEKV", "NICEKV+LB", "NICEKV+cache"}

// CacheSweepThetas is the skew axis (YCSB's default is 0.99).
var CacheSweepThetas = []float64{0.5, 0.9, 0.99, 1.2}

// CacheSweepNodes is the cluster-size axis, swept at theta = 0.99.
var CacheSweepNodes = []int{4, 8, 16}

// cacheSweepRecords keeps the keyspace small enough that the hot head is
// hammered hard even at modest op counts.
const cacheSweepRecords = 256

// cacheCellResult is one (system, x) measurement.
type cacheCellResult struct {
	tput    float64 // measured gets per second, aggregate
	p99     float64 // get p99, seconds
	hitRate float64 // switch cache hit rate (0 for cacheless systems)
}

// cacheSweepOpts builds one system variant's deployment options.
func cacheSweepOpts(system string, seed int64, nodes, clients int) Options {
	opts := DefaultOptions()
	opts.Seed = seed
	opts.Nodes = nodes
	opts.Clients = clients
	if opts.R > nodes {
		opts.R = nodes
	}
	switch system {
	case "NICEKV+LB":
		opts.LoadBalance = true
	case "NICEKV+cache":
		opts.Cache = true
		opts.CacheCapacity = 64
		opts.CacheSampleEvery = 1
		// Install quickly: the sweeps run far fewer ops than a production
		// trace, so the detector must react within the measured window.
		opts.CacheHotThreshold = 4
		opts.CacheDecayEvery = 10 * time.Second
	}
	return opts
}

// cacheRun loads the keyspace, warms the detector, then drives a
// read-mostly phase measuring get throughput and latency.
func cacheRun(pr Params, seed int64, system string, nodes, clients int,
	chooser workload.KeyChooser, putFrac float64) (cacheCellResult, error) {

	opts := cacheSweepOpts(system, seed, nodes, clients)
	d := NewNICE(opts)
	defer d.Close()
	if err := d.Settle(); err != nil {
		return cacheCellResult{}, err
	}

	key := func(i int) string { return fmt.Sprintf("user%d", i) }
	const valueSize = workload.DefaultValueSize

	// Load phase: client 0 writes every record.
	var loadErr error
	d.Sim.Spawn("cache-load", func(p *sim.Proc) {
		for i := 0; i < cacheSweepRecords; i++ {
			if _, err := d.Clients[0].Put(p, key(i), "v", valueSize); err != nil {
				loadErr = err
				break
			}
		}
		d.Sim.Stop()
	})
	if err := d.Sim.Run(); err != nil {
		return cacheCellResult{}, err
	}
	if loadErr != nil {
		return cacheCellResult{}, loadErr
	}

	// Warm phase: unmeasured gets let the sampled miss stream push hot
	// keys over the detector threshold and the installs land.
	warm := pr.Ops / 4
	if warm < 32 {
		warm = 32
	}
	var warmErr error
	{
		g := sim.NewGroup(d.Sim)
		for c := range d.Clients {
			c := c
			rng := rand.New(rand.NewSource(seed + 1000*int64(c+1)))
			g.Add(1)
			d.Sim.Spawn(fmt.Sprintf("cache-warm%d", c), func(p *sim.Proc) {
				defer g.Done()
				for n := 0; n < warm; n++ {
					if _, err := d.Clients[c].Get(p, key(chooser.Next(rng))); err != nil {
						warmErr = err
						return
					}
				}
			})
		}
		d.Sim.Spawn("cache-warm-join", func(p *sim.Proc) { g.Wait(p); d.Sim.Stop() })
		if err := d.Sim.Run(); err != nil {
			return cacheCellResult{}, err
		}
		if warmErr != nil {
			return cacheCellResult{}, warmErr
		}
	}

	// Measured phase: read-mostly mixed traffic.
	var hist metrics.Histogram
	gets := 0
	start := d.Sim.Now()
	var opErr error
	g := sim.NewGroup(d.Sim)
	for c := range d.Clients {
		c := c
		rng := rand.New(rand.NewSource(seed + 2000*int64(c+1)))
		g.Add(1)
		d.Sim.Spawn(fmt.Sprintf("cache-client%d", c), func(p *sim.Proc) {
			defer g.Done()
			for n := 0; n < pr.Ops; n++ {
				k := key(chooser.Next(rng))
				if rng.Float64() < putFrac {
					if _, err := d.Clients[c].Put(p, k, "v", valueSize); err != nil {
						opErr = err
						return
					}
					continue
				}
				res, err := d.Clients[c].Get(p, k)
				if err != nil {
					opErr = err
					return
				}
				hist.Add(res.Latency)
				gets++
			}
		})
	}
	d.Sim.Spawn("cache-join", func(p *sim.Proc) { g.Wait(p); d.Sim.Stop() })
	if err := d.Sim.Run(); err != nil {
		return cacheCellResult{}, err
	}
	if opErr != nil {
		return cacheCellResult{}, opErr
	}

	elapsed := (d.Sim.Now() - start).Seconds()
	out := cacheCellResult{p99: hist.Percentile(99)}
	if elapsed > 0 {
		out.tput = float64(gets) / elapsed
	}
	if d.Cache != nil {
		out.hitRate = d.Cache.Stats().HitRate()
	}
	return out, nil
}

// cacheGrid runs one sweep axis as a (system, x) RunCells grid and
// assembles throughput and p99 series in grid order.
func cacheGrid(pr Params, xs []string,
	cell func(seed int64, system string, xi int) (cacheCellResult, error)) (tput, p99 []Series, err error) {

	results := make([]cacheCellResult, len(cacheSweepSystems)*len(xs))
	err = RunCells(pr, len(results), func(i int, seed int64) error {
		sys := cacheSweepSystems[i/len(xs)]
		xi := i % len(xs)
		r, cerr := cell(seed, sys, xi)
		results[i] = r
		return cerr
	})
	if err != nil {
		return nil, nil, err
	}
	for si, sys := range cacheSweepSystems {
		st := Series{System: sys}
		sp := Series{System: sys}
		for xi, x := range xs {
			r := results[si*len(xs)+xi]
			st.Points = append(st.Points, Point{X: x, Value: r.tput})
			sp.Points = append(sp.Points, Point{X: x, Value: r.p99 * 1e3}) // ms
		}
		tput = append(tput, st)
		p99 = append(p99, sp)
	}
	return tput, p99, nil
}

// CacheSweep runs the full experiment. The sweeps are read-mostly
// (5% puts) so the write-through invalidation is exercised while reads
// dominate, as in the motivating serving workloads.
func CacheSweep(pr Params) ([]*Figure, error) {
	const (
		sweepNodes   = 6
		sweepClients = 3
		putFrac      = 0.05
		theta        = workload.ZipfTheta
	)

	// Axis 1: skew. Fixed cluster, rising Zipf theta.
	thetaXs := make([]string, len(CacheSweepThetas))
	for i, t := range CacheSweepThetas {
		thetaXs[i] = fmt.Sprintf("%.2f", t)
	}
	thetaT, thetaP, err := cacheGrid(pr, thetaXs,
		func(seed int64, system string, xi int) (cacheCellResult, error) {
			ch := workload.NewZipfianTheta(cacheSweepRecords, CacheSweepThetas[xi])
			return cacheRun(pr, seed, system, sweepNodes, sweepClients, ch, putFrac)
		})
	if err != nil {
		return nil, err
	}

	// Axis 2: cluster size at YCSB skew.
	nodeXs := make([]string, len(CacheSweepNodes))
	for i, n := range CacheSweepNodes {
		nodeXs[i] = fmt.Sprintf("%d", n)
	}
	nodesT, _, err := cacheGrid(pr, nodeXs,
		func(seed int64, system string, xi int) (cacheCellResult, error) {
			ch := workload.NewZipfianTheta(cacheSweepRecords, theta)
			return cacheRun(pr, seed, system, CacheSweepNodes[xi], sweepClients, ch, putFrac)
		})
	if err != nil {
		return nil, err
	}

	// Axis 3: distribution shape.
	distXs := []string{"uniform", "zipf-0.99", "hotspot-90/10"}
	choosers := []workload.KeyChooser{
		workload.Uniform{N: cacheSweepRecords},
		workload.NewZipfianTheta(cacheSweepRecords, theta),
		workload.NewHotSpot(cacheSweepRecords, 0.9, 0.1),
	}
	distT, _, err := cacheGrid(pr, distXs,
		func(seed int64, system string, xi int) (cacheCellResult, error) {
			return cacheRun(pr, seed, system, sweepNodes, sweepClients, choosers[xi], putFrac)
		})
	if err != nil {
		return nil, err
	}

	figs := []*Figure{
		{
			ID:     "cache-theta",
			Title:  "In-switch caching vs load balancing under rising skew",
			XLabel: "zipf theta",
			YLabel: "gets per second, aggregate",
			Series: thetaT,
			Notes: []string{
				fmt.Sprintf("%d nodes, %d clients, %d keys, 5%% puts; cache: 64 entries, write-invalidate",
					sweepNodes, sweepClients, cacheSweepRecords),
				"LB spreads a hot key over R replicas; the cache answers it at the switch",
			},
		},
		{
			ID:     "cache-theta-p99",
			Title:  "Get tail latency under rising skew",
			XLabel: "zipf theta",
			YLabel: "get p99 latency, ms",
			Series: thetaP,
		},
		{
			ID:     "cache-nodes",
			Title:  "In-switch caching vs cluster size (theta = 0.99)",
			XLabel: "nodes",
			YLabel: "gets per second, aggregate",
			Series: nodesT,
			Notes:  []string{"hot-key throughput with the cache is decoupled from node count"},
		},
		{
			ID:     "cache-dist",
			Title:  "In-switch caching across key distributions",
			XLabel: "distribution",
			YLabel: "gets per second, aggregate",
			Series: distT,
		},
	}
	return figs, nil
}
