package cluster

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// Deployment-level tests for the chain-replicated control plane: a
// takeover must restore the authoritative coordination state from the
// chain tail, a returning zombie primary must be fenced everywhere it
// can write, and a controller crash landing mid-node-recovery must
// never strand the rejoining node.

// ctrlChainOptions is the shared deployment: fast failure detection so
// promotions fit inside a test's patience.
func ctrlChainOptions() Options {
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.Standby = true
	opts.CtrlChain = true
	opts.Heartbeat = ms(50)
	opts.OpTimeout = ms(200)
	opts.RetryWait = ms(100)
	return opts
}

func TestCtrlChainTakeoverRestoresState(t *testing.T) {
	d := NewNICE(ctrlChainOptions())
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	const part = 0
	victim := d.Service.View(part).Replicas[1].Index
	keys := d.keysInPartition(part, 8)

	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		c := d.Clients[0]
		for _, k := range keys[:4] {
			if _, err := c.Put(p, k, "v", 1024); err != nil {
				t.Errorf("seed put: %v", err)
				return
			}
		}
		if acked := d.Chain.Stats().Acked; acked == 0 {
			t.Error("controller writes never reached the chain tail")
		}
		d.MetaHost.SetDown(true)
		p.Sleep(500 * time.Millisecond)
		svc := d.Standby.Promoted()
		if svc == nil {
			t.Error("standby did not take over")
			return
		}
		if svc.Gen() <= d.Service.Gen() {
			t.Errorf("promoted generation %d does not fence the primary's %d",
				svc.Gen(), d.Service.Gen())
		}
		// Views restored from the chain, not the mirror: full replica set,
		// epoch advanced past everything the primary announced.
		v := svc.View(part)
		if v == nil || len(v.Replicas) != 3 {
			t.Fatalf("promoted service restored a broken view: %+v", v)
		}
		if v.Gen != svc.Gen() {
			t.Errorf("restored view carries gen %d, want %d", v.Gen, svc.Gen())
		}
		// The promoted controller must still drive membership: crash a
		// node, expect a handoff, and keep puts available.
		d.Nodes[victim].Crash()
		p.Sleep(500 * time.Millisecond)
		v = svc.View(part)
		if v.HasReplica(victim) {
			t.Error("promoted service did not process the node failure")
		}
		if v.Handoff == nil {
			t.Error("promoted service installed no handoff")
		}
		for _, k := range keys[4:] {
			if _, err := c.Put(p, k, "v", 1024); err != nil {
				t.Errorf("put after failure under chain-restored controller: %v", err)
				return
			}
		}
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	d.Close()
}

// A takeover must also succeed when the chain itself is degraded: with
// one replica fail-stopped and spliced out, the surviving chain still
// serves the authoritative snapshot.
func TestCtrlChainTakeoverWithDegradedChain(t *testing.T) {
	d := NewNICE(ctrlChainOptions())
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		c := d.Clients[0]
		if _, err := c.Put(p, "degraded", "v", 1024); err != nil {
			t.Errorf("seed put: %v", err)
			return
		}
		d.Chain.SetDown(1, true) // kill the middle chain store
		p.Sleep(50 * time.Millisecond)
		if d.Chain.Live() != 2 {
			t.Errorf("chain did not splice the dead store: live=%d", d.Chain.Live())
		}
		d.MetaHost.SetDown(true)
		p.Sleep(500 * time.Millisecond)
		svc := d.Standby.Promoted()
		if svc == nil {
			t.Error("standby did not take over from the degraded chain")
			return
		}
		if v := svc.View(0); v == nil || len(v.Replicas) != 3 {
			t.Errorf("degraded chain restored a broken view: %+v", v)
		}
		if _, err := c.Put(p, "degraded", "v2", 1024); err != nil {
			t.Errorf("put after degraded-chain takeover: %v", err)
		}
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	d.Close()
}

// The split-brain fence: after a takeover, the old primary returns
// from the dead and tries to keep being the controller. Every write
// path it has — chain state, switch rules, cache installs, view
// announcements — must reject its stale generation, and the data path
// must stay correct throughout.
func TestSplitBrainZombieControllerIsFenced(t *testing.T) {
	opts := ctrlChainOptions()
	opts.Cache = true
	opts.CacheHotThreshold = 4
	opts.CacheSampleEvery = 1
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		c := d.Clients[0]
		if _, err := c.Put(p, "fence", "v1", 1024); err != nil {
			t.Errorf("seed put: %v", err)
			return
		}
		d.MetaHost.SetDown(true)
		p.Sleep(500 * time.Millisecond)
		svc := d.Standby.Promoted()
		if svc == nil {
			t.Error("standby did not take over")
			return
		}
		newGen := svc.Gen()
		nodeView := d.Nodes[0].View(0)
		if nodeView == nil || nodeView.Gen != newGen {
			t.Fatalf("nodes never installed the promoted generation: %+v", nodeView)
		}

		// The zombie rises. Its host comes back, its procs never stopped;
		// its heartbeat detector has seen nothing for 500ms (the takeover
		// rule steals the heartbeats), so it immediately declares every
		// node dead and tries to announce emergency views.
		d.MetaHost.SetDown(false)
		p.Sleep(400 * time.Millisecond)

		if fenced := d.Service.Stats().FencedWrites; fenced == 0 {
			t.Error("the zombie's state writes were never fenced at the store")
		}
		if fenced := d.Chain.Stats().Fenced; fenced == 0 {
			t.Error("the chain head accepted the zombie's generation")
		}
		// The nodes still hold the promoted controller's views — the
		// zombie's announcements moved nothing.
		for i, n := range d.Nodes {
			if v := n.View(0); v != nil && v.Gen < newGen {
				t.Errorf("node %d regressed to a zombie view: gen %d < %d", i, v.Gen, newGen)
			}
		}
		// An install the zombie had in flight when the fence rose is
		// rejected when it reaches the switch.
		preRejected := d.Cache.Stats().Rejected
		d.Cache.InstallAs(d.Service.Gen(), "zombie-key", "stale", 64, 1)
		p.Sleep(10 * time.Millisecond) // let the install's ctrl delay elapse
		if d.Cache.Contains("zombie-key") {
			t.Error("a stale-generation cache install reached the switch table")
		}
		if d.Cache.Stats().Rejected == preRejected {
			t.Error("the switch never counted the fenced install")
		}
		// The data path survived the whole affair.
		if res, err := c.Get(p, "fence"); err != nil || !res.Found {
			t.Errorf("get after zombie return: %+v %v", res, err)
		}
		if _, err := c.Put(p, "fence", "v2", 1024); err != nil {
			t.Errorf("put after zombie return: %v", err)
		}
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	d.Close()
}

// The satellite-1 regression: a controller loss mid-node-recovery must
// not strand the rejoiner. The node crashes and restarts, its rejoin
// begins, and the controller dies before the recovery completes; the
// promoted standby inherits a Recovering node (through the chain or
// the now status-complete mirror) and must finish the procedure —
// previously the takeover could leave the node get-invisible forever.
func TestTakeoverMidRecoveryDoesNotStrandRejoiner(t *testing.T) {
	for _, chain := range []bool{false, true} {
		name := "mirror"
		if chain {
			name = "chain"
		}
		t.Run(name, func(t *testing.T) {
			opts := ctrlChainOptions()
			opts.CtrlChain = chain
			d := NewNICE(opts)
			if err := d.Settle(); err != nil {
				t.Fatal(err)
			}
			const part = 0
			victim := d.Service.View(part).Replicas[0].Index
			keys := d.keysInPartition(part, 6)

			d.Sim.Spawn("driver", func(p *sim.Proc) {
				defer d.Sim.Stop()
				c := d.Clients[0]
				for _, k := range keys[:3] {
					if _, err := c.Put(p, k, "v", 1024); err != nil {
						t.Errorf("seed put: %v", err)
						return
					}
				}
				// Crash the primary, let the failure be detected and the
				// handoff installed, then bring the node back: its rejoin
				// request starts the two-phase recovery.
				d.Nodes[victim].Crash()
				p.Sleep(300 * time.Millisecond)
				d.Nodes[victim].Restart()
				// Kill the controller while the rejoin is in flight.
				p.Sleep(60 * time.Millisecond)
				d.MetaHost.SetDown(true)
				p.Sleep(1500 * time.Millisecond)
				if d.Standby.Promoted() == nil {
					t.Error("standby did not take over")
					return
				}
				if d.Nodes[victim].Recovering() {
					t.Error("takeover stranded the rejoining node in recovery")
				}
				for _, k := range keys[3:] {
					if _, err := c.Put(p, k, "v", 1024); err != nil {
						t.Errorf("put after recovery-spanning takeover: %v", err)
						return
					}
				}
				for _, k := range keys {
					if res, err := c.Get(p, k); err != nil || !res.Found {
						t.Errorf("get %s after recovery-spanning takeover: %+v %v", k, res, err)
						return
					}
				}
			})
			if err := d.Sim.Run(); err != nil {
				t.Fatal(err)
			}
			d.Close()
		})
	}
}

// A node that crashes and restarts faster than the failure detector
// notices used to hit the controller's "already up" rejoin path, which
// dropped the request and left the node recovering forever. The
// controller now demotes and freshly rejoins it.
func TestFastRestartRejoinsThroughFullPath(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.Heartbeat = ms(100)
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	const part = 0
	victim := d.Service.View(part).Replicas[0].Index
	keys := d.keysInPartition(part, 4)

	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		c := d.Clients[0]
		for _, k := range keys {
			if _, err := c.Put(p, k, "v", 1024); err != nil {
				t.Errorf("seed put: %v", err)
				return
			}
		}
		// Bounce within the detection window (3 x 100ms heartbeats).
		d.Nodes[victim].Crash()
		p.Sleep(120 * time.Millisecond)
		d.Nodes[victim].Restart()
		p.Sleep(2 * time.Second)
		if d.Nodes[victim].Recovering() {
			t.Error("fast-restarted node is stranded in recovery")
		}
		for _, k := range keys {
			if res, err := c.Get(p, k); err != nil || !res.Found {
				t.Errorf("get %s after fast restart: %+v %v", k, res, err)
				return
			}
		}
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	d.Close()
}
