package cluster

import (
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/sim"
)

// TestDurableCrashRecovery: with the engine on, a node crash really
// destroys its memory tier and unfsynced WAL tail, and the restart path
// rebuilds it by snapshot load + log replay — observable as nonzero
// recovery counters — while acked writes stay readable.
func TestDurableCrashRecovery(t *testing.T) {
	opts := chaosOptions(3) // fast failure detection + bounded retries
	opts.Clients = 1
	opts.DurableStore = true
	opts.StoreMemoryBudget = 4 << 10
	opts.StoreSnapshotEvery = 50 * time.Millisecond
	d := NewNICE(opts)
	defer d.Close()
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}

	const keys = 16
	key := func(i int) string { return string(rune('a'+i%26)) + "key" }
	var opErr error
	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		for i := 0; i < keys; i++ {
			if _, err := d.Clients[0].Put(p, key(i), "v1", 512); err != nil {
				opErr = err
				return
			}
		}
		// Fail-stop node 1 and bring it back: Crash wipes its engine,
		// Restart runs the recovery protocol (storage replay + peer sync).
		d.Nodes[1].Crash()
		p.Sleep(60 * time.Millisecond) // past detection: the view moves on
		d.Nodes[1].Restart()
		p.Sleep(200 * time.Millisecond) // storage replay + peer sync complete
		for i := 0; i < keys; i++ {
			obj, err := d.Clients[0].Get(p, key(i))
			if err != nil {
				opErr = err
				return
			}
			if obj.Value != "v1" {
				t.Errorf("Get(%q) = %v after recovery, want v1", key(i), obj.Value)
			}
		}
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if opErr != nil {
		t.Fatal(opErr)
	}

	st, ok := d.Nodes[1].Store().StorageStats()
	if !ok {
		t.Fatal("durable deployment has no storage stats")
	}
	if st.Recoveries == 0 {
		t.Error("crashed node recorded no storage recovery")
	}
	if st.ReplayedRecords == 0 && st.SnapshotBytes == 0 {
		t.Errorf("recovery rebuilt nothing: %+v", st)
	}
	sc := d.StorageCounters()
	if sc.WALAppends == 0 || sc.Fsyncs == 0 {
		t.Errorf("engines recorded no WAL activity: %+v", sc)
	}
}

// TestChaosDurableStore pins the durable chaos cell: crash-heavy
// schedules against the engine-backed system must finish with zero
// invariant violations (the durability audit included), show real
// snapshot+replay recoveries, and replay bit-identically — recovery
// counters included in the determinism check.
func TestChaosDurableStore(t *testing.T) {
	var sys chaosSystem
	for _, s := range chaosSystems() {
		if s.name == "NICEKV+durable" {
			sys = s
		}
	}
	if sys.name == "" {
		t.Fatal("durable system missing from chaosSystems")
	}

	var recoveries, replayed int64
	for i := 0; i < 3; i++ {
		sched := faultinject.Generate(DeriveSeed(42, i), chaosGenConfig(sys, 0))
		cell, err := runChaosCell(sys, sched)
		if err != nil {
			t.Fatal(err)
		}
		if cell.Ops == 0 {
			t.Errorf("cell %s recorded no operations", cell.Repro())
		}
		for _, v := range cell.Violations {
			t.Errorf("%s: %s", cell.Repro(), v)
		}
		recoveries += cell.Recoveries
		replayed += cell.Replayed

		again, err := runChaosCell(sys, sched)
		if err != nil {
			t.Fatal(err)
		}
		if again.Hash != cell.Hash || again.Recoveries != cell.Recoveries || again.Replayed != cell.Replayed {
			t.Errorf("%s: replay diverged: hash %x/%x recoveries %d/%d replayed %d/%d",
				cell.Repro(), cell.Hash, again.Hash,
				cell.Recoveries, again.Recoveries, cell.Replayed, again.Replayed)
		}
	}
	if recoveries == 0 {
		t.Error("crash-weighted schedules produced no storage recoveries")
	}
	if replayed == 0 {
		t.Error("recoveries replayed no WAL records")
	}
}

// TestStaleAbortDoesNotPoisonRetry replays a crash-heavy schedule that
// once produced a durability violation: an abort TsMsg from a put's
// aborted first attempt was buffered as an orphan and consumed by the
// retry of the same operation right after its Ack1, so a secondary the
// primary counted toward the commit quorum silently dropped its prepare.
// The replica that missed the commit later got promoted without the
// put's dedup record and re-ran the old put under a fresh timestamp,
// rolling back a newer acked write. Aborts are attempt-scoped now; this
// cell must stay violation-free.
func TestStaleAbortDoesNotPoisonRetry(t *testing.T) {
	cell, err := ReplayChaos("NICEKV+durable :: seed=-967380673184983171 | crash n1 @89.413179ms +83.558789ms | ctrl d=13.095031ms r=0.5459132322366682 @125.782707ms +158.695309ms | crash n2 @140.57178ms +102.599557ms | slowdisk n0 x=45.77326914165415 @226.425966ms +82.541851ms | slowdisk n2 x=30.44128139207492 @320.874118ms +64.048815ms | crash n1 @358.75837ms +111.92433ms | crash n3 @402.37347ms +80.065853ms | crash n0 @493.3008ms +81.144895ms")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range cell.Violations {
		t.Errorf("%s: %s", cell.Repro(), v)
	}
	if cell.Ops == 0 || cell.Recoveries == 0 {
		t.Errorf("cell did not exercise crash recovery: ops=%d recoveries=%d", cell.Ops, cell.Recoveries)
	}
}

// TestStorageSweepSmoke runs a reduced storagesweep grid end to end and
// checks the pressure curve has the right shape: full-budget arms never
// evict, over-committed arms do and their memory hit ratio drops.
func TestStorageSweepSmoke(t *testing.T) {
	rep, err := StorageSweep(Params{Ops: 60, Seed: 42}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(storageSweepSystems) * len(StorageRatios); len(rep.Cells) != want {
		t.Fatalf("%d cells, want %d", len(rep.Cells), want)
	}
	byRatio := make(map[float64]StorageCell)
	for _, c := range rep.Cells {
		if c.Tput <= 0 {
			t.Errorf("%s ratio %.1f: no throughput", c.System, c.Ratio)
		}
		if c.WALAppends == 0 || c.Fsyncs == 0 {
			t.Errorf("%s ratio %.1f: no WAL activity", c.System, c.Ratio)
		}
		if c.Snapshots == 0 {
			t.Errorf("%s ratio %.1f: no snapshots", c.System, c.Ratio)
		}
		if c.System == "NICEKV" {
			byRatio[c.Ratio] = c
		}
	}
	if c := byRatio[0.5]; c.Evictions != 0 || c.MemHitRatio != 1 {
		t.Errorf("under-committed arm evicted: %+v", c)
	}
	if c := byRatio[8]; c.Evictions == 0 || c.MemHitRatio >= byRatio[0.5].MemHitRatio {
		t.Errorf("over-committed arm shows no pressure: %+v", c)
	}

	if len(rep.Heavy) != 1 {
		t.Fatalf("heavytraffic arm missing: %+v", rep.Heavy)
	}
	h := rep.Heavy[0]
	if h.Clients != 1000 || h.Issued == 0 {
		t.Errorf("heavy arm did not run: %+v", h)
	}
	if h.Evictions == 0 || h.MemHitFrac <= 0 || h.MemHitFrac >= 1 {
		t.Errorf("heavy arm shows no storage-tier churn: %+v", h)
	}
}
