package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/erasure"
	"repro/internal/sim"
)

// ecAdapter exposes a NICE client as an erasure.ObjectStore.
type ecAdapter struct{ c *core.Client }

func (a ecAdapter) Put(p *sim.Proc, key string, value any, size int) error {
	_, err := a.c.Put(p, key, value, size)
	return err
}

func (a ecAdapter) Get(p *sim.Proc, key string) (any, bool, error) {
	res, err := a.c.Get(p, key)
	if err != nil {
		return nil, false, err
	}
	return res.Value, res.Found, nil
}

func TestErasureCodedObjectsOverNICE(t *testing.T) {
	// Real bytes striped as EC(4,2) shards across the simulated cluster
	// and reassembled — end-to-end data integrity through the whole
	// stack.
	opts := DefaultOptions()
	opts.Nodes = 8
	opts.R = 1 // EC provides the redundancy; no replication underneath
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	kv := erasure.NewKV(erasure.MustCode(4, 2), ecAdapter{d.Clients[0]})

	rng := rand.New(rand.NewSource(9))
	objects := map[string][]byte{}
	for i := 0; i < 5; i++ {
		data := make([]byte, 1+rng.Intn(200_000))
		rng.Read(data)
		objects[fmt.Sprintf("blob-%d", i)] = data
	}
	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		for key, data := range objects {
			if err := kv.Put(p, key, data); err != nil {
				t.Errorf("ec put %s: %v", key, err)
				return
			}
		}
		for key, data := range objects {
			got, err := kv.Get(p, key)
			if err != nil {
				t.Errorf("ec get %s: %v", key, err)
				return
			}
			if !bytes.Equal(got, data) {
				t.Errorf("ec get %s: %d bytes differ", key, len(data))
			}
		}
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	d.Close()
}

func TestErasureDegradedReadSurvivesNodeLoss(t *testing.T) {
	// Crash up to M shard-holding nodes: reads reconstruct from parity.
	opts := DefaultOptions()
	opts.Nodes = 10
	opts.R = 1
	opts.Heartbeat = ms(100)
	opts.OpTimeout = ms(300)
	opts.RetryWait = ms(100)
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	kv := erasure.NewKV(erasure.MustCode(4, 2), ecAdapter{d.Clients[0]})
	data := make([]byte, 100_000)
	rand.New(rand.NewSource(10)).Read(data)

	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		if err := kv.Put(p, "durable", data); err != nil {
			t.Errorf("ec put: %v", err)
			return
		}
		// Crash the node holding data shard 0 (R=1: single owner).
		part := d.Space.PartitionOf("durable/ec0")
		owner := d.Service.View(part).Primary().Index
		d.Nodes[owner].Crash()
		p.Sleep(time.Second)

		got, err := kv.Get(p, "durable")
		if err != nil {
			t.Errorf("degraded ec get: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("degraded read returned wrong bytes")
		}
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	d.Close()
}
