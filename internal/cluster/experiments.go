package cluster

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/noob"
	"repro/internal/sim"
)

// Params bounds experiment cost. The paper runs 1000 operations per
// point; benches shrink this to keep `go test -bench` quick.
type Params struct {
	Ops  int
	Seed int64
	// Seq forces the figure sweeps to run their grid cells sequentially
	// instead of on the RunCells worker pool. Results are identical either
	// way; Seq exists for debugging and the determinism tests.
	Seq bool
}

// DefaultParams mirrors the paper's operation counts.
func DefaultParams() Params { return Params{Ops: 1000, Seed: 42} }

// ObjectSizes is the x-axis of Figs. 4-6: 4 B to 1 MB.
var ObjectSizes = []int{4, 1 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// Point is one measurement.
type Point struct {
	X     string
	Value float64
}

// Series is one system's line in a figure.
type Series struct {
	System string
	Points []Point
}

// Figure is one reproduced result.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Fprint renders the figure as an aligned table, one row per x value.
func (f *Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	for _, n := range f.Notes {
		fmt.Fprintf(w, "   %s\n", n)
	}
	if len(f.Series) == 0 {
		return
	}
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.System)
	}
	rows := [][]string{header}
	for i, pt := range f.Series[0].Points {
		row := []string{pt.X}
		for _, s := range f.Series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%.6g", s.Points[i].Value))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	fmt.Fprintf(w, "   (%s)\n\n", f.YLabel)
}

// SeriesValue returns series sys at x (for assertions in tests/benches).
func (f *Figure) SeriesValue(sys, x string) (float64, bool) {
	for _, s := range f.Series {
		if s.System != sys {
			continue
		}
		for _, pt := range s.Points {
			if pt.X == x {
				return pt.Value, true
			}
		}
	}
	return 0, false
}

// keysInPartition returns n distinct keys hashing into partition part.
func (d *NICE) keysInPartition(part, n int) []string {
	return keysIn(d.Space.PartitionOf, part, n)
}

func keysIn(partOf func(string) int, part, n int) []string {
	keys := make([]string, 0, n)
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("obj-%d", i)
		if partOf(k) == part {
			keys = append(keys, k)
		}
	}
	return keys
}

// noobVariants is the §6.1/§6.2 access-mechanism matrix.
var noobVariants = []struct {
	Name   string
	Access noob.AccessMode
	GW     noob.GatewayMode
}{
	{"NOOB+ROG", noob.ViaGateway, noob.ROG},
	{"NOOB+RAG", noob.ViaGateway, noob.RAG},
	{"NOOB+RAC", noob.RAC, noob.RAG},
}

// driveNICE runs fn as the workload driver and stops the simulation when
// it returns.
func driveNICE(d *NICE, fn func(p *sim.Proc)) error {
	if err := d.Settle(); err != nil {
		return err
	}
	d.Sim.Spawn("exp-driver", func(p *sim.Proc) {
		fn(p)
		d.Sim.Stop()
	})
	return d.Sim.Run()
}

func driveNOOB(d *NOOB, fn func(p *sim.Proc)) error {
	d.Sim.Spawn("exp-driver", func(p *sim.Proc) {
		fn(p)
		d.Sim.Stop()
	})
	return d.Sim.Run()
}

// fig4Systems is Fig. 4's system axis: NICE then the NOOB variants.
func fig4Systems() []string {
	names := []string{"NICE"}
	for _, v := range noobVariants {
		names = append(names, v.Name)
	}
	return names
}

// fig4NICEGet measures mean get latency for one (NICE, size) cell.
func fig4NICEGet(pr Params, size int) (float64, error) {
	opts := DefaultOptions()
	opts.Seed = pr.Seed
	d := NewNICE(opts)
	var h metrics.Histogram
	err := driveNICE(d, func(p *sim.Proc) {
		c := d.Clients[0]
		if _, err := c.Put(p, "routed", "v", size); err != nil {
			return
		}
		for i := 0; i < pr.Ops; i++ {
			res, err := c.Get(p, "routed")
			if err != nil || !res.Found {
				return
			}
			h.Add(res.Latency)
		}
	})
	d.Close()
	if err != nil {
		return 0, err
	}
	if h.N() != pr.Ops {
		return 0, fmt.Errorf("fig4: NICE size %d completed %d/%d gets", size, h.N(), pr.Ops)
	}
	return h.Mean(), nil
}

// fig4NOOBGet measures mean get latency for one (NOOB variant, size) cell.
func fig4NOOBGet(pr Params, size int, access noob.AccessMode, gw noob.GatewayMode) (float64, error) {
	opts := DefaultNOOBOptions()
	opts.Seed = pr.Seed
	opts.Access = access
	opts.Gateway = gw
	d := NewNOOB(opts)
	var h metrics.Histogram
	err := driveNOOB(d, func(p *sim.Proc) {
		c := d.Clients[0]
		if _, err := c.Put(p, "routed", "v", size); err != nil {
			return
		}
		for i := 0; i < pr.Ops; i++ {
			res, err := c.Get(p, "routed")
			if err != nil || !res.Found {
				return
			}
			h.Add(res.Latency)
		}
	})
	d.Close()
	if err != nil {
		return 0, err
	}
	if h.N() != pr.Ops {
		return 0, fmt.Errorf("fig4: NOOB size %d completed %d/%d gets", size, h.N(), pr.Ops)
	}
	return h.Mean(), nil
}

// Fig4RequestRouting reproduces Fig. 4: mean get latency vs object size
// for NICE and the three NOOB access mechanisms. The (system, size) grid
// runs on the RunCells worker pool.
func Fig4RequestRouting(pr Params) (*Figure, error) {
	fig := &Figure{
		ID:     "fig4",
		Title:  "Request routing performance (get latency)",
		XLabel: "size",
		YLabel: "seconds per get, mean",
	}
	systems := fig4Systems()
	nsizes := len(ObjectSizes)
	vals := make([]float64, len(systems)*nsizes)
	err := RunCells(pr, len(vals), func(i int, seed int64) error {
		sysIdx, sizeIdx := i/nsizes, i%nsizes
		cpr := pr
		cpr.Seed = seed
		size := ObjectSizes[sizeIdx]
		var v float64
		var err error
		if sysIdx == 0 {
			v, err = fig4NICEGet(cpr, size)
		} else {
			variant := noobVariants[sysIdx-1]
			v, err = fig4NOOBGet(cpr, size, variant.Access, variant.GW)
		}
		vals[i] = v
		return err
	})
	if err != nil {
		return nil, err
	}
	for si, name := range systems {
		s := Series{System: name}
		for zi, size := range ObjectSizes {
			s.Points = append(s.Points, Point{X: metrics.FormatSize(size), Value: vals[si*nsizes+zi]})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// replicationRun measures puts of one size into a single partition and
// returns (mean latency, link bytes/op, primary:secondary load ratio).
type replicationRun struct {
	lat       float64
	linkBytes float64
	loadRatio float64
}

func nicePutRun(pr Params, size int) (replicationRun, error) {
	opts := DefaultOptions()
	opts.Seed = pr.Seed
	d := NewNICE(opts)
	part := 0
	keys := d.keysInPartition(part, pr.Ops)
	var h metrics.Histogram
	fail := false
	err := driveNICE(d, func(p *sim.Proc) {
		c := d.Clients[0]
		d.Net.ResetLinkStats()
		d.Net.ResetHostStats()
		for _, k := range keys {
			res, err := c.Put(p, k, "v", size)
			if err != nil {
				fail = true
				return
			}
			h.Add(res.Latency)
		}
		p.Sleep(5 * time.Millisecond) // drain trailing acks into the counters
	})
	if err == nil && fail {
		err = fmt.Errorf("nice put run failed (size %d)", size)
	}
	if err != nil {
		d.Close()
		return replicationRun{}, err
	}
	view := d.Service.View(part)
	primary := d.Stacks[view.Primary().Index].Host().Stats()
	var secBytes float64
	for _, r := range view.Replicas[1:] {
		st := d.Stacks[r.Index].Host().Stats()
		secBytes += float64(st.BytesRecv + st.BytesSent)
	}
	secBytes /= float64(len(view.Replicas) - 1)
	run := replicationRun{
		lat:       h.Mean(),
		linkBytes: float64(d.Net.TotalLinkBytes()) / float64(pr.Ops),
		loadRatio: float64(primary.BytesRecv+primary.BytesSent) / secBytes,
	}
	d.Close()
	return run, nil
}

func noobPutRun(pr Params, size int, access noob.AccessMode, gw noob.GatewayMode) (replicationRun, error) {
	opts := DefaultNOOBOptions()
	opts.Seed = pr.Seed
	opts.Access = access
	opts.Gateway = gw
	d := NewNOOB(opts)
	part := 0
	keys := keysIn(d.Space.PartitionOf, part, pr.Ops)
	var h metrics.Histogram
	fail := false
	err := driveNOOB(d, func(p *sim.Proc) {
		c := d.Clients[0]
		d.Net.ResetLinkStats()
		d.Net.ResetHostStats()
		for _, k := range keys {
			res, err := c.Put(p, k, "v", size)
			if err != nil {
				fail = true
				return
			}
			h.Add(res.Latency)
		}
		p.Sleep(5 * time.Millisecond)
	})
	if err == nil && fail {
		err = fmt.Errorf("noob put run failed (size %d)", size)
	}
	if err != nil {
		d.Close()
		return replicationRun{}, err
	}
	reps := d.Placement.Replicas(part)
	primary := d.Stacks[reps[0]].Host().Stats()
	var secBytes float64
	for _, idx := range reps[1:] {
		st := d.Stacks[idx].Host().Stats()
		secBytes += float64(st.BytesRecv + st.BytesSent)
	}
	secBytes /= float64(len(reps) - 1)
	run := replicationRun{
		lat:       h.Mean(),
		linkBytes: float64(d.Net.TotalLinkBytes()) / float64(pr.Ops),
		loadRatio: float64(primary.BytesRecv+primary.BytesSent) / secBytes,
	}
	d.Close()
	return run, nil
}

// ReplicationFigures reproduces Figs. 5, 6 and 7 from one sweep: put
// latency, total network link load per put, and the primary:secondary
// storage-load ratio, for NICE vs the NOOB primary-only design under
// ROG/RAG/RAC routing.
func ReplicationFigures(pr Params) (fig5, fig6, fig7 *Figure, err error) {
	fig5 = &Figure{ID: "fig5", Title: "Replication performance (put latency)", XLabel: "size", YLabel: "seconds per put, mean"}
	fig6 = &Figure{ID: "fig6", Title: "Network link load per put", XLabel: "size", YLabel: "bytes over all links per put"}
	fig7 = &Figure{ID: "fig7", Title: "Storage load ratio (primary:secondary)", XLabel: "size", YLabel: "ratio of bytes moved"}

	systems := fig4Systems()
	nsizes := len(ObjectSizes)
	runs := make([]replicationRun, len(systems)*nsizes)
	err = RunCells(pr, len(runs), func(i int, seed int64) error {
		sysIdx, sizeIdx := i/nsizes, i%nsizes
		cpr := pr
		cpr.Seed = seed
		size := ObjectSizes[sizeIdx]
		var run replicationRun
		var err error
		if sysIdx == 0 {
			run, err = nicePutRun(cpr, size)
		} else {
			variant := noobVariants[sysIdx-1]
			run, err = noobPutRun(cpr, size, variant.Access, variant.GW)
		}
		runs[i] = run
		return err
	})
	if err != nil {
		return nil, nil, nil, err
	}
	for si, name := range systems {
		s5 := Series{System: name}
		s6 := Series{System: name}
		s7 := Series{System: name}
		for zi, size := range ObjectSizes {
			run := runs[si*nsizes+zi]
			x := metrics.FormatSize(size)
			s5.Points = append(s5.Points, Point{X: x, Value: run.lat})
			s6.Points = append(s6.Points, Point{X: x, Value: run.linkBytes})
			s7.Points = append(s7.Points, Point{X: x, Value: run.loadRatio})
		}
		fig5.Series = append(fig5.Series, s5)
		fig6.Series = append(fig6.Series, s6)
		fig7.Series = append(fig7.Series, s7)
	}
	return fig5, fig6, fig7, nil
}
