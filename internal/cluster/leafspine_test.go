package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

func runLeafSpine(t *testing.T, opts Options, leaves int, fn func(p *sim.Proc, d *NICE)) *NICE {
	t.Helper()
	d := NewNICELeafSpine(opts, leaves)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	done := false
	d.Sim.Spawn("driver", func(p *sim.Proc) {
		fn(p, d)
		done = true
		d.Sim.Stop()
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("driver did not finish")
	}
	return d
}

func TestLeafSpinePutGet(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 9
	d := runLeafSpine(t, opts, 3, func(p *sim.Proc, d *NICE) {
		c := d.Clients[0]
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("k-%d", i)
			if _, err := c.Put(p, key, i, 4096); err != nil {
				t.Errorf("put %s: %v", key, err)
				return
			}
			res, err := c.Get(p, key)
			if err != nil || !res.Found || res.Value != i {
				t.Errorf("get %s = %+v, %v", key, res, err)
				return
			}
		}
	})
	d.Close()
}

func TestLeafSpineMulticastDeliversExactlyOnce(t *testing.T) {
	// Replicas live on different leaves: the multicast tree must deliver
	// one copy to each, never reflecting packets back down the ingress
	// leaf (which would double-deliver).
	opts := DefaultOptions()
	opts.Nodes = 9
	d := runLeafSpine(t, opts, 3, func(p *sim.Proc, d *NICE) {
		c := d.Clients[0]
		if _, err := c.Put(p, "tree", "v", 64<<10); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		p.Sleep(20 * time.Millisecond)
		part := d.Space.PartitionOf("tree")
		view := d.Service.View(part)
		// With round-robin host placement, replicas i, i+1, i+2 sit on
		// three different leaves.
		for _, r := range view.Replicas {
			obj, ok := d.Nodes[r.Index].Store().Peek("tree")
			if !ok || obj.Version.IsZero() {
				t.Errorf("replica %d missing committed object", r.Index)
			}
		}
	})
	// Exactly-once: each replica's NIC saw the object bytes once. The
	// spine-to-leaf links each carried one copy.
	part := d.Space.PartitionOf("tree")
	view := d.Service.View(part)
	for _, r := range view.Replicas {
		st := d.Stacks[r.Index].Host().Stats()
		if st.BytesRecv > 2*(64<<10) {
			t.Errorf("replica %d received %d bytes for one 64KiB object: duplicate delivery",
				r.Index, st.BytesRecv)
		}
	}
	d.Close()
}

func TestLeafSpineMulticastNetworkLoadIsTreeOptimal(t *testing.T) {
	// The client's access link and each inter-switch link must carry the
	// object at most once per put — the "optimal path is equivalent to
	// link-layer multicasting paths" claim (§4.2), now on a real tree.
	opts := DefaultOptions()
	opts.Nodes = 9
	const size = 256 << 10
	d := runLeafSpine(t, opts, 3, func(p *sim.Proc, d *NICE) {
		d.Net.ResetLinkStats()
		if _, err := d.Clients[0].Put(p, "tree-load", "v", size); err != nil {
			t.Errorf("put: %v", err)
		}
		p.Sleep(10 * time.Millisecond)
	})
	for _, l := range d.Net.Links() {
		if l.TotalBytes() > size+size/4 {
			t.Errorf("link %s carried %d bytes for one %d-byte put (duplicated data on the tree)",
				l.Name, l.TotalBytes(), size)
		}
	}
	d.Close()
}

func TestLeafSpineFailureHandling(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 9
	opts.Heartbeat = ms(100)
	opts.OpTimeout = ms(400)
	opts.RetryWait = ms(300)
	d := NewNICELeafSpine(opts, 3)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	const part = 0
	victim := d.Service.View(part).Replicas[1].Index
	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		c := d.Clients[0]
		keys := d.keysInPartition(part, 6)
		if _, err := c.Put(p, keys[0], "v", 1024); err != nil {
			t.Errorf("seed: %v", err)
			return
		}
		d.Nodes[victim].Crash()
		p.Sleep(time.Second)
		for _, k := range keys {
			if _, err := c.Put(p, k, "v2", 1024); err != nil {
				t.Errorf("put after failure on tree fabric: %v", err)
				return
			}
		}
		d.Nodes[victim].Restart()
		p.Sleep(time.Second)
		v := d.Service.View(part)
		if !v.HasReplica(victim) || v.Handoff != nil {
			t.Errorf("recovery incomplete on tree fabric: %+v", v)
		}
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	d.Close()
}
