package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// The figure sweeps are grids of fully independent simulations: every
// (system, size) cell builds its own sim.Simulator, netsim.Network and
// deployment, shares no mutable state with any other cell, and reports a
// handful of floats. RunCells is the harness that runs such a grid on a
// worker pool while keeping the output bit-identical to a sequential
// sweep:
//
//   - each cell gets a deterministic seed derived from Params.Seed and its
//     grid index, so a cell's result does not depend on which worker runs
//     it or in what order;
//   - cells write results into per-index slots owned by the caller, and
//     the caller assembles series in grid order after RunCells returns.
//
// Params.Seq forces the sequential path (same cells, same seeds, same
// results) for debugging and for the determinism tests.

// DeriveSeed maps (base seed, cell index) to a well-mixed per-cell seed
// using the splitmix64 finalizer. Cells must not share base directly: the
// kernel RNG streams of two simulators with equal seeds are correlated,
// which a per-cell mix avoids.
func DeriveSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// RunCells invokes cell(i, DeriveSeed(pr.Seed, i)) for every i in [0, n),
// on GOMAXPROCS workers unless pr.Seq is set. It returns the first error
// in cell order (not completion order), so the parallel and sequential
// paths fail identically. A panicking cell is reported as an error rather
// than tearing down the other workers' simulations.
func RunCells(pr Params, n int, cell func(i int, seed int64) error) error {
	if n <= 0 {
		return nil
	}
	runCell := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("cluster: cell %d panicked: %v", i, r)
			}
		}()
		return cell(i, DeriveSeed(pr.Seed, i))
	}
	if pr.Seq {
		for i := 0; i < n; i++ {
			if err := runCell(i); err != nil {
				return err
			}
		}
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = runCell(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
