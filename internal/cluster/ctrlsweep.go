package cluster

import (
	"fmt"
	"io"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// The ctrlsweep experiment measures what a controller crash actually
// costs: at t0 the active metadata host fail-stops and, in the same
// instant, one storage replica of partition 0 crashes — the worst
// moment to lose the brain, because only a controller can install the
// handoff that restores put availability for that partition. Three
// arms differ only in the control plane:
//
//   - none:        a single controller, no replica. The partition
//                  never heals; the arm is the negative control.
//   - hot-standby: the §4.1 mirror. The standby promotes from its
//                  best-effort StateSync copy.
//   - ctrlchain:   the standby restores views, statuses and cache
//                  install records from the NetChain-style replicated
//                  store (internal/ctrlchain) and fences the zombie.
//
// Every arm runs the in-switch cache with a hair trigger so the sweep
// also times how long the cache stays headless: a key made hot only
// after t0 cannot be installed until a live controller manages the
// switch again.

// ctrlSweepCap bounds how long one cell waits for recovery; a metric
// that misses the cap is reported in Unrecovered, not in the summary.
const ctrlSweepCap = 3 * time.Second

// CtrlArms lists the sweep arms in report order.
var CtrlArms = []string{"none", "hot-standby", "ctrlchain"}

// ctrlCell is one (arm, seed) measurement; negative latencies mean the
// event never happened before ctrlSweepCap.
type ctrlCell struct {
	takeover, handoff, put, cache sim.Time
}

// CtrlArmResult aggregates one arm across seeds. All summaries are in
// seconds and cover only the seeds where the event occurred; Seeds
// minus a summary's N is how often it never did.
type CtrlArmResult struct {
	Arm   string `json:"arm"`
	Seeds int    `json:"seeds"`
	// Recovered counts seeds where partition 0 accepted a put again.
	Recovered int `json:"recovered"`
	// Takeover: controller death -> standby promoted.
	Takeover metrics.Summary `json:"takeover"`
	// Handoff: controller death -> replacement view (crashed replica
	// out, handoff in) installed by the new controller.
	Handoff metrics.Summary `json:"handoff"`
	// Put: controller death -> first acked put to the orphaned
	// partition.
	Put metrics.Summary `json:"put"`
	// CacheInstall: controller death -> first post-takeover switch
	// cache install of a key made hot after the crash.
	CacheInstall metrics.Summary `json:"cache_install"`
}

// CtrlReport is the ctrlsweep outcome, one result per arm.
type CtrlReport struct {
	Seeds int             `json:"seeds_per_arm"`
	Arms  []CtrlArmResult `json:"arms"`
}

// ctrlSweepOptions is the cell deployment: the chaos cluster shape with
// the hair-trigger cache and fast failure detection.
func ctrlSweepOptions(arm string, seed int64) Options {
	opts := chaosOptions(seed)
	opts.Clients = 1
	// One attempt per probe call: the prober loop does its own retrying,
	// and a small per-op budget keeps the recovery timestamp fine-grained
	// instead of quantized by the client's internal backoff.
	opts.MaxRetries = 1
	opts.RetryWait = 2 * time.Millisecond
	opts.RetryMaxWait = 4 * time.Millisecond
	opts.Cache = true
	opts.CacheHotThreshold = 4
	opts.CacheSampleEvery = 1
	switch arm {
	case "hot-standby":
		opts.Standby = true
	case "ctrlchain":
		opts.Standby = true
		opts.CtrlChain = true
	}
	return opts
}

// runCtrlCell executes one (arm, seed) failover measurement.
func runCtrlCell(arm string, seed int64) (ctrlCell, error) {
	cell := ctrlCell{takeover: -1, handoff: -1, put: -1, cache: -1}
	opts := ctrlSweepOptions(arm, seed)
	d := NewNICE(opts)
	defer d.Close()
	if err := d.Settle(); err != nil {
		return cell, err
	}

	const part = 0
	victim := d.Service.View(part).Replicas[0].Index // partition primary
	keys := d.keysInPartition(part, 4)
	hotKey := d.keysInPartition(1, 1)[0] // healthy partition: cache target

	var t0 sim.Time
	var runErr error
	d.Sim.Spawn("ctrlsweep-driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		c := d.Clients[0]
		for _, k := range append(keys, hotKey) {
			if _, err := c.Put(p, k, "warm", chaosValSize); err != nil {
				runErr = fmt.Errorf("warmup put: %w", err)
				return
			}
		}
		t0 = p.Now()
		d.MetaHost.SetDown(true)
		d.Nodes[victim].Crash()

		// Watcher: promotion and the replacement view, polled fine-grained
		// so the put prober's timeouts don't quantize them.
		if d.Standby != nil {
			d.Sim.Spawn("ctrlsweep-watch", func(wp *sim.Proc) {
				for wp.Now()-t0 < sim.Time(ctrlSweepCap) {
					if svc := d.Standby.Promoted(); svc != nil {
						if cell.takeover < 0 {
							cell.takeover = wp.Now() - t0
						}
						v := svc.View(part)
						if v != nil && !v.HasReplica(victim) && v.Handoff != nil {
							cell.handoff = wp.Now() - t0
							return
						}
					}
					wp.Sleep(500 * time.Microsecond)
				}
			})
		}

		// Put prober: availability of the orphaned partition.
		for p.Now()-t0 < sim.Time(ctrlSweepCap) {
			if _, err := c.Put(p, keys[0], "probe", chaosValSize); err == nil {
				cell.put = p.Now() - t0
				break
			}
			p.Sleep(5 * time.Millisecond)
		}
		if cell.put < 0 {
			return // never recovered; cache metric is moot
		}

		// Cache prober: heat hotKey from cold. Installs recorded after
		// promotion can only come from the new controller's manager — the
		// zombie's in-flight installs are fenced at the switch.
		base := d.Cache.Stats().Installs
		for p.Now()-t0 < sim.Time(ctrlSweepCap) {
			if _, err := c.Get(p, hotKey); err != nil {
				p.Sleep(time.Millisecond)
				continue
			}
			if d.Cache.Stats().Installs > base {
				cell.cache = p.Now() - t0
				return
			}
			p.Sleep(time.Millisecond)
		}
	})
	if err := d.Sim.Run(); err != nil {
		return cell, err
	}
	return cell, runErr
}

// CtrlFailoverSweep runs `seeds` failover measurements per arm on the
// RunCells worker pool.
func CtrlFailoverSweep(pr Params, seeds int) (*CtrlReport, error) {
	if seeds <= 0 {
		seeds = 10
	}
	cells := make([]ctrlCell, len(CtrlArms)*seeds)
	err := RunCells(pr, len(cells), func(i int, seed int64) error {
		cell, err := runCtrlCell(CtrlArms[i/seeds], seed)
		cells[i] = cell
		return err
	})
	if err != nil {
		return nil, err
	}
	rep := &CtrlReport{Seeds: seeds}
	for ai, arm := range CtrlArms {
		res := CtrlArmResult{Arm: arm, Seeds: seeds}
		var tk, ho, pt, ca metrics.Histogram
		for i := ai * seeds; i < (ai+1)*seeds; i++ {
			c := cells[i]
			if c.takeover >= 0 {
				tk.Add(c.takeover)
			}
			if c.handoff >= 0 {
				ho.Add(c.handoff)
			}
			if c.put >= 0 {
				pt.Add(c.put)
				res.Recovered++
			}
			if c.cache >= 0 {
				ca.Add(c.cache)
			}
		}
		res.Takeover = tk.Summary()
		res.Handoff = ho.Summary()
		res.Put = pt.Summary()
		res.CacheInstall = ca.Summary()
		rep.Arms = append(rep.Arms, res)
	}
	return rep, nil
}

// Fprint renders the sweep, one arm per block.
func (r *CtrlReport) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== ctrlsweep: controller death + partition-0 replica crash, %d seeds per arm ==\n", r.Seeds)
	for _, a := range r.Arms {
		fmt.Fprintf(w, "%-12s recovered %d/%d\n", a.Arm, a.Recovered, a.Seeds)
		if a.Takeover.N > 0 {
			fmt.Fprintf(w, "  takeover      %s\n", a.Takeover)
		}
		if a.Handoff.N > 0 {
			fmt.Fprintf(w, "  handoff       %s\n", a.Handoff)
		}
		if a.Put.N > 0 {
			fmt.Fprintf(w, "  put-recovery  %s\n", a.Put)
		}
		if a.CacheInstall.N > 0 {
			fmt.Fprintf(w, "  cache-install %s\n", a.CacheInstall)
		}
	}
}
