package cluster

import (
	"testing"
	"time"
)

// Experiment shape tests: run every figure at reduced operation counts
// and assert the paper's qualitative claims — who wins, roughly by how
// much, where the crossovers are. Absolute numbers live in
// EXPERIMENTS.md.

var testParams = Params{Ops: 25, Seed: 7}

func mustVal(t *testing.T, f *Figure, sys, x string) float64 {
	t.Helper()
	v, ok := f.SeriesValue(sys, x)
	if !ok {
		t.Fatalf("%s: missing %s @ %s", f.ID, sys, x)
	}
	return v
}

func TestFig4Shape(t *testing.T) {
	fig, err := Fig4RequestRouting(testParams)
	if err != nil {
		t.Fatal(err)
	}
	// NICE routing ~= RAC (both single hop); ROG and RAG pay extra hops
	// at small sizes; benefits shrink as transfer time dominates.
	nice := mustVal(t, fig, "NICE", "4B")
	rac := mustVal(t, fig, "NOOB+RAC", "4B")
	rag := mustVal(t, fig, "NOOB+RAG", "4B")
	rog := mustVal(t, fig, "NOOB+ROG", "4B")
	if nice > rac*1.25 || rac > nice*1.25 {
		t.Errorf("NICE (%.3g) and RAC (%.3g) should overlap", nice, rac)
	}
	if rog < 1.5*nice {
		t.Errorf("ROG (%.3g) should be ~2x NICE (%.3g) at 4B", rog, nice)
	}
	if rag < 1.2*nice || rag > rog {
		t.Errorf("RAG (%.3g) should sit between NICE (%.3g) and ROG (%.3g)", rag, nice, rog)
	}
	// Large objects: NICE still overlaps RAC (single-hop both ways).
	niceL := mustVal(t, fig, "NICE", "1MB")
	racL := mustVal(t, fig, "NOOB+RAC", "1MB")
	if niceL > racL*1.25 || racL > niceL*1.25 {
		t.Errorf("NICE (%.3g) and RAC (%.3g) should overlap at 1MB", niceL, racL)
	}
}

func TestFig567Shapes(t *testing.T) {
	f5, f6, f7, err := ReplicationFigures(testParams)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 5: NICE beats every NOOB config at 1MB by >2x (paper: up to
	// 4.3x / 3.4x / 2.6x).
	nice := mustVal(t, f5, "NICE", "1MB")
	for _, sys := range []string{"NOOB+ROG", "NOOB+RAG", "NOOB+RAC"} {
		v := mustVal(t, f5, sys, "1MB")
		if v < 2*nice {
			t.Errorf("fig5: %s (%.4g) should be >2x NICE (%.4g) at 1MB", sys, v, nice)
		}
	}
	// Fig 6: NICE moves the least bytes; RAC is ~R*S vs NICE ~(R+1)*S/2ish
	// (paper: 1.7x-3.5x reduction).
	niceLoad := mustVal(t, f6, "NICE", "1MB")
	racLoad := mustVal(t, f6, "NOOB+RAC", "1MB")
	rogLoad := mustVal(t, f6, "NOOB+ROG", "1MB")
	if racLoad < 1.4*niceLoad {
		t.Errorf("fig6: RAC load (%.4g) should be >1.4x NICE (%.4g)", racLoad, niceLoad)
	}
	if rogLoad < 2*niceLoad {
		t.Errorf("fig6: ROG load (%.4g) should be >2x NICE (%.4g)", rogLoad, niceLoad)
	}
	// Fig 7: NOOB primary does ~R x the secondary's work, NICE ~1x.
	niceRatio := mustVal(t, f7, "NICE", "1MB")
	racRatio := mustVal(t, f7, "NOOB+RAC", "1MB")
	if niceRatio > 1.2 {
		t.Errorf("fig7: NICE ratio = %.3g, want ~1", niceRatio)
	}
	if racRatio < 2.5 {
		t.Errorf("fig7: NOOB ratio = %.3g, want ~R=3", racRatio)
	}
}

func TestFig8Shape(t *testing.T) {
	pr := Params{Ops: 6, Seed: 7}
	figT, figBW, err := Fig8Quorum(pr)
	if err != nil {
		t.Fatal(err)
	}
	// Small quorums dodge the slow replicas: NICE >= 2x faster than NOOB
	// at k in {1,3} (paper: up to 5.6x); both collapse at k in {5,7}.
	for _, k := range []string{"1", "3"} {
		nice := mustVal(t, figT, "NICE", k)
		noob := mustVal(t, figT, "NOOB", k)
		if noob < 2*nice {
			t.Errorf("fig8 k=%s: NOOB (%.4g) should be >2x NICE (%.4g)", k, noob, nice)
		}
	}
	nice1 := mustVal(t, figT, "NICE", "1")
	nice5 := mustVal(t, figT, "NICE", "5")
	if nice5 < 5*nice1 {
		t.Errorf("fig8: k=5 (%.4g) must hit the slow replicas (k=1: %.4g)", nice5, nice1)
	}
	// Bandwidth view is the inverse ordering.
	if bw1, _ := figBW.SeriesValue("NICE", "1"); bw1 < 50 {
		t.Errorf("fig8b: NICE k=1 bandwidth %.3g MB/s too low", bw1)
	}
}

func TestFig9Shape(t *testing.T) {
	figs, err := Fig9Consistency(Params{Ops: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	small, large := figs[4], figs[1<<20]
	// 4B: NICE ~ primary-only; 2PC pays protocol overhead.
	nice := mustVal(t, small, "NICE", "3")
	prim := mustVal(t, small, "NOOB primary-only", "3")
	twopc := mustVal(t, small, "NOOB 2PC", "3")
	if nice > 1.6*prim {
		t.Errorf("fig9 4B: NICE (%.4g) should be comparable to primary-only (%.4g)", nice, prim)
	}
	if twopc < prim {
		t.Errorf("fig9 4B: 2PC (%.4g) should cost more than primary-only (%.4g)", twopc, prim)
	}
	// 1MB: NOOB degrades steeply with R (paper ~7x from R=1 to 9); NICE
	// degrades only slightly (paper 17%).
	noob1 := mustVal(t, large, "NOOB primary-only", "1")
	noob9 := mustVal(t, large, "NOOB primary-only", "9")
	if noob9 < 4*noob1 {
		t.Errorf("fig9 1MB: NOOB should degrade >4x from R=1 (%.4g) to R=9 (%.4g)", noob1, noob9)
	}
	nice1 := mustVal(t, large, "NICE", "1")
	nice9 := mustVal(t, large, "NICE", "9")
	if nice9 > 1.3*nice1 {
		t.Errorf("fig9 1MB: NICE degraded %.2fx from R=1 to 9; want ~flat", nice9/nice1)
	}
	if noob9 < 3*nice9 {
		t.Errorf("fig9 1MB R=9: NOOB (%.4g) should be >3x NICE (%.4g)", noob9, nice9)
	}
}

func TestFig10Shape(t *testing.T) {
	figs, err := Fig10LoadBalancing(Params{Ops: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	large := figs[1<<20]
	// Weak scaling at 1MB: NICE stays flat; NOOB primary-only degrades
	// with every added client+replica (paper 3.5x at 1MB); NICE ends up
	// far ahead (paper up to 7.5x).
	nice3 := mustVal(t, large, "NICE", "3")
	nice9 := mustVal(t, large, "NICE", "9")
	if nice9 > 1.3*nice3 {
		t.Errorf("fig10 1MB: NICE not weakly scalable: %.4g -> %.4g", nice3, nice9)
	}
	prim3 := mustVal(t, large, "NOOB primary-only", "3")
	prim9 := mustVal(t, large, "NOOB primary-only", "9")
	if prim9 < 2*prim3 {
		t.Errorf("fig10 1MB: NOOB primary-only should degrade >2x: %.4g -> %.4g", prim3, prim9)
	}
	if prim9 < 4*nice9 {
		t.Errorf("fig10 1MB R=9: NOOB primary-only (%.4g) should be >4x NICE (%.4g)", prim9, nice9)
	}
	small := figs[4]
	sprim3 := mustVal(t, small, "NOOB primary-only", "3")
	sprim9 := mustVal(t, small, "NOOB primary-only", "9")
	if sprim9 <= sprim3 {
		t.Errorf("fig10 4B: NOOB primary-only should degrade: %.4g -> %.4g", sprim3, sprim9)
	}
}

func TestFig11Shape(t *testing.T) {
	fp := DefaultFTParams()
	fp.Duration = 60 * time.Second
	fp.FailAt = 15 * time.Second
	fp.RejoinAt = 40 * time.Second
	fp.ThinkTime = 10 * time.Millisecond
	res, err := Fig11FaultTolerance(fp)
	if err != nil {
		t.Fatal(err)
	}
	rate := func(v []float64, i int) float64 {
		if i < len(v) {
			return v[i]
		}
		return 0
	}
	// Steady state before the failure.
	if rate(res.PutRate, 10) == 0 || rate(res.GetRate, 10) == 0 {
		t.Fatal("no steady-state traffic before the failure")
	}
	// Put availability dips within ~2s of the failure...
	dip := rate(res.PutRate, 15) + rate(res.PutRate, 16)
	steady := rate(res.PutRate, 10) + rate(res.PutRate, 11)
	if dip > steady/2 {
		t.Errorf("no visible put dip at failure: dip=%v steady=%v", dip, steady)
	}
	// ...and recovers before the rejoin.
	if rate(res.PutRate, 25) < rate(res.PutRate, 10)/2 {
		t.Errorf("puts did not recover after handoff: %v", res.PutRate[20:30])
	}
	// After rejoin everything still flows.
	if rate(res.PutRate, 50) == 0 || rate(res.GetRate, 50) == 0 {
		t.Error("traffic did not survive the rejoin")
	}
	// The controller observed exactly one failure and one recovery.
	foundFail, foundRecover := false, false
	for _, e := range res.Events {
		if contains(e, "handoff") {
			foundFail = true
		}
		if contains(e, "consistent") {
			foundRecover = true
		}
	}
	if !foundFail || !foundRecover {
		t.Errorf("membership events missing: %v", res.Events)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestFig12Shape(t *testing.T) {
	fig, err := Fig12YCSB(Params{Ops: 300, Seed: 7}, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Workload F: the 2PC baseline pays two protocol rounds per write;
	// NICE must beat it (paper: 1.5x).
	niceF := mustVal(t, fig, "NICE", "F")
	twopcF := mustVal(t, fig, "NOOB 2PC", "F")
	if niceF < 1.2*twopcF {
		t.Errorf("fig12 F: NICE (%.4g ops/s) should be >1.2x 2PC (%.4g)", niceF, twopcF)
	}
	// Workload C: read-only; all systems deliver solid throughput and
	// NICE is at least on par with 2PC.
	niceC := mustVal(t, fig, "NICE", "C")
	twopcC := mustVal(t, fig, "NOOB 2PC", "C")
	if niceC < 0.9*twopcC {
		t.Errorf("fig12 C: NICE (%.4g) should not trail 2PC (%.4g)", niceC, twopcC)
	}
}

func TestScalabilityTables(t *testing.T) {
	sw, err := SwitchScalabilityTable()
	if err != nil {
		t.Fatal(err)
	}
	if v := mustVal(t, sw, "entries/partition", "no LB"); v != 2 {
		t.Errorf("entries/partition without LB = %v, want 2 (§4.6)", v)
	}
	if v := mustVal(t, sw, "max nodes @128K", "no LB"); v != 65536 {
		t.Errorf("max nodes = %v, want 64K (§4.6)", v)
	}
	mem, err := MembershipScalabilityTable()
	if err != nil {
		t.Fatal(err)
	}
	// NICE cost flat in N; NOOB cost = N.
	n5 := mustVal(t, mem, "NICE node msgs", "5")
	n30 := mustVal(t, mem, "NICE node msgs", "30")
	if n5 != n30 {
		t.Errorf("NICE membership cost grew with N: %v -> %v", n5, n30)
	}
	if v := mustVal(t, mem, "NOOB msgs (full membership)", "30"); v != 30 {
		t.Errorf("NOOB messages = %v, want 30", v)
	}
}

func TestExtendedExperiments(t *testing.T) {
	ycsb, err := YCSBAllWorkloads(Params{Ops: 150, Seed: 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range []string{"A", "B", "C", "D", "F"} {
		for _, sys := range []string{"NICE", "NOOB primary-only", "NOOB 2PC"} {
			if v, ok := ycsb.SeriesValue(sys, wl); !ok || v <= 0 {
				t.Errorf("ycsb-all: missing %s @ %s", sys, wl)
			}
		}
	}

	scale, err := ScaleOutThroughput(Params{Ops: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// NICE weak-scales: throughput grows with the cluster. The
	// gateway-routed NOOB saturates its single gateway.
	n6, _ := scale.SeriesValue("NICE", "6")
	n24, _ := scale.SeriesValue("NICE", "24")
	if n24 < 2.5*n6 {
		t.Errorf("scale-out: NICE did not scale: %v -> %v", n6, n24)
	}
	g6, _ := scale.SeriesValue("NOOB+RAG (gateway)", "6")
	g24, _ := scale.SeriesValue("NOOB+RAG (gateway)", "24")
	if g24/g6 > 0.75*(n24/n6) {
		t.Errorf("scale-out: gateway NOOB scaled as well as NICE (%.2fx vs %.2fx)", g24/g6, n24/n6)
	}

	fab, err := FabricComparison(Params{Ops: 25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, fabric := range []string{"single-switch", "edge-ovs", "leaf-spine(3)"} {
		pv, ok := fab.SeriesValue("put", fabric)
		if !ok || pv <= 0 {
			t.Errorf("fabric comparison missing put @ %s", fabric)
		}
	}
	// Multi-switch adds hops but must stay in the same ballpark.
	ss, _ := fab.SeriesValue("put", "single-switch")
	ls, _ := fab.SeriesValue("put", "leaf-spine(3)")
	if ls > 2*ss {
		t.Errorf("leaf-spine put (%.4g) should be <2x single switch (%.4g)", ls, ss)
	}
}
