package cluster

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/noob"
	"repro/internal/sim"
)

// QuorumSizes is Fig. 8's x-axis.
var QuorumSizes = []int{1, 3, 5, 7}

// quorumObjSize is Fig. 8's object size (1 MB).
const quorumObjSize = 1 << 20

// slowReplicas and slowRate reproduce Fig. 8's heterogeneity: three
// replicas throttled to 50 Mbps.
const slowReplicas = 3

func slowLink() netsim.LinkConfig { return netsim.Mbps(50, 5*time.Microsecond) }

// Fig8Quorum reproduces Fig. 8: put time (a) and achieved bandwidth (b)
// under quorum replication, R=7, three slow replicas, quorum size
// in {1,3,5,7}.
func Fig8Quorum(pr Params) (figTime, figBW *Figure, err error) {
	figTime = &Figure{ID: "fig8a", Title: "Quorum replication: put time (R=7, 3 slow replicas)",
		XLabel: "quorum", YLabel: "seconds per put, mean"}
	figBW = &Figure{ID: "fig8b", Title: "Quorum replication: bandwidth (R=7, 3 slow replicas)",
		XLabel: "quorum", YLabel: "MB/s per put"}

	// Grid: 2 systems (NICE, NOOB) x quorum sizes.
	nq := len(QuorumSizes)
	lats := make([]float64, 2*nq)
	err = RunCells(pr, len(lats), func(i int, seed int64) error {
		sysIdx, qIdx := i/nq, i%nq
		cpr := pr
		cpr.Seed = seed
		var lat float64
		var err error
		if sysIdx == 0 {
			lat, err = niceQuorumRun(cpr, QuorumSizes[qIdx])
		} else {
			lat, err = noobQuorumRun(cpr, QuorumSizes[qIdx])
		}
		lats[i] = lat
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	for sysIdx, name := range []string{"NICE", "NOOB"} {
		st := Series{System: name}
		sb := Series{System: name}
		for qIdx, k := range QuorumSizes {
			lat := lats[sysIdx*nq+qIdx]
			st.Points = append(st.Points, Point{X: fmt.Sprintf("%d", k), Value: lat})
			sb.Points = append(sb.Points, Point{X: fmt.Sprintf("%d", k), Value: float64(quorumObjSize) / lat / 1e6})
		}
		figTime.Series = append(figTime.Series, st)
		figBW.Series = append(figBW.Series, sb)
	}
	return figTime, figBW, nil
}

// throttleSecondaries slows the last `slowReplicas` secondaries of
// partition part.
func throttle(stacksOf func(int) *netsim.Host, replicas []int) {
	for _, idx := range replicas[len(replicas)-slowReplicas:] {
		stacksOf(idx).Port().Link().SetConfig(slowLink())
	}
}

func niceQuorumRun(pr Params, k int) (float64, error) {
	opts := DefaultOptions()
	opts.Seed = pr.Seed
	opts.R = 7
	opts.QuorumK = k
	opts.OpTimeout = 5 * time.Second
	d := NewNICE(opts)
	part := 0
	view := d.Service.View(part)
	var reps []int
	for _, r := range view.Replicas {
		reps = append(reps, r.Index)
	}
	throttle(func(i int) *netsim.Host { return d.Stacks[i].Host() }, reps)
	keys := d.keysInPartition(part, pr.Ops)
	var h metrics.Histogram
	fail := false
	err := driveNICE(d, func(p *sim.Proc) {
		c := d.Clients[0]
		for _, key := range keys {
			res, err := c.Put(p, key, "v", quorumObjSize)
			if err != nil {
				fail = true
				return
			}
			h.Add(res.Latency)
		}
	})
	d.Close()
	if err != nil {
		return 0, err
	}
	if fail {
		return 0, fmt.Errorf("fig8: NICE quorum %d put failed", k)
	}
	return h.Mean(), nil
}

func noobQuorumRun(pr Params, k int) (float64, error) {
	opts := DefaultNOOBOptions()
	opts.Seed = pr.Seed
	opts.R = 7
	opts.QuorumK = k
	d := NewNOOB(opts)
	part := 0
	reps := d.Placement.Replicas(part)
	throttle(func(i int) *netsim.Host { return d.Stacks[i].Host() }, reps)
	keys := keysIn(d.Space.PartitionOf, part, pr.Ops)
	var h metrics.Histogram
	fail := false
	err := driveNOOB(d, func(p *sim.Proc) {
		c := d.Clients[0]
		for _, key := range keys {
			res, err := c.Put(p, key, "v", quorumObjSize)
			if err != nil {
				fail = true
				return
			}
			h.Add(res.Latency)
		}
	})
	d.Close()
	if err != nil {
		return 0, err
	}
	if fail {
		return 0, fmt.Errorf("fig8: NOOB quorum %d put failed", k)
	}
	return h.Mean(), nil
}

// ReplicationLevels is Fig. 9/10's x-axis.
var ReplicationLevels = []int{1, 3, 5, 7, 9}

// ConsistencySizes are Fig. 9/10's two object sizes.
var ConsistencySizes = []int{4, 1 << 20}

// Fig9Consistency reproduces Fig. 9: put time vs replication level for
// NICE, NOOB primary-only, and NOOB 2PC (RAC routing), at 4 B and 1 MB.
func Fig9Consistency(pr Params) (map[int]*Figure, error) {
	// Grid: sizes x 3 systems x replication levels.
	names := []string{"NICE", "NOOB primary-only", "NOOB 2PC"}
	nr := len(ReplicationLevels)
	cells := len(ConsistencySizes) * len(names) * nr
	lats := make([]float64, cells)
	err := RunCells(pr, cells, func(i int, seed int64) error {
		rIdx := i % nr
		sysIdx := (i / nr) % len(names)
		sizeIdx := i / (nr * len(names))
		cpr := pr
		cpr.Seed = seed
		r, size := ReplicationLevels[rIdx], ConsistencySizes[sizeIdx]
		var lat float64
		var err error
		switch sysIdx {
		case 0:
			lat, err = nicePutLatency(cpr, r, size)
		case 1:
			lat, err = noobPutLatency(cpr, r, size, noob.PrimaryOnly)
		default:
			lat, err = noobPutLatency(cpr, r, size, noob.TwoPC)
		}
		lats[i] = lat
		return err
	})
	if err != nil {
		return nil, err
	}
	out := make(map[int]*Figure)
	for sizeIdx, size := range ConsistencySizes {
		fig := &Figure{
			ID:     fmt.Sprintf("fig9-%s", metrics.FormatSize(size)),
			Title:  fmt.Sprintf("Consistency mechanism: put time, %s objects", metrics.FormatSize(size)),
			XLabel: "R",
			YLabel: "seconds per put, mean",
		}
		for sysIdx, name := range names {
			s := Series{System: name}
			for rIdx, r := range ReplicationLevels {
				i := (sizeIdx*len(names)+sysIdx)*nr + rIdx
				s.Points = append(s.Points, Point{X: fmt.Sprintf("%d", r), Value: lats[i]})
			}
			fig.Series = append(fig.Series, s)
		}
		out[size] = fig
	}
	return out, nil
}

func nicePutLatency(pr Params, r, size int) (float64, error) {
	opts := DefaultOptions()
	opts.Seed = pr.Seed
	opts.R = r
	d := NewNICE(opts)
	var h metrics.Histogram
	fail := false
	err := driveNICE(d, func(p *sim.Proc) {
		c := d.Clients[0]
		for i := 0; i < pr.Ops; i++ {
			res, err := c.Put(p, fmt.Sprintf("k-%d", i), "v", size)
			if err != nil {
				fail = true
				return
			}
			h.Add(res.Latency)
		}
	})
	d.Close()
	if err != nil {
		return 0, err
	}
	if fail {
		return 0, fmt.Errorf("fig9: NICE R=%d size=%d put failed", r, size)
	}
	return h.Mean(), nil
}

func noobPutLatency(pr Params, r, size int, cons noob.Consistency) (float64, error) {
	opts := DefaultNOOBOptions()
	opts.Seed = pr.Seed
	opts.R = r
	opts.Consistency = cons
	d := NewNOOB(opts)
	var h metrics.Histogram
	fail := false
	err := driveNOOB(d, func(p *sim.Proc) {
		c := d.Clients[0]
		for i := 0; i < pr.Ops; i++ {
			res, err := c.Put(p, fmt.Sprintf("k-%d", i), "v", size)
			if err != nil {
				fail = true
				return
			}
			h.Add(res.Latency)
		}
	})
	d.Close()
	if err != nil {
		return 0, err
	}
	if fail {
		return 0, fmt.Errorf("fig9: NOOB R=%d size=%d put failed", r, size)
	}
	return h.Mean(), nil
}

// Fig10LoadBalancing reproduces Fig. 10: weak scaling on one hot key —
// one put client plus R-1 get clients, all hammering the same object,
// with clients scaled alongside the replication level. The companion
// "get-only" series is the paper's line marker (workload without the put
// client). Values are mean operation latencies.
func Fig10LoadBalancing(pr Params) (map[int]*Figure, error) {
	systems := []struct {
		name    string
		getOnly bool
	}{
		{"NICE", false}, {"NICE get-only", true},
		{"NOOB primary-only", false}, {"NOOB primary-only get-only", true},
		{"NOOB 2PC", false}, {"NOOB 2PC get-only", true},
	}
	// Grid: sizes x 6 systems x replication levels.
	nr := len(ReplicationLevels)
	cells := len(ConsistencySizes) * len(systems) * nr
	lats := make([]float64, cells)
	err := RunCells(pr, cells, func(i int, seed int64) error {
		rIdx := i % nr
		sysIdx := (i / nr) % len(systems)
		sizeIdx := i / (nr * len(systems))
		cpr := pr
		cpr.Seed = seed
		r, size := ReplicationLevels[rIdx], ConsistencySizes[sizeIdx]
		sys := systems[sysIdx]
		var lat float64
		var err error
		switch {
		case strings.HasPrefix(sys.name, "NICE"):
			lat, err = niceHotKeyRun(cpr, r, size, sys.getOnly)
		case strings.HasPrefix(sys.name, "NOOB primary-only"):
			lat, err = noobHotKeyRun(cpr, r, size, noob.PrimaryOnly, sys.getOnly)
		default:
			lat, err = noobHotKeyRun(cpr, r, size, noob.TwoPC, sys.getOnly)
		}
		lats[i] = lat
		return err
	})
	if err != nil {
		return nil, err
	}
	out := make(map[int]*Figure)
	for sizeIdx, size := range ConsistencySizes {
		fig := &Figure{
			ID:     fmt.Sprintf("fig10-%s", metrics.FormatSize(size)),
			Title:  fmt.Sprintf("Load balancing weak scaling, %s objects", metrics.FormatSize(size)),
			XLabel: "R (= clients)",
			YLabel: "seconds per op, mean",
		}
		series := make([]Series, len(systems))
		for sysIdx, sys := range systems {
			series[sysIdx].System = sys.name
			for rIdx, r := range ReplicationLevels {
				i := (sizeIdx*len(systems)+sysIdx)*nr + rIdx
				series[sysIdx].Points = append(series[sysIdx].Points,
					Point{X: fmt.Sprintf("%d", r), Value: lats[i]})
			}
		}
		fig.Series = series
		fig.Notes = append(fig.Notes,
			"get-only rows are the paper's line markers (no put client); R=1 get-only has no clients and reads 0")
		out[size] = fig
	}
	return out, nil
}

// hotKeyLoad runs the Fig. 10 workload given started clients: client 0
// puts (unless getOnly), the rest get, everyone pr.Ops times.
func hotKeyRun(s *sim.Simulator, put func(p *sim.Proc) (sim.Time, error),
	gets []func(p *sim.Proc) (sim.Time, error), ops int) (float64, error) {

	var h metrics.Histogram
	var firstErr error
	g := sim.NewGroup(s)
	runner := func(name string, op func(p *sim.Proc) (sim.Time, error)) {
		g.Add(1)
		s.Spawn(name, func(p *sim.Proc) {
			defer g.Done()
			for i := 0; i < ops; i++ {
				lat, err := op(p)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				h.Add(lat)
			}
		})
	}
	if put != nil {
		runner("putter", put)
	}
	for i, get := range gets {
		runner(fmt.Sprintf("getter%d", i), get)
	}
	done := false
	s.Spawn("join", func(p *sim.Proc) {
		g.Wait(p)
		done = true
		s.Stop()
	})
	if err := s.Run(); err != nil {
		return 0, err
	}
	if firstErr != nil {
		return 0, firstErr
	}
	if !done {
		return 0, fmt.Errorf("hot-key workload did not finish")
	}
	if h.N() == 0 {
		return 0, nil
	}
	return h.Mean(), nil
}

func niceHotKeyRun(pr Params, r, size int, getOnly bool) (float64, error) {
	opts := DefaultOptions()
	opts.Seed = pr.Seed
	opts.R = r
	opts.Clients = r
	opts.LoadBalance = true
	d := NewNICE(opts)
	const key = "hot"
	// Seed the object and settle.
	err := driveNICE(d, func(p *sim.Proc) {
		if _, err := d.Clients[0].Put(p, key, "v", size); err != nil {
			panic(fmt.Sprintf("fig10 seed failed: %v", err))
		}
	})
	if err != nil {
		d.Close()
		return 0, err
	}
	var put func(p *sim.Proc) (sim.Time, error)
	if !getOnly {
		put = func(p *sim.Proc) (sim.Time, error) {
			res, err := d.Clients[0].Put(p, key, "v", size)
			return res.Latency, err
		}
	}
	var gets []func(p *sim.Proc) (sim.Time, error)
	for i := 1; i < r; i++ {
		c := d.Clients[i]
		gets = append(gets, func(p *sim.Proc) (sim.Time, error) {
			res, err := c.Get(p, key)
			return res.Latency, err
		})
	}
	lat, err := hotKeyRun(d.Sim, put, gets, pr.Ops)
	d.Close()
	return lat, err
}

func noobHotKeyRun(pr Params, r, size int, cons noob.Consistency, getOnly bool) (float64, error) {
	opts := DefaultNOOBOptions()
	opts.Seed = pr.Seed
	opts.R = r
	opts.Clients = r
	opts.Consistency = cons
	if cons == noob.TwoPC {
		// The 2PC deployment load balances reads via the RAG gateway.
		opts.Access = noob.ViaGateway
		opts.Gateway = noob.RAG
		opts.Gets = noob.GetRoundRobin
	}
	d := NewNOOB(opts)
	const key = "hot"
	err := driveNOOB(d, func(p *sim.Proc) {
		if _, err := d.Clients[0].Put(p, key, "v", size); err != nil {
			panic(fmt.Sprintf("fig10 noob seed failed: %v", err))
		}
	})
	if err != nil {
		d.Close()
		return 0, err
	}
	var put func(p *sim.Proc) (sim.Time, error)
	if !getOnly {
		put = func(p *sim.Proc) (sim.Time, error) {
			res, err := d.Clients[0].Put(p, key, "v", size)
			return res.Latency, err
		}
	}
	var gets []func(p *sim.Proc) (sim.Time, error)
	for i := 1; i < r; i++ {
		c := d.Clients[i]
		gets = append(gets, func(p *sim.Proc) (sim.Time, error) {
			res, err := c.Get(p, key)
			return res.Latency, err
		})
	}
	lat, err := hotKeyRun(d.Sim, put, gets, pr.Ops)
	d.Close()
	return lat, err
}
