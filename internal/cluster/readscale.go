package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The readscale experiment measures how aggregate get throughput scales
// with the replication factor when the working set is concentrated on a
// single partition — the regime where a primary-reads design is bound by
// one server's CPU no matter how many replicas hold the data.
//
//   - NICEKV           2PC writes, primary reads: the flat baseline.
//   - NICEKV+quorum    any-k writes, primary reads: faster writes, same
//                      read bottleneck.
//   - NICEKV+LB        the paper's switch load balancing: reads spread by
//                      client source division, no write-conflict tracking.
//   - NICEKV+harmonia  in-network conflict detection: clean-key reads
//                      spread over every live replica, dirty keys pinned
//                      to the primary (internal/harmonia).
//
// The sweep crosses replication factor x write ratio x system. Near-
// linear scaling means the R=8 read-only harmonia cell approaches 8x the
// primary-reads baseline; the write-ratio rows show the scaling erode as
// dirty-key fallbacks and replica write work grow.

// readScaleSystems is the experiment's system axis.
var readScaleSystems = []string{"NICEKV", "NICEKV+quorum", "NICEKV+LB", "NICEKV+harmonia"}

// ReadScaleReplicas is the replication-factor axis.
var ReadScaleReplicas = []int{1, 2, 4, 8}

// ReadScalePutFracs is the write-ratio axis.
var ReadScalePutFracs = []float64{0, 0.05, 0.20}

const (
	readScaleNodes   = 10 // fixed fabric: only R varies
	readScaleClients = 32 // enough closed-loop demand to saturate 8 replicas
	readScaleKeys    = 16 // working set, all on one partition
)

// ReadScaleCell is one (system, R, putFrac) measurement.
type ReadScaleCell struct {
	System        string  `json:"system"`
	R             int     `json:"r"`
	PutFrac       float64 `json:"put_frac"`
	GetTput       float64 `json:"gets_per_sec"`
	GetP99Micros  float64 `json:"get_p99_us"`
	ServedLocal   int64   `json:"served_local"`   // gets answered by partition primaries
	ServedReplica int64   `json:"served_replica"` // gets answered by non-primary replicas
	Routed        int64   `json:"harmonia_routed"`
	Fallbacks     int64   `json:"harmonia_fallbacks"`
}

// ReadScaleReport is the full sweep result.
type ReadScaleReport struct {
	Nodes    int             `json:"nodes"`
	Clients  int             `json:"clients"`
	Keys     int             `json:"keys"`
	Replicas []int           `json:"replicas"`
	PutFracs []float64       `json:"put_fracs"`
	Cells    []ReadScaleCell `json:"cells"`
	// SpeedupAtMaxR is each system's read-only throughput at the largest
	// replication factor, relative to the NICEKV baseline in the same row.
	SpeedupAtMaxR map[string]float64 `json:"speedup_at_max_r"`
}

// readScaleOpts builds one arm's deployment options.
func readScaleOpts(system string, seed int64, r int) Options {
	opts := DefaultOptions()
	opts.Seed = seed
	opts.Nodes = readScaleNodes
	opts.R = r
	opts.Clients = readScaleClients
	switch system {
	case "NICEKV+quorum":
		if r > 1 {
			opts.QuorumK = (r / 2) + 1
		}
	case "NICEKV+LB":
		opts.LoadBalance = true
	case "NICEKV+harmonia":
		opts.Harmonia = true
	}
	return opts
}

// readScaleKeySet returns keys that all hash to the same partition, so
// every get competes for the same primary when reads are not spread.
func readScaleKeySet(space interface{ PartitionOf(string) int }) []string {
	keys := make([]string, 0, readScaleKeys)
	part := -1
	for i := 0; len(keys) < readScaleKeys; i++ {
		k := fmt.Sprintf("rs-%d", i)
		if part == -1 {
			part = space.PartitionOf(k)
		}
		if space.PartitionOf(k) == part {
			keys = append(keys, k)
		}
	}
	return keys
}

// readScaleRun measures one cell: load the working set, let the write
// in-flight state drain, then drive a closed-loop mixed workload.
func readScaleRun(pr Params, seed int64, system string, r int, putFrac float64) (ReadScaleCell, error) {
	cell := ReadScaleCell{System: system, R: r, PutFrac: putFrac}
	opts := readScaleOpts(system, seed, r)
	d := NewNICE(opts)
	defer d.Close()
	if err := d.Settle(); err != nil {
		return cell, err
	}
	keys := readScaleKeySet(d.Space)
	const valueSize = workload.DefaultValueSize

	// Load phase, then a drain sleep: with harmonia every loaded key must
	// leave the dirty set before the measured reads start.
	var loadErr error
	d.Sim.Spawn("rs-load", func(p *sim.Proc) {
		for _, k := range keys {
			if _, err := d.Clients[0].Put(p, k, "v", valueSize); err != nil {
				loadErr = err
				break
			}
		}
		p.Sleep(20 * time.Millisecond)
		d.Sim.Stop()
	})
	if err := d.Sim.Run(); err != nil {
		return cell, err
	}
	if loadErr != nil {
		return cell, loadErr
	}

	baseLocal, baseReplica := int64(0), int64(0)
	for _, n := range d.Nodes {
		ns := n.Stats()
		baseLocal += ns.GetsServedLocal
		baseReplica += ns.GetsServedAsReplica
	}

	// Measured phase: closed-loop clients, uniform key choice over the
	// single-partition working set.
	perClient := pr.Ops / 4
	if perClient < 50 {
		perClient = 50
	}
	var hist metrics.Histogram
	gets := 0
	start := d.Sim.Now()
	var opErr error
	g := sim.NewGroup(d.Sim)
	for c := range d.Clients {
		c := c
		rng := rand.New(rand.NewSource(seed + 7000*int64(c+1)))
		g.Add(1)
		d.Sim.Spawn(fmt.Sprintf("rs-client%d", c), func(p *sim.Proc) {
			defer g.Done()
			for n := 0; n < perClient; n++ {
				k := keys[rng.Intn(len(keys))]
				if rng.Float64() < putFrac {
					if _, err := d.Clients[c].Put(p, k, n, valueSize); err != nil {
						opErr = err
						return
					}
					continue
				}
				res, err := d.Clients[c].Get(p, k)
				if err != nil {
					opErr = err
					return
				}
				hist.Add(res.Latency)
				gets++
			}
		})
	}
	d.Sim.Spawn("rs-join", func(p *sim.Proc) { g.Wait(p); d.Sim.Stop() })
	if err := d.Sim.Run(); err != nil {
		return cell, err
	}
	if opErr != nil {
		return cell, opErr
	}

	elapsed := (d.Sim.Now() - start).Seconds()
	if elapsed > 0 {
		cell.GetTput = float64(gets) / elapsed
	}
	cell.GetP99Micros = hist.Percentile(99) * 1e6
	for _, n := range d.Nodes {
		ns := n.Stats()
		cell.ServedLocal += ns.GetsServedLocal
		cell.ServedReplica += ns.GetsServedAsReplica
	}
	cell.ServedLocal -= baseLocal
	cell.ServedReplica -= baseReplica
	if d.Harmonia != nil {
		st := d.Harmonia.Stats()
		cell.Routed = st.Routed
		cell.Fallbacks = st.DirtyFallbacks + st.TaintFallbacks
	}
	return cell, nil
}

// ReadScaleSweep runs the full grid on the RunCells worker pool.
func ReadScaleSweep(pr Params) (*ReadScaleReport, error) {
	rep := &ReadScaleReport{
		Nodes:    readScaleNodes,
		Clients:  readScaleClients,
		Keys:     readScaleKeys,
		Replicas: ReadScaleReplicas,
		PutFracs: ReadScalePutFracs,
	}
	nR, nF := len(ReadScaleReplicas), len(ReadScalePutFracs)
	cells := make([]ReadScaleCell, len(readScaleSystems)*nR*nF)
	err := RunCells(pr, len(cells), func(i int, seed int64) error {
		sys := readScaleSystems[i/(nR*nF)]
		ri := (i / nF) % nR
		fi := i % nF
		c, cerr := readScaleRun(pr, seed, sys, ReadScaleReplicas[ri], ReadScalePutFracs[fi])
		cells[i] = c
		return cerr
	})
	if err != nil {
		return nil, err
	}
	rep.Cells = cells

	rep.SpeedupAtMaxR = make(map[string]float64)
	maxR := ReadScaleReplicas[nR-1]
	var base float64
	for _, c := range cells {
		if c.System == "NICEKV" && c.R == maxR && c.PutFrac == 0 {
			base = c.GetTput
		}
	}
	if base > 0 {
		for _, c := range cells {
			if c.R == maxR && c.PutFrac == 0 {
				rep.SpeedupAtMaxR[c.System] = c.GetTput / base
			}
		}
	}
	return rep, nil
}

// ReadScaleFigure renders the read-only scaling row as a figure, one
// series per system over the replication-factor axis.
func ReadScaleFigure(rep *ReadScaleReport) *Figure {
	fig := &Figure{
		ID:     "readscale",
		Title:  "Get throughput vs replication factor (single-partition working set)",
		XLabel: "replication factor",
		YLabel: "gets per second, aggregate",
		Notes: []string{
			fmt.Sprintf("%d nodes, %d closed-loop clients, %d keys on one partition, read-only row",
				rep.Nodes, rep.Clients, rep.Keys),
			"harmonia: clean keys spread over all live replicas; dirty keys pinned to the primary",
		},
	}
	for _, sys := range readScaleSystems {
		s := Series{System: sys}
		for _, r := range rep.Replicas {
			for _, c := range rep.Cells {
				if c.System == sys && c.R == r && c.PutFrac == 0 {
					s.Points = append(s.Points, Point{X: fmt.Sprintf("%d", r), Value: c.GetTput})
				}
			}
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}
