package cluster

import (
	"testing"

	"repro/internal/faultinject"
)

// TestBatchSweepSmoke runs a reduced grid of the batchsweep and checks
// the shapes the full experiment asserts: batched durable cells must
// coalesce fsyncs (fsyncs < wal_appends, coalesced > 0), the put
// accumulator must form multi-op batches, and hot-key MultiGets must
// coalesce duplicate reads.
func TestBatchSweepSmoke(t *testing.T) {
	pr := Params{Seed: 42, Ops: 48}

	base, err := runBatchCell(pr, DeriveSeed(pr.Seed, 0),
		BatchCell{System: "NICEKV+LB+durable", Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Fsyncs == 0 || base.WALAppends == 0 {
		t.Fatalf("durable baseline recorded no WAL traffic: %+v", base)
	}
	if base.BatchCommits != 0 || base.GetsCoalesced != 0 || base.CoalescedSyncs != 0 {
		t.Errorf("baseline cell must run the legacy path, got batching counters: %+v", base)
	}

	batched, err := runBatchCell(pr, DeriveSeed(pr.Seed, 1),
		BatchCell{System: "NICEKV+LB+durable", Batch: 16, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if batched.Fsyncs >= batched.WALAppends {
		t.Errorf("group commit did not coalesce: fsyncs=%d wal_appends=%d",
			batched.Fsyncs, batched.WALAppends)
	}
	if batched.CoalescedSyncs == 0 {
		t.Error("no coalesced fsyncs in the batched durable cell")
	}
	if batched.BatchCommits == 0 || batched.MeanPutBatch <= 1 {
		t.Errorf("put accumulator idle: commits=%d mean=%.2f",
			batched.BatchCommits, batched.MeanPutBatch)
	}
	if batched.GetsCoalesced == 0 {
		t.Error("no coalesced gets despite a shared zipfian hot set")
	}
	if batched.PutTput <= base.PutTput {
		t.Errorf("batched durable puts not faster: %.0f/s vs baseline %.0f/s",
			batched.PutTput, base.PutTput)
	}
}

// TestBatchSweepDeterminism: the same batched cell under the same seed
// must reproduce bit-identically — the batching stack (client multiput
// fan-out, accumulator drains, group-commit leadership, get coalescing)
// must not introduce scheduling nondeterminism.
func TestBatchSweepDeterminism(t *testing.T) {
	pr := Params{Seed: 7, Ops: 32}
	cell := BatchCell{System: "NICEKV+LB+durable", Batch: 4, GroupCommit: true}
	a, err := runBatchCell(pr, DeriveSeed(pr.Seed, 9), cell)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runBatchCell(pr, DeriveSeed(pr.Seed, 9), cell)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n  a=%+v\n  b=%+v", a, b)
	}
}

// TestChaosDurableGroupCommit pins the regression the +durable chaos
// cell now guards: with WAL group commit enabled (the cell's tuned
// default), crash-heavy schedules must still pass the linearizability
// check AND the durability audit — coalescing fsyncs must never weaken
// fsync-before-ack. The repro line must also replay bit-identically, so
// group commit leadership is deterministic under faults.
func TestChaosDurableGroupCommit(t *testing.T) {
	var sys chaosSystem
	for _, s := range chaosSystems() {
		if s.name == "NICEKV+durable" {
			sys = s
		}
	}
	if sys.name == "" {
		t.Fatal("NICEKV+durable missing from chaosSystems")
	}
	opts := chaosOptions(1)
	sys.tune(&opts)
	if !opts.GroupCommit || opts.MaxSyncDelay == 0 {
		t.Fatalf("+durable chaos cell must run with group commit on, got %+v/%v",
			opts.GroupCommit, opts.MaxSyncDelay)
	}

	recoveries := int64(0)
	for sched := 0; sched < 3; sched++ {
		sched := faultinject.Generate(DeriveSeed(13, sched), chaosGenConfig(sys, 0))
		cell, err := runChaosCell(sys, sched)
		if err != nil {
			t.Fatal(err)
		}
		if len(cell.Violations) > 0 {
			t.Errorf("violations under group commit, repro: %s", cell.Repro())
			for _, v := range cell.Violations {
				t.Logf("    %s", v)
			}
		}
		recoveries += cell.Recoveries

		replayed, err := ReplayChaos(cell.Repro())
		if err != nil {
			t.Fatalf("ReplayChaos(%q): %v", cell.Repro(), err)
		}
		if replayed.Hash != cell.Hash || replayed.Recoveries != cell.Recoveries {
			t.Errorf("replay diverged: hash %x/%x recoveries %d/%d (%s)",
				cell.Hash, replayed.Hash, cell.Recoveries, replayed.Recoveries, cell.Repro())
		}
	}
	if recoveries == 0 {
		t.Error("no crash recoveries across the schedules; the audit proved nothing")
	}
}
