// Package cluster assembles complete simulated deployments — fabric,
// controller, storage nodes, clients — for both NICEKV and the NOOB
// baseline, and hosts the experiment runners that regenerate every figure
// of the paper's evaluation (§6).
package cluster

import (
	"time"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/ctrlchain"
	"repro/internal/harmonia"
	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/openflow"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/switchcache"
	"repro/internal/transport"
)

// Well-known ports shared by both systems.
const (
	DataPort = 7000
	CtrlPort = 9001
	MetaPort = 9000
	// ReplicaPort carries harmonia replica-routed reads: the dirty-set
	// stage rewrites clean gets to a replica's physical IP and this port,
	// and nodes serve non-primary reads only from it.
	ReplicaPort = 7001
)

// Options describes a deployment, defaulting to the paper's platform
// (§6): 1 Gbps links, one OpenFlow switch, replication level 3,
// 15 storage nodes, SSD-backed stores.
type Options struct {
	Nodes         int
	R             int
	Clients       int
	LoadBalance   bool
	Seed          int64
	Link          netsim.LinkConfig
	SwitchLatency sim.Time
	CtrlDelay     sim.Time
	Disk          kvstore.DiskConfig
	Heartbeat     sim.Time
	AckTimeout    sim.Time // protocol-phase wait (0 = node default)
	OpTimeout     sim.Time
	RetryWait     sim.Time
	RetryMaxWait  sim.Time // back-off cap (0 = client default)
	MaxRetries    int      // per-op retry budget (0 = client default)
	EdgeOVS       bool     // client-side Open vSwitch deployment (§5.1)
	EdgeLatency   sim.Time
	QuorumK       int      // any-k puts (0 = all replicas)
	CPUPerOp      sim.Time // per-request node processing cost
	Standby       bool     // deploy a hot-standby metadata replica (§4.1)
	// CtrlChain replicates the controller's coordination state across a
	// NetChain-style chain of switch-resident stores (internal/ctrlchain):
	// takeover restores views, statuses and cache installs from the chain
	// tail instead of the best-effort StateSync mirror, and writer
	// generations fence a returning zombie primary out of the chain and
	// the switches.
	CtrlChain bool
	// CtrlChainReplicas overrides the chain length (0 = ctrlchain default).
	CtrlChainReplicas int
	DynamicLB         bool     // workload-informed division rebalancing (§8)
	LazyMapping       bool     // install vring rules on first packet (§5)
	MappingIdle       sim.Time // idle expiry for vring rules (0 = never)
	// ClientIPs overrides the default client placement (useful to pin
	// clients into specific load-balancing divisions).
	ClientIPs []netsim.IP
	// Cache enables the in-switch hot-key cache (internal/switchcache) on
	// the core datapath, managed by the metadata service's detector.
	Cache bool
	// CacheCapacity bounds the switch table (0 = switchcache default).
	CacheCapacity int
	// CacheSampleEvery mirrors every Nth missed get key to the detector
	// (0 = every miss).
	CacheSampleEvery int
	// CacheHotThreshold is the sketch estimate that triggers an install
	// (0 = detector default).
	CacheHotThreshold uint32
	// CacheDecayEvery overrides the detector's sketch-halving period.
	CacheDecayEvery sim.Time
	// CacheUpdateOnPut selects write-update over write-invalidate.
	CacheUpdateOnPut bool
	// Harmonia enables in-network conflict detection (internal/harmonia)
	// on the core datapath: the switch tracks the dirty set of in-flight
	// writes and spreads reads of clean keys across every live replica of
	// the key's partition, falling back to the primary for dirty keys.
	// Composes with any write mode (2PC, any-k quorum) and with Cache;
	// off, every switch-side and node-side code path is bit-identical to
	// prior releases.
	Harmonia bool
	// HarmoniaCapacity bounds the switch dirty table (0 = harmonia
	// default). Overflow taints the affected partition — reads fall back
	// to the primary — until the next view install.
	HarmoniaCapacity int
	// TrafficGateways attaches one open-loop traffic gateway host per
	// leaf (NewNICELeafSpine only); see internal/cluster/traffic.go.
	TrafficGateways bool
	// DurableStore backs every node with the durable sharded engine
	// (internal/storage): WAL + fsync-on-ack, periodic compacting
	// snapshots, LRU eviction under StoreMemoryBudget. Off by default —
	// the legacy flat-map store is byte-identical to prior releases.
	DurableStore bool
	// StoreMemoryBudget bounds each node's memory tier in bytes
	// (0 = unbounded: nothing is evicted).
	StoreMemoryBudget int64
	// StoreShards overrides the engine's hash-partition count (0 = engine
	// default).
	StoreShards int
	// StoreSnapshotEvery overrides the snapshot/log-truncate period
	// (0 = engine default).
	StoreSnapshotEvery sim.Time
	// StoreNoFsync disables fsync-on-ack: commits become durable only
	// through snapshots, trading the crash-loss window for ack latency.
	StoreNoFsync bool
	// GroupCommit coalesces concurrent WAL fsyncs on each node into one
	// disk write (leader/follower group commit, DESIGN.md §16). Only
	// meaningful with DurableStore; the durability contract
	// (fsync-before-ack, torn-tail crash semantics) is unchanged.
	GroupCommit bool
	// MaxSyncDelay is the group-commit gather window: how long a sync
	// leader lingers before sizing its write, bounding the latency a lone
	// writer pays for batching. 0 = fire immediately (coalescing still
	// catches callers that arrive while a write is in flight).
	MaxSyncDelay sim.Time
	// CoalesceGets shares one store read among concurrent gets of the
	// same key on a node (thundering-herd suppression for hot keys). Off
	// by default — the serving path is bit-identical without it.
	CoalesceGets bool
	// PutBatchWindow arms the per-partition put accumulator on every
	// node: a primary reaching its commit point lingers this long so
	// co-arriving commits share one fsync and one batched timestamp
	// multicast. 0 = off (bit-identical default path).
	PutBatchWindow sim.Time
	// PutBatchMax caps the ops drained per accumulated commit batch
	// (0 = node default).
	PutBatchMax int
}

// storageConfig builds the durable-engine configuration from the
// deployment knobs; nil selects the legacy flat-map store.
func (o Options) storageConfig() *storage.Config {
	if !o.DurableStore {
		return nil
	}
	cfg := storage.DefaultConfig()
	cfg.MemoryBudget = o.StoreMemoryBudget
	if o.StoreShards > 0 {
		cfg.Shards = o.StoreShards
	}
	if o.StoreSnapshotEvery > 0 {
		cfg.SnapshotEvery = o.StoreSnapshotEvery
	}
	cfg.FsyncOnAck = !o.StoreNoFsync
	cfg.GroupCommit = o.GroupCommit
	cfg.MaxSyncDelay = o.MaxSyncDelay
	return &cfg
}

// probeCPU, when non-zero, overrides CPUPerOp (test instrumentation).
var probeCPU sim.Time

// probeDropInvalidate, when set, suppresses the cache write-through on
// puts (test instrumentation: the chaos checker must catch the resulting
// stale switch-cache reads).
var probeDropInvalidate bool

// DefaultOptions mirrors the paper's deployment configuration.
func DefaultOptions() Options {
	return Options{
		Nodes:         15,
		R:             3,
		Clients:       1,
		Seed:          1,
		Link:          netsim.Gbps(1, 5*time.Microsecond),
		SwitchLatency: 2 * time.Microsecond,
		CtrlDelay:     200 * time.Microsecond,
		Disk:          kvstore.SSD(),
		Heartbeat:     500 * time.Millisecond,
		OpTimeout:     time.Second,
		RetryWait:     2 * time.Second,
		EdgeLatency:   10 * time.Microsecond,
		CPUPerOp:      100 * time.Microsecond,
	}
}

// clientIP places client i inside load-balancing division i mod R, so a
// weak-scaling experiment exercises every replica (§4.5).
func clientIP(i, r int) netsim.IP {
	bits := 0
	for 1<<bits < r {
		bits++
	}
	width := uint32(1) << (16 - bits) // inside 192.168.0.0/16
	div := uint32(i % max(r, 1))
	off := uint32(i/max(r, 1)) + 1
	return netsim.MustParseIP("192.168.0.0").Add(div*width + off)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NICE is a complete NICEKV deployment.
type NICE struct {
	Opts     Options
	Sim      *sim.Simulator
	Net      *netsim.Network
	Core     *openflow.Datapath
	Service  *controller.Service
	Standby  *controller.Standby // nil unless Opts.Standby
	MetaHost *netsim.Host
	Nodes    []*core.Node
	Stacks   []*transport.Stack // node stacks, index-aligned with Nodes
	Clients  []*core.Client
	CStacks  []*transport.Stack
	Space    ring.Space
	Unicast  ring.VRing               // the clients' unicast request ring
	Gateways []Gateway                // traffic gateways (leaf-spine only)
	Cache    *switchcache.Cache       // nil unless Opts.Cache
	CacheMgr *controller.CacheManager // nil unless Opts.Cache
	Harmonia *harmonia.DirtySet       // nil unless Opts.Harmonia
	Chain    *ctrlchain.Chain         // nil unless Opts.CtrlChain
	// NodeLinks[i] is storage node i's access link (fault injection cuts
	// and degrades these); ClientLinks likewise for clients (nil entries
	// under EdgeOVS, where the client link is behind its own switch).
	NodeLinks   []*netsim.Link
	ClientLinks []*netsim.Link
	MetaLink    *netsim.Link
}

// NewNICE builds and boots a NICE deployment; call Settle before issuing
// traffic so bootstrap rules and views are in place.
func NewNICE(opts Options) *NICE {
	if probeCPU > 0 {
		opts.CPUPerOp = probeCPU
	}
	s := sim.New(opts.Seed)
	nw := netsim.NewNetwork(s)
	d := &NICE{Opts: opts, Sim: s, Net: nw, Space: ring.NewSpace(opts.Nodes)}

	nPorts := opts.Nodes + opts.Clients + 3
	sw := nw.NewSwitch("core", nPorts, opts.SwitchLatency)
	d.Core = openflow.Attach(sw, opts.CtrlDelay)

	var topo controller.Topology
	single := controller.NewSingleSwitch(d.Core)
	edge := controller.NewEdgeCore(d.Core)
	if opts.EdgeOVS {
		topo = edge
	} else {
		topo = single
	}
	attach := func(ip netsim.IP, port int) {
		single.Attach(ip, port)
		edge.AttachCore(ip, port)
	}

	// Storage nodes on ports [0, Nodes).
	var addrs []controller.NodeAddr
	for i := 0; i < opts.Nodes; i++ {
		h := nw.NewHost("node"+itoa(i), netsim.IPv4(10, 0, byte(i>>8), byte(i&0xff)).Add(1))
		d.NodeLinks = append(d.NodeLinks, nw.Connect(h.Port(), sw.Port(i), opts.Link))
		attach(h.IP(), i)
		st := transport.NewStack(h)
		d.Stacks = append(d.Stacks, st)
		addrs = append(addrs, controller.NodeAddr{
			Index: i, IP: h.IP(), MAC: h.MAC(), DataPort: DataPort, CtrlPort: CtrlPort,
		})
	}

	// Metadata host on port Nodes.
	metaHost := nw.NewHost("meta", netsim.MustParseIP("10.254.0.1"))
	d.MetaLink = nw.Connect(metaHost.Port(), sw.Port(opts.Nodes), opts.Link)
	attach(metaHost.IP(), opts.Nodes)
	metaStack := transport.NewStack(metaHost)
	d.MetaHost = metaHost

	// Optional hot-standby metadata host on the last port.
	var standbyStack *transport.Stack
	if opts.Standby {
		sbHost := nw.NewHost("meta-standby", netsim.MustParseIP("10.254.0.2"))
		nw.Connect(sbHost.Port(), sw.Port(nPorts-1), opts.Link)
		attach(sbHost.IP(), nPorts-1)
		standbyStack = transport.NewStack(sbHost)
	}

	// Clients on ports [Nodes+1, ...), optionally behind their own edge
	// Open vSwitch.
	for i := 0; i < opts.Clients; i++ {
		ip := clientIP(i, opts.R)
		if i < len(opts.ClientIPs) {
			ip = opts.ClientIPs[i]
		}
		h := nw.NewHost("client"+itoa(i), ip)
		port := opts.Nodes + 1 + i
		if opts.EdgeOVS {
			ovs := nw.NewSwitch("ovs"+itoa(i), 2, opts.EdgeLatency)
			dp := openflow.Attach(ovs, opts.CtrlDelay)
			nw.Connect(h.Port(), ovs.Port(0), opts.Link)
			nw.Connect(ovs.Port(1), sw.Port(port), opts.Link)
			edge.AddEdge(dp, 1)
			edge.AttachLocal(dp, ip, 0)
			d.ClientLinks = append(d.ClientLinks, nil)
		} else {
			d.ClientLinks = append(d.ClientLinks, nw.Connect(h.Port(), sw.Port(port), opts.Link))
		}
		attach(ip, port)
		st := transport.NewStack(h)
		d.CStacks = append(d.CStacks, st)
	}

	// Controller.
	cfg := controller.DefaultConfig()
	cfg.Placement = ring.NewPlacement(opts.Nodes, opts.R)
	cfg.Unicast = ring.MustVRing(netsim.MustParsePrefix("10.10.0.0/16"), opts.Nodes, 8)
	cfg.Multicast = ring.MustVRing(netsim.MustParsePrefix("10.11.0.0/16"), opts.Nodes, 8)
	cfg.GroupBase = netsim.MustParseIP("239.0.0.0")
	cfg.HeartbeatEvery = opts.Heartbeat
	cfg.LoadBalance = opts.LoadBalance
	cfg.DynamicLB = opts.DynamicLB
	cfg.LazyMapping = opts.LazyMapping
	cfg.MappingIdleTimeout = opts.MappingIdle
	cfg.ClientSpace = netsim.MustParsePrefix("192.168.0.0/16")
	cfg.CtrlPort = MetaPort
	if opts.Standby {
		cfg.StandbyIP = standbyStack.IP()
	}
	// The coordination-state store is shared between the active service
	// and its standby: that is what keeps Acquire monotonic across a
	// takeover and fences the old primary.
	if opts.CtrlChain {
		chcfg := ctrlchain.DefaultConfig()
		if opts.CtrlChainReplicas > 0 {
			chcfg.Replicas = opts.CtrlChainReplicas
		}
		d.Chain = ctrlchain.New(s, chcfg)
		cfg.Store = controller.NewChainStore(d.Chain)
	} else if opts.Standby {
		cfg.Store = controller.NewMemStore()
	}
	d.Unicast = cfg.Unicast
	d.Service = controller.New(metaStack, topo, cfg, addrs)
	d.Service.Start()
	if opts.Standby {
		d.Service.RegisterHost(standbyStack.IP(), standbyStack.Host().MAC())
		d.Standby = controller.NewStandby(standbyStack, topo, cfg, addrs, metaStack.IP())
		d.Standby.Start()
	}
	for _, cst := range d.CStacks {
		d.Service.RegisterHost(cst.IP(), cst.Host().MAC())
	}

	// In-switch hot-key cache on the core datapath. Attach wraps the
	// datapath's pipeline, so this must precede traffic but may follow
	// rule bootstrap.
	if opts.Cache {
		ccfg := switchcache.DefaultConfig(opts.CtrlDelay)
		if opts.CacheCapacity > 0 {
			ccfg.Capacity = opts.CacheCapacity
		}
		if opts.CacheSampleEvery > 0 {
			ccfg.SampleEvery = opts.CacheSampleEvery
		}
		d.Cache = switchcache.Attach(d.Core, core.CacheCodec{DataPort: DataPort}, ccfg)
		mcfg := controller.DefaultCacheManagerConfig()
		if opts.CacheHotThreshold > 0 {
			mcfg.HotThreshold = opts.CacheHotThreshold
		}
		if opts.CacheDecayEvery > 0 {
			mcfg.DecayEvery = opts.CacheDecayEvery
		}
		d.CacheMgr = d.Service.EnableCache(d.Cache, mcfg)
		if d.Standby != nil {
			d.Standby.EnableCacheOnTakeover(d.Cache, mcfg)
		}
	}

	// Harmonia dirty-set stage on the core datapath, behind the cache
	// when both are enabled (switch → cache → dirty set → flow tables):
	// a cache hit never reaches the stage, a miss is spread across the
	// key's replicas like any other clean read.
	if opts.Harmonia {
		hcfg := harmonia.DefaultConfig(opts.CtrlDelay)
		hcfg.ReplicaPort = ReplicaPort
		if opts.HarmoniaCapacity > 0 {
			hcfg.Capacity = opts.HarmoniaCapacity
		}
		d.Harmonia = harmonia.Attach(d.Core, core.HarmoniaCodec{DataPort: DataPort}, d.Space.PartitionOf, hcfg)
		if d.Cache != nil {
			d.Core.Switch().SetPipeline(d.Cache) // cache stays at the head
			d.Cache.SetNext(d.Harmonia)
		}
		d.Service.EnableHarmonia(d.Harmonia)
		if d.Standby != nil {
			d.Standby.EnableHarmoniaOnTakeover(d.Harmonia)
		}
	}

	// Storage nodes.
	for i := 0; i < opts.Nodes; i++ {
		ncfg := core.DefaultNodeConfig()
		ncfg.Addr = addrs[i]
		ncfg.Meta = metaStack.IP()
		ncfg.MetaPort = MetaPort
		ncfg.Space = d.Space
		ncfg.HeartbeatEvery = opts.Heartbeat
		if opts.AckTimeout > 0 {
			ncfg.AckTimeout = opts.AckTimeout
		}
		ncfg.Disk = opts.Disk
		ncfg.QuorumK = opts.QuorumK
		ncfg.CPUPerOp = opts.CPUPerOp
		ncfg.Storage = opts.storageConfig()
		ncfg.CoalesceGets = opts.CoalesceGets
		ncfg.PutBatchWindow = opts.PutBatchWindow
		ncfg.PutBatchMax = opts.PutBatchMax
		if d.Cache != nil && !probeDropInvalidate {
			ncfg.Cache = d.Cache
			ncfg.CacheUpdateOnPut = opts.CacheUpdateOnPut
		}
		if d.Harmonia != nil {
			ncfg.Harmonia = d.Harmonia
			ncfg.HarmoniaServe = true
			ncfg.ReplicaPort = ReplicaPort
		}
		node := core.NewNode(d.Stacks[i], ncfg)
		node.Start()
		d.Nodes = append(d.Nodes, node)
	}

	// Clients.
	for i := 0; i < opts.Clients; i++ {
		ccfg := core.DefaultClientConfig()
		ccfg.Unicast = cfg.Unicast
		ccfg.Multicast = cfg.Multicast
		ccfg.DataPort = DataPort
		ccfg.R = opts.R
		ccfg.QuorumK = opts.QuorumK
		ccfg.OpTimeout = opts.OpTimeout
		// The dirty-set stage cannot parse batched prepares; keep MultiPut
		// on single-op framing so every put marks its key (client.go).
		ccfg.PerOpPrepares = opts.Harmonia
		ccfg.RetryWait = opts.RetryWait
		if opts.RetryMaxWait > 0 {
			ccfg.RetryMaxWait = opts.RetryMaxWait
		}
		if opts.MaxRetries > 0 {
			ccfg.MaxRetries = opts.MaxRetries
		}
		cl := core.NewClient(d.CStacks[i], ccfg)
		cl.Start()
		d.Clients = append(d.Clients, cl)
	}
	return d
}

// Settle runs the simulation briefly so bootstrap flow mods and view
// announcements land before traffic starts.
func (d *NICE) Settle() error {
	return d.Sim.RunUntil(d.Sim.Now() + 20*time.Millisecond)
}

// Close reaps all simulation processes.
func (d *NICE) Close() { d.Sim.Shutdown() }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b [12]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		b[pos] = '-'
	}
	return string(b[pos:])
}
