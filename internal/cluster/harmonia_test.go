package cluster

import (
	"fmt"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/sim"
)

// TestHarmoniaSmoke: with the dirty-set stage attached, a read-heavy
// workload on a quiescent key set is spread across the replica set by
// the switch, every value stays correct, and the counters agree that
// replica routing actually happened.
func TestHarmoniaSmoke(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.Harmonia = true
	d := runNICE(t, opts, func(p *sim.Proc, d *NICE) {
		c := d.Clients[0]
		for i := 0; i < 8; i++ {
			if _, err := c.Put(p, fmt.Sprintf("hk-%d", i), i, 512); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
		}
		p.Sleep(ms(20)) // let every replica apply, clearing the dirty set
		for round := 0; round < 12; round++ {
			for i := 0; i < 8; i++ {
				res, err := c.Get(p, fmt.Sprintf("hk-%d", i))
				if err != nil || !res.Found || res.Value != i {
					t.Errorf("get hk-%d = %+v, %v", i, res, err)
					return
				}
			}
		}
	})
	st := d.Harmonia.Stats()
	if st.Routed == 0 || st.RoutedReplica == 0 {
		t.Errorf("no reads were replica-routed: %+v", st)
	}
	var replicaGets, localGets int64
	for _, n := range d.Nodes {
		ns := n.Stats()
		replicaGets += ns.GetsServedAsReplica
		localGets += ns.GetsServedLocal
	}
	if replicaGets == 0 {
		t.Errorf("no node served a get as non-primary replica (local=%d)", localGets)
	}
	d.Close()
}

// TestHarmoniaConcurrentWritesStayConsistent: a mixed read/write
// workload on a tiny hot key set — the adversarial case for clean-key
// rewrites — must never observe a value older than the newest completed
// put, even under any-k quorum commit where some replica always lags.
func TestHarmoniaConcurrentWritesStayConsistent(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.Clients = 3
	opts.Harmonia = true
	opts.QuorumK = 2 // any-k: the laggard replica is the trap
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	const key = "contended"
	g := sim.NewGroup(d.Sim)
	floor := 0 // newest value whose put has returned
	g.Add(1)
	d.Sim.Spawn("writer", func(p *sim.Proc) {
		defer g.Done()
		for i := 1; i <= 30; i++ {
			if _, err := d.Clients[0].Put(p, key, i, 256); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
			floor = i
		}
	})
	for ci := 1; ci < 3; ci++ {
		c := d.Clients[ci]
		g.Add(1)
		d.Sim.Spawn("reader", func(p *sim.Proc) {
			defer g.Done()
			for i := 0; i < 60; i++ {
				f := floor // floor at invoke time
				res, err := c.Get(p, key)
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				got := 0
				if res.Found {
					got = res.Value.(int)
				}
				if got < f {
					t.Errorf("stale read: got %d, but put(%d) had completed", got, f)
					return
				}
			}
		})
	}
	d.Sim.Spawn("join", func(p *sim.Proc) { g.Wait(p); d.Sim.Stop() })
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.Harmonia.Stats()
	if st.Marks == 0 {
		t.Errorf("no puts were marked dirty: %+v", st)
	}
	d.Close()
}

// TestHarmoniaViewChangeFlushesDirtySet: crashing a replica mid-workload
// forces a view change; the reinstall must flush the switch's dirty set
// (sticky entries, taint reset) and reads must stay correct across the
// whole window.
func TestHarmoniaViewChangeFlushesDirtySet(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.Harmonia = true
	opts.Heartbeat = ms(100)
	opts.OpTimeout = ms(500)
	opts.RetryWait = ms(300)
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	key := "flushed"
	part := d.Space.PartitionOf(key)
	victim := d.Service.View(part).Replicas[1].Index // a secondary

	d.Sim.Spawn("workload", func(p *sim.Proc) {
		c := d.Clients[0]
		for i := 1; i <= 5; i++ {
			if _, err := c.Put(p, key, i, 512); err != nil {
				t.Errorf("warm put: %v", err)
			}
		}
		d.Nodes[victim].Crash()
		// Keep writing and reading across the failover window. Retries
		// are expected; stale values are not.
		last := 5
		for i := 6; i <= 15; i++ {
			if _, err := c.Put(p, key, i, 512); err == nil {
				last = i
			}
			res, err := c.Get(p, key)
			if err == nil && res.Found && res.Value.(int) < last {
				t.Errorf("stale read %v after put(%d) completed", res.Value, last)
			}
		}
		d.Nodes[victim].Restart()
		p.Sleep(ms(800))
		res, err := c.Get(p, key)
		if err != nil || !res.Found || res.Value.(int) < last {
			t.Errorf("post-recovery get = %+v, %v (want >= %d)", res, err, last)
		}
		d.Sim.Stop()
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	// The crash + recovery reinstalls the victim's partitions; entries
	// resident at that moment become sticky. Flushes can legitimately be
	// zero only if no entry was resident at install time, but installs
	// beyond the initial one-per-partition bring-up must have happened.
	if st := d.Harmonia.Stats(); st.Installs <= int64(d.Space.P) {
		t.Errorf("no view-change reinstalls reached the dirty set: %+v", st)
	}
	d.Close()
}

// TestHarmoniaChaosCell drives the +harmonia chaos system through
// generated fault schedules: zero checker violations, and the dirty-set
// stage must actually route (the cell is pointless if harmonia never
// engages).
func TestHarmoniaChaosCell(t *testing.T) {
	var sys chaosSystem
	for _, s := range chaosSystems() {
		if s.name == "NICEKV+harmonia" {
			sys = s
		}
	}
	if sys.name == "" {
		t.Fatal("harmonia system missing from chaosSystems")
	}
	routed := int64(0)
	for i := 0; i < 3; i++ {
		sched := faultinject.Generate(DeriveSeed(23, i), chaosGenConfig(sys, 0))
		cell, err := runChaosCell(sys, sched)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range cell.Violations {
			t.Errorf("schedule %d: %s (repro: %s)", i, v, cell.Repro())
		}
		routed += cell.HarmoniaRouted
	}
	if routed == 0 {
		t.Error("harmonia never routed a read across 3 chaos schedules")
	}
}

// TestHarmoniaFalseDeposalRegression replays a chaos schedule that once
// produced stale reads. The sequence: an any-k put's prepare is lost to
// one replica, so the acked version lives on two of three members; one
// holder crashes; heartbeat loss then makes the controller depose the
// other holder — live, merely lossy — leaving a view where NO member has
// the acked write. The promoted primary's range sync over the surviving
// members alone "completed" without it and served the stale version.
// The fix chases superseded-view members during the post-promotion sync
// (a falsely deposed node still answers range fetches) and holds
// primary-routed reads at nodes that do not believe themselves primary.
func TestHarmoniaFalseDeposalRegression(t *testing.T) {
	cell, err := ReplayChaos("NICEKV+harmonia :: seed=5360236921867582681 | loss n2 r=0.250549727395339 @277.983352ms +110.701296ms | slownic n3 x=7.375146497205922 @306.607502ms +132.366741ms | crash n1 @325.115761ms +138.655675ms | loss n0 r=0.14855798606557893 @400.608502ms +40.073144ms | loss n4 r=0.41157555708617566 @415.08098ms +54.72591ms | slownic n2 x=2.9510409206088477 @434.482248ms +50.810054ms")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range cell.Violations {
		t.Errorf("replayed schedule violated: %s", v)
	}
}

// TestHarmoniaRecoveryFetchRaceRegression replays a schedule where a
// rejoining replica's range fetch raced an in-flight any-k put: the
// fetch snapshotted the pre-put value, the put's prepare predated the
// rejoiner's multicast-group membership (the group mod was stretched by
// an injected control-channel delay, and the recovery kickoff message
// raced ahead of it), so neither the fetch nor the commit multicast
// ever delivered the acked version — and a clean-key rewrite then read
// stale from the freshly promoted replica. The fix is the
// FetchRangeReply.Pending drain in syncPartition plus the
// Service.barrierSend fence that keeps recovery kickoffs behind the
// switch group mods.
func TestHarmoniaRecoveryFetchRaceRegression(t *testing.T) {
	cell, err := ReplayChaos("NICEKV+harmonia :: seed=96504334491089634 | loss n0 r=0.2897726581528765 @149.087948ms +110.438375ms | ctrl d=8.884751ms r=0.5183823915063865 @216.761979ms +146.001159ms | slowdisk n4 x=26.76215727940441 @285.103676ms +89.611877ms | loss n2 r=0.3947557742193006 @400.96345ms +85.004691ms | loss n1 r=0.1783060567657524 @451.828765ms +44.842407ms | loss n3 r=0.20273651132065884 @466.604376ms +187.3573ms | slowdisk n0 x=10.023722286590345 @468.13253ms +133.810291ms | slownic n4 x=19.34719389717938 @492.403432ms +196.317291ms")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range cell.Violations {
		t.Errorf("replayed schedule violated: %s", v)
	}
}

// TestCollapsedPartitionLastHolderReseat replays a quorum-cell schedule
// where false-deposal cascades emptied every partition's view (the sole
// remaining replica was deposed by heartbeat loss while alive) and an
// earlier-deposed node rejoined first. Reseating that node as primary
// acked a fresh put at a version behind one the deposed holder had
// already acknowledged — a version rollback. The controller now records
// the last removed replica per collapsed partition and reseats only
// that node; other rejoiners skip the partition until the holder
// returns. (Before the reseat logic existed at all, this schedule
// panicked the controller on an empty view.)
func TestCollapsedPartitionLastHolderReseat(t *testing.T) {
	cell, err := ReplayChaos("NICEKV+quorum :: seed=344103320661018562 | loss n1 r=0.4190385780390639 @143.940676ms +126.788355ms | linkdown n0 @171.88203ms +84.096007ms | loss n4 r=0.14237373516006308 @208.486504ms +120.36211ms | ctrl d=1.412171ms r=0.2727307999089464 @224.522489ms +62.075986ms | linkdown n3 @295.266772ms +113.0622ms | loss n2 r=0.33901147403117066 @360.456282ms +133.093299ms")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range cell.Violations {
		t.Errorf("replayed schedule violated: %s", v)
	}
}
