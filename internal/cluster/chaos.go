package cluster

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/kvstore"
	"repro/internal/sim"
)

// The chaos experiment runs randomized fault schedules
// (internal/faultinject) against small NICEKV deployments while clients
// record an operation history the consistency checker
// (internal/checker) verifies afterwards. Every cell is deterministic:
// the schedule, the simulator and the workload all derive from one
// seed, so a violation prints a one-line repro ("system :: schedule")
// that replays the exact execution via ReplayChaos.

// chaosHorizon is the workload duration of one chaos cell; faults land
// in [horizon/10, horizon*7/10] and the longest outage is horizon/5, so
// the tail of every run observes a healed cluster.
const chaosHorizon = 800 * time.Millisecond

// chaosThink paces the clients (one op roughly every think time).
const chaosThink = 2 * time.Millisecond

const chaosValSize = 128

// chaosKeys is the shared working set. Three clients cycling through it
// with different phases gives every key cross-client read/write traffic.
var chaosKeys = []string{
	"chaos-0", "chaos-1", "chaos-2", "chaos-3",
	"chaos-4", "chaos-5", "chaos-6", "chaos-7",
}

// chaosSystem is one system configuration under test.
type chaosSystem struct {
	name string
	tune func(*Options)
	// maxOutages overrides the generator's concurrent-outage cap when
	// non-zero.
	maxOutages int
	// leafspine builds the cell on the four-leaf spine fabric instead of
	// the single-switch deployment.
	leafspine bool
	// traffic (implies leafspine) runs the open-loop engine offering
	// background load while the chaos clients record the checked history.
	traffic bool
	// weights reshapes the generator's fault mix (index by
	// faultinject.Kind); nil keeps the default bias.
	weights []int
	// chainNodes is the control-chain replica count; non-zero lets the
	// generator draw chainkill targets (ctrlchain systems only).
	chainNodes int
}

// chaosSystems returns the tested configurations. The quorum system runs
// without load balancing: an any-k put is acked before the laggard
// secondary commits, so a balanced get to that secondary may legally
// return the previous version — the acked-put floor only holds on the
// primary read path. It also caps the generator at one concurrent
// outage: an any-k put is durable on the primary plus k-1 secondaries
// only, so two overlapping outages can make every copy of an
// acknowledged put unreachable while the view moves on — a data-loss
// window the protocol does not claim to survive.
func chaosSystems() []chaosSystem {
	return []chaosSystem{
		{name: "NICEKV/2PC", tune: func(o *Options) { o.LoadBalance = true }},
		{name: "NICEKV+cache", tune: func(o *Options) {
			o.LoadBalance = true
			o.Cache = true
			o.CacheHotThreshold = 4
			o.CacheSampleEvery = 1
			o.CacheDecayEvery = 200 * time.Millisecond
		}},
		{name: "NICEKV+quorum", tune: func(o *Options) { o.QuorumK = 2 }, maxOutages: 1},
		// The heavytraffic cell answers "does the open-loop engine change
		// what the checker sees?": same invariants, but every fault lands
		// while thousands of virtual-client gets are crossing the same
		// leaf-spine fabric as the recorded history.
		{name: "NICEKV+heavytraffic", tune: func(o *Options) {
			o.LoadBalance = true
			o.TrafficGateways = true
		}, traffic: true},
		// The durable cell puts the storage engine under the harshest mix
		// it faces: a crash really wipes memory and the unfsynced WAL tail
		// (no state resurrection — recovery is snapshot + log replay), the
		// memory budget covers only half the working set so eviction and
		// promotion churn constantly, and the fault mix is reshaped toward
		// crash and slowdisk. The post-run durability audit (CheckDurability
		// against the union of the nodes' final stores) holds in addition
		// to the standard invariants. Appended last: cell seeds derive from
		// sweep position, so inserting mid-list would reseed the
		// longstanding systems' schedules.
		{name: "NICEKV+durable", tune: func(o *Options) {
			o.LoadBalance = true
			o.DurableStore = true
			o.StoreMemoryBudget = int64(len(chaosKeys) * chaosValSize / 2)
			o.StoreShards = 2
			o.StoreSnapshotEvery = 100 * time.Millisecond
			// Group commit stays on under chaos: coalesced fsyncs must not
			// weaken fsync-before-ack (a crash mid-batch tears the whole
			// batch), and the durability audit proves it.
			o.GroupCommit = true
			o.MaxSyncDelay = 20 * time.Microsecond
		}, weights: durableWeights()},
		// The ctrlchain cell kills the control plane itself: the active
		// metadata host crashes mid-run (ctrlcrash), chain replicas
		// fail-stop under it (chainkill), and storage nodes crash alongside
		// — all while the hot standby must take over from the chain tail
		// and fence the returning zombie. The in-switch cache is on with a
		// hair trigger so takeovers land mid-install. Appended last: cell
		// seeds derive from sweep position (see the durable cell's note).
		{name: "NICEKV+ctrlchain", tune: func(o *Options) {
			o.LoadBalance = true
			o.Standby = true
			o.CtrlChain = true
			o.Cache = true
			o.CacheHotThreshold = 4
			o.CacheSampleEvery = 1
			o.CacheDecayEvery = 200 * time.Millisecond
		}, weights: ctrlWeights(), chainNodes: 3},
		// The harmonia cell routes reads through the in-switch dirty set
		// under the mode's most adversarial write protocol: any-k quorum
		// puts, where an acknowledged commit can leave laggard replicas
		// behind — exactly the copies a clean-key rewrite must never read
		// stale from. Outages capped at one for the same any-k durability
		// reason as the quorum cell. Appended last: cell seeds derive from
		// sweep position (see the durable cell's note).
		{name: "NICEKV+harmonia", tune: func(o *Options) {
			o.Harmonia = true
			o.QuorumK = 2
		}, maxOutages: 1},
	}
}

// durableWeights biases the durable cell's schedules toward the faults
// the storage engine exists to survive.
func durableWeights() []int {
	w := faultinject.DefaultWeights()
	w[faultinject.NodeCrash] = 60
	w[faultinject.SlowDisk] = 20
	w[faultinject.Partition] = 0
	w[faultinject.LinkDown] = 5
	w[faultinject.LinkLoss] = 10
	w[faultinject.DelaySpike] = 5
	w[faultinject.SlowNIC] = 5
	w[faultinject.CtrlFault] = 5
	return w
}

// ctrlWeights biases the ctrlchain cell's schedules toward the faults
// the replicated control plane exists to survive: controller crashes,
// chain replica fail-stops, and the node crashes whose handoffs the
// promoted controller must drive from restored state.
func ctrlWeights() []int {
	w := faultinject.DefaultWeights()
	w[faultinject.NodeCrash] = 30
	w[faultinject.CtrlCrash] = 40
	w[faultinject.ChainKill] = 25
	w[faultinject.Partition] = 0
	w[faultinject.LinkDown] = 5
	w[faultinject.LinkLoss] = 10
	w[faultinject.DelaySpike] = 5
	w[faultinject.SlowNIC] = 5
	w[faultinject.SlowDisk] = 5
	w[faultinject.CtrlFault] = 10
	return w
}

// chaosOptions is the cell deployment: small cluster, fast failure
// detection, tight client timeouts with capped-backoff retries sized so
// an op can outlive a detection + handoff window.
func chaosOptions(seed int64) Options {
	opts := DefaultOptions()
	opts.Seed = seed
	opts.Nodes = 5
	opts.R = 3
	opts.Clients = 3
	opts.Heartbeat = 20 * time.Millisecond
	opts.AckTimeout = 5 * time.Millisecond
	opts.OpTimeout = 10 * time.Millisecond
	opts.RetryWait = 5 * time.Millisecond
	opts.RetryMaxWait = 40 * time.Millisecond
	opts.MaxRetries = 8
	return opts
}

// chaosGenConfig builds the generator bounds for one system. ctrlBias
// (the -chaos-ctrl knob; 0 or 1 = neutral) scales the controller-fault
// weights of systems that opted into them — systems without
// controller faults keep weight zero regardless, so their longstanding
// schedules stay byte-identical whatever the knob says.
func chaosGenConfig(sys chaosSystem, ctrlBias float64) faultinject.GenConfig {
	cfg := faultinject.DefaultGenConfig(chaosOptions(0).Nodes, chaosHorizon)
	if sys.maxOutages > 0 {
		cfg.MaxOutages = sys.maxOutages
	}
	cfg.ChainNodes = sys.chainNodes
	cfg.Weights = sys.weights
	if ctrlBias > 0 && ctrlBias != 1 && sys.weights != nil {
		w := append([]int(nil), sys.weights...)
		for _, k := range []faultinject.Kind{faultinject.CtrlCrash, faultinject.ChainKill} {
			if w[k] > 0 {
				w[k] = int(float64(w[k]) * ctrlBias)
				if w[k] < 1 {
					w[k] = 1
				}
			}
		}
		cfg.Weights = w
	}
	return cfg
}

// niceFabric adapts a NICE deployment to faultinject.Fabric. Base link
// and disk configurations are captured at construction so degradations
// revert exactly; the generator serializes faults per node, so a revert
// never clobbers another active fault's state.
type niceFabric struct {
	d     *NICE
	disks []kvstore.DiskConfig
}

func newNiceFabric(d *NICE) *niceFabric {
	f := &niceFabric{d: d}
	for _, n := range d.Nodes {
		f.disks = append(f.disks, n.Store().Disk())
	}
	return f
}

func (f *niceFabric) Crash(n int)   { f.d.Nodes[n].Crash() }
func (f *niceFabric) Restart(n int) { f.d.Nodes[n].Restart() }

func (f *niceFabric) SetLinkDown(n int, down bool) { f.d.NodeLinks[n].SetDown(down) }

func (f *niceFabric) SetLinkLoss(n int, rate float64) { f.d.NodeLinks[n].SetLossRate(rate) }

func (f *niceFabric) SetLinkDelayFactor(n int, factor float64) {
	cfg := f.d.Opts.Link
	cfg.Delay = sim.Time(float64(cfg.Delay) * factor)
	f.d.NodeLinks[n].SetConfig(cfg)
}

func (f *niceFabric) SetNICFactor(n int, factor float64) {
	cfg := f.d.Opts.Link
	cfg.BandwidthBps /= factor
	f.d.NodeLinks[n].SetConfig(cfg)
}

func (f *niceFabric) SetDiskFactor(n int, factor float64) {
	base := f.disks[n]
	cfg := f.d.Nodes[n].Store().Disk()
	cfg.WriteLatency = sim.Time(float64(base.WriteLatency) * factor)
	cfg.WriteBps = base.WriteBps / factor
	cfg.ReadLatency = sim.Time(float64(base.ReadLatency) * factor)
	cfg.ReadBps = base.ReadBps / factor
	f.d.Nodes[n].Store().SetDisk(cfg)
}

func (f *niceFabric) SetCtrlFault(extra sim.Time, drop float64) {
	f.d.Core.SetControlFault(extra, drop)
	if f.d.Cache != nil {
		f.d.Cache.SetExtraCtrlDelay(extra)
	}
	if f.d.Harmonia != nil {
		f.d.Harmonia.SetExtraCtrlDelay(extra)
	}
}

// CrashCtrl fail-stops the active metadata host: heartbeats, standby
// pings and control responses all stop dead, exactly like a kernel
// panic on the controller machine. The hot standby's watchdog is what
// notices.
func (f *niceFabric) CrashCtrl() { f.d.MetaHost.SetDown(true) }

// RestartCtrl revives the old primary's host — the zombie returns with
// its pre-crash state and must be fenced, not obeyed.
func (f *niceFabric) RestartCtrl() { f.d.MetaHost.SetDown(false) }

// SetChainDown fail-stops (or revives) one control-chain replica.
func (f *niceFabric) SetChainDown(i int, down bool) {
	if f.d.Chain != nil {
		f.d.Chain.SetDown(i, down)
	}
}

// ChaosCell is the outcome of one (system, schedule) run.
type ChaosCell struct {
	System   string
	Schedule faultinject.Schedule
	// Ops counts completed client operations; Failed those that
	// exhausted their retry budget (legal under faults — failed ops
	// constrain nothing).
	Ops, Failed int
	// Hash digests the recorded history; equal seeds must produce equal
	// hashes.
	Hash       uint64
	Violations []checker.Violation
	// TrafficOps counts open-loop engine requests issued alongside the
	// chaos clients (zero for systems without background traffic); it is
	// part of the determinism recheck.
	TrafficOps int64
	// Recoveries / Replayed sum the durable engines' crash recoveries and
	// WAL records replayed (zero for legacy-store systems); they witness
	// that recovery really was snapshot + log replay and are part of the
	// determinism recheck.
	Recoveries int64
	Replayed   int64
	// Takeovers counts standby promotions (0 or 1 per cell); Fenced sums
	// the zombie writes rejected at the state store, the chain head and
	// the switches. Both join the determinism recheck for ctrlchain
	// systems: a replay must fence the exact same writes.
	Takeovers int64
	Fenced    int64
	// Harmonia read-routing telemetry (zero for systems without the
	// dirty-set stage); all four join the determinism recheck — a replay
	// must make the identical routing decision for every read.
	HarmoniaRouted      int64 // clean reads rewritten at the switch
	HarmoniaReplicaGets int64 // reads the nodes answered as non-primaries
	HarmoniaFallbacks   int64 // reads punted to the primary (dirty key or taint)
	HarmoniaFlushes     int64 // dirty entries stickied by view-change installs
}

// Repro is the one-line reproduction command for this cell.
func (c *ChaosCell) Repro() string {
	return fmt.Sprintf("%s :: %s", c.System, c.Schedule)
}

// runChaosCell executes one fault schedule against one system. The
// simulator seed is the schedule seed, so the whole cell derives from
// one number.
func runChaosCell(sys chaosSystem, sched faultinject.Schedule) (ChaosCell, error) {
	cell := ChaosCell{System: sys.name, Schedule: sched}
	opts := chaosOptions(sched.Seed)
	sys.tune(&opts)
	var d *NICE
	if sys.traffic || sys.leafspine {
		d = NewNICELeafSpine(opts, 4)
	} else {
		d = NewNICE(opts)
	}
	defer d.Close()
	if core.Debug {
		d.Service.SetTrace(func(format string, args ...any) {
			fmt.Printf("CTRL "+format+"\n", args...)
		})
	}
	if err := d.Settle(); err != nil {
		return cell, err
	}
	faultinject.Install(d.Sim, newNiceFabric(d), sched)

	var eng *TrafficEngine
	if sys.traffic {
		eng = NewTrafficEngine(d, TrafficOptions{
			Clients:  2000,
			Rate:     20_000,
			Duration: chaosHorizon,
			Records:  512,
			Seed:     sched.Seed,
		})
		d.Sim.Spawn("chaos-traffic", func(p *sim.Proc) {
			// Preload shares the chaos clients (ops multiplex by ReqID);
			// if faults beat it, the cell still runs its checked workload.
			if eng.Preload(p) != nil {
				return
			}
			eng.Run(p)
		})
	}

	hist := &checker.History{}
	failed := 0
	done := sim.NewQueue[int](d.Sim)
	for i := range d.Clients {
		ci := i
		cl := d.Clients[ci]
		d.Sim.Spawn(fmt.Sprintf("chaos-client-%d", ci), func(p *sim.Proc) {
			start := p.Now()
			for j := 0; p.Now()-start < chaosHorizon; j++ {
				key := chaosKeys[(ci+j)%len(chaosKeys)]
				inv := p.Now()
				if j%2 == 0 {
					res, err := cl.Put(p, key, fmt.Sprintf("c%d-%d", ci, j), chaosValSize)
					hist.Record(checker.Event{
						Client: ci, Kind: checker.OpPut, Key: key,
						Invoke: inv, Return: p.Now(), OK: err == nil, Ver: res.Version,
					})
					if err != nil {
						failed++
					}
				} else {
					res, err := cl.Get(p, key)
					hist.Record(checker.Event{
						Client: ci, Kind: checker.OpGet, Key: key,
						Invoke: inv, Return: p.Now(), OK: err == nil,
						Found: res.Found, Ver: res.Version,
					})
					if err != nil {
						failed++
					}
				}
				p.Sleep(chaosThink)
			}
			done.Push(ci)
		})
	}
	d.Sim.Spawn("chaos-driver", func(p *sim.Proc) {
		for range d.Clients {
			done.Pop(p)
		}
		p.Sleep(150 * time.Millisecond) // drain recoveries and trailing acks
		d.Sim.Stop()
	})
	if err := d.Sim.Run(); err != nil {
		return cell, err
	}
	cell.Ops = hist.Len()
	cell.Failed = failed
	cell.Hash = hist.Hash()
	cell.Violations = hist.Check()
	if eng != nil {
		cell.TrafficOps = eng.issued
	}
	if opts.DurableStore {
		// Durability audit: the newest committed version of every chaos
		// key anywhere in the cluster (main namespaces and handoff
		// directories) must cover every acked put — what snapshot + log
		// replay recovery promises.
		final := map[string]uint64{}
		observe := func(key string, ver uint64) {
			if ver > final[key] {
				final[key] = ver
			}
		}
		for _, n := range d.Nodes {
			st := n.Store()
			for _, key := range chaosKeys {
				if obj, ok := st.Peek(key); ok {
					observe(key, obj.Version.PrimarySeq)
				}
			}
			for _, obj := range st.HandoffObjects() {
				observe(obj.Key, obj.Version.PrimarySeq)
			}
			if es, ok := st.StorageStats(); ok {
				cell.Recoveries += es.Recoveries
				cell.Replayed += es.ReplayedRecords
			}
		}
		cell.Violations = append(cell.Violations, hist.CheckDurability(final)...)
	}
	if d.Harmonia != nil {
		hs := d.Harmonia.Stats()
		cell.HarmoniaRouted = hs.Routed
		cell.HarmoniaFallbacks = hs.DirtyFallbacks + hs.TaintFallbacks
		cell.HarmoniaFlushes = hs.Flushes
		for _, n := range d.Nodes {
			cell.HarmoniaReplicaGets += n.Stats().GetsServedAsReplica
		}
	}
	if opts.Standby {
		cell.Fenced = d.Service.Stats().FencedWrites + d.Core.Stats().FencedMods
		if d.Chain != nil {
			cell.Fenced += d.Chain.Stats().Fenced
		}
		if promoted := d.Standby.Promoted(); promoted != nil {
			cell.Takeovers = 1
			cell.Fenced += promoted.Stats().FencedWrites
		}
	}
	return cell, nil
}

// ReplayChaos re-executes a repro line printed by a chaos run
// ("system :: seed=N | fault ... ") and returns the replayed cell.
func ReplayChaos(repro string) (ChaosCell, error) {
	sysName, schedText, ok := strings.Cut(repro, "::")
	if !ok {
		return ChaosCell{}, fmt.Errorf("chaos: repro %q is not \"system :: schedule\"", repro)
	}
	sysName = strings.TrimSpace(sysName)
	sched, err := faultinject.ParseSchedule(strings.TrimSpace(schedText))
	if err != nil {
		return ChaosCell{}, err
	}
	for _, sys := range chaosSystems() {
		if sys.name == sysName {
			return runChaosCell(sys, sched)
		}
	}
	return ChaosCell{}, fmt.Errorf("chaos: unknown system %q", sysName)
}

// ChaosReport aggregates a chaos sweep.
type ChaosReport struct {
	Schedules int
	Systems   []string
	Cells     []ChaosCell
	// DeterminismOK reports the post-sweep recheck: schedule 0 of every
	// system replayed and its history hash compared.
	DeterminismOK bool
	Mismatches    []string
}

// Violating returns the cells whose histories broke an invariant.
func (r *ChaosReport) Violating() []*ChaosCell {
	var out []*ChaosCell
	for i := range r.Cells {
		if len(r.Cells[i].Violations) > 0 {
			out = append(out, &r.Cells[i])
		}
	}
	return out
}

// Fprint renders the sweep summary, one row per system, then any
// violations with their repro lines.
func (r *ChaosReport) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== chaos: %d fault schedules per system ==\n", r.Schedules)
	for si, name := range r.Systems {
		ops, failed, faults, bad := 0, 0, 0, 0
		traffic, recov, replayed := int64(0), int64(0), int64(0)
		takeovers, fenced := int64(0), int64(0)
		routed, replicaGets, fallbacks, flushes := int64(0), int64(0), int64(0), int64(0)
		for i := si * r.Schedules; i < (si+1)*r.Schedules; i++ {
			c := &r.Cells[i]
			ops += c.Ops
			failed += c.Failed
			faults += len(c.Schedule.Events)
			bad += len(c.Violations)
			traffic += c.TrafficOps
			recov += c.Recoveries
			replayed += c.Replayed
			takeovers += c.Takeovers
			fenced += c.Fenced
			routed += c.HarmoniaRouted
			replicaGets += c.HarmoniaReplicaGets
			fallbacks += c.HarmoniaFallbacks
			flushes += c.HarmoniaFlushes
		}
		fmt.Fprintf(w, "%-20s ops=%-6d failed=%-5d faults=%-4d violations=%d",
			name, ops, failed, faults, bad)
		if traffic > 0 {
			fmt.Fprintf(w, " traffic=%d", traffic)
		}
		if recov > 0 {
			fmt.Fprintf(w, " recoveries=%d replayed=%d", recov, replayed)
		}
		if takeovers > 0 {
			fmt.Fprintf(w, " takeovers=%d fenced=%d", takeovers, fenced)
		}
		if routed > 0 || fallbacks > 0 {
			fmt.Fprintf(w, " routed=%d replica-gets=%d fallbacks=%d flushes=%d",
				routed, replicaGets, fallbacks, flushes)
		}
		fmt.Fprintln(w)
	}
	if r.DeterminismOK {
		fmt.Fprintf(w, "determinism: replayed schedule 0 of each system, histories identical\n")
	} else {
		fmt.Fprintf(w, "determinism: FAILED\n")
		for _, m := range r.Mismatches {
			fmt.Fprintf(w, "  %s\n", m)
		}
	}
	for _, c := range r.Violating() {
		fmt.Fprintf(w, "VIOLATION repro: %s\n", c.Repro())
		for _, v := range c.Violations {
			fmt.Fprintf(w, "  %s\n", v)
		}
	}
}

// RunChaos sweeps `schedules` randomized fault schedules over every
// chaos system on the RunCells worker pool, then replays schedule 0 of
// each system to confirm determinism. ctrlBias scales the
// controller-fault weights of the systems that use them (the
// -chaos-ctrl knob; 0 or 1 leaves the default mix).
func RunChaos(pr Params, schedules int, ctrlBias float64) (*ChaosReport, error) {
	systems := chaosSystems()
	rep := &ChaosReport{Schedules: schedules}
	for _, s := range systems {
		rep.Systems = append(rep.Systems, s.name)
	}
	rep.Cells = make([]ChaosCell, len(systems)*schedules)
	err := RunCells(pr, len(rep.Cells), func(i int, seed int64) error {
		sys := systems[i/schedules]
		sched := faultinject.Generate(seed, chaosGenConfig(sys, ctrlBias))
		cell, err := runChaosCell(sys, sched)
		rep.Cells[i] = cell
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.DeterminismOK = true
	for si, sys := range systems {
		first := &rep.Cells[si*schedules]
		again, err := runChaosCell(sys, first.Schedule)
		if err != nil {
			return nil, err
		}
		if again.Hash != first.Hash || again.TrafficOps != first.TrafficOps ||
			again.Recoveries != first.Recoveries || again.Replayed != first.Replayed ||
			again.Takeovers != first.Takeovers || again.Fenced != first.Fenced ||
			again.HarmoniaRouted != first.HarmoniaRouted ||
			again.HarmoniaReplicaGets != first.HarmoniaReplicaGets ||
			again.HarmoniaFallbacks != first.HarmoniaFallbacks ||
			again.HarmoniaFlushes != first.HarmoniaFlushes {
			rep.DeterminismOK = false
			rep.Mismatches = append(rep.Mismatches,
				fmt.Sprintf("%s: hash %x vs replay %x, traffic %d vs %d, recoveries %d vs %d, replayed %d vs %d, takeovers %d vs %d, fenced %d vs %d, routed %d vs %d, replica-gets %d vs %d, fallbacks %d vs %d, flushes %d vs %d (%s)",
					sys.name, first.Hash, again.Hash, first.TrafficOps, again.TrafficOps,
					first.Recoveries, again.Recoveries, first.Replayed, again.Replayed,
					first.Takeovers, again.Takeovers, first.Fenced, again.Fenced,
					first.HarmoniaRouted, again.HarmoniaRouted,
					first.HarmoniaReplicaGets, again.HarmoniaReplicaGets,
					first.HarmoniaFallbacks, again.HarmoniaFallbacks,
					first.HarmoniaFlushes, again.HarmoniaFlushes, first.Repro()))
		}
	}
	return rep, nil
}
