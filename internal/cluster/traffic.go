package cluster

import (
	"fmt"
	"math/bits"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/openflow"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

// This file is the open-loop traffic engine: one sim proc drives up to a
// million virtual clients against a leaf-spine NICE deployment. Real
// per-client hosts at that scale are hopeless (a goroutine, a stack and
// sockets each), so the engine is a flyweight: per-client state lives in
// flat slices, arrivals come from a workload.OpenLoop calendar in batched
// ticks, request structs are pooled in a chunked slab addressed by the
// request ID, and each leaf's single gateway host emits requests with
// per-division synthesized source IPs (netsim.Host.SendFrom) so the
// switch load-balancing rules classify one flow per virtual client.
// Replies — node streams and in-switch cache hits alike — come back to
// the gateway's real address and demultiplex by request ID. Steady-state
// issue and timeout-reap allocate nothing.

// TrafficPort is the gateways' reply port (UDP and stream listener, like
// core.Client's ReplyPort).
const TrafficPort uint16 = 8200

// trafficChunk is the slot-slab chunk size. Chunks are never reallocated,
// so &slot.req stays valid while packets reference it.
const trafficChunk = 1 << 12

// prioTrafficReply sits below the controller's exact host-forwarding
// rules (prioPhys=10): a real client's /32 route always wins over the
// gateway's client-space prefix route.
const prioTrafficReply = 5

// Gateway is one leaf's traffic gateway host: the physical source and
// sink for that leaf's share of the virtual client fleet.
type Gateway struct {
	Stack *transport.Stack
	Leaf  *openflow.Datapath
	Port  int // the gateway's port on its leaf switch
}

// TrafficOptions parameterizes one open-loop run.
type TrafficOptions struct {
	Clients   int     // virtual client fleet size
	Rate      float64 // aggregate offered load, requests/second
	Duration  sim.Time
	Records   int // preloaded keyspace size (zipfian-chosen)
	ValueSize int
	Tick      sim.Time // arrival batch width (default 100µs)
	OpTimeout sim.Time // per-request drop deadline (default 250ms)
	Seed      int64
	// BatchSize, when > 1, packs a tick's co-arriving gets for the same
	// destination node into BatchGetRequests of up to this many ops
	// (DESIGN.md §16). Destinations fill in deterministic first-seen
	// order; partial batches flush at the end of the tick. Nodes reply
	// per op, so the reply path, timeout reaping and slot recycling are
	// oblivious to batching. 1 (or 0) = one datagram per get,
	// bit-identical to prior releases.
	BatchSize int
}

func (o *TrafficOptions) defaults() {
	if o.Tick <= 0 {
		// Scale the batch width with the per-client mean gap so the
		// calendar ring (sized to the gap truncation cap) stays a few
		// tens of thousands of buckets at any fleet size.
		mean := float64(o.Clients) / o.Rate * 1e9
		o.Tick = sim.Time(mean / 4096)
		if o.Tick < 100*time.Microsecond {
			o.Tick = 100 * time.Microsecond
		}
		if o.Tick > 5*time.Millisecond {
			o.Tick = 5 * time.Millisecond
		}
	}
	if o.OpTimeout <= 0 {
		o.OpTimeout = 250 * time.Millisecond
	}
	if o.Records <= 0 {
		o.Records = 4096
	}
	if o.ValueSize <= 0 {
		o.ValueSize = 512
	}
	// One batched datagram must fit the transport MTU.
	if o.BatchSize > core.MaxBatchedGets {
		o.BatchSize = core.MaxBatchedGets
	}
}

// TrafficResult is one run's outcome.
type TrafficResult struct {
	Issued    int64
	Completed int64
	TimedOut  int64
	NotFound  int64
	// Achieved is the completed-request throughput over the issue window,
	// requests/second.
	Achieved float64
	P50, P99 sim.Time
	// CacheHits/CacheMisses are the in-switch cache counters (zero
	// without a cache).
	CacheHits, CacheMisses int64
}

// trafficSlot is one in-flight request's pooled state. The embedded
// GetRequest is what goes on the wire (&slot.req), so a slot is only
// recycled through the generation check that also fences late replies.
type trafficSlot struct {
	req      core.GetRequest
	issuedAt sim.Time
	gen      uint32
	live     bool
}

// TrafficEngine drives one open-loop run. Build with NewTrafficEngine
// after the deployment (which must have gateways: NewNICELeafSpine with
// Options.TrafficGateways), preload records, then call Run from a driver
// proc.
type TrafficEngine struct {
	d    *NICE
	opts TrafficOptions

	arr     *workload.OpenLoop
	keys    []string    // pre-rendered key strings (Workload.Key allocates)
	addr    []netsim.IP // per-key unicast vring address
	chooser *workload.Zipfian
	rng     *rand.Rand

	src  []netsim.IP // per-client synthesized source IP
	gwOf []uint8     // per-client gateway index

	socks []*transport.UDPSocket // per-gateway request/reply socket
	gwIP  []netsim.IP

	slabs [][]trafficSlot
	free  []int32
	// out is the in-flight FIFO ring of (slot<<32 | gen) entries in issue
	// order; with a constant OpTimeout that is also deadline order.
	out     []int64
	outHead int
	outLen  int

	// pend accumulates the current tick's batched gets per destination
	// node (BatchSize > 1); touched lists the destinations with a
	// non-empty pending batch in first-seen order, keeping the flush
	// deterministic.
	pend    map[netsim.IP]*gwBatch
	touched []*gwBatch

	issued, completed, timedOut, notFound int64
	lat                                   *metrics.Histogram
}

// gwBatch is one destination node's pending batched gets. The gateway
// and source of the first op in the batch frame the datagram; nothing
// routes on the virtual source, so sharing it across the batch's ops is
// as harmless as the per-division synthesis itself.
type gwBatch struct {
	addr netsim.IP
	gi   uint8
	src  netsim.IP
	reqs []*core.GetRequest
}

// NewTrafficEngine wires the engine to a deployment: binds each gateway's
// reply listeners, installs the client-space return route on each leaf
// (in-switch cache hits are addressed to the virtual source IP and bounce
// back toward the requesting leaf; this routes them to its gateway), and
// precomputes the flyweight per-client state.
func NewTrafficEngine(d *NICE, opts TrafficOptions) *TrafficEngine {
	opts.defaults()
	if len(d.Gateways) == 0 {
		panic("cluster: traffic engine needs gateways (Options.TrafficGateways)")
	}
	e := &TrafficEngine{
		d:       d,
		opts:    opts,
		keys:    make([]string, opts.Records),
		addr:    make([]netsim.IP, opts.Records),
		chooser: workload.NewZipfian(opts.Records),
		rng:     rand.New(rand.NewSource(DeriveSeed(opts.Seed, 7001))),
		src:     make([]netsim.IP, opts.Clients),
		gwOf:    make([]uint8, opts.Clients),
		gwIP:    make([]netsim.IP, len(d.Gateways)),
		lat:     &metrics.Histogram{},
	}
	mean := int64(float64(opts.Clients) / opts.Rate * 1e9)
	e.arr = workload.NewOpenLoop(opts.Clients, mean, int64(opts.Tick), DeriveSeed(opts.Seed, 7002))

	for i := range e.keys {
		e.keys[i] = fmt.Sprintf("user%d", i)
		e.addr[i] = d.Unicast.AddrOfKey(e.keys[i])
	}
	synthSrcIPs(e.src, d.Opts.R)
	for c := range e.gwOf {
		e.gwOf[c] = uint8(c % len(d.Gateways))
	}

	s := d.Sim
	space := netsim.MustParsePrefix("192.168.0.0/16")
	for gi, g := range d.Gateways {
		e.gwIP[gi] = g.Stack.IP()
		// Cache-hit replies are addressed to the virtual source IP (the
		// switch mirrors the request's addressing); the gateway terminates
		// the whole client space so its NIC delivers them.
		g.Stack.Host().AcceptPrefix(space)
		g.Leaf.AddFlow(openflow.FlowEntry{
			Priority: prioTrafficReply,
			Match:    openflow.MatchDst(space),
			Actions:  []openflow.Action{openflow.Output{Port: g.Port}},
			Cookie:   "traffic/reply",
		})
		udp := g.Stack.MustBindUDP(TrafficPort)
		e.socks = append(e.socks, udp)
		s.Spawn("traffic-gw-udp", func(p *sim.Proc) {
			for {
				dg, ok := udp.Recv(p)
				if !ok {
					return
				}
				e.handleReply(dg.Data, p.Now())
			}
		})
		ln := g.Stack.MustListen(TrafficPort)
		s.Spawn("traffic-gw-accept", func(p *sim.Proc) {
			for {
				conn, ok := ln.Accept(p)
				if !ok {
					return
				}
				s.Spawn("traffic-gw-reader", func(p *sim.Proc) {
					for {
						m, ok := conn.Recv(p)
						if !ok {
							return
						}
						e.handleReply(m.Data, p.Now())
					}
				})
			}
		})
	}
	return e
}

// synthSrcIPs fills src with per-division virtual client addresses inside
// 192.168.0.0/16: client i lands in load-balancing division i mod r, at a
// bit-reversed offset so sequential clients spread uniformly over each
// division's range. The space holds 2^16 addresses, so above ~65k clients
// offsets repeat — harmless, since nothing routes on the virtual source
// (replies return by the request's embedded gateway address and MAC) and
// the LB rules classify on the division prefix.
func synthSrcIPs(src []netsim.IP, r int) {
	if r < 1 {
		r = 1
	}
	divBits := 0
	for 1<<divBits < r {
		divBits++
	}
	width := uint32(1) << (16 - divBits)
	base := netsim.MustParseIP("192.168.0.0")
	for i := range src {
		div := uint32(i % r)
		off := bits.Reverse32(uint32(i/r)) >> (16 + divBits)
		src[i] = base.Add(div*width + off%width)
	}
}

// Preload writes the keyspace through the deployment's real clients
// (round-robin, in parallel) so every get has something to hit.
func (e *TrafficEngine) Preload(p *sim.Proc) error {
	nc := len(e.d.Clients)
	if nc == 0 {
		return fmt.Errorf("traffic: preload needs at least one real client")
	}
	g := sim.NewGroup(e.d.Sim)
	errs := make([]error, nc)
	for c := 0; c < nc; c++ {
		c := c
		g.Add(1)
		e.d.Sim.Spawn(fmt.Sprintf("traffic-load%d", c), func(p *sim.Proc) {
			defer g.Done()
			for i := c; i < len(e.keys); i += nc {
				if _, err := e.d.Clients[c].Put(p, e.keys[i], "v", e.opts.ValueSize); err != nil {
					errs[c] = err
					return
				}
			}
		})
	}
	g.Wait(p)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run issues the open-loop schedule for opts.Duration, then drains one
// timeout window and reports. Call from a driver proc after Preload.
func (e *TrafficEngine) Run(p *sim.Proc) TrafficResult {
	start := p.Now()
	deadline := start + e.opts.Duration
	for p.Now() < deadline {
		now := p.Now()
		e.arr.Tick(func(c int32) { e.issue(now, c) })
		e.flushBatches()
		e.reap(now)
		p.Sleep(e.opts.Tick)
	}
	p.Sleep(e.opts.OpTimeout + 2*e.opts.Tick)
	e.reap(p.Now())

	res := TrafficResult{
		Issued:    e.issued,
		Completed: e.completed,
		TimedOut:  e.timedOut,
		NotFound:  e.notFound,
	}
	if e.opts.Duration > 0 {
		res.Achieved = float64(e.completed) / e.opts.Duration.Seconds()
	}
	if e.lat.N() > 0 {
		res.P50 = sim.Time(e.lat.Percentile(50) * 1e9)
		res.P99 = sim.Time(e.lat.Percentile(99) * 1e9)
	}
	if e.d.Cache != nil {
		st := e.d.Cache.Stats()
		res.CacheHits, res.CacheMisses = st.Hits, st.Misses
	}
	return res
}

// issue sends one virtual client's get. Zero allocations: the request
// struct is pooled in the slab, the key string pre-rendered, the packet
// from the network's pool.
func (e *TrafficEngine) issue(now sim.Time, c int32) {
	si := e.alloc()
	sl := e.slot(si)
	k := e.chooser.Next(e.rng)
	gi := e.gwOf[c]
	sl.issuedAt = now
	sl.live = true
	sl.req.Key = e.keys[k]
	sl.req.ReqID = uint64(si+1)<<32 | uint64(sl.gen)
	sl.req.Client = e.gwIP[gi]
	sl.req.ClientPort = TrafficPort
	if e.opts.BatchSize > 1 {
		e.enqueueBatched(c, gi, e.addr[k], &sl.req)
	} else {
		e.socks[gi].SendToFrom(e.src[c], e.addr[k], DataPort, &sl.req, core.GetReqSize)
	}
	e.outPush(int64(si)<<32 | int64(sl.gen))
	e.issued++
}

// enqueueBatched adds a get to its destination's pending batch, flushing
// when the batch fills. Full batches leave within the tick; stragglers
// wait for flushBatches at the tick boundary, so a batched get is
// delayed at most one Tick relative to the unbatched arm.
func (e *TrafficEngine) enqueueBatched(c int32, gi uint8, addr netsim.IP, req *core.GetRequest) {
	if e.pend == nil {
		e.pend = make(map[netsim.IP]*gwBatch)
	}
	b := e.pend[addr]
	if b == nil {
		b = &gwBatch{addr: addr}
		e.pend[addr] = b
	}
	if len(b.reqs) == 0 {
		b.gi = gi
		b.src = e.src[c]
		e.touched = append(e.touched, b)
	}
	b.reqs = append(b.reqs, req)
	if len(b.reqs) >= e.opts.BatchSize {
		e.sendBatch(b)
	}
}

// flushBatches sends every partial batch the tick left behind.
func (e *TrafficEngine) flushBatches() {
	for _, b := range e.touched {
		if len(b.reqs) > 0 {
			e.sendBatch(b)
		}
	}
	e.touched = e.touched[:0]
}

// sendBatch emits one BatchGetRequest. The message must own its request
// slice — b.reqs is recycled for the destination's next batch while the
// datagram is still in flight.
func (e *TrafficEngine) sendBatch(b *gwBatch) {
	reqs := make([]*core.GetRequest, len(b.reqs))
	copy(reqs, b.reqs)
	e.socks[b.gi].SendToFrom(b.src, b.addr, DataPort,
		&core.BatchGetRequest{Reqs: reqs}, core.BatchHeaderSize+len(reqs)*core.GetReqSize)
	b.reqs = b.reqs[:0]
}

// handleReply completes the slot a reply names, unless it already timed
// out (the generation fences late replies against a recycled slot).
func (e *TrafficEngine) handleReply(data any, now sim.Time) {
	rep, ok := data.(*core.GetReply)
	if !ok {
		return
	}
	si := int64(rep.ReqID>>32) - 1
	if si < 0 || si >= int64(len(e.slabs))*trafficChunk {
		return
	}
	sl := e.slot(int32(si))
	if !sl.live || sl.gen != uint32(rep.ReqID) {
		return
	}
	sl.live = false
	sl.gen++
	e.free = append(e.free, int32(si))
	e.completed++
	if !rep.Found {
		e.notFound++
	}
	e.lat.Add(now - sl.issuedAt)
}

// reap expires in-flight requests whose deadline passed. Entries are in
// issue order; the scan stops at the first live, unexpired one.
func (e *TrafficEngine) reap(now sim.Time) {
	for e.outLen > 0 {
		ent := e.out[e.outHead]
		si, gen := int32(ent>>32), uint32(ent)
		sl := e.slot(si)
		if sl.live && sl.gen == gen {
			if sl.issuedAt+e.opts.OpTimeout > now {
				return
			}
			sl.live = false
			sl.gen++
			e.free = append(e.free, si)
			e.timedOut++
		}
		e.outHead = (e.outHead + 1) & (len(e.out) - 1)
		e.outLen--
	}
}

func (e *TrafficEngine) slot(si int32) *trafficSlot {
	return &e.slabs[si>>12][si&(trafficChunk-1)]
}

// alloc pops a free slot, growing the slab by one chunk when dry. Chunks
// are stable in memory: in-flight packets hold &slot.req pointers.
func (e *TrafficEngine) alloc() int32 {
	if n := len(e.free); n > 0 {
		si := e.free[n-1]
		e.free = e.free[:n-1]
		return si
	}
	base := int32(len(e.slabs)) * trafficChunk
	e.slabs = append(e.slabs, make([]trafficSlot, trafficChunk))
	for i := int32(trafficChunk - 1); i >= 1; i-- {
		e.free = append(e.free, base+i)
	}
	return base
}

// outPush appends to the in-flight ring, doubling it when full (warmup
// only; steady state the ring is sized).
func (e *TrafficEngine) outPush(ent int64) {
	if len(e.out) == 0 {
		e.out = make([]int64, 1024)
	}
	if e.outLen == len(e.out) {
		grown := make([]int64, 2*len(e.out))
		for i := 0; i < e.outLen; i++ {
			grown[i] = e.out[(e.outHead+i)&(len(e.out)-1)]
		}
		e.out = grown
		e.outHead = 0
	}
	e.out[(e.outHead+e.outLen)&(len(e.out)-1)] = ent
	e.outLen++
}
