package cluster

import (
	"repro/internal/netsim"
	"repro/internal/noob"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/transport"
)

// NOOBOptions extends the base deployment options with the baseline's
// configuration matrix (§6: ROG/RAG/RAC × primary-only/2PC, quorum,
// chain).
type NOOBOptions struct {
	Options
	Access      noob.AccessMode
	Gateway     noob.GatewayMode
	Consistency noob.Consistency
	Replication noob.Replication
	Gets        noob.GetPolicy
	QuorumK     int
}

// DefaultNOOBOptions mirrors the paper's baseline defaults: RAC access,
// primary-only consistency.
func DefaultNOOBOptions() NOOBOptions {
	return NOOBOptions{
		Options:     DefaultOptions(),
		Access:      noob.RAC,
		Consistency: noob.PrimaryOnly,
	}
}

// NOOB is a complete baseline deployment. The switch is a plain L3
// forwarder: the network is oblivious to the storage system.
type NOOB struct {
	Opts      NOOBOptions
	Sim       *sim.Simulator
	Net       *netsim.Network
	Switch    *netsim.Switch
	Nodes     []*noob.Node
	Stacks    []*transport.Stack
	Gateway   *noob.Gateway
	GWStack   *transport.Stack
	Clients   []*noob.Client
	CStacks   []*transport.Stack
	Member    *noob.Membership
	Space     ring.Space
	Addrs     []noob.Addr
	Placement ring.Placement
}

// placement returns the replica layout.
func (d *NOOB) placement() ring.Placement { return d.Placement }

// NewNOOB builds and boots a NOOB deployment.
func NewNOOB(opts NOOBOptions) *NOOB {
	if probeCPU > 0 {
		opts.CPUPerOp = probeCPU
	}
	s := sim.New(opts.Seed)
	nw := netsim.NewNetwork(s)
	d := &NOOB{Opts: opts, Sim: s, Net: nw, Space: ring.NewSpace(opts.Nodes)}

	nPorts := opts.Nodes + opts.Clients + 2
	sw := nw.NewSwitch("l3", nPorts, opts.SwitchLatency)
	d.Switch = sw

	// Static L3 forwarding: dumb and fast, per the end-to-end principle.
	ports := make(map[netsim.IP]int)
	macs := make(map[netsim.IP]netsim.MAC)
	sw.SetPipeline(netsim.PipelineFunc(func(sw *netsim.Switch, pkt *netsim.Packet, inPort int) {
		if port, ok := ports[pkt.DstIP]; ok {
			out := pkt.Clone()
			out.DstMAC = macs[pkt.DstIP]
			sw.Output(port, out)
			return
		}
		sw.Drop(pkt)
	}))
	attach := func(h *netsim.Host, port int) {
		nw.Connect(h.Port(), sw.Port(port), opts.Link)
		ports[h.IP()] = port
		macs[h.IP()] = h.MAC()
	}

	placement := ring.NewPlacement(opts.Nodes, opts.R)
	d.Placement = placement

	// Storage nodes on ports [0, Nodes).
	for i := 0; i < opts.Nodes; i++ {
		h := nw.NewHost("node"+itoa(i), netsim.IPv4(10, 0, byte(i>>8), byte(i&0xff)).Add(1))
		attach(h, i)
		st := transport.NewStack(h)
		d.Stacks = append(d.Stacks, st)
		d.Addrs = append(d.Addrs, noob.Addr{Index: i, IP: h.IP(), Port: DataPort})
	}
	for i := 0; i < opts.Nodes; i++ {
		cfg := noob.NodeConfig{
			Self:        d.Addrs[i],
			Nodes:       d.Addrs,
			Placement:   placement,
			Space:       d.Space,
			Consistency: opts.Consistency,
			Replication: opts.Replication,
			QuorumK:     opts.QuorumK,
			Disk:        opts.Disk,
			CPUPerOp:    opts.CPUPerOp,
		}
		n := noob.NewNode(d.Stacks[i], cfg)
		n.Start()
		d.Nodes = append(d.Nodes, n)
	}

	// Gateway host on port Nodes (deployed even for RAC runs; unused
	// there, as in the paper's testbed where gateway machines idle).
	gwHost := nw.NewHost("gateway", netsim.MustParseIP("10.254.0.2"))
	attach(gwHost, opts.Nodes)
	d.GWStack = transport.NewStack(gwHost)
	gwAddr := noob.Addr{Index: -1, IP: gwHost.IP(), Port: DataPort}
	d.Gateway = noob.NewGateway(d.GWStack, noob.GatewayConfig{
		Self:      gwAddr,
		Nodes:     d.Addrs,
		Placement: placement,
		Space:     d.Space,
		Mode:      opts.Gateway,
		Gets:      opts.Gets,
		CPUPerOp:  opts.CPUPerOp / 4, // forwarding is cheaper than serving
	})
	d.Gateway.Start()

	// Membership service shares the gateway host.
	d.Member = noob.NewMembership(d.GWStack, d.Addrs)

	// Clients on ports [Nodes+1, ...).
	for i := 0; i < opts.Clients; i++ {
		h := nw.NewHost("client"+itoa(i), clientIP(i, opts.R))
		attach(h, opts.Nodes+1+i)
		st := transport.NewStack(h)
		d.CStacks = append(d.CStacks, st)
		ccfg := noob.ClientConfig{
			Mode:      opts.Access,
			Gateway:   gwAddr,
			Nodes:     d.Addrs,
			Placement: placement,
			Space:     d.Space,
			Gets:      opts.Gets,
		}
		d.Clients = append(d.Clients, noob.NewClient(st, ccfg))
	}
	return d
}

// Close reaps all simulation processes.
func (d *NOOB) Close() { d.Sim.Shutdown() }
