package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Regression tests for the client/put-path hardening that rode along
// with the fault-injection framework: retried-put dedup, partial-commit
// retry, recovery and handoff under packet loss, and the typed
// exhausted-retries error.

// TestDuplicatePutIsDeduplicated replays the exact wire-level scenario a
// client retry produces — the same PutRequest (same ClientSeq)
// multicast twice — and checks the replica set commits exactly once:
// the primary coordinates a single put, answers the duplicate from its
// dedup record, and every replica converges on one version.
func TestDuplicatePutIsDeduplicated(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.Clients = 1
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	const key = "dup-put-key"
	part := d.Space.PartitionOf(key)
	// Same multicast vring NewNICE wires into the controller and clients.
	mring := ring.MustVRing(netsim.MustParsePrefix("10.11.0.0/16"), opts.Nodes, 8)
	req := &core.PutRequest{
		Key:        key,
		Value:      "once",
		Size:       1024,
		Client:     d.CStacks[0].IP(),
		ClientPort: 8000,
		ClientSeq:  999999, // clear of the real client's sequence space
	}
	send := func(p *sim.Proc) {
		_, err := d.CStacks[0].SendMulticast(p, transport.McastOpts{
			To:        mring.AddrOfKey(key),
			ToPort:    DataPort,
			Data:      req,
			Size:      1024,
			Receivers: opts.R,
			Timeout:   time.Second,
		})
		if err != nil {
			t.Errorf("multicast: %v", err)
		}
	}
	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		send(p)
		p.Sleep(50 * time.Millisecond) // let the first attempt commit
		send(p)                        // the "retry"
		p.Sleep(100 * time.Millisecond)
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}

	v := d.Service.View(part)
	primary := v.Primary().Index
	if got := d.Nodes[primary].Stats().PutsPrimary; got != 1 {
		t.Errorf("primary coordinated %d puts, want 1", got)
	}
	if got := d.Nodes[primary].Stats().DupPuts; got < 1 {
		t.Errorf("primary answered %d duplicate puts, want >= 1", got)
	}
	var ver uint64
	for _, r := range v.Replicas {
		obj, ok := d.Nodes[r.Index].Store().Peek(key)
		if !ok {
			t.Errorf("node %d missing %s after duplicate put", r.Index, key)
			continue
		}
		if ver == 0 {
			ver = obj.Version.PrimarySeq
		} else if obj.Version.PrimarySeq != ver {
			t.Errorf("node %d holds version %d, others %d", r.Index, obj.Version.PrimarySeq, ver)
		}
	}
	d.Close()
}

// TestPutRetriesThroughSecondaryCrash sweeps the crash of a secondary
// across offsets inside the put window (§4.4 "failures during put"): the
// client's retry of the same logical put must converge the repaired
// replica set on exactly one committed version, never two.
func TestPutRetriesThroughSecondaryCrash(t *testing.T) {
	offsets := []sim.Time{
		100 * time.Microsecond, // before phase-one acks
		500 * time.Microsecond, // around the timestamp multicast
		2 * time.Millisecond,   // commit phase
		10 * time.Millisecond,  // after commit (crash hits a done put)
	}
	for oi, off := range offsets {
		opts := chaosOptions(int64(1000 + oi))
		d := NewNICE(opts)
		if err := d.Settle(); err != nil {
			t.Fatal(err)
		}
		const part = 0
		key := d.keysInPartition(part, 1)[0]
		victim := d.Service.View(part).Replicas[1].Index

		var res core.OpResult
		var putErr error
		d.Sim.Spawn("crasher", func(p *sim.Proc) {
			p.Sleep(off)
			d.Nodes[victim].Crash()
		})
		d.Sim.Spawn("driver", func(p *sim.Proc) {
			defer d.Sim.Stop()
			res, putErr = d.Clients[0].Put(p, key, "survivor", 4096)
			p.Sleep(300 * time.Millisecond) // detection, handoff, convergence
		})
		if err := d.Sim.Run(); err != nil {
			t.Fatal(err)
		}
		if putErr != nil {
			t.Errorf("offset %v: put failed: %v", off, putErr)
			d.Close()
			continue
		}
		// Every current put participant holds exactly the acked version.
		v := d.Service.View(part)
		for _, r := range v.PutParticipants() {
			if r.Index == victim {
				continue // may still be rejoining
			}
			if v.Handoff != nil && r.Index == v.Handoff.Index && res.Retries == 0 {
				// A put that committed before the crash was detected is
				// legitimately absent from the stand-in: the handoff
				// directory covers only post-failure writes (§4.4).
				continue
			}
			obj, ok := d.Nodes[r.Index].Store().Peek(key)
			if !ok {
				// The handoff keeps post-failure writes in its directory.
				for _, hobj := range d.Nodes[r.Index].Store().HandoffObjects() {
					if hobj.Key == key {
						obj, ok = hobj, true
						break
					}
				}
			}
			if !ok || obj.Version.PrimarySeq != res.Version {
				got := uint64(0)
				if ok {
					got = obj.Version.PrimarySeq
				}
				t.Errorf("offset %v: node %d holds version %d, acked %d (retries=%d)",
					off, r.Index, got, res.Version, res.Retries)
			}
		}
		d.Close()
	}
}

// TestRecoveryUnderPacketLoss runs the §4.4 failure/handoff/rejoin cycle
// with lossy access links — the first real user of the fabric's
// LossRate — and requires full convergence anyway: the controller's
// view resync and the recovery protocol's fetch retries must absorb the
// drops.
func TestRecoveryUnderPacketLoss(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.Heartbeat = ms(100)
	opts.OpTimeout = ms(400)
	opts.RetryWait = ms(100)
	opts.RetryMaxWait = ms(400)
	opts.MaxRetries = 8
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	const part = 0
	view := d.Service.View(part)
	victim := view.Replicas[1].Index
	peer := view.Replicas[2].Index
	keys := d.keysInPartition(part, 15)
	before := d.Net.Drops()

	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		c := d.Clients[0]
		for _, k := range keys[:8] {
			if _, err := c.Put(p, k, "pre", 1024); err != nil {
				t.Errorf("seed put %s: %v", k, err)
				return
			}
		}
		// Drop a fifth of everything the victim and one surviving peer
		// send or receive, through failure, handoff and rejoin.
		d.NodeLinks[victim].SetLossRate(0.2)
		d.NodeLinks[peer].SetLossRate(0.2)
		d.Nodes[victim].Crash()
		p.Sleep(1500 * time.Millisecond) // detection + handoff under loss
		for _, k := range keys[8:] {
			if _, err := c.Put(p, k, "during", 1024); err != nil {
				t.Errorf("put during outage %s: %v", k, err)
			}
		}
		d.Nodes[victim].Restart()
		p.Sleep(3 * time.Second) // recovery fetches retried through the loss
		d.NodeLinks[victim].SetLossRate(0)
		d.NodeLinks[peer].SetLossRate(0)
		// Clean tail: long enough for a node falsely failed during the
		// lossy window to be ordered back through a whole rejoin cycle.
		p.Sleep(5 * time.Second)
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}

	if got := d.Net.Drops(); got <= before {
		t.Errorf("loss rate never dropped a packet (drops %d -> %d)", before, got)
	}
	v := d.Service.View(part)
	if !v.HasReplica(victim) || v.Handoff != nil || v.Recovering != nil {
		t.Fatalf("view not healthy after lossy recovery: %+v", v)
	}
	missing := 0
	for _, k := range keys {
		if _, ok := d.Nodes[victim].Store().Peek(k); !ok {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("victim missing %d/%d objects after recovery under loss", missing, len(keys))
	}
	d.Close()
}

// TestDeadPartitionFailsTyped kills every replica of one partition and
// checks the client surfaces a typed *core.OpError (wrapping
// core.ErrOpFailed) after its bounded retry loop instead of blocking
// forever — the satellite fix for the once-unbounded get retry.
func TestDeadPartitionFailsTyped(t *testing.T) {
	opts := chaosOptions(7)
	opts.MaxRetries = 3
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	const part = 0
	key := d.keysInPartition(part, 1)[0]

	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		c := d.Clients[0]
		if _, err := c.Put(p, key, "doomed", 512); err != nil {
			t.Errorf("seed put: %v", err)
			return
		}
		for _, r := range d.Service.View(part).Replicas {
			d.Nodes[r.Index].Crash()
		}
		_, err := c.Get(p, key)
		var opErr *core.OpError
		if !errors.As(err, &opErr) || !errors.Is(err, core.ErrOpFailed) {
			t.Errorf("get against dead partition: got %v, want *core.OpError wrapping ErrOpFailed", err)
			return
		}
		if opErr.Op != "get" || opErr.Attempts != opts.MaxRetries+1 {
			t.Errorf("OpError = %+v, want op=get attempts=%d", opErr, opts.MaxRetries+1)
		}
		if opErr.Error() == "" || fmt.Sprint(opErr) == "" {
			t.Error("empty error text")
		}
		_, err = c.Put(p, key, "also-doomed", 512)
		if !errors.As(err, &opErr) || opErr.Op != "put" {
			t.Errorf("put against dead partition: got %v, want typed put OpError", err)
		}
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	d.Close()
}
