package cluster

import (
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/openflow"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/transport"
)

// NewNICELeafSpine builds a NICE deployment on a two-tier fabric:
// opts.Leaves ToR switches under one spine, with storage nodes, the
// metadata host and clients distributed round-robin across the leaves.
// It exercises the §6 claim that NICE extends to multi-switch platforms:
// the controller installs rewrite rules at every leaf and loop-free
// multicast trees across the fabric.
func NewNICELeafSpine(opts Options, leaves int) *NICE {
	if leaves < 2 {
		leaves = 2
	}
	s := sim.New(opts.Seed)
	nw := netsim.NewNetwork(s)
	d := &NICE{Opts: opts, Sim: s, Net: nw, Space: ring.NewSpace(opts.Nodes)}

	// Hosts per leaf: nodes + meta + clients, rounded up.
	perLeaf := (opts.Nodes+opts.Clients+1+leaves-1)/leaves + 1

	spineSw := nw.NewSwitch("spine", leaves, opts.SwitchLatency)
	spine := openflow.Attach(spineSw, opts.CtrlDelay)
	d.Core = spine
	topo := controller.NewLeafSpine(spine)

	type leafInfo struct {
		dp   *openflow.Datapath
		next int // next free host port (port 0 = uplink)
	}
	leafDPs := make([]*leafInfo, leaves)
	for i := 0; i < leaves; i++ {
		sw := nw.NewSwitch("leaf"+itoa(i), perLeaf+1, opts.SwitchLatency)
		dp := openflow.Attach(sw, opts.CtrlDelay)
		nw.Connect(sw.Port(0), spineSw.Port(i), opts.Link)
		topo.AddLeaf(dp, 0, i)
		leafDPs[i] = &leafInfo{dp: dp, next: 1}
	}
	hostCount := 0
	place := func(h *netsim.Host) {
		li := leafDPs[hostCount%leaves]
		hostCount++
		nw.Connect(h.Port(), li.dp.Switch().Port(li.next), opts.Link)
		topo.AttachHost(li.dp, h.IP(), li.next)
		li.next++
	}

	var addrs []controller.NodeAddr
	for i := 0; i < opts.Nodes; i++ {
		h := nw.NewHost("node"+itoa(i), netsim.IPv4(10, 0, byte(i>>8), byte(i&0xff)).Add(1))
		place(h)
		st := transport.NewStack(h)
		d.Stacks = append(d.Stacks, st)
		addrs = append(addrs, controller.NodeAddr{
			Index: i, IP: h.IP(), MAC: h.MAC(), DataPort: DataPort, CtrlPort: CtrlPort,
		})
	}
	metaHost := nw.NewHost("meta", netsim.MustParseIP("10.254.0.1"))
	place(metaHost)
	metaStack := transport.NewStack(metaHost)
	d.MetaHost = metaHost
	for i := 0; i < opts.Clients; i++ {
		ip := clientIP(i, opts.R)
		if i < len(opts.ClientIPs) {
			ip = opts.ClientIPs[i]
		}
		h := nw.NewHost("client"+itoa(i), ip)
		place(h)
		d.CStacks = append(d.CStacks, transport.NewStack(h))
	}

	cfg := controller.DefaultConfig()
	cfg.Placement = ring.NewPlacement(opts.Nodes, opts.R)
	cfg.Unicast = ring.MustVRing(netsim.MustParsePrefix("10.10.0.0/16"), opts.Nodes, 8)
	cfg.Multicast = ring.MustVRing(netsim.MustParsePrefix("10.11.0.0/16"), opts.Nodes, 8)
	cfg.GroupBase = netsim.MustParseIP("239.0.0.0")
	cfg.HeartbeatEvery = opts.Heartbeat
	cfg.LoadBalance = opts.LoadBalance
	cfg.DynamicLB = opts.DynamicLB
	cfg.ClientSpace = netsim.MustParsePrefix("192.168.0.0/16")
	cfg.CtrlPort = MetaPort
	d.Service = controller.New(metaStack, topo, cfg, addrs)
	d.Service.Start()
	for _, cst := range d.CStacks {
		d.Service.RegisterHost(cst.IP(), cst.Host().MAC())
	}

	for i := 0; i < opts.Nodes; i++ {
		ncfg := core.DefaultNodeConfig()
		ncfg.Addr = addrs[i]
		ncfg.Meta = metaStack.IP()
		ncfg.MetaPort = MetaPort
		ncfg.Space = d.Space
		ncfg.HeartbeatEvery = opts.Heartbeat
		ncfg.Disk = opts.Disk
		ncfg.QuorumK = opts.QuorumK
		ncfg.CPUPerOp = opts.CPUPerOp
		node := core.NewNode(d.Stacks[i], ncfg)
		node.Start()
		d.Nodes = append(d.Nodes, node)
	}
	for i := 0; i < opts.Clients; i++ {
		ccfg := core.DefaultClientConfig()
		ccfg.Unicast = cfg.Unicast
		ccfg.Multicast = cfg.Multicast
		ccfg.DataPort = DataPort
		ccfg.R = opts.R
		ccfg.QuorumK = opts.QuorumK
		ccfg.OpTimeout = opts.OpTimeout
		ccfg.RetryWait = opts.RetryWait
		cl := core.NewClient(d.CStacks[i], ccfg)
		cl.Start()
		d.Clients = append(d.Clients, cl)
	}
	return d
}
