package cluster

import (
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/openflow"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/switchcache"
	"repro/internal/transport"
)

// NewNICELeafSpine builds a NICE deployment on a two-tier fabric:
// opts.Leaves ToR switches under one spine, with storage nodes, the
// metadata host and clients distributed round-robin across the leaves.
// It exercises the §6 claim that NICE extends to multi-switch platforms:
// the controller installs rewrite rules at every leaf and loop-free
// multicast trees across the fabric.
func NewNICELeafSpine(opts Options, leaves int) *NICE {
	if leaves < 2 {
		leaves = 2
	}
	s := sim.New(opts.Seed)
	nw := netsim.NewNetwork(s)
	d := &NICE{Opts: opts, Sim: s, Net: nw, Space: ring.NewSpace(opts.Nodes)}

	// Hosts per leaf: nodes + meta + clients, rounded up; plus one port
	// for the leaf's traffic gateway when requested.
	perLeaf := (opts.Nodes+opts.Clients+1+leaves-1)/leaves + 1
	if opts.TrafficGateways {
		perLeaf++
	}

	spineSw := nw.NewSwitch("spine", leaves, opts.SwitchLatency)
	spine := openflow.Attach(spineSw, opts.CtrlDelay)
	d.Core = spine
	topo := controller.NewLeafSpine(spine)

	type leafInfo struct {
		dp   *openflow.Datapath
		next int // next free host port (port 0 = uplink)
	}
	leafDPs := make([]*leafInfo, leaves)
	for i := 0; i < leaves; i++ {
		sw := nw.NewSwitch("leaf"+itoa(i), perLeaf+1, opts.SwitchLatency)
		dp := openflow.Attach(sw, opts.CtrlDelay)
		nw.Connect(sw.Port(0), spineSw.Port(i), opts.Link)
		topo.AddLeaf(dp, 0, i)
		leafDPs[i] = &leafInfo{dp: dp, next: 1}
	}
	hostCount := 0
	place := func(h *netsim.Host) *netsim.Link {
		li := leafDPs[hostCount%leaves]
		hostCount++
		l := nw.Connect(h.Port(), li.dp.Switch().Port(li.next), opts.Link)
		topo.AttachHost(li.dp, h.IP(), li.next)
		li.next++
		return l
	}

	var addrs []controller.NodeAddr
	for i := 0; i < opts.Nodes; i++ {
		h := nw.NewHost("node"+itoa(i), netsim.IPv4(10, 0, byte(i>>8), byte(i&0xff)).Add(1))
		d.NodeLinks = append(d.NodeLinks, place(h))
		st := transport.NewStack(h)
		d.Stacks = append(d.Stacks, st)
		addrs = append(addrs, controller.NodeAddr{
			Index: i, IP: h.IP(), MAC: h.MAC(), DataPort: DataPort, CtrlPort: CtrlPort,
		})
	}
	metaHost := nw.NewHost("meta", netsim.MustParseIP("10.254.0.1"))
	place(metaHost)
	metaStack := transport.NewStack(metaHost)
	d.MetaHost = metaHost
	for i := 0; i < opts.Clients; i++ {
		ip := clientIP(i, opts.R)
		if i < len(opts.ClientIPs) {
			ip = opts.ClientIPs[i]
		}
		h := nw.NewHost("client"+itoa(i), ip)
		place(h)
		d.CStacks = append(d.CStacks, transport.NewStack(h))
	}
	if opts.TrafficGateways {
		// One open-loop traffic gateway per leaf, pinned to its leaf (not
		// round-robin placed): the engine's return route sends every
		// client-space-addressed packet entering a leaf to that leaf's
		// gateway, so each gateway must terminate its own leaf's flows.
		for i := 0; i < leaves; i++ {
			li := leafDPs[i]
			h := nw.NewHost("gw"+itoa(i), netsim.IPv4(10, 20, 0, byte(i+1)))
			nw.Connect(h.Port(), li.dp.Switch().Port(li.next), opts.Link)
			topo.AttachHost(li.dp, h.IP(), li.next)
			d.Gateways = append(d.Gateways, Gateway{
				Stack: transport.NewStack(h), Leaf: li.dp, Port: li.next,
			})
			li.next++
		}
	}

	cfg := controller.DefaultConfig()
	cfg.Placement = ring.NewPlacement(opts.Nodes, opts.R)
	cfg.Unicast = ring.MustVRing(netsim.MustParsePrefix("10.10.0.0/16"), opts.Nodes, 8)
	cfg.Multicast = ring.MustVRing(netsim.MustParsePrefix("10.11.0.0/16"), opts.Nodes, 8)
	cfg.GroupBase = netsim.MustParseIP("239.0.0.0")
	cfg.HeartbeatEvery = opts.Heartbeat
	cfg.LoadBalance = opts.LoadBalance
	cfg.DynamicLB = opts.DynamicLB
	cfg.ClientSpace = netsim.MustParsePrefix("192.168.0.0/16")
	cfg.CtrlPort = MetaPort
	d.Unicast = cfg.Unicast
	d.Service = controller.New(metaStack, topo, cfg, addrs)
	d.Service.Start()
	for _, cst := range d.CStacks {
		d.Service.RegisterHost(cst.IP(), cst.Host().MAC())
	}
	for _, g := range d.Gateways {
		d.Service.RegisterHost(g.Stack.IP(), g.Stack.Host().MAC())
	}

	// In-switch hot-key cache on the spine: the aggregation point every
	// inter-leaf get traverses (rack-local requests bypass it, as a real
	// spine cache would be bypassed).
	if opts.Cache {
		ccfg := switchcache.DefaultConfig(opts.CtrlDelay)
		if opts.CacheCapacity > 0 {
			ccfg.Capacity = opts.CacheCapacity
		}
		if opts.CacheSampleEvery > 0 {
			ccfg.SampleEvery = opts.CacheSampleEvery
		}
		d.Cache = switchcache.Attach(d.Core, core.CacheCodec{DataPort: DataPort}, ccfg)
		mcfg := controller.DefaultCacheManagerConfig()
		if opts.CacheHotThreshold > 0 {
			mcfg.HotThreshold = opts.CacheHotThreshold
		}
		if opts.CacheDecayEvery > 0 {
			mcfg.DecayEvery = opts.CacheDecayEvery
		}
		d.CacheMgr = d.Service.EnableCache(d.Cache, mcfg)
	}

	for i := 0; i < opts.Nodes; i++ {
		ncfg := core.DefaultNodeConfig()
		ncfg.Addr = addrs[i]
		ncfg.Meta = metaStack.IP()
		ncfg.MetaPort = MetaPort
		ncfg.Space = d.Space
		ncfg.HeartbeatEvery = opts.Heartbeat
		ncfg.Disk = opts.Disk
		ncfg.QuorumK = opts.QuorumK
		ncfg.CPUPerOp = opts.CPUPerOp
		ncfg.Storage = opts.storageConfig()
		ncfg.CoalesceGets = opts.CoalesceGets
		ncfg.PutBatchWindow = opts.PutBatchWindow
		ncfg.PutBatchMax = opts.PutBatchMax
		if d.Cache != nil {
			ncfg.Cache = d.Cache
			ncfg.CacheUpdateOnPut = opts.CacheUpdateOnPut
		}
		node := core.NewNode(d.Stacks[i], ncfg)
		node.Start()
		d.Nodes = append(d.Nodes, node)
	}
	for i := 0; i < opts.Clients; i++ {
		ccfg := core.DefaultClientConfig()
		ccfg.Unicast = cfg.Unicast
		ccfg.Multicast = cfg.Multicast
		ccfg.DataPort = DataPort
		ccfg.R = opts.R
		ccfg.QuorumK = opts.QuorumK
		ccfg.OpTimeout = opts.OpTimeout
		ccfg.RetryWait = opts.RetryWait
		cl := core.NewClient(d.CStacks[i], ccfg)
		cl.Start()
		d.Clients = append(d.Clients, cl)
	}
	return d
}
