package cluster

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// The heavytraffic experiment: open-loop sweeps of the virtual-client
// fleet size across the three system arms the paper's evaluation
// compares — plain NICEKV, +switch load balancing, +in-switch caching —
// on a four-leaf spine fabric. Each cell offers the same aggregate load
// from a growing fleet (weak per-client rate, strong flow-count scaling),
// so what the sweep stresses is exactly what a million clients stress in
// practice: per-flow switch state, division spread, and the engine's own
// per-client bookkeeping.

// TrafficCell is one (system, fleet size) measurement.
type TrafficCell struct {
	System      string  `json:"system"`
	Clients     int     `json:"clients"`
	Offered     float64 `json:"offered_rps"`
	Achieved    float64 `json:"achieved_rps"`
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`
	TimeoutFrac float64 `json:"timeout_frac"`
	CacheHit    float64 `json:"cache_hit_frac"`
	Issued      int64   `json:"issued"`
	// Storage-engine telemetry, populated only for durable-store arms
	// (the storagesweep's heavytraffic cell); omitted otherwise so the
	// legacy heavytraffic JSON is unchanged.
	MemHitFrac float64 `json:"mem_hit_frac,omitempty"`
	Evictions  int64   `json:"evictions,omitempty"`
}

// HeavyTrafficArms is the sweep's system axis.
var HeavyTrafficArms = []string{"nicekv", "nicekv+lb", "nicekv+lb+cache"}

// heavyTrafficOptions builds the deployment options for one arm.
func heavyTrafficOptions(system string, seed int64) (Options, error) {
	opts := DefaultOptions()
	opts.Nodes = 6
	opts.R = 3
	opts.Clients = 4 // preloaders only; the fleet is virtual
	opts.Seed = seed
	opts.CPUPerOp = 10 * time.Microsecond
	opts.TrafficGateways = true
	switch system {
	case "nicekv":
	case "nicekv+lb":
		opts.LoadBalance = true
	case "nicekv+lb+cache":
		opts.LoadBalance = true
		opts.Cache = true
		opts.CacheCapacity = 512
	default:
		return opts, fmt.Errorf("cluster: unknown heavytraffic system %q", system)
	}
	return opts, nil
}

// RunHeavyTrafficCell builds one leaf-spine deployment, preloads the
// keyspace, offers rate req/s from a fleet of the given size for the
// given duration, and reports the cell.
func RunHeavyTrafficCell(system string, clients int, seed int64, rate float64, duration sim.Time) (TrafficCell, error) {
	opts, err := heavyTrafficOptions(system, seed)
	if err != nil {
		return TrafficCell{}, err
	}
	return runTrafficCell(opts, system, clients, rate, duration)
}

// runTrafficCell builds a four-leaf spine deployment from opts and
// drives the open-loop fleet against it — the shared machinery behind
// the heavytraffic sweep and the storagesweep's heavytraffic arm.
func runTrafficCell(opts Options, system string, clients int, rate float64, duration sim.Time) (TrafficCell, error) {
	return runTrafficCellBatched(opts, system, clients, rate, duration, 0)
}

// runTrafficCellBatched is runTrafficCell with the engine's get batching
// set (0/1 = unbatched); the batchsweep's heavytraffic arm uses it.
func runTrafficCellBatched(opts Options, system string, clients int, rate float64, duration sim.Time, batch int) (TrafficCell, error) {
	d := NewNICELeafSpine(opts, 4)
	eng := NewTrafficEngine(d, TrafficOptions{
		Clients:   clients,
		Rate:      rate,
		Duration:  duration,
		Seed:      opts.Seed,
		BatchSize: batch,
	})
	var res TrafficResult
	var loadErr error
	if err := driveNICE(d, func(p *sim.Proc) {
		if loadErr = eng.Preload(p); loadErr != nil {
			return
		}
		res = eng.Run(p)
	}); err != nil {
		return TrafficCell{}, err
	}
	if loadErr != nil {
		return TrafficCell{}, fmt.Errorf("heavytraffic %s/%d preload: %w", system, clients, loadErr)
	}
	cell := TrafficCell{
		System:    system,
		Clients:   clients,
		Offered:   rate,
		Achieved:  res.Achieved,
		P50Micros: float64(res.P50) / 1e3,
		P99Micros: float64(res.P99) / 1e3,
		Issued:    res.Issued,
	}
	if res.Issued > 0 {
		cell.TimeoutFrac = float64(res.TimedOut) / float64(res.Issued)
	}
	if t := res.CacheHits + res.CacheMisses; t > 0 {
		cell.CacheHit = float64(res.CacheHits) / float64(t)
	}
	if opts.DurableStore {
		sc := d.StorageCounters()
		cell.MemHitFrac = sc.HitRate()
		cell.Evictions = sc.Evictions
	}
	return cell, nil
}

// HeavyTrafficSweep runs the arms x sizes grid on the RunCells worker
// pool. Default shape (sizes nil): fleet sizes 10^4, 10^5, 10^6 at
// 60k req/s aggregate over 400ms — the offered load stays constant
// while the flow count scales two decades. 60k req/s puts the plain
// system at ~60% of its disk-bound service capacity (6 nodes x ~16k
// reads/s), so queueing is visible, load balancing measurably flattens
// it, and the in-switch cache removes most of it — without tipping the
// no-cache arms into unbounded backlog.
func HeavyTrafficSweep(pr Params, sizes []int) ([]TrafficCell, error) {
	if len(sizes) == 0 {
		sizes = []int{10_000, 100_000, 1_000_000}
	}
	const rate = 60_000
	duration := 400 * time.Millisecond
	n := len(HeavyTrafficArms) * len(sizes)
	cells := make([]TrafficCell, n)
	err := RunCells(pr, n, func(i int, seed int64) error {
		sys := HeavyTrafficArms[i/len(sizes)]
		size := sizes[i%len(sizes)]
		c, err := RunHeavyTrafficCell(sys, size, seed, rate, duration)
		if err != nil {
			return err
		}
		cells[i] = c
		return nil
	})
	return cells, err
}
