package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The storagesweep experiment characterizes the durable storage engine
// under memory pressure: every arm runs with the engine on (WAL +
// fsync-on-ack + snapshots), and the sweep scales the working-set-size ÷
// memory-budget ratio from 0.5x (everything fits, eviction never fires)
// to 8x (only an eighth of the set is resident, most gets pay a disk
// read). The system axis — NICEKV, +LB, +cache — shows how much the
// switch layers mask the storage tier: load balancing spreads the
// disk-read misses over R replicas, and the in-switch cache absorbs the
// hot head before it reaches a server at all. A heavytraffic arm drives
// the same durable engine with a 10^5-virtual-client open-loop fleet.

// StorageRatios is the working-set-size ÷ memory-budget axis.
var StorageRatios = []float64{0.5, 1, 2, 4, 8}

// storageSweepSystems is the system axis; all run the durable engine.
var storageSweepSystems = []string{"NICEKV", "NICEKV+LB", "NICEKV+cache"}

const (
	storageSweepRecords = 256
	storageSweepValue   = 1024
	storageSweepNodes   = 6
	storageSweepClients = 3
	storageSweepPutFrac = 0.05
)

// StorageCell is one (system, ratio) measurement.
type StorageCell struct {
	System       string  `json:"system"`
	Ratio        float64 `json:"ws_over_budget"`
	BudgetBytes  int64   `json:"budget_bytes"` // per node
	Tput         float64 `json:"ops_per_sec"`
	GetP99Micros float64 `json:"get_p99_us"`
	PutP99Micros float64 `json:"put_p99_us"`
	MemHitRatio  float64 `json:"mem_hit_ratio"`
	Evictions    int64   `json:"evictions"`
	WALAppends   int64   `json:"wal_appends"`
	Fsyncs       int64   `json:"fsyncs"`
	Snapshots    int64   `json:"snapshots"`
	CacheHit     float64 `json:"cache_hit_frac,omitempty"`
}

// StorageReport is the BENCH_storage.json payload.
type StorageReport struct {
	Records   int           `json:"records"`
	ValueSize int           `json:"value_size"`
	Nodes     int           `json:"nodes"`
	Cells     []StorageCell `json:"cells"`
	Heavy     []TrafficCell `json:"heavytraffic"`
}

// StorageCounters sums the durable engines' counters across the
// deployment's nodes (all zero for legacy-store deployments).
func (d *NICE) StorageCounters() metrics.StorageCounters {
	var out metrics.StorageCounters
	for _, n := range d.Nodes {
		st, ok := n.Store().StorageStats()
		if !ok {
			continue
		}
		out.MemHits += st.MemHits
		out.DiskReads += st.DiskReads
		out.Evictions += st.Evictions
		out.WALAppends += st.WALAppends
		out.Fsyncs += st.Fsyncs
		out.FsyncedRecords += st.FsyncedRecords
		out.CoalescedSyncs += st.CoalescedSyncs
		out.Snapshots += st.Snapshots
		out.Recoveries += st.Recoveries
		out.ReplayedRecords += st.ReplayedRecords
		out.LostRecords += st.LostRecords
		out.MemBytes += st.MemBytes
		out.WALRecords += int64(st.WALRecords)
	}
	return out
}

// storageBudget sizes a node's memory budget so the expected resident
// share of the replicated working set is 1/ratio: each of the nodes
// holds records*value*R/nodes bytes of committed data on average.
func storageBudget(ratio float64) int64 {
	perNode := float64(storageSweepRecords*storageSweepValue*3) / float64(storageSweepNodes)
	return int64(perNode / ratio)
}

// storageSweepOpts builds one arm's deployment: the cachesweep system
// variants with the durable engine layered under all of them.
func storageSweepOpts(system string, seed int64, ratio float64) (Options, error) {
	opts := DefaultOptions()
	opts.Seed = seed
	opts.Nodes = storageSweepNodes
	opts.Clients = storageSweepClients
	opts.DurableStore = true
	opts.StoreMemoryBudget = storageBudget(ratio)
	// Snapshot aggressively relative to the short measured window so the
	// sweep includes checkpoint-write interference, not just fsyncs.
	opts.StoreSnapshotEvery = 20 * time.Millisecond
	// Group commit with a short gather window: concurrent commits on a
	// node share fsyncs, so the sweep reports fsyncs < wal_appends.
	opts.GroupCommit = true
	opts.MaxSyncDelay = 20 * time.Microsecond
	switch system {
	case "NICEKV":
	case "NICEKV+LB":
		opts.LoadBalance = true
	case "NICEKV+cache":
		opts.Cache = true
		opts.CacheCapacity = 64
		opts.CacheSampleEvery = 1
		opts.CacheHotThreshold = 4
		opts.CacheDecayEvery = 10 * time.Second
	default:
		return opts, fmt.Errorf("cluster: unknown storagesweep system %q", system)
	}
	return opts, nil
}

// runStorageCell loads the keyspace, then drives a read-mostly measured
// phase and reports throughput, tails and the engine counters.
func runStorageCell(pr Params, seed int64, system string, ratio float64) (StorageCell, error) {
	cell := StorageCell{System: system, Ratio: ratio, BudgetBytes: storageBudget(ratio)}
	opts, err := storageSweepOpts(system, seed, ratio)
	if err != nil {
		return cell, err
	}
	d := NewNICE(opts)
	defer d.Close()
	if err := d.Settle(); err != nil {
		return cell, err
	}

	key := func(i int) string { return fmt.Sprintf("user%d", i) }
	chooser := workload.NewZipfianTheta(storageSweepRecords, workload.ZipfTheta)

	// Load phase: client 0 writes every record, filling the engines (and
	// overflowing the smaller budgets into the disk tier).
	var loadErr error
	d.Sim.Spawn("storage-load", func(p *sim.Proc) {
		for i := 0; i < storageSweepRecords; i++ {
			if _, err := d.Clients[0].Put(p, key(i), "v", storageSweepValue); err != nil {
				loadErr = err
				break
			}
		}
		d.Sim.Stop()
	})
	if err := d.Sim.Run(); err != nil {
		return cell, err
	}
	if loadErr != nil {
		return cell, loadErr
	}

	// Measured phase: read-mostly mixed traffic against the zipfian head.
	var getHist, putHist metrics.Histogram
	ops := 0
	start := d.Sim.Now()
	var opErr error
	g := sim.NewGroup(d.Sim)
	for c := range d.Clients {
		c := c
		rng := rand.New(rand.NewSource(seed + 2000*int64(c+1)))
		g.Add(1)
		d.Sim.Spawn(fmt.Sprintf("storage-client%d", c), func(p *sim.Proc) {
			defer g.Done()
			for n := 0; n < pr.Ops; n++ {
				k := key(chooser.Next(rng))
				if rng.Float64() < storageSweepPutFrac {
					res, err := d.Clients[c].Put(p, k, "v", storageSweepValue)
					if err != nil {
						opErr = err
						return
					}
					putHist.Add(res.Latency)
				} else {
					res, err := d.Clients[c].Get(p, k)
					if err != nil {
						opErr = err
						return
					}
					getHist.Add(res.Latency)
				}
				ops++
			}
		})
	}
	d.Sim.Spawn("storage-join", func(p *sim.Proc) { g.Wait(p); d.Sim.Stop() })
	if err := d.Sim.Run(); err != nil {
		return cell, err
	}
	if opErr != nil {
		return cell, opErr
	}

	if elapsed := (d.Sim.Now() - start).Seconds(); elapsed > 0 {
		cell.Tput = float64(ops) / elapsed
	}
	cell.GetP99Micros = getHist.Percentile(99) * 1e6
	cell.PutP99Micros = putHist.Percentile(99) * 1e6
	sc := d.StorageCounters()
	cell.MemHitRatio = sc.HitRate()
	cell.Evictions = sc.Evictions
	cell.WALAppends = sc.WALAppends
	cell.Fsyncs = sc.Fsyncs
	cell.Snapshots = sc.Snapshots
	if d.Cache != nil {
		cell.CacheHit = d.Cache.Stats().HitRate()
	}
	return cell, nil
}

// StorageSweep runs the (system, ratio) grid on the RunCells worker
// pool, then the heavytraffic arm: heavyClients open-loop virtual
// clients (default 100k) against a durable +LB deployment whose budget
// holds half the preloaded working set.
func StorageSweep(pr Params, heavyClients int) (*StorageReport, error) {
	rep := &StorageReport{
		Records:   storageSweepRecords,
		ValueSize: storageSweepValue,
		Nodes:     storageSweepNodes,
	}
	n := len(storageSweepSystems) * len(StorageRatios)
	rep.Cells = make([]StorageCell, n)
	err := RunCells(pr, n, func(i int, seed int64) error {
		sys := storageSweepSystems[i/len(StorageRatios)]
		ratio := StorageRatios[i%len(StorageRatios)]
		c, cerr := runStorageCell(pr, seed, sys, ratio)
		rep.Cells[i] = c
		return cerr
	})
	if err != nil {
		return nil, err
	}

	if heavyClients <= 0 {
		heavyClients = 100_000
	}
	opts, err := heavyTrafficOptions("nicekv+lb", DeriveSeed(pr.Seed, n))
	if err != nil {
		return nil, err
	}
	opts.DurableStore = true
	opts.GroupCommit = true
	opts.MaxSyncDelay = 20 * time.Microsecond
	// The traffic engine preloads 4096 records x 512 B, replicated R=3
	// over 6 nodes = 1 MiB per node; budget half of it so the fleet's
	// zipfian tail constantly promotes and evicts.
	opts.StoreMemoryBudget = 512 << 10
	heavy, err := runTrafficCell(opts, "nicekv+lb+durable", heavyClients, 60_000, 400*time.Millisecond)
	if err != nil {
		return nil, err
	}
	rep.Heavy = append(rep.Heavy, heavy)
	return rep, nil
}
