package cluster

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/noob"
	"repro/internal/sim"
)

// Extended experiments beyond the paper's figures: the full YCSB core
// suite, and the abstract's scalability claim measured directly.

// YCSBAllWorkloads runs the remaining YCSB core workloads (A update-heavy,
// B read-mostly, D read-latest) alongside the paper's C and F, for NICE
// and both NOOB baselines.
func YCSBAllWorkloads(pr Params, clients int) (*Figure, error) {
	fig := &Figure{
		ID:     "ycsb-all",
		Title:  fmt.Sprintf("YCSB core suite (zipfian, 1KB, %d clients x %d ops)", clients, pr.Ops),
		XLabel: "workload",
		YLabel: "operations per second, aggregate",
	}
	nice := Series{System: "NICE"}
	prim := Series{System: "NOOB primary-only"}
	twopc := Series{System: "NOOB 2PC"}
	for _, wl := range []string{"A", "B", "C", "D", "F"} {
		tput, err := niceYCSB(pr, clients, wl)
		if err != nil {
			return nil, err
		}
		nice.Points = append(nice.Points, Point{X: wl, Value: tput})
		tput, err = noobYCSB(pr, clients, wl, noob.PrimaryOnly)
		if err != nil {
			return nil, err
		}
		prim.Points = append(prim.Points, Point{X: wl, Value: tput})
		tput, err = noobYCSB(pr, clients, wl, noob.TwoPC)
		if err != nil {
			return nil, err
		}
		twopc.Points = append(twopc.Points, Point{X: wl, Value: tput})
	}
	fig.Series = []Series{nice, prim, twopc}
	return fig, nil
}

// ScaleOutThroughput measures the abstract's scalability claim: grow the
// cluster and offered load together (weak scaling) and watch aggregate
// put throughput. NICE has no shared chokepoint; NOOB routed through a
// gateway stops scaling at the gateway.
func ScaleOutThroughput(pr Params) (*Figure, error) {
	fig := &Figure{
		ID:     "scale-out",
		Title:  "Weak scaling: aggregate 64KB put throughput as nodes and clients double",
		XLabel: "nodes",
		YLabel: "puts per second, aggregate",
	}
	const objSize = 64 << 10
	sizes := []int{6, 12, 24}

	nice := Series{System: "NICE"}
	rag := Series{System: "NOOB+RAG (gateway)"}
	for _, n := range sizes {
		clients := n / 2
		x := fmt.Sprintf("%d", n)

		opts := DefaultOptions()
		opts.Seed = pr.Seed
		opts.Nodes = n
		opts.Clients = clients
		d := NewNICE(opts)
		tput, err := putStorm(d.Sim, func() error { return d.Settle() }, clients, pr.Ops,
			func(i int, p *sim.Proc, key string) error {
				_, err := d.Clients[i].Put(p, key, "v", objSize)
				return err
			})
		d.Close()
		if err != nil {
			return nil, err
		}
		nice.Points = append(nice.Points, Point{X: x, Value: tput})

		nopts := DefaultNOOBOptions()
		nopts.Seed = pr.Seed
		nopts.Nodes = n
		nopts.Clients = clients
		nopts.Access = noob.ViaGateway
		nopts.Gateway = noob.RAG
		nd := NewNOOB(nopts)
		tput, err = putStorm(nd.Sim, func() error { return nil }, clients, pr.Ops,
			func(i int, p *sim.Proc, key string) error {
				_, err := nd.Clients[i].Put(p, key, "v", objSize)
				return err
			})
		nd.Close()
		if err != nil {
			return nil, err
		}
		rag.Points = append(rag.Points, Point{X: x, Value: tput})
	}
	fig.Series = []Series{nice, rag}
	fig.Notes = append(fig.Notes,
		"weak scaling: clients = nodes/2, each issuing the same op count;",
		"flat or rising per-node throughput means no shared bottleneck (the abstract's scalability claim)")
	return fig, nil
}

// putStorm drives `clients` concurrent writers and returns aggregate
// throughput over simulated time.
func putStorm(s *sim.Simulator, settle func() error, clients, ops int,
	put func(i int, p *sim.Proc, key string) error) (float64, error) {

	if err := settle(); err != nil {
		return 0, err
	}
	start := s.Now()
	var firstErr error
	completed := 0
	g := sim.NewGroup(s)
	for i := 0; i < clients; i++ {
		i := i
		g.Add(1)
		s.Spawn(fmt.Sprintf("storm%d", i), func(p *sim.Proc) {
			defer g.Done()
			for k := 0; k < ops; k++ {
				if err := put(i, p, fmt.Sprintf("c%d-k%d", i, k)); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				completed++
			}
		})
	}
	s.Spawn("join", func(p *sim.Proc) { g.Wait(p); s.Stop() })
	if err := s.Run(); err != nil {
		return 0, err
	}
	if firstErr != nil {
		return 0, firstErr
	}
	elapsed := (s.Now() - start).Seconds()
	if elapsed <= 0 {
		return 0, fmt.Errorf("putStorm: no simulated time elapsed")
	}
	return float64(completed) / elapsed, nil
}

// FabricComparison contrasts the three supported fabrics on the same
// workload: single hardware switch (the paper's platform), client-edge
// OVS (§5.1 workaround), and leaf-spine (multi-switch, §6 note).
func FabricComparison(pr Params) (*Figure, error) {
	fig := &Figure{
		ID:     "fabric",
		Title:  "Fabric comparison: 64KB put/get latency across switch topologies",
		XLabel: "fabric",
		YLabel: "seconds per op, mean",
	}
	const size = 64 << 10
	puts := Series{System: "put"}
	gets := Series{System: "get"}
	run := func(name string, d *NICE) error {
		var ph, gh metrics.Histogram
		err := driveNICE(d, func(p *sim.Proc) {
			c := d.Clients[0]
			for i := 0; i < pr.Ops; i++ {
				key := fmt.Sprintf("k%d", i)
				res, err := c.Put(p, key, "v", size)
				if err != nil {
					return
				}
				ph.Add(res.Latency)
				got, err := c.Get(p, key)
				if err != nil || !got.Found {
					return
				}
				gh.Add(got.Latency)
			}
		})
		d.Close()
		if err != nil {
			return err
		}
		if ph.N() != pr.Ops || gh.N() != pr.Ops {
			return fmt.Errorf("fabric %s: incomplete run (%d/%d puts)", name, ph.N(), pr.Ops)
		}
		puts.Points = append(puts.Points, Point{X: name, Value: ph.Mean()})
		gets.Points = append(gets.Points, Point{X: name, Value: gh.Mean()})
		return nil
	}

	opts := DefaultOptions()
	opts.Seed = pr.Seed
	if err := run("single-switch", NewNICE(opts)); err != nil {
		return nil, err
	}
	eopts := DefaultOptions()
	eopts.Seed = pr.Seed
	eopts.EdgeOVS = true
	if err := run("edge-ovs", NewNICE(eopts)); err != nil {
		return nil, err
	}
	lopts := DefaultOptions()
	lopts.Seed = pr.Seed
	if err := run("leaf-spine(3)", NewNICELeafSpine(lopts, 3)); err != nil {
		return nil, err
	}
	fig.Series = []Series{puts, gets}
	return fig, nil
}

// QuorumReadOverhead quantifies §3.3's motivation: majority-based
// designs (Paxos/Raft-style) must touch a majority of replicas on every
// read, while NICE's consistency-aware fault tolerance lets one replica
// answer. Reported per get: latency and total network bytes.
func QuorumReadOverhead(pr Params) (*Figure, error) {
	fig := &Figure{
		ID:     "quorum-read",
		Title:  "Read-side cost of quorum consistency (R=5, 1KB objects)",
		XLabel: "metric",
		YLabel: "per-get value",
	}
	const size = 1 << 10
	run := func(quorum bool) (lat, bytes float64, err error) {
		var h metrics.Histogram
		var linkBytes int64
		if quorum {
			opts := DefaultNOOBOptions()
			opts.Seed = pr.Seed
			opts.R = 5
			opts.Consistency = noob.QuorumRW
			d := NewNOOB(opts)
			err = driveNOOB(d, func(p *sim.Proc) {
				c := d.Clients[0]
				if _, err := c.Put(p, "q", "v", size); err != nil {
					return
				}
				d.Net.ResetLinkStats()
				for i := 0; i < pr.Ops; i++ {
					res, gerr := c.Get(p, "q")
					if gerr != nil || !res.Found {
						return
					}
					h.Add(res.Latency)
				}
			})
			linkBytes = d.Net.TotalLinkBytes()
			d.Close()
		} else {
			opts := DefaultOptions()
			opts.Seed = pr.Seed
			opts.R = 5
			opts.LoadBalance = true
			d := NewNICE(opts)
			err = driveNICE(d, func(p *sim.Proc) {
				c := d.Clients[0]
				if _, err := c.Put(p, "q", "v", size); err != nil {
					return
				}
				d.Net.ResetLinkStats()
				for i := 0; i < pr.Ops; i++ {
					res, gerr := c.Get(p, "q")
					if gerr != nil || !res.Found {
						return
					}
					h.Add(res.Latency)
				}
			})
			linkBytes = d.Net.TotalLinkBytes()
			d.Close()
		}
		if err != nil {
			return 0, 0, err
		}
		if h.N() != pr.Ops {
			return 0, 0, fmt.Errorf("quorum-read: completed %d/%d gets (quorum=%v)", h.N(), pr.Ops, quorum)
		}
		return h.Mean(), float64(linkBytes) / float64(pr.Ops), nil
	}
	nLat, nBytes, err := run(false)
	if err != nil {
		return nil, err
	}
	qLat, qBytes, err := run(true)
	if err != nil {
		return nil, err
	}
	fig.Series = []Series{
		{System: "NICE (1 replica/read)", Points: []Point{
			{X: "latency-s", Value: nLat}, {X: "net-bytes", Value: nBytes}}},
		{System: "NOOB quorum (majority/read)", Points: []Point{
			{X: "latency-s", Value: qLat}, {X: "net-bytes", Value: qBytes}}},
	}
	fig.Notes = append(fig.Notes,
		"§3.3: quorum designs pay a majority of replica touches on every read;",
		"consistency-aware fault tolerance answers from any single consistent replica")
	return fig, nil
}
