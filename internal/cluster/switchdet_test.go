package cluster

import (
	"hash/fnv"
	"strings"
	"testing"
)

// fig5GoldenHash is the FNV-1a hash of the rendered fig5/6/7 figures at
// Ops=40, Seed=42, captured from the linear-scan flow table before the
// indexed fast path landed. The indexed table must reproduce the sweep
// bit-identically: any drift in match selection, tie-breaking, or idle
// expiry shows up here as a different hash.
const fig5GoldenHash uint64 = 0x8f5b5dfb24684dd9

// TestFig5BitIdenticalGolden locks the replication sweep's metrics to the
// pre-index implementation.
func TestFig5BitIdenticalGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig5 sweep in -short mode")
	}
	f5, f6, f7, err := ReplicationFigures(Params{Ops: 40, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	f5.Fprint(&b)
	f6.Fprint(&b)
	f7.Fprint(&b)
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	if got := h.Sum64(); got != fig5GoldenHash {
		t.Fatalf("fig5-7 output hash = %#x, want %#x; the flow-table index changed sweep results:\n%s",
			got, fig5GoldenHash, b.String())
	}
}
