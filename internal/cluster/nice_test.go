package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func ms(n int) sim.Time { return sim.Time(n) * time.Millisecond }

// runNICE drives fn on client 0 and runs the simulation to completion.
func runNICE(t *testing.T, opts Options, fn func(p *sim.Proc, d *NICE)) *NICE {
	t.Helper()
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	done := false
	d.Sim.Spawn("driver", func(p *sim.Proc) {
		fn(p, d)
		done = true
		d.Sim.Stop()
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("driver did not finish (deadlock in protocol?)")
	}
	return d
}

func TestNICEPutGetRoundTrip(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 5
	d := runNICE(t, opts, func(p *sim.Proc, d *NICE) {
		c := d.Clients[0]
		if _, err := c.Put(p, "alpha", "one", 1024); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		res, err := c.Get(p, "alpha")
		if err != nil || !res.Found || res.Value != "one" {
			t.Errorf("get = %+v, %v", res, err)
		}
		if res, err := c.Get(p, "never-stored"); err != nil || res.Found {
			t.Errorf("missing key: %+v, %v", res, err)
		}
	})
	d.Close()
}

func TestNICEPutReplicatesToAllReplicas(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 5
	d := runNICE(t, opts, func(p *sim.Proc, d *NICE) {
		c := d.Clients[0]
		if _, err := c.Put(p, "beta", 42, 4096); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		p.Sleep(ms(10)) // let secondary commits finish
		part := d.Space.PartitionOf("beta")
		view := d.Service.View(part)
		if len(view.Replicas) != 3 {
			t.Fatalf("replicas = %d", len(view.Replicas))
		}
		for _, r := range view.Replicas {
			obj, ok := d.Nodes[r.Index].Store().Peek("beta")
			if !ok {
				t.Errorf("replica %d missing object", r.Index)
				continue
			}
			if obj.Version.IsZero() {
				t.Errorf("replica %d has uncommitted version", r.Index)
			}
		}
		// Non-replicas must not have it.
		for i, n := range d.Nodes {
			if view.HasReplica(i) {
				continue
			}
			if _, ok := n.Store().Peek("beta"); ok {
				t.Errorf("non-replica %d has object", i)
			}
		}
	})
	d.Close()
}

func TestNICESequentialConsistencyOrder(t *testing.T) {
	// Overwrites by the same client must converge on every replica to the
	// final value.
	opts := DefaultOptions()
	opts.Nodes = 5
	d := runNICE(t, opts, func(p *sim.Proc, d *NICE) {
		c := d.Clients[0]
		for i := 1; i <= 5; i++ {
			if _, err := c.Put(p, "counter", i, 100); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
		}
		p.Sleep(ms(10))
		part := d.Space.PartitionOf("counter")
		for _, r := range d.Service.View(part).Replicas {
			obj, ok := d.Nodes[r.Index].Store().Peek("counter")
			if !ok || obj.Value != 5 {
				t.Errorf("replica %d value = %v", r.Index, obj)
			}
		}
	})
	d.Close()
}

func TestNICEManyKeysManyPartitions(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 8
	d := runNICE(t, opts, func(p *sim.Proc, d *NICE) {
		c := d.Clients[0]
		for i := 0; i < 40; i++ {
			key := fmt.Sprintf("key-%d", i)
			if _, err := c.Put(p, key, i, 256); err != nil {
				t.Errorf("put %s: %v", key, err)
				return
			}
		}
		for i := 0; i < 40; i++ {
			key := fmt.Sprintf("key-%d", i)
			res, err := c.Get(p, key)
			if err != nil || !res.Found || res.Value != i {
				t.Errorf("get %s = %+v, %v", key, res, err)
			}
		}
	})
	d.Close()
}

func TestNICEMultipleClients(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.Clients = 3
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	g := sim.NewGroup(d.Sim)
	for i, c := range d.Clients {
		i, c := i, c
		g.Add(1)
		d.Sim.Spawn("client", func(p *sim.Proc) {
			defer g.Done()
			key := fmt.Sprintf("client%d-key", i)
			if _, err := c.Put(p, key, i, 2048); err != nil {
				t.Errorf("client %d put: %v", i, err)
				return
			}
			res, err := c.Get(p, key)
			if err != nil || !res.Found || res.Value != i {
				t.Errorf("client %d get: %+v %v", i, res, err)
			}
		})
	}
	ok := false
	d.Sim.Spawn("join", func(p *sim.Proc) { g.Wait(p); ok = true; d.Sim.Stop() })
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("clients did not finish")
	}
	d.Close()
}

func TestNICELoadBalancedGetsHitDifferentReplicas(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.Clients = 3
	opts.LoadBalance = true
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	key := "hotkey"
	part := d.Space.PartitionOf(key)
	// Seed the object.
	d.Sim.Spawn("seed", func(p *sim.Proc) {
		if _, err := d.Clients[0].Put(p, key, "v", 512); err != nil {
			t.Errorf("seed: %v", err)
		}
		d.Sim.Stop()
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	before := make(map[int]int64)
	view := d.Service.View(part)
	for _, r := range view.Replicas {
		before[r.Index] = d.Nodes[r.Index].Stats().Gets
	}
	// Each client (in a different source division) gets the same key.
	g := sim.NewGroup(d.Sim)
	for _, c := range d.Clients {
		c := c
		g.Add(1)
		d.Sim.Spawn("getter", func(p *sim.Proc) {
			defer g.Done()
			for i := 0; i < 5; i++ {
				if res, err := c.Get(p, key); err != nil || !res.Found {
					t.Errorf("get: %+v %v", res, err)
					return
				}
			}
		})
	}
	d.Sim.Spawn("join", func(p *sim.Proc) { g.Wait(p); d.Sim.Stop() })
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	served := 0
	for _, r := range view.Replicas {
		if d.Nodes[r.Index].Stats().Gets > before[r.Index] {
			served++
		}
	}
	if served != 3 {
		t.Fatalf("gets were served by %d replicas, want all 3", served)
	}
	d.Close()
}

func TestNICEFailureHandoffAndRecovery(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.Heartbeat = ms(100)
	opts.OpTimeout = ms(500)
	opts.RetryWait = ms(500)
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	key := "durable"
	part := d.Space.PartitionOf(key)
	view := d.Service.View(part)
	victim := view.Replicas[1].Index // a secondary

	okPuts, failPuts := 0, 0
	d.Sim.Spawn("workload", func(p *sim.Proc) {
		c := d.Clients[0]
		// Seed, then crash the secondary, keep putting (client retries
		// bridge the outage), then recover.
		for i := 0; i < 3; i++ {
			if _, err := c.Put(p, fmt.Sprintf("%s-%d", key, i), i, 1024); err != nil {
				t.Errorf("warm put: %v", err)
			}
		}
		d.Nodes[victim].Crash()
		for i := 3; i < 10; i++ {
			if _, err := c.Put(p, fmt.Sprintf("%s-%d", key, i), i, 1024); err != nil {
				failPuts++
			} else {
				okPuts++
			}
		}
		// All gets must still succeed during the outage.
		for i := 0; i < 10; i++ {
			res, err := c.Get(p, fmt.Sprintf("%s-%d", key, i))
			if i < 3 || err == nil {
				// keys 3..9: only require the ok ones
				_ = res
			}
		}
		// Recover the victim.
		d.Nodes[victim].Restart()
		p.Sleep(ms(500))
		// After recovery, the victim must hold every object of its
		// partitions that was written while it was down.
		v := d.Service.View(part)
		if v.Handoff != nil || v.Recovering != nil {
			t.Errorf("view not healthy after recovery: %+v", v)
		}
		if !v.HasReplica(victim) {
			t.Errorf("victim not restored to replica set")
		}
		d.Sim.Stop()
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if okPuts < 5 {
		t.Fatalf("only %d/%d puts succeeded during failure window", okPuts, 7)
	}
	// Check the recovered node has the objects put during its outage.
	missing := 0
	for i := 3; i < 10; i++ {
		k := fmt.Sprintf("%s-%d", key, i)
		if d.Space.PartitionOf(k) != part {
			continue
		}
		if _, ok := d.Nodes[victim].Store().Peek(k); !ok {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("recovered node missing %d objects written during outage", missing)
	}
	d.Close()
}

func TestNICEPrimaryFailurePromotion(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.Heartbeat = ms(100)
	opts.OpTimeout = ms(500)
	opts.RetryWait = ms(300)
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	key := "promote-me"
	part := d.Space.PartitionOf(key)
	oldPrimary := d.Service.View(part).Primary().Index

	var newPrimary int
	d.Sim.Spawn("workload", func(p *sim.Proc) {
		c := d.Clients[0]
		if _, err := c.Put(p, key, "v1", 512); err != nil {
			t.Errorf("seed: %v", err)
			return
		}
		d.Nodes[oldPrimary].Crash()
		// Put again: fails until detection + promotion, then the retry
		// succeeds against the new primary.
		if _, err := c.Put(p, key, "v2", 512); err != nil {
			t.Errorf("put after primary failure: %v", err)
			return
		}
		v := d.Service.View(part)
		newPrimary = v.Primary().Index
		if newPrimary == oldPrimary {
			t.Error("primary not replaced")
		}
		res, err := c.Get(p, key)
		if err != nil || res.Value != "v2" {
			t.Errorf("get after promotion: %+v %v", res, err)
		}
		d.Sim.Stop()
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	d.Close()
}

func TestNICEEdgeOVSDeployment(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.EdgeOVS = true
	d := runNICE(t, opts, func(p *sim.Proc, d *NICE) {
		c := d.Clients[0]
		if _, err := c.Put(p, "edge-key", "v", 4096); err != nil {
			t.Errorf("put via edge OVS: %v", err)
			return
		}
		res, err := c.Get(p, "edge-key")
		if err != nil || !res.Found || res.Value != "v" {
			t.Errorf("get via edge OVS: %+v %v", res, err)
		}
	})
	d.Close()
}

func TestNICEDeterministicReplay(t *testing.T) {
	run := func() sim.Time {
		opts := DefaultOptions()
		opts.Nodes = 5
		var last sim.Time
		d := runNICE(t, opts, func(p *sim.Proc, d *NICE) {
			c := d.Clients[0]
			for i := 0; i < 10; i++ {
				c.Put(p, fmt.Sprintf("k%d", i), i, 1024)
				c.Get(p, fmt.Sprintf("k%d", i))
			}
			last = p.Now()
		})
		d.Close()
		return last
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestNICELazyMappingDeployment(t *testing.T) {
	// The §5 lazy mapping mode end to end: no vring rules at bootstrap,
	// yet puts and gets work (first packets punt; the multicast
	// transport's RTO covers the install window), and idle rules lapse.
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.LazyMapping = true
	opts.MappingIdle = 500 * time.Millisecond
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	countVring := func() int {
		n := 0
		for _, e := range d.Core.Table().Entries() {
			c := e.Cookie
			if len(c) > 3 && (c[:3] == "uni" || c[:2] == "mc") {
				n++
			}
		}
		return n
	}
	if countVring() != 0 {
		t.Fatalf("lazy deployment installed %d vring rules at bootstrap", countVring())
	}
	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		c := d.Clients[0]
		for i := 0; i < 5; i++ {
			key := fmt.Sprintf("lazy-%d", i)
			if _, err := c.Put(p, key, i, 2048); err != nil {
				t.Errorf("lazy put %s: %v", key, err)
				return
			}
			res, err := c.Get(p, key)
			if err != nil || !res.Found || res.Value != i {
				t.Errorf("lazy get %s: %+v %v", key, res, err)
				return
			}
		}
		if countVring() == 0 {
			t.Error("no vring rules installed after traffic")
		}
		// Let the rules idle out; the table shrinks back.
		p.Sleep(2 * time.Second)
		_ = d.Core.Table().Lookup(&netsim.Packet{DstIP: netsim.MustParseIP("9.9.9.9")}, 0)
		if countVring() != 0 {
			t.Errorf("%d vring rules survived the idle timeout", countVring())
		}
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	d.Close()
}
