package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRunCellsSchedulingInvariants exercises the worker pool itself (and,
// under -race, its memory discipline): every cell runs exactly once, gets
// the same derived seed either way, and results land in grid order.
func TestRunCellsSchedulingInvariants(t *testing.T) {
	const n = 64
	for _, seq := range []bool{false, true} {
		pr := Params{Seed: 7, Seq: seq}
		ran := make([]int, n)
		seeds := make([]int64, n)
		err := RunCells(pr, n, func(i int, seed int64) error {
			ran[i]++
			seeds[i] = seed
			return nil
		})
		if err != nil {
			t.Fatalf("seq=%v: %v", seq, err)
		}
		uniq := make(map[int64]bool)
		for i := 0; i < n; i++ {
			if ran[i] != 1 {
				t.Fatalf("seq=%v: cell %d ran %d times", seq, i, ran[i])
			}
			if seeds[i] != DeriveSeed(pr.Seed, i) {
				t.Fatalf("seq=%v: cell %d seed %d, want %d", seq, i, seeds[i], DeriveSeed(pr.Seed, i))
			}
			uniq[seeds[i]] = true
		}
		if len(uniq) != n {
			t.Fatalf("seq=%v: %d distinct seeds for %d cells", seq, len(uniq), n)
		}
	}
}

func TestRunCellsErrorOrder(t *testing.T) {
	// The first error in CELL order must win, regardless of which worker
	// finishes first.
	pr := Params{Seed: 1}
	err := RunCells(pr, 16, func(i int, seed int64) error {
		if i >= 3 {
			return fmt.Errorf("cell %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "cell 3 failed" {
		t.Fatalf("err = %v, want cell 3 failed", err)
	}
}

func TestRunCellsPanicBecomesError(t *testing.T) {
	for _, seq := range []bool{false, true} {
		pr := Params{Seed: 1, Seq: seq}
		err := RunCells(pr, 4, func(i int, seed int64) error {
			if i == 2 {
				panic("boom")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("seq=%v: panic not converted to error", seq)
		}
	}
}

// TestParallelFiguresMatchSequential is the tentpole determinism
// guarantee: the parallel sweeps produce bit-identical figures to the
// sequential path, for Figs. 4 and 5 (with 6 and 7 riding along) at two
// seeds. Cells own private simulators and derive their seeds from the
// grid index, so scheduling must not influence any value.
func TestParallelFiguresMatchSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed figure sweep")
	}
	for _, seed := range []int64{7, 1234} {
		par := Params{Ops: 10, Seed: seed}
		seqp := Params{Ops: 10, Seed: seed, Seq: true}

		fig4p, err := Fig4RequestRouting(par)
		if err != nil {
			t.Fatalf("seed %d: parallel fig4: %v", seed, err)
		}
		fig4s, err := Fig4RequestRouting(seqp)
		if err != nil {
			t.Fatalf("seed %d: sequential fig4: %v", seed, err)
		}
		if !reflect.DeepEqual(fig4p, fig4s) {
			t.Errorf("seed %d: fig4 parallel != sequential\npar: %+v\nseq: %+v", seed, fig4p, fig4s)
		}

		f5p, f6p, f7p, err := ReplicationFigures(par)
		if err != nil {
			t.Fatalf("seed %d: parallel replication figures: %v", seed, err)
		}
		f5s, f6s, f7s, err := ReplicationFigures(seqp)
		if err != nil {
			t.Fatalf("seed %d: sequential replication figures: %v", seed, err)
		}
		for _, pair := range []struct {
			name     string
			par, seq *Figure
		}{{"fig5", f5p, f5s}, {"fig6", f6p, f6s}, {"fig7", f7p, f7s}} {
			if !reflect.DeepEqual(pair.par, pair.seq) {
				t.Errorf("seed %d: %s parallel != sequential", seed, pair.name)
			}
		}
	}
}
