package cluster

import (
	"testing"
)

// TestReadScaleShape: harmonia's read-only throughput must actually
// scale with the replication factor — the acceptance bar is 2x over the
// primary-reads baseline at the largest R, and the measured speedup sits
// far above it.
func TestReadScaleShape(t *testing.T) {
	rep, err := ReadScaleSweep(Params{Ops: 400, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	base := rep.SpeedupAtMaxR["NICEKV"]
	harm := rep.SpeedupAtMaxR["NICEKV+harmonia"]
	if base != 1 {
		t.Errorf("baseline speedup = %.2f, want 1", base)
	}
	if harm < 2 {
		t.Errorf("harmonia read-only speedup at R=%d is %.2fx, want >= 2x",
			rep.Replicas[len(rep.Replicas)-1], harm)
	}
	// Replica-routing evidence: the harmonia cells must show non-primary
	// serves and switch rewrites, and only the harmonia cells.
	for _, c := range rep.Cells {
		if c.System == "NICEKV+harmonia" && c.R > 1 && c.PutFrac == 0 {
			if c.ServedReplica == 0 || c.Routed == 0 {
				t.Errorf("harmonia R=%d cell shows no replica routing: %+v", c.R, c)
			}
		}
		if c.System != "NICEKV+harmonia" && (c.Routed != 0 || c.Fallbacks != 0) {
			t.Errorf("%s cell has harmonia counters: %+v", c.System, c)
		}
	}
}

// TestReadScaleDeterminism: the sweep is a simulation — same params,
// same cells, bit for bit, sequential or parallel.
func TestReadScaleDeterminism(t *testing.T) {
	pr := Params{Ops: 200, Seed: 7}
	a, err := ReadScaleSweep(pr)
	if err != nil {
		t.Fatal(err)
	}
	pr.Seq = true
	b, err := ReadScaleSweep(pr)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Errorf("cell %d diverged:\n  parallel:   %+v\n  sequential: %+v",
				i, a.Cells[i], b.Cells[i])
		}
	}
}
