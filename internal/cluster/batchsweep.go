package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The batchsweep experiment characterizes the end-to-end batching stack
// (DESIGN.md §16): client-side MultiPut/MultiGet wire batching, the
// primaries' per-partition put accumulator, duplicate-get coalescing,
// and WAL group commit. The grid is batch size x fsync-coalescing x
// system; batch=1 with group commit off is the bit-identical legacy
// path, so every other cell reads as a delta against it. The headline
// number is the durable arm: per-op fsyncs serialize on each node's
// disk, so batching the commit pipeline and coalescing the fsyncs is
// where the write path has the most to recover. A heavytraffic arm
// drives the durable engine with a 10^5-virtual-client open-loop fleet
// issuing batched gets.

// BatchSizes is the end-to-end batching-degree axis: ops per MultiPut /
// MultiGet, and (scaled) the server-side accumulator cap.
var BatchSizes = []int{1, 4, 16}

// batchSweepSystems is the system axis.
var batchSweepSystems = []string{"NICEKV", "NICEKV+LB", "NICEKV+LB+durable"}

const (
	batchSweepNodes   = 6
	batchSweepClients = 16
	batchSweepValue   = 512
	batchSweepHotKeys = 64
)

// BatchCell is one (system, batch, group-commit) measurement.
type BatchCell struct {
	System      string `json:"system"`
	Batch       int    `json:"batch"`
	GroupCommit bool   `json:"group_commit"`

	PutTput      float64 `json:"puts_per_sec"`
	PutP50Micros float64 `json:"put_p50_us"`
	PutP99Micros float64 `json:"put_p99_us"`
	GetTput      float64 `json:"gets_per_sec"`
	GetP50Micros float64 `json:"get_p50_us"`
	GetP99Micros float64 `json:"get_p99_us"`

	// Server-side batching telemetry.
	BatchCommits  int64   `json:"batch_commits,omitempty"`
	MeanPutBatch  float64 `json:"mean_put_batch,omitempty"`
	GetsCoalesced int64   `json:"gets_coalesced,omitempty"`

	// Storage-engine telemetry (durable arm only).
	WALAppends     int64   `json:"wal_appends,omitempty"`
	Fsyncs         int64   `json:"fsyncs,omitempty"`
	CoalescedSyncs int64   `json:"coalesced_fsyncs,omitempty"`
	MeanSyncBatch  float64 `json:"mean_sync_batch,omitempty"`
}

// BatchReport is the BENCH_batch.json payload.
type BatchReport struct {
	Nodes        int           `json:"nodes"`
	Clients      int           `json:"clients"`
	ValueSize    int           `json:"value_size"`
	OpsPerClient int           `json:"ops_per_client"`
	Cells        []BatchCell   `json:"cells"`
	Heavy        []TrafficCell `json:"heavytraffic"`
	// DurableSpeedup is the best durable cell's put throughput over the
	// durable per-op-fsync baseline (batch=1, group commit off).
	DurableSpeedup float64 `json:"durable_put_speedup"`
	// DeterminismOK records the recheck: the baseline durable cell re-run
	// under the same seed must reproduce its counters bit-identically.
	DeterminismOK bool `json:"determinism_ok"`
}

// batchGrid enumerates the grid. Group commit is a durable-engine knob,
// so the legacy arms run only the off column instead of duplicating
// cells that cannot differ.
func batchGrid() []BatchCell {
	var grid []BatchCell
	for _, sys := range batchSweepSystems {
		for _, b := range BatchSizes {
			grid = append(grid, BatchCell{System: sys, Batch: b})
			if sys == "NICEKV+LB+durable" {
				grid = append(grid, BatchCell{System: sys, Batch: b, GroupCommit: true})
			}
		}
	}
	return grid
}

// batchSweepOpts builds one cell's deployment.
func batchSweepOpts(cell BatchCell, seed int64) (Options, error) {
	opts := DefaultOptions()
	opts.Seed = seed
	opts.Nodes = batchSweepNodes
	opts.Clients = batchSweepClients
	// Keep the cells disk-bound, not CPU-bound (as the heavytraffic sweep
	// does): the default 100us/op CPU charge admits at most one request
	// per disk-read time, which would serialize the very co-arrivals the
	// batching stack exists to exploit.
	opts.CPUPerOp = 10 * time.Microsecond
	switch cell.System {
	case "NICEKV":
	case "NICEKV+LB":
		opts.LoadBalance = true
	case "NICEKV+LB+durable":
		opts.LoadBalance = true
		opts.DurableStore = true
		// Budget under even the hot set so the measured phase is disk-bound
		// on both sides: puts queue on WAL writes (what the accumulator and
		// group commit recover) and hot-set gets keep faulting in from disk
		// (the window duplicate-get coalescing collapses — memory-tier hits
		// are free and need no coalescing).
		opts.StoreMemoryBudget = 8 << 10
	default:
		return opts, fmt.Errorf("cluster: unknown batchsweep system %q", cell.System)
	}
	if cell.GroupCommit {
		opts.GroupCommit = true
		opts.MaxSyncDelay = 20 * time.Microsecond
	}
	if cell.Batch > 1 {
		// Batch > 1 arms the whole server-side stack alongside the client
		// API: the primaries' commit accumulator (sized past the client
		// batch so co-arriving clients share a drain) and get coalescing.
		// The linger window scales with the batch degree and must span a
		// few disk-write times (80us each): phase-one WAL appends serialize
		// on the shared per-node disk, so co-issued puts reach their commit
		// points spread apart by roughly the disk service time.
		opts.PutBatchWindow = time.Duration(cell.Batch) * 25 * time.Microsecond
		opts.PutBatchMax = 4 * cell.Batch
		opts.CoalesceGets = true
	}
	return opts, nil
}

// runBatchCell drives one cell: a closed-loop put storm (every client
// writes its own key range, MultiPut batches of cell.Batch), then a
// zipfian-hot get storm (MultiGet batches against a shared hot set).
func runBatchCell(pr Params, seed int64, cell BatchCell) (BatchCell, error) {
	opts, err := batchSweepOpts(cell, seed)
	if err != nil {
		return cell, err
	}
	d := NewNICE(opts)
	defer d.Close()
	if err := d.Settle(); err != nil {
		return cell, err
	}

	perClient := pr.Ops
	if perClient < cell.Batch {
		perClient = cell.Batch
	}
	key := func(c, i int) string { return fmt.Sprintf("batch%d-%d", c, i) }

	// Put storm: closed-loop, concurrent across the real clients — the
	// concurrency is what gives the accumulator and group commit
	// something to coalesce. Distinct per-client keys keep the protocol
	// free of lock conflicts, so the cell measures batching, not
	// contention.
	var putHist, getHist metrics.Histogram
	var opErr error
	start := d.Sim.Now()
	g := sim.NewGroup(d.Sim)
	for c := range d.Clients {
		c := c
		g.Add(1)
		d.Sim.Spawn(fmt.Sprintf("batch-put%d", c), func(p *sim.Proc) {
			defer g.Done()
			for i := 0; i < perClient; i += cell.Batch {
				if cell.Batch == 1 {
					res, err := d.Clients[c].Put(p, key(c, i), "v", batchSweepValue)
					if err != nil {
						opErr = err
						return
					}
					putHist.Add(res.Latency)
					continue
				}
				ops := make([]core.PutOp, 0, cell.Batch)
				for j := i; j < i+cell.Batch && j < perClient; j++ {
					ops = append(ops, core.PutOp{Key: key(c, j), Value: "v", Size: batchSweepValue})
				}
				results, errs := d.Clients[c].MultiPut(p, ops)
				for oi := range results {
					if errs[oi] != nil {
						opErr = errs[oi]
						return
					}
					putHist.Add(results[oi].Latency)
				}
			}
		})
	}
	d.Sim.Spawn("batch-put-join", func(p *sim.Proc) { g.Wait(p); d.Sim.Stop() })
	if err := d.Sim.Run(); err != nil {
		return cell, err
	}
	if opErr != nil {
		return cell, opErr
	}
	if elapsed := (d.Sim.Now() - start).Seconds(); elapsed > 0 {
		cell.PutTput = float64(len(d.Clients)*perClient) / elapsed
	}
	cell.PutP50Micros = putHist.Percentile(50) * 1e6
	cell.PutP99Micros = putHist.Percentile(99) * 1e6

	// Get storm: every client reads the zipfian head of client 0's key
	// range, so concurrent same-key reads pile onto the same nodes —
	// exactly the thundering herd get coalescing exists to absorb.
	hot := batchSweepHotKeys
	if hot > perClient {
		hot = perClient
	}
	start = d.Sim.Now()
	gets := 0
	g = sim.NewGroup(d.Sim)
	for c := range d.Clients {
		c := c
		chooser := workload.NewZipfian(hot)
		rng := rand.New(rand.NewSource(seed + 3000*int64(c+1)))
		g.Add(1)
		d.Sim.Spawn(fmt.Sprintf("batch-get%d", c), func(p *sim.Proc) {
			defer g.Done()
			for i := 0; i < perClient; i += cell.Batch {
				if cell.Batch == 1 {
					res, err := d.Clients[c].Get(p, key(0, chooser.Next(rng)))
					if err != nil {
						opErr = err
						return
					}
					getHist.Add(res.Latency)
					continue
				}
				keys := make([]string, 0, cell.Batch)
				for j := i; j < i+cell.Batch && j < perClient; j++ {
					keys = append(keys, key(0, chooser.Next(rng)))
				}
				results, errs := d.Clients[c].MultiGet(p, keys)
				for oi := range results {
					if errs[oi] != nil {
						opErr = errs[oi]
						return
					}
					getHist.Add(results[oi].Latency)
				}
			}
			gets += perClient
		})
	}
	d.Sim.Spawn("batch-get-join", func(p *sim.Proc) { g.Wait(p); d.Sim.Stop() })
	if err := d.Sim.Run(); err != nil {
		return cell, err
	}
	if opErr != nil {
		return cell, opErr
	}
	if elapsed := (d.Sim.Now() - start).Seconds(); elapsed > 0 {
		cell.GetTput = float64(gets) / elapsed
	}
	cell.GetP50Micros = getHist.Percentile(50) * 1e6
	cell.GetP99Micros = getHist.Percentile(99) * 1e6

	var batched int64
	for _, n := range d.Nodes {
		st := n.Stats()
		cell.BatchCommits += st.BatchCommits
		batched += st.BatchedPuts
		cell.GetsCoalesced += st.GetsCoalesced
	}
	if cell.BatchCommits > 0 {
		cell.MeanPutBatch = float64(batched) / float64(cell.BatchCommits)
	}
	sc := d.StorageCounters()
	cell.WALAppends = sc.WALAppends
	cell.Fsyncs = sc.Fsyncs
	cell.CoalescedSyncs = sc.CoalescedSyncs
	if sc.Fsyncs > 0 {
		cell.MeanSyncBatch = float64(sc.FsyncedRecords) / float64(sc.Fsyncs)
	}
	return cell, nil
}

// BatchSweep runs the grid on the RunCells worker pool, re-runs the
// durable baseline cell to recheck determinism, and appends the
// heavytraffic arm: heavyClients virtual clients issuing batched gets
// against a durable group-commit deployment.
func BatchSweep(pr Params, heavyClients int) (*BatchReport, error) {
	grid := batchGrid()
	rep := &BatchReport{
		Nodes:        batchSweepNodes,
		Clients:      batchSweepClients,
		ValueSize:    batchSweepValue,
		OpsPerClient: pr.Ops,
		Cells:        make([]BatchCell, len(grid)),
	}
	err := RunCells(pr, len(grid), func(i int, seed int64) error {
		c, cerr := runBatchCell(pr, seed, grid[i])
		rep.Cells[i] = c
		return cerr
	})
	if err != nil {
		return nil, err
	}

	// Headline ratio: best durable put throughput over the durable
	// per-op-fsync baseline.
	var base, best float64
	var baseIdx = -1
	for i, c := range rep.Cells {
		if c.System != "NICEKV+LB+durable" {
			continue
		}
		if c.Batch == 1 && !c.GroupCommit {
			base = c.PutTput
			baseIdx = i
		}
		if c.PutTput > best {
			best = c.PutTput
		}
	}
	if base > 0 {
		rep.DurableSpeedup = best / base
	}

	// Determinism recheck: the same cell under the same seed must
	// reproduce every number bit-identically — batching must not have
	// introduced scheduling nondeterminism.
	if baseIdx >= 0 {
		again, err := runBatchCell(pr, DeriveSeed(pr.Seed, baseIdx), grid[baseIdx])
		if err != nil {
			return nil, err
		}
		rep.DeterminismOK = again == rep.Cells[baseIdx]
	}

	if heavyClients <= 0 {
		heavyClients = 100_000
	}
	hopts, err := heavyTrafficOptions("nicekv+lb", DeriveSeed(pr.Seed, len(grid)))
	if err != nil {
		return nil, err
	}
	hopts.DurableStore = true
	hopts.GroupCommit = true
	hopts.MaxSyncDelay = 20 * time.Microsecond
	hopts.StoreMemoryBudget = 512 << 10
	heavy, err := runTrafficCellBatched(hopts, "nicekv+lb+durable+batch", heavyClients, 60_000, 400*time.Millisecond, 16)
	if err != nil {
		return nil, err
	}
	rep.Heavy = append(rep.Heavy, heavy)
	return rep, nil
}
