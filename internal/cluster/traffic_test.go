package cluster

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestHeavyTrafficSmoke runs one small open-loop cell end to end: the
// fleet is virtual, but every request crosses the real leaf-spine fabric
// to a real node and back. The open-loop engine must sustain the offered
// rate with almost no timeouts at this easy operating point.
func TestHeavyTrafficSmoke(t *testing.T) {
	cell, err := RunHeavyTrafficCell("nicekv+lb", 2000, 7, 40_000, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cell: %+v", cell)
	if cell.Issued < 3000 {
		t.Fatalf("issued %d requests, want ~4000 at 40k req/s over 100ms", cell.Issued)
	}
	if cell.TimeoutFrac > 0.01 {
		t.Fatalf("timeout fraction %.3f, want <1%%", cell.TimeoutFrac)
	}
	if cell.Achieved < 0.8*cell.Offered || cell.Achieved > 1.15*cell.Offered {
		t.Fatalf("achieved %.0f req/s of %.0f offered", cell.Achieved, cell.Offered)
	}
	if cell.P50Micros <= 0 || cell.P99Micros < cell.P50Micros {
		t.Fatalf("implausible latency: p50=%.1fus p99=%.1fus", cell.P50Micros, cell.P99Micros)
	}
}

// TestHeavyTrafficCacheArm checks the +cache arm serves a visible share
// of the zipfian-skewed gets from the spine cache.
func TestHeavyTrafficCacheArm(t *testing.T) {
	cell, err := RunHeavyTrafficCell("nicekv+lb+cache", 2000, 7, 40_000, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cell: %+v", cell)
	if cell.TimeoutFrac > 0.01 {
		t.Fatalf("timeout fraction %.3f, want <1%%", cell.TimeoutFrac)
	}
	if cell.CacheHit <= 0 {
		t.Fatalf("cache arm saw no cache hits")
	}
}

// TestHeavyTrafficDeterminism: same seed, same cell, bit for bit.
func TestHeavyTrafficDeterminism(t *testing.T) {
	run := func() TrafficCell {
		c, err := RunHeavyTrafficCell("nicekv", 1000, 11, 20_000, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different cells:\n  %+v\n  %+v", a, b)
	}
}

// TestSynthSrcIPs checks the virtual source synthesis: every address in
// client space, division assignment i mod r, and offsets spread across
// each division's range rather than clustering at its base.
func TestSynthSrcIPs(t *testing.T) {
	const r = 3
	src := make([]netsim.IP, 4096)
	synthSrcIPs(src, r)
	space := netsim.MustParsePrefix("192.168.0.0/16")
	base := netsim.MustParseIP("192.168.0.0")
	// r=3 rounds up to 4 division slots of 2^14 addresses.
	const width = 1 << 14
	seenHigh := 0
	for i, ip := range src {
		if !space.Contains(ip) {
			t.Fatalf("client %d: %v outside client space", i, ip)
		}
		off := uint32(ip - base)
		if got := int(off / width); got != i%r {
			t.Fatalf("client %d: division %d, want %d", i, got, i%r)
		}
		if off%width >= width/2 {
			seenHigh++
		}
	}
	if seenHigh < len(src)/4 {
		t.Fatalf("offsets cluster low: only %d/%d in upper half of division range", seenHigh, len(src))
	}
}

// TestTrafficArrivalZeroAlloc is the §12 hot-path guarantee at scale: at
// 10^5 virtual clients with every storage node blackholed (so every
// request times out and recycles through the reaper, the worst case for
// bookkeeping), a steady-state measurement window allocates ~nothing per
// issued request. Mirrors BenchmarkFloodFanout's MemStats assertion.
func TestTrafficArrivalZeroAlloc(t *testing.T) {
	opts, err := heavyTrafficOptions("nicekv+lb", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Silence heartbeat-driven failure handling so downed nodes stay down
	// quietly instead of churning the controller.
	opts.Heartbeat = time.Hour
	d := NewNICELeafSpine(opts, 4)
	eng := NewTrafficEngine(d, TrafficOptions{
		Clients:  100_000,
		Rate:     200_000,
		Duration: time.Hour, // the test stops the clock, not the engine
		Seed:     3,
	})
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	for _, st := range d.Stacks {
		st.Host().SetDown(true)
	}
	d.Sim.Spawn("traffic-gen", func(p *sim.Proc) { eng.Run(p) })

	// Warm past one full timeout window so the slot slab, free list and
	// in-flight ring reach steady-state size and the reaper is
	// recycling. (The arrival calendar never allocates: it is intrusive
	// chains through flat arrays.)
	start := d.Sim.Now()
	d.Sim.RunUntil(start + sim.Time(600*time.Millisecond))
	issued0 := eng.issued
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	d.Sim.RunUntil(start + sim.Time(800*time.Millisecond))
	runtime.ReadMemStats(&m1)
	ops := eng.issued - issued0

	if ops < 30_000 {
		t.Fatalf("measurement window issued only %d requests", ops)
	}
	bytesPerOp := (m1.TotalAlloc - m0.TotalAlloc) / uint64(ops)
	t.Logf("%d requests, %d B total, %d B/op", ops, m1.TotalAlloc-m0.TotalAlloc, bytesPerOp)
	if bytesPerOp != 0 {
		t.Fatalf("arrival hot path allocates %d B/op, want 0", bytesPerOp)
	}
}
