package cluster

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// The §4.1 hot-standby metadata extension: the data path never depends
// on the controller, so a metadata failure is invisible to clients —
// and once the standby promotes itself, membership changes are handled
// again.

func TestStandbyTakeoverIsTransparentToDataPath(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.Standby = true
	opts.Heartbeat = ms(100)
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		c := d.Clients[0]
		if _, err := c.Put(p, "steady", "v1", 1024); err != nil {
			t.Errorf("put before meta failure: %v", err)
			return
		}
		// Kill the metadata host: puts and gets keep working (the data
		// path is entirely in the fabric + storage nodes).
		d.MetaHost.SetDown(true)
		for i := 0; i < 5; i++ {
			if _, err := c.Put(p, "steady", i, 1024); err != nil {
				t.Errorf("put during meta outage: %v", err)
				return
			}
			if res, err := c.Get(p, "steady"); err != nil || !res.Found {
				t.Errorf("get during meta outage: %+v %v", res, err)
				return
			}
		}
		// Wait for the watchdog: the standby must promote itself.
		p.Sleep(time.Second)
		if d.Standby.Promoted() == nil {
			t.Error("standby did not take over")
		}
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	d.Close()
}

func TestStandbyHandlesNodeFailureAfterTakeover(t *testing.T) {
	opts := DefaultOptions()
	opts.Nodes = 5
	opts.Standby = true
	opts.Heartbeat = ms(100)
	opts.OpTimeout = ms(400)
	opts.RetryWait = ms(300)
	d := NewNICE(opts)
	if err := d.Settle(); err != nil {
		t.Fatal(err)
	}
	const part = 0
	victim := d.Service.View(part).Replicas[1].Index
	keys := d.keysInPartition(part, 8)

	d.Sim.Spawn("driver", func(p *sim.Proc) {
		defer d.Sim.Stop()
		c := d.Clients[0]
		for _, k := range keys[:4] {
			if _, err := c.Put(p, k, "v", 1024); err != nil {
				t.Errorf("seed: %v", err)
				return
			}
		}
		// Lose the metadata service, promote the standby.
		d.MetaHost.SetDown(true)
		p.Sleep(time.Second)
		svc := d.Standby.Promoted()
		if svc == nil {
			t.Error("standby did not take over")
			return
		}
		// The promoted service mirrors the pre-failure views.
		v := svc.View(part)
		if len(v.Replicas) != 3 {
			t.Errorf("promoted service lost view state: %+v", v)
		}
		// Now a storage node fails. Heartbeats (still addressed to the
		// old metadata IP) reach the promoted standby via the takeover
		// rule; it must install a handoff and keep puts available.
		d.Nodes[victim].Crash()
		p.Sleep(time.Second)
		v = svc.View(part)
		if v.HasReplica(victim) {
			t.Error("promoted service did not process the node failure")
		}
		if v.Handoff == nil {
			t.Error("promoted service installed no handoff")
		}
		for _, k := range keys[4:] {
			if _, err := c.Put(p, k, "v", 1024); err != nil {
				t.Errorf("put after failure under standby: %v", err)
				return
			}
		}
	})
	if err := d.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	d.Close()
}
