package cluster

import (
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// TestChaosSmoke is the CI-sized chaos sweep: a few fixed-seed schedules
// per system, zero invariant violations expected. The full experiment
// (`nicebench -experiment chaos`) runs 50 schedules per system; this
// keeps the same machinery honest under -race on every push.
func TestChaosSmoke(t *testing.T) {
	const schedules = 4
	rep, err := RunChaos(Params{Seed: 42}, schedules, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Violating() {
		t.Errorf("violations, repro: %s", c.Repro())
		for _, v := range c.Violations {
			t.Logf("    %s", v)
		}
	}
	if !rep.DeterminismOK {
		t.Errorf("determinism recheck failed: %v", rep.Mismatches)
	}
	for i := range rep.Cells {
		if rep.Cells[i].Ops == 0 {
			t.Errorf("cell %d (%s) recorded no operations", i, rep.Cells[i].Repro())
		}
	}
}

// TestChaosDeterminism: the same (system, schedule) cell must replay to
// an identical history, and the parallel sweep must agree cell-by-cell
// with the sequential one.
func TestChaosDeterminism(t *testing.T) {
	sys := chaosSystems()[0]
	sched := faultinject.Generate(DeriveSeed(7, 3), chaosGenConfig(sys, 0))
	a, err := runChaosCell(sys, sched)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runChaosCell(sys, sched)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash || a.Ops != b.Ops || a.Failed != b.Failed {
		t.Fatalf("same seed diverged: ops %d/%d failed %d/%d hash %x/%x",
			a.Ops, b.Ops, a.Failed, b.Failed, a.Hash, b.Hash)
	}

	seq, err := RunChaos(Params{Seed: 11, Seq: true}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunChaos(Params{Seed: 11}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Cells {
		if seq.Cells[i].Hash != par.Cells[i].Hash {
			t.Errorf("cell %d: sequential hash %x != parallel hash %x (%s)",
				i, seq.Cells[i].Hash, par.Cells[i].Hash, seq.Cells[i].Repro())
		}
	}
}

// TestChaosReplayRoundTrip: the repro line a violating (or any) cell
// prints must replay to the exact same execution.
func TestChaosReplayRoundTrip(t *testing.T) {
	sys := chaosSystems()[2] // quorum: the most failure-sensitive config
	sched := faultinject.Generate(DeriveSeed(5, 1), chaosGenConfig(sys, 0))
	orig, err := runChaosCell(sys, sched)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := ReplayChaos(orig.Repro())
	if err != nil {
		t.Fatalf("ReplayChaos(%q): %v", orig.Repro(), err)
	}
	if replayed.Hash != orig.Hash || replayed.Ops != orig.Ops {
		t.Fatalf("replay diverged: ops %d/%d hash %x/%x",
			orig.Ops, replayed.Ops, orig.Hash, replayed.Hash)
	}

	if _, err := ReplayChaos("not a repro line"); err == nil {
		t.Error("malformed repro accepted")
	}
	if _, err := ReplayChaos("NOSYS :: seed=1"); err == nil {
		t.Error("unknown system accepted")
	}
}

// TestChaosCatchesInjectedViolation plants a real bug — the switch cache
// stops being invalidated on puts (probeDropInvalidate) — and demands
// the checker catch the resulting stale cache hits and print a usable
// repro. This is the end-to-end proof that a silent chaos sweep means
// something.
func TestChaosCatchesInjectedViolation(t *testing.T) {
	probeDropInvalidate = true
	defer func() { probeDropInvalidate = false }()
	var sys chaosSystem
	for _, s := range chaosSystems() {
		if s.name == "NICEKV+cache" {
			sys = s
		}
	}
	if sys.name == "" {
		t.Fatal("cache system missing from chaosSystems")
	}
	// No faults needed: the shared hot keys get cached within a few
	// gets, and the next put leaves the stale entry in the switch.
	cell, err := runChaosCell(sys, faultinject.Schedule{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(cell.Violations) == 0 {
		t.Fatal("checker missed the injected stale-cache bug")
	}
	stale := false
	for _, v := range cell.Violations {
		if v.Invariant == "stale-read" {
			stale = true
		}
	}
	if !stale {
		t.Errorf("no stale-read among violations: %v", cell.Violations)
	}
	if !strings.HasPrefix(cell.Repro(), "NICEKV+cache :: seed=99") {
		t.Errorf("unprintable repro: %q", cell.Repro())
	}
}
