package controller

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/openflow"
)

// arpQuiet is how long the controller suppresses repeat ARPs for the same
// address ("a list of recently ARPed addresses to avoid flooding", §5).
const arpQuiet = 100 * time.Millisecond

// maxPendingPerAddr bounds the controller's packet buffer per unresolved
// address.
const maxPendingPerAddr = 64

// PacketIn implements openflow.ControllerHandler: the layer-3 learning
// switch of §5. Virtual addresses are mapped eagerly at Start, so a
// PacketIn means either an ARP reply to learn from, or a packet for a
// physical address the controller has not located yet — those are
// buffered while an ARP request is broadcast.
func (svc *Service) PacketIn(dp *openflow.Datapath, pkt *netsim.Packet, inPort int) {
	// A punted packet is the controller's to dispose: every branch below
	// either buffers it in svc.pending or recycles it on the way out.
	net := dp.Switch().Network()
	if pkt.Proto == netsim.ProtoARP {
		if arp, ok := pkt.Payload.(*netsim.ARPPayload); ok && arp.Op == netsim.ARPReply {
			svc.learn(arp.SenderIP, arp.Sender)
		}
		net.RecyclePacket(pkt)
		return
	}
	// A vnode address: install (or refresh) that partition's vring
	// mapping and forward this packet along the unicast path. Multicast
	// first-packets are simply dropped here — the reliable multicast
	// transport retransmits within its RTO, by which time the rules and
	// groups have landed (§5 mapping service).
	if part, ok := svc.cfg.Unicast.PartitionOfAddr(pkt.DstIP); ok {
		svc.installPartition(part)
		// A fully collapsed partition (every replica failed) has no
		// primary to forward to: the packet is dropped and the client
		// retries until an operator or a rejoin restores the view.
		if v := svc.views[part]; len(v.Replicas) > 0 {
			primary := v.Primary()
			if port, ok := svc.topo.PortToward(dp, primary.IP); ok {
				out := pkt.Clone()
				out.DstIP = primary.IP
				out.DstMAC = primary.MAC
				dp.PacketOut(out, port)
			}
		}
		net.RecyclePacket(pkt)
		return
	}
	if part, ok := svc.cfg.Multicast.PartitionOfAddr(pkt.DstIP); ok {
		svc.installPartition(part)
		net.RecyclePacket(pkt)
		return
	}
	if loc, ok := svc.known[pkt.DstIP]; ok {
		// Location known but the rule had not landed when this packet hit
		// the table: forward it directly.
		if port, ok := svc.topo.PortToward(dp, pkt.DstIP); ok {
			out := pkt.Clone()
			out.DstMAC = loc.mac
			dp.PacketOut(out, port)
		}
		net.RecyclePacket(pkt)
		return
	}
	// Unknown destination: buffer and resolve.
	q := svc.pending[pkt.DstIP]
	if len(q) < maxPendingPerAddr {
		svc.pending[pkt.DstIP] = append(q, pendingPkt{dp: dp, pkt: pkt, inPort: inPort})
	} else {
		net.RecyclePacket(pkt) // buffer full: this one is dropped
	}
	if last, ok := svc.arped[pkt.DstIP]; ok && svc.s.Now()-last < arpQuiet {
		return
	}
	svc.arped[pkt.DstIP] = svc.s.Now()
	svc.broadcastARP(pkt.DstIP)
}

// broadcastARP floods an ARP request for ip from the metadata host.
func (svc *Service) broadcastARP(ip netsim.IP) {
	for _, dp := range svc.topo.AllDatapaths() {
		req := &netsim.Packet{
			SrcIP:   svc.stack.IP(),
			SrcMAC:  svc.stack.Host().MAC(),
			DstIP:   ip,
			DstMAC:  netsim.BroadcastMAC,
			Proto:   netsim.ProtoARP,
			Size:    netsim.ARPPacketSize,
			Payload: &netsim.ARPPayload{Op: netsim.ARPRequest, TargetIP: ip, SenderIP: svc.stack.IP()},
		}
		dp.PacketOut(req, openflow.FloodPort)
	}
}

// learn records a discovered host, installs its forwarding rules, and
// flushes packets buffered for it.
func (svc *Service) learn(ip netsim.IP, mac netsim.MAC) {
	if _, ok := svc.known[ip]; !ok {
		svc.known[ip] = hostLoc{mac: mac}
		svc.installPhysRules(ip, mac)
	}
	buffered := svc.pending[ip]
	delete(svc.pending, ip)
	for _, pp := range buffered {
		if port, ok := svc.topo.PortToward(pp.dp, ip); ok {
			out := pp.pkt.Clone()
			out.DstMAC = mac
			pp.dp.PacketOut(out, port)
		}
		pp.dp.Switch().Network().RecyclePacket(pp.pkt)
	}
}
