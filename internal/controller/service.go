package controller

import (
	"fmt"
	"time"

	"repro/internal/harmonia"
	"repro/internal/netsim"
	"repro/internal/openflow"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Rule priorities, highest wins.
const (
	prioARP     = 90 // punt ARP to the controller
	prioLB      = 60 // per-division load-balancing rules
	prioMapping = 50 // vring mapping and group-direct rules
	prioPhys    = 10 // physical host forwarding
)

// Config parameterizes the metadata service.
type Config struct {
	// Placement is the home layout: N nodes, replication level R.
	Placement ring.Placement
	// Unicast and Multicast are the two client-visible virtual rings.
	Unicast, Multicast ring.VRing
	// GroupBase is the multicast group address pool: partition p uses
	// GroupBase+p.
	GroupBase netsim.IP
	// HeartbeatEvery is the node heartbeat period (detector granularity).
	HeartbeatEvery sim.Time
	// MissedHeartbeats is how many periods of silence declare a node
	// failed (the paper uses three).
	MissedHeartbeats int
	// LoadBalance enables per-source-division get steering (§4.5).
	LoadBalance bool
	// ClientSpace is the client source-address space carved into
	// divisions when LoadBalance is set.
	ClientSpace netsim.Prefix
	// CtrlPort is the metadata service's UDP port.
	CtrlPort uint16
	// StandbyIP/StandbyPort name the hot-standby metadata replica
	// (§4.1); zero disables replication.
	StandbyIP   netsim.IP
	StandbyPort uint16
	// LazyMapping defers vring rule installation until the first packet
	// for a partition punts to the controller (§5: "if the address is a
	// vnode address, update the switch to map the address"), instead of
	// installing every mapping at bootstrap. Combine with
	// MappingIdleTimeout to keep the flow table proportional to the
	// active working set.
	LazyMapping bool
	// MappingIdleTimeout expires unused vring rules (§2.2: rules "have
	// an expiry period that is set by the controller"); zero = never.
	MappingIdleTimeout sim.Time
	// DynamicLB enables the workload-informed division rebalancer (the
	// §8 future-work extension); requires LoadBalance.
	DynamicLB bool
	// RebalanceEvery is the flow-stats polling period of the rebalancer.
	RebalanceEvery sim.Time
	// RebalanceMinOps is the minimum per-partition request count in one
	// period before the rebalancer acts.
	RebalanceMinOps int
	// Store is the coordination-state backend (nil = a private
	// MemStore, today's behavior). The cluster harness shares one store
	// instance between the active controller and its standby so writer
	// generations stay monotonic across a takeover — that monotonicity
	// is the split-brain fence.
	Store StateStore
}

// DefaultConfig fills the timing knobs the paper implies.
func DefaultConfig() Config {
	return Config{
		HeartbeatEvery:   500 * time.Millisecond,
		MissedHeartbeats: 3,
		CtrlPort:         9000,
		StandbyPort:      9090,
		RebalanceEvery:   2 * time.Second,
		RebalanceMinOps:  50,
	}
}

type nodeStatus int

const (
	nodeUp nodeStatus = iota
	nodeDown
	nodeRecovering
)

type nodeState struct {
	addr   NodeAddr
	status nodeStatus
	lastHB sim.Time
	load   LoadStats
}

// Stats counts control-plane work for the scalability experiments.
type Stats struct {
	NodeMsgs     int64 // membership messages sent to storage nodes
	Failures     int64
	Rejoins      int64
	Recoveries   int64
	PeerReports  int64
	HBReceived   int64
	Rebalances   int64 // dynamic-LB assignment changes
	StatsPolls   int64 // flow-stats requests issued by the rebalancer
	FencedWrites int64 // state writes rejected because a newer controller generation owns the store
	RulesPerPart int   // snapshot: forwarding entries for one partition
}

// Service is the metadata service: membership module + SDN controller.
type Service struct {
	cfg   Config
	s     *sim.Simulator
	stack *transport.Stack
	topo  Topology
	ctrl  *transport.UDPSocket
	nodes []*nodeState
	views []*PartitionView
	stats Stats
	trace func(format string, args ...any) // optional event log

	// store is the coordination-state backend; gen is this instance's
	// writer generation (acquired at Start). All state writes and
	// switch mutations carry gen so a fenced zombie is rejected both at
	// the store and at the datapaths.
	store StateStore
	gen   uint64
	// restoredCache is the replicated switch-cache state a chain-backed
	// takeover read from the store (introspection for tests).
	restoredCache []CacheState

	// lastHolder remembers, per collapsed partition, the final replica
	// that was removed when the view emptied. Only that node's return
	// reseats the partition: as the last primary standing it held every
	// acknowledged write, while any other rejoiner's resurrected store
	// may predate acks the deposed holder issued — reseating one of
	// those would serve (and version against) lost state. Local soft
	// state: a standby takeover forgets it, leaving the collapsed
	// partition to the operator, which is the conservative outcome.
	lastHolder map[int]NodeAddr

	// learning-switch state (§5 mapping service)
	known   map[netsim.IP]hostLoc
	pending map[netsim.IP][]pendingPkt
	arped   map[netsim.IP]sim.Time

	// dynamic load-balancing state (nil when disabled)
	lb map[int]*lbState

	// hot-key cache detector (nil unless EnableCache was called)
	cacheMgr *CacheManager

	// in-switch dirty-set stage (nil unless EnableHarmonia was called)
	harmonia *harmonia.DirtySet
}

type hostLoc struct {
	mac netsim.MAC
	// port per datapath is resolved through the topology; mac is what
	// the learning path discovers.
}

type pendingPkt struct {
	dp     *openflow.Datapath
	pkt    *netsim.Packet
	inPort int
}

// New builds the service on the metadata host's transport stack. nodes
// lists every storage node in ring order (index i = ring position i).
func New(stack *transport.Stack, topo Topology, cfg Config, nodes []NodeAddr) *Service {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 500 * time.Millisecond
	}
	if cfg.MissedHeartbeats <= 0 {
		cfg.MissedHeartbeats = 3
	}
	svc := &Service{
		cfg:        cfg,
		s:          stack.Sim(),
		stack:      stack,
		topo:       topo,
		known:      make(map[netsim.IP]hostLoc),
		pending:    make(map[netsim.IP][]pendingPkt),
		arped:      make(map[netsim.IP]sim.Time),
		lastHolder: make(map[int]NodeAddr),
	}
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
		svc.cfg.Store = cfg.Store
	}
	svc.store = cfg.Store
	for _, a := range nodes {
		svc.nodes = append(svc.nodes, &nodeState{addr: a, status: nodeUp})
	}
	svc.views = make([]*PartitionView, cfg.Placement.N)
	for p := 0; p < cfg.Placement.N; p++ {
		v := &PartitionView{Partition: p, Epoch: 1, GroupIP: cfg.GroupBase.Add(uint32(p))}
		for _, idx := range cfg.Placement.Replicas(p) {
			v.Replicas = append(v.Replicas, nodes[idx])
		}
		svc.views[p] = v
	}
	return svc
}

// SetTrace installs an event logger (experiments print the Fig. 11
// timeline from it).
func (svc *Service) SetTrace(fn func(format string, args ...any)) { svc.trace = fn }

func (svc *Service) tracef(format string, args ...any) {
	if svc.trace != nil {
		svc.trace(format, args...)
	}
}

// Stats returns control-plane counters.
func (svc *Service) Stats() Stats {
	st := svc.stats
	st.RulesPerPart = svc.rulesPerPartition()
	return st
}

// View returns the current view of partition p (the controller's copy;
// callers must not mutate it).
func (svc *Service) View(p int) *PartitionView { return svc.views[p] }

// Gen returns this instance's writer generation (0 before Start).
func (svc *Service) Gen() uint64 { return svc.gen }

// RestoredCache returns the replicated switch-cache install records a
// chain-backed takeover read from the state store (nil otherwise).
func (svc *Service) RestoredCache() []CacheState { return svc.restoredCache }

// NodeAddrOf returns the address record of node idx.
func (svc *Service) NodeAddrOf(idx int) NodeAddr { return svc.nodes[idx].addr }

// RegisterHost teaches the controller a host's location eagerly (the
// harness does this for infrastructure hosts; clients may instead be
// learned through ARP, see learning.go).
func (svc *Service) RegisterHost(ip netsim.IP, mac netsim.MAC) {
	svc.known[ip] = hostLoc{mac: mac}
	svc.installPhysRules(ip, mac)
}

// Start installs the initial rules and spawns the membership procs.
func (svc *Service) Start() {
	svc.gen = svc.store.Acquire()
	for _, v := range svc.views {
		v.Gen = svc.gen
	}
	svc.ctrl = svc.stack.MustBindUDP(svc.cfg.CtrlPort)
	for _, dp := range svc.topo.AllDatapaths() {
		dp.SetController(svc)
		dp.RaiseWriterFence(svc.gen)
		// All ARP traffic goes to the controller: it is both the ARP
		// requester (host discovery) and the consumer of replies.
		arpMatch := openflow.NewMatch()
		arpMatch.Proto = netsim.ProtoARP
		dp.AddFlow(openflow.FlowEntry{
			Priority: prioARP,
			Match:    arpMatch,
			Actions:  []openflow.Action{openflow.ToController{}},
			Cookie:   "arp-punt",
		})
	}
	svc.RegisterHost(svc.stack.IP(), svc.stack.Host().MAC())
	for _, n := range svc.nodes {
		svc.RegisterHost(n.addr.IP, n.addr.MAC)
		n.lastHB = svc.s.Now()
	}
	for p := range svc.views {
		if !svc.cfg.LazyMapping {
			svc.installPartition(p)
		}
		svc.announce(svc.views[p], -1)
	}
	svc.startStandbySync()
	svc.startDynamicLB()
	svc.s.Spawn("metadata-listener", svc.listen)
	svc.s.Spawn("metadata-detector", svc.detect)
}

// listen handles node-to-controller messages.
func (svc *Service) listen(p *sim.Proc) {
	for {
		d, ok := svc.ctrl.Recv(p)
		if !ok {
			return
		}
		switch m := d.Data.(type) {
		case *Heartbeat:
			svc.stats.HBReceived++
			n := svc.nodes[m.Node]
			n.lastHB = svc.s.Now()
			n.load = m.Load
			switch n.status {
			case nodeDown:
				// A zombie: alive but marked failed (its RejoinRequest was
				// lost, or a failure verdict raced its restart). Its switch
				// rules are gone so it serves nothing; order it back through
				// the rejoin procedure rather than leaving it stranded.
				svc.sendToNode(n.addr, &RejoinOrder{}, ctrlMsgSize)
			case nodeUp:
				svc.resyncViews(m.Node, m.Epochs)
			}
		case *FailureReport:
			svc.stats.PeerReports++
			suspect := svc.nodes[m.Suspect]
			// Sanity-check the accusation against heartbeat freshness: a
			// node that reported in this period is alive; the reporter
			// likely raced a membership change.
			if suspect.status == nodeUp && svc.s.Now()-suspect.lastHB > svc.cfg.HeartbeatEvery {
				svc.tracef("%v: peer %d reported %d failed", svc.s.Now(), m.Reporter, m.Suspect)
				svc.fail(m.Suspect)
			}
		case *RejoinRequest:
			svc.handleRejoin(m.Node)
		case *ConsistentNotice:
			svc.handleConsistent(m.Node)
		case *CacheFetchReply:
			if svc.cacheMgr != nil {
				svc.cacheMgr.onFetchReply(m)
			}
		}
	}
}

// detect is the heartbeat watchdog: three missed heartbeats fail a node.
func (svc *Service) detect(p *sim.Proc) {
	limit := svc.cfg.HeartbeatEvery * sim.Time(svc.cfg.MissedHeartbeats)
	for {
		p.Sleep(svc.cfg.HeartbeatEvery)
		if svc.stack.Host().Down() {
			// A crashed metadata host computes nothing; when it returns
			// it must not act on heartbeats it could never have received.
			for _, n := range svc.nodes {
				n.lastHB = svc.s.Now()
			}
			continue
		}
		now := svc.s.Now()
		for _, n := range svc.nodes {
			if n.status == nodeUp && now-n.lastHB > limit {
				svc.tracef("%v: node %d missed %d heartbeats", now, n.addr.Index, svc.cfg.MissedHeartbeats)
				svc.fail(n.addr.Index)
			}
		}
	}
}

// sendToNode pushes a control message to a storage node.
func (svc *Service) sendToNode(a NodeAddr, msg any, size int) {
	svc.stats.NodeMsgs++
	svc.ctrl.SendTo(a.IP, a.CtrlPort, msg, size)
}

// barrierSend delivers msg to node a only after every group datapath
// has applied the mods submitted so far (Datapath.Barrier). Harmonia
// clusters need the fence on recovery kickoff messages: the recovering
// node starts its range sync the moment the message lands, and the sync
// only covers puts prepared before it if the node is already in the put
// multicast group — a sync racing ahead of a delayed group mod misses
// writes forever, and harmonia would later serve reads from that node.
// Without harmonia a recovering replica never serves reads, so the
// message goes out immediately and event timing is unchanged.
func (svc *Service) barrierSend(a NodeAddr, msg any, size int) {
	if svc.harmonia == nil {
		svc.sendToNode(a, msg, size)
		return
	}
	remaining := 0
	for _, dp := range svc.topo.GroupDatapaths() {
		if dp.WriterAllowed(svc.gen) {
			remaining++
		}
	}
	if remaining == 0 {
		svc.sendToNode(a, msg, size)
		return
	}
	for _, dp := range svc.topo.GroupDatapaths() {
		if !dp.WriterAllowed(svc.gen) {
			continue
		}
		dp.Barrier(func() {
			remaining--
			if remaining == 0 {
				svc.sendToNode(a, msg, size)
			}
		})
	}
}

// fail runs the §4.4 failure-hiding procedure for node idx.
func (svc *Service) fail(idx int) {
	n := svc.nodes[idx]
	if n.status == nodeDown {
		return
	}
	n.status = nodeDown
	svc.stats.Failures++
	for _, v := range svc.views {
		if len(v.Replicas) == 0 {
			continue // fully collapsed partition: operator territory
		}
		changed := false
		wasPrimary := v.Replicas[0].Index == idx
		// Remove the failed node wherever it appears.
		for i := 0; i < len(v.Replicas); i++ {
			if v.Replicas[i].Index == idx {
				v.Replicas = append(v.Replicas[:i], v.Replicas[i+1:]...)
				changed = true
				i--
			}
		}
		if v.IsRecovering(idx) {
			v.Recovering = removeAddr(v.Recovering, idx)
			changed = true
		}
		if !changed {
			continue
		}
		// Select a handoff node to restore the replica set (§4.4). With
		// R=1 the handoff is also the only — hence primary — replica.
		if h := svc.pickHandoff(v); h != nil {
			v.Replicas = append(v.Replicas, *h)
			v.Handoff = h
			svc.tracef("%v: partition %d handoff -> node %d", svc.s.Now(), v.Partition, h.Index)
		}
		if len(v.Replicas) == 0 {
			svc.lastHolder[v.Partition] = n.addr
			svc.tracef("%v: partition %d lost its last replica", svc.s.Now(), v.Partition)
			continue // nothing to install or announce until the holder returns
		}
		if wasPrimary {
			svc.tracef("%v: partition %d primary failed; promoting node %d",
				svc.s.Now(), v.Partition, v.Replicas[0].Index)
		}
		v.Epoch++
		svc.installPartition(v.Partition)
		svc.announce(v, idx)
	}
	// Replicate the status change even when no view mentioned the node
	// (announce covers the common case but not a no-view demotion).
	svc.store.WriteStatuses(svc.gen, svc.statusVector())
	svc.syncStandby(nil)
}

// removeAddr filters node idx out of a list, returning nil when the
// list empties so `== nil` health checks keep working.
func removeAddr(list []NodeAddr, idx int) []NodeAddr {
	var out []NodeAddr
	for _, a := range list {
		if a.Index != idx {
			out = append(out, a)
		}
	}
	return out
}

// pickHandoff returns the lowest-indexed up node outside the replica
// set, or nil when none exists.
func (svc *Service) pickHandoff(v *PartitionView) *NodeAddr {
	for _, n := range svc.nodes {
		if n.status != nodeUp {
			continue
		}
		if v.HasReplica(n.addr.Index) {
			continue
		}
		if v.IsRecovering(n.addr.Index) {
			continue
		}
		a := n.addr
		return &a
	}
	return nil
}

// announce distributes a changed view to its participants (O(R)
// messages regardless of cluster size), writes it through to the
// state store, and mirrors it to the standby. A store rejection means
// a newer controller generation has taken over: this instance is a
// fenced zombie and must not propagate the view at all.
func (svc *Service) announce(v *PartitionView, failed int) {
	v.Gen = svc.gen
	if !svc.store.WriteView(svc.gen, v) {
		svc.stats.FencedWrites++
		return
	}
	svc.store.WriteStatuses(svc.gen, svc.statusVector())
	svc.syncStandby(v)
	for _, r := range v.PutParticipants() {
		if v.Handoff != nil && r.Index == v.Handoff.Index {
			var failedAddr NodeAddr
			if failed >= 0 {
				failedAddr = svc.nodes[failed].addr
			}
			svc.sendToNode(r, &HandoffAssign{View: v.Clone(), Failed: failedAddr}, sizeOfView(v))
			continue
		}
		svc.sendToNode(r, &PartitionUpdate{View: v.Clone()}, sizeOfView(v))
	}
}

// resyncViews repairs a node whose membership state went stale — a
// PartitionUpdate lost on a faulty control path otherwise leaves the node
// serving under an obsolete replica set (or holding a view it was dropped
// from) forever. Every view whose authoritative epoch exceeds what the
// node reported is pushed again.
func (svc *Service) resyncViews(idx int, epochs map[int]uint64) {
	if epochs == nil {
		return // legacy heartbeat without view state
	}
	n := svc.nodes[idx]
	for _, v := range svc.views {
		reported := epochs[v.Partition]
		if reported >= v.Epoch {
			continue
		}
		serves := false
		for _, r := range v.PutParticipants() {
			if r.Index == idx {
				serves = true
				break
			}
		}
		switch {
		case serves && v.Handoff != nil && v.Handoff.Index == idx:
			svc.sendToNode(n.addr, &HandoffAssign{View: v.Clone()}, sizeOfView(v))
		case serves:
			svc.sendToNode(n.addr, &PartitionUpdate{View: v.Clone()}, sizeOfView(v))
		case reported > 0:
			// The node holds a stale view of a partition it no longer
			// serves; the fresh view makes it drop out cleanly.
			svc.sendToNode(n.addr, &PartitionUpdate{View: v.Clone()}, sizeOfView(v))
		}
	}
}

// handleRejoin makes a recovered node put-visible (phase one of §4.4
// node recovery) and tells it where to fetch what it missed. It is
// idempotent: a node retrying a lost RejoinRequest (status already
// Recovering) gets its RejoinInfo rebuilt and resent without a second
// round of epoch bumps.
func (svc *Service) handleRejoin(idx int) {
	n := svc.nodes[idx]
	switch n.status {
	case nodeUp:
		// Not a duplicate: a node that asks to rejoin while marked up
		// restarted (and lost its runtime state) inside the detection
		// window, or a promoted standby inherited a status vector that
		// missed the Recovering transition. Silently ignoring the
		// request would strand the node put-visible with its gets held
		// forever — and anything committed while it was dark would
		// never be replayed. Demote it like a detected failure, then
		// run the normal two-phase rejoin below.
		svc.tracef("%v: node %d rejoin request while marked up; demoting first", svc.s.Now(), idx)
		svc.fail(idx)
	case nodeRecovering:
		n.lastHB = svc.s.Now()
		info := &RejoinInfo{}
		for _, part := range svc.homePartitions(idx) {
			v := svc.views[part]
			if !v.IsRecovering(idx) {
				continue
			}
			info.Views = append(info.Views, v.Clone())
			var h NodeAddr
			if v.Handoff != nil {
				h = *v.Handoff
			}
			info.Handoffs = append(info.Handoffs, h)
		}
		svc.barrierSend(n.addr, info, ctrlMsgSize+len(info.Views)*32)
		return
	}
	n.status = nodeRecovering
	n.lastHB = svc.s.Now()
	svc.stats.Rejoins++
	svc.tracef("%v: node %d rejoining (put-visible)", svc.s.Now(), idx)

	info := &RejoinInfo{}
	for _, part := range svc.homePartitions(idx) {
		v := svc.views[part]
		if v.HasReplica(idx) || v.IsRecovering(idx) {
			continue // never left (failed before any view update?)
		}
		if len(v.Replicas) == 0 {
			// The partition collapsed — every member failed before a
			// handoff could stand in. Only the recorded last holder may
			// reseat it: it alone is known to hold every acknowledged
			// write. A different rejoiner (deposed earlier, store behind)
			// skips the partition — reseating it would ack fresh puts at
			// stale versions while the real holder is merely unreachable.
			lh, ok := svc.lastHolder[v.Partition]
			if !ok || lh.Index != idx {
				continue
			}
			delete(svc.lastHolder, v.Partition)
			v.Replicas = append(v.Replicas, n.addr)
			svc.tracef("%v: partition %d reseated on returning holder %d",
				svc.s.Now(), v.Partition, idx)
		} else {
			// Appending (not replacing) lets several nodes be mid-rejoin on
			// one partition when failures overlap; each completes on its own
			// ConsistentNotice.
			v.Recovering = append(v.Recovering, n.addr)
		}
		v.Epoch++
		svc.installPartition(part)
		svc.announce(v, -1)
		info.Views = append(info.Views, v.Clone())
		var h NodeAddr
		if v.Handoff != nil {
			h = *v.Handoff
		}
		info.Handoffs = append(info.Handoffs, h)
	}
	svc.barrierSend(n.addr, info, ctrlMsgSize+len(info.Views)*32)
	// The Recovering transition may have touched no view ("never left"
	// rejoins); replicate the status vector anyway so a takeover during
	// this window still knows the node is mid-rejoin.
	svc.store.WriteStatuses(svc.gen, svc.statusVector())
	svc.syncStandby(nil)
}

// handleConsistent completes phase two of either recovery or ring
// expansion: everywhere the node is marked Recovering it becomes a full
// (get-visible) replica, and any handoff standing in for it is released.
func (svc *Service) handleConsistent(idx int) {
	n := svc.nodes[idx]
	if n.status == nodeRecovering {
		n.status = nodeUp
		n.lastHB = svc.s.Now()
		svc.stats.Recoveries++
	}
	svc.tracef("%v: node %d consistent (get-visible)", svc.s.Now(), idx)

	for part, v := range svc.views {
		if !v.IsRecovering(idx) {
			continue
		}
		v.Recovering = removeAddr(v.Recovering, idx)
		// The stand-in keeps covering the partition until the last
		// rejoiner completes; releasing it on the first completion would
		// shrink the serving set while other members are still syncing.
		var released *NodeAddr
		if v.Handoff != nil && len(v.Recovering) == 0 {
			for i := range v.Replicas {
				if v.Replicas[i].Index == v.Handoff.Index {
					v.Replicas = append(v.Replicas[:i], v.Replicas[i+1:]...)
					break
				}
			}
			released = v.Handoff
			v.Handoff = nil
		}
		v.Replicas = append(v.Replicas, n.addr)
		v.Epoch++
		svc.installPartition(part)
		svc.announce(v, -1)
		if released != nil {
			svc.sendToNode(*released, &HandoffRelease{Partition: part}, ctrlMsgSize)
		}
	}
	// Status-only completions (no view still listed the node) must
	// reach the store and the mirror too, or a takeover would re-run a
	// finished recovery.
	svc.store.WriteStatuses(svc.gen, svc.statusVector())
	svc.syncStandby(nil)
}

// AddReplica permanently grows partition part's replica set with node
// idx (§4.4 ring re-configuration, §4.5 "when an administrator adds a
// new node to a replica set"): the node becomes put-visible at once,
// fetches the partition's keys from the primary, and turns get-visible
// on its ConsistentNotice — at which point the load-balancing divisions
// are recomputed over the larger set.
func (svc *Service) AddReplica(part, idx int) error {
	n := svc.nodes[idx]
	if n.status != nodeUp {
		return fmt.Errorf("controller: node %d is not up", idx)
	}
	v := svc.views[part]
	if v.HasReplica(idx) || v.IsRecovering(idx) {
		return fmt.Errorf("controller: node %d already serves partition %d", idx, part)
	}
	if len(v.Replicas) == 0 {
		return fmt.Errorf("controller: partition %d has no primary to expand from", part)
	}
	a := n.addr
	v.Recovering = append(v.Recovering, a)
	v.Epoch++
	svc.installPartition(part)
	svc.announce(v, -1)
	svc.barrierSend(a, &ExpandAssign{View: v.Clone(), Source: v.Primary()}, sizeOfView(v))
	svc.tracef("%v: node %d joining partition %d (put-visible)", svc.s.Now(), idx, part)
	return nil
}

// homePartitions returns the partitions node idx serves in the home
// placement.
func (svc *Service) homePartitions(idx int) []int {
	prim, sec := svc.cfg.Placement.PartitionsOf(idx)
	return append(prim, sec...)
}

// installPartition (re)installs every rule belonging to partition p:
// unicast mapping (with optional LB divisions), multicast mapping, the
// group-direct rule, and the group itself.
func (svc *Service) installPartition(p int) {
	v := svc.views[p]
	if len(v.Replicas) == 0 {
		// Fully collapsed partition (every member failed before a handoff
		// could be found): there is no primary to route to. Drop the
		// partition's mapping state so traffic punts to packet-in (and is
		// dropped there) instead of chasing a dead address.
		for _, dp := range svc.topo.MappingDatapaths() {
			if !dp.WriterAllowed(svc.gen) {
				continue
			}
			dp.RemoveCookie(fmt.Sprintf("uni-p%d.", p))
			dp.RemoveCookie(fmt.Sprintf("mc-p%d.", p))
		}
		return
	}
	uniPfx := svc.cfg.Unicast.SubgroupPrefix(p)
	mcPfx := svc.cfg.Multicast.SubgroupPrefix(p)

	// Multicast groups first (the mapping rules reference them): every
	// group datapath gets the loop-free replication plan the topology
	// computes for the current member set. Plan entry k uses group id
	// 64p+k; the fallback (AnyPort) entry is what vring mapping rules
	// jump to.
	memberIPs := make([]netsim.IP, 0, len(v.Replicas)+1)
	for _, r := range v.PutParticipants() {
		memberIPs = append(memberIPs, r.IP)
	}
	fallbackGid := make(map[*openflow.Datapath]openflow.GroupID)
	for _, dp := range svc.topo.GroupDatapaths() {
		if !dp.WriterAllowed(svc.gen) {
			continue // fenced: a promoted controller owns this switch now
		}
		dp.RemoveCookie(fmt.Sprintf("gd-p%d.", p))
		for k, pe := range svc.topo.MulticastPlan(dp, memberIPs) {
			if len(pe.Ports) == 0 {
				continue
			}
			gid := openflow.GroupID(p*64 + k)
			buckets := make([]openflow.Bucket, 0, len(pe.Ports))
			for _, port := range pe.Ports {
				buckets = append(buckets, openflow.Bucket{
					Actions: []openflow.Action{openflow.Output{Port: port}},
				})
			}
			dp.SetGroup(openflow.Group{ID: gid, Buckets: buckets})
			m := openflow.MatchDst(netsim.HostPrefix(v.GroupIP))
			m.InPort = pe.InPort
			prio := prioMapping
			if pe.InPort != openflow.AnyPort {
				prio += 2 // ingress-specific entries shadow the fallback
			}
			dp.AddFlow(openflow.FlowEntry{
				Priority: prio,
				Match:    m,
				Actions:  []openflow.Action{openflow.OutputGroup{Group: gid}},
				Cookie:   fmt.Sprintf("gd-p%d.k%d", p, k),
			})
			if pe.InPort == openflow.AnyPort {
				fallbackGid[dp] = gid
			}
		}
	}

	for _, dp := range svc.topo.MappingDatapaths() {
		if !dp.WriterAllowed(svc.gen) {
			continue
		}
		dp.RemoveCookie(fmt.Sprintf("uni-p%d.", p))
		dp.RemoveCookie(fmt.Sprintf("mc-p%d.", p))

		// Unicast: default route to the primary.
		primary := v.Primary()
		if port, ok := svc.topo.PortToward(dp, primary.IP); ok {
			dp.AddFlow(openflow.FlowEntry{
				Priority:    prioMapping,
				Match:       openflow.MatchDst(uniPfx),
				IdleTimeout: svc.cfg.MappingIdleTimeout,
				Actions: []openflow.Action{
					openflow.SetDstIP{IP: primary.IP},
					openflow.SetDstMAC{MAC: primary.MAC},
					openflow.Output{Port: port},
				},
				Cookie: fmt.Sprintf("uni-p%d.", p),
			})
		}
		// Load balancing: one higher-priority rule per client division.
		// Static mode uses R divisions bound 1:1 to replicas (§4.5); the
		// dynamic extension refines the space and maps divisions per the
		// rebalancer's assignment.
		if svc.cfg.LoadBalance && len(v.Replicas) > 1 {
			ndiv := svc.ndivFor(len(v.Replicas))
			assign := svc.divisionAssignment(p, ndiv, len(v.Replicas))
			for d, div := range svc.divisionsN(ndiv) {
				r := v.Replicas[assign[d]]
				port, ok := svc.topo.PortToward(dp, r.IP)
				if !ok {
					continue
				}
				m := openflow.MatchDst(uniPfx)
				m.SrcIP = div
				dp.AddFlow(openflow.FlowEntry{
					Priority:    prioLB,
					Match:       m,
					IdleTimeout: svc.cfg.MappingIdleTimeout,
					Actions: []openflow.Action{
						openflow.SetDstIP{IP: r.IP},
						openflow.SetDstMAC{MAC: r.MAC},
						openflow.Output{Port: port},
					},
					Cookie: fmt.Sprintf("uni-p%d.d%d", p, d),
				})
			}
		}

		// Multicast mapping: rewrite to the group address, then fan out
		// through the local fallback group, or send toward the fabric
		// core when this datapath holds no groups (client-edge OVS).
		actions := []openflow.Action{openflow.SetDstIP{IP: v.GroupIP}}
		if gid, ok := fallbackGid[dp]; ok {
			actions = append(actions, openflow.OutputGroup{Group: gid})
		} else if port, ok := svc.topo.PortToward(dp, v.GroupIP); ok {
			actions = append(actions, openflow.Output{Port: port})
		}
		dp.AddFlow(openflow.FlowEntry{
			Priority:    prioMapping,
			Match:       openflow.MatchDst(mcPfx),
			IdleTimeout: svc.cfg.MappingIdleTimeout,
			Actions:     actions,
			Cookie:      fmt.Sprintf("mc-p%d.", p),
		})
	}

	// Harmonia: every view change re-installs the read-serving replica
	// set at the dirty-set stage, flushing its resident entries for the
	// partition so membership churn can never route a read to a replica
	// missing an acknowledged write.
	svc.installHarmonia(p)
}

// divisions splits the client space into n power-of-two source prefixes
// (§4.5: "each division size is a multiple of 2").
func (svc *Service) divisions(n int) []netsim.Prefix { return svc.divisionsN(n) }

// installPhysRules adds plain L3 forwarding for one physical host on
// every datapath.
func (svc *Service) installPhysRules(ip netsim.IP, mac netsim.MAC) {
	cookie := "phys-" + ip.String()
	for _, dp := range svc.topo.AllDatapaths() {
		if !dp.WriterAllowed(svc.gen) {
			continue
		}
		port, ok := svc.topo.PortToward(dp, ip)
		if !ok {
			continue
		}
		dp.RemoveFlows(func(e *openflow.FlowEntry) bool { return e.Cookie == cookie })
		dp.AddFlow(openflow.FlowEntry{
			Priority: prioPhys,
			Match:    openflow.MatchDst(netsim.HostPrefix(ip)),
			Actions: []openflow.Action{
				openflow.SetDstMAC{MAC: mac},
				openflow.Output{Port: port},
			},
			Cookie: cookie,
		})
	}
}

// rulesPerPartition reports the forwarding entries one partition costs on
// the mapping datapath: the §4.6 switch-scalability quantity (2 without
// load balancing, R+1 with).
func (svc *Service) rulesPerPartition() int {
	dps := svc.topo.MappingDatapaths()
	if len(dps) == 0 || len(svc.views) == 0 {
		return 0
	}
	count := 0
	for _, e := range dps[0].Table().Entries() {
		if hasPrefix(e.Cookie, "uni-p0.") || hasPrefix(e.Cookie, "mc-p0.") {
			count++
		}
	}
	return count
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// PermanentRemove executes the administrator's node-removal procedure
// (§4.4 ring re-configuration): the handoff (if any) stays as a durable
// replica and all affected nodes are informed.
func (svc *Service) PermanentRemove(idx int) {
	svc.fail(idx) // hiding + handoff
	for _, v := range svc.views {
		if v.Handoff != nil {
			v.Handoff = nil // promotion to permanent member
			svc.announce(v, -1)
		}
	}
	svc.tracef("%v: node %d permanently removed", svc.s.Now(), idx)
}
