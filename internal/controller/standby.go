package controller

import (
	"repro/internal/harmonia"
	"repro/internal/netsim"
	"repro/internal/openflow"
	"repro/internal/sim"
	"repro/internal/switchcache"
	"repro/internal/transport"
)

// This file implements the metadata-service extension sketched in §4.1:
// "One approach we are currently investigating is having a hot standby
// replica of the metadata node. Two workload characteristics make this
// design feasible: the stored metadata is small and changes
// infrequently, and the load on our metadata service is low."
//
// The active service streams every state change to the standby and
// pings it each heartbeat period. When the pings stop, the standby
// promotes itself: it reinstalls the forwarding state it mirrors and —
// in proper NICE fashion — uses the switch itself to take over the
// service identity, installing a rule that rewrites packets addressed
// to the old metadata address onto its own host. Storage nodes keep
// heartbeating the address they always knew.

// StateSync mirrors one state change from the active metadata service.
type StateSync struct {
	View     *PartitionView // nil on pure status changes
	Statuses []int          // node status codes, index-aligned
}

// MetaPing is the active service's liveness beacon to its standby.
type MetaPing struct {
	Seq uint64
}

// syncStandby pushes a changed view (and the status vector) to the
// configured standby.
func (svc *Service) syncStandby(v *PartitionView) {
	if svc.cfg.StandbyIP == 0 {
		return
	}
	msg := &StateSync{Statuses: svc.statusVector()}
	if v != nil {
		msg.View = v.Clone()
	}
	size := ctrlMsgSize
	if v != nil {
		size += sizeOfView(v)
	}
	svc.ctrl.SendTo(svc.cfg.StandbyIP, svc.cfg.StandbyPort, msg, size)
}

func (svc *Service) statusVector() []int {
	out := make([]int, len(svc.nodes))
	for i, n := range svc.nodes {
		out[i] = int(n.status)
	}
	return out
}

// startStandbySync boots the replication stream: a full-state snapshot,
// then a ping every heartbeat period (changes flow through syncStandby).
func (svc *Service) startStandbySync() {
	if svc.cfg.StandbyIP == 0 {
		return
	}
	for _, v := range svc.views {
		svc.syncStandby(v)
	}
	svc.s.Spawn("metadata-standby-ping", func(p *sim.Proc) {
		var seq uint64
		for {
			p.Sleep(svc.cfg.HeartbeatEvery)
			seq++
			svc.ctrl.SendTo(svc.cfg.StandbyIP, svc.cfg.StandbyPort, &MetaPing{Seq: seq}, 64)
		}
	})
}

// RestoreState overwrites the service's views and node statuses with a
// mirrored snapshot; used by a standby immediately before Start.
func (svc *Service) RestoreState(views []*PartitionView, statuses []int) {
	for _, v := range views {
		if v != nil && v.Partition >= 0 && v.Partition < len(svc.views) {
			// Bump the epoch so post-takeover announcements supersede
			// anything the nodes already hold.
			c := v.Clone()
			c.Epoch++
			svc.views[v.Partition] = c
		}
	}
	for i, st := range statuses {
		if i < len(svc.nodes) {
			svc.nodes[i].status = nodeStatus(st)
			svc.nodes[i].lastHB = svc.s.Now()
		}
	}
}

// Standby is the hot-standby metadata replica.
type Standby struct {
	stack  *transport.Stack
	topo   Topology
	cfg    Config
	nodes  []NodeAddr
	active netsim.IP // the active service's address (the identity to adopt)

	sock     *transport.UDPSocket
	views    map[int]*PartitionView
	statuses []int
	lastPing sim.Time
	promoted *Service
	trace    func(format string, args ...any)

	// cache/cacheCfg, when set, re-attach the in-switch cache manager
	// to the promoted service at takeover — the switch cache would
	// otherwise be orphaned with the dead controller (and its zombie's
	// detector would keep sampling into the void).
	cache    *switchcache.Cache
	cacheCfg CacheManagerConfig

	// harmonia, when set, is re-adopted at takeover: the promoted
	// service re-installs every partition's replica set under its fresh
	// writer generation, flushing the dirty set inherited from the dead
	// controller's tenure.
	harmonia *harmonia.DirtySet
}

// NewStandby builds a standby on its own host. cfg must match the
// active service's configuration; activeIP is the address storage nodes
// send their heartbeats to.
func NewStandby(stack *transport.Stack, topo Topology, cfg Config, nodes []NodeAddr, activeIP netsim.IP) *Standby {
	return &Standby{
		stack:  stack,
		topo:   topo,
		cfg:    cfg,
		nodes:  nodes,
		active: activeIP,
		views:  make(map[int]*PartitionView),
	}
}

// SetTrace installs an event logger.
func (sb *Standby) SetTrace(fn func(format string, args ...any)) { sb.trace = fn }

func (sb *Standby) tracef(format string, args ...any) {
	if sb.trace != nil {
		sb.trace(format, args...)
	}
}

// Promoted returns the service running on this standby after takeover,
// or nil while the primary is alive.
func (sb *Standby) Promoted() *Service { return sb.promoted }

// EnableCacheOnTakeover registers the in-switch cache the promoted
// service must adopt (pointing the miss sampler at its own manager).
func (sb *Standby) EnableCacheOnTakeover(c *switchcache.Cache, cfg CacheManagerConfig) {
	sb.cache = c
	sb.cacheCfg = cfg
}

// EnableHarmoniaOnTakeover registers the in-switch dirty-set stage the
// promoted service must adopt (re-installing and flushing every
// partition under its own writer generation).
func (sb *Standby) EnableHarmoniaOnTakeover(ds *harmonia.DirtySet) {
	sb.harmonia = ds
}

// Start begins mirroring and watching the active service.
func (sb *Standby) Start() {
	sb.sock = sb.stack.MustBindUDP(sb.cfg.StandbyPort)
	sb.lastPing = sb.stack.Sim().Now()
	s := sb.stack.Sim()
	s.Spawn("standby-listener", func(p *sim.Proc) {
		for {
			d, ok := sb.sock.Recv(p)
			if !ok {
				return
			}
			switch m := d.Data.(type) {
			case *StateSync:
				if m.View != nil {
					old := sb.views[m.View.Partition]
					if old == nil || old.Epoch < m.View.Epoch {
						sb.views[m.View.Partition] = m.View
					}
				}
				sb.statuses = m.Statuses
				sb.lastPing = s.Now()
			case *MetaPing:
				sb.lastPing = s.Now()
			}
		}
	})
	s.Spawn("standby-watchdog", func(p *sim.Proc) {
		limit := sb.cfg.HeartbeatEvery * sim.Time(sb.cfg.MissedHeartbeats)
		for sb.promoted == nil {
			p.Sleep(sb.cfg.HeartbeatEvery)
			if s.Now()-sb.lastPing > limit {
				sb.takeover(p)
				return
			}
		}
	})
}

// takeover promotes the standby: it stops mirroring, rebuilds the
// service — from the authoritative replicated state store when one
// exists, falling back to the best-effort StateSync mirror — and
// redirects the old metadata address to itself in the fabric. The new
// service acquires a fresh writer generation in Start, which fences
// the old primary out of the store and the switches should it return.
func (sb *Standby) takeover(p *sim.Proc) {
	sb.tracef("%v: metadata standby taking over for %s", sb.stack.Sim().Now(), sb.active)
	sb.sock.Close() // free the port for the promoted service

	cfg := sb.cfg
	cfg.StandbyIP = 0 // no standby-of-standby
	cfg.CtrlPort = sb.cfg.CtrlPort
	svc := New(sb.stack, sb.topo, cfg, sb.nodes)
	restored := false
	if cfg.Store != nil && cfg.Store.Authoritative() {
		// The chain refuses snapshots mid-repair (a healing chain never
		// serves a pre-failure view); wait the splice out, bounded.
		for try := 0; try < 50; try++ {
			snap, ok := cfg.Store.Snapshot()
			if ok {
				svc.RestoreState(snap.Views, snap.Statuses)
				svc.restoredCache = snap.Cache
				restored = true
				break
			}
			p.Sleep(sb.cfg.HeartbeatEvery / 4)
		}
	}
	if !restored {
		views := make([]*PartitionView, 0, len(sb.views))
		for _, v := range sb.views {
			views = append(views, v)
		}
		svc.RestoreState(views, sb.statuses)
	}
	if sb.trace != nil {
		svc.SetTrace(sb.trace)
	}
	svc.Start()
	if sb.cache != nil {
		svc.EnableCache(sb.cache, sb.cacheCfg)
	}
	if sb.harmonia != nil {
		svc.EnableHarmonia(sb.harmonia)
	}

	// Adopt the service identity in the network: packets to the old
	// metadata address now reach this host. The old primary, if it ever
	// returns, is cut off the control plane until an operator intervenes.
	for _, dp := range sb.topo.AllDatapaths() {
		port, ok := sb.topo.PortToward(dp, sb.stack.IP())
		if !ok {
			continue
		}
		dp.RemoveFlows(func(e *openflow.FlowEntry) bool {
			return e.Cookie == "phys-"+sb.active.String()
		})
		dp.AddFlow(openflow.FlowEntry{
			Priority: prioMapping,
			Match:    openflow.MatchDst(netsim.HostPrefix(sb.active)),
			Actions: []openflow.Action{
				openflow.SetDstIP{IP: sb.stack.IP()},
				openflow.SetDstMAC{MAC: sb.stack.Host().MAC()},
				openflow.Output{Port: port},
			},
			Cookie: "meta-takeover",
		})
	}
	sb.promoted = svc
}
