package controller

import (
	"fmt"
	"strings"

	"repro/internal/ctrlchain"
)

// ChainStore backs the controller's StateStore with a NetChain-style
// replicated chain of switch-resident stores. Views key as
// "view/<partition>", the status vector as "statuses", and cache
// install records as "cache/<key>"; chain entry versions compose the
// writer generation with a per-key monotonic component so a promoted
// controller's writes always supersede the old primary's, even if the
// zombie had issued more of them.
type ChainStore struct {
	chain *ctrlchain.Chain
	seq   uint64
}

// NewChainStore wraps an existing chain. One ChainStore instance is
// shared by the active controller and its standby, exactly like the
// chain itself.
func NewChainStore(ch *ctrlchain.Chain) *ChainStore { return &ChainStore{chain: ch} }

// Chain exposes the underlying chain (tests and the fault fabric).
func (cs *ChainStore) Chain() *ctrlchain.Chain { return cs.chain }

// ver composes a chain entry version: the writer generation in the
// high bits dominates, the low bits keep one writer's own stream
// monotonic.
func (cs *ChainStore) ver(gen, low uint64) uint64 {
	if low == 0 {
		cs.seq++
		low = cs.seq
	}
	return gen<<32 | (low & 0xffffffff)
}

func (cs *ChainStore) Acquire() uint64 { return cs.chain.Acquire() }

func (cs *ChainStore) WriteView(gen uint64, v *PartitionView) bool {
	return cs.chain.Write(gen, ctrlchain.Entry{
		Key: viewKey(v.Partition),
		Ver: cs.ver(gen, v.Epoch),
		Val: v.Clone(),
	}, nil)
}

func (cs *ChainStore) WriteStatuses(gen uint64, statuses []int) bool {
	return cs.chain.Write(gen, ctrlchain.Entry{
		Key: "statuses",
		Ver: cs.ver(gen, 0),
		Val: append([]int(nil), statuses...),
	}, nil)
}

func (cs *ChainStore) WriteCache(gen uint64, key string, ver uint64, resident bool) bool {
	return cs.chain.Write(gen, ctrlchain.Entry{
		Key: "cache/" + key,
		Ver: cs.ver(gen, 0),
		Val: CacheState{Key: key, Ver: ver, Resident: resident},
	}, nil)
}

func (cs *ChainStore) Snapshot() (StateSnapshot, bool) {
	entries, ok := cs.chain.Snapshot()
	if !ok {
		return StateSnapshot{}, false
	}
	var snap StateSnapshot
	for _, e := range entries {
		switch {
		case strings.HasPrefix(e.Key, "view/"):
			if v, ok := e.Val.(*PartitionView); ok {
				snap.Views = append(snap.Views, v.Clone())
			}
		case e.Key == "statuses":
			if st, ok := e.Val.([]int); ok {
				snap.Statuses = append([]int(nil), st...)
			}
		case strings.HasPrefix(e.Key, "cache/"):
			if ce, ok := e.Val.(CacheState); ok && ce.Resident {
				snap.Cache = append(snap.Cache, ce)
			}
		}
	}
	return snap, true
}

func (cs *ChainStore) Authoritative() bool { return true }

// viewKey zero-pads the partition so the chain's sorted snapshot
// yields views in partition order.
func viewKey(p int) string { return fmt.Sprintf("view/%05d", p) }
