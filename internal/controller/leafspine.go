package controller

import (
	"repro/internal/netsim"
	"repro/internal/openflow"
)

// LeafSpine is a two-tier multi-switch fabric: hosts hang off leaf (ToR)
// switches, all leaves connect to one spine. The paper's platform used a
// single hardware switch but notes (§6) that "NICE can readily support
// multi-switch platforms, as the controller will install the same rules
// on all participating switches" — this topology implements that,
// including loop-free tree multicast: a leaf delivers locally and sends
// up; the spine replicates to every member leaf except the ingress one.
type LeafSpine struct {
	Spine  *openflow.Datapath
	Leaves []*openflow.Datapath

	spineDown map[*openflow.Datapath]int // leaf -> spine port facing it
	leafUp    map[*openflow.Datapath]int // leaf -> its spine-facing port
	hostLeaf  map[netsim.IP]*openflow.Datapath
	hostPort  map[netsim.IP]int // port on the host's leaf
}

// NewLeafSpine builds the fabric descriptor around the spine datapath.
func NewLeafSpine(spine *openflow.Datapath) *LeafSpine {
	return &LeafSpine{
		Spine:     spine,
		spineDown: make(map[*openflow.Datapath]int),
		leafUp:    make(map[*openflow.Datapath]int),
		hostLeaf:  make(map[netsim.IP]*openflow.Datapath),
		hostPort:  make(map[netsim.IP]int),
	}
}

// AddLeaf registers a leaf and its cabling: uplink is the leaf's port
// toward the spine, spinePort is the spine's port toward the leaf.
func (t *LeafSpine) AddLeaf(leaf *openflow.Datapath, uplink, spinePort int) {
	t.Leaves = append(t.Leaves, leaf)
	t.leafUp[leaf] = uplink
	t.spineDown[leaf] = spinePort
}

// AttachHost records a host on a leaf port.
func (t *LeafSpine) AttachHost(leaf *openflow.Datapath, ip netsim.IP, port int) {
	t.hostLeaf[ip] = leaf
	t.hostPort[ip] = port
}

// MappingDatapaths implements Topology: clients enter at leaves, so the
// vring rewrite happens there.
func (t *LeafSpine) MappingDatapaths() []*openflow.Datapath { return t.Leaves }

// GroupDatapaths implements Topology: every switch participates in the
// multicast tree.
func (t *LeafSpine) GroupDatapaths() []*openflow.Datapath {
	out := make([]*openflow.Datapath, 0, len(t.Leaves)+1)
	out = append(out, t.Spine)
	out = append(out, t.Leaves...)
	return out
}

// AllDatapaths implements Topology.
func (t *LeafSpine) AllDatapaths() []*openflow.Datapath { return t.GroupDatapaths() }

// PortToward implements Topology.
func (t *LeafSpine) PortToward(dp *openflow.Datapath, ip netsim.IP) (int, bool) {
	leaf, ok := t.hostLeaf[ip]
	if !ok {
		return 0, false
	}
	if dp == t.Spine {
		return t.spineDown[leaf], true
	}
	if dp == leaf {
		return t.hostPort[ip], true
	}
	if up, isLeaf := t.leafUp[dp]; isLeaf {
		return up, true
	}
	return 0, false
}

// HasGroups implements Topology.
func (t *LeafSpine) HasGroups(dp *openflow.Datapath) bool { return true }

// MulticastPlan implements Topology with loop-free tree replication.
func (t *LeafSpine) MulticastPlan(dp *openflow.Datapath, members []netsim.IP) []McastRule {
	if dp == t.Spine {
		// Member leaves, in stable leaf order.
		memberLeaf := make(map[*openflow.Datapath]bool)
		for _, ip := range members {
			if leaf, ok := t.hostLeaf[ip]; ok {
				memberLeaf[leaf] = true
			}
		}
		var all []int
		for _, leaf := range t.Leaves {
			if memberLeaf[leaf] {
				all = append(all, t.spineDown[leaf])
			}
		}
		var plan []McastRule
		// Ingress-specific entries: never reflect back down the ingress
		// leaf (its local members were served before the packet came up).
		for _, leaf := range t.Leaves {
			in := t.spineDown[leaf]
			var ports []int
			for _, p := range all {
				if p != in {
					ports = append(ports, p)
				}
			}
			if memberLeaf[leaf] {
				plan = append(plan, McastRule{InPort: in, Ports: ports})
			}
		}
		// Fallback for ingress from non-member leaves: all member leaves.
		plan = append(plan, McastRule{InPort: openflow.AnyPort, Ports: all})
		return plan
	}

	// A leaf: local member ports, plus the uplink on locally-originated
	// packets.
	var local []int
	for _, ip := range members {
		if t.hostLeaf[ip] == dp {
			local = append(local, t.hostPort[ip])
		}
	}
	up := t.leafUp[dp]
	plan := []McastRule{
		// From the spine: deliver locally only.
		{InPort: up, Ports: local},
		// Locally originated (a node's timestamp multicast entering its
		// own leaf): deliver to local members and send up.
		{InPort: openflow.AnyPort, Ports: append(append([]int(nil), local...), up)},
	}
	return plan
}
