package controller

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/openflow"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/transport"
)

func ms(n int) sim.Time { return sim.Time(n) * time.Millisecond }
func us(n int) sim.Time { return sim.Time(n) * time.Microsecond }

const (
	dataPort = 7000
	nodeCtrl = 9001
)

// rig is a single-switch deployment with fake storage nodes that
// heartbeat and record the control messages they receive.
type rig struct {
	s     *sim.Simulator
	net   *netsim.Network
	dp    *openflow.Datapath
	topo  *SingleSwitch
	svc   *Service
	nodes []*fakeNode
	meta  *transport.Stack
}

type fakeNode struct {
	stack *transport.Stack
	ctrl  *transport.UDPSocket
	msgs  []any
	beat  bool // keep heartbeating
}

func newRig(t *testing.T, n, r int, lb bool) *rig {
	t.Helper()
	s := sim.New(1)
	nw := netsim.NewNetwork(s)
	sw := nw.NewSwitch("core", n+8, us(2))
	dp := openflow.Attach(sw, us(50))
	topo := NewSingleSwitch(dp)
	rg := &rig{s: s, net: nw, dp: dp, topo: topo}

	metaHost := nw.NewHost("meta", netsim.MustParseIP("10.0.0.100"))
	nw.Connect(metaHost.Port(), sw.Port(n), netsim.Gbps(1, us(5)))
	topo.Attach(metaHost.IP(), n)
	rg.meta = transport.NewStack(metaHost)

	var addrs []NodeAddr
	for i := 0; i < n; i++ {
		h := nw.NewHost("node", netsim.IPv4(10, 0, 0, byte(i+1)))
		nw.Connect(h.Port(), sw.Port(i), netsim.Gbps(1, us(5)))
		topo.Attach(h.IP(), i)
		st := transport.NewStack(h)
		fn := &fakeNode{stack: st, ctrl: st.MustBindUDP(nodeCtrl), beat: true}
		rg.nodes = append(rg.nodes, fn)
		addrs = append(addrs, NodeAddr{
			Index: i, IP: h.IP(), MAC: h.MAC(), DataPort: dataPort, CtrlPort: nodeCtrl,
		})
	}

	cfg := DefaultConfig()
	cfg.Placement = ring.NewPlacement(n, r)
	cfg.Unicast = ring.MustVRing(netsim.MustParsePrefix("10.10.0.0/16"), n, 8)
	cfg.Multicast = ring.MustVRing(netsim.MustParsePrefix("10.11.0.0/16"), n, 8)
	cfg.GroupBase = netsim.MustParseIP("239.0.0.0")
	cfg.HeartbeatEvery = ms(100)
	cfg.LoadBalance = lb
	cfg.ClientSpace = netsim.MustParsePrefix("192.168.0.0/16")
	rg.svc = New(rg.meta, topo, cfg, addrs)
	rg.svc.Start()

	// Fake node loops: heartbeat + record control messages.
	for i, fn := range rg.nodes {
		i, fn := i, fn
		s.Spawn("hb", func(p *sim.Proc) {
			hb := fn.stack.MustBindUDP(0)
			for {
				p.Sleep(ms(100))
				if fn.beat {
					hb.SendTo(rg.meta.IP(), cfg.CtrlPort, &Heartbeat{Node: i}, 64)
				}
			}
		})
		s.Spawn("ctrl", func(p *sim.Proc) {
			for {
				d, ok := fn.ctrl.Recv(p)
				if !ok {
					return
				}
				fn.msgs = append(fn.msgs, d.Data)
			}
		})
	}
	return rg
}

func (rg *rig) runUntil(t *testing.T, at sim.Time) {
	t.Helper()
	if err := rg.s.RunUntil(at); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapInstallsRules(t *testing.T) {
	rg := newRig(t, 5, 3, false)
	rg.runUntil(t, ms(10))
	// Per partition: 1 unicast + 1 multicast mapping + 1 group-direct.
	// Plus one phys rule per host (5 nodes + meta).
	tbl := rg.dp.Table()
	wantMin := 5*3 + 6
	if tbl.Len() < wantMin {
		t.Fatalf("table has %d entries, want >= %d", tbl.Len(), wantMin)
	}
	if rg.dp.Groups().Len() != 5 {
		t.Fatalf("groups = %d, want 5", rg.dp.Groups().Len())
	}
	// §4.6: without LB each partition costs 2 mapping entries.
	if got := rg.svc.Stats().RulesPerPart; got != 2 {
		t.Fatalf("RulesPerPart = %d, want 2", got)
	}
	rg.s.Shutdown()
}

func TestSwitchScalabilityWithLB(t *testing.T) {
	rg := newRig(t, 5, 3, true)
	rg.runUntil(t, ms(10))
	// §4.6: with LB, R+1 entries per partition (R unicast divisions + 1
	// default unicast... the paper counts R per partition for the unicast
	// ring plus 1 multicast). Our implementation keeps the default
	// primary rule as well: R+2 mapping entries.
	if got := rg.svc.Stats().RulesPerPart; got != 3+2 {
		t.Fatalf("RulesPerPart = %d, want 5", got)
	}
	rg.s.Shutdown()
}

func TestUnicastVRingRouting(t *testing.T) {
	rg := newRig(t, 5, 3, false)
	// A client behind the switch sends a UDP request to a vnode address;
	// the primary of that partition must receive it rewritten.
	client := rg.net.NewHost("client", netsim.MustParseIP("192.168.0.1"))
	rg.net.Connect(client.Port(), rg.dp.Switch().Port(6), netsim.Gbps(1, us(5)))
	rg.topo.Attach(client.IP(), 6)
	cst := transport.NewStack(client)

	key := "object-x"
	part := ring.NewSpace(5).PartitionOf(key)
	primary := rg.svc.View(part).Primary()

	got := make(map[int]int)
	for i, fn := range rg.nodes {
		i, fn := i, fn
		sock := fn.stack.MustBindUDP(dataPort)
		rg.s.Spawn("data", func(p *sim.Proc) {
			for {
				if _, ok := sock.Recv(p); !ok {
					return
				}
				got[i]++
			}
		})
	}
	rg.s.At(ms(5), func() {
		sock := cst.MustBindUDP(0)
		vaddr := rg.svc.cfg.Unicast.AddrOfKey(key)
		sock.SendTo(vaddr, dataPort, "get", 32)
	})
	rg.runUntil(t, ms(50))
	if got[primary.Index] != 1 {
		t.Fatalf("primary %d received %d requests (map %v)", primary.Index, got[primary.Index], got)
	}
	for i, n := range got {
		if i != primary.Index && n != 0 {
			t.Fatalf("non-primary %d received traffic", i)
		}
	}
	rg.s.Shutdown()
}

func TestLoadBalancingDivisions(t *testing.T) {
	rg := newRig(t, 5, 3, true)
	key := "hot"
	part := ring.NewSpace(5).PartitionOf(key)
	view := rg.svc.View(part)
	vaddr := rg.svc.cfg.Unicast.AddrOfKey(key)

	got := make(map[int]int)
	for i, fn := range rg.nodes {
		i, fn := i, fn
		sock := fn.stack.MustBindUDP(dataPort)
		rg.s.Spawn("data", func(p *sim.Proc) {
			for {
				if _, ok := sock.Recv(p); !ok {
					return
				}
				got[i]++
			}
		})
	}
	// Three clients in different divisions of 192.168.0.0/16 (R=3 ->
	// 4 divisions of /18).
	for d := 0; d < 3; d++ {
		ip := netsim.IPv4(192, 168, byte(d*64), 1)
		h := rg.net.NewHost("client", ip)
		port := 6 + d
		rg.net.Connect(h.Port(), rg.dp.Switch().Port(port), netsim.Gbps(1, us(5)))
		rg.topo.Attach(ip, port)
		st := transport.NewStack(h)
		rg.s.At(ms(5), func() {
			st.MustBindUDP(0).SendTo(vaddr, dataPort, "get", 32)
		})
	}
	rg.runUntil(t, ms(50))
	// Each replica must have received exactly one request.
	for _, r := range view.Replicas {
		if got[r.Index] != 1 {
			t.Fatalf("replica %d got %d requests (%v)", r.Index, got[r.Index], got)
		}
	}
	rg.s.Shutdown()
}

func TestHeartbeatFailureDetectionAndHandoff(t *testing.T) {
	rg := newRig(t, 5, 3, false)
	victim := 1
	rg.s.At(ms(300), func() {
		rg.nodes[victim].beat = false
		rg.nodes[victim].stack.Host().SetDown(true)
	})
	rg.runUntil(t, ms(1200)) // > 3 missed heartbeats after 300ms
	st := rg.svc.Stats()
	if st.Failures != 1 {
		t.Fatalf("failures = %d, want 1", st.Failures)
	}
	// Every partition that node 1 served must have replaced it.
	for p := 0; p < 5; p++ {
		v := rg.svc.View(p)
		if v.HasReplica(victim) {
			t.Fatalf("partition %d still lists failed node", p)
		}
		if rg.svc.cfg.Placement.IsReplica(p, victim) {
			if v.Handoff == nil {
				t.Fatalf("partition %d has no handoff", p)
			}
			if len(v.Replicas) != 3 {
				t.Fatalf("partition %d has %d replicas", p, len(v.Replicas))
			}
		}
	}
	// Partition victim (primary's own partition) must have promoted a
	// secondary.
	v := rg.svc.View(victim)
	if v.Primary().Index == victim {
		t.Fatal("failed primary not replaced")
	}
	rg.s.Shutdown()
}

func TestPeerReportTriggersImmediateFailure(t *testing.T) {
	rg := newRig(t, 5, 3, false)
	// The suspect stops heartbeating at 100ms; a peer report lands once
	// its heartbeat is stale (one period), well before the detector's
	// three-period deadline.
	rg.s.At(ms(100), func() {
		rg.nodes[2].beat = false
		rg.nodes[2].stack.Host().SetDown(true)
	})
	rg.s.At(ms(320), func() {
		sock := rg.nodes[0].stack.MustBindUDP(0)
		sock.SendTo(rg.meta.IP(), rg.svc.cfg.CtrlPort, &FailureReport{Reporter: 0, Suspect: 2}, 64)
	})
	rg.runUntil(t, ms(360))
	if rg.svc.Stats().Failures != 1 || rg.svc.nodes[2].status != nodeDown {
		t.Fatalf("suspect not failed: %+v", rg.svc.Stats())
	}
	rg.s.Shutdown()
}

func TestPeerReportAgainstFreshNodeIgnored(t *testing.T) {
	rg := newRig(t, 5, 3, false)
	rg.s.At(ms(250), func() {
		sock := rg.nodes[0].stack.MustBindUDP(0)
		sock.SendTo(rg.meta.IP(), rg.svc.cfg.CtrlPort, &FailureReport{Reporter: 0, Suspect: 2}, 64)
	})
	rg.runUntil(t, ms(300))
	if rg.svc.Stats().Failures != 0 {
		t.Fatalf("fresh node was failed on a stale report: %+v", rg.svc.Stats())
	}
	rg.s.Shutdown()
}

func TestRejoinTwoPhases(t *testing.T) {
	rg := newRig(t, 5, 3, false)
	victim := 2
	rg.s.At(ms(200), func() {
		rg.nodes[victim].beat = false
		rg.nodes[victim].stack.Host().SetDown(true)
	})
	rg.runUntil(t, ms(1200))
	if rg.svc.nodes[victim].status != nodeDown {
		t.Fatal("victim not failed")
	}

	// Phase 1: rejoin -> put-visible (Recovering on its home partitions).
	rg.s.At(ms(1250), func() {
		rg.nodes[victim].stack.Host().SetDown(false)
		rg.nodes[victim].beat = true
		sock := rg.nodes[victim].stack.MustBindUDP(0)
		sock.SendTo(rg.meta.IP(), rg.svc.cfg.CtrlPort, &RejoinRequest{Node: victim}, 64)
	})
	rg.runUntil(t, ms(1400))
	if rg.svc.nodes[victim].status != nodeRecovering {
		t.Fatal("victim not recovering after rejoin")
	}
	home := rg.svc.homePartitions(victim)
	for _, p := range home {
		v := rg.svc.View(p)
		if !v.IsRecovering(victim) {
			t.Fatalf("partition %d missing recovering node", p)
		}
		if v.HasReplica(victim) {
			t.Fatalf("partition %d made node get-visible too early", p)
		}
	}
	// The rejoining node must have been told where the handoff data is.
	var info *RejoinInfo
	for _, m := range rg.nodes[victim].msgs {
		if ri, ok := m.(*RejoinInfo); ok {
			info = ri
		}
	}
	if info == nil || len(info.Views) != len(home) {
		t.Fatalf("RejoinInfo = %+v", info)
	}

	// Phase 2: consistent -> get-visible, handoff released.
	rg.s.After(ms(10), func() {
		sock := rg.nodes[victim].stack.MustBindUDP(0)
		sock.SendTo(rg.meta.IP(), rg.svc.cfg.CtrlPort, &ConsistentNotice{Node: victim}, 64)
	})
	rg.runUntil(t, ms(1600))
	if rg.svc.nodes[victim].status != nodeUp {
		t.Fatal("victim not up after consistent notice")
	}
	for _, p := range home {
		v := rg.svc.View(p)
		if !v.HasReplica(victim) || v.Handoff != nil || v.Recovering != nil {
			t.Fatalf("partition %d not restored: %+v", p, v)
		}
	}
	rg.s.Shutdown()
}

func TestMembershipMessageScalability(t *testing.T) {
	// The paper's claim (§4.1): a membership change costs O(S) switch
	// updates and O(R) node messages, independent of N.
	msgsFor := func(n int) int64 {
		rg := newRig(t, n, 3, false)
		rg.runUntil(t, ms(200))
		before := rg.svc.Stats().NodeMsgs
		rg.s.After(0, func() {
			rg.nodes[1].beat = false
			rg.nodes[1].stack.Host().SetDown(true)
		})
		rg.runUntil(t, ms(800)) // heartbeat detector fires the failure
		if rg.svc.Stats().Failures != 1 {
			t.Fatalf("failure not detected (N=%d)", n)
		}
		after := rg.svc.Stats().NodeMsgs
		rg.s.Shutdown()
		return after - before
	}
	small := msgsFor(5)
	large := msgsFor(20)
	if small == 0 {
		t.Fatal("no membership messages recorded")
	}
	if large != small {
		t.Fatalf("membership cost grew with N: %d (N=5) vs %d (N=20)", small, large)
	}
}

func TestLearningSwitchARPPath(t *testing.T) {
	rg := newRig(t, 3, 2, false)
	// A client the controller has never seen; replies to it require ARP
	// learning.
	client := rg.net.NewHost("stranger", netsim.MustParseIP("192.168.5.5"))
	rg.net.Connect(client.Port(), rg.dp.Switch().Port(7), netsim.Gbps(1, us(5)))
	rg.topo.Attach(client.IP(), 7)
	cst := transport.NewStack(client)
	csock := cst.MustBindUDP(4000)

	delivered := false
	rg.s.Spawn("client", func(p *sim.Proc) {
		if _, ok := csock.RecvTimeout(p, ms(500)); ok {
			delivered = true
		}
	})
	// A storage node sends to the unknown client: first packet misses,
	// controller ARPs, learns, flushes.
	rg.s.At(ms(5), func() {
		sock := rg.nodes[0].stack.MustBindUDP(0)
		sock.SendTo(client.IP(), 4000, "reply", 100)
	})
	rg.runUntil(t, ms(600))
	if !delivered {
		t.Fatal("packet to unknown host was not delivered via ARP learning")
	}
	// And the rule is now installed: a second packet flows without the
	// controller.
	ins := rg.dp.Stats().PacketIns
	delivered = false
	rg.s.Spawn("client2", func(p *sim.Proc) {
		if _, ok := csock.RecvTimeout(p, ms(500)); ok {
			delivered = true
		}
	})
	rg.s.After(0, func() {
		sock := rg.nodes[1].stack.MustBindUDP(0)
		sock.SendTo(client.IP(), 4000, "again", 100)
	})
	rg.runUntil(t, rg.s.Now()+ms(600))
	if !delivered {
		t.Fatal("second packet not delivered")
	}
	if rg.dp.Stats().PacketIns > ins {
		t.Fatal("second packet still punted to controller")
	}
	rg.s.Shutdown()
}

func TestDivisionsMath(t *testing.T) {
	rg := newRig(t, 4, 3, true)
	divs := rg.svc.divisions(3)
	if len(divs) != 3 {
		t.Fatalf("got %d divisions", len(divs))
	}
	// 3 replicas -> 4 divisions of /18 each; we take the first three.
	for i, want := range []string{"192.168.0.0/18", "192.168.64.0/18", "192.168.128.0/18"} {
		if divs[i].String() != want {
			t.Fatalf("division %d = %s, want %s", i, divs[i], want)
		}
	}
	rg.s.Shutdown()
}

func TestDynamicLBRebalancesHotDivisions(t *testing.T) {
	// §8 future-work extension: two hot client divisions that the static
	// round-robin binds to the same replica get separated by the
	// counter-driven rebalancer.
	s := sim.New(1)
	nw := netsim.NewNetwork(s)
	sw := nw.NewSwitch("core", 16, us(2))
	dp := openflow.Attach(sw, us(50))
	topo := NewSingleSwitch(dp)

	metaHost := nw.NewHost("meta", netsim.MustParseIP("10.0.0.100"))
	nw.Connect(metaHost.Port(), sw.Port(8), netsim.Gbps(1, us(5)))
	topo.Attach(metaHost.IP(), 8)
	meta := transport.NewStack(metaHost)

	var addrs []NodeAddr
	var stacks []*transport.Stack
	for i := 0; i < 3; i++ {
		h := nw.NewHost("node", netsim.IPv4(10, 0, 0, byte(i+1)))
		nw.Connect(h.Port(), sw.Port(i), netsim.Gbps(1, us(5)))
		topo.Attach(h.IP(), i)
		st := transport.NewStack(h)
		st.MustBindUDP(dataPort)
		stacks = append(stacks, st)
		addrs = append(addrs, NodeAddr{Index: i, IP: h.IP(), MAC: h.MAC(), DataPort: dataPort, CtrlPort: nodeCtrl})
	}

	cfg := DefaultConfig()
	cfg.Placement = ring.NewPlacement(3, 3)
	cfg.Unicast = ring.MustVRing(netsim.MustParsePrefix("10.10.0.0/16"), 3, 8)
	cfg.Multicast = ring.MustVRing(netsim.MustParsePrefix("10.11.0.0/16"), 3, 8)
	cfg.GroupBase = netsim.MustParseIP("239.0.0.0")
	cfg.HeartbeatEvery = ms(100)
	cfg.LoadBalance = true
	cfg.DynamicLB = true
	cfg.RebalanceEvery = ms(200)
	cfg.RebalanceMinOps = 20
	cfg.ClientSpace = netsim.MustParsePrefix("192.168.0.0/16")
	svc := New(meta, topo, cfg, addrs)
	svc.Start()
	// Keep heartbeats flowing so the detector stays quiet.
	for i := range addrs {
		i := i
		s.Spawn("hb", func(p *sim.Proc) {
			hb := stacks[i].MustBindUDP(0)
			for {
				p.Sleep(ms(100))
				hb.SendTo(meta.IP(), cfg.CtrlPort, &Heartbeat{Node: i}, 64)
			}
		})
	}

	// Dynamic mode uses 8 divisions over 192.168.0.0/16 (/19 each); the
	// default round-robin maps divisions {0,3,6} to replica slot 0.
	// Put hot clients in divisions 0 and 3: both initially hammer the
	// same replica.
	key := "hot"
	part := ring.NewSpace(3).PartitionOf(key)
	vaddr := cfg.Unicast.AddrOfKey(key)
	for ci, div := range []int{0, 3} {
		ip := netsim.IPv4(192, 168, byte(div*32), 1) // /19 divisions
		h := nw.NewHost("client", ip)
		port := 10 + ci
		nw.Connect(h.Port(), sw.Port(port), netsim.Gbps(1, us(5)))
		topo.Attach(ip, port)
		st := transport.NewStack(h)
		s.Spawn("getter", func(p *sim.Proc) {
			sock := st.MustBindUDP(0)
			for {
				sock.SendTo(vaddr, dataPort, "get", 32)
				p.Sleep(ms(2))
			}
		})
	}

	if err := s.RunUntil(ms(150)); err != nil {
		t.Fatal(err)
	}
	// Before the first rebalance both hot divisions share a replica.
	initial := svc.divisionAssignment(part, 8, 3)
	if initial[0] != initial[3] {
		t.Fatalf("precondition: divisions 0 and 3 should start colocated: %v", initial)
	}
	if err := s.RunUntil(ms(1500)); err != nil {
		t.Fatal(err)
	}
	got := svc.LBAssignment(part)
	if got == nil {
		t.Fatal("rebalancer never ran")
	}
	if got[0] == got[3] {
		t.Fatalf("hot divisions 0 and 3 still share replica slot: %v", got)
	}
	if svc.Stats().Rebalances == 0 || svc.Stats().StatsPolls == 0 {
		t.Fatalf("stats not recorded: %+v", svc.Stats())
	}
	s.Shutdown()
}

func TestLazyMappingInstallsOnFirstPacket(t *testing.T) {
	s := sim.New(1)
	nw := netsim.NewNetwork(s)
	sw := nw.NewSwitch("core", 8, us(2))
	dp := openflow.Attach(sw, us(50))
	topo := NewSingleSwitch(dp)

	metaHost := nw.NewHost("meta", netsim.MustParseIP("10.0.0.100"))
	nw.Connect(metaHost.Port(), sw.Port(4), netsim.Gbps(1, us(5)))
	topo.Attach(metaHost.IP(), 4)
	meta := transport.NewStack(metaHost)

	var addrs []NodeAddr
	var nodeSocks []*transport.UDPSocket
	for i := 0; i < 3; i++ {
		h := nw.NewHost("node", netsim.IPv4(10, 0, 0, byte(i+1)))
		nw.Connect(h.Port(), sw.Port(i), netsim.Gbps(1, us(5)))
		topo.Attach(h.IP(), i)
		st := transport.NewStack(h)
		nodeSocks = append(nodeSocks, st.MustBindUDP(dataPort))
		addrs = append(addrs, NodeAddr{Index: i, IP: h.IP(), MAC: h.MAC(), DataPort: dataPort, CtrlPort: nodeCtrl})
	}
	client := nw.NewHost("client", netsim.MustParseIP("192.168.0.1"))
	nw.Connect(client.Port(), sw.Port(5), netsim.Gbps(1, us(5)))
	topo.Attach(client.IP(), 5)
	cst := transport.NewStack(client)

	cfg := DefaultConfig()
	cfg.Placement = ring.NewPlacement(3, 2)
	cfg.Unicast = ring.MustVRing(netsim.MustParsePrefix("10.10.0.0/16"), 3, 8)
	cfg.Multicast = ring.MustVRing(netsim.MustParsePrefix("10.11.0.0/16"), 3, 8)
	cfg.GroupBase = netsim.MustParseIP("239.0.0.0")
	cfg.LazyMapping = true
	cfg.MappingIdleTimeout = ms(200)
	svc := New(meta, topo, cfg, addrs)
	svc.Start()

	countVring := func() int {
		n := 0
		for _, e := range dp.Table().Entries() {
			if len(e.Cookie) > 3 && (e.Cookie[:3] == "uni" || e.Cookie[:2] == "mc") {
				n++
			}
		}
		return n
	}
	key := "lazy-object"
	part := ring.NewSpace(3).PartitionOf(key)
	vaddr := cfg.Unicast.AddrOfKey(key)
	primary := svc.View(part).Primary()
	got := 0
	for i := range nodeSocks {
		i := i
		sock := nodeSocks[i]
		s.Spawn("node", func(p *sim.Proc) {
			for {
				if _, ok := sock.Recv(p); !ok {
					return
				}
				if i == primary.Index {
					got++
				}
			}
		})
	}

	if err := s.RunUntil(ms(10)); err != nil {
		t.Fatal(err)
	}
	if countVring() != 0 {
		t.Fatalf("lazy bootstrap installed %d vring rules", countVring())
	}
	// First packet: punts, installs, and is forwarded by the controller.
	csock := cst.MustBindUDP(0)
	s.After(0, func() { csock.SendTo(vaddr, dataPort, "get1", 32) })
	if err := s.RunUntil(ms(20)); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("first lazy packet not delivered (got=%d)", got)
	}
	if countVring() == 0 {
		t.Fatal("no vring rules installed after first packet")
	}
	ins := dp.Stats().PacketIns
	// Second packet: flows through the installed rule.
	s.After(0, func() { csock.SendTo(vaddr, dataPort, "get2", 32) })
	if err := s.RunUntil(ms(40)); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("second packet not delivered (got=%d)", got)
	}
	if dp.Stats().PacketIns != ins {
		t.Fatal("second packet still punted")
	}
	// Idle expiry: after 200ms of silence the rules lapse and the next
	// packet punts again.
	s.After(ms(400), func() { csock.SendTo(vaddr, dataPort, "get3", 32) })
	if err := s.RunUntil(ms(500)); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("post-expiry packet not delivered (got=%d)", got)
	}
	if dp.Stats().PacketIns != ins+1 {
		t.Fatalf("expired rule did not punt (PacketIns=%d, want %d)", dp.Stats().PacketIns, ins+1)
	}
	s.Shutdown()
}
