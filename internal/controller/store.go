package controller

// StateStore is the controller's coordination-state backend,
// decoupling membership/cache policy from where that state lives.
// Two implementations exist: MemStore keeps it in the controller
// process (today's behavior — state dies with the process and a hot
// standby relies on the best-effort StateSync mirror), and ChainStore
// replicates it across a chain of switch-resident stores
// (internal/ctrlchain) so a takeover can read the authoritative state
// sub-RTT from the chain tail.
//
// The store also owns split-brain fencing: Acquire hands out
// monotonically increasing writer generations, and every write
// carries the caller's generation. Once a promoted standby acquires a
// newer generation, the old primary's writes return false and the
// zombie must stop propagating state.
type StateStore interface {
	// Acquire returns the next writer generation. Called once per
	// controller instance at startup.
	Acquire() uint64
	// WriteView replicates one partition view. Returns false when gen
	// is stale (the caller is a fenced zombie).
	WriteView(gen uint64, v *PartitionView) bool
	// WriteStatuses replicates the membership status vector.
	WriteStatuses(gen uint64, statuses []int) bool
	// WriteCache replicates one switch-cache install (resident=true)
	// or evict (resident=false) with the installed object version.
	WriteCache(gen uint64, key string, ver uint64, resident bool) bool
	// Snapshot reads the authoritative state back. ok is false when
	// the store has nothing authoritative to offer — MemStore always
	// (its state died with the process), ChainStore only while a chain
	// repair is in flight.
	Snapshot() (StateSnapshot, bool)
	// Authoritative reports whether Snapshot can ever succeed, so a
	// takeover knows whether waiting out a transient !ok is worth it.
	Authoritative() bool
}

// StateSnapshot is the coordination state a takeover restores.
type StateSnapshot struct {
	Views    []*PartitionView
	Statuses []int
	Cache    []CacheState
}

// CacheState is the replicated install/version record for one
// switch-cached key.
type CacheState struct {
	Key      string
	Ver      uint64
	Resident bool
}

// MemStore is the in-process store: writes are generation-checked
// no-ops (the live Service struct is the state), and Snapshot never
// succeeds. Sharing one MemStore between an active controller and its
// standby keeps Acquire monotonic across a takeover, which is what
// fences the old primary.
type MemStore struct {
	gen uint64
}

// NewMemStore returns an empty in-process store.
func NewMemStore() *MemStore { return &MemStore{} }

func (m *MemStore) Acquire() uint64 {
	m.gen++
	return m.gen
}

func (m *MemStore) WriteView(gen uint64, v *PartitionView) bool { return gen >= m.gen }

func (m *MemStore) WriteStatuses(gen uint64, statuses []int) bool { return gen >= m.gen }

func (m *MemStore) WriteCache(gen uint64, key string, ver uint64, resident bool) bool {
	return gen >= m.gen
}

func (m *MemStore) Snapshot() (StateSnapshot, bool) { return StateSnapshot{}, false }

func (m *MemStore) Authoritative() bool { return false }
