package controller

import (
	"repro/internal/harmonia"
	"repro/internal/netsim"
)

// EnableHarmonia attaches the in-switch dirty-set stage to the metadata
// service. Call after Start; the current replica set of every partition
// is installed immediately (fenced under this instance's writer
// generation), and installPartition re-installs — flushing the dirty
// set — on every subsequent membership event.
//
// Unlike the switch cache, no dirty-set state is replicated to the
// coordination store: the dirty set is soft state whose loss is safe by
// construction. A takeover re-installs every view under the new
// generation, which flushes resident entries to sticky (primary-only
// until re-certified by a new-view commit), so a read can never be
// routed on the strength of a dead controller's installs.
func (svc *Service) EnableHarmonia(ds *harmonia.DirtySet) {
	svc.harmonia = ds
	for p, v := range svc.views {
		if v != nil {
			svc.installHarmonia(p)
		}
	}
}

// installHarmonia pushes one partition's read-serving replica set to the
// dirty-set stage: every proper replica (primary first), excluding a
// handoff stand-in — it serves through its directory plus forwarding,
// not from a full copy — and excluding recovering nodes, which are not
// get-visible. The install applies switch-side after the control delay,
// fenced by the writer generation, and a newer (gen, epoch) flushes the
// partition's resident dirty entries.
func (svc *Service) installHarmonia(p int) {
	if svc.harmonia == nil {
		return
	}
	v := svc.views[p]
	if v == nil {
		return
	}
	replicas := make([]netsim.IP, 0, len(v.Replicas))
	for _, r := range v.Replicas {
		if v.Handoff != nil && r.Index == v.Handoff.Index {
			continue
		}
		replicas = append(replicas, r.IP)
	}
	svc.harmonia.InstallViewAs(svc.gen, p, v.Epoch, replicas)
}
