// Package controller implements the NICE metadata service (§4.1): a
// membership module that monitors storage nodes via heartbeats and
// detects joins and failures, and an SDN controller that maintains the
// virtual-ring mappings, multicast groups and load-balancing rules in the
// switch fabric. It also implements the consistency-aware fault-tolerance
// state machine (§3.3, §4.4): failed nodes are hidden from clients by
// removing them from the switch mappings, a handoff node stands in, and
// rejoining nodes become put-visible first and get-visible only once
// consistent.
package controller

import (
	"repro/internal/netsim"
)

// NodeAddr identifies one storage node's endpoints.
type NodeAddr struct {
	Index    int
	IP       netsim.IP
	MAC      netsim.MAC
	DataPort uint16 // UDP requests and the multicast receiver
	CtrlPort uint16 // node-side membership control endpoint
}

// PartitionView is the authoritative replica-set state for one partition,
// pushed to the affected nodes on every membership change. Nodes keep
// only the views of partitions they serve: the paper's O(R) per-node
// membership state.
type PartitionView struct {
	Partition int
	Epoch     uint64
	// Gen is the writer generation of the controller instance that
	// produced the view (StateStore.Acquire). Nodes order views by
	// (Gen, Epoch) lexicographically: a promoted standby's views
	// supersede the old primary's regardless of epoch, and a zombie's
	// announcements — fenced at the switches — are also rejected by
	// every node that has seen the newer generation. Zero on views from
	// pre-fencing controllers, which compare by epoch alone.
	Gen uint64
	// Replicas are the nodes currently serving the partition, primary
	// first. While a failure is being covered this includes the handoff
	// node and excludes the failed one.
	Replicas []NodeAddr
	// Handoff is the stand-in node (also present in Replicas), nil when
	// the set is healthy.
	Handoff *NodeAddr
	// Recovering are rejoining nodes that are put-visible (in the
	// multicast group, participating in 2PC) but not yet get-visible.
	// More than one node can be mid-rejoin on the same partition when
	// failures overlap; each completes independently.
	Recovering []NodeAddr
	// GroupIP is the partition's multicast group address.
	GroupIP netsim.IP
}

// Primary returns the current primary replica.
func (v *PartitionView) Primary() NodeAddr { return v.Replicas[0] }

// PutParticipants returns every node that must take part in a put: the
// replicas plus any recovering nodes, primary first.
func (v *PartitionView) PutParticipants() []NodeAddr {
	out := make([]NodeAddr, len(v.Replicas), len(v.Replicas)+len(v.Recovering))
	copy(out, v.Replicas)
	out = append(out, v.Recovering...)
	return out
}

// IsRecovering reports whether node idx is mid-rejoin on this partition.
func (v *PartitionView) IsRecovering(idx int) bool {
	for _, r := range v.Recovering {
		if r.Index == idx {
			return true
		}
	}
	return false
}

// HasReplica reports whether node idx is in the replica list.
func (v *PartitionView) HasReplica(idx int) bool {
	for _, r := range v.Replicas {
		if r.Index == idx {
			return true
		}
	}
	return false
}

// Clone deep-copies the view so nodes can hold it without aliasing the
// controller's state.
func (v *PartitionView) Clone() *PartitionView {
	c := *v
	c.Replicas = append([]NodeAddr(nil), v.Replicas...)
	if v.Handoff != nil {
		h := *v.Handoff
		c.Handoff = &h
	}
	if v.Recovering != nil {
		c.Recovering = append([]NodeAddr(nil), v.Recovering...)
	}
	return &c
}

// LoadStats ride on heartbeats (§4.5 workload-informed load balancing).
type LoadStats struct {
	Puts, Gets int64
	BytesIn    int64
	BytesOut   int64
}

// Node-to-controller messages (UDP to the metadata service port).

// Heartbeat is the periodic liveness and load report. Epochs carries the
// epoch of every view the node holds, letting the controller detect and
// repair nodes whose membership state went stale (a PartitionUpdate lost
// on a faulty control path).
type Heartbeat struct {
	Node   int
	Load   LoadStats
	Epochs map[int]uint64
}

// FailureReport is a peer accusation: the reporter timed out twice on the
// suspect during the put protocol (§4.4 failure detection).
type FailureReport struct {
	Reporter int
	Suspect  int
}

// RejoinRequest starts the two-phase rejoin of a recovered node.
type RejoinRequest struct {
	Node int
}

// ConsistentNotice tells the controller a recovering node has fetched a
// consistent data set and may become get-visible.
type ConsistentNotice struct {
	Node int
}

// Controller-to-node messages (UDP to the node control port).

// PartitionUpdate pushes a new view to an affected replica.
type PartitionUpdate struct {
	View *PartitionView
}

// HandoffAssign tells a node to stand in for a failed peer on one
// partition. The node starts accepting that partition's traffic into its
// handoff namespace.
type HandoffAssign struct {
	View   *PartitionView
	Failed NodeAddr
}

// HandoffRelease tells the former handoff node the original owner is
// consistent again; it may drop the handoff data.
type HandoffRelease struct {
	Partition int
}

// RejoinOrder tells a node the controller believes it is down (its
// heartbeat arrived while it was marked failed): the node must restart
// its rejoin procedure. Without this, a node whose RejoinRequest was lost
// — or that was failed by a verdict racing its restart — would serve
// stale state forever.
type RejoinOrder struct{}

// RejoinInfo answers a RejoinRequest: which partitions to recover and who
// holds the handoff data for each.
type RejoinInfo struct {
	Views    []*PartitionView // the node is already put-visible in these
	Handoffs []NodeAddr       // element i holds handoff data for Views[i]
}

// ExpandAssign tells a node it is being added to a replica set
// permanently (§4.4 ring re-configuration): it is already put-visible;
// it must fetch the partition's full key range from Source and then
// report consistent to become get-visible.
type ExpandAssign struct {
	View   *PartitionView
	Source NodeAddr // the partition's primary
}

// CacheFetchRequest asks a partition primary for the current committed
// copy of a hot key, so the controller can install it in the switch
// cache.
type CacheFetchRequest struct {
	Key string
	// MaxSize caps the reply: objects larger than a cacheable value are
	// not worth shipping.
	MaxSize int
}

// CacheFetchReply carries the object (and its committed version, for the
// install fence) back to the metadata service.
type CacheFetchReply struct {
	Key   string
	Found bool
	Value any
	Size  int
	Ver   uint64
}

// ctrlMsgSize approximates the wire size of membership messages; the
// membership-scalability experiment counts them.
const ctrlMsgSize = 128

// sizeOfView approximates a PartitionUpdate's wire size.
func sizeOfView(v *PartitionView) int {
	return 64 + 32*len(v.Replicas)
}
