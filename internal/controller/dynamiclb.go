package controller

import (
	"fmt"
	"sort"

	"repro/internal/netsim"
	"repro/internal/openflow"
	"repro/internal/sim"
)

// This file implements the load-balancing extension the paper leaves as
// future work (§4.5/§8: "our future work will investigate more
// intelligent load-balancing techniques"). The static design carves the
// client space into R divisions bound 1:1 to replicas, so a skewed
// division pins its whole load to one replica. The dynamic balancer
// refines the client space into more divisions than replicas and
// periodically re-assigns divisions to replicas using the switch's own
// flow counters as the workload signal — the controller polls the
// per-division rule statistics (an OpenFlow flow-stats request) and
// packs divisions onto replicas with an LPT greedy.

// dynamicDivisionsFor returns the division count used in dynamic mode:
// the smallest power of two holding at least twice the replica count,
// so hot divisions can be separated.
func dynamicDivisionsFor(replicas int) int {
	n := 1
	for n < 2*replicas {
		n <<= 1
	}
	return n
}

// lbState tracks one partition's dynamic assignment.
type lbState struct {
	assign []int   // division -> index into view.Replicas
	last   []int64 // previous per-division match counters
}

// startDynamicLB spawns the rebalancer.
func (svc *Service) startDynamicLB() {
	if !svc.cfg.LoadBalance || !svc.cfg.DynamicLB {
		return
	}
	svc.lb = make(map[int]*lbState)
	svc.s.Spawn("metadata-rebalancer", func(p *sim.Proc) {
		for {
			p.Sleep(svc.cfg.RebalanceEvery)
			if svc.stack.Host().Down() {
				continue
			}
			for part := range svc.views {
				svc.rebalance(part)
			}
		}
	})
}

// divisionAssignment returns the division -> replica-slot mapping for a
// partition: the dynamic assignment when one exists, else round robin.
func (svc *Service) divisionAssignment(part, ndiv, replicas int) []int {
	if svc.lb != nil {
		if st := svc.lb[part]; st != nil && len(st.assign) == ndiv {
			ok := true
			for _, slot := range st.assign {
				if slot >= replicas {
					ok = false
					break
				}
			}
			if ok {
				return st.assign
			}
		}
	}
	out := make([]int, ndiv)
	for d := range out {
		out[d] = d % replicas
	}
	return out
}

// readDivisionCounters polls the per-division rule match counters on the
// first mapping datapath (a flow-stats request in OpenFlow terms).
func (svc *Service) readDivisionCounters(part, ndiv int) []int64 {
	dps := svc.topo.MappingDatapaths()
	if len(dps) == 0 {
		return nil
	}
	svc.stats.StatsPolls++
	out := make([]int64, ndiv)
	for _, e := range dps[0].Table().Entries() {
		var d int
		if n, err := fmt.Sscanf(e.Cookie, "uni-p"+itoa(part)+".d%d", &d); err == nil && n == 1 {
			if d >= 0 && d < ndiv {
				out[d] += e.Matches()
			}
		}
	}
	return out
}

func itoa(i int) string { return fmt.Sprintf("%d", i) }

// rebalance recomputes one partition's division assignment from the
// counters observed since the last poll.
func (svc *Service) rebalance(part int) {
	v := svc.views[part]
	nrep := len(v.Replicas)
	if nrep <= 1 {
		return
	}
	ndiv := dynamicDivisionsFor(nrep)
	counters := svc.readDivisionCounters(part, ndiv)
	if counters == nil {
		return
	}
	st := svc.lb[part]
	if st == nil {
		st = &lbState{assign: svc.divisionAssignment(part, ndiv, nrep), last: make([]int64, ndiv)}
		svc.lb[part] = st
	}
	if len(st.last) != ndiv || len(st.assign) != ndiv {
		st.assign = svc.divisionAssignment(part, ndiv, nrep)
		st.last = make([]int64, ndiv)
	}
	delta := make([]int64, ndiv)
	var total int64
	for d := range counters {
		delta[d] = counters[d] - st.last[d]
		if delta[d] < 0 {
			delta[d] = counters[d] // rules were reinstalled; counter reset
		}
		st.last[d] = counters[d]
		total += delta[d]
	}
	if total < int64(svc.cfg.RebalanceMinOps) {
		return // too little signal to act on
	}

	// LPT greedy: heaviest divisions first, each onto the currently
	// lightest replica.
	order := make([]int, ndiv)
	for d := range order {
		order[d] = d
	}
	sort.Slice(order, func(a, b int) bool { return delta[order[a]] > delta[order[b]] })
	load := make([]int64, nrep)
	assign := make([]int, ndiv)
	for _, d := range order {
		best := 0
		for r := 1; r < nrep; r++ {
			if load[r] < load[best] {
				best = r
			}
		}
		assign[d] = best
		load[best] += delta[d]
	}
	changed := false
	for d := range assign {
		if assign[d] != st.assign[d] {
			changed = true
			break
		}
	}
	if !changed {
		return
	}
	st.assign = assign
	svc.stats.Rebalances++
	svc.tracef("%v: partition %d divisions rebalanced to %v", svc.s.Now(), part, assign)
	svc.installPartition(part)
}

// LBAssignment exposes the current division mapping of a partition for
// tests and tooling (nil when static).
func (svc *Service) LBAssignment(part int) []int {
	if svc.lb == nil || svc.lb[part] == nil {
		return nil
	}
	out := make([]int, len(svc.lb[part].assign))
	copy(out, svc.lb[part].assign)
	return out
}

// ndivFor returns the division count installPartition should use.
func (svc *Service) ndivFor(replicas int) int {
	if svc.cfg.DynamicLB {
		return dynamicDivisionsFor(replicas)
	}
	return replicas
}

// divisionsN splits the client space into exactly n power-of-two
// prefixes.
func (svc *Service) divisionsN(n int) []netsim.Prefix {
	bits := 0
	for 1<<bits < n {
		bits++
	}
	space := svc.cfg.ClientSpace
	out := make([]netsim.Prefix, n)
	width := uint32(1) << (32 - space.Bits - bits)
	for d := 0; d < n; d++ {
		out[d] = netsim.PrefixOf(space.Nth(uint32(d)*width), space.Bits+bits)
	}
	return out
}

var _ = openflow.FlowEntry{} // keep the import explicit for readers
