package controller

import (
	"time"

	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/switchcache"
)

// CacheManagerConfig parameterizes the hot-key detector.
type CacheManagerConfig struct {
	// HotThreshold is the sketch estimate at which a sampled key is
	// considered hot and fetched for installation.
	HotThreshold uint32
	// SketchRows/SketchCols size the count-min sketch.
	SketchRows, SketchCols int
	// DecayEvery is the sketch halving period (the detector's sliding
	// window); 0 disables decay.
	DecayEvery sim.Time
	// FetchTimeout clears a fetch that never came back (primary failed),
	// letting the key be retried.
	FetchTimeout sim.Time
}

// DefaultCacheManagerConfig tunes the detector for the simulated runs.
func DefaultCacheManagerConfig() CacheManagerConfig {
	return CacheManagerConfig{
		HotThreshold: 8,
		SketchRows:   4,
		SketchCols:   1024,
		DecayEvery:   500 * time.Millisecond,
		FetchTimeout: 100 * time.Millisecond,
	}
}

// CacheManagerStats counts detector activity.
type CacheManagerStats struct {
	Sampled  int64 // miss keys received from the switch
	Fetches  int64 // object fetches issued to primaries
	Installs int64 // install commands pushed to the switch
	Evicts   int64 // eviction commands pushed to make room
}

// CacheManager is the controller half of the in-switch cache (NetCache's
// cache-management module): it watches the sampled miss stream the switch
// mirrors up, ranks keys with a decayed count-min sketch, fetches objects
// that cross the hot threshold from their partition primary, and installs
// them — evicting the coldest resident entry when the table is full.
// The data plane never waits on it: everything here is off the get path.
type CacheManager struct {
	svc      *Service
	cache    *switchcache.Cache
	cfg      CacheManagerConfig
	space    ring.Space
	sketch   *switchcache.Sketch
	inflight map[string]bool // fetches awaiting a reply
	stats    CacheManagerStats
}

// EnableCache attaches a hot-key detector managing c to the metadata
// service. Call after Start; the switch's miss sampler is pointed at the
// detector and the decay loop is spawned here.
func (svc *Service) EnableCache(c *switchcache.Cache, cfg CacheManagerConfig) *CacheManager {
	if cfg.HotThreshold == 0 {
		cfg.HotThreshold = 8
	}
	if cfg.SketchRows <= 0 {
		cfg.SketchRows = 4
	}
	if cfg.SketchCols <= 0 {
		cfg.SketchCols = 1024
	}
	cm := &CacheManager{
		svc:      svc,
		cache:    c,
		cfg:      cfg,
		space:    ring.NewSpace(svc.cfg.Placement.N),
		sketch:   switchcache.NewSketch(cfg.SketchRows, cfg.SketchCols),
		inflight: make(map[string]bool),
	}
	svc.cacheMgr = cm
	c.SetSampler(cm.OnSample)
	// A chain-backed takeover reconciles the switch table against the
	// replicated install records: an entry the chain does not list as
	// resident was evicted (or never recorded) under the old generation,
	// and the new controller cannot vouch for its version — evict it.
	// Keys the chain lists but the switch lacks need nothing; the next
	// misses re-install them through the normal path.
	if svc.restoredCache != nil {
		resident := make(map[string]bool, len(svc.restoredCache))
		for _, ce := range svc.restoredCache {
			if ce.Resident {
				resident[ce.Key] = true
			}
		}
		for _, key := range c.Keys() { // Keys() is sorted: deterministic evict order
			if !resident[key] {
				svc.store.WriteCache(svc.gen, key, 0, false)
				c.EvictAs(svc.gen, key)
				cm.stats.Evicts++
			}
		}
	}
	if cfg.DecayEvery > 0 {
		svc.s.Spawn("cache-decay", func(p *sim.Proc) {
			for {
				p.Sleep(cfg.DecayEvery)
				cm.sketch.Halve()
			}
		})
	}
	return cm
}

// Stats returns detector counters.
func (cm *CacheManager) Stats() CacheManagerStats { return cm.stats }

// Sketch exposes the frequency estimator (tests and the eviction policy
// read it).
func (cm *CacheManager) Sketch() *switchcache.Sketch { return cm.sketch }

// OnSample receives one sampled miss key from the switch (already delayed
// by the control channel) and decides whether to start an install.
func (cm *CacheManager) OnSample(key string) {
	cm.stats.Sampled++
	est := cm.sketch.Add(key)
	if est < cm.cfg.HotThreshold || cm.cache.Contains(key) || cm.inflight[key] {
		return
	}
	cm.fetch(key)
}

// fetch asks the key's partition primary for the committed object.
func (cm *CacheManager) fetch(key string) {
	part := cm.space.PartitionOf(key)
	if part < 0 || part >= len(cm.svc.views) {
		return
	}
	v := cm.svc.views[part]
	if v == nil || len(v.Replicas) == 0 {
		return
	}
	cm.inflight[key] = true
	cm.stats.Fetches++
	cm.svc.sendToNode(v.Primary(), &CacheFetchRequest{Key: key, MaxSize: cm.maxSize()}, ctrlMsgSize)
	if cm.cfg.FetchTimeout > 0 {
		k := key
		cm.svc.s.After(cm.cfg.FetchTimeout, func() { delete(cm.inflight, k) })
	}
}

func (cm *CacheManager) maxSize() int { return cm.cache.Config().MaxValueSize }

// onFetchReply completes an install: make room if the table is full
// (evicting the resident key the sketch ranks coldest, and only when the
// new key is hotter), then push the entry to the switch. The switch-side
// version fence rejects the install if a put committed past the fetched
// copy while it was in flight.
func (cm *CacheManager) onFetchReply(m *CacheFetchReply) {
	delete(cm.inflight, m.Key)
	if !m.Found || cm.cache.Contains(m.Key) {
		return
	}
	// Write the install intent through to the state store first: a
	// rejection means a newer controller generation owns cache
	// management and this manager belongs to a fenced zombie.
	if !cm.svc.store.WriteCache(cm.svc.gen, m.Key, m.Ver, true) {
		cm.svc.stats.FencedWrites++
		return
	}
	if cm.cache.Len() >= cm.cache.Config().Capacity {
		victim, cold := cm.coldest()
		if victim == "" || cold >= cm.sketch.Estimate(m.Key) {
			return // nothing resident is colder than the candidate
		}
		cm.svc.store.WriteCache(cm.svc.gen, victim, 0, false)
		cm.cache.EvictAs(cm.svc.gen, victim)
		cm.stats.Evicts++
	}
	cm.cache.InstallAs(cm.svc.gen, m.Key, m.Value, m.Size, m.Ver)
	cm.stats.Installs++
}

// coldest returns the resident key with the lowest sketch estimate.
func (cm *CacheManager) coldest() (string, uint32) {
	victim, cold := "", ^uint32(0)
	for _, k := range cm.cache.Keys() {
		if e := cm.sketch.Estimate(k); e < cold || (e == cold && (victim == "" || k < victim)) {
			victim, cold = k, e
		}
	}
	return victim, cold
}
