package controller

import (
	"repro/internal/netsim"
	"repro/internal/openflow"
)

// McastRule is one loop-free multicast forwarding decision on a
// datapath: packets for the group arriving on InPort (openflow.AnyPort =
// the fallback entry) are replicated onto Ports. Multi-switch fabrics
// need ingress-specific entries so a packet is never reflected back
// toward its origin.
type McastRule struct {
	InPort int
	Ports  []int
}

// Topology tells the controller where to install which rules. The paper
// deploys two shapes (§5.1, §6 Platform): everything on one hardware
// OpenFlow switch, or header rewriting on client-side Open vSwitches with
// forwarding and multicast on the hardware core; §6 notes multi-switch
// fabrics follow by installing rules on every switch (see LeafSpine).
type Topology interface {
	// MappingDatapaths returns the datapaths that perform virtual-to-
	// physical header rewriting (client edges, or the single switch).
	MappingDatapaths() []*openflow.Datapath
	// GroupDatapaths returns the datapaths that hold multicast groups
	// (the fan-out points).
	GroupDatapaths() []*openflow.Datapath
	// AllDatapaths returns every controlled datapath.
	AllDatapaths() []*openflow.Datapath
	// PortToward returns dp's output port leading to ip (a host port or
	// an uplink toward the rest of the fabric).
	PortToward(dp *openflow.Datapath, ip netsim.IP) (int, bool)
	// HasGroups reports whether dp is a group datapath.
	HasGroups(dp *openflow.Datapath) bool
	// MulticastPlan returns dp's loop-free replication rules for a group
	// with the given member hosts. Exactly one entry should use
	// openflow.AnyPort (the fallback the vring mapping rule jumps to);
	// entries with empty Ports are skipped.
	MulticastPlan(dp *openflow.Datapath, members []netsim.IP) []McastRule
}

// SingleSwitch is the paper's primary platform: all hosts on one
// OpenFlow switch.
type SingleSwitch struct {
	DP    *openflow.Datapath
	ports map[netsim.IP]int
}

// NewSingleSwitch builds the topology descriptor; hosts are registered
// with Attach as they are cabled.
func NewSingleSwitch(dp *openflow.Datapath) *SingleSwitch {
	return &SingleSwitch{DP: dp, ports: make(map[netsim.IP]int)}
}

// Attach records that the host with ip sits on switch port.
func (t *SingleSwitch) Attach(ip netsim.IP, port int) { t.ports[ip] = port }

// MappingDatapaths implements Topology.
func (t *SingleSwitch) MappingDatapaths() []*openflow.Datapath {
	return []*openflow.Datapath{t.DP}
}

// GroupDatapaths implements Topology.
func (t *SingleSwitch) GroupDatapaths() []*openflow.Datapath {
	return []*openflow.Datapath{t.DP}
}

// AllDatapaths implements Topology.
func (t *SingleSwitch) AllDatapaths() []*openflow.Datapath {
	return []*openflow.Datapath{t.DP}
}

// PortToward implements Topology.
func (t *SingleSwitch) PortToward(dp *openflow.Datapath, ip netsim.IP) (int, bool) {
	p, ok := t.ports[ip]
	return p, ok
}

// HasGroups implements Topology.
func (t *SingleSwitch) HasGroups(dp *openflow.Datapath) bool { return dp == t.DP }

// MulticastPlan implements Topology: a single switch replicates to every
// member port unconditionally.
func (t *SingleSwitch) MulticastPlan(dp *openflow.Datapath, members []netsim.IP) []McastRule {
	var ports []int
	for _, ip := range members {
		if p, ok := t.ports[ip]; ok {
			ports = append(ports, p)
		}
	}
	return []McastRule{{InPort: openflow.AnyPort, Ports: ports}}
}

// EdgeCore is the paper's workaround deployment (§5.1): the hardware
// switch does not rewrite headers, so every client sits behind its own
// Open vSwitch that performs the virtual-to-physical mapping, while the
// core switch forwards and multicasts.
type EdgeCore struct {
	Core *openflow.Datapath
	// Edges are the client-side Open vSwitches. Port 0 of each edge faces
	// the client; Uplink faces the core.
	Edges  []*openflow.Datapath
	Uplink map[*openflow.Datapath]int // edge -> its core-facing port
	ports  map[netsim.IP]int          // host -> core port (storage nodes and edge uplinks' hosts)
	local  map[*openflow.Datapath]map[netsim.IP]int
}

// NewEdgeCore builds the two-tier descriptor.
func NewEdgeCore(core *openflow.Datapath) *EdgeCore {
	return &EdgeCore{
		Core:   core,
		Uplink: make(map[*openflow.Datapath]int),
		ports:  make(map[netsim.IP]int),
		local:  make(map[*openflow.Datapath]map[netsim.IP]int),
	}
}

// AttachLocal records that ip hangs directly off edge port (the edge's
// own client).
func (t *EdgeCore) AttachLocal(edge *openflow.Datapath, ip netsim.IP, port int) {
	m := t.local[edge]
	if m == nil {
		m = make(map[netsim.IP]int)
		t.local[edge] = m
	}
	m[ip] = port
}

// AttachCore records that the host (or edge subtree containing it) with
// ip is reached through core port.
func (t *EdgeCore) AttachCore(ip netsim.IP, port int) { t.ports[ip] = port }

// AddEdge registers a client edge switch and its uplink port.
func (t *EdgeCore) AddEdge(edge *openflow.Datapath, uplinkPort int) {
	t.Edges = append(t.Edges, edge)
	t.Uplink[edge] = uplinkPort
}

// MappingDatapaths implements Topology: rewriting happens at the edges.
func (t *EdgeCore) MappingDatapaths() []*openflow.Datapath { return t.Edges }

// GroupDatapaths implements Topology: the core multicasts.
func (t *EdgeCore) GroupDatapaths() []*openflow.Datapath {
	return []*openflow.Datapath{t.Core}
}

// AllDatapaths implements Topology.
func (t *EdgeCore) AllDatapaths() []*openflow.Datapath {
	out := make([]*openflow.Datapath, 0, len(t.Edges)+1)
	out = append(out, t.Core)
	out = append(out, t.Edges...)
	return out
}

// PortToward implements Topology: on an edge everything non-local goes up
// the uplink; on the core, to the registered port.
func (t *EdgeCore) PortToward(dp *openflow.Datapath, ip netsim.IP) (int, bool) {
	if dp == t.Core {
		p, ok := t.ports[ip]
		return p, ok
	}
	if p, ok := t.local[dp][ip]; ok {
		return p, true
	}
	if up, ok := t.Uplink[dp]; ok {
		return up, true
	}
	return 0, false
}

// HasGroups implements Topology.
func (t *EdgeCore) HasGroups(dp *openflow.Datapath) bool { return dp == t.Core }

// MulticastPlan implements Topology: the core fans out to the member
// host ports (members hang off the core directly; edges only front
// clients).
func (t *EdgeCore) MulticastPlan(dp *openflow.Datapath, members []netsim.IP) []McastRule {
	var ports []int
	for _, ip := range members {
		if p, ok := t.ports[ip]; ok {
			ports = append(ports, p)
		}
	}
	return []McastRule{{InPort: openflow.AnyPort, Ports: ports}}
}
