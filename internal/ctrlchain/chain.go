// Package ctrlchain replicates the controller's coordination state
// across a chain of switch-resident state stores, after NetChain
// (arXiv 1802.08236). Writes enter at the head and propagate hop by
// hop to the tail, which acks; reads are served from the tail alone,
// sub-RTT, because the chain invariant (every store holds a superset
// of its successor) makes the tail the committed prefix. A fail-stop
// replica is detected by probing, spliced out of the chain, and the
// survivors re-converge by copying state down from the head-most
// store; the chain epoch is bumped on every splice and reads are
// refused while a repair is in flight, so a healing chain never
// serves a pre-failure view. Writer generations (Acquire) fence
// zombie controllers: a write stamped with a generation below the
// newest acquired one is rejected at the head.
//
// The chain is modeled on the simulator the same way switchcache
// models the data-plane cache: hops are sim.After delays, not
// packets, which keeps the replication protocol deterministic and
// cheap while preserving its timing shape.
package ctrlchain

import (
	"sort"
	"time"

	"repro/internal/sim"
)

// Config sizes the chain and its failure detector.
type Config struct {
	// Replicas is the chain length (head..tail).
	Replicas int
	// HopDelay is the one-hop propagation delay between adjacent
	// chain stores (and the head's ingress delay).
	HopDelay sim.Time
	// ProbeEvery is the failure-detector probe period.
	ProbeEvery sim.Time
	// MissedProbes is how many consecutive probes a store must miss
	// before it is spliced out.
	MissedProbes int
	// CopyDelay is the base latency of the repair state copy from the
	// surviving replica (in-flight writes are also drained, so the
	// total repair window is CopyDelay plus a chain traversal).
	CopyDelay sim.Time
}

// DefaultConfig returns the chain geometry used by the cluster
// harness: three replicas, 50µs hops, 1ms probes.
func DefaultConfig() Config {
	return Config{
		Replicas:     3,
		HopDelay:     50 * time.Microsecond,
		ProbeEvery:   time.Millisecond,
		MissedProbes: 2,
		CopyDelay:    200 * time.Microsecond,
	}
}

// Entry is one replicated key. Ver must be monotonic per key across
// all writers (the controller composes writer generation and a
// sequence number), so a delayed duplicate or a post-repair flush can
// never roll a key back.
type Entry struct {
	Key string
	Ver uint64
	Val any
}

// Stats counts chain traffic and repair activity.
type Stats struct {
	Writes       int64 // accepted writes (propagated or buffered)
	Fenced       int64 // writes rejected for a stale writer generation
	Buffered     int64 // writes queued while a repair was in flight
	Acked        int64 // writes that reached the tail
	Dropped      int64 // hop deliveries abandoned at a dead store
	Reads        int64 // tail reads served
	ReadsBlocked int64 // reads refused mid-repair
	Repairs      int64 // splices of a dead store
	Rejoins      int64 // revived stores re-added at the tail
}

// store is one switch-resident replica of the coordination state.
type store struct {
	idx  int
	down bool
	miss int
	data map[string]Entry
}

func (st *store) apply(e Entry) {
	if old, ok := st.data[e.Key]; ok && old.Ver > e.Ver {
		return // delayed duplicate from an older chain pass
	}
	st.data[e.Key] = e
}

type pendingWrite struct {
	gen  uint64
	e    Entry
	done func(bool)
}

// Chain is the replicated state store. All methods must be called
// from simulator context; the chain owns no goroutines besides its
// probe proc.
type Chain struct {
	s      *sim.Simulator
	cfg    Config
	stores []*store
	order  []int // live chain, head first, tail last
	epoch  uint64
	gen    uint64
	// repairing is true from fail-stop detection (or a revive) until
	// the splice's state copy lands; reads are refused and writes
	// buffered for the whole window.
	repairing bool
	pending   []pendingWrite
	stats     Stats
}

// New builds a chain of cfg.Replicas stores and starts its failure
// detector.
func New(s *sim.Simulator, cfg Config) *Chain {
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultConfig().Replicas
	}
	if cfg.HopDelay <= 0 {
		cfg.HopDelay = DefaultConfig().HopDelay
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = DefaultConfig().ProbeEvery
	}
	if cfg.MissedProbes <= 0 {
		cfg.MissedProbes = DefaultConfig().MissedProbes
	}
	if cfg.CopyDelay <= 0 {
		cfg.CopyDelay = DefaultConfig().CopyDelay
	}
	c := &Chain{s: s, cfg: cfg, epoch: 1}
	for i := 0; i < cfg.Replicas; i++ {
		c.stores = append(c.stores, &store{idx: i, data: make(map[string]Entry)})
		c.order = append(c.order, i)
	}
	s.Spawn("ctrlchain-probe", c.monitor)
	return c
}

// Acquire hands out the next writer generation. The controller calls
// it once at startup; a promoted standby calls it again, and from
// that moment every write stamped with an older generation is fenced.
func (c *Chain) Acquire() uint64 {
	c.gen++
	return c.gen
}

// Gen returns the newest acquired writer generation.
func (c *Chain) Gen() uint64 { return c.gen }

// Epoch returns the chain epoch, bumped on every splice or rejoin.
func (c *Chain) Epoch() uint64 { return c.epoch }

// Repairing reports whether a splice is in flight (reads refused).
func (c *Chain) Repairing() bool { return c.repairing }

// Live returns the number of stores currently in the chain.
func (c *Chain) Live() int { return len(c.order) }

// Stats returns a snapshot of the chain counters.
func (c *Chain) Stats() Stats { return c.stats }

// Write replicates e down the chain. It reports synchronously whether
// the write was accepted (fence check); done, if non-nil, fires when
// the tail acks or the write is fenced. A write accepted while a
// repair is in flight is buffered and flushed, in order, once the
// chain heals.
func (c *Chain) Write(gen uint64, e Entry, done func(ok bool)) bool {
	if gen < c.gen {
		c.stats.Fenced++
		if done != nil {
			done(false)
		}
		return false
	}
	c.stats.Writes++
	if c.repairing || len(c.order) == 0 {
		c.stats.Buffered++
		c.pending = append(c.pending, pendingWrite{gen, e, done})
		return true
	}
	path := append([]int(nil), c.order...)
	c.propagate(path, 0, e, done)
	return true
}

// propagate delivers e to path[i] after one hop delay and chains the
// next hop. Delivery to a store that died mid-flight is abandoned:
// the repair's state copy from the surviving upstream replica
// restores the chain invariant for everything the dead store missed.
func (c *Chain) propagate(path []int, i int, e Entry, done func(bool)) {
	c.s.After(c.cfg.HopDelay, func() {
		st := c.stores[path[i]]
		if st.down {
			c.stats.Dropped++
			return
		}
		st.apply(e)
		if i+1 < len(path) {
			c.propagate(path, i+1, e, done)
			return
		}
		c.stats.Acked++
		if done != nil {
			done(true)
		}
	})
}

// Read serves key from the tail, sub-RTT. ok is false mid-repair or
// when the whole chain is down.
func (c *Chain) Read(key string) (Entry, bool) {
	if c.repairing || len(c.order) == 0 {
		c.stats.ReadsBlocked++
		return Entry{}, false
	}
	c.stats.Reads++
	e, ok := c.stores[c.order[len(c.order)-1]].data[key]
	return e, ok
}

// Snapshot returns every entry held by the tail, sorted by key for
// determinism. ok is false while a repair is in flight — a healing
// chain never serves a (possibly pre-failure) view.
func (c *Chain) Snapshot() ([]Entry, bool) {
	if c.repairing || len(c.order) == 0 {
		c.stats.ReadsBlocked++
		return nil, false
	}
	c.stats.Reads++
	tail := c.stores[c.order[len(c.order)-1]]
	out := make([]Entry, 0, len(tail.data))
	for _, e := range tail.data {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, true
}

// SetDown fail-stops (or revives) chain store idx. This is the fault
// hook: the store drops hop deliveries immediately; the probe loop
// notices after MissedProbes periods and splices it out.
func (c *Chain) SetDown(idx int, down bool) {
	if idx < 0 || idx >= len(c.stores) {
		return
	}
	c.stores[idx].down = down
	if !down {
		c.stores[idx].miss = 0
	}
}

func (c *Chain) inOrder(idx int) bool {
	for _, i := range c.order {
		if i == idx {
			return true
		}
	}
	return false
}

// monitor is the fail-stop detector: every ProbeEvery it probes all
// stores, splicing out a live-chain member that missed MissedProbes
// consecutive probes and rejoining a revived store at the tail.
func (c *Chain) monitor(p *sim.Proc) {
	for {
		p.Sleep(c.cfg.ProbeEvery)
		for _, st := range c.stores {
			live := c.inOrder(st.idx)
			switch {
			case st.down && live:
				st.miss++
				if st.miss >= c.cfg.MissedProbes {
					c.splice(st.idx)
				}
			case !st.down && !live:
				c.rejoin(st.idx)
			default:
				st.miss = 0
			}
		}
	}
}

// splice removes a dead store, bumps the chain epoch and schedules
// the neighbor repair: after the in-flight writes drain and the copy
// delay elapses, the head-most survivor (which holds a superset of
// every successor) pushes its state down the remaining chain.
func (c *Chain) splice(dead int) {
	if c.repairing {
		return // one repair at a time; the probe loop re-triggers
	}
	c.repairing = true
	c.epoch++
	c.stats.Repairs++
	out := c.order[:0]
	for _, i := range c.order {
		if i != dead {
			out = append(out, i)
		}
	}
	c.order = out
	c.stores[dead].miss = 0
	drain := c.cfg.HopDelay * sim.Time(len(c.order)+1)
	c.s.After(c.cfg.CopyDelay+drain, func() {
		if len(c.order) > 0 {
			src := c.stores[c.order[0]]
			for _, i := range c.order[1:] {
				c.stores[i].data = cloneData(src.data)
			}
		}
		c.repairing = false
		c.flush()
	})
}

// rejoin re-adds a revived store at the tail: it first receives a
// copy of the current tail's state (exactly the acked prefix), so the
// chain invariant holds the moment it starts serving. The epoch bump
// and the repairing window fence out anything it held pre-crash.
func (c *Chain) rejoin(idx int) {
	if c.repairing {
		return
	}
	c.repairing = true
	c.epoch++
	c.stats.Rejoins++
	drain := c.cfg.HopDelay * sim.Time(len(c.order)+1)
	c.s.After(c.cfg.CopyDelay+drain, func() {
		if c.stores[idx].down {
			// Died again while the copy was in flight; abandon the
			// rejoin and let the probe loop sort it out.
			c.repairing = false
			c.flush()
			return
		}
		if len(c.order) > 0 {
			tail := c.stores[c.order[len(c.order)-1]]
			c.stores[idx].data = cloneData(tail.data)
		}
		c.order = append(c.order, idx)
		c.repairing = false
		c.flush()
	})
}

// flush replays the writes buffered during a repair, in arrival
// order, re-checking the writer fence (a generation may have been
// acquired while the chain healed).
func (c *Chain) flush() {
	pend := c.pending
	c.pending = nil
	for _, w := range pend {
		if w.gen < c.gen {
			c.stats.Fenced++
			if w.done != nil {
				w.done(false)
			}
			continue
		}
		if c.repairing || len(c.order) == 0 {
			c.stats.Buffered++
			c.pending = append(c.pending, w)
			continue
		}
		path := append([]int(nil), c.order...)
		c.propagate(path, 0, w.e, w.done)
	}
}

func cloneData(m map[string]Entry) map[string]Entry {
	out := make(map[string]Entry, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
