package ctrlchain

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func ms(n int) sim.Time { return sim.Time(n) * time.Millisecond }

func testChain(t *testing.T) (*sim.Simulator, *Chain) {
	t.Helper()
	s := sim.New(1)
	c := New(s, DefaultConfig())
	return s, c
}

func TestWriteReachesTailAndAcks(t *testing.T) {
	s, c := testChain(t)
	gen := c.Acquire()
	var ackedAt sim.Time
	start := s.Now()
	if !c.Write(gen, Entry{Key: "view/0", Ver: 1, Val: "a"}, func(ok bool) {
		if !ok {
			t.Error("write not acked")
		}
		ackedAt = s.Now()
	}) {
		t.Fatal("write rejected")
	}
	s.RunUntil(s.Now() + ms(10))
	want := start + 3*DefaultConfig().HopDelay // one hop per replica
	if ackedAt != want {
		t.Fatalf("tail ack at %v, want %v", ackedAt, want)
	}
	e, ok := c.Read("view/0")
	if !ok || e.Val != "a" {
		t.Fatalf("tail read = %+v, %v", e, ok)
	}
}

func TestSnapshotSortedAndVersioned(t *testing.T) {
	s, c := testChain(t)
	gen := c.Acquire()
	c.Write(gen, Entry{Key: "b", Ver: 1, Val: 1}, nil)
	c.Write(gen, Entry{Key: "a", Ver: 1, Val: 2}, nil)
	c.Write(gen, Entry{Key: "a", Ver: 2, Val: 3}, nil)
	s.RunUntil(s.Now() + ms(10))
	snap, ok := c.Snapshot()
	if !ok || len(snap) != 2 {
		t.Fatalf("snapshot = %+v, %v", snap, ok)
	}
	if snap[0].Key != "a" || snap[1].Key != "b" {
		t.Fatalf("snapshot not sorted: %+v", snap)
	}
	if snap[0].Ver != 2 || snap[0].Val != 3 {
		t.Fatalf("version guard lost the newer write: %+v", snap[0])
	}
}

func TestStaleGenerationFenced(t *testing.T) {
	s, c := testChain(t)
	old := c.Acquire()
	newer := c.Acquire()
	fenced := false
	if c.Write(old, Entry{Key: "k", Ver: 1}, func(ok bool) { fenced = !ok }) {
		t.Fatal("stale-generation write accepted")
	}
	if !fenced {
		t.Fatal("done callback not told about the fence")
	}
	if !c.Write(newer, Entry{Key: "k", Ver: 2, Val: "new"}, nil) {
		t.Fatal("current-generation write rejected")
	}
	s.RunUntil(s.Now() + ms(10))
	if got := c.Stats().Fenced; got != 1 {
		t.Fatalf("Fenced = %d, want 1", got)
	}
	if e, ok := c.Read("k"); !ok || e.Val != "new" {
		t.Fatalf("read = %+v, %v", e, ok)
	}
}

// A killed replica is spliced out, the epoch advances, reads are
// refused during the repair window, and the survivors still hold
// everything the tail had acked.
func TestSpliceRepairPreservesState(t *testing.T) {
	s, c := testChain(t)
	gen := c.Acquire()
	c.Write(gen, Entry{Key: "view/0", Ver: 3, Val: "keep"}, nil)
	s.RunUntil(s.Now() + ms(5))
	epoch0 := c.Epoch()

	c.SetDown(1, true) // kill the middle store
	// Wait for detection (MissedProbes probes) to start the repair.
	deadline := s.Now() + ms(20)
	for s.Now() < deadline && !c.Repairing() {
		s.RunUntil(s.Now() + c.cfg.ProbeEvery)
	}
	if !c.Repairing() {
		t.Fatal("repair never started")
	}
	if _, ok := c.Snapshot(); ok {
		t.Fatal("healing chain served a read")
	}
	s.RunUntil(s.Now() + ms(20))
	if c.Repairing() {
		t.Fatal("repair never finished")
	}
	if c.Epoch() != epoch0+1 {
		t.Fatalf("epoch = %d, want %d", c.Epoch(), epoch0+1)
	}
	if c.Live() != 2 {
		t.Fatalf("live = %d, want 2", c.Live())
	}
	if e, ok := c.Read("view/0"); !ok || e.Val != "keep" {
		t.Fatalf("post-repair read = %+v, %v", e, ok)
	}
}

// Writes accepted mid-repair are buffered and land once the chain
// heals; a revived store rejoins at the tail with the acked state.
func TestBufferedWritesFlushAndRejoin(t *testing.T) {
	s, c := testChain(t)
	gen := c.Acquire()
	c.SetDown(2, true)
	deadline := s.Now() + ms(20)
	for s.Now() < deadline && !c.Repairing() {
		s.RunUntil(s.Now() + c.cfg.ProbeEvery)
	}
	if !c.Repairing() {
		t.Fatal("repair never started")
	}
	acked := false
	if !c.Write(gen, Entry{Key: "mid", Ver: 1, Val: "x"}, func(ok bool) { acked = ok }) {
		t.Fatal("mid-repair write rejected")
	}
	s.RunUntil(s.Now() + ms(20))
	if !acked {
		t.Fatal("buffered write never acked")
	}
	if e, ok := c.Read("mid"); !ok || e.Val != "x" {
		t.Fatalf("read = %+v, %v", e, ok)
	}

	// Revive: the store rejoins at the tail and serves the full state.
	epoch := c.Epoch()
	c.SetDown(2, false)
	s.RunUntil(s.Now() + ms(20))
	if c.Live() != 3 {
		t.Fatalf("live = %d, want 3 after rejoin", c.Live())
	}
	if c.Epoch() <= epoch {
		t.Fatalf("epoch = %d, want > %d after rejoin", c.Epoch(), epoch)
	}
	if e, ok := c.Read("mid"); !ok || e.Val != "x" {
		t.Fatalf("tail read after rejoin = %+v, %v", e, ok)
	}
	if c.Stats().Rejoins != 1 {
		t.Fatalf("Rejoins = %d, want 1", c.Stats().Rejoins)
	}
}

// In-flight writes that die at a failed store are restored downstream
// by the repair copy: a write applied at the head but dropped at the
// dead middle store must still be readable at the tail after repair.
func TestRepairCopyRestoresInFlightWrite(t *testing.T) {
	s, c := testChain(t)
	gen := c.Acquire()
	// Kill the tail so the write lands on head and middle only.
	c.SetDown(2, true)
	c.Write(gen, Entry{Key: "inflight", Ver: 1, Val: "v"}, nil)
	s.RunUntil(s.Now() + ms(30)) // detection + splice + copy
	if c.Repairing() {
		t.Fatal("repair never finished")
	}
	if e, ok := c.Read("inflight"); !ok || e.Val != "v" {
		t.Fatalf("read after repair = %+v, %v (dropped=%d)", e, ok, c.Stats().Dropped)
	}
}
