package workload

import "math"

// OpenLoop schedules request arrivals for a fleet of virtual clients in
// open-loop fashion: each client fires with exponential (Poisson)
// inter-arrival gaps regardless of whether earlier requests completed, so
// offered load never degrades to the closed-loop one-outstanding-op
// pattern under server slowdown. It is the arrival half of the traffic
// engine — sim-free and deterministic, so the same seed replays the same
// arrival sequence everywhere.
//
// The implementation is a calendar ring sized to the truncation cap on a
// single gap. A client is always in exactly one bucket, so buckets are
// intrusive chains through two flat int32 arrays — head (per bucket) and
// next (per client) — and per-client PRNG state is one uint64 in a flat
// slice. Nothing is ever appended or resized: after construction the
// engine allocates zero bytes regardless of fleet size or run length.
// Serving a tick walks the chain and re-files each client by pushing it
// onto its next bucket's chain; within a tick clients therefore fire in
// reverse filing order, which is as deterministic as any other.
type OpenLoop struct {
	mean float64  // mean inter-arrival gap per client, ns
	tick int64    // calendar bucket width, ns
	cap  int64    // truncation cap on one gap, ns (8x mean)
	rng  []uint64 // per-client PRNG state
	head []int32  // per-bucket chain head: client index, or -1
	next []int32  // per-client chain link
	mask int64    // len(head)-1; ring length is a power of two
	cur  int64    // absolute tick index the next Tick call serves
}

// NewOpenLoop builds the arrival schedule for `clients` virtual clients
// with the given mean inter-arrival gap per client, batching arrivals
// into ticks of the given width (both in virtual nanoseconds). Gaps are
// truncated at 8x the mean (probability e^-8 ≈ 3e-4, negligible rate
// bias) so the calendar ring stays bounded; gaps under one tick round up,
// so a single client fires at most once per tick and the offered rate
// per client is capped at 1/tick. Initial arrivals draw a full
// exponential gap, so the aggregate process is Poisson from t=0.
func NewOpenLoop(clients int, mean, tick int64, seed int64) *OpenLoop {
	if tick <= 0 || mean < tick {
		panic("workload: open-loop mean gap must be at least one tick")
	}
	o := &OpenLoop{
		mean: float64(mean),
		tick: tick,
		cap:  8 * mean,
		rng:  make([]uint64, clients),
		next: make([]int32, clients),
		cur:  1, // tick 0 is never served: first arrivals land at tick >= 1
	}
	ringLen := int64(2)
	for ringLen < o.cap/tick+2 {
		ringLen *= 2
	}
	o.head = make([]int32, ringLen)
	o.mask = ringLen - 1
	for b := range o.head {
		o.head[b] = -1
	}
	for c := range o.rng {
		// splitmix64 of (seed, client) decorrelates per-client streams.
		o.rng[c] = splitmix64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(c) + 1)
		// The first gap is a full exponential draw, like every later one:
		// the process is memoryless, so anything else (say, a uniform
		// stagger) would bias the arrival count over the first mean gap.
		gap := int64(-o.mean * math.Log(1-o.u01(int32(c))))
		if gap > o.cap {
			gap = o.cap
		}
		o.file(int32(c), int64(1)+gap/tick)
	}
	return o
}

// file pushes client c onto the chain of the bucket for absolute tick at.
func (o *OpenLoop) file(c int32, at int64) {
	b := at & o.mask
	o.next[c] = o.head[b]
	o.head[b] = c
}

// Clients returns the fleet size.
func (o *OpenLoop) Clients() int { return len(o.rng) }

// TickWidth returns the calendar bucket width in virtual nanoseconds.
func (o *OpenLoop) TickWidth() int64 { return o.tick }

// Tick serves the next tick's arrival batch: fn is called once per
// arriving client, and each served client is re-filed at its next
// arrival. It returns the batch size. The caller owns pacing — the
// traffic engine calls Tick once per elapsed tick of virtual time.
func (o *OpenLoop) Tick(fn func(client int32)) int {
	b := o.cur & o.mask
	c := o.head[b]
	o.head[b] = -1
	n := 0
	for c >= 0 {
		nx := o.next[c] // read before re-filing overwrites the link
		fn(c)
		gap := int64(-o.mean * math.Log(1-o.u01(c)))
		if gap > o.cap {
			gap = o.cap
		}
		o.file(c, o.cur+1+gap/o.tick) // at least one full tick ahead
		n++
		c = nx
	}
	o.cur++
	return n
}

// u01 draws the client's next uniform in [0, 1) from its xorshift64*
// stream.
func (o *OpenLoop) u01(c int32) float64 {
	x := o.rng[c]
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	o.rng[c] = x
	return float64((x*0x2545f4914f6cdd1d)>>11) / (1 << 53)
}

// splitmix64 is the one-shot seeding hash (same constants as
// cluster.DeriveSeed).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
