package workload

import (
	"runtime"
	"testing"
)

// TestOpenLoopRate: over many ticks the served arrival count converges on
// clients * elapsed / mean — the open-loop offered rate.
func TestOpenLoopRate(t *testing.T) {
	const (
		clients = 1000
		mean    = 1_000_000 // 1ms
		tick    = 10_000    // 10us
		ticks   = 100_000   // 1s
	)
	o := NewOpenLoop(clients, mean, tick, 42)
	total := 0
	for i := 0; i < ticks; i++ {
		total += o.Tick(func(int32) {})
	}
	want := float64(clients) * float64(ticks*tick) / float64(mean)
	if ratio := float64(total) / want; ratio < 0.99 || ratio > 1.01 {
		t.Fatalf("served %d arrivals over %d ticks, want ~%.0f (ratio %.3f)", total, ticks, want, ratio)
	}
}

// TestOpenLoopDeterminism: same parameters and seed, same arrival
// sequence.
func TestOpenLoopDeterminism(t *testing.T) {
	a := NewOpenLoop(500, 1_000_000, 10_000, 7)
	b := NewOpenLoop(500, 1_000_000, 10_000, 7)
	for i := 0; i < 20_000; i++ {
		var sa, sb []int32
		a.Tick(func(c int32) { sa = append(sa, c) })
		b.Tick(func(c int32) { sb = append(sb, c) })
		if len(sa) != len(sb) {
			t.Fatalf("tick %d: batch sizes differ (%d vs %d)", i, len(sa), len(sb))
		}
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("tick %d: arrival %d differs (%d vs %d)", i, j, sa[j], sb[j])
			}
		}
	}
}

// TestOpenLoopOncePerTick: the calendar re-files a served client at least
// one full tick ahead, so no client fires twice in one batch.
func TestOpenLoopOncePerTick(t *testing.T) {
	o := NewOpenLoop(200, 50_000, 10_000, 3) // mean only 5 ticks: heavy reuse
	seen := make(map[int32]bool, 200)
	for i := 0; i < 50_000; i++ {
		clear(seen)
		o.Tick(func(c int32) {
			if seen[c] {
				t.Fatalf("tick %d: client %d fired twice", i, c)
			}
			seen[c] = true
		})
	}
}

// TestOpenLoopZeroAlloc: after construction the calendar allocates
// nothing — buckets are intrusive chains through flat arrays.
func TestOpenLoopZeroAlloc(t *testing.T) {
	o := NewOpenLoop(10_000, 1_000_000, 10_000, 9)
	fn := func(int32) {}
	for i := 0; i < 1000; i++ { // warm up the closure and any lazy state
		o.Tick(fn)
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < 100_000; i++ {
		o.Tick(fn)
	}
	runtime.ReadMemStats(&m1)
	if d := m1.TotalAlloc - m0.TotalAlloc; d != 0 {
		t.Fatalf("calendar allocated %d B over 100k ticks, want 0", d)
	}
}
