// Package workload generates YCSB-compatible key-value workloads [16]:
// the standard core workload mixes (A-D, F) with zipfian, uniform and
// latest request distributions. The paper's evaluation (§6.7) uses
// workload C (read-only) and F (read-modify-write), both zipfian, with
// 1 KB objects.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// OpType is one YCSB operation kind.
type OpType int

// Operation kinds.
const (
	Read OpType = iota
	Update
	Insert
	ReadModifyWrite
)

// String names the operation.
func (t OpType) String() string {
	switch t {
	case Read:
		return "read"
	case Update:
		return "update"
	case Insert:
		return "insert"
	case ReadModifyWrite:
		return "rmw"
	}
	return "unknown"
}

// Op is one generated operation.
type Op struct {
	Type OpType
	Key  string
}

// DefaultValueSize is YCSB's default record size (10 fields x 100 B).
const DefaultValueSize = 1000

// KeyChooser picks a record index from [0, n).
type KeyChooser interface {
	Next(rng *rand.Rand) int
}

// Uniform picks records uniformly.
type Uniform struct{ N int }

// Next implements KeyChooser.
func (u Uniform) Next(rng *rand.Rand) int { return rng.Intn(u.N) }

// Zipfian picks records with the YCSB zipfian distribution (Gray et
// al.'s algorithm, theta = 0.99), scrambled so popular records spread
// over the keyspace.
type Zipfian struct {
	n            int
	theta        float64
	alpha        float64
	zetan, zeta2 float64
	eta          float64
	scramble     bool
}

// ZipfTheta is YCSB's default skew.
const ZipfTheta = 0.99

// NewZipfian builds a scrambled zipfian chooser over n records.
func NewZipfian(n int) *Zipfian {
	return newZipfian(n, ZipfTheta, true)
}

// NewZipfianTheta builds a scrambled zipfian chooser with an explicit
// skew parameter (the skew sweeps vary theta; YCSB fixes it at 0.99).
func NewZipfianTheta(n int, theta float64) *Zipfian {
	return newZipfian(n, theta, true)
}

func newZipfian(n int, theta float64, scramble bool) *Zipfian {
	z := &Zipfian{n: n, theta: theta, scramble: scramble}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements KeyChooser.
func (z *Zipfian) Next(rng *rand.Rand) int {
	u := rng.Float64()
	uz := u * z.zetan
	var rank int
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank >= z.n {
		rank = z.n - 1
	}
	if !z.scramble {
		return rank
	}
	return int(fnv64(uint64(rank)) % uint64(z.n))
}

// fnv64 hashes a record rank for scrambling.
func fnv64(v uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// HotSpot concentrates HotOpFrac of the operations on the first
// HotSetFrac of the records (YCSB's hotspot distribution): a step-shaped
// skew that, unlike zipfian, has a sharp boundary between hot and cold —
// the worst case for any fixed-size cache sized below the hot set and the
// best case above it.
type HotSpot struct {
	N int
	// HotSetFrac is the fraction of records forming the hot set (y).
	HotSetFrac float64
	// HotOpFrac is the fraction of operations addressing the hot set (x).
	HotOpFrac float64
}

// NewHotSpot builds the classic x/y hotspot chooser (e.g. 0.9 of ops on
// 0.1 of records).
func NewHotSpot(n int, hotOpFrac, hotSetFrac float64) HotSpot {
	return HotSpot{N: n, HotOpFrac: hotOpFrac, HotSetFrac: hotSetFrac}
}

// Next implements KeyChooser: uniform within the chosen set.
func (h HotSpot) Next(rng *rand.Rand) int {
	hot := int(float64(h.N) * h.HotSetFrac)
	if hot < 1 {
		hot = 1
	}
	if hot >= h.N {
		return rng.Intn(h.N)
	}
	if rng.Float64() < h.HotOpFrac {
		return rng.Intn(hot)
	}
	return hot + rng.Intn(h.N-hot)
}

// Latest favors recently inserted records (YCSB workload D).
type Latest struct {
	w *Workload
	z *Zipfian
}

// Next implements KeyChooser: zipfian over recency.
func (l *Latest) Next(rng *rand.Rand) int {
	max := l.w.records
	back := l.z.Next(rng)
	if back >= max {
		back = max - 1
	}
	return max - 1 - back
}

// Workload is one YCSB core workload instance.
type Workload struct {
	Name      string
	ValueSize int

	readProp, updateProp, insertProp, rmwProp float64

	records int
	chooser KeyChooser
}

// Define builds one of the YCSB core workloads over `records` preloaded
// records. Supported: "A", "B", "C", "D", "F" (E is scan-based; this
// store has no scans).
func Define(name string, records int) (*Workload, error) {
	w := &Workload{Name: name, ValueSize: DefaultValueSize, records: records}
	switch name {
	case "A": // update heavy: 50/50 zipfian
		w.readProp, w.updateProp = 0.5, 0.5
		w.chooser = NewZipfian(records)
	case "B": // read mostly: 95/5 zipfian
		w.readProp, w.updateProp = 0.95, 0.05
		w.chooser = NewZipfian(records)
	case "C": // read only, zipfian
		w.readProp = 1.0
		w.chooser = NewZipfian(records)
	case "D": // read latest: 95/5 insert
		w.readProp, w.insertProp = 0.95, 0.05
		// Latest needs rank order preserved: unscrambled zipfian over
		// recency.
		w.chooser = &Latest{w: w, z: newZipfian(records, ZipfTheta, false)}
	case "F": // read-modify-write: 50/50 zipfian
		w.readProp, w.rmwProp = 0.5, 0.5
		w.chooser = NewZipfian(records)
	default:
		return nil, fmt.Errorf("workload: unsupported YCSB workload %q", name)
	}
	return w, nil
}

// MustDefine is Define that panics on error.
func MustDefine(name string, records int) *Workload {
	w, err := Define(name, records)
	if err != nil {
		panic(err)
	}
	return w
}

// Records returns the preload record count (it grows under inserts).
func (w *Workload) Records() int { return w.records }

// Key renders record index i as its YCSB key.
func (w *Workload) Key(i int) string { return fmt.Sprintf("user%d", i) }

// Next draws one operation.
func (w *Workload) Next(rng *rand.Rand) Op {
	r := rng.Float64()
	switch {
	case r < w.readProp:
		return Op{Type: Read, Key: w.Key(w.chooser.Next(rng))}
	case r < w.readProp+w.updateProp:
		return Op{Type: Update, Key: w.Key(w.chooser.Next(rng))}
	case r < w.readProp+w.updateProp+w.rmwProp:
		return Op{Type: ReadModifyWrite, Key: w.Key(w.chooser.Next(rng))}
	default:
		w.records++
		return Op{Type: Insert, Key: w.Key(w.records - 1)}
	}
}

// PutFraction returns the fraction of operations that write (updates,
// inserts, and the write half of read-modify-writes count as puts).
func (w *Workload) PutFraction() float64 {
	return w.updateProp + w.insertProp + w.rmwProp
}
