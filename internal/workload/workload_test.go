package workload

import (
	"math/rand"
	"sort"
	"testing"
)

func TestDefineUnknownWorkload(t *testing.T) {
	if _, err := Define("E", 100); err == nil {
		t.Fatal("E (scan workload) should be rejected")
	}
	if _, err := Define("zzz", 100); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestWorkloadMixes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name   string
		counts map[OpType]float64 // expected proportions
	}{
		{"A", map[OpType]float64{Read: 0.5, Update: 0.5}},
		{"B", map[OpType]float64{Read: 0.95, Update: 0.05}},
		{"C", map[OpType]float64{Read: 1.0}},
		{"F", map[OpType]float64{Read: 0.5, ReadModifyWrite: 0.5}},
	}
	const n = 20000
	for _, c := range cases {
		w := MustDefine(c.name, 1000)
		got := map[OpType]int{}
		for i := 0; i < n; i++ {
			got[w.Next(rng).Type]++
		}
		for typ, want := range c.counts {
			frac := float64(got[typ]) / n
			if frac < want-0.02 || frac > want+0.02 {
				t.Errorf("workload %s: %v fraction = %.3f, want ~%.2f", c.name, typ, frac, want)
			}
		}
		for typ, cnt := range got {
			if _, expected := c.counts[typ]; !expected && cnt > 0 {
				t.Errorf("workload %s produced unexpected op %v", c.name, typ)
			}
		}
	}
}

func TestWorkloadDInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := MustDefine("D", 1000)
	inserts := 0
	for i := 0; i < 10000; i++ {
		op := w.Next(rng)
		if op.Type == Insert {
			inserts++
		}
	}
	if inserts == 0 {
		t.Fatal("workload D produced no inserts")
	}
	if w.Records() != 1000+inserts {
		t.Fatalf("records = %d, want %d", w.Records(), 1000+inserts)
	}
}

func TestZipfianSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipfian(1000)
	counts := make(map[int]int)
	const n = 100000
	for i := 0; i < n; i++ {
		k := z.Next(rng)
		if k < 0 || k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	// Zipf(0.99): the most popular record draws a few percent of all
	// requests; the top 10 together dominate a uniform distribution.
	if freqs[0] < n/100 {
		t.Fatalf("hottest key got %d/%d; not skewed enough", freqs[0], n)
	}
	top10 := 0
	for _, f := range freqs[:10] {
		top10 += f
	}
	if top10 < n/5 {
		t.Fatalf("top-10 keys got %d/%d; zipf should concentrate >20%%", top10, n)
	}
	// Uniform comparison: top-10 of uniform is ~1%.
	u := Uniform{N: 1000}
	ucounts := make(map[int]int)
	for i := 0; i < n; i++ {
		ucounts[u.Next(rng)]++
	}
	if len(ucounts) < 990 {
		t.Fatalf("uniform chooser missed keys: %d distinct", len(ucounts))
	}
}

func TestZipfianUnscrambledMonotone(t *testing.T) {
	// Without scrambling, rank 0 must be the most popular.
	rng := rand.New(rand.NewSource(4))
	z := newZipfian(100, ZipfTheta, false)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[z.Next(rng)]++
	}
	if counts[0] < counts[1] || counts[1] < counts[5] {
		t.Fatalf("unscrambled zipf not rank-ordered: %v", counts[:6])
	}
}

func TestLatestFavorsRecentRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := MustDefine("D", 1000)
	recent, old := 0, 0
	for i := 0; i < 20000; i++ {
		op := w.Next(rng)
		if op.Type != Read {
			continue
		}
		var idx int
		if _, err := fscan(op.Key, &idx); err != nil {
			t.Fatal(err)
		}
		if idx >= w.Records()-100 {
			recent++
		} else if idx < w.Records()-500 {
			old++
		}
	}
	if recent <= old {
		t.Fatalf("latest distribution: recent=%d old=%d", recent, old)
	}
}

func fscan(key string, idx *int) (int, error) {
	var n int
	_, err := sscanf(key, &n)
	*idx = n
	return n, err
}

func sscanf(key string, n *int) (int, error) {
	v := 0
	for i := 4; i < len(key); i++ { // skip "user"
		v = v*10 + int(key[i]-'0')
	}
	*n = v
	return v, nil
}

func TestPutFraction(t *testing.T) {
	if f := MustDefine("C", 10).PutFraction(); f != 0 {
		t.Fatalf("C put fraction = %v", f)
	}
	if f := MustDefine("F", 10).PutFraction(); f != 0.5 {
		t.Fatalf("F put fraction = %v", f)
	}
}

func TestHotSpotSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHotSpot(1000, 0.9, 0.1)
	const n = 50000
	hot := 0
	for i := 0; i < n; i++ {
		k := h.Next(rng)
		if k < 0 || k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		if k < 100 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.88 || frac > 0.92 {
		t.Fatalf("hot-set op fraction = %.3f, want ~0.90", frac)
	}
}

// TestHotSpotUniformWithin is the chi-square sanity check: within each of
// the hot and cold sets the chooser must be uniform. With k cells of
// expectation E, sum((obs-E)^2/E) is chi-square distributed with k-1
// degrees of freedom; the thresholds below are the 0.999 quantiles, so a
// correct generator fails with probability ~1e-3 (and the seed is fixed).
func TestHotSpotUniformWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := NewHotSpot(1000, 0.9, 0.1)
	const n = 200000
	counts := make([]int, 1000)
	hotOps := 0
	for i := 0; i < n; i++ {
		k := h.Next(rng)
		counts[k]++
		if k < 100 {
			hotOps++
		}
	}
	chi2 := func(cells []int, total int) float64 {
		e := float64(total) / float64(len(cells))
		var sum float64
		for _, c := range cells {
			d := float64(c) - e
			sum += d * d / e
		}
		return sum
	}
	// 0.999 chi-square quantiles: df=99 -> ~148.2, df=899 -> ~1043.
	if v := chi2(counts[:100], hotOps); v > 148.2 {
		t.Fatalf("hot-set chi-square = %.1f (df=99), want < 148.2", v)
	}
	if v := chi2(counts[100:], n-hotOps); v > 1043 {
		t.Fatalf("cold-set chi-square = %.1f (df=899), want < 1043", v)
	}
}

func TestHotSpotDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Hot set rounds to the whole keyspace: must still cover [0, n).
	h := NewHotSpot(4, 0.9, 1.0)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[h.Next(rng)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("degenerate hotspot covered %d/4 keys", len(seen))
	}
}

func TestNewZipfianTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	low := NewZipfianTheta(1000, 0.1)
	high := NewZipfianTheta(1000, 1.2)
	top := func(z *Zipfian) float64 {
		counts := map[int]int{}
		for i := 0; i < 20000; i++ {
			counts[z.Next(rng)]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		return float64(best) / 20000
	}
	if lo, hi := top(low), top(high); hi <= lo {
		t.Fatalf("theta=1.2 hottest-key share %.3f not above theta=0.1 share %.3f", hi, lo)
	}
}
