// Package harmonia implements Harmonia-style in-network conflict
// detection (arXiv 1904.08964) on the openflow datapath: the switch
// tracks the *dirty set* of keys with in-flight writes and rewrites the
// destination of reads for clean keys to a deterministically-hashed
// choice among the partition's live replicas, recovering near-linear
// read scaling from replication without giving up linearizability.
//
// The stage sits in the switch pipeline (after the optional switchcache,
// before the flow tables) and watches both directions of the put
// protocol: a put prepare traversing the switch marks its key dirty; the
// commit applications flowing back — every replica's applyLocal, modeled
// as synchronous hooks from the storage nodes, strictly no later than
// the acks those applies generate — clear it once every read-serving
// replica holds the committed version. Reads of dirty keys, reads in
// partitions tainted by dirty-table overflow, and reads arriving before
// a partition's replica set is installed all fall through untouched to
// the normal flow tables, i.e. to the primary.
//
// Correctness does not rest on the dirty set alone: the switch is a
// performance filter. A read the stage routes to a replica that still
// has the write in flight is held server-side (core/get.go gates
// non-primary serving on the key's WAL/lock state, and the existing
// recovering/syncing/resolving holds cover membership churn), so the
// client retries rather than reading stale. The dirty set's job is to
// make that case rare by steering reads around in-flight writes at line
// rate.
//
// View changes: the controller re-installs a partition's replica set on
// every membership event, fenced by the datapath writer generation
// exactly like switchcache installs (a zombie controller's install is
// rejected at apply time). An install with a newer (generation, epoch)
// flushes the partition's dirty entries to *sticky*: a sticky key keeps
// falling back to the primary until a put marked under the new view
// commits on every new-view replica, so membership churn can never
// route a read to a replica missing an acknowledged write.
package harmonia

import (
	"hash/fnv"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/openflow"
	"repro/internal/sim"
)

// Parser adapts the storage system's wire format to the stage. Both
// methods run on the switch's forwarding path.
type Parser interface {
	// ParseGet reports whether pkt is a client read, for which key, and
	// a per-request identifier mixed into the replica hash so a retry of
	// a timed-out read can land on a different replica.
	ParseGet(pkt *netsim.Packet) (key string, rid uint64, ok bool)
	// ParsePut reports whether pkt completes a put prepare's multicast
	// transfer, for which key, and an operation identity (comparable;
	// stable across retries of the same logical put) used to match the
	// commit hooks back to the mark.
	ParsePut(pkt *netsim.Packet) (key string, op any, ok bool)
}

// Config parameterizes one dirty-set stage.
type Config struct {
	// Capacity bounds the dirty table; switch memory is the scarce
	// resource. A put that cannot be tracked taints its partition
	// (reads fall back to the primary) until the next view install.
	Capacity int
	// CtrlDelay is the switch→controller latency charged on view
	// installs, matching the datapath's control-channel latency.
	CtrlDelay sim.Time
	// ReplicaPort, when nonzero, is stamped as the destination port of
	// rewritten clean-key reads. It makes the routing class explicit on
	// the wire: nodes serve non-primary reads only on this port, so a
	// primary-routed read that the fabric remapped to a freshly promoted
	// (possibly lagging) primary cannot be mistaken for one the switch
	// vouched for.
	ReplicaPort uint16
}

// DefaultConfig sizes the stage for the simulated deployments.
func DefaultConfig(ctrlDelay sim.Time) Config {
	return Config{Capacity: 4096, CtrlDelay: ctrlDelay}
}

// opState tracks one in-flight put under a dirty entry.
type opState struct {
	gen   uint64 // partition install generation at mark time
	epoch uint64 // partition install epoch at mark time
	// applied records which replicas have committed the op locally.
	applied map[netsim.IP]bool
}

// entry is one dirty key.
type entry struct {
	part   int
	sticky bool // survived a view change: only a new-view put completing clears it
	ops    map[any]*opState
}

// partState is the per-partition replica-set install.
type partState struct {
	installed bool
	gen       uint64      // controller writer generation of the install
	epoch     uint64      // view epoch of the install
	replicas  []netsim.IP // read-serving set, primary first
	tainted   bool        // a put went untracked under this install
	untracked int64
}

// DirtySet is the switch-resident stage. Dirty marking and read rewrite
// are data-plane effects and apply synchronously with the traversing
// packet; replica-set installs are controller→switch messages and take
// effect after the control-channel delay, fenced by the writer
// generation.
type DirtySet struct {
	dp      *openflow.Datapath
	next    netsim.Pipeline
	parser  Parser
	partOf  func(key string) int
	cfg     Config
	entries map[string]*entry
	parts   map[int]*partState
	stats   metrics.HarmoniaCounters

	// extraCtrl is injected control-path latency (gray management
	// network); it stretches view installs but never the data-plane
	// mark/rewrite, which rides the traffic itself.
	extraCtrl sim.Time
}

// Attach interposes a dirty-set stage in front of dp's forwarding
// pipeline and returns it. Call before traffic starts. When another
// stage (e.g. the switch cache) already heads the pipeline, rechain it
// afterwards: head.SetNext(stage) and restore the head with
// dp.Switch().SetPipeline(head).
func Attach(dp *openflow.Datapath, parser Parser, partOf func(key string) int, cfg Config) *DirtySet {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	d := &DirtySet{
		dp:      dp,
		next:    dp,
		parser:  parser,
		partOf:  partOf,
		cfg:     cfg,
		entries: make(map[string]*entry),
		parts:   make(map[int]*partState),
	}
	dp.Switch().SetPipeline(d)
	return d
}

// Datapath returns the wrapped datapath.
func (d *DirtySet) Datapath() *openflow.Datapath { return d.dp }

// Stats snapshots the counters.
func (d *DirtySet) Stats() metrics.HarmoniaCounters {
	st := d.stats
	st.Occupancy = len(d.entries)
	st.Capacity = d.cfg.Capacity
	return st
}

// Dirty reports whether key is currently in the dirty set (tests).
func (d *DirtySet) Dirty(key string) bool {
	_, ok := d.entries[key]
	return ok
}

// Tainted reports whether part currently falls back wholesale (tests).
func (d *DirtySet) Tainted(part int) bool {
	p := d.parts[part]
	return p != nil && p.tainted
}

// SetExtraCtrlDelay injects (or, with 0, clears) additional control-path
// latency for fault experiments.
func (d *DirtySet) SetExtraCtrlDelay(delay sim.Time) { d.extraCtrl = delay }

func (d *DirtySet) ctrlDelay() sim.Time { return d.cfg.CtrlDelay + d.extraCtrl }

// Process implements netsim.Pipeline: mark put prepares, rewrite clean
// reads, delegate everything else untouched.
func (d *DirtySet) Process(sw *netsim.Switch, pkt *netsim.Packet, inPort int) {
	if key, op, ok := d.parser.ParsePut(pkt); ok {
		d.mark(key, op)
		d.next.Process(sw, pkt, inPort)
		return
	}
	key, rid, ok := d.parser.ParseGet(pkt)
	if !ok {
		d.next.Process(sw, pkt, inPort)
		return
	}
	p := d.parts[d.partOf(key)]
	if p == nil || !p.installed || len(p.replicas) < 2 {
		d.next.Process(sw, pkt, inPort)
		return
	}
	if p.tainted {
		d.stats.TaintFallbacks++
		d.next.Process(sw, pkt, inPort)
		return
	}
	if _, dirty := d.entries[key]; dirty {
		d.stats.DirtyFallbacks++
		d.next.Process(sw, pkt, inPort)
		return
	}
	// Clean: rewrite the destination to a hashed replica choice. The
	// replica's physical address matches the datapath's host route
	// (prioPhys), which fills in the MAC and output port; the vring
	// mapping rules never see the packet. The port rewrite tags the read
	// as replica-routed — the host routes match on destination IP only,
	// so it survives to the node.
	idx := replicaHash(key, rid) % uint64(len(p.replicas))
	d.stats.Routed++
	if idx != 0 {
		d.stats.RoutedReplica++
	}
	pkt.DstIP = p.replicas[idx]
	if d.cfg.ReplicaPort != 0 {
		pkt.DstPort = d.cfg.ReplicaPort
	}
	d.next.Process(sw, pkt, inPort)
}

// replicaHash is the deterministic read-spreading hash: FNV-1a over the
// key plus the request identifier, so one key's reads spread across
// replicas request-by-request and a retry can escape a silent replica.
func replicaHash(key string, rid uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(rid >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

// mark records a put prepare traversing the switch. Idempotent per
// (key, op): multicast repair retransmissions and client retries of the
// same logical put merge into one tracked operation.
func (d *DirtySet) mark(key string, op any) {
	part := d.partOf(key)
	p := d.parts[part]
	if p == nil || !p.installed || len(p.replicas) < 2 {
		// Partition not harmonia-managed, or too few replicas to ever
		// spread reads: tracking its puts would only burn table capacity.
		return
	}
	e := d.entries[key]
	if e == nil {
		if len(d.entries) >= d.cfg.Capacity {
			// Cannot track this write: poison the whole partition until
			// the next view install so no clean-key claim it would have
			// invalidated is trusted.
			p.untracked++
			p.tainted = true
			d.stats.Overflows++
			return
		}
		e = &entry{part: part, ops: make(map[any]*opState)}
		d.entries[key] = e
		d.stats.Marks++
	}
	if e.ops[op] == nil {
		e.ops[op] = &opState{gen: p.gen, epoch: p.epoch, applied: make(map[netsim.IP]bool)}
	}
}

// MemberApplied is the commit-side hook: replica member applied op's
// committed object for key (core.Node.applyLocal and the dedup paths
// call it). In hardware this is the ack/timestamp traffic of the commit
// passing back through the switch; invoking it synchronously at apply
// time is strictly earlier, and early clearing is safe because an op is
// only retired once every currently-installed read replica has applied
// it — any rewrite after that reads the committed version.
func (d *DirtySet) MemberApplied(key string, op any, member netsim.IP) {
	e := d.entries[key]
	if e == nil {
		return // untracked (overflow, pre-install prepare, or already cleared)
	}
	os := e.ops[op]
	if os == nil {
		return
	}
	os.applied[member] = true
	p := d.parts[e.part]
	if p == nil {
		return
	}
	for _, r := range p.replicas {
		if !os.applied[r] {
			return
		}
	}
	delete(e.ops, op)
	// A put marked under the current install and completed on every
	// current replica re-certifies the key after a view-change flush.
	if e.sticky && os.gen == p.gen && os.epoch == p.epoch {
		e.sticky = false
	}
	d.retire(key, e)
}

// OpAborted is the abort-side hook: the put was abandoned (primary
// abort broadcast, secondary/late abort, or new-primary resolution).
// Replicas may still hold the prepare's WAL record briefly; reads
// routed there are held server-side until the abort lands.
func (d *DirtySet) OpAborted(key string, op any) {
	e := d.entries[key]
	if e == nil {
		return
	}
	if _, ok := e.ops[op]; !ok {
		return
	}
	delete(e.ops, op)
	d.retire(key, e)
}

// retire drops an entry once nothing keeps it dirty.
func (d *DirtySet) retire(key string, e *entry) {
	if len(e.ops) == 0 && !e.sticky {
		delete(d.entries, key)
		d.stats.Clears++
	}
}

// InstallView is InstallViewAs under the legacy unfenced writer.
func (d *DirtySet) InstallView(part int, epoch uint64, replicas []netsim.IP) {
	d.InstallViewAs(0, part, epoch, replicas)
}

// InstallViewAs installs (or re-installs) a partition's read-serving
// replica set, applied after the control delay and fenced against the
// datapath writer generation exactly like switchcache.InstallAs: an
// install that was in flight when a standby took over and raised the
// fence is rejected at apply time. replicas lists physical addresses,
// primary first; the slice is not retained by reference.
//
// A newer (gen, epoch) than the current install FLUSHES the partition:
// every resident dirty entry becomes sticky (primary-only until a put
// marked under the new install completes on all new replicas), and the
// overflow taint resets — untracked writes from the old view are
// covered by stickiness of tracked keys plus the server-side holds.
func (d *DirtySet) InstallViewAs(gen uint64, part int, epoch uint64, replicas []netsim.IP) {
	rs := append([]netsim.IP(nil), replicas...)
	d.dp.Switch().Sim().After(d.ctrlDelay(), func() {
		if !d.dp.WriterAllowed(gen) {
			d.stats.RejectedInstalls++
			return
		}
		p := d.parts[part]
		if p == nil {
			p = &partState{}
			d.parts[part] = p
		}
		if p.installed && (gen < p.gen || (gen == p.gen && epoch <= p.epoch)) {
			return // stale install ordered behind a newer view
		}
		first := !p.installed
		p.installed = true
		p.gen, p.epoch = gen, epoch
		p.replicas = rs
		p.tainted = false
		p.untracked = 0
		d.stats.Installs++
		if first {
			return
		}
		for _, e := range d.entries {
			if e.part == part && !e.sticky {
				e.sticky = true
				d.stats.Flushes++
			}
		}
	})
}
