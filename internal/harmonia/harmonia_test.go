package harmonia

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/openflow"
	"repro/internal/sim"
)

// testOp is the comparable operation identity the stub parser hands out.
type testOp struct {
	client netsim.IP
	seq    uint64
}

// putMsg / getMsg are the stub wire messages.
type putMsg struct {
	key string
	op  testOp
}
type getMsg struct {
	key string
	rid uint64
}

// stubParser recognizes the test messages.
type stubParser struct{}

func (stubParser) ParseGet(pkt *netsim.Packet) (string, uint64, bool) {
	if m, ok := pkt.Payload.(*getMsg); ok {
		return m.key, m.rid, true
	}
	return "", 0, false
}

func (stubParser) ParsePut(pkt *netsim.Packet) (string, any, bool) {
	if m, ok := pkt.Payload.(*putMsg); ok {
		return m.key, m.op, true
	}
	return "", nil, false
}

// recorder is a terminal pipeline stage capturing what fell through.
type recorder struct {
	pkts []*netsim.Packet
}

func (r *recorder) Process(sw *netsim.Switch, pkt *netsim.Packet, inPort int) {
	r.pkts = append(r.pkts, pkt)
}

func (r *recorder) last() *netsim.Packet { return r.pkts[len(r.pkts)-1] }

// rig is a minimal switch + datapath + dirty-set stage.
type rig struct {
	s    *sim.Simulator
	sw   *netsim.Switch
	dp   *openflow.Datapath
	ds   *DirtySet
	rec  *recorder
	part func(string) int
}

const ctrlDelay = 200 * time.Microsecond

func newRig(t *testing.T, cfg Config, partOf func(string) int) *rig {
	t.Helper()
	s := sim.New(1)
	nw := netsim.NewNetwork(s)
	sw := nw.NewSwitch("sw", 4, 0)
	dp := openflow.Attach(sw, ctrlDelay)
	ds := Attach(dp, stubParser{}, partOf, cfg)
	rec := &recorder{}
	ds.next = rec // capture fall-through instead of hitting flow tables
	return &rig{s: s, sw: sw, dp: dp, ds: ds, rec: rec, part: partOf}
}

// settle runs the simulator long enough for pending installs to apply.
func (r *rig) settle(t *testing.T) {
	t.Helper()
	if err := r.s.RunUntil(r.s.Now() + 10*ctrlDelay); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) put(key string, op testOp) {
	r.ds.Process(r.sw, &netsim.Packet{Proto: netsim.ProtoUDP, Payload: &putMsg{key: key, op: op}}, 0)
}

// get pushes a read through the stage and returns the destination it was
// forwarded with (the stage mutates DstIP on rewrite).
func (r *rig) get(key string, rid uint64, dst netsim.IP) netsim.IP {
	pkt := &netsim.Packet{Proto: netsim.ProtoUDP, DstIP: dst, Payload: &getMsg{key: key, rid: rid}}
	r.ds.Process(r.sw, pkt, 0)
	return r.rec.last().DstIP
}

var (
	vringDst = netsim.IPv4(10, 10, 0, 1)
	replicas = []netsim.IP{
		netsim.IPv4(10, 0, 0, 1), // primary
		netsim.IPv4(10, 0, 0, 2),
		netsim.IPv4(10, 0, 0, 3),
	}
)

func inSet(ip netsim.IP, set []netsim.IP) bool {
	for _, r := range set {
		if r == ip {
			return true
		}
	}
	return false
}

func singlePartition(string) int { return 0 }

// TestCleanRouting: clean keys are rewritten to an installed replica,
// deterministically per (key, rid), and spread across the set as the
// request id varies.
func TestCleanRouting(t *testing.T) {
	r := newRig(t, DefaultConfig(ctrlDelay), singlePartition)
	r.ds.InstallViewAs(1, 0, 1, replicas)
	r.settle(t)

	seen := map[netsim.IP]int{}
	for rid := uint64(0); rid < 64; rid++ {
		dst := r.get("k", rid, vringDst)
		if !inSet(dst, replicas) {
			t.Fatalf("rid %d routed to %v, not an installed replica", rid, dst)
		}
		if again := r.get("k", rid, vringDst); again != dst {
			t.Fatalf("rid %d not deterministic: %v then %v", rid, dst, again)
		}
		seen[dst]++
	}
	if len(seen) != len(replicas) {
		t.Errorf("64 rids only reached %d of %d replicas: %v", len(seen), len(replicas), seen)
	}
	if st := r.ds.Stats(); st.Routed == 0 || st.RoutedReplica == 0 {
		t.Errorf("routing counters empty: %+v", st)
	}
}

// TestDirtyFallback: a marked key falls back to the original destination
// (the primary path) until every installed replica applies the write; a
// concurrent get crossing the mark/clear window never gets rewritten
// while any replica is behind.
func TestDirtyFallback(t *testing.T) {
	r := newRig(t, DefaultConfig(ctrlDelay), singlePartition)
	r.ds.InstallViewAs(1, 0, 1, replicas)
	r.settle(t)

	op := testOp{client: netsim.IPv4(192, 168, 0, 1), seq: 7}
	r.put("k", op)
	if !r.ds.Dirty("k") {
		t.Fatal("prepare traversal did not mark the key dirty")
	}
	// Gets crossing the in-flight window: never rewritten, counters tick.
	if dst := r.get("k", 1, vringDst); dst != vringDst {
		t.Fatalf("dirty key rewritten to %v", dst)
	}
	// Partial application (primary + one secondary) must not clear: the
	// third replica is exactly the laggard a rewrite must avoid.
	r.ds.MemberApplied("k", op, replicas[0])
	r.ds.MemberApplied("k", op, replicas[1])
	if !r.ds.Dirty("k") {
		t.Fatal("entry cleared before all replicas applied")
	}
	if dst := r.get("k", 2, vringDst); dst != vringDst {
		t.Fatalf("partially-applied key rewritten to %v", dst)
	}
	r.ds.MemberApplied("k", op, replicas[2])
	if r.ds.Dirty("k") {
		t.Fatal("entry survived full application")
	}
	if dst := r.get("k", 3, vringDst); !inSet(dst, replicas) {
		t.Fatalf("clean key not rewritten (dst %v)", dst)
	}
	st := r.ds.Stats()
	if st.DirtyFallbacks != 2 || st.Marks != 1 || st.Clears != 1 {
		t.Errorf("counters: %+v", st)
	}
}

// TestAbortClears: an abandoned put stops holding its key dirty.
func TestAbortClears(t *testing.T) {
	r := newRig(t, DefaultConfig(ctrlDelay), singlePartition)
	r.ds.InstallViewAs(1, 0, 1, replicas)
	r.settle(t)

	op := testOp{seq: 1}
	r.put("k", op)
	r.ds.OpAborted("k", op)
	if r.ds.Dirty("k") {
		t.Fatal("aborted op left the key dirty")
	}
	// Two concurrent ops on one key: clearing one leaves the other's
	// mark in force.
	op2, op3 := testOp{seq: 2}, testOp{seq: 3}
	r.put("k", op2)
	r.put("k", op3)
	r.ds.OpAborted("k", op2)
	if !r.ds.Dirty("k") {
		t.Fatal("second in-flight op lost its mark")
	}
}

// TestOverflowTaint: a put the full table cannot track taints its
// partition — every read falls back to the primary, never a replica that
// might miss the untracked write — until the next view install resets it.
func TestOverflowTaint(t *testing.T) {
	cfg := DefaultConfig(ctrlDelay)
	cfg.Capacity = 2
	r := newRig(t, cfg, singlePartition)
	r.ds.InstallViewAs(1, 0, 1, replicas)
	r.settle(t)

	r.put("a", testOp{seq: 1})
	r.put("b", testOp{seq: 2})
	r.put("c", testOp{seq: 3}) // over capacity: untracked
	if r.ds.Dirty("c") {
		t.Fatal("over-capacity put was tracked")
	}
	if !r.ds.Tainted(0) {
		t.Fatal("overflow did not taint the partition")
	}
	// The untracked key AND every clean key fall back while tainted.
	for _, key := range []string{"a", "b", "c", "never-written"} {
		if dst := r.get(key, 9, vringDst); dst != vringDst {
			t.Fatalf("tainted partition rewrote %q to %v", key, dst)
		}
	}
	st := r.ds.Stats()
	if st.Overflows != 1 || st.TaintFallbacks != 4 {
		t.Errorf("counters: %+v", st)
	}
	// The next view install (epoch bump) lifts the taint.
	r.ds.InstallViewAs(1, 0, 2, replicas)
	r.settle(t)
	if r.ds.Tainted(0) {
		t.Fatal("view install did not reset the taint")
	}
	if dst := r.get("never-written", 9, vringDst); !inSet(dst, replicas) {
		t.Fatal("clean key not rewritten after taint reset")
	}
}

// TestViewChangeFlush is the regression test for the mid-flight view
// change: entries resident when a new view installs become sticky and
// keep falling back to the primary even after their old-view ops
// complete; only a put marked and fully applied under the NEW view
// re-certifies the key for replica routing.
func TestViewChangeFlush(t *testing.T) {
	r := newRig(t, DefaultConfig(ctrlDelay), singlePartition)
	r.ds.InstallViewAs(1, 0, 1, replicas)
	r.settle(t)

	op := testOp{seq: 1}
	r.put("k", op)

	// Membership changes while the put is in flight: replica 3 replaced.
	newSet := []netsim.IP{replicas[0], replicas[1], netsim.IPv4(10, 0, 0, 4)}
	r.ds.InstallViewAs(1, 0, 2, newSet)
	r.settle(t)
	if st := r.ds.Stats(); st.Flushes != 1 {
		t.Fatalf("flush did not sticky the resident entry: %+v", st)
	}

	// The old-view op completes on every new-view member — bookkeeping
	// only: the key stays primary-routed, because the new member may have
	// joined without some acknowledged write the old view committed.
	for _, ip := range newSet {
		r.ds.MemberApplied("k", op, ip)
	}
	if !r.ds.Dirty("k") {
		t.Fatal("old-view completion cleared a sticky entry")
	}
	if dst := r.get("k", 1, vringDst); dst != vringDst {
		t.Fatalf("sticky key rewritten to %v", dst)
	}

	// A fresh put under the new view, applied by every new-view replica,
	// re-certifies the key.
	op2 := testOp{seq: 2}
	r.put("k", op2)
	for _, ip := range newSet {
		r.ds.MemberApplied("k", op2, ip)
	}
	if r.ds.Dirty("k") {
		t.Fatal("new-view completion did not clear the sticky entry")
	}
	if dst := r.get("k", 1, vringDst); !inSet(dst, newSet) {
		t.Fatalf("re-certified key not rewritten (dst %v)", dst)
	}
}

// TestWriterFence: an install from a fenced (superseded) controller
// generation is rejected at apply time, like switchcache installs.
func TestWriterFence(t *testing.T) {
	r := newRig(t, DefaultConfig(ctrlDelay), singlePartition)
	r.ds.InstallViewAs(1, 0, 1, replicas)
	r.settle(t)

	r.dp.RaiseWriterFence(2)
	r.ds.InstallViewAs(1, 0, 5, []netsim.IP{replicas[0]}) // zombie's install
	r.settle(t)
	if st := r.ds.Stats(); st.RejectedInstalls != 1 {
		t.Fatalf("fenced install not rejected: %+v", st)
	}
	// The old (pre-fence) install stays in force.
	if dst := r.get("k", 1, vringDst); !inSet(dst, replicas) {
		t.Fatal("fenced install disturbed the active replica set")
	}

	// The new generation's install wins even at a lower epoch.
	r.ds.InstallViewAs(2, 0, 1, replicas[:2])
	r.settle(t)
	if dst := r.get("k", 4, vringDst); !inSet(dst, replicas[:2]) {
		t.Fatalf("new-generation install not applied (dst %v)", dst)
	}
}

// TestUninstalledPartition: partitions without an install (and replica
// sets too small to spread) never rewrite and never track.
func TestUninstalledPartition(t *testing.T) {
	r := newRig(t, DefaultConfig(ctrlDelay), func(k string) int {
		if k == "other" {
			return 1
		}
		return 0
	})
	r.ds.InstallViewAs(1, 0, 1, replicas)
	r.ds.InstallViewAs(1, 1, 1, replicas[:1]) // single replica: no spreading
	r.settle(t)

	r.put("other", testOp{seq: 1})
	if r.ds.Dirty("other") {
		t.Error("single-replica partition tracked a put for nothing")
	}
	if dst := r.get("other", 3, vringDst); dst != vringDst {
		t.Errorf("single-replica partition rewrote to %v", dst)
	}
}
