package netsim

import "repro/internal/sim"

// Pipeline is a switch's forwarding logic. netsim itself is
// forwarding-agnostic; package openflow provides the flow-table pipeline,
// and tests use simple function pipelines.
type Pipeline interface {
	// Process decides what to do with pkt, which arrived on inPort. It
	// runs after the switch's pipeline latency has elapsed and emits
	// output by calling sw.Output (possibly on several ports, possibly
	// never, possibly later — e.g. after consulting a controller).
	Process(sw *Switch, pkt *Packet, inPort int)
}

// PipelineFunc adapts a function to the Pipeline interface.
type PipelineFunc func(sw *Switch, pkt *Packet, inPort int)

// Process implements Pipeline.
func (f PipelineFunc) Process(sw *Switch, pkt *Packet, inPort int) { f(sw, pkt, inPort) }

// SwitchStats count the traffic a switch moved.
type SwitchStats struct {
	PktsIn   int64
	PktsOut  int64
	BytesIn  int64
	BytesOut int64
	Dropped  int64
}

// Switch is a store-and-forward packet switch with a fixed per-packet
// pipeline latency and a pluggable forwarding pipeline. A hardware
// OpenFlow switch and a client-side Open vSwitch differ only in their
// latency configuration (the paper measured software rewriting to be much
// slower on some platforms; §5.1).
type Switch struct {
	name    string
	net     *Network
	ports   []*Port
	pipe    Pipeline
	latency sim.Time
	stats   SwitchStats
}

// NewSwitch creates a switch with nports ports and the given per-packet
// pipeline latency.
func (n *Network) NewSwitch(name string, nports int, latency sim.Time) *Switch {
	sw := &Switch{name: name, net: n, latency: latency}
	sw.ports = make([]*Port, nports)
	for i := range sw.ports {
		sw.ports[i] = &Port{Dev: sw, Index: i, Name: switchPortName(name, i)}
	}
	n.switches = append(n.switches, sw)
	return sw
}

func switchPortName(name string, i int) string {
	const digits = "0123456789"
	if i < 10 {
		return name + ":p" + digits[i:i+1]
	}
	return name + ":p" + digits[i/10:i/10+1] + digits[i%10:i%10+1]
}

// DeviceName implements Device.
func (sw *Switch) DeviceName() string { return sw.name }

// Network implements Device.
func (sw *Switch) Network() *Network { return sw.net }

// Port returns port i.
func (sw *Switch) Port(i int) *Port { return sw.ports[i] }

// NumPorts returns the port count.
func (sw *Switch) NumPorts() int { return len(sw.ports) }

// Stats returns the switch counters.
func (sw *Switch) Stats() SwitchStats { return sw.stats }

// SetPipeline installs the forwarding logic.
func (sw *Switch) SetPipeline(p Pipeline) { sw.pipe = p }

// Pipeline returns the installed forwarding logic.
func (sw *Switch) Pipeline() Pipeline { return sw.pipe }

// Sim returns the simulator driving this switch's network.
func (sw *Switch) Sim() *sim.Simulator { return sw.net.sim }

// Recv implements Device: charge the pipeline latency, then run the
// forwarding pipeline.
func (sw *Switch) Recv(pkt *Packet, on *Port) {
	sw.stats.PktsIn++
	sw.stats.BytesIn += int64(pkt.Size)
	if pkt.TTL <= 0 {
		sw.stats.Dropped++
		sw.net.RecyclePacket(pkt)
		return
	}
	pkt.TTL--
	if sw.pipe == nil {
		sw.stats.Dropped++
		sw.net.RecyclePacket(pkt)
		return
	}
	s := sw.net.sim
	s.At2(s.Now()+sw.latency, processEvent, on, pkt)
}

// processEvent is the static At2 callback running the forwarding pipeline
// after the pipeline latency; the ingress port carries the needed context.
func processEvent(a1, a2 any) {
	on := a1.(*Port)
	sw := on.Dev.(*Switch)
	sw.pipe.Process(sw, a2.(*Packet), on.Index)
}

// Output transmits pkt on port i, taking ownership: a packet aimed at a
// disconnected port goes back to the pool. Multicast pipelines call this
// once per port with cloned packets.
func (sw *Switch) Output(i int, pkt *Packet) {
	if i < 0 || i >= len(sw.ports) || !sw.ports[i].Connected() {
		sw.stats.Dropped++
		sw.net.RecyclePacket(pkt)
		return
	}
	sw.stats.PktsOut++
	sw.stats.BytesOut += int64(pkt.Size)
	sw.ports[i].Send(pkt)
}

// Flood transmits clones of pkt on every connected port except the one it
// arrived on. pkt itself is borrowed: the caller still owns it.
func (sw *Switch) Flood(pkt *Packet, inPort int) {
	for i, p := range sw.ports {
		if i == inPort || !p.Connected() {
			continue
		}
		sw.Output(i, sw.net.ClonePacket(pkt))
	}
}

// Drop records a pipeline decision to discard the packet and returns it
// to the pool. The caller must own pkt exclusively; pass nil to count a
// drop of a packet someone else (e.g. the controller) now holds.
func (sw *Switch) Drop(pkt *Packet) {
	sw.stats.Dropped++
	sw.net.RecyclePacket(pkt)
}
