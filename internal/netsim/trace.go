package netsim

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// TraceEvent is one observed packet movement.
type TraceEvent struct {
	At     sim.Time
	Device string // where it was observed
	Dir    string // "rx" or "tx"
	Pkt    Packet // header snapshot (payload pointer shared)
}

// String renders one trace line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%-14v %-12s %-2s %s", e.At, e.Device, e.Dir, e.Pkt.String())
}

// Tap observes packets flowing through the network. Taps are for
// debugging and tooling; they see header snapshots and must not mutate
// anything.
type Tap func(ev TraceEvent)

// AddTap registers a network-wide tap fed from every host NIC (both
// directions). It returns a remove function.
func (n *Network) AddTap(tap Tap) func() {
	n.tapSeq++
	id := n.tapSeq
	if n.taps == nil {
		n.taps = make(map[int]Tap)
	}
	n.taps[id] = tap
	return func() { delete(n.taps, id) }
}

// emitTrace fans one event to all taps.
func (n *Network) emitTrace(dev, dir string, pkt *Packet) {
	if len(n.taps) == 0 {
		return
	}
	ev := TraceEvent{At: n.sim.Now(), Device: dev, Dir: dir, Pkt: *pkt}
	for _, tap := range n.taps {
		tap(ev)
	}
}

// WriterTap returns a Tap printing one line per event to w, optionally
// filtered (nil filter = everything).
func WriterTap(w io.Writer, filter func(TraceEvent) bool) Tap {
	return func(ev TraceEvent) {
		if filter != nil && !filter(ev) {
			return
		}
		fmt.Fprintln(w, ev.String())
	}
}

// CountingTap tallies packets and bytes per (device, protocol); useful
// for asserting traffic shapes in tests.
type CountingTap struct {
	Pkts  map[string]int64
	Bytes map[string]int64
}

// NewCountingTap returns an empty counting tap.
func NewCountingTap() *CountingTap {
	return &CountingTap{Pkts: make(map[string]int64), Bytes: make(map[string]int64)}
}

// Tap is the Tap function to register.
func (c *CountingTap) Tap(ev TraceEvent) {
	if ev.Dir != "rx" {
		return // count each delivery once
	}
	key := ev.Device + "/" + ev.Pkt.Proto.String()
	c.Pkts[key]++
	c.Bytes[key] += int64(ev.Pkt.Size)
}
