package netsim

import (
	"repro/internal/sim"
)

// Network is the registry of all devices and links in one simulated
// fabric, plus fabric-wide load accounting.
type Network struct {
	sim      *sim.Simulator
	hosts    []*Host
	switches []*Switch
	links    []*Link
	macSeq   uint64
	pktID    uint64
	drops    int64
	taps     map[int]Tap
	tapSeq   int
	pktFree  []*Packet // recycled packet structs; see NewPacket
}

// maxFreePackets bounds the packet free list. A multicast fan-out burst
// can momentarily clone hundreds of packets; anything beyond the cap is
// left to the garbage collector.
const maxFreePackets = 1024

// NewPacket returns a zeroed packet from the network's free list (or a
// fresh allocation), stamped with a unique ID. Packets are single-threaded
// within the owning simulator, so the free list needs no locking.
//
// Ownership discipline: a packet handed to Host.Send belongs to the
// fabric. The fabric recycles it at terminal drop points; receivers that
// provably copy everything they need out of the packet (the transport
// stack) recycle it after dispatch. Code that retains a packet beyond the
// current event (the OpenFlow punt path, taps that keep pointers) must
// Clone first or simply never recycle.
func (n *Network) NewPacket() *Packet {
	n.pktID++
	if ln := len(n.pktFree); ln > 0 {
		pkt := n.pktFree[ln-1]
		n.pktFree[ln-1] = nil
		n.pktFree = n.pktFree[:ln-1]
		*pkt = Packet{ID: n.pktID}
		return pkt
	}
	return &Packet{ID: n.pktID}
}

// ClonePacket returns a copy of pkt (payload shared, same ID) drawn from
// the free list. Used for multicast fan-out, flooding, and OpenFlow
// rewrite actions.
func (n *Network) ClonePacket(pkt *Packet) *Packet {
	if ln := len(n.pktFree); ln > 0 {
		c := n.pktFree[ln-1]
		n.pktFree[ln-1] = nil
		n.pktFree = n.pktFree[:ln-1]
		*c = *pkt
		return c
	}
	c := *pkt
	return &c
}

// RecyclePacket returns pkt to the free list. Callers must be the sole
// owner: the packet must not be queued on any link, referenced by a tap
// that retains pointers, or held by the controller.
func (n *Network) RecyclePacket(pkt *Packet) {
	if pkt == nil {
		return
	}
	pkt.Payload = nil // drop the payload reference so the GC can reclaim it
	if len(n.pktFree) < maxFreePackets {
		n.pktFree = append(n.pktFree, pkt)
	}
}

// NewNetwork creates an empty fabric driven by s.
func NewNetwork(s *sim.Simulator) *Network {
	return &Network{sim: s}
}

// Sim returns the driving simulator.
func (n *Network) Sim() *sim.Simulator { return n.sim }

// Hosts returns all hosts in creation order.
func (n *Network) Hosts() []*Host { return n.hosts }

// Switches returns all switches in creation order.
func (n *Network) Switches() []*Switch { return n.switches }

// Links returns all links in creation order.
func (n *Network) Links() []*Link { return n.links }

// Drops reports packets discarded anywhere in the fabric (NIC filters,
// unconnected ports, TTL exhaustion, pipeline drops are counted on the
// switch instead).
func (n *Network) Drops() int64 { return n.drops }

// nextMAC hands out unique MACs with a locally-administered prefix.
func (n *Network) nextMAC() MAC {
	n.macSeq++
	return MAC(0x020000000000 | n.macSeq)
}

// HostByIP finds the host owning ip, or nil.
func (n *Network) HostByIP(ip IP) *Host {
	for _, h := range n.hosts {
		if h.ip == ip {
			return h
		}
	}
	return nil
}

// TotalLinkBytes sums the bytes carried by every link in both directions:
// the paper's "total network link load" metric (Fig. 6).
func (n *Network) TotalLinkBytes() int64 {
	var total int64
	for _, l := range n.links {
		total += l.TotalBytes()
	}
	return total
}

// ResetLinkStats zeroes every link counter (used between experiment
// phases so warm-up traffic is not measured).
func (n *Network) ResetLinkStats() {
	for _, l := range n.links {
		l.ab.stats = DirStats{}
		l.ba.stats = DirStats{}
	}
}

// ResetHostStats zeroes every host counter.
func (n *Network) ResetHostStats() {
	for _, h := range n.hosts {
		h.stats = HostStats{}
	}
}
