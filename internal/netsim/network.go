package netsim

import (
	"repro/internal/sim"
)

// Network is the registry of all devices and links in one simulated
// fabric, plus fabric-wide load accounting.
type Network struct {
	sim      *sim.Simulator
	hosts    []*Host
	switches []*Switch
	links    []*Link
	macSeq   uint64
	pktID    uint64
	drops    int64
	taps     map[int]Tap
	tapSeq   int
}

// NewNetwork creates an empty fabric driven by s.
func NewNetwork(s *sim.Simulator) *Network {
	return &Network{sim: s}
}

// Sim returns the driving simulator.
func (n *Network) Sim() *sim.Simulator { return n.sim }

// Hosts returns all hosts in creation order.
func (n *Network) Hosts() []*Host { return n.hosts }

// Switches returns all switches in creation order.
func (n *Network) Switches() []*Switch { return n.switches }

// Links returns all links in creation order.
func (n *Network) Links() []*Link { return n.links }

// Drops reports packets discarded anywhere in the fabric (NIC filters,
// unconnected ports, TTL exhaustion, pipeline drops are counted on the
// switch instead).
func (n *Network) Drops() int64 { return n.drops }

// nextMAC hands out unique MACs with a locally-administered prefix.
func (n *Network) nextMAC() MAC {
	n.macSeq++
	return MAC(0x020000000000 | n.macSeq)
}

// HostByIP finds the host owning ip, or nil.
func (n *Network) HostByIP(ip IP) *Host {
	for _, h := range n.hosts {
		if h.ip == ip {
			return h
		}
	}
	return nil
}

// TotalLinkBytes sums the bytes carried by every link in both directions:
// the paper's "total network link load" metric (Fig. 6).
func (n *Network) TotalLinkBytes() int64 {
	var total int64
	for _, l := range n.links {
		total += l.TotalBytes()
	}
	return total
}

// ResetLinkStats zeroes every link counter (used between experiment
// phases so warm-up traffic is not measured).
func (n *Network) ResetLinkStats() {
	for _, l := range n.links {
		l.ab.stats = DirStats{}
		l.ba.stats = DirStats{}
	}
}

// ResetHostStats zeroes every host counter.
func (n *Network) ResetHostStats() {
	for _, h := range n.hosts {
		h.stats = HostStats{}
	}
}
