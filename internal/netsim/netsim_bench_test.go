package netsim

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/sim"
)

// BenchmarkHostToHost measures one pooled packet's full life cycle on a
// direct cable: NewPacket, serialization, delivery, drop at the receiver's
// NIC filter (no handler installed beyond the recycle-free default), and
// recycling. Steady state should not allocate packets.
func BenchmarkHostToHost(b *testing.B) {
	s := sim.New(1)
	n := NewNetwork(s)
	a := n.NewHost("a", MustParseIP("10.0.0.1"))
	c := n.NewHost("c", MustParseIP("10.0.0.2"))
	n.Connect(a.Port(), c.Port(), Gbps(10, time.Microsecond))
	recv := 0
	c.SetHandler(func(pkt *Packet) {
		recv++
		n.RecyclePacket(pkt) // take the transport stack's role
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := n.NewPacket()
		pkt.DstIP = c.IP()
		pkt.DstMAC = c.MAC()
		pkt.Proto = ProtoUDP
		pkt.Size = 1400
		a.Send(pkt)
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	if recv != b.N {
		b.Fatalf("delivered %d of %d packets", recv, b.N)
	}
}

// BenchmarkSwitchForward measures the store-and-forward path through one
// switch with a trivial pipeline — the per-hop cost every simulated packet
// pays in the cluster experiments.
func BenchmarkSwitchForward(b *testing.B) {
	s := sim.New(1)
	n := NewNetwork(s)
	a := n.NewHost("a", MustParseIP("10.0.0.1"))
	c := n.NewHost("c", MustParseIP("10.0.0.2"))
	sw := n.NewSwitch("sw", 2, time.Microsecond)
	n.Connect(a.Port(), sw.Port(0), Gbps(10, time.Microsecond))
	n.Connect(c.Port(), sw.Port(1), Gbps(10, time.Microsecond))
	sw.SetPipeline(PipelineFunc(func(sw *Switch, pkt *Packet, inPort int) {
		sw.Output(1-inPort, pkt)
	}))
	recv := 0
	c.SetHandler(func(pkt *Packet) {
		recv++
		n.RecyclePacket(pkt)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := n.NewPacket()
		pkt.DstIP = c.IP()
		pkt.DstMAC = c.MAC()
		pkt.Proto = ProtoUDP
		pkt.Size = 1400
		a.Send(pkt)
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	if recv != b.N {
		b.Fatalf("delivered %d of %d packets", recv, b.N)
	}
}

// BenchmarkFloodFanout measures multicast-style cloning: one packet in,
// seven pooled clones out, all dropped at non-subscribed NICs (and thus
// recycled). One untimed warm-up iteration fills the packet and event
// free lists so the timed region is pure steady state, and the benchmark
// asserts that state allocates nothing: the residual B/op this benchmark
// used to report was free-list growth amortized over too few iterations,
// not a per-packet allocation — now any real allocation on the flood path
// fails the run instead of hiding in the rounding.
func BenchmarkFloodFanout(b *testing.B) {
	s := sim.New(1)
	n := NewNetwork(s)
	const fan = 8
	sw := n.NewSwitch("sw", fan, time.Microsecond)
	src := n.NewHost("src", IPv4(10, 0, 0, 100))
	n.Connect(src.Port(), sw.Port(0), Gbps(10, time.Microsecond))
	for i := 1; i < fan; i++ {
		h := n.NewHost("h", IPv4(10, 0, 0, byte(i)))
		n.Connect(h.Port(), sw.Port(i), Gbps(10, time.Microsecond))
	}
	sw.SetPipeline(PipelineFunc(func(sw *Switch, pkt *Packet, inPort int) {
		sw.Flood(pkt, inPort)
		n.RecyclePacket(pkt) // Flood sends clones; the original is ours
	}))
	flood := func() {
		pkt := n.NewPacket()
		pkt.DstIP = IPv4(10, 0, 0, 200) // nobody's address: NIC filters recycle
		pkt.Proto = ProtoUDP
		pkt.Size = 1400
		src.Send(pkt)
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	flood() // warm up the packet/event pools outside the timed region
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flood()
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	if bytes := m1.TotalAlloc - m0.TotalAlloc; bytes/uint64(b.N) != 0 {
		b.Fatalf("flood path allocates: %d bytes over %d ops (%d B/op)",
			bytes, b.N, bytes/uint64(b.N))
	}
}
