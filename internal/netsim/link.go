package netsim

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// LinkConfig describes one link's service characteristics.
type LinkConfig struct {
	// BandwidthBps is the capacity of each direction in bits per second.
	BandwidthBps float64
	// Delay is the one-way propagation delay.
	Delay sim.Time
	// LossRate is the probability in [0,1) that a packet is dropped
	// after serialization; used by tests to exercise the reliable
	// multicast repair path.
	LossRate float64
}

// Gbps returns a LinkConfig for an n-gigabit link with the given delay.
func Gbps(n float64, delay sim.Time) LinkConfig {
	return LinkConfig{BandwidthBps: n * 1e9, Delay: delay}
}

// Mbps returns a LinkConfig for an n-megabit link with the given delay.
func Mbps(n float64, delay sim.Time) LinkConfig {
	return LinkConfig{BandwidthBps: n * 1e6, Delay: delay}
}

// DirStats are the load counters of one link direction.
type DirStats struct {
	Bytes   int64
	Packets int64
}

// linkDir is one direction of a full-duplex link: a FIFO transmitter
// feeding the peer port after a propagation delay.
type linkDir struct {
	net       *Network
	cfg       LinkConfig
	dst       *Port // delivery target
	down      bool  // severed: everything sent is dropped
	busyUntil sim.Time
	stats     DirStats
}

// txTime returns the serialization delay of size bytes.
func (d *linkDir) txTime(size int) sim.Time {
	if d.cfg.BandwidthBps <= 0 {
		return 0
	}
	sec := float64(size*8) / d.cfg.BandwidthBps
	return sim.Time(sec * float64(time.Second))
}

// send serializes pkt onto the wire. Packets queue FIFO behind earlier
// transmissions in the same direction; that queuing is where contention
// effects (slow replicas, hot primaries) come from.
func (d *linkDir) send(pkt *Packet) {
	s := d.net.sim
	start := s.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	done := start + d.txTime(pkt.Size)
	d.busyUntil = done
	d.stats.Bytes += int64(pkt.Size)
	d.stats.Packets++
	if d.down {
		d.net.drops++
		d.net.RecyclePacket(pkt)
		return
	}
	if d.cfg.LossRate > 0 && s.Rand().Float64() < d.cfg.LossRate {
		d.net.drops++
		d.net.RecyclePacket(pkt) // lost on the wire: nobody else holds it
		return
	}
	s.At2(done+d.cfg.Delay, deliverEvent, d.dst, pkt)
}

// deliverEvent is the static At2 callback for link delivery: no closure is
// allocated per packet in flight.
func deliverEvent(a1, a2 any) { a1.(*Port).deliver(a2.(*Packet)) }

// Link is a full-duplex cable between two ports.
type Link struct {
	Name string
	A, B *Port
	ab   *linkDir // A -> B
	ba   *linkDir // B -> A
}

// StatsAB returns the counters of the A-to-B direction.
func (l *Link) StatsAB() DirStats { return l.ab.stats }

// StatsBA returns the counters of the B-to-A direction.
func (l *Link) StatsBA() DirStats { return l.ba.stats }

// TotalBytes returns bytes carried in both directions.
func (l *Link) TotalBytes() int64 { return l.ab.stats.Bytes + l.ba.stats.Bytes }

// SetConfig changes the link's bandwidth/delay (both directions). The
// quorum experiment uses this to throttle replicas mid-deployment.
func (l *Link) SetConfig(cfg LinkConfig) {
	l.ab.cfg = cfg
	l.ba.cfg = cfg
}

// Config returns the current configuration (both directions share one).
func (l *Link) Config() LinkConfig { return l.ab.cfg }

// SetDown severs or restores the cable. A down link drops everything
// offered in either direction (counted as network drops) while keeping
// ports attached, modeling a cut or a partition rather than an unplug.
func (l *Link) SetDown(down bool) {
	l.ab.down = down
	l.ba.down = down
}

// IsDown reports whether the link is severed.
func (l *Link) IsDown() bool { return l.ab.down }

// SetLossRate changes only the loss probability, leaving capacity and
// delay untouched (fault injection: a flaky cable or an overrun queue).
func (l *Link) SetLossRate(rate float64) {
	l.ab.cfg.LossRate = rate
	l.ba.cfg.LossRate = rate
}

// Port is a device attachment point. Sending on a port transmits on the
// link direction away from the device; packets arriving on the link are
// handed to the owning device's Recv.
type Port struct {
	Dev   Device
	Index int // port number on the owning device
	Name  string
	out   *linkDir
	link  *Link
	peer  *Port
}

// Connected reports whether the port is cabled.
func (p *Port) Connected() bool { return p.out != nil }

// Link returns the attached link, or nil.
func (p *Port) Link() *Link { return p.link }

// Peer returns the port at the far end of the link, or nil.
func (p *Port) Peer() *Port { return p.peer }

// Send transmits pkt out of the port. Sending on an unconnected port
// drops the packet (counted on the network).
func (p *Port) Send(pkt *Packet) {
	if p.out == nil {
		n := p.Dev.Network()
		n.drops++
		n.RecyclePacket(pkt)
		return
	}
	p.out.send(pkt)
}

func (p *Port) deliver(pkt *Packet) {
	p.Dev.Recv(pkt, p)
}

// Device is anything with ports: hosts and switches.
type Device interface {
	// Recv is invoked when a packet arrives on one of the device's ports.
	Recv(pkt *Packet, on *Port)
	// DeviceName identifies the device in traces.
	DeviceName() string
	// Network returns the owning network.
	Network() *Network
}

// Connect cables port index ai of device a to port index bi of device b.
// Devices created by the Network helpers expose their ports; this is the
// low-level API used by the topology builders.
func (n *Network) Connect(a *Port, b *Port, cfg LinkConfig) *Link {
	if a.Connected() || b.Connected() {
		panic(fmt.Sprintf("netsim: port already connected (%s, %s)", a.Name, b.Name))
	}
	l := &Link{
		Name: a.Name + "<->" + b.Name,
		A:    a,
		B:    b,
	}
	l.ab = &linkDir{net: n, cfg: cfg, dst: b}
	l.ba = &linkDir{net: n, cfg: cfg, dst: a}
	a.out = l.ab
	a.link = l
	a.peer = b
	b.out = l.ba
	b.link = l
	b.peer = a
	n.links = append(n.links, l)
	return l
}
