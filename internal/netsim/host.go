package netsim

import "repro/internal/sim"

// HostStats count application traffic through a host's NIC; the storage
// load-ratio experiment (Fig. 7) reads these.
type HostStats struct {
	BytesSent int64
	BytesRecv int64
	PktsSent  int64
	PktsRecv  int64
}

// Host is an end system with a single NIC. The transport layer (package
// transport) registers a handler to receive packets; the host itself
// implements the small amount of "OS kernel" behaviour the paper assumes:
// answering ARP for its own address, an ARP cache, and IP multicast group
// subscription filtering.
type Host struct {
	name    string
	net     *Network
	ip      IP
	mac     MAC
	port    *Port
	handler func(pkt *Packet)
	arp     map[IP]MAC
	mcast   map[IP]bool // subscribed multicast group addresses
	stats   HostStats
	down    bool
	nextID  *uint64
	accepts []Prefix // extra DstIP ranges this host terminates
}

// NewHost creates a host attached to the network with the given address.
func (n *Network) NewHost(name string, ip IP) *Host {
	h := &Host{
		name:   name,
		net:    n,
		ip:     ip,
		mac:    n.nextMAC(),
		arp:    make(map[IP]MAC),
		mcast:  make(map[IP]bool),
		nextID: &n.pktID,
	}
	h.port = &Port{Dev: h, Index: 0, Name: name + ":eth0"}
	n.hosts = append(n.hosts, h)
	return h
}

// DeviceName implements Device.
func (h *Host) DeviceName() string { return h.name }

// Network implements Device.
func (h *Host) Network() *Network { return h.net }

// IP returns the host's address.
func (h *Host) IP() IP { return h.ip }

// MAC returns the host's link-layer address.
func (h *Host) MAC() MAC { return h.mac }

// Port returns the host's NIC port for cabling.
func (h *Host) Port() *Port { return h.port }

// Stats returns the traffic counters.
func (h *Host) Stats() HostStats { return h.stats }

// ResetStats zeroes the traffic counters (used between experiment phases).
func (h *Host) ResetStats() { h.stats = HostStats{} }

// SetHandler registers the function receiving packets addressed to this
// host. Exactly one handler is supported; the transport layer
// demultiplexes further.
func (h *Host) SetHandler(fn func(pkt *Packet)) { h.handler = fn }

// SetDown cuts the host off the network: it stops sending and receiving,
// emulating a crashed or disconnected node. Bringing it back up does not
// restore lost packets.
func (h *Host) SetDown(down bool) { h.down = down }

// Down reports whether the host is currently cut off.
func (h *Host) Down() bool { return h.down }

// JoinMulticast subscribes the host to a multicast group address so the
// NIC accepts packets whose destination IP is that group.
func (h *Host) JoinMulticast(group IP) { h.mcast[group] = true }

// LeaveMulticast unsubscribes the host from a group.
func (h *Host) LeaveMulticast(group IP) { delete(h.mcast, group) }

// InMulticast reports whether the host is subscribed to group.
func (h *Host) InMulticast(group IP) bool { return h.mcast[group] }

// AcceptPrefix makes the host terminate an extra destination range: the
// NIC delivers unicast packets whose DstIP falls inside p as if they were
// addressed to the host itself. A traffic gateway uses it to sink replies
// addressed to the virtual client space it fronts.
func (h *Host) AcceptPrefix(p Prefix) { h.accepts = append(h.accepts, p) }

// Send fills in the host's source addresses, resolves the destination MAC
// from the ARP cache (broadcast if unknown — the OpenFlow fabric routes on
// IP and rewrites MACs, so this is how first packets reach the controller),
// and transmits.
func (h *Host) Send(pkt *Packet) {
	pkt.SrcIP = h.ip
	h.SendFrom(pkt)
}

// SendFrom is Send for a packet whose source IP the caller has already
// set: the NIC keeps pkt.SrcIP instead of stamping its own address. An
// open-loop traffic gateway uses it to emit requests on behalf of many
// virtual clients, so switch rules that classify on source address (the
// load-balancing divisions) see one flow per virtual client rather than
// one per gateway. Everything else — source MAC, ARP resolution, TTL, ID,
// counters — is stamped exactly as Send does, and replies addressed to
// the virtual source route back by MAC, not IP.
func (h *Host) SendFrom(pkt *Packet) {
	if h.down {
		h.net.RecyclePacket(pkt) // senders hand off ownership unconditionally
		return
	}
	pkt.SrcMAC = h.mac
	if pkt.DstMAC == 0 {
		if m, ok := h.arp[pkt.DstIP]; ok {
			pkt.DstMAC = m
		} else {
			pkt.DstMAC = BroadcastMAC
		}
	}
	if pkt.TTL == 0 {
		pkt.TTL = DefaultTTL
	}
	*h.nextID++
	pkt.ID = *h.nextID
	h.stats.BytesSent += int64(pkt.Size)
	h.stats.PktsSent++
	h.net.emitTrace(h.name, "tx", pkt)
	h.port.Send(pkt)
}

// Recv implements Device: NIC filtering, ARP handling, then the
// registered handler.
func (h *Host) Recv(pkt *Packet, on *Port) {
	// Each delivered packet pointer is unique to this host (switches clone
	// per output port), so drop paths below the handler may recycle it.
	if h.down {
		h.net.RecyclePacket(pkt)
		return
	}
	// NIC filter: our MAC, broadcast, or a subscribed multicast group.
	if pkt.DstMAC != h.mac && pkt.DstMAC != BroadcastMAC && !h.mcast[pkt.DstIP] {
		h.net.drops++
		h.net.RecyclePacket(pkt)
		return
	}
	if pkt.Proto == ProtoARP {
		h.recvARP(pkt)
		h.net.RecyclePacket(pkt)
		return
	}
	if pkt.DstIP != h.ip && !h.mcast[pkt.DstIP] && !h.acceptsDst(pkt.DstIP) {
		h.net.drops++
		h.net.RecyclePacket(pkt)
		return
	}
	h.stats.BytesRecv += int64(pkt.Size)
	h.stats.PktsRecv++
	h.net.emitTrace(h.name, "rx", pkt)
	if h.handler != nil {
		h.handler(pkt)
	}
}

func (h *Host) acceptsDst(ip IP) bool {
	for _, p := range h.accepts {
		if p.Contains(ip) {
			return true
		}
	}
	return false
}

func (h *Host) recvARP(pkt *Packet) {
	arp, ok := pkt.Payload.(*ARPPayload)
	if !ok {
		return
	}
	switch arp.Op {
	case ARPRequest:
		if arp.TargetIP != h.ip {
			return
		}
		reply := h.net.NewPacket()
		reply.DstIP = arp.SenderIP
		reply.DstMAC = pkt.SrcMAC
		reply.Proto = ProtoARP
		reply.Size = ARPPacketSize
		reply.Payload = &ARPPayload{
			Op:       ARPReply,
			TargetIP: h.ip,
			SenderIP: h.ip,
			Sender:   h.mac,
		}
		h.Send(reply)
	case ARPReply:
		h.arp[arp.SenderIP] = arp.Sender
	}
}

// Sim returns the simulator driving this host's network.
func (h *Host) Sim() *sim.Simulator { return h.net.sim }
