// Package netsim is a packet-level network simulator built on the sim
// kernel. It models hosts, full-duplex links with finite bandwidth and
// propagation delay, and store-and-forward switches with pluggable
// forwarding pipelines (package openflow provides the OpenFlow-style
// pipeline used by NICE).
//
// Timing model: transmitting a packet of S bytes on a link of bandwidth B
// occupies the link's transmit direction for S*8/B seconds (FIFO
// serialization; concurrent senders queue), and the packet arrives at the
// far end one propagation delay after serialization completes. Switches add
// a fixed per-packet pipeline latency. Every link direction and host counts
// bytes and packets, which is how the experiments measure network and
// storage-node load.
package netsim

import (
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 address in host byte order.
type IP uint32

// IPv4 assembles an IP from its four octets.
func IPv4(a, b, c, d byte) IP {
	return IP(a)<<24 | IP(b)<<16 | IP(c)<<8 | IP(d)
}

// ParseIP parses dotted-quad notation ("10.1.0.3").
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netsim: bad IP %q", s)
	}
	var ip IP
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("netsim: bad IP %q", s)
		}
		ip = ip<<8 | IP(n)
	}
	return ip, nil
}

// MustParseIP is ParseIP that panics on malformed input; for constants in
// tests and topology setup.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String renders dotted-quad notation.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Add returns ip offset by n addresses.
func (ip IP) Add(n uint32) IP { return ip + IP(n) }

// Masked returns the address with all but its bits high-order bits
// cleared — the network part a /bits prefix matches on. Indexed
// forwarding structures (package openflow) use it to reduce a concrete
// packet address to the hash key of a prefix-match group.
func (ip IP) Masked(bits int) IP { return ip & mask(bits) }

// Prefix is a CIDR block: the Bits high-order bits of Addr are
// significant. The zero Prefix matches every address (a wildcard).
type Prefix struct {
	Addr IP
	Bits int
}

// PrefixOf builds a prefix, masking Addr to its network part.
func PrefixOf(addr IP, bits int) Prefix {
	if bits < 0 || bits > 32 {
		panic(fmt.Sprintf("netsim: bad prefix length %d", bits))
	}
	return Prefix{Addr: addr & mask(bits), Bits: bits}
}

// HostPrefix is the /32 prefix matching exactly addr.
func HostPrefix(addr IP) Prefix { return Prefix{Addr: addr, Bits: 32} }

// ParsePrefix parses "10.10.0.0/16".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netsim: bad prefix %q", s)
	}
	ip, err := ParseIP(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netsim: bad prefix %q", s)
	}
	return PrefixOf(ip, bits), nil
}

// MustParsePrefix is ParsePrefix that panics on malformed input.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func mask(bits int) IP {
	if bits == 0 {
		return 0
	}
	return ^IP(0) << (32 - bits)
}

// Contains reports whether addr falls inside the prefix. The zero Prefix
// contains everything.
func (p Prefix) Contains(addr IP) bool {
	return addr&mask(p.Bits) == p.Addr
}

// IsWildcard reports whether the prefix matches all addresses.
func (p Prefix) IsWildcard() bool { return p.Bits == 0 }

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() uint64 { return 1 << (32 - p.Bits) }

// Nth returns the n-th address inside the prefix.
func (p Prefix) Nth(n uint32) IP { return p.Addr + IP(n) }

// String renders CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Bits) }

// MAC is a 48-bit link-layer address stored in the low bits of a uint64.
type MAC uint64

// BroadcastMAC is the all-ones link-layer broadcast address.
const BroadcastMAC MAC = 0xffffffffffff

// String renders colon-separated hex octets.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
		byte(m>>40), byte(m>>32), byte(m>>24), byte(m>>16), byte(m>>8), byte(m))
}
