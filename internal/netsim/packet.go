package netsim

import "fmt"

// Proto identifies the transport carried by a packet. The simulator does
// not serialize payloads; Proto plus the port numbers are what forwarding
// rules and endpoint demultiplexers match on.
type Proto uint8

const (
	// ProtoNone matches any protocol in a forwarding rule.
	ProtoNone Proto = iota
	// ProtoUDP carries datagrams (client requests, multicast data).
	ProtoUDP
	// ProtoTCP carries reliable-stream segments.
	ProtoTCP
	// ProtoARP carries address-resolution requests and replies.
	ProtoARP
)

// String returns the conventional protocol name.
func (p Proto) String() string {
	switch p {
	case ProtoNone:
		return "any"
	case ProtoUDP:
		return "udp"
	case ProtoTCP:
		return "tcp"
	case ProtoARP:
		return "arp"
	}
	return fmt.Sprintf("proto(%d)", uint8(p))
}

// Header sizes charged per packet on the wire, approximating
// Ethernet+IP+UDP/TCP overhead.
const (
	UDPHeaderSize = 46 // Ethernet(18) + IP(20) + UDP(8)
	TCPHeaderSize = 58 // Ethernet(18) + IP(20) + TCP(20)
	ARPPacketSize = 64 // minimum Ethernet frame
)

// ARPOp distinguishes ARP requests from replies.
type ARPOp uint8

// ARP operations.
const (
	ARPRequest ARPOp = 1
	ARPReply   ARPOp = 2
)

// ARPPayload is the payload of a ProtoARP packet.
type ARPPayload struct {
	Op       ARPOp
	TargetIP IP  // the address being resolved (request) or answered (reply)
	SenderIP IP  // resolver / answerer
	Sender   MAC // answerer's MAC (reply)
}

// Packet is a simulated frame. Payload carries the message object by
// reference (the simulator never serializes it); Size is the number of
// bytes the packet occupies on the wire and drives all timing and load
// accounting.
type Packet struct {
	SrcIP, DstIP     IP
	SrcMAC, DstMAC   MAC
	Proto            Proto
	SrcPort, DstPort uint16
	Size             int
	Payload          any
	TTL              int
	ID               uint64 // unique per original packet; copies share it
}

// DefaultTTL bounds forwarding loops.
const DefaultTTL = 16

// Clone returns a shallow copy (payload shared) used for multicast
// fan-out and flooding.
func (pkt *Packet) Clone() *Packet {
	c := *pkt
	return &c
}

// String summarizes the headers for traces and test failures.
func (pkt *Packet) String() string {
	return fmt.Sprintf("%s %s:%d->%s:%d size=%d id=%d",
		pkt.Proto, pkt.SrcIP, pkt.SrcPort, pkt.DstIP, pkt.DstPort, pkt.Size, pkt.ID)
}
