package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func us(n int) sim.Time { return sim.Time(n) * time.Microsecond }

// pair builds two hosts on a direct cable.
func pair(t *testing.T, cfg LinkConfig) (*sim.Simulator, *Network, *Host, *Host) {
	t.Helper()
	s := sim.New(1)
	n := NewNetwork(s)
	a := n.NewHost("a", MustParseIP("10.0.0.1"))
	b := n.NewHost("b", MustParseIP("10.0.0.2"))
	n.Connect(a.Port(), b.Port(), cfg)
	return s, n, a, b
}

func TestParseIP(t *testing.T) {
	ip, err := ParseIP("10.20.30.40")
	if err != nil {
		t.Fatal(err)
	}
	if ip.String() != "10.20.30.40" {
		t.Fatalf("round trip = %s", ip)
	}
	if IPv4(10, 20, 30, 40) != ip {
		t.Fatal("IPv4 mismatch")
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "a.b.c.d", "256.1.1.1", "-1.2.3.4"} {
		if _, err := ParseIP(bad); err == nil {
			t.Errorf("ParseIP(%q) succeeded", bad)
		}
	}
}

func TestPrefix(t *testing.T) {
	p := MustParsePrefix("10.10.0.0/16")
	if !p.Contains(MustParseIP("10.10.255.255")) {
		t.Fatal("should contain")
	}
	if p.Contains(MustParseIP("10.11.0.0")) {
		t.Fatal("should not contain")
	}
	if p.Size() != 1<<16 {
		t.Fatalf("Size = %d", p.Size())
	}
	if p.Nth(256).String() != "10.10.1.0" {
		t.Fatalf("Nth = %s", p.Nth(256))
	}
	var wild Prefix
	if !wild.Contains(MustParseIP("1.2.3.4")) || !wild.IsWildcard() {
		t.Fatal("zero prefix should be a wildcard")
	}
	// PrefixOf masks host bits.
	if PrefixOf(MustParseIP("10.10.3.7"), 24).Addr.String() != "10.10.3.0" {
		t.Fatal("PrefixOf did not mask")
	}
}

func TestPrefixContainsProperty(t *testing.T) {
	f := func(addr uint32, bits uint8) bool {
		b := int(bits % 33)
		p := PrefixOf(IP(addr), b)
		// The prefix base and the last address are inside; the address
		// just past the block is outside (unless wildcard).
		last := p.Addr + IP(p.Size()-1)
		if !p.Contains(p.Addr) || !p.Contains(last) {
			return false
		}
		if b > 0 && p.Addr >= IP(p.Size()) && p.Contains(p.Addr-1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkSerializationTiming(t *testing.T) {
	s, _, a, b := pair(t, LinkConfig{BandwidthBps: 1e9, Delay: us(10)})
	var arrival sim.Time
	b.SetHandler(func(pkt *Packet) { arrival = s.Now() })
	s.At(0, func() {
		a.Send(&Packet{DstIP: b.IP(), Proto: ProtoUDP, Size: 1250}) // 10 us at 1 Gbps
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := us(10) + us(10) // tx + propagation
	if arrival != want {
		t.Fatalf("arrival = %v, want %v", arrival, want)
	}
}

func TestLinkFIFOQueueing(t *testing.T) {
	s, _, a, b := pair(t, LinkConfig{BandwidthBps: 1e9, Delay: 0})
	var arrivals []sim.Time
	b.SetHandler(func(pkt *Packet) { arrivals = append(arrivals, s.Now()) })
	s.At(0, func() {
		for i := 0; i < 3; i++ {
			a.Send(&Packet{DstIP: b.IP(), Proto: ProtoUDP, Size: 1250})
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 3 {
		t.Fatalf("got %d arrivals", len(arrivals))
	}
	for i, want := range []sim.Time{us(10), us(20), us(30)} {
		if arrivals[i] != want {
			t.Fatalf("arrival[%d] = %v, want %v", i, arrivals[i], want)
		}
	}
}

func TestFullDuplex(t *testing.T) {
	// Opposite directions must not contend.
	s, _, a, b := pair(t, LinkConfig{BandwidthBps: 1e9, Delay: 0})
	var atA, atB sim.Time
	a.SetHandler(func(pkt *Packet) { atA = s.Now() })
	b.SetHandler(func(pkt *Packet) { atB = s.Now() })
	s.At(0, func() {
		a.Send(&Packet{DstIP: b.IP(), Proto: ProtoUDP, Size: 1250})
		b.Send(&Packet{DstIP: a.IP(), Proto: ProtoUDP, Size: 1250})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if atA != us(10) || atB != us(10) {
		t.Fatalf("atA=%v atB=%v, want both 10us", atA, atB)
	}
}

func TestHostNICFilter(t *testing.T) {
	s, n, a, b := pair(t, Gbps(1, 0))
	got := 0
	b.SetHandler(func(pkt *Packet) { got++ })
	s.At(0, func() {
		// Wrong dst MAC: filtered by the NIC.
		a.Send(&Packet{DstIP: b.IP(), DstMAC: MAC(0x0200deadbeef), Proto: ProtoUDP, Size: 100})
		// Broadcast MAC but wrong IP: dropped at IP layer.
		a.Send(&Packet{DstIP: MustParseIP("10.0.0.99"), Proto: ProtoUDP, Size: 100})
		// Correct: broadcast MAC, right IP.
		a.Send(&Packet{DstIP: b.IP(), Proto: ProtoUDP, Size: 100})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("handler saw %d packets, want 1", got)
	}
	if n.Drops() != 2 {
		t.Fatalf("drops = %d, want 2", n.Drops())
	}
}

func TestMulticastSubscription(t *testing.T) {
	s, _, a, b := pair(t, Gbps(1, 0))
	group := MustParseIP("239.1.1.1")
	got := 0
	b.SetHandler(func(pkt *Packet) { got++ })
	s.At(0, func() {
		a.Send(&Packet{DstIP: group, Proto: ProtoUDP, Size: 100})
	})
	s.At(us(100), func() {
		b.JoinMulticast(group)
		a.Send(&Packet{DstIP: group, Proto: ProtoUDP, Size: 100})
	})
	s.At(us(200), func() {
		b.LeaveMulticast(group)
		a.Send(&Packet{DstIP: group, Proto: ProtoUDP, Size: 100})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("got %d multicast deliveries, want 1", got)
	}
}

func TestARPResolution(t *testing.T) {
	s, _, a, b := pair(t, Gbps(1, us(5)))
	s.At(0, func() {
		a.Send(&Packet{
			DstIP:   b.IP(),
			Proto:   ProtoARP,
			Size:    ARPPacketSize,
			Payload: &ARPPayload{Op: ARPRequest, TargetIP: b.IP(), SenderIP: a.IP()},
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if a.arp[b.IP()] != b.MAC() {
		t.Fatalf("ARP cache = %v, want %v", a.arp[b.IP()], b.MAC())
	}
	// Subsequent sends use the learned MAC.
	var gotMAC MAC
	b.SetHandler(func(pkt *Packet) { gotMAC = pkt.DstMAC })
	s.After(0, func() { a.Send(&Packet{DstIP: b.IP(), Proto: ProtoUDP, Size: 64}) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if gotMAC != b.MAC() {
		t.Fatalf("DstMAC = %v, want %v", gotMAC, b.MAC())
	}
}

func TestHostDown(t *testing.T) {
	s, _, a, b := pair(t, Gbps(1, 0))
	got := 0
	b.SetHandler(func(pkt *Packet) { got++ })
	s.At(0, func() {
		b.SetDown(true)
		a.Send(&Packet{DstIP: b.IP(), Proto: ProtoUDP, Size: 100})
	})
	s.At(us(50), func() {
		b.SetDown(false)
		a.Send(&Packet{DstIP: b.IP(), Proto: ProtoUDP, Size: 100})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("got %d, want 1 (down host must not receive)", got)
	}
}

func TestSwitchForwarding(t *testing.T) {
	s := sim.New(1)
	n := NewNetwork(s)
	a := n.NewHost("a", MustParseIP("10.0.0.1"))
	b := n.NewHost("b", MustParseIP("10.0.0.2"))
	c := n.NewHost("c", MustParseIP("10.0.0.3"))
	sw := n.NewSwitch("sw", 3, us(2))
	n.Connect(a.Port(), sw.Port(0), Gbps(1, 0))
	n.Connect(b.Port(), sw.Port(1), Gbps(1, 0))
	n.Connect(c.Port(), sw.Port(2), Gbps(1, 0))
	// Static IP pipeline.
	sw.SetPipeline(PipelineFunc(func(sw *Switch, pkt *Packet, inPort int) {
		switch pkt.DstIP {
		case a.IP():
			sw.Output(0, pkt)
		case b.IP():
			sw.Output(1, pkt)
		case c.IP():
			sw.Output(2, pkt)
		default:
			sw.Drop(pkt)
		}
	}))
	gotB, gotC := 0, 0
	b.SetHandler(func(pkt *Packet) { gotB++ })
	c.SetHandler(func(pkt *Packet) { gotC++ })
	s.At(0, func() {
		a.Send(&Packet{DstIP: b.IP(), Proto: ProtoUDP, Size: 100})
		a.Send(&Packet{DstIP: c.IP(), Proto: ProtoUDP, Size: 100})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if gotB != 1 || gotC != 1 {
		t.Fatalf("gotB=%d gotC=%d", gotB, gotC)
	}
	st := sw.Stats()
	if st.PktsIn != 2 || st.PktsOut != 2 {
		t.Fatalf("switch stats %+v", st)
	}
}

func TestSwitchMulticastFanOutLoad(t *testing.T) {
	// The NICE replication claim: with switch fan-out, the sender's link
	// carries the data once while R receiver links each carry one copy.
	s := sim.New(1)
	n := NewNetwork(s)
	src := n.NewHost("src", MustParseIP("10.0.0.1"))
	sw := n.NewSwitch("sw", 4, 0)
	srcLink := n.Connect(src.Port(), sw.Port(0), Gbps(1, 0))
	group := MustParseIP("239.0.0.1")
	var rcvLinks []*Link
	recvd := 0
	for i := 0; i < 3; i++ {
		h := n.NewHost("r", MustParseIP("10.0.0.2").Add(uint32(i)))
		h.JoinMulticast(group)
		h.SetHandler(func(pkt *Packet) { recvd++ })
		rcvLinks = append(rcvLinks, n.Connect(h.Port(), sw.Port(i+1), Gbps(1, 0)))
	}
	sw.SetPipeline(PipelineFunc(func(sw *Switch, pkt *Packet, inPort int) {
		if pkt.DstIP == group {
			for p := 1; p <= 3; p++ {
				sw.Output(p, pkt.Clone())
			}
			return
		}
		sw.Drop(pkt)
	}))
	s.At(0, func() { src.Send(&Packet{DstIP: group, Proto: ProtoUDP, Size: 1000}) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if recvd != 3 {
		t.Fatalf("recvd = %d, want 3", recvd)
	}
	if srcLink.StatsAB().Bytes != 1000 {
		t.Fatalf("src link carried %d bytes, want 1000", srcLink.StatsAB().Bytes)
	}
	for _, l := range rcvLinks {
		if l.StatsBA().Bytes != 1000 {
			t.Fatalf("receiver link carried %d, want 1000", l.StatsBA().Bytes)
		}
	}
	if n.TotalLinkBytes() != 4000 {
		t.Fatalf("TotalLinkBytes = %d, want 4000", n.TotalLinkBytes())
	}
}

func TestTTLExhaustion(t *testing.T) {
	// Two switches forwarding to each other in a loop must drop on TTL.
	s := sim.New(1)
	n := NewNetwork(s)
	h := n.NewHost("h", MustParseIP("10.0.0.1"))
	sw1 := n.NewSwitch("sw1", 2, us(1))
	sw2 := n.NewSwitch("sw2", 2, us(1))
	n.Connect(h.Port(), sw1.Port(0), Gbps(1, 0))
	n.Connect(sw1.Port(1), sw2.Port(0), Gbps(1, 0))
	sw1.SetPipeline(PipelineFunc(func(sw *Switch, pkt *Packet, inPort int) {
		sw.Output(1, pkt) // always toward sw2
	}))
	sw2.SetPipeline(PipelineFunc(func(sw *Switch, pkt *Packet, inPort int) {
		sw.Output(0, pkt) // bounce back
	}))
	s.At(0, func() { h.Send(&Packet{DstIP: MustParseIP("10.0.0.9"), Proto: ProtoUDP, Size: 100}) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sw1.Stats().Dropped+sw2.Stats().Dropped == 0 {
		t.Fatal("loop was not cut by TTL")
	}
}

func TestSlowLinkConfig(t *testing.T) {
	s, _, a, b := pair(t, Mbps(50, 0))
	var arrival sim.Time
	b.SetHandler(func(pkt *Packet) { arrival = s.Now() })
	s.At(0, func() { a.Send(&Packet{DstIP: b.IP(), Proto: ProtoUDP, Size: 625000}) }) // 5 Mbit
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(100) * time.Millisecond // 5 Mbit at 50 Mbps
	if arrival != want {
		t.Fatalf("arrival = %v, want %v", arrival, want)
	}
}

func TestSetConfigMidRun(t *testing.T) {
	s, _, a, b := pair(t, Gbps(1, 0))
	link := a.Port().Link()
	var arrivals []sim.Time
	b.SetHandler(func(pkt *Packet) { arrivals = append(arrivals, s.Now()) })
	s.At(0, func() { a.Send(&Packet{DstIP: b.IP(), Proto: ProtoUDP, Size: 1250}) })
	s.At(us(50), func() {
		link.SetConfig(Mbps(100, 0))
		a.Send(&Packet{DstIP: b.IP(), Proto: ProtoUDP, Size: 1250})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if arrivals[0] != us(10) || arrivals[1] != us(50)+us(100) {
		t.Fatalf("arrivals = %v", arrivals)
	}
}

func TestHostByIPAndResets(t *testing.T) {
	s, n, a, b := pair(t, Gbps(1, 0))
	if n.HostByIP(a.IP()) != a || n.HostByIP(MustParseIP("9.9.9.9")) != nil {
		t.Fatal("HostByIP lookup wrong")
	}
	b.SetHandler(func(pkt *Packet) {})
	s.At(0, func() { a.Send(&Packet{DstIP: b.IP(), Proto: ProtoUDP, Size: 500}) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Stats().BytesSent != 500 || b.Stats().BytesRecv != 500 {
		t.Fatalf("host stats: %+v %+v", a.Stats(), b.Stats())
	}
	n.ResetHostStats()
	n.ResetLinkStats()
	if a.Stats().BytesSent != 0 || n.TotalLinkBytes() != 0 {
		t.Fatal("reset did not zero counters")
	}
}

func TestTapsObserveTraffic(t *testing.T) {
	s, n, a, b := pair(t, Gbps(1, 0))
	b.SetHandler(func(pkt *Packet) {})
	counter := NewCountingTap()
	remove := n.AddTap(counter.Tap)
	var lines []string
	n.AddTap(func(ev TraceEvent) { lines = append(lines, ev.String()) })
	s.At(0, func() {
		a.Send(&Packet{DstIP: b.IP(), Proto: ProtoUDP, Size: 500})
		a.Send(&Packet{DstIP: b.IP(), Proto: ProtoUDP, Size: 300})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if counter.Pkts["b/udp"] != 2 || counter.Bytes["b/udp"] != 800 {
		t.Fatalf("counting tap: %+v", counter)
	}
	if len(lines) != 4 { // 2 tx at a + 2 rx at b
		t.Fatalf("trace lines = %d, want 4: %v", len(lines), lines)
	}
	// Removal stops delivery.
	remove()
	s.After(0, func() { a.Send(&Packet{DstIP: b.IP(), Proto: ProtoUDP, Size: 100}) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if counter.Pkts["b/udp"] != 2 {
		t.Fatal("removed tap still counting")
	}
}
