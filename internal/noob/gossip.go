package noob

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
)

// GossipConfig tunes the epidemic membership protocol (§2.1: "an
// epidemic protocol entailing O(log n) steps and over O(N) messages").
type GossipConfig struct {
	Fanout int      // peers infected per round
	Period sim.Time // round length
}

// DefaultGossipConfig uses the classic fanout-2 push protocol.
func DefaultGossipConfig() GossipConfig {
	return GossipConfig{Fanout: 2, Period: 50 * time.Millisecond}
}

// gossipMsg carries one membership rumor.
type gossipMsg struct {
	Epoch  uint64
	Failed []int
}

// GossipStats measures one dissemination for the membership-cost
// comparison.
type GossipStats struct {
	Msgs   int64
	Rounds int
}

// GossipMember is a node endpoint participating in epidemic membership
// dissemination. It is deliberately independent of the storage node so
// the membership-cost experiment can run it at any N cheaply.
type GossipMember struct {
	cfg     GossipConfig
	stack   *transport.Stack
	self    int
	peers   []netsim.IP
	port    uint16
	sock    *transport.UDPSocket
	epoch   uint64
	rumor   *gossipMsg
	hot     bool // still forwarding the current rumor
	msgs    int64
	rounds  int
	started bool
}

// NewGossipMember binds a member on its host.
func NewGossipMember(stack *transport.Stack, cfg GossipConfig, self int, peers []netsim.IP, port uint16) *GossipMember {
	g := &GossipMember{cfg: cfg, stack: stack, self: self, peers: peers, port: port}
	g.sock = stack.MustBindUDP(port)
	return g
}

// Start spawns the receive and round loops.
func (g *GossipMember) Start() {
	if g.started {
		return
	}
	g.started = true
	s := g.stack.Sim()
	s.Spawn("gossip-recv", func(p *sim.Proc) {
		for {
			d, ok := g.sock.Recv(p)
			if !ok {
				return
			}
			m, ok := d.Data.(*gossipMsg)
			if !ok || m.Epoch <= g.epoch {
				continue // already known (or stale): the epidemic dies out
			}
			g.epoch = m.Epoch
			g.rumor = m
			g.hot = true
			g.rounds = 0
		}
	})
	s.Spawn("gossip-rounds", func(p *sim.Proc) {
		for {
			p.Sleep(g.cfg.Period)
			if !g.hot {
				continue
			}
			g.rounds++
			// Push the rumor to Fanout random peers. A fixed number of
			// forwarding rounds suffices for whp dissemination; 2*log2(N)
			// is the textbook bound.
			limit := 2 * log2ceil(len(g.peers))
			if g.rounds > limit {
				g.hot = false
				continue
			}
			for i := 0; i < g.cfg.Fanout; i++ {
				target := g.peers[s.Rand().Intn(len(g.peers))]
				if target == g.stack.IP() {
					continue
				}
				g.sock.SendTo(target, g.port, g.rumor, 128)
				g.msgs++
			}
		}
	})
}

// Announce seeds a new rumor at this member.
func (g *GossipMember) Announce(failed []int) {
	g.epoch++
	g.rumor = &gossipMsg{Epoch: g.epoch, Failed: failed}
	g.hot = true
	g.rounds = 0
}

// Epoch returns the member's latest known membership epoch.
func (g *GossipMember) Epoch() uint64 { return g.epoch }

// MsgsSent returns the rumors this member forwarded.
func (g *GossipMember) MsgsSent() int64 { return g.msgs }

func log2ceil(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	if b == 0 {
		return 1
	}
	return b
}
