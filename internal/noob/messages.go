// Package noob implements the paper's baseline: a Network-OBlivious
// key-value store (§2.1, §6). The network is a plain point-to-point
// medium; storage logic lives entirely in end hosts:
//
//   - access mechanisms: ROG (replica-oblivious gateway, random node,
//     two extra hops), RAG (replica-aware gateway, one extra hop), and
//     RAC (replica-aware client, direct);
//   - replication: the primary pushes R-1 copies over unicast streams,
//     optionally returning at a write quorum, or chain replication;
//   - consistency: primary-only (no protocol) or textbook 2PC
//     (prepare+data round, commit round);
//   - full membership: every node knows every other; membership changes
//     are broadcast to all N nodes.
package noob

import (
	"repro/internal/kvstore"
	"repro/internal/netsim"
)

// Message size constants.
const (
	reqOverhead  = 64
	respOverhead = 64
	ackSize      = 64
)

// Addr identifies a NOOB storage node or gateway.
type Addr struct {
	Index int
	IP    netsim.IP
	Port  uint16
}

// PutReq is a client (or proxied) write.
type PutReq struct {
	Key   string
	Value any
	Size  int
}

// PutResp acknowledges a write.
type PutResp struct {
	OK  bool
	Err string
}

// GetReq is a client (or proxied) read.
type GetReq struct {
	Key string
}

// GetResp returns the object.
type GetResp struct {
	Found bool
	Value any
	Size  int
}

// Prepare is 2PC round one: the full object travels to each secondary,
// which locks, logs, and writes it.
type Prepare struct {
	Key   string
	Value any
	Size  int
	Ver   kvstore.Timestamp
}

// Commit is 2PC round two.
type Commit struct {
	Key string
	Ver kvstore.Timestamp
}

// Abort cancels a prepared write.
type Abort struct {
	Key string
	Ver kvstore.Timestamp
}

// Replicate is the primary-only replication message: object plus final
// version, written by the secondary in one step. Chain carries the rest
// of the replication chain when chain replication is enabled.
type Replicate struct {
	Key   string
	Value any
	Size  int
	Ver   kvstore.Timestamp
	Chain []Addr
}

// Ack is the generic acknowledgment for Prepare/Commit/Abort/Replicate.
type Ack struct {
	OK   bool
	From int
}

// LocalGet asks a replica for its local copy only (no coordination):
// the per-replica leg of a majority-quorum read (§3.3).
type LocalGet struct {
	Key string
}

// LocalGetResp returns the replica's copy and version.
type LocalGetResp struct {
	Found bool
	Value any
	Size  int
	Ver   kvstore.Timestamp
}

// MembershipUpdate is the full-membership broadcast every node receives
// on a change (O(N) messages per change, §2.1).
type MembershipUpdate struct {
	Epoch  uint64
	Failed []int
}
