package noob

import (
	"fmt"

	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/transport"
)

// AccessMode selects how a NOOB client reaches the storage system
// (§2.1 "Access Mechanism").
type AccessMode int

const (
	// ViaGateway routes every request through a gateway (ROG or RAG,
	// per the gateway's own mode).
	ViaGateway AccessMode = iota
	// RAC is the replica-aware client: it caches placement metadata and
	// sends requests to the responsible node directly.
	RAC
)

// ClientConfig parameterizes a NOOB client.
type ClientConfig struct {
	Mode      AccessMode
	Gateway   Addr   // when ViaGateway
	Nodes     []Addr // when RAC
	Placement ring.Placement
	Space     ring.Space
	Gets      GetPolicy // RAC read steering
}

// ErrOpFailed is returned when the storage system rejected or lost the
// operation.
var ErrOpFailed = fmt.Errorf("noob: operation failed")

// OpResult reports one completed operation.
type OpResult struct {
	Latency sim.Time
	Found   bool
	Value   any
	Size    int
}

// Client is a NOOB client endpoint.
type Client struct {
	cfg   ClientConfig
	stack *transport.Stack
	pool  *rpcPool
	rr    int
}

// NewClient builds a client on a host stack.
func NewClient(stack *transport.Stack, cfg ClientConfig) *Client {
	return &Client{cfg: cfg, stack: stack, pool: newRPCPool(stack)}
}

// target picks where to send one request.
func (c *Client) target(key string, isGet bool) Addr {
	if c.cfg.Mode == ViaGateway {
		return c.cfg.Gateway
	}
	part := c.cfg.Space.PartitionOf(key)
	idxs := c.cfg.Placement.Replicas(part)
	if isGet && c.cfg.Gets == GetRoundRobin {
		c.rr++
		return c.cfg.Nodes[idxs[c.rr%len(idxs)]]
	}
	return c.cfg.Nodes[idxs[0]]
}

// Put stores key=value with size payload bytes.
func (c *Client) Put(p *sim.Proc, key string, value any, size int) (OpResult, error) {
	start := p.Now()
	resp, ok := c.pool.Call(p, c.target(key, false), &PutReq{Key: key, Value: value, Size: size}, size+reqOverhead)
	lat := p.Now() - start
	pr, isPut := resp.(*PutResp)
	if !ok || !isPut || !pr.OK {
		return OpResult{Latency: lat}, ErrOpFailed
	}
	return OpResult{Latency: lat, Size: size}, nil
}

// Get reads key.
func (c *Client) Get(p *sim.Proc, key string) (OpResult, error) {
	start := p.Now()
	resp, ok := c.pool.Call(p, c.target(key, true), &GetReq{Key: key}, reqOverhead)
	lat := p.Now() - start
	gr, isGet := resp.(*GetResp)
	if !ok || !isGet {
		return OpResult{Latency: lat}, ErrOpFailed
	}
	return OpResult{Latency: lat, Found: gr.Found, Value: gr.Value, Size: gr.Size}, nil
}

// Membership is the NOOB full-membership maintenance model: every change
// is pushed to every node (O(N) messages, §2.1). The experiments count
// these messages against NICE's O(S)+O(R).
type Membership struct {
	stack *transport.Stack
	nodes []Addr
	epoch uint64
	sent  int64
}

// NewMembership builds the membership service on the metadata host.
func NewMembership(stack *transport.Stack, nodes []Addr) *Membership {
	return &Membership{stack: stack, nodes: nodes}
}

// MsgsSent reports membership messages pushed so far.
func (m *Membership) MsgsSent() int64 { return m.sent }

// BroadcastChange informs every node of a membership change.
func (m *Membership) BroadcastChange(failed []int) {
	m.epoch++
	sock := m.stack.MustBindUDP(0)
	defer sock.Close()
	for _, n := range m.nodes {
		sock.SendTo(n.IP, n.Port, &MembershipUpdate{Epoch: m.epoch, Failed: failed}, 128)
		m.sent++
	}
}
